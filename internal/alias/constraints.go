// Per-function constraint decomposition: the body walk that used to live
// inline in collect() is split into a *generate* step that produces a
// canonical, module-independent constraint list per function, and an
// *apply* step that replays such a list against the current module. The
// canonical form references values positionally (instruction IDs, arg
// indices, callee parameter indices), so a list generated from one
// module instance applies to any other instance whose function body
// fingerprints equal — which is what lets a daemon-wide ConstraintStore
// skip the generate step for every function an edit did not touch. Cold
// and warm runs share the apply step, so equal constraint lists produce
// identical analyses by construction.
package alias

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"hippocrates/internal/ir"
)

// ConsKind enumerates the canonical constraint kinds, mirroring the
// cases of the body walk one-to-one.
type ConsKind uint8

// The constraint kinds.
const (
	// CSeedAlloca: the alloca instruction A points to a fresh stack object.
	CSeedAlloca ConsKind = iota
	// CSeedAlloc: the call instruction A points to a fresh heap/PM object
	// (the kind named by Callee: malloc, pm_alloc, pm_root).
	CSeedAlloc
	// CSeedExtern: the inttoptr instruction A points to the shared opaque
	// extern object.
	CSeedExtern
	// CCopy: pts(B) ⊇ pts(A).
	CCopy
	// CLoad: pts(B) ⊇ pts(*A).
	CLoad
	// CStore: pts(*A) ⊇ pts(B).
	CStore
	// CRetCopy: pts(B) ⊇ pts(r) for every value r returned by Callee
	// (resolved against the current module at apply time).
	CRetCopy
)

// VRef references an ir.Value positionally within one function: by
// defining instruction ID, by (instruction ID, argument index), or by
// callee parameter. Operand references resolve through the instruction's
// actual operand slot, so constants and globals resolve to the exact
// value pointer the instruction uses — interning is reproduced verbatim.
type VRef struct {
	// K is the reference kind: 'r' result of instruction ID; 'a' operand
	// Idx of instruction ID; 'P' parameter Idx of callee Name; 0 unused.
	K    byte
	ID   int
	Idx  int
	Name string
}

func refInstr(in *ir.Instr) VRef        { return VRef{K: 'r', ID: in.ID} }
func refArg(in *ir.Instr, idx int) VRef { return VRef{K: 'a', ID: in.ID, Idx: idx} }
func refCalleeParam(name string, idx int) VRef {
	return VRef{K: 'P', Name: name, Idx: idx}
}

// Cons is one canonical constraint.
type Cons struct {
	Kind   ConsKind
	A, B   VRef
	Callee string // CSeedAlloc / CRetCopy
}

// ConstraintStore caches canonical constraint lists keyed by function
// body fingerprint (ir.FuncFingerprint). Implementations must be safe
// for concurrent use; stored slices are immutable.
type ConstraintStore interface {
	GetCons(fp string) ([]Cons, bool)
	PutCons(fp string, cons []Cons)
}

// Store is the bounded, concurrency-safe ConstraintStore the daemon
// shares across jobs. Eviction is FIFO: fingerprints are content hashes,
// so recency matters less than simply bounding memory.
type Store struct {
	mu     sync.Mutex
	max    int
	m      map[string][]Cons
	order  []string
	hits   int64
	misses int64
}

// NewStore returns a Store bounded to max entries (<=0 selects 8192).
func NewStore(max int) *Store {
	if max <= 0 {
		max = 8192
	}
	return &Store{max: max, m: make(map[string][]Cons)}
}

// GetCons implements ConstraintStore.
func (s *Store) GetCons(fp string) ([]Cons, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cons, ok := s.m[fp]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return cons, ok
}

// PutCons implements ConstraintStore.
func (s *Store) PutCons(fp string, cons []Cons) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[fp]; ok {
		return
	}
	s.m[fp] = cons
	s.order = append(s.order, fp)
	for len(s.order) > s.max {
		delete(s.m, s.order[0])
		s.order = s.order[1:]
	}
}

// Stats returns the cumulative hit/miss counters.
func (s *Store) Stats() (hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// Len returns the number of cached constraint lists.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// genConstraints walks one function body and produces its canonical
// constraint list — the exact constraint cases collect() used to emit
// inline, in the same order.
func genConstraints(f *ir.Func) []Cons {
	var out []Cons
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpAlloca:
				out = append(out, Cons{Kind: CSeedAlloca, A: refInstr(in)})
			case ir.OpPtrAdd:
				// Field-insensitive: derived pointers alias the base.
				out = append(out, Cons{Kind: CCopy, A: refArg(in, 0), B: refInstr(in)})
			case ir.OpLoad:
				if ir.IsPtr(in.Ty) {
					out = append(out, Cons{Kind: CLoad, A: refArg(in, 0), B: refInstr(in)})
				}
			case ir.OpStore, ir.OpNTStore, ir.OpAtomicStore:
				if ir.IsPtr(in.StoreTy) {
					out = append(out, Cons{Kind: CStore, A: refArg(in, 1), B: refArg(in, 0)})
				}
			case ir.OpSpawn:
				// A spawned thread receives the arguments like a call; it
				// has no pointer result (the handle is an integer).
				for i := range in.Args {
					if ir.IsPtr(in.Callee.Params[i].Ty) {
						out = append(out, Cons{Kind: CCopy, A: refArg(in, i), B: refCalleeParam(in.Callee.Name, i)})
					}
				}
			case ir.OpIntToPtr:
				out = append(out, Cons{Kind: CSeedExtern, A: refInstr(in)})
			case ir.OpCall:
				callee := in.Callee
				if _, isAlloc := allocKind(callee.Name); isAlloc {
					out = append(out, Cons{Kind: CSeedAlloc, A: refInstr(in), Callee: callee.Name})
					continue
				}
				if callee.IsDecl() {
					// memcpy/memset return their destination.
					if (callee.Name == "memcpy" || callee.Name == "memset") && in.HasResult() {
						out = append(out, Cons{Kind: CCopy, A: refArg(in, 0), B: refInstr(in)})
					}
					continue
				}
				for i := range in.Args {
					if ir.IsPtr(callee.Params[i].Ty) {
						out = append(out, Cons{Kind: CCopy, A: refArg(in, i), B: refCalleeParam(callee.Name, i)})
					}
				}
				if in.HasResult() && ir.IsPtr(in.Ty) {
					out = append(out, Cons{Kind: CRetCopy, B: refInstr(in), Callee: callee.Name})
				}
			}
		}
	}
	return out
}

// applyConstraints replays one function's canonical constraint list
// against the current module, resolving every reference to the exact
// value pointers the instructions use. It returns an error when a
// reference does not resolve — which can only happen when the list was
// generated from a different body than f's (a store keyed on the body
// fingerprint never hands such a list out).
func (a *Analysis) applyConstraints(f *ir.Func, cons []Cons) error {
	if len(cons) == 0 {
		return nil
	}
	// IDs are dense after Renumber (the store only hands lists out for
	// renumbered bodies), so a slice beats a map here; the sparse case
	// just falls through to "does not resolve".
	maxID := -1
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.ID > maxID {
				maxID = in.ID
			}
		}
	}
	byID := make([]*ir.Instr, maxID+1)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.ID >= 0 {
				byID[in.ID] = in
			}
		}
	}
	lookup := func(id int) *ir.Instr {
		if id < 0 || id >= len(byID) {
			return nil
		}
		return byID[id]
	}
	resolve := func(r VRef) (ir.Value, error) {
		switch r.K {
		case 'r':
			if in := lookup(r.ID); in != nil {
				return in, nil
			}
			return nil, fmt.Errorf("alias: @%s has no instruction %d", f.Name, r.ID)
		case 'a':
			in := lookup(r.ID)
			if in == nil || r.Idx >= len(in.Args) {
				return nil, fmt.Errorf("alias: @%s instruction %d has no arg %d", f.Name, r.ID, r.Idx)
			}
			return in.Args[r.Idx], nil
		case 'P':
			callee := a.mod.Func(r.Name)
			if callee == nil || r.Idx >= len(callee.Params) {
				return nil, fmt.Errorf("alias: no parameter %d of @%s", r.Idx, r.Name)
			}
			return callee.Params[r.Idx], nil
		}
		return nil, fmt.Errorf("alias: bad value reference kind %q", r.K)
	}
	for _, c := range cons {
		switch c.Kind {
		case CSeedAlloca, CSeedAlloc, CSeedExtern:
			v, err := resolve(c.A)
			if err != nil {
				return err
			}
			in, ok := v.(*ir.Instr)
			if !ok {
				return fmt.Errorf("alias: seed target of @%s is not an instruction", f.Name)
			}
			switch c.Kind {
			case CSeedAlloca:
				o := a.newObject(ObjAlloca, in, f, false)
				a.ptsAt(a.node(in))[o.ID] = true
			case CSeedAlloc:
				kind, ok := allocKind(c.Callee)
				if !ok {
					return fmt.Errorf("alias: %q is not an allocator", c.Callee)
				}
				o := a.newObject(kind, in, f, kind == ObjPM)
				a.ptsAt(a.node(in))[o.ID] = true
			case CSeedExtern:
				a.ptsAt(a.node(in))[a.externID] = true
			}
		case CCopy:
			src, err := resolve(c.A)
			if err != nil {
				return err
			}
			dst, err := resolve(c.B)
			if err != nil {
				return err
			}
			a.addCopy(a.node(src), a.node(dst))
		case CLoad:
			p, err := resolve(c.A)
			if err != nil {
				return err
			}
			dst, err := resolve(c.B)
			if err != nil {
				return err
			}
			pn := a.node(p)
			a.loadEdges[pn] = append(a.loadEdges[pn], a.node(dst))
		case CStore:
			p, err := resolve(c.A)
			if err != nil {
				return err
			}
			src, err := resolve(c.B)
			if err != nil {
				return err
			}
			pn := a.node(p)
			a.storeEdges[pn] = append(a.storeEdges[pn], a.node(src))
		case CRetCopy:
			dst, err := resolve(c.B)
			if err != nil {
				return err
			}
			callee := a.mod.Func(c.Callee)
			if callee == nil {
				return fmt.Errorf("alias: no callee @%s", c.Callee)
			}
			dn := a.node(dst)
			for _, src := range returnsOfFunc(a, callee, a.retCache) {
				a.addCopy(src, dn)
			}
		default:
			return fmt.Errorf("alias: bad constraint kind %d", c.Kind)
		}
	}
	return nil
}

// ObjectRef renders one abstract object in its canonical
// module-independent form: globals by name, allocation sites by
// (function, instruction ID), the extern object as "x". Refs are unique
// per object within one analysis (one object per allocation site).
func (a *Analysis) ObjectRef(id int) string {
	o := a.objects[id]
	switch o.Kind {
	case ObjGlobal:
		return "g:" + o.Site.(*ir.Global).Name
	case ObjExtern:
		return "x"
	default:
		in := o.Site.(*ir.Instr)
		return string('a'+byte(o.Kind)) + ":" + o.Func.Name + "#" + strconv.Itoa(in.ID)
	}
}

// buildRefIndex materializes, once per analysis, every object's canonical
// ref, the ref→ID index, and each object's rank in the lexicographic
// order of all refs. The rank lets FuncDigest sort a points-to set by
// comparing two ints instead of building and sorting strings — the hot
// path of a warm incremental run.
func (a *Analysis) buildRefIndex() {
	a.refOnce.Do(func() {
		a.refs = make([]string, len(a.objects))
		order := make([]int, len(a.objects))
		a.refIndex = make(map[string]int, len(a.objects))
		for i := range a.objects {
			a.refs[i] = a.ObjectRef(i)
			order[i] = i
			a.refIndex[a.refs[i]] = i
		}
		sort.Slice(order, func(i, j int) bool { return a.refs[order[i]] < a.refs[order[j]] })
		a.refRank = make([]int, len(a.objects))
		for r, id := range order {
			a.refRank[id] = r
		}
	})
}

// ObjectIDByRef resolves a canonical object ref produced by a previous
// run back to this analysis's object ID.
func (a *Analysis) ObjectIDByRef(ref string) (int, bool) {
	a.buildRefIndex()
	id, ok := a.refIndex[ref]
	return id, ok
}

// FuncDigest hashes the slice of the solved points-to relation that any
// per-function analysis of f can observe: for every parameter and every
// instruction result, whether the value is tracked at all (untracked
// values must be treated as may-point-anywhere) and, if tracked, its
// points-to set in canonical object refs. Two runs in which f digests
// equal answer every alias query about f's values identically — the
// missing ingredient that makes function summaries content-addressable
// (a summary is NOT a function of the body alone: parameter points-to
// sets flow in from callers). Reads the solved relation directly, so it
// does not perturb the Queries() counter.
func (a *Analysis) FuncDigest(f *ir.Func) string {
	a.buildRefIndex()
	// One buffer, one Sum256: streaming tiny writes into a sha256.New()
	// digest and building "p<n>"/"r<n>" tag strings per value dominated
	// warm incremental runs.
	buf := a.digestBuf[:0]
	var ids []int
	writeVal := func(tag byte, idx int, v ir.Value) {
		buf = append(buf, tag)
		buf = binary.AppendUvarint(buf, uint64(idx))
		n, ok := a.nodeOf[v]
		if !ok {
			buf = append(buf, '?')
			return
		}
		// Rank order is lexicographic ref order, so the bytes hashed here
		// are identical to sorting the ref strings themselves.
		ids = ids[:0]
		for o := range a.pts[n] {
			ids = append(ids, o)
		}
		// Points-to sets here are tiny; insertion sort by rank beats
		// sort.Slice's per-call overhead across thousands of values.
		for i := 1; i < len(ids); i++ {
			for j := i; j > 0 && a.refRank[ids[j]] < a.refRank[ids[j-1]]; j-- {
				ids[j], ids[j-1] = ids[j-1], ids[j]
			}
		}
		buf = binary.AppendUvarint(buf, uint64(len(ids)))
		for _, o := range ids {
			r := a.refs[o]
			buf = binary.AppendUvarint(buf, uint64(len(r)))
			buf = append(buf, r...)
		}
	}
	for _, p := range f.Params {
		writeVal('p', p.Index, p)
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.HasResult() {
				writeVal('r', in.ID, in)
			}
		}
	}
	a.digestBuf = buf
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}
