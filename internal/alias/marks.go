package alias

import (
	"hippocrates/internal/ir"
	"hippocrates/internal/trace"
)

// Marks classifies pointer values as "PM" or "not PM" for the hoisting
// heuristic (§4.3: "The heuristic first marks all pointers as PM or not
// PM..."). The paper evaluates two implementations that produced identical
// fixes on every target (§6.1): Full-AA derives marks from the
// whole-program points-to solution, Trace-AA derives them from the bug
// finder trace alone.
type Marks struct {
	// Name identifies the marking strategy ("full-aa" or "trace-aa").
	Name string

	pm    func(v ir.Value) bool
	nonPM func(v ir.Value) bool
}

// PM reports whether v is marked as a persistent-memory pointer.
func (m *Marks) PM(v ir.Value) bool { return m.pm(v) }

// NonPM reports whether v is marked as a volatile pointer.
func (m *Marks) NonPM(v ir.Value) bool { return m.nonPM(v) }

// FullMarks marks pointers from the points-to solution: a pointer is PM if
// it may reference a PM object and not-PM if it may reference a volatile
// object (both can hold for pointers like Listing 6's addr).
func FullMarks(a *Analysis) *Marks {
	return &Marks{
		Name:  "full-aa",
		pm:    a.MayPointToPM,
		nonPM: a.MayPointToNonPM,
	}
}

// TraceMarks marks pointers from the trace rather than from static
// allocator knowledge: the persistent objects are exactly the allocation
// sites the bug-finder trace observed creating PM (pm_alloc/pm_root call
// sites and persistent globals, which pmemcheck-class tools know as
// registered pool regions). A pointer is PM-marked if it may point to an
// observed-PM object and not-PM-marked if it may point to any other
// (non-opaque) object. On programs whose PM allocation sites all execute
// under the test workload this coincides with FullMarks — the §6.1
// observation that both heuristics produce identical fixes.
func TraceMarks(a *Analysis, mod *ir.Module, tr *trace.Trace) *Marks {
	index := newInstrIndex(mod)
	bySite := make(map[ir.Value]*Object)
	for _, o := range a.Objects() {
		bySite[o.Site] = o
	}
	pmObjs := make(map[*Object]bool)
	for _, e := range tr.Events {
		if e.Kind != trace.KindAlloc {
			continue
		}
		if e.Sym != "" {
			if g := mod.Global(e.Sym); g != nil {
				if o := bySite[g]; o != nil {
					pmObjs[o] = true
				}
			}
			continue
		}
		if in := index.lookup(e.Site()); in != nil {
			if o := bySite[in]; o != nil {
				pmObjs[o] = true
			}
		}
	}
	return &Marks{
		Name: "trace-aa",
		pm: func(v ir.Value) bool {
			for _, o := range a.PointsTo(v) {
				if pmObjs[o] {
					return true
				}
			}
			return false
		},
		nonPM: func(v ir.Value) bool {
			for _, o := range a.PointsTo(v) {
				if !pmObjs[o] && o.Kind != ObjExtern {
					return true
				}
			}
			return false
		},
	}
}

// instrIndex resolves trace frames to instructions in O(1).
type instrIndex struct {
	mod   *ir.Module
	byFun map[string]map[int]*ir.Instr
}

func newInstrIndex(mod *ir.Module) *instrIndex {
	ix := &instrIndex{mod: mod, byFun: make(map[string]map[int]*ir.Instr)}
	for _, f := range mod.Funcs {
		byID := make(map[int]*ir.Instr, f.NumInstrs())
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				byID[in.ID] = in
			}
		}
		ix.byFun[f.Name] = byID
	}
	return ix
}

func (ix *instrIndex) lookup(f trace.Frame) *ir.Instr {
	byID, ok := ix.byFun[f.Func]
	if !ok {
		return nil
	}
	return byID[f.InstrID]
}
