// Package alias implements Andersen's inclusion-based, flow- and
// field-insensitive points-to analysis over the IR, in the role of the
// whole-program alias analysis the paper's heuristic is built on (§4.3,
// §5). Allocation sites (allocas, malloc/pm_alloc/pm_root calls, globals)
// are the abstract objects; pointer values get points-to sets over them.
// The fixer's hoisting heuristic consumes two queries: MayAlias between
// pointer values, and the PM-ness of what a pointer may reference.
package alias

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hippocrates/internal/ir"
)

// ObjKind classifies an abstract object by its allocation mechanism.
type ObjKind int

// The object kinds.
const (
	ObjGlobal ObjKind = iota
	ObjAlloca
	ObjHeap   // malloc
	ObjPM     // pm_alloc / pm_root
	ObjExtern // opaque memory reachable through inttoptr
)

func (k ObjKind) String() string {
	switch k {
	case ObjGlobal:
		return "global"
	case ObjAlloca:
		return "alloca"
	case ObjHeap:
		return "heap"
	case ObjPM:
		return "pm"
	case ObjExtern:
		return "extern"
	}
	return fmt.Sprintf("objkind(%d)", int(k))
}

// Object is an abstract memory object (an allocation site).
type Object struct {
	ID   int
	Kind ObjKind
	// Site is the allocating value: the *ir.Global, the alloca
	// instruction, or the allocating call instruction.
	Site ir.Value
	// Func is the containing function (nil for globals).
	Func *ir.Func
	// PM reports whether the object lives in persistent memory.
	PM bool
}

func (o *Object) String() string {
	where := "module"
	if o.Func != nil {
		where = "@" + o.Func.Name
	}
	return fmt.Sprintf("%s:%s:%s", o.Kind, where, o.Site.OperandString())
}

// Analysis holds the solved points-to relation for one module.
type Analysis struct {
	mod     *ir.Module
	objects []*Object

	// nodeOf maps pointer values to dense node IDs.
	nodeOf map[ir.Value]int
	values []ir.Value

	// pts[n] is the points-to set of value node n, as an object-ID set.
	pts []map[int]bool
	// objPts[o] is the points-to set of pointers stored inside object o.
	objPts []map[int]bool

	// constraint edges (by node IDs)
	copyEdges  map[int][]int // src -> dsts: pts(dst) ⊇ pts(src)
	loadEdges  map[int][]int // p -> dsts:   pts(dst) ⊇ pts(*p)
	storeEdges map[int][]int // p -> srcs:   pts(*p) ⊇ pts(src)

	// queries counts alias/points-to lookups since construction (atomic:
	// the fixer may consult the analysis from concurrent pipelines).
	queries atomic.Int64

	// externID is the shared opaque object's ID; retCache memoizes the
	// returned-pointer nodes per callee (the lazy returnsOf cache).
	externID int
	retCache map[*ir.Func][]int

	// refIndex resolves canonical object refs; refs and refRank cache each
	// object's canonical ref string and its lexicographic rank (all built
	// lazily together; see buildRefIndex).
	refOnce  sync.Once
	refIndex map[string]int
	refs     []string
	refRank  []int
	// digestBuf is FuncDigest's reusable encoding scratch.
	digestBuf []byte

	// consHits / consMisses count constraint-store traffic for this run.
	consHits, consMisses int

	// fps memoizes each function's content hash for this run: the alias
	// layer keys constraint lists on it and the static layer folds it into
	// summary cache keys, and sha-hashing every body twice would double an
	// otherwise-warm run's floor.
	fps map[*ir.Func]string
}

// ConsStats reports one run's constraint-store traffic.
type ConsStats struct {
	Hits, Misses int
}

// Queries returns how many alias/points-to queries have been answered
// since the analysis was built.
func (a *Analysis) Queries() int64 { return a.queries.Load() }

// Analyze builds and solves the constraint system for the module.
func Analyze(mod *ir.Module) *Analysis {
	return AnalyzeWithStore(mod, nil)
}

// AnalyzeWithStore is Analyze with a constraint store: each function's
// canonical constraint list is fetched by body fingerprint when cached
// and generated (and stored) otherwise. The solve is always whole-module
// — a one-function edit can change any function's points-to sets — but
// the per-function generate step, the bulk of the body walking, is
// skipped for every unchanged function. A nil store generates every
// list; the result is identical either way because cold and warm runs
// share the apply step. Per-run traffic is reported by ConsStatsOf.
func AnalyzeWithStore(mod *ir.Module, store ConstraintStore) *Analysis {
	a := &Analysis{
		mod:        mod,
		nodeOf:     make(map[ir.Value]int),
		copyEdges:  make(map[int][]int),
		loadEdges:  make(map[int][]int),
		storeEdges: make(map[int][]int),
		retCache:   make(map[*ir.Func][]int),
		fps:        make(map[*ir.Func]string),
	}
	a.collect(store)
	a.solve()
	return a
}

// ConsStatsOf returns this run's constraint-store hit/miss counts (zero
// when the analysis ran without a store).
func (a *Analysis) ConsStatsOf() ConsStats {
	return ConsStats{Hits: a.consHits, Misses: a.consMisses}
}

// Fingerprint returns f's content hash, memoized for this analysis's
// lifetime. Callers must not mutate f afterwards — the memo has no way
// to notice. The incremental pipeline respects that: edits build a new
// Analysis per run.
func (a *Analysis) Fingerprint(f *ir.Func) string {
	if fp, ok := a.fps[f]; ok {
		return fp
	}
	fp := ir.FuncFingerprint(f)
	a.fps[f] = fp
	return fp
}

// node interns a pointer value. Its points-to set starts nil and is
// allocated by ptsAt on first write: most nodes never gain objects, and
// eager empty maps dominated warm incremental runs.
func (a *Analysis) node(v ir.Value) int {
	if n, ok := a.nodeOf[v]; ok {
		return n
	}
	n := len(a.values)
	a.nodeOf[v] = n
	a.values = append(a.values, v)
	a.pts = append(a.pts, nil)
	return n
}

// ptsAt returns node n's points-to set for writing, allocating it lazily.
// Read sites index a.pts directly — ranging a nil map is fine.
func (a *Analysis) ptsAt(n int) map[int]bool {
	if a.pts[n] == nil {
		a.pts[n] = make(map[int]bool, 2)
	}
	return a.pts[n]
}

func (a *Analysis) newObject(kind ObjKind, site ir.Value, fn *ir.Func, pm bool) *Object {
	o := &Object{ID: len(a.objects), Kind: kind, Site: site, Func: fn, PM: pm}
	a.objects = append(a.objects, o)
	a.objPts = append(a.objPts, make(map[int]bool))
	return o
}

func (a *Analysis) addCopy(src, dst int) {
	a.copyEdges[src] = append(a.copyEdges[src], dst)
}

// allocKind classifies a callee as an allocator.
func allocKind(name string) (ObjKind, bool) {
	switch name {
	case "malloc":
		return ObjHeap, true
	case "pm_alloc", "pm_root":
		return ObjPM, true
	}
	return 0, false
}

// collect seeds the global objects, then replays every function's
// canonical constraint list (cached by body fingerprint when a store is
// present, generated otherwise).
func (a *Analysis) collect(store ConstraintStore) {
	// Globals: the value @g points to the object g.
	for _, g := range a.mod.Globals {
		o := a.newObject(ObjGlobal, g, nil, g.PM)
		a.ptsAt(a.node(g))[o.ID] = true
	}
	// One shared opaque object for pointers materialized from integers.
	a.externID = a.newObject(ObjExtern, ir.Null(), nil, false).ID

	for _, f := range a.mod.Funcs {
		if f.IsDecl() {
			continue
		}
		var cons []Cons
		if store != nil {
			fp := a.Fingerprint(f)
			if cached, ok := store.GetCons(fp); ok {
				a.consHits++
				cons = cached
			} else {
				a.consMisses++
				cons = genConstraints(f)
				store.PutCons(fp, cons)
			}
		} else {
			cons = genConstraints(f)
		}
		if err := a.applyConstraints(f, cons); err != nil {
			// A fingerprint-keyed list can only fail to resolve against a
			// body it was not generated from; regenerating from the actual
			// body cannot fail.
			a.consHits--
			a.consMisses++
			if err := a.applyConstraints(f, genConstraints(f)); err != nil {
				panic("alias: fresh constraints failed to apply: " + err.Error())
			}
		}
	}
}

// returnsOfFunc lazily collects (and caches) the nodes of pointer values
// returned by f.
func returnsOfFunc(a *Analysis, f *ir.Func, cache map[*ir.Func][]int) []int {
	if nodes, ok := cache[f]; ok {
		return nodes
	}
	var nodes []int
	if !f.IsDecl() && ir.IsPtr(f.Ret) {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpRet && len(in.Args) == 1 {
					nodes = append(nodes, a.node(in.Args[0]))
				}
			}
		}
	}
	cache[f] = nodes
	return nodes
}

// solve iterates the inclusion constraints to a fixpoint. The corpus-scale
// modules (≤ hundreds of KLOC-equivalent IR) solve in a handful of
// rounds; the harness measures this as part of Fig. 5's offline overhead.
func (a *Analysis) solve() {
	changed := true
	for changed {
		changed = false
		union := func(dst map[int]bool, src map[int]bool) {
			for o := range src {
				if !dst[o] {
					dst[o] = true
					changed = true
				}
			}
		}
		for src, dsts := range a.copyEdges {
			if len(a.pts[src]) == 0 {
				continue
			}
			for _, dst := range dsts {
				union(a.ptsAt(dst), a.pts[src])
			}
		}
		for p, dsts := range a.loadEdges {
			for o := range a.pts[p] {
				if len(a.objPts[o]) == 0 {
					continue
				}
				for _, dst := range dsts {
					union(a.ptsAt(dst), a.objPts[o])
				}
			}
		}
		for p, srcs := range a.storeEdges {
			for o := range a.pts[p] {
				for _, src := range srcs {
					if len(a.pts[src]) == 0 {
						continue
					}
					union(a.objPts[o], a.pts[src])
				}
			}
		}
	}
}

// PointsTo returns the abstract objects v may point to.
func (a *Analysis) PointsTo(v ir.Value) []*Object {
	a.queries.Add(1)
	n, ok := a.nodeOf[v]
	if !ok {
		return nil
	}
	var out []*Object
	for o := range a.pts[n] {
		out = append(out, a.objects[o])
	}
	return out
}

// MayAlias reports whether two pointer values may reference the same
// object.
func (a *Analysis) MayAlias(v, w ir.Value) bool {
	a.queries.Add(1)
	nv, ok := a.nodeOf[v]
	if !ok {
		return false
	}
	nw, ok := a.nodeOf[w]
	if !ok {
		return false
	}
	pv, pw := a.pts[nv], a.pts[nw]
	if len(pw) < len(pv) {
		pv, pw = pw, pv
	}
	for o := range pv {
		if pw[o] {
			return true
		}
	}
	return false
}

// MayPointToPM reports whether v may reference a PM object.
func (a *Analysis) MayPointToPM(v ir.Value) bool {
	a.queries.Add(1)
	n, ok := a.nodeOf[v]
	if !ok {
		return false
	}
	for o := range a.pts[n] {
		if a.objects[o].PM {
			return true
		}
	}
	return false
}

// MayPointToNonPM reports whether v may reference a volatile object.
func (a *Analysis) MayPointToNonPM(v ir.Value) bool {
	a.queries.Add(1)
	n, ok := a.nodeOf[v]
	if !ok {
		return false
	}
	for o := range a.pts[n] {
		if !a.objects[o].PM && a.objects[o].Kind != ObjExtern {
			return true
		}
	}
	return false
}

// MayPointToExtern reports whether v may reference the opaque extern
// object (memory materialized through inttoptr). Clients that need sound
// may-alias answers against PM must treat such pointers as potentially
// reaching anything: the corpus prelude's pmem_flush computes its target
// through a ptr→int→ptr round trip, so its points-to set is only extern.
func (a *Analysis) MayPointToExtern(v ir.Value) bool {
	a.queries.Add(1)
	n, ok := a.nodeOf[v]
	if !ok {
		return false
	}
	for o := range a.pts[n] {
		if a.objects[o].Kind == ObjExtern {
			return true
		}
	}
	return false
}

// PointsToSet returns the IDs of the objects v may reference and whether
// the analysis tracked v at all. An untracked value (known == false) must
// be treated as possibly pointing anywhere; a tracked value with an empty
// set provably points nowhere the module allocated.
func (a *Analysis) PointsToSet(v ir.Value) (ids []int, known bool) {
	a.queries.Add(1)
	n, ok := a.nodeOf[v]
	if !ok {
		return nil, false
	}
	for o := range a.pts[n] {
		ids = append(ids, o)
	}
	return ids, true
}

// ObjectByID returns the abstract object with the given ID.
func (a *Analysis) ObjectByID(id int) *Object {
	if id < 0 || id >= len(a.objects) {
		return nil
	}
	return a.objects[id]
}

// Pointers returns every pointer value the analysis tracked.
func (a *Analysis) Pointers() []ir.Value {
	return append([]ir.Value(nil), a.values...)
}

// Objects returns every abstract object.
func (a *Analysis) Objects() []*Object {
	return append([]*Object(nil), a.objects...)
}
