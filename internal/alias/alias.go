// Package alias implements Andersen's inclusion-based, flow- and
// field-insensitive points-to analysis over the IR, in the role of the
// whole-program alias analysis the paper's heuristic is built on (§4.3,
// §5). Allocation sites (allocas, malloc/pm_alloc/pm_root calls, globals)
// are the abstract objects; pointer values get points-to sets over them.
// The fixer's hoisting heuristic consumes two queries: MayAlias between
// pointer values, and the PM-ness of what a pointer may reference.
package alias

import (
	"fmt"
	"sync/atomic"

	"hippocrates/internal/ir"
)

// ObjKind classifies an abstract object by its allocation mechanism.
type ObjKind int

// The object kinds.
const (
	ObjGlobal ObjKind = iota
	ObjAlloca
	ObjHeap   // malloc
	ObjPM     // pm_alloc / pm_root
	ObjExtern // opaque memory reachable through inttoptr
)

func (k ObjKind) String() string {
	switch k {
	case ObjGlobal:
		return "global"
	case ObjAlloca:
		return "alloca"
	case ObjHeap:
		return "heap"
	case ObjPM:
		return "pm"
	case ObjExtern:
		return "extern"
	}
	return fmt.Sprintf("objkind(%d)", int(k))
}

// Object is an abstract memory object (an allocation site).
type Object struct {
	ID   int
	Kind ObjKind
	// Site is the allocating value: the *ir.Global, the alloca
	// instruction, or the allocating call instruction.
	Site ir.Value
	// Func is the containing function (nil for globals).
	Func *ir.Func
	// PM reports whether the object lives in persistent memory.
	PM bool
}

func (o *Object) String() string {
	where := "module"
	if o.Func != nil {
		where = "@" + o.Func.Name
	}
	return fmt.Sprintf("%s:%s:%s", o.Kind, where, o.Site.OperandString())
}

// Analysis holds the solved points-to relation for one module.
type Analysis struct {
	mod     *ir.Module
	objects []*Object

	// nodeOf maps pointer values to dense node IDs.
	nodeOf map[ir.Value]int
	values []ir.Value

	// pts[n] is the points-to set of value node n, as an object-ID set.
	pts []map[int]bool
	// objPts[o] is the points-to set of pointers stored inside object o.
	objPts []map[int]bool

	// constraint edges (by node IDs)
	copyEdges  map[int][]int // src -> dsts: pts(dst) ⊇ pts(src)
	loadEdges  map[int][]int // p -> dsts:   pts(dst) ⊇ pts(*p)
	storeEdges map[int][]int // p -> srcs:   pts(*p) ⊇ pts(src)

	// queries counts alias/points-to lookups since construction (atomic:
	// the fixer may consult the analysis from concurrent pipelines).
	queries atomic.Int64
}

// Queries returns how many alias/points-to queries have been answered
// since the analysis was built.
func (a *Analysis) Queries() int64 { return a.queries.Load() }

// Analyze builds and solves the constraint system for the module.
func Analyze(mod *ir.Module) *Analysis {
	a := &Analysis{
		mod:        mod,
		nodeOf:     make(map[ir.Value]int),
		copyEdges:  make(map[int][]int),
		loadEdges:  make(map[int][]int),
		storeEdges: make(map[int][]int),
	}
	a.collect()
	a.solve()
	return a
}

// node interns a pointer value.
func (a *Analysis) node(v ir.Value) int {
	if n, ok := a.nodeOf[v]; ok {
		return n
	}
	n := len(a.values)
	a.nodeOf[v] = n
	a.values = append(a.values, v)
	a.pts = append(a.pts, make(map[int]bool))
	return n
}

func (a *Analysis) newObject(kind ObjKind, site ir.Value, fn *ir.Func, pm bool) *Object {
	o := &Object{ID: len(a.objects), Kind: kind, Site: site, Func: fn, PM: pm}
	a.objects = append(a.objects, o)
	a.objPts = append(a.objPts, make(map[int]bool))
	return o
}

func (a *Analysis) addCopy(src, dst int) {
	a.copyEdges[src] = append(a.copyEdges[src], dst)
}

// allocKind classifies a callee as an allocator.
func allocKind(name string) (ObjKind, bool) {
	switch name {
	case "malloc":
		return ObjHeap, true
	case "pm_alloc", "pm_root":
		return ObjPM, true
	}
	return 0, false
}

func (a *Analysis) collect() {
	// Globals: the value @g points to the object g.
	for _, g := range a.mod.Globals {
		o := a.newObject(ObjGlobal, g, nil, g.PM)
		n := a.node(g)
		a.pts[n][o.ID] = true
	}
	// One shared opaque object for pointers materialized from integers.
	extern := a.newObject(ObjExtern, ir.Null(), nil, false)

	// returnsOf collects the returned pointer values per function.
	returnsOf := make(map[*ir.Func][]int)

	for _, f := range a.mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpAlloca:
					o := a.newObject(ObjAlloca, in, f, false)
					a.pts[a.node(in)][o.ID] = true
				case ir.OpPtrAdd:
					// Field-insensitive: derived pointers alias the base.
					a.addCopy(a.node(in.Args[0]), a.node(in))
				case ir.OpLoad:
					if ir.IsPtr(in.Ty) {
						p := a.node(in.Args[0])
						a.loadEdges[p] = append(a.loadEdges[p], a.node(in))
					}
				case ir.OpStore, ir.OpNTStore:
					if ir.IsPtr(in.StoreTy) {
						p := a.node(in.Args[1])
						a.storeEdges[p] = append(a.storeEdges[p], a.node(in.Args[0]))
					}
				case ir.OpIntToPtr:
					a.pts[a.node(in)][extern.ID] = true
				case ir.OpCall:
					callee := in.Callee
					if kind, isAlloc := allocKind(callee.Name); isAlloc {
						o := a.newObject(kind, in, f, kind == ObjPM)
						a.pts[a.node(in)][o.ID] = true
						continue
					}
					if callee.IsDecl() {
						// memcpy/memset return their destination.
						if (callee.Name == "memcpy" || callee.Name == "memset") && in.HasResult() {
							a.addCopy(a.node(in.Args[0]), a.node(in))
						}
						continue
					}
					for i, arg := range in.Args {
						if ir.IsPtr(callee.Params[i].Ty) {
							a.addCopy(a.node(arg), a.node(callee.Params[i]))
						}
					}
					if in.HasResult() && ir.IsPtr(in.Ty) {
						dst := a.node(in)
						for _, src := range returnsOfFunc(a, callee, returnsOf) {
							a.addCopy(src, dst)
						}
					}
				case ir.OpRet:
					// Handled lazily by returnsOfFunc.
				}
			}
		}
	}
}

// returnsOfFunc lazily collects (and caches) the nodes of pointer values
// returned by f.
func returnsOfFunc(a *Analysis, f *ir.Func, cache map[*ir.Func][]int) []int {
	if nodes, ok := cache[f]; ok {
		return nodes
	}
	var nodes []int
	if !f.IsDecl() && ir.IsPtr(f.Ret) {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpRet && len(in.Args) == 1 {
					nodes = append(nodes, a.node(in.Args[0]))
				}
			}
		}
	}
	cache[f] = nodes
	return nodes
}

// solve iterates the inclusion constraints to a fixpoint. The corpus-scale
// modules (≤ hundreds of KLOC-equivalent IR) solve in a handful of
// rounds; the harness measures this as part of Fig. 5's offline overhead.
func (a *Analysis) solve() {
	changed := true
	for changed {
		changed = false
		union := func(dst map[int]bool, src map[int]bool) {
			for o := range src {
				if !dst[o] {
					dst[o] = true
					changed = true
				}
			}
		}
		for src, dsts := range a.copyEdges {
			for _, dst := range dsts {
				union(a.pts[dst], a.pts[src])
			}
		}
		for p, dsts := range a.loadEdges {
			for o := range a.pts[p] {
				for _, dst := range dsts {
					union(a.pts[dst], a.objPts[o])
				}
			}
		}
		for p, srcs := range a.storeEdges {
			for o := range a.pts[p] {
				for _, src := range srcs {
					union(a.objPts[o], a.pts[src])
				}
			}
		}
	}
}

// PointsTo returns the abstract objects v may point to.
func (a *Analysis) PointsTo(v ir.Value) []*Object {
	a.queries.Add(1)
	n, ok := a.nodeOf[v]
	if !ok {
		return nil
	}
	var out []*Object
	for o := range a.pts[n] {
		out = append(out, a.objects[o])
	}
	return out
}

// MayAlias reports whether two pointer values may reference the same
// object.
func (a *Analysis) MayAlias(v, w ir.Value) bool {
	a.queries.Add(1)
	nv, ok := a.nodeOf[v]
	if !ok {
		return false
	}
	nw, ok := a.nodeOf[w]
	if !ok {
		return false
	}
	pv, pw := a.pts[nv], a.pts[nw]
	if len(pw) < len(pv) {
		pv, pw = pw, pv
	}
	for o := range pv {
		if pw[o] {
			return true
		}
	}
	return false
}

// MayPointToPM reports whether v may reference a PM object.
func (a *Analysis) MayPointToPM(v ir.Value) bool {
	a.queries.Add(1)
	n, ok := a.nodeOf[v]
	if !ok {
		return false
	}
	for o := range a.pts[n] {
		if a.objects[o].PM {
			return true
		}
	}
	return false
}

// MayPointToNonPM reports whether v may reference a volatile object.
func (a *Analysis) MayPointToNonPM(v ir.Value) bool {
	a.queries.Add(1)
	n, ok := a.nodeOf[v]
	if !ok {
		return false
	}
	for o := range a.pts[n] {
		if !a.objects[o].PM && a.objects[o].Kind != ObjExtern {
			return true
		}
	}
	return false
}

// MayPointToExtern reports whether v may reference the opaque extern
// object (memory materialized through inttoptr). Clients that need sound
// may-alias answers against PM must treat such pointers as potentially
// reaching anything: the corpus prelude's pmem_flush computes its target
// through a ptr→int→ptr round trip, so its points-to set is only extern.
func (a *Analysis) MayPointToExtern(v ir.Value) bool {
	a.queries.Add(1)
	n, ok := a.nodeOf[v]
	if !ok {
		return false
	}
	for o := range a.pts[n] {
		if a.objects[o].Kind == ObjExtern {
			return true
		}
	}
	return false
}

// PointsToSet returns the IDs of the objects v may reference and whether
// the analysis tracked v at all. An untracked value (known == false) must
// be treated as possibly pointing anywhere; a tracked value with an empty
// set provably points nowhere the module allocated.
func (a *Analysis) PointsToSet(v ir.Value) (ids []int, known bool) {
	a.queries.Add(1)
	n, ok := a.nodeOf[v]
	if !ok {
		return nil, false
	}
	for o := range a.pts[n] {
		ids = append(ids, o)
	}
	return ids, true
}

// ObjectByID returns the abstract object with the given ID.
func (a *Analysis) ObjectByID(id int) *Object {
	if id < 0 || id >= len(a.objects) {
		return nil
	}
	return a.objects[id]
}

// Pointers returns every pointer value the analysis tracked.
func (a *Analysis) Pointers() []ir.Value {
	return append([]ir.Value(nil), a.values...)
}

// Objects returns every abstract object.
func (a *Analysis) Objects() []*Object {
	return append([]*Object(nil), a.objects...)
}
