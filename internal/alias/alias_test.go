package alias

import (
	"testing"

	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/trace"
)

// buildListing5 reproduces the paper's Listing 5/6 shape:
//
//	func update(addr, val) { addr[0] = val }
//	func modify(addr)      { update(addr, 1) }
//	func main()            { v := malloc(8); p := pm_alloc(8)
//	                         modify(v); modify(p) }
func buildListing5(t testing.TB) (*ir.Module, map[string]ir.Value) {
	m := ir.NewModule("listing5")
	for _, d := range interp.StdDecls() {
		m.AddFunc(d)
	}
	vals := map[string]ir.Value{}

	update := ir.NewFunc("update", ir.Void,
		&ir.Param{Name: "addr", Ty: ir.Ptr}, &ir.Param{Name: "val", Ty: ir.I64})
	m.AddFunc(update)
	{
		b := ir.NewBuilder(update)
		st := b.Store(ir.I64, update.Params[1], update.Params[0])
		b.Ret(nil)
		update.Renumber()
		vals["update.addr"] = update.Params[0]
		vals["update.store"] = st
	}
	modify := ir.NewFunc("modify", ir.Void, &ir.Param{Name: "addr", Ty: ir.Ptr})
	m.AddFunc(modify)
	{
		b := ir.NewBuilder(modify)
		b.Call(update, modify.Params[0], ir.ConstInt(1))
		b.Ret(nil)
		modify.Renumber()
		vals["modify.addr"] = modify.Params[0]
	}
	main := ir.NewFunc("main", ir.Void)
	m.AddFunc(main)
	{
		b := ir.NewBuilder(main)
		v := b.Call(m.Func("malloc"), ir.ConstInt(8))
		p := b.Call(m.Func("pm_alloc"), ir.ConstInt(8))
		b.Call(modify, v)
		b.Call(modify, p)
		b.Ret(nil)
		main.Renumber()
		vals["main.v"] = v
		vals["main.p"] = p
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("listing5 does not verify: %v", err)
	}
	return m, vals
}

func TestAndersenInterprocedural(t *testing.T) {
	m, vals := buildListing5(t)
	a := Analyze(m)

	addr := vals["update.addr"]
	v, p := vals["main.v"], vals["main.p"]

	if !a.MayPointToPM(addr) {
		t.Error("update.addr must may-point-to PM")
	}
	if !a.MayPointToNonPM(addr) {
		t.Error("update.addr must may-point-to volatile memory")
	}
	if a.MayPointToPM(v) {
		t.Error("main.v must not point to PM")
	}
	if !a.MayPointToPM(p) || a.MayPointToNonPM(p) {
		t.Error("main.p must point only to PM")
	}
	if a.MayAlias(v, p) {
		t.Error("v and p must not alias")
	}
	if !a.MayAlias(addr, v) || !a.MayAlias(addr, p) {
		t.Error("update.addr must alias both allocations")
	}
	if !a.MayAlias(vals["modify.addr"], addr) {
		t.Error("modify.addr must alias update.addr")
	}
}

func TestPointsToObjects(t *testing.T) {
	m, vals := buildListing5(t)
	a := Analyze(m)
	objs := a.PointsTo(vals["update.addr"])
	if len(objs) != 2 {
		t.Fatalf("points-to size = %d, want 2", len(objs))
	}
	kinds := map[ObjKind]bool{}
	for _, o := range objs {
		kinds[o.Kind] = true
		if o.Func == nil || o.Func.Name != "main" {
			t.Errorf("object %s not attributed to @main", o)
		}
	}
	if !kinds[ObjHeap] || !kinds[ObjPM] {
		t.Errorf("kinds = %v, want heap and pm", kinds)
	}
}

func TestLoadStoreThroughMemory(t *testing.T) {
	// s = alloca ptr; store p -> s; q = load s  ==> q aliases p.
	m := ir.NewModule("mem")
	for _, d := range interp.StdDecls() {
		m.AddFunc(d)
	}
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	p := b.Call(m.Func("pm_alloc"), ir.ConstInt(8))
	s := b.Alloca(ir.Ptr)
	b.Store(ir.Ptr, p, s)
	q := b.Load(ir.Ptr, s)
	b.Store(ir.I64, ir.ConstInt(1), q)
	b.Ret(nil)
	f.Renumber()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	a := Analyze(m)
	if !a.MayAlias(p, q) {
		t.Error("q loaded from s must alias p")
	}
	if !a.MayPointToPM(q) {
		t.Error("q must point to PM")
	}
	if a.MayAlias(s, q) {
		t.Error("the slot s must not alias its content q")
	}
}

func TestReturnedPointers(t *testing.T) {
	m := ir.NewModule("rets")
	for _, d := range interp.StdDecls() {
		m.AddFunc(d)
	}
	mk := ir.NewFunc("mk", ir.Ptr)
	m.AddFunc(mk)
	{
		b := ir.NewBuilder(mk)
		p := b.Call(m.Func("pm_alloc"), ir.ConstInt(64))
		b.Ret(p)
		mk.Renumber()
	}
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	r := b.Call(mk)
	b.Store(ir.I64, ir.ConstInt(5), r)
	b.Ret(nil)
	f.Renumber()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	a := Analyze(m)
	if !a.MayPointToPM(r) {
		t.Error("call result must inherit the callee's returned points-to set")
	}
}

func TestPtrAddAliasesBase(t *testing.T) {
	m := ir.NewModule("gep")
	for _, d := range interp.StdDecls() {
		m.AddFunc(d)
	}
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	p := b.Call(m.Func("pm_alloc"), ir.ConstInt(64))
	q := b.PtrAdd(p, ir.ConstInt(2), 8, 0)
	b.Store(ir.I64, ir.ConstInt(1), q)
	b.Ret(nil)
	f.Renumber()
	a := Analyze(m)
	if !a.MayAlias(p, q) {
		t.Error("derived pointer must alias its base (field-insensitive)")
	}
}

func TestGlobalsAndExtern(t *testing.T) {
	m := ir.NewModule("globals")
	for _, d := range interp.StdDecls() {
		m.AddFunc(d)
	}
	m.AddGlobal(&ir.Global{Name: "vg", Elem: ir.I64})
	m.AddGlobal(&ir.Global{Name: "pg", Elem: ir.I64, PM: true})
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	forged := b.Cast(ir.OpIntToPtr, ir.Ptr, ir.ConstInt(0x1234567))
	b.Store(ir.I64, ir.ConstInt(1), m.Global("vg"))
	b.Store(ir.I64, ir.ConstInt(2), m.Global("pg"))
	b.Store(ir.I64, ir.ConstInt(3), forged)
	b.Ret(nil)
	f.Renumber()
	a := Analyze(m)
	if a.MayPointToPM(m.Global("vg")) || !a.MayPointToNonPM(m.Global("vg")) {
		t.Error("volatile global misclassified")
	}
	if !a.MayPointToPM(m.Global("pg")) || a.MayPointToNonPM(m.Global("pg")) {
		t.Error("pm global misclassified")
	}
	if a.MayAlias(m.Global("vg"), m.Global("pg")) {
		t.Error("distinct globals must not alias")
	}
	// inttoptr results are opaque: neither PM nor definitely-volatile.
	if a.MayPointToPM(forged) || a.MayPointToNonPM(forged) {
		t.Error("forged pointer must be opaque")
	}
	if len(a.PointsTo(forged)) != 1 || a.PointsTo(forged)[0].Kind != ObjExtern {
		t.Errorf("forged points-to = %v", a.PointsTo(forged))
	}
}

func TestMemcpyReturnsDst(t *testing.T) {
	m := ir.NewModule("memcpyret")
	for _, d := range interp.StdDecls() {
		m.AddFunc(d)
	}
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	p := b.Call(m.Func("pm_alloc"), ir.ConstInt(64))
	h := b.Call(m.Func("malloc"), ir.ConstInt(64))
	r := b.Call(m.Func("memcpy"), p, h, ir.ConstInt(64))
	b.Ret(nil)
	f.Renumber()
	a := Analyze(m)
	if !a.MayAlias(r, p) {
		t.Error("memcpy result must alias its destination")
	}
	if a.MayAlias(r, h) {
		t.Error("memcpy result must not alias its source")
	}
}

func TestFullMarksListing6(t *testing.T) {
	m, vals := buildListing5(t)
	marks := FullMarks(Analyze(m))
	if !marks.PM(vals["main.p"]) || marks.NonPM(vals["main.p"]) {
		t.Error("main.p marks wrong")
	}
	if marks.PM(vals["main.v"]) || !marks.NonPM(vals["main.v"]) {
		t.Error("main.v marks wrong")
	}
	if !marks.PM(vals["update.addr"]) || !marks.NonPM(vals["update.addr"]) {
		t.Error("update.addr must be marked both PM and not-PM")
	}
	if marks.Name != "full-aa" {
		t.Errorf("name = %q", marks.Name)
	}
}

func TestTraceMarksListing6(t *testing.T) {
	m, vals := buildListing5(t)
	// Run the program to produce a real trace; only the PM path events
	// appear in it.
	tr := &trace.Trace{Program: "listing5"}
	mach, err := interp.New(m, interp.Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run("main"); err != nil {
		t.Fatal(err)
	}
	if len(tr.Stores()) != 1 {
		t.Fatalf("stores in trace = %d, want 1 (only the PM store)", len(tr.Stores()))
	}
	a := Analyze(m)
	marks := TraceMarks(a, m, tr)
	if marks.Name != "trace-aa" {
		t.Errorf("name = %q", marks.Name)
	}
	// The PM event path: update.addr (store operand), modify.addr (call
	// argument at main's second modify call is main.p; at modify's call
	// to update the argument is modify.addr).
	if !marks.PM(vals["update.addr"]) {
		t.Error("store operand must be trace-marked PM")
	}
	if !marks.PM(vals["modify.addr"]) {
		t.Error("call argument on the PM path must be trace-marked PM")
	}
	if !marks.PM(vals["main.p"]) {
		t.Error("main.p must be trace-marked PM")
	}
	if marks.PM(vals["main.v"]) || !marks.NonPM(vals["main.v"]) {
		t.Error("main.v must be trace-marked not-PM")
	}
	if !marks.NonPM(vals["update.addr"]) {
		t.Error("update.addr must also be not-PM (mixed pointer)")
	}
}

func TestTraceMarksIsolatedVolatilePointer(t *testing.T) {
	// A pointer with no may-alias connection to any PM event is not-PM.
	m := ir.NewModule("isolated")
	for _, d := range interp.StdDecls() {
		m.AddFunc(d)
	}
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	pm := b.Call(m.Func("pm_alloc"), ir.ConstInt(8))
	heap := b.Call(m.Func("malloc"), ir.ConstInt(8))
	b.Store(ir.I64, ir.ConstInt(1), pm)
	b.Store(ir.I64, ir.ConstInt(2), heap)
	b.Flush(ir.CLWB, pm)
	b.Fence(ir.SFENCE)
	b.Ret(nil)
	f.Renumber()
	tr := &trace.Trace{}
	mach, err := interp.New(m, interp.Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run("main"); err != nil {
		t.Fatal(err)
	}
	a := Analyze(m)
	marks := TraceMarks(a, m, tr)
	if !marks.PM(pm) || marks.NonPM(pm) {
		t.Error("pm pointer marks wrong")
	}
	if marks.PM(heap) || !marks.NonPM(heap) {
		t.Error("isolated heap pointer must be trace-marked not-PM")
	}
}

func TestPointersAndObjectsEnumerate(t *testing.T) {
	m, _ := buildListing5(t)
	a := Analyze(m)
	if len(a.Pointers()) == 0 {
		t.Error("no pointers tracked")
	}
	objs := a.Objects()
	var pmObjs int
	for _, o := range objs {
		if o.PM {
			pmObjs++
		}
		_ = o.String()
	}
	if pmObjs != 1 {
		t.Errorf("pm objects = %d, want 1", pmObjs)
	}
}

func TestUntrackedValuesAreSafe(t *testing.T) {
	m, _ := buildListing5(t)
	a := Analyze(m)
	c := ir.ConstInt(5)
	if a.MayAlias(c, c) || a.MayPointToPM(c) || a.MayPointToNonPM(c) || a.PointsTo(c) != nil {
		t.Error("untracked values must have empty points-to behaviour")
	}
}
