package alias

import (
	"testing"

	"hippocrates/internal/ir"
	"hippocrates/internal/lang"
)

func compileCons(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := lang.Compile("cons.pmc", src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

const consSrc = `
pm int cell[16];
int buf[8];
void put(int *p, int v) {
	*p = v;
	clwb(p);
	sfence();
}
void fill(int *q) {
	put(q, 1);
	put(q, 2);
}
int main() {
	put(&cell[0], 7);
	fill(&cell[1]);
	put(&buf[0], 3);
	pm_checkpoint();
	return cell[0];
}
`

// digestsOf canonicalizes the solved relation per defined function.
func digestsOf(a *Analysis) map[string]string {
	out := map[string]string{}
	for _, f := range a.mod.Funcs {
		if f.IsDecl() {
			continue
		}
		out[f.Name] = a.FuncDigest(f)
	}
	return out
}

func requireSameDigests(t *testing.T, cold, warm *Analysis) {
	t.Helper()
	cd, wd := digestsOf(cold), digestsOf(warm)
	if len(cd) != len(wd) {
		t.Fatalf("digest sets differ in size: cold %d, warm %d", len(cd), len(wd))
	}
	for fn, d := range cd {
		if wd[fn] != d {
			t.Errorf("%s: warm points-to digest differs from cold", fn)
		}
	}
}

// A warm run over an identical module must hit the store for every
// defined function and solve to the identical points-to relation.
func TestConstraintStoreWarmMatchesCold(t *testing.T) {
	store := NewStore(0)
	cold := Analyze(compileCons(t, consSrc))
	first := AnalyzeWithStore(compileCons(t, consSrc), store)
	if s := first.ConsStatsOf(); s.Hits != 0 || s.Misses != 3 {
		t.Fatalf("first store-backed run: stats = %+v, want 0 hits / 3 misses", s)
	}
	warm := AnalyzeWithStore(compileCons(t, consSrc), store)
	if s := warm.ConsStatsOf(); s.Misses != 0 || s.Hits != 3 {
		t.Fatalf("warm run: stats = %+v, want 3 hits / 0 misses", s)
	}
	requireSameDigests(t, cold, warm)
	requireSameDigests(t, first, warm)

	// Spot-check the queries the fixer actually issues on the warm run.
	mod := warm.mod
	put := mod.Func("put")
	if !warm.MayPointToPM(put.Params[0]) {
		t.Error("warm: put's pointer parameter should may-point-to-PM")
	}
	if !warm.MayPointToNonPM(put.Params[0]) {
		t.Error("warm: put's pointer parameter should also may-point-to-volatile (buf)")
	}
}

// Editing one function misses only that function's constraints; every
// other function replays from the store, and the solved relation equals
// a from-scratch analysis of the edited module.
func TestConstraintStoreEditedModuleReuse(t *testing.T) {
	const edited = `
pm int cell[16];
int buf[8];
void put(int *p, int v) {
	*p = v + 1;
	clwb(p);
	sfence();
}
void fill(int *q) {
	put(q, 1);
	put(q, 2);
}
int main() {
	put(&cell[0], 7);
	fill(&cell[1]);
	put(&buf[0], 3);
	pm_checkpoint();
	return cell[0];
}
`
	store := NewStore(0)
	AnalyzeWithStore(compileCons(t, consSrc), store)
	warm := AnalyzeWithStore(compileCons(t, edited), store)
	if s := warm.ConsStatsOf(); s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("edited warm run: stats = %+v, want 2 hits / 1 miss", s)
	}
	cold := Analyze(compileCons(t, edited))
	requireSameDigests(t, cold, warm)
}

// ObjectRef / ObjectIDByRef must round-trip for every object.
func TestObjectRefRoundTrip(t *testing.T) {
	a := Analyze(compileCons(t, consSrc))
	for _, o := range a.Objects() {
		ref := a.ObjectRef(o.ID)
		id, ok := a.ObjectIDByRef(ref)
		if !ok || id != o.ID {
			t.Errorf("object %d (%s): ref %q resolves to (%d, %v)", o.ID, o, ref, id, ok)
		}
	}
}
