package crashsim

import (
	"math/rand"
	"strconv"
	"strings"
)

// maxFeasible caps the feasible-schedule count computation so a crash
// point with many pending lines cannot overflow int64.
const maxFeasible = int64(1) << 40

// enumerateCuts produces the crash schedules for one crash point whose
// pending lines have the given store counts. Each schedule is a cuts
// vector: cuts[i] ∈ [0, sizes[i]] selects how many of line i's stores
// reached PM (the per-line prefix model). It returns the schedules plus
// the total feasible count Π(sizes[i]+1).
//
// When the feasible count fits the budget, enumeration is exhaustive.
// Otherwise the selection is deterministic stratified sampling:
//
//  1. the two corner schedules — all-zero (worst case: nothing unfenced
//     survived) and all-max (everything was evicted),
//  2. single-line deviations from each corner (one line fully evicted
//     while the rest vanish, and vice versa), which exercise the
//     "this line arrived without that one" orderings that break
//     naive recovery code,
//  3. seeded pseudo-random schedules to fill the remaining budget.
//
// The all-zero corner is always first: it is the schedule the repo's
// historical end-of-run spot check used, so sampling can never be weaker
// than that check was.
func enumerateCuts(sizes []int, budget int, rng *rand.Rand) ([][]int, int64) {
	feasible := int64(1)
	for _, n := range sizes {
		feasible *= int64(n + 1)
		if feasible > maxFeasible {
			feasible = maxFeasible
			break
		}
	}
	if budget < 1 {
		budget = 1
	}

	if feasible <= int64(budget) {
		return exhaustiveCuts(sizes), feasible
	}

	seen := make(map[string]bool, budget)
	var out [][]int
	add := func(cuts []int) {
		if len(out) >= budget {
			return
		}
		key := cutsKey(cuts)
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, cuts)
	}

	zero := make([]int, len(sizes))
	full := make([]int, len(sizes))
	for i, n := range sizes {
		full[i] = n
	}
	add(zero)
	add(append([]int(nil), full...))
	for i := range sizes {
		if sizes[i] == 0 {
			continue
		}
		dev := make([]int, len(sizes))
		dev[i] = sizes[i]
		add(dev)
		dev2 := append([]int(nil), full...)
		dev2[i] = 0
		add(dev2)
	}
	for tries := 0; len(out) < budget && tries < budget*20; tries++ {
		cuts := make([]int, len(sizes))
		for i, n := range sizes {
			cuts[i] = rng.Intn(n + 1)
		}
		add(cuts)
	}
	return out, feasible
}

// exhaustiveCuts walks the full cuts space odometer-style.
func exhaustiveCuts(sizes []int) [][]int {
	cur := make([]int, len(sizes))
	var out [][]int
	for {
		out = append(out, append([]int(nil), cur...))
		i := len(sizes) - 1
		for ; i >= 0; i-- {
			if cur[i] < sizes[i] {
				cur[i]++
				break
			}
			cur[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}

func cutsKey(cuts []int) string {
	var b strings.Builder
	for _, c := range cuts {
		b.WriteString(strconv.Itoa(c))
		b.WriteByte(',')
	}
	return b.String()
}
