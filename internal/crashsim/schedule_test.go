package crashsim

import (
	"math/rand"
	"reflect"
	"testing"

	"hippocrates/internal/interp"
)

func TestExhaustiveCutsCoversSpace(t *testing.T) {
	sizes := []int{2, 0, 3}
	got := exhaustiveCuts(sizes)
	want := (2 + 1) * (0 + 1) * (3 + 1)
	if len(got) != want {
		t.Fatalf("enumerated %d schedules, want %d", len(got), want)
	}
	seen := map[string]bool{}
	for _, cuts := range got {
		if len(cuts) != len(sizes) {
			t.Fatalf("schedule %v has wrong arity", cuts)
		}
		for i, c := range cuts {
			if c < 0 || c > sizes[i] {
				t.Fatalf("schedule %v out of bounds at line %d", cuts, i)
			}
		}
		k := cutsKey(cuts)
		if seen[k] {
			t.Fatalf("duplicate schedule %v", cuts)
		}
		seen[k] = true
	}
}

func TestEnumerateCutsExhaustiveWhenSmall(t *testing.T) {
	sizes := []int{1, 2}
	got, feasible := enumerateCuts(sizes, 16, rand.New(rand.NewSource(1)))
	if feasible != 6 {
		t.Fatalf("feasible = %d, want 6", feasible)
	}
	if len(got) != 6 {
		t.Fatalf("exhaustive enumeration returned %d schedules, want 6", len(got))
	}
}

func TestEnumerateCutsSampling(t *testing.T) {
	sizes := []int{3, 3, 3, 3, 3} // 4^5 = 1024 feasible
	budget := 20
	a, feasible := enumerateCuts(sizes, budget, rand.New(rand.NewSource(7)))
	if feasible != 1024 {
		t.Fatalf("feasible = %d, want 1024", feasible)
	}
	if len(a) != budget {
		t.Fatalf("sampled %d schedules, want the full budget %d", len(a), budget)
	}
	// Deterministic: the same seed reproduces the same selection.
	b, _ := enumerateCuts(sizes, budget, rand.New(rand.NewSource(7)))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sampling is not deterministic for a fixed seed")
	}
	// The all-zero corner (the historical worst-case spot check) is
	// always the first schedule; the all-max corner is present too.
	if !reflect.DeepEqual(a[0], []int{0, 0, 0, 0, 0}) {
		t.Fatalf("first schedule = %v, want the all-zero corner", a[0])
	}
	foundFull := false
	seen := map[string]bool{}
	for _, cuts := range a {
		if reflect.DeepEqual(cuts, []int{3, 3, 3, 3, 3}) {
			foundFull = true
		}
		for i, c := range cuts {
			if c < 0 || c > sizes[i] {
				t.Fatalf("schedule %v out of bounds at line %d", cuts, i)
			}
		}
		k := cutsKey(cuts)
		if seen[k] {
			t.Fatalf("duplicate schedule %v", cuts)
		}
		seen[k] = true
	}
	if !foundFull {
		t.Fatal("all-max corner missing from the sample")
	}
}

func TestEnumerateCutsOverflowGuard(t *testing.T) {
	sizes := make([]int, 64)
	for i := range sizes {
		sizes[i] = 1 << 10
	}
	got, feasible := enumerateCuts(sizes, 8, rand.New(rand.NewSource(3)))
	if feasible != maxFeasible {
		t.Fatalf("feasible = %d, want the %d cap", feasible, maxFeasible)
	}
	if len(got) != 8 {
		t.Fatalf("sampled %d schedules, want 8", len(got))
	}
}

func TestSelectPointsKeepsEligibleCheckpoints(t *testing.T) {
	s, f, c := interp.EvStore, interp.EvFlush, interp.EvCheckpoint
	log := []interp.PMEventKind{s, f, c, s, s, f, c, s, c}
	arity1 := &entrySpec{name: "crash_check", arity: 1}
	arity0 := &entrySpec{name: "crash_check", arity: 0}

	// Invariant present: every event is eligible, checkpoints always kept.
	got := selectPoints(log, 4, true, arity1)
	for _, ck := range []int{3, 7, 9} {
		if !containsInt(got, ck) {
			t.Fatalf("budget 4: checkpoint event %d dropped (got %v)", ck, got)
		}
	}
	if len(got) != 4 {
		t.Fatalf("budget 4: selected %d points %v", len(got), got)
	}

	// Big budget: everything simulated.
	if got := selectPoints(log, 100, true, arity1); len(got) != len(log) {
		t.Fatalf("budget 100: selected %v, want all %d events", got, len(log))
	}

	// No invariant entry: only checkpoint events can run anything.
	if got := selectPoints(log, 100, false, arity1); !reflect.DeepEqual(got, []int{3, 7, 9}) {
		t.Fatalf("no invariant: selected %v, want the checkpoint events", got)
	}

	// No invariant and an arity-0 promise: only the final checkpoint.
	if got := selectPoints(log, 100, false, arity0); !reflect.DeepEqual(got, []int{9}) {
		t.Fatalf("arity-0 promise: selected %v, want only the final checkpoint", got)
	}

	// Points come out sorted regardless of sampling order.
	got = selectPoints(log, 5, true, arity1)
	if !sortedInts(got) {
		t.Fatalf("points not sorted: %v", got)
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func sortedInts(xs []int) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			return false
		}
	}
	return true
}

// TestPointSelectionStableAcrossDedup is the deflake guard for the fast
// path: crash-point selection and per-point schedule enumeration are
// pure functions of the event log, the budgets, and the seed — the
// dedup mode must not leak into either. A Validate-level twin
// (TestDedupVerdictsIdentical) checks the same property end to end via
// Report.PointEvents; this unit pins the two deterministic inputs
// directly so a regression localizes.
func TestPointSelectionStableAcrossDedup(t *testing.T) {
	s, f, c := interp.EvStore, interp.EvFlush, interp.EvCheckpoint
	log := []interp.PMEventKind{s, s, f, c, s, f, s, c, s, s, c}
	arity1 := &entrySpec{name: "crash_check", arity: 1}
	for _, budget := range []int{1, 3, 5, 100} {
		a := selectPoints(log, budget, true, arity1)
		b := selectPoints(log, budget, true, arity1)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("budget %d: point selection not reproducible: %v vs %v", budget, a, b)
		}
	}
	// Schedule order per point depends only on (sizes, budget, seed):
	// the stratified sample opens with the all-zero corner and repeats
	// exactly for the per-point seed formula both engine modes use.
	sizes := []int{2, 4, 1, 3}
	const seed, point = 1, 17
	mk := func() [][]int {
		cuts, _ := enumerateCuts(sizes, 8, rand.New(rand.NewSource(seed+int64(point)*1_000_003)))
		return cuts
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("schedule enumeration not reproducible for the per-point seed")
	}
	if !reflect.DeepEqual(a[0], []int{0, 0, 0, 0}) {
		t.Fatalf("first schedule = %v, want the all-zero corner first (stratified order)", a[0])
	}
}
