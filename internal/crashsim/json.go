package crashsim

// ReportDoc is the deterministic JSON encoding of a Report, served by
// hippocratesd and pinned by the golden-file tests in internal/cli.
// Everything outside Stats is a pure function of (module, Options):
// point selection, schedule enumeration, and verdicts are deterministic
// whatever the worker count, so two runs of the same request marshal to
// identical bytes. Stats is the one concurrency-sensitive corner — cache
// and image accounting depends on how parallel crash points interleave
// their verdict-cache lookups — which is why it is quarantined in its own
// sub-object that identity comparisons (the server soak test) zero out.
type ReportDoc struct {
	Passed          bool         `json:"passed"`
	TotalEvents     int          `json:"total_events"`
	Points          int          `json:"points"`
	PrunedPoints    int          `json:"pruned_points"`
	PointEvents     []int        `json:"point_events"`
	Schedules       int          `json:"schedules"`
	PrunedSchedules int64        `json:"pruned_schedules"`
	InvariantEntry  string       `json:"invariant_entry,omitempty"`
	RecoveryEntry   string       `json:"recovery_entry,omitempty"`
	DedupEnabled    bool         `json:"dedup"`
	Failures        []FailureDoc `json:"failures"`
	Stats           StatsDoc     `json:"stats"`
}

// FailureDoc is one failed crash schedule in API form.
type FailureDoc struct {
	Event     int    `json:"event"`
	Kind      string `json:"kind"`
	Completed int    `json:"completed"`
	Cuts      []int  `json:"cuts"`
	Entry     string `json:"entry"`
	// Error is the first line of the recovery error ("" when the entry
	// returned Ret instead of erroring).
	Error string `json:"error,omitempty"`
	Ret   uint64 `json:"ret"`
}

// StatsDoc is the run's cache/COW accounting. Deterministic for a
// sequential run (Workers=1); under a parallel pool racing lookups can
// shift hits/misses and built counts without changing any verdict.
type StatsDoc struct {
	ImagesBuilt      int   `json:"images_built"`
	DedupedSchedules int   `json:"deduped_schedules"`
	CacheHits        int64 `json:"cache_hits"`
	CacheMisses      int64 `json:"cache_misses"`
	PagesShared      int64 `json:"pages_shared"`
	PagesCopied      int64 `json:"pages_copied"`
}

// Doc converts the report to its API encoding. Slices come out non-nil so
// the JSON always carries [] rather than null.
func (r *Report) Doc() *ReportDoc {
	if r == nil {
		return nil
	}
	d := &ReportDoc{
		Passed:          r.Passed(),
		TotalEvents:     r.TotalEvents,
		Points:          r.Points,
		PrunedPoints:    r.PrunedPoints,
		PointEvents:     append([]int{}, r.PointEvents...),
		Schedules:       r.Schedules,
		PrunedSchedules: r.PrunedSchedules,
		InvariantEntry:  r.InvariantEntry,
		RecoveryEntry:   r.RecoveryEntry,
		DedupEnabled:    r.DedupEnabled,
		Failures:        make([]FailureDoc, 0, len(r.Failures)),
		Stats: StatsDoc{
			ImagesBuilt:      r.ImagesBuilt,
			DedupedSchedules: r.DedupedSchedules,
			CacheHits:        r.CacheHits,
			CacheMisses:      r.CacheMisses,
			PagesShared:      r.PagesShared,
			PagesCopied:      r.PagesCopied,
		},
	}
	for _, f := range r.Failures {
		fd := FailureDoc{
			Event:     f.Event,
			Kind:      f.Kind.String(),
			Completed: f.Completed,
			Cuts:      append([]int{}, f.Cuts...),
			Entry:     f.Entry,
			Ret:       f.Ret,
		}
		if f.Err != nil {
			fd.Error = firstLine(f.Err.Error())
		}
		d.Failures = append(d.Failures, fd)
	}
	return d
}
