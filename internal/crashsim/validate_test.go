package crashsim_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"hippocrates/internal/core"
	"hippocrates/internal/crashsim"
	"hippocrates/internal/ir"
	"hippocrates/internal/lang"
)

// srcPublish is a minimal unflushed-payload bug: the payload store never
// reaches PM, yet the flag that publishes it does. The invariant entry is
// eviction-safe (only values actually stored may appear); the durability
// promise — checkpoint passed means both words are durable — anchors at
// the checkpoint, where a repaired build provably has nothing pending.
const srcPublish = `
pm int payload;
pm int flag;

int invariant_check() {
	if (payload != 0 && payload != 42) { return 1; }
	if (flag != 0 && flag != 1) { return 2; }
	return 0;
}

int crash_check(int completed) {
	if (completed >= 1) {
		if (payload != 42) { return 1; }
		if (flag != 1) { return 2; }
	}
	return 0;
}

int main() {
	payload = 42; // missing flush
	flag = 1;
	clwb(&flag);
	sfence();
	pm_checkpoint();
	return 0;
}
`

func TestValidateFindsPublishBug(t *testing.T) {
	mod := lang.MustCompile("publish.pmc", srcPublish)
	rep, err := crashsim.Validate(mod, crashsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed() {
		t.Fatalf("buggy publish survived %d schedules over %d points", rep.Schedules, rep.Points)
	}
	f := rep.Failures[0]
	if f.Entry != "invariant_check" && f.Entry != "crash_check" {
		t.Errorf("failure attributed to %q", f.Entry)
	}
	if f.Event < 1 || f.Event > rep.TotalEvents {
		t.Errorf("failure event %d outside [1, %d]", f.Event, rep.TotalEvents)
	}
}

func TestValidatePassesAfterRepair(t *testing.T) {
	mod := lang.MustCompile("publish.pmc", srcPublish)
	pr, err := core.RunAndRepair(mod, "main", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Fixed() {
		t.Fatalf("repair incomplete:\n%s", pr.After.Summary())
	}
	rep, err := crashsim.Validate(mod, crashsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("repaired build failed: %s", rep.Failures[0])
	}
	if rep.Points < 1 || rep.Schedules < 1 {
		t.Fatalf("degenerate run: %d points, %d schedules", rep.Points, rep.Schedules)
	}
}

// srcWide pends many cache lines at once so a crash point's feasible
// image count exceeds any small budget, forcing the sampler.
const srcWide = `
pm int slots[128];
pm int done;

int invariant_check() {
	if (done == 1) {
		for (int i = 0; i < 16; i++) {
			if (slots[i * 16] != i + 1) { return 1 + i; }
		}
	}
	return 0;
}

int main() {
	for (int i = 0; i < 16; i++) {
		slots[i * 16] = i + 1; // 16 distinct lines, none flushed
	}
	done = 1;
	clwb(&done);
	sfence();
	pm_checkpoint();
	return 0;
}
`

// TestSampledNeverWeakerThanExhaustiveCorner: the sampler's contract is
// that its first schedule is the all-zero corner, so any failure the
// historical worst-case check (or an exhaustive sweep) would find at a
// crash point is also found under the tightest image budget.
func TestSampledNeverWeakerThanExhaustiveCorner(t *testing.T) {
	exhaustive, err := crashsim.Validate(lang.MustCompile("wide.pmc", srcWide),
		crashsim.Options{MaxImages: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := crashsim.Validate(lang.MustCompile("wide.pmc", srcWide),
		crashsim.Options{MaxImages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if exhaustive.Passed() {
		t.Fatal("exhaustive sweep missed the seeded publish bug")
	}
	if sampled.Passed() {
		t.Fatal("sampling hid a failure the exhaustive sweep finds")
	}
	if sampled.PrunedSchedules == 0 {
		t.Fatal("budget 4 never pruned; the test is not exercising the sampler")
	}
}

// TestValidateWorkerPool drives a workload with enough crash points to
// spread across the full worker pool (run under -race this doubles as the
// concurrency suite for the engine).
func TestValidateWorkerPool(t *testing.T) {
	var b strings.Builder
	b.WriteString("pm int cells[256];\n")
	b.WriteString(`
int invariant_check() {
	for (int i = 0; i < 16; i++) {
		int v = cells[i * 16];
		if (v != 0 && v != i + 1) { return 1 + i; }
	}
	return 0;
}

int main() {
	for (int i = 0; i < 16; i++) {
		cells[i * 16] = i + 1;
		clwb(&cells[i * 16]);
		sfence();
		pm_checkpoint();
	}
	return 0;
}
`)
	rep, err := crashsim.Validate(lang.MustCompile("pool.pmc", b.String()),
		crashsim.Options{Workers: 8, MaxPoints: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("correct program failed: %s", rep.Failures[0])
	}
	if rep.Points < 16 {
		t.Fatalf("only %d crash points; pool under-exercised", rep.Points)
	}
}

// TestValidateEntryShapes covers the entry-resolution contract: a module
// with neither entry is an error, "-" disables an entry, and a
// two-parameter entry is rejected.
func TestValidateEntryShapes(t *testing.T) {
	const srcNone = `
pm int x;
int main() {
	x = 1;
	clwb(&x);
	sfence();
	return 0;
}
`
	if _, err := crashsim.Validate(lang.MustCompile("none.pmc", srcNone), crashsim.Options{}); err == nil {
		t.Error("module without recovery entries validated")
	}

	mod := lang.MustCompile("publish.pmc", srcPublish)
	rep, err := crashsim.Validate(mod, crashsim.Options{Recovery: "-"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecoveryEntry != "" || rep.InvariantEntry != "invariant_check" {
		t.Errorf("entries = (%q, %q), want invariant only", rep.InvariantEntry, rep.RecoveryEntry)
	}

	const srcBadArity = `
pm int x;
int invariant_check(int a, int b) { return 0; }
int main() {
	x = 1;
	clwb(&x);
	sfence();
	return 0;
}
`
	if _, err := crashsim.Validate(lang.MustCompile("bad.pmc", srcBadArity), crashsim.Options{}); err == nil {
		t.Error("two-parameter recovery entry accepted")
	}
}

// failureKeys canonicalizes a report's failures for cross-run comparison.
func failureKeys(rep *crashsim.Report) []string {
	out := make([]string, len(rep.Failures))
	for i, f := range rep.Failures {
		out[i] = fmt.Sprintf("%d/%s/%d/%v/%s/%d", f.Event, f.Kind, f.Completed, f.Cuts, f.Entry, f.Ret)
	}
	return out
}

// TestDedupVerdictsIdentical is the dedup soundness gate at unit scale:
// with and without the content-addressed verdict cache, a buggy build
// and a repaired build must report the same schedules, the same crash
// points, and byte-for-byte the same failures. Only the work accounting
// (images built, cache traffic) may differ.
func TestDedupVerdictsIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		mod  func() *ir.Module
	}{
		{"buggy-publish", func() *ir.Module { return lang.MustCompile("publish.pmc", srcPublish) }},
		{"buggy-wide", func() *ir.Module { return lang.MustCompile("wide.pmc", srcWide) }},
		{"repaired-publish", func() *ir.Module {
			mod := lang.MustCompile("publish.pmc", srcPublish)
			if _, err := core.RunAndRepair(mod, "main", core.Options{}); err != nil {
				t.Fatal(err)
			}
			return mod
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := crashsim.Options{MaxImages: 8}
			on, err := crashsim.Validate(tc.mod(), opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.NoDedup = true
			off, err := crashsim.Validate(tc.mod(), opts)
			if err != nil {
				t.Fatal(err)
			}
			if !on.DedupEnabled || off.DedupEnabled {
				t.Fatalf("DedupEnabled flags = (%v, %v), want (true, false)", on.DedupEnabled, off.DedupEnabled)
			}
			if on.Schedules != off.Schedules || on.Points != off.Points {
				t.Errorf("work disagrees: dedup %d schedules/%d points, no-dedup %d/%d",
					on.Schedules, on.Points, off.Schedules, off.Points)
			}
			if !reflect.DeepEqual(on.PointEvents, off.PointEvents) {
				t.Errorf("point selection diverged: %v vs %v", on.PointEvents, off.PointEvents)
			}
			if a, b := failureKeys(on), failureKeys(off); !reflect.DeepEqual(a, b) {
				t.Errorf("verdicts diverged:\n  dedup:    %v\n  no-dedup: %v", a, b)
			}
			if off.CacheHits != 0 || off.CacheMisses != 0 || off.DedupedSchedules != 0 {
				t.Errorf("no-dedup run reported cache traffic: %d hits, %d misses, %d deduped",
					off.CacheHits, off.CacheMisses, off.DedupedSchedules)
			}
			if on.ImagesBuilt > off.ImagesBuilt {
				t.Errorf("dedup built more images (%d) than no-dedup (%d)", on.ImagesBuilt, off.ImagesBuilt)
			}
			if on.CacheHits+on.CacheMisses == 0 {
				t.Error("dedup run recorded no cache lookups")
			}
		})
	}
}

// TestDedupAccounting pins the new Report fields on a run where byte
// collisions are guaranteed: a correct program whose every crash point
// leaves the same durable bytes feasible many times over.
func TestDedupAccounting(t *testing.T) {
	mod := lang.MustCompile("publish.pmc", srcPublish)
	if _, err := core.RunAndRepair(mod, "main", core.Options{}); err != nil {
		t.Fatal(err)
	}
	rep, err := crashsim.Validate(mod, crashsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("repaired build failed: %s", rep.Failures[0])
	}
	if rep.DedupedSchedules == 0 && rep.CacheHits == 0 {
		t.Error("no dedup on a workload full of identical images")
	}
	if rep.ImagesBuilt == 0 {
		t.Error("ImagesBuilt = 0; nothing was ever judged")
	}
	if rep.ImagesBuilt != int(rep.CacheMisses) {
		t.Errorf("ImagesBuilt (%d) != CacheMisses (%d): every miss should boot exactly one image",
			rep.ImagesBuilt, rep.CacheMisses)
	}
	if rep.PagesShared == 0 {
		t.Error("PagesShared = 0; captures are not sharing durable pages")
	}
	if !strings.Contains(rep.Summary(), "crashsim: dedup:") {
		t.Errorf("Summary lacks the dedup line:\n%s", rep.Summary())
	}
	rep2, err := crashsim.Validate(lang.MustCompile("publish.pmc", srcPublish),
		crashsim.Options{NoDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep2.Summary(), "dedup disabled") {
		t.Errorf("NoDedup Summary lacks the disabled note:\n%s", rep2.Summary())
	}
}

// TestSharedCacheAcrossRuns: a second Validate of the same module with a
// shared VerdictCache must serve (nearly) everything from the cache.
func TestSharedCacheAcrossRuns(t *testing.T) {
	mod := lang.MustCompile("publish.pmc", srcPublish)
	if _, err := core.RunAndRepair(mod, "main", core.Options{}); err != nil {
		t.Fatal(err)
	}
	cache := crashsim.NewVerdictCache()
	opts := crashsim.Options{Cache: cache}
	first, err := crashsim.Validate(mod, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := crashsim.Validate(mod, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheMisses != 0 {
		t.Errorf("re-validation of an identical module missed the shared cache %d time(s)", second.CacheMisses)
	}
	if second.ImagesBuilt != 0 {
		t.Errorf("re-validation built %d image(s); want 0 (all verdicts cached)", second.ImagesBuilt)
	}
	if first.Passed() != second.Passed() {
		t.Error("shared cache changed the verdict")
	}
	cache.Reset()
	third, err := crashsim.Validate(mod, opts)
	if err != nil {
		t.Fatal(err)
	}
	if third.ImagesBuilt == 0 {
		t.Error("Reset did not invalidate the cache")
	}
}
