// Package crashsim is the crash-injection validation engine: it turns
// the repo's "do no harm" claim from a single end-of-run spot check into
// a validated property over crash schedules.
//
// The engine walks a program's PM event stream (stores, NT-stores,
// flushes, fences, durability points), injects a crash at every event
// boundary (exhaustively on small traces, by deterministic stratified
// sampling above a budget), expands each crash point into the set of
// feasible post-crash PM images, and boots a fresh interpreter on every
// image to run the program's declared recovery entrypoints. A recovery
// entry fails a schedule by returning non-zero, tripping pm_assert, or
// faulting.
//
// # Schedule model
//
// The feasible images follow the pmem.Tracker state machine at cache-line
// granularity: a line writes back to PM atomically and cumulatively, so
// at a crash the line's durable content is some *prefix* of its pending
// store sequence (the content at its last eviction), chosen independently
// per line. A crash point with pending lines of sizes n_1..n_L therefore
// has Π(n_i+1) feasible images — not 2^stores: arbitrary subsets within
// a line are not reachable by any eviction order.
//
// # Recovery-entry contract
//
// Programs declare up to two entries, both taking either no parameter or
// one int (the number of durability points passed before the crash):
//
//   - invariant_check: a structural consistency predicate that must hold
//     on every feasible image of a correct build, at every crash point.
//     It may not assume any unfenced data arrived or is ordered.
//   - crash_check: the durability promise anchored at durability points.
//     It runs only when the crash lands on a checkpoint event, where a
//     repaired build provably has an empty pending set (that is exactly
//     what Hippocrates' fixes guarantee), so its promises are checkable
//     without false positives. A no-parameter crash_check states the
//     whole workload's promises and runs only at the final durability
//     point.
package crashsim

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/obs"
)

// DefaultMaxPoints bounds how many crash points are simulated when
// Options.MaxPoints is zero. Checkpoint events are always included.
const DefaultMaxPoints = 256

// DefaultMaxImages bounds the feasible images enumerated per crash point
// when Options.MaxImages is zero.
const DefaultMaxImages = 16

// Options configures one validation run.
type Options struct {
	// Entry is the workload entrypoint (default "main"); Args its
	// integer arguments.
	Entry string
	Args  []uint64
	// Invariant and Recovery name the two recovery entries (defaults
	// "invariant_check" and "crash_check"). A named entry that the
	// module does not define is skipped; if neither exists, Validate
	// returns an error. Set a name to "-" to disable that entry even
	// when the module defines it.
	Invariant string
	Recovery  string
	// MaxPoints bounds simulated crash points (0 = DefaultMaxPoints).
	// All checkpoint events are always kept; the remaining budget is
	// spread evenly over the other events, and the pruning is logged.
	MaxPoints int
	// MaxImages bounds feasible images per crash point (0 =
	// DefaultMaxImages). Below the bound enumeration is exhaustive;
	// above it, corner schedules (nothing evicted / everything evicted),
	// single-line deviations, and seeded pseudo-random schedules fill
	// the budget deterministically.
	MaxImages int
	// Workers sizes the parallel crash-point pool (0 = GOMAXPROCS,
	// capped at 8).
	Workers int
	// Seed drives the deterministic schedule sampling (0 means 1).
	Seed int64
	// StepLimit / Deadline bound every interpreter run the engine makes
	// (the probe, each crashed workload, each recovery run).
	StepLimit int64
	Deadline  time.Time
	// Obs receives "crashsim" child spans and schedule counters.
	Obs *obs.Span
	// Log, when non-nil, receives pruning notices and per-failure lines.
	Log io.Writer
}

// Failure describes one failed crash schedule: the crash point, the
// per-line eviction prefix that produced the image, and how recovery
// rejected it.
type Failure struct {
	// Event is the 1-based PM event index the crash was injected at.
	Event int
	// Kind is the event's kind (store, flush, fence, checkpoint, ...).
	Kind interp.PMEventKind
	// Completed is the number of durability points passed before the
	// crash (the argument handed to parameterized recovery entries).
	Completed int
	// Cuts is the failing schedule: entry i is how many of pending line
	// i's stores reached PM (see pmem.Tracker.PendingLines).
	Cuts []int
	// Entry is the recovery entrypoint that rejected the image.
	Entry string
	// Err is the recovery error (pm_assert, fault, limit), or nil when
	// the entry returned the non-zero value Ret instead.
	Err error
	Ret uint64
}

func (f Failure) String() string {
	how := fmt.Sprintf("returned %d", int64(f.Ret))
	if f.Err != nil {
		how = firstLine(f.Err.Error())
	}
	return fmt.Sprintf("crash at event %d (%s, %d checkpoint(s) done), schedule %v: @%s %s",
		f.Event, f.Kind, f.Completed, f.Cuts, f.Entry, how)
}

// Report is the outcome of one validation run.
type Report struct {
	// TotalEvents is the PM event count of the workload; Points of them
	// were crash-injected and PrunedPoints skipped under MaxPoints.
	TotalEvents  int
	Points       int
	PrunedPoints int
	// Schedules counts executed post-crash images; PrunedSchedules
	// counts feasible images that the per-point budget skipped.
	Schedules       int
	PrunedSchedules int64
	// Failures holds the first failing schedule of every failed crash
	// point, ordered by event index.
	Failures []Failure
	// InvariantEntry / RecoveryEntry are the entries actually run (""
	// when absent).
	InvariantEntry string
	RecoveryEntry  string
}

// Passed reports whether every executed schedule recovered cleanly.
func (r *Report) Passed() bool { return len(r.Failures) == 0 }

// Summary renders the report for CLI output.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "crashsim: %d crash point(s) of %d PM events, %d schedule(s) executed",
		r.Points, r.TotalEvents, r.Schedules)
	if r.PrunedPoints > 0 || r.PrunedSchedules > 0 {
		fmt.Fprintf(&b, " (pruned: %d point(s), %d schedule(s))", r.PrunedPoints, r.PrunedSchedules)
	}
	b.WriteString("\n")
	if r.Passed() {
		b.WriteString("crashsim: all schedules recovered cleanly\n")
		return b.String()
	}
	fmt.Fprintf(&b, "crashsim: %d crash point(s) FAILED recovery:\n", len(r.Failures))
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

// entrySpec is a resolved recovery entry.
type entrySpec struct {
	name  string
	arity int
}

// Validate crash-injects mod's workload and checks every enumerated
// post-crash image against the module's recovery entries. The returned
// error covers engine-level problems (missing entries, a workload that
// does not complete); schedule failures land in the report.
func Validate(mod *ir.Module, opts Options) (rep *Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 16<<10)
			buf = buf[:runtime.Stack(buf, false)]
			err = fmt.Errorf("crashsim: panic during validation: %v\n%s", r, buf)
		}
	}()

	if opts.Entry == "" {
		opts.Entry = "main"
	}
	if opts.Invariant == "" {
		opts.Invariant = "invariant_check"
	}
	if opts.Recovery == "" {
		opts.Recovery = "crash_check"
	}
	if opts.MaxPoints <= 0 {
		opts.MaxPoints = DefaultMaxPoints
	}
	if opts.MaxImages <= 0 {
		opts.MaxImages = DefaultMaxImages
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
		if opts.Workers > 8 {
			opts.Workers = 8
		}
	}

	inv, err := resolveEntry(mod, opts.Invariant)
	if err != nil {
		return nil, err
	}
	rec, err := resolveEntry(mod, opts.Recovery)
	if err != nil {
		return nil, err
	}
	if inv == nil && rec == nil {
		return nil, fmt.Errorf("crashsim: module declares neither @%s nor @%s; nothing to validate",
			opts.Invariant, opts.Recovery)
	}

	sp := opts.Obs.Start("crashsim")
	defer sp.End()
	sp.SetAttr("entry", opts.Entry)

	// Probe run: learn the PM event stream (and renumber the module once,
	// so the parallel workers below share it read-only).
	probe, err := interp.New(mod, interp.Options{StepLimit: opts.StepLimit, Deadline: opts.Deadline})
	if err != nil {
		return nil, err
	}
	if _, err := probe.Run(opts.Entry, opts.Args...); err != nil {
		return nil, fmt.Errorf("crashsim: workload @%s did not complete: %w", opts.Entry, err)
	}
	log := append([]interp.PMEventKind(nil), probe.PMEventLog()...)

	points := selectPoints(log, opts.MaxPoints, inv != nil, rec)
	rep = &Report{TotalEvents: len(log), Points: len(points), PrunedPoints: len(log) - len(points)}
	if inv != nil {
		rep.InvariantEntry = inv.name
	}
	if rec != nil {
		rep.RecoveryEntry = rec.name
	}
	if rep.PrunedPoints > 0 && opts.Log != nil {
		fmt.Fprintf(opts.Log, "crashsim: simulating %d of %d PM events (%d pruned or ineligible; every eligible checkpoint kept)\n",
			len(points), len(log), rep.PrunedPoints)
	}

	// completed[i] = durability points passed once event points[i] (its
	// own checkpoint included) has executed.
	ckptsUpTo := make([]int, len(log)+1)
	for i, k := range log {
		ckptsUpTo[i+1] = ckptsUpTo[i]
		if k == interp.EvCheckpoint {
			ckptsUpTo[i+1]++
		}
	}
	lastEvent := len(log)

	type pointResult struct {
		schedules int
		pruned    int64
		failure   *Failure
		err       error
	}
	results := make([]pointResult, len(points))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				res := &results[idx]
				func() {
					defer func() {
						if r := recover(); r != nil {
							buf := make([]byte, 16<<10)
							buf = buf[:runtime.Stack(buf, false)]
							res.err = fmt.Errorf("crashsim: panic at crash point %d: %v\n%s", points[idx], r, buf)
						}
					}()
					res.schedules, res.pruned, res.failure, res.err = crashPoint(
						mod, opts, inv, rec, points[idx], log[points[idx]-1],
						ckptsUpTo[points[idx]], points[idx] == lastEvent)
				}()
			}
		}()
	}
	for i := range points {
		work <- i
	}
	close(work)
	wg.Wait()

	for _, res := range results {
		if res.err != nil {
			return nil, res.err
		}
		rep.Schedules += res.schedules
		rep.PrunedSchedules += res.pruned
		if res.failure != nil {
			rep.Failures = append(rep.Failures, *res.failure)
		}
	}
	sort.Slice(rep.Failures, func(i, j int) bool { return rep.Failures[i].Event < rep.Failures[j].Event })
	if opts.Log != nil {
		for _, f := range rep.Failures {
			fmt.Fprintf(opts.Log, "crashsim: FAIL %s\n", f)
		}
	}
	sp.Add("crash.points", int64(rep.Points))
	sp.Add("crash.points_pruned", int64(rep.PrunedPoints))
	sp.Add("crash.schedules", int64(rep.Schedules))
	sp.Add("crash.schedules_pruned", rep.PrunedSchedules)
	sp.Add("crash.failures", int64(len(rep.Failures)))
	return rep, nil
}

// crashPoint re-runs the workload to crash at event k, enumerates the
// feasible images there, and recovers each. It returns the first failing
// schedule (enumeration at this point stops there: the point is failed).
func crashPoint(mod *ir.Module, opts Options, inv, rec *entrySpec, k int, kind interp.PMEventKind, completed int, last bool) (int, int64, *Failure, error) {
	mach, err := interp.New(mod, interp.Options{
		CrashAtEvent: k, StepLimit: opts.StepLimit, Deadline: opts.Deadline,
	})
	if err != nil {
		return 0, 0, nil, err
	}
	if _, err := mach.Run(opts.Entry, opts.Args...); !errors.Is(err, interp.ErrSimulatedCrash) {
		return 0, 0, nil, fmt.Errorf("crashsim: crash at event %d did not fire (err=%v)", k, err)
	}

	lines := mach.Track.PendingLines()
	sizes := make([]int, len(lines))
	for i, pl := range lines {
		sizes[i] = len(pl.Stores)
	}
	rng := rand.New(rand.NewSource(opts.Seed + int64(k)*1_000_003))
	schedules, feasible := enumerateCuts(sizes, opts.MaxImages, rng)
	pruned := feasible - int64(len(schedules))

	executed := 0
	for _, cuts := range schedules {
		executed++
		f, err := recoverImage(mod, opts, mach, inv, rec, cuts, k, kind, completed, last)
		if err != nil {
			return executed, pruned, nil, err
		}
		if f != nil {
			return executed, pruned, f, nil
		}
	}
	return executed, pruned, nil, nil
}

// recoverImage builds the image for one schedule and runs the applicable
// recovery entries on it. A non-nil Failure means the schedule failed;
// a non-nil error means the engine itself broke.
func recoverImage(mod *ir.Module, opts Options, mach *interp.Machine, inv, rec *entrySpec, cuts []int, k int, kind interp.PMEventKind, completed int, last bool) (*Failure, error) {
	runEntry := func(e *entrySpec) (*Failure, error) {
		img := mach.CrashImageCuts(cuts)
		m2, err := interp.New(mod, interp.Options{
			Memory: img, ResumePM: true,
			StepLimit: opts.StepLimit, Deadline: opts.Deadline,
		})
		if err != nil {
			return nil, err
		}
		var args []uint64
		if e.arity == 1 {
			args = []uint64{uint64(completed)}
		}
		ret, err := m2.Run(e.name, args...)
		if err != nil || ret != 0 {
			return &Failure{
				Event: k, Kind: kind, Completed: completed,
				Cuts: append([]int(nil), cuts...), Entry: e.name, Err: err, Ret: ret,
			}, nil
		}
		return nil, nil
	}

	if inv != nil {
		if f, err := runEntry(inv); f != nil || err != nil {
			return f, err
		}
	}
	// The promise entry is anchored at durability points: parameterized
	// entries run at every checkpoint-event crash, no-parameter entries
	// only at the final one (they state whole-workload promises).
	if rec != nil && kind == interp.EvCheckpoint && (rec.arity == 1 || last) {
		if f, err := runEntry(rec); f != nil || err != nil {
			return f, err
		}
	}
	return nil, nil
}

// resolveEntry looks up a recovery entry and checks its shape: defined,
// and taking either no parameter or a single integer. A missing entry is
// nil (skipped); "-" disables lookup.
func resolveEntry(mod *ir.Module, name string) (*entrySpec, error) {
	if name == "-" {
		return nil, nil
	}
	fn := mod.Func(name)
	if fn == nil || fn.IsDecl() {
		return nil, nil
	}
	if len(fn.Params) > 1 {
		return nil, fmt.Errorf("crashsim: recovery entry @%s takes %d parameters; want 0, or 1 (checkpoints completed)",
			name, len(fn.Params))
	}
	return &entrySpec{name: name, arity: len(fn.Params)}, nil
}

// selectPoints picks the crash points to simulate: every checkpoint
// event always, plus an even deterministic spread of the remaining
// events up to budget. Events where no entry could run are skipped
// outright (they count as pruned): without an invariant entry a
// non-checkpoint crash has nothing to validate, and an arity-0 promise
// entry only speaks about the final durability point.
func selectPoints(log []interp.PMEventKind, budget int, invAll bool, rec *entrySpec) []int {
	lastCkpt := 0
	for i, k := range log {
		if k == interp.EvCheckpoint {
			lastCkpt = i + 1
		}
	}
	var ckpts, rest []int
	for i, k := range log {
		switch {
		case k == interp.EvCheckpoint:
			if !invAll && rec != nil && rec.arity == 0 && i+1 != lastCkpt {
				continue
			}
			ckpts = append(ckpts, i+1)
		case invAll:
			rest = append(rest, i+1)
		}
	}
	points := append([]int(nil), ckpts...)
	room := budget - len(points)
	if room >= len(rest) {
		points = append(points, rest...)
	} else if room > 0 {
		// Evenly spaced sample over the non-checkpoint events.
		for i := 0; i < room; i++ {
			points = append(points, rest[i*len(rest)/room])
		}
	}
	sort.Ints(points)
	return points
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
