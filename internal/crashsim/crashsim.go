// Package crashsim is the crash-injection validation engine: it turns
// the repo's "do no harm" claim from a single end-of-run spot check into
// a validated property over crash schedules.
//
// The engine walks a program's PM event stream (stores, NT-stores,
// flushes, fences, durability points), injects a crash at every event
// boundary (exhaustively on small traces, by deterministic stratified
// sampling above a budget), expands each crash point into the set of
// feasible post-crash PM images, and boots a fresh interpreter on every
// distinct image to run the program's declared recovery entrypoints. A
// recovery entry fails a schedule by returning non-zero, tripping
// pm_assert, or faulting.
//
// # Schedule model
//
// The feasible images follow the pmem.Tracker state machine at cache-line
// granularity: a line writes back to PM atomically and cumulatively, so
// at a crash the line's durable content is some *prefix* of its pending
// store sequence (the content at its last eviction), chosen independently
// per line. A crash point with pending lines of sizes n_1..n_L therefore
// has Π(n_i+1) feasible images — not 2^stores: arbitrary subsets within
// a line are not reachable by any eviction order.
//
// # Fast path
//
// Two workload executions cover every crash point: a probe run learns
// the event stream, then a capture run snapshots the durability state at
// each selected boundary (copy-on-write, so unchanged durable pages are
// shared across all points). Per point, a pmem.ImageBuilder walks the
// schedule list by applying per-line deltas between consecutive cut
// vectors instead of rebuilding each image from the durable base, and a
// content-addressed VerdictCache maps image hashes to recovery
// outcomes, so schedules that collapse to byte-identical images boot
// recovery exactly once. Dedup never changes a verdict — the interpreter
// is deterministic over image bytes — and Options.NoDedup turns it off
// for debugging suspected divergence.
//
// # Recovery-entry contract
//
// Programs declare up to two entries, both taking either no parameter or
// one int (the number of durability points passed before the crash):
//
//   - invariant_check: a structural consistency predicate that must hold
//     on every feasible image of a correct build, at every crash point.
//     It may not assume any unfenced data arrived or is ordered.
//   - crash_check: the durability promise anchored at durability points.
//     It runs only when the crash lands on a checkpoint event, where a
//     repaired build provably has an empty pending set (that is exactly
//     what Hippocrates' fixes guarantee), so its promises are checkable
//     without false positives. A no-parameter crash_check states the
//     whole workload's promises and runs only at the final durability
//     point.
package crashsim

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/obs"
	"hippocrates/internal/pmem"
)

// DefaultMaxPoints bounds how many crash points are simulated when
// Options.MaxPoints is zero. Checkpoint events are always included.
const DefaultMaxPoints = 256

// DefaultMaxImages bounds the feasible images enumerated per crash point
// when Options.MaxImages is zero.
const DefaultMaxImages = 16

// Options configures one validation run.
type Options struct {
	// Entry is the workload entrypoint (default "main"); Args its
	// integer arguments.
	Entry string
	Args  []uint64
	// Invariant and Recovery name the two recovery entries (defaults
	// "invariant_check" and "crash_check"). A named entry that the
	// module does not define is skipped; if neither exists, Validate
	// returns an error. Set a name to "-" to disable that entry even
	// when the module defines it.
	Invariant string
	Recovery  string
	// MaxPoints bounds simulated crash points (0 = DefaultMaxPoints).
	// All checkpoint events are always kept; the remaining budget is
	// spread evenly over the other events, and the pruning is logged.
	MaxPoints int
	// Points, when non-empty, names the exact crash points to simulate
	// (1-based PM event indices), bypassing the stratified selection and
	// MaxPoints. Out-of-range entries are dropped, duplicates collapse,
	// and the list is sorted. internal/optimize uses this to crash two
	// program variants at corresponding events (aligned by per-kind
	// ordinal) so their verdict sets are comparable event-for-event.
	Points []int
	// MaxImages bounds feasible images per crash point (0 =
	// DefaultMaxImages). Below the bound enumeration is exhaustive;
	// above it, corner schedules (nothing evicted / everything evicted),
	// single-line deviations, and seeded pseudo-random schedules fill
	// the budget deterministically.
	MaxImages int
	// Workers sizes the parallel crash-point pool (0 = GOMAXPROCS,
	// capped at 8).
	Workers int
	// Seed drives the deterministic schedule sampling (0 means 1).
	Seed int64
	// Schedule, when non-empty, is the thread-interleaving choice prefix
	// (see interp.Options.Schedule) the workload runs under: crashes are
	// injected within that interleaving's PM event stream. The probe and
	// capture runs both replay it; recovery entries boot single-threaded
	// as usual. internal/core sweeps one Validate per explored schedule.
	Schedule []int
	// StepLimit / Deadline bound every interpreter run the engine makes
	// (the probe, the capture run, each recovery run).
	StepLimit int64
	Deadline  time.Time
	// NoDedup disables the content-addressed verdict dedup: every
	// schedule materializes its image and boots recovery even when a
	// byte-identical image was already judged. Point selection, schedule
	// enumeration, and verdicts are unchanged — dedup only skips
	// provably redundant boots — so this is purely an escape hatch for
	// debugging suspected image divergence.
	NoDedup bool
	// Cache, when non-nil, carries memoized recovery verdicts across
	// Validate calls (the incremental-revalidation hook core.RunAndRepair
	// uses between candidate fixes). Nil gives the run a private cache.
	// Ignored with NoDedup.
	Cache *VerdictCache
	// Obs receives "crashsim" child spans and schedule counters.
	Obs *obs.Span
	// Log, when non-nil, receives pruning notices and per-failure lines.
	Log io.Writer
}

// Failure describes one failed crash schedule: the crash point, the
// per-line eviction prefix that produced the image, and how recovery
// rejected it.
type Failure struct {
	// Event is the 1-based PM event index the crash was injected at.
	Event int
	// Kind is the event's kind (store, flush, fence, checkpoint, ...).
	Kind interp.PMEventKind
	// Completed is the number of durability points passed before the
	// crash (the argument handed to parameterized recovery entries).
	Completed int
	// Cuts is the failing schedule: entry i is how many of pending line
	// i's stores reached PM (see pmem.Tracker.PendingLines).
	Cuts []int
	// Entry is the recovery entrypoint that rejected the image.
	Entry string
	// Err is the recovery error (pm_assert, fault, limit), or nil when
	// the entry returned the non-zero value Ret instead.
	Err error
	Ret uint64
}

func (f Failure) String() string {
	how := fmt.Sprintf("returned %d", int64(f.Ret))
	if f.Err != nil {
		how = firstLine(f.Err.Error())
	}
	return fmt.Sprintf("crash at event %d (%s, %d checkpoint(s) done), schedule %v: @%s %s",
		f.Event, f.Kind, f.Completed, f.Cuts, f.Entry, how)
}

// Report is the outcome of one validation run.
type Report struct {
	// TotalEvents is the PM event count of the workload; Points of them
	// were crash-injected and PrunedPoints skipped under MaxPoints.
	TotalEvents  int
	Points       int
	PrunedPoints int
	// PointEvents lists the simulated crash points (ascending 1-based PM
	// event indices) — the deterministic output of the stratified point
	// selection, identical whatever the dedup mode.
	PointEvents []int
	// Schedules counts evaluated post-crash schedules; PrunedSchedules
	// counts feasible images that the per-point budget skipped.
	Schedules       int
	PrunedSchedules int64
	// ImagesBuilt counts images actually materialized and booted into a
	// recovery machine; DedupedSchedules counts schedules whose every
	// applicable entry was served from the verdict cache, so no image
	// was built for them at all.
	ImagesBuilt      int
	DedupedSchedules int
	// CacheHits / CacheMisses break down this run's verdict-cache
	// lookups (one per applicable entry per schedule; zero with NoDedup).
	CacheHits   int64
	CacheMisses int64
	// PagesShared / PagesCopied are the copy-on-write page stats of the
	// run's capture and image construction: references handed out
	// instead of page copies, and pages actually privatized by writes.
	PagesShared int64
	PagesCopied int64
	// Failures holds the first failing schedule of every failed crash
	// point, ordered by event index.
	Failures []Failure
	// InvariantEntry / RecoveryEntry are the entries actually run (""
	// when absent).
	InvariantEntry string
	RecoveryEntry  string
	// DedupEnabled records whether the content-addressed fast path was
	// on (it is unless Options.NoDedup).
	DedupEnabled bool
}

// Passed reports whether every evaluated schedule recovered cleanly.
func (r *Report) Passed() bool { return len(r.Failures) == 0 }

// DedupSummary renders the one-line dedup/COW accounting that Summary
// (and the CLIs, by default) print.
func (r *Report) DedupSummary() string {
	if !r.DedupEnabled {
		return fmt.Sprintf("crashsim: dedup disabled: %d image(s) built (cow: %d page(s) shared, %d copied)",
			r.ImagesBuilt, r.PagesShared, r.PagesCopied)
	}
	return fmt.Sprintf("crashsim: dedup: %d of %d schedule(s) reused a cached verdict, %d image(s) built (cache %d hit(s)/%d miss(es); cow: %d page(s) shared, %d copied)",
		r.DedupedSchedules, r.Schedules, r.ImagesBuilt, r.CacheHits, r.CacheMisses, r.PagesShared, r.PagesCopied)
}

// Summary renders the report for CLI output.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "crashsim: %d crash point(s) of %d PM events, %d schedule(s) evaluated",
		r.Points, r.TotalEvents, r.Schedules)
	if r.PrunedPoints > 0 || r.PrunedSchedules > 0 {
		fmt.Fprintf(&b, " (pruned: %d point(s), %d schedule(s))", r.PrunedPoints, r.PrunedSchedules)
	}
	b.WriteString("\n")
	b.WriteString(r.DedupSummary())
	b.WriteString("\n")
	if r.Passed() {
		b.WriteString("crashsim: all schedules recovered cleanly\n")
		return b.String()
	}
	fmt.Fprintf(&b, "crashsim: %d crash point(s) FAILED recovery:\n", len(r.Failures))
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

// entrySpec is a resolved recovery entry.
type entrySpec struct {
	name  string
	arity int
}

// Validate crash-injects mod's workload and checks every enumerated
// post-crash image against the module's recovery entries. The returned
// error covers engine-level problems (missing entries, a workload that
// does not complete); schedule failures land in the report.
func Validate(mod *ir.Module, opts Options) (rep *Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 16<<10)
			buf = buf[:runtime.Stack(buf, false)]
			err = fmt.Errorf("crashsim: panic during validation: %v\n%s", r, buf)
		}
	}()

	if opts.Entry == "" {
		opts.Entry = "main"
	}
	if opts.Invariant == "" {
		opts.Invariant = "invariant_check"
	}
	if opts.Recovery == "" {
		opts.Recovery = "crash_check"
	}
	if opts.MaxPoints <= 0 {
		opts.MaxPoints = DefaultMaxPoints
	}
	if opts.MaxImages <= 0 {
		opts.MaxImages = DefaultMaxImages
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
		if opts.Workers > 8 {
			opts.Workers = 8
		}
	}

	inv, err := resolveEntry(mod, opts.Invariant)
	if err != nil {
		return nil, err
	}
	rec, err := resolveEntry(mod, opts.Recovery)
	if err != nil {
		return nil, err
	}
	if inv == nil && rec == nil {
		return nil, fmt.Errorf("crashsim: module declares neither @%s nor @%s; nothing to validate",
			opts.Invariant, opts.Recovery)
	}

	cache := opts.Cache
	if opts.NoDedup {
		cache = nil
	} else if cache == nil {
		cache = NewVerdictCache()
	}

	sp := opts.Obs.Start("crashsim")
	defer sp.End()
	sp.SetAttr("entry", opts.Entry)

	// Probe run: learn the PM event stream (and renumber the module once,
	// so the parallel workers below share it read-only).
	probe, err := interp.New(mod, interp.Options{StepLimit: opts.StepLimit, Deadline: opts.Deadline, Schedule: opts.Schedule})
	if err != nil {
		return nil, err
	}
	if _, err := probe.Run(opts.Entry, opts.Args...); err != nil {
		return nil, fmt.Errorf("crashsim: workload @%s did not complete: %w", opts.Entry, err)
	}
	log := append([]interp.PMEventKind(nil), probe.PMEventLog()...)

	var points []int
	if len(opts.Points) > 0 {
		seen := make(map[int]bool, len(opts.Points))
		for _, p := range opts.Points {
			if p >= 1 && p <= len(log) && !seen[p] {
				seen[p] = true
				points = append(points, p)
			}
		}
		sort.Ints(points)
	} else {
		points = selectPoints(log, opts.MaxPoints, inv != nil, rec)
	}
	rep = &Report{
		TotalEvents: len(log), Points: len(points), PrunedPoints: len(log) - len(points),
		PointEvents: points, DedupEnabled: !opts.NoDedup,
	}
	if inv != nil {
		rep.InvariantEntry = inv.name
	}
	if rec != nil {
		rep.RecoveryEntry = rec.name
	}
	if rep.PrunedPoints > 0 && opts.Log != nil {
		fmt.Fprintf(opts.Log, "crashsim: simulating %d of %d PM events (%d pruned or ineligible; every eligible checkpoint kept)\n",
			len(points), len(log), rep.PrunedPoints)
	}

	// Capture run: one more workload execution snapshots the frozen
	// durability state at every selected boundary, replacing the
	// re-execution per crash point the first engine did. The interpreter
	// is deterministic, so a capture at event k is the exact state a
	// CrashAtEvent=k run would crash with.
	captures := make([]*pmem.CrashState, len(points))
	want := make(map[int]int, len(points))
	for i, p := range points {
		want[p] = i
	}
	var cm *interp.Machine
	cm, err = interp.New(mod, interp.Options{
		StepLimit: opts.StepLimit, Deadline: opts.Deadline, Schedule: opts.Schedule,
		OnPMEvent: func(k int, _ interp.PMEventKind) error {
			if i, ok := want[k]; ok {
				captures[i] = cm.CaptureCrashState()
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	if _, err := cm.Run(opts.Entry, opts.Args...); err != nil {
		return nil, fmt.Errorf("crashsim: capture run of @%s did not complete: %w", opts.Entry, err)
	}
	var cow *pmem.CowStats
	for i := range captures {
		if captures[i] == nil {
			return nil, fmt.Errorf("crashsim: crash point %d was not reached on the capture run", points[i])
		}
	}
	if len(captures) > 0 {
		// One snapshot family covers the whole run: the tracker's durable
		// image, every capture, and every image overlay derived from them.
		cow = captures[0].Durable.Stats()
	}

	// completed[i] = durability points passed once event points[i] (its
	// own checkpoint included) has executed.
	ckptsUpTo := make([]int, len(log)+1)
	for i, k := range log {
		ckptsUpTo[i+1] = ckptsUpTo[i]
		if k == interp.EvCheckpoint {
			ckptsUpTo[i+1]++
		}
	}
	lastEvent := len(log)

	results := make([]pointResult, len(points))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One reusable RNG per worker: Seed() reinitializes the
			// source in place, producing the exact stream a fresh
			// rand.NewSource(seed) would, without its ~5KB allocation
			// per crash point.
			src := rand.NewSource(1)
			rng := rand.New(src)
			for idx := range work {
				res := &results[idx]
				func() {
					defer func() {
						if r := recover(); r != nil {
							buf := make([]byte, 16<<10)
							buf = buf[:runtime.Stack(buf, false)]
							res.err = fmt.Errorf("crashsim: panic at crash point %d: %v\n%s", points[idx], r, buf)
						}
					}()
					src.Seed(opts.Seed + int64(points[idx])*1_000_003)
					crashPoint(mod, opts, cache, captures[idx], inv, rec, rng, points[idx],
						log[points[idx]-1], ckptsUpTo[points[idx]], points[idx] == lastEvent, res)
				}()
			}
		}()
	}
	for i := range points {
		work <- i
	}
	close(work)
	wg.Wait()

	for i := range results {
		res := &results[i]
		if res.err != nil {
			return nil, res.err
		}
		rep.Schedules += res.schedules
		rep.PrunedSchedules += res.pruned
		rep.ImagesBuilt += res.built
		rep.DedupedSchedules += res.deduped
		rep.CacheHits += res.hits
		rep.CacheMisses += res.misses
		if res.failure != nil {
			rep.Failures = append(rep.Failures, *res.failure)
		}
	}
	if cow != nil {
		rep.PagesShared = cow.PagesShared.Load()
		rep.PagesCopied = cow.PagesCopied.Load()
	}
	sort.Slice(rep.Failures, func(i, j int) bool { return rep.Failures[i].Event < rep.Failures[j].Event })
	if opts.Log != nil {
		for _, f := range rep.Failures {
			fmt.Fprintf(opts.Log, "crashsim: FAIL %s\n", f)
		}
	}
	sp.Add("crash.points", int64(rep.Points))
	sp.Add("crash.points_pruned", int64(rep.PrunedPoints))
	sp.Add("crash.schedules", int64(rep.Schedules))
	sp.Add("crash.schedules_pruned", rep.PrunedSchedules)
	sp.Add("crash.schedules_deduped", int64(rep.DedupedSchedules))
	sp.Add("crash.images_built", int64(rep.ImagesBuilt))
	sp.Add("crash.cache.hits", rep.CacheHits)
	sp.Add("crash.cache.misses", rep.CacheMisses)
	sp.Add("crash.cow.pages_shared", rep.PagesShared)
	sp.Add("crash.cow.pages_copied", rep.PagesCopied)
	sp.Add("crash.failures", int64(len(rep.Failures)))
	return rep, nil
}

// pointResult accumulates one crash point's outcome.
type pointResult struct {
	schedules int
	pruned    int64
	built     int
	deduped   int
	hits      int64
	misses    int64
	failure   *Failure
	err       error
}

// crashPoint enumerates the feasible images of one captured crash state
// and recovers each distinct one. The first failing schedule fails the
// point (enumeration stops there). cache is nil iff dedup is off. rng
// must already be seeded with opts.Seed + k*1_000_003 (the per-point
// formula the deflake guard pins).
func crashPoint(mod *ir.Module, opts Options, cache *VerdictCache, cs *pmem.CrashState,
	inv, rec *entrySpec, rng *rand.Rand, k int, kind interp.PMEventKind, completed int, last bool, res *pointResult) {
	sizes := make([]int, len(cs.Lines))
	for i, pl := range cs.Lines {
		sizes[i] = len(pl.Stores)
	}
	schedules, feasible := enumerateCuts(sizes, opts.MaxImages, rng)
	res.pruned = feasible - int64(len(schedules))

	// The promise entry is anchored at durability points: parameterized
	// entries run at every checkpoint-event crash, no-parameter entries
	// only at the final one (they state whole-workload promises).
	entries := make([]*entrySpec, 0, 2)
	if inv != nil {
		entries = append(entries, inv)
	}
	if rec != nil && kind == interp.EvCheckpoint && (rec.arity == 1 || last) {
		entries = append(entries, rec)
	}

	builder := cs.NewBuilder()
	for _, cuts := range schedules {
		res.schedules++
		var hash uint64
		if cache != nil {
			hash = cs.HashCuts(cuts)
		}
		sought, booted := false, false
		for _, e := range entries {
			arg := -1
			var args []uint64
			if e.arity == 1 {
				arg = completed
				args = []uint64{uint64(completed)}
			}
			var key verdictKey
			var v cachedVerdict
			if cache != nil {
				key = verdictKey{image: hash, entry: e.name, arg: arg}
				var ok bool
				if v, ok = cache.lookup(key); ok {
					res.hits++
				} else {
					res.misses++
					v, res.err = bootRecovery(mod, opts, builder, cuts, &sought, e, args)
					if res.err != nil {
						return
					}
					res.built++
					booted = true
					cache.store(key, v)
				}
			} else {
				v, res.err = bootRecovery(mod, opts, builder, cuts, &sought, e, args)
				if res.err != nil {
					return
				}
				res.built++
				booted = true
			}
			if !v.pass {
				res.failure = &Failure{
					Event: k, Kind: kind, Completed: completed,
					Cuts: append([]int(nil), cuts...), Entry: e.name, Err: v.err, Ret: v.ret,
				}
				return
			}
		}
		if cache != nil && !booted && len(entries) > 0 {
			res.deduped++
		}
	}
}

// bootRecovery materializes the schedule's image (seeking the builder on
// first need, then snapshotting per entry so each boot gets a pristine
// image) and runs one recovery entry on a fresh machine. The returned
// error is engine-level; recovery rejections land in the verdict.
func bootRecovery(mod *ir.Module, opts Options, builder *pmem.ImageBuilder, cuts []int,
	sought *bool, e *entrySpec, args []uint64) (cachedVerdict, error) {
	if !*sought {
		builder.Seek(cuts)
		*sought = true
	}
	// NoTrack: the boot's verdict is the entry's return value; shadow
	// durability tracking would only burn memory per recovery store.
	m2, err := interp.New(mod, interp.Options{
		Memory: builder.Image(), ResumePM: true, NoTrack: true,
		StepLimit: opts.StepLimit, Deadline: opts.Deadline,
	})
	if err != nil {
		return cachedVerdict{}, err
	}
	ret, rerr := m2.Run(e.name, args...)
	return cachedVerdict{pass: rerr == nil && ret == 0, ret: ret, err: rerr}, nil
}

// resolveEntry looks up a recovery entry and checks its shape: defined,
// and taking either no parameter or a single integer. A missing entry is
// nil (skipped); "-" disables lookup.
func resolveEntry(mod *ir.Module, name string) (*entrySpec, error) {
	if name == "-" {
		return nil, nil
	}
	fn := mod.Func(name)
	if fn == nil || fn.IsDecl() {
		return nil, nil
	}
	if len(fn.Params) > 1 {
		return nil, fmt.Errorf("crashsim: recovery entry @%s takes %d parameters; want 0, or 1 (checkpoints completed)",
			name, len(fn.Params))
	}
	return &entrySpec{name: name, arity: len(fn.Params)}, nil
}

// selectPoints picks the crash points to simulate: every checkpoint
// event always, plus an even deterministic spread of the remaining
// events up to budget. Events where no entry could run are skipped
// outright (they count as pruned): without an invariant entry a
// non-checkpoint crash has nothing to validate, and an arity-0 promise
// entry only speaks about the final durability point. The selection
// depends only on the event log and the budget — never on the dedup
// mode — so -crash-points budgets pick identical schedules either way.
func selectPoints(log []interp.PMEventKind, budget int, invAll bool, rec *entrySpec) []int {
	lastCkpt := 0
	for i, k := range log {
		if k == interp.EvCheckpoint {
			lastCkpt = i + 1
		}
	}
	var ckpts, rest []int
	for i, k := range log {
		switch {
		case k == interp.EvCheckpoint:
			if !invAll && rec != nil && rec.arity == 0 && i+1 != lastCkpt {
				continue
			}
			ckpts = append(ckpts, i+1)
		case invAll:
			rest = append(rest, i+1)
		}
	}
	points := append([]int(nil), ckpts...)
	room := budget - len(points)
	if room >= len(rest) {
		points = append(points, rest...)
	} else if room > 0 {
		// Evenly spaced sample over the non-checkpoint events.
		for i := 0; i < room; i++ {
			points = append(points, rest[i*len(rest)/room])
		}
	}
	sort.Ints(points)
	return points
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
