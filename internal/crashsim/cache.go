package crashsim

import "sync"

// verdictKey identifies one recovery outcome by what actually determines
// it: the post-crash image content (pmem.CrashState.HashCuts), the entry
// that ran, and the completed-checkpoint argument it was given (-1 for
// no-argument entries). The crash point and cut vector are deliberately
// absent — different schedules (even at different crash points) that
// collapse to the same bytes share one verdict.
type verdictKey struct {
	image uint64
	entry string
	arg   int
}

// cachedVerdict is the outcome of one recovery boot: pass, or how the
// entry rejected the image (everything a Failure needs besides the crash
// coordinates, which come from the schedule being evaluated).
type cachedVerdict struct {
	pass bool
	ret  uint64
	err  error
}

// VerdictCache memoizes recovery verdicts keyed by image content. The
// interpreter is deterministic, so byte-identical images running the
// same entry with the same argument always produce the same outcome:
// one boot decides every schedule that collapses to those bytes. The
// cache is safe for concurrent use; share one across Validate calls
// (Options.Cache) to make incremental revalidation cheap, and Reset it
// whenever the module's recovery-reachable code changes (old verdicts
// would then describe code that no longer exists — see
// core.RunAndRepair).
type VerdictCache struct {
	mu     sync.Mutex
	m      map[verdictKey]cachedVerdict
	hits   int64
	misses int64
	gen    int64
}

// NewVerdictCache returns an empty cache.
func NewVerdictCache() *VerdictCache {
	return &VerdictCache{m: make(map[verdictKey]cachedVerdict)}
}

func (c *VerdictCache) lookup(k verdictKey) (cachedVerdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

func (c *VerdictCache) store(k verdictKey, v cachedVerdict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = v
}

// Len returns the number of memoized verdicts.
func (c *VerdictCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns the cumulative lookup hit / miss counts.
func (c *VerdictCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Reset drops every memoized verdict but keeps the cumulative stats.
func (c *VerdictCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[verdictKey]cachedVerdict)
	c.gen++
}

// Generation counts how many times the cache has been Reset. A holder
// sharing the cache across jobs (the hippocratesd artifact cache) snapshots
// the generation before handing it out and discards its reference if a job
// bumped it mid-flight: a reset means some repair touched recovery-reachable
// code, so the shared entries no longer describe the cached module.
func (c *VerdictCache) Generation() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}
