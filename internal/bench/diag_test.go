package bench

import (
	"fmt"
	"os"
	"testing"

	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
)

// TestDiagPerOp prints per-operation simulated costs for the three Redis
// builds (run with DIAG=1). It is the calibration tool behind the Fig. 4
// cost-model constants.
func TestDiagPerOp(t *testing.T) {
	if os.Getenv("DIAG") == "" {
		t.Skip("set DIAG=1 to print per-op costs")
	}
	builds, err := BuildRedisVariants()
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []struct {
		name string
		mod  *ir.Module
	}{{"Redis-pm", builds.Baseline}, {"RedisH-full", builds.Full}, {"RedisH-intra", builds.Intra}} {
		mch, err := interp.New(pair.mod, interp.Options{StepLimit: 1 << 62})
		if err != nil {
			t.Fatal(err)
		}
		measure := func(label string, f func(i int)) {
			t0 := mch.SimTime()
			for i := 0; i < 100; i++ {
				f(i)
			}
			fmt.Printf("%-13s %-10s %8.0f ns/op\n", pair.name, label, (mch.SimTime()-t0)/100)
		}
		measure("insert", func(i int) { mch.Run("cmd_set", uint64(i), 5) })
		measure("overwrite", func(i int) { mch.Run("cmd_set", uint64(i), 9) })
		measure("get", func(i int) { mch.Run("cmd_get", uint64(i)) })
		measure("rmw", func(i int) { mch.Run("cmd_rmw", uint64(i)) })
		if n := len(mch.Violations); n > 0 {
			t.Errorf("%s: %d violations", pair.name, n)
		}
	}
}
