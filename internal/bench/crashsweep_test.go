package bench

import (
	"os"
	"testing"
)

// TestCrashSweepDedupVerdictsIdentical is the corpus-scale ablation: the
// content-addressed fast path must report exactly the schedules and
// failures the dedup-off sweep reports, while actually booting fewer
// images.
func TestCrashSweepDedupVerdictsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus sweep")
	}
	targets, err := PrepareCrashSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) == 0 {
		t.Fatal("no crash-sweep targets in corpus")
	}
	on, err := RunCrashSweep(targets, false)
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunCrashSweep(targets, true)
	if err != nil {
		t.Fatal(err)
	}
	if on.Schedules != off.Schedules {
		t.Errorf("schedule counts differ: dedup on %d, off %d", on.Schedules, off.Schedules)
	}
	if !equalStrings(on.FailureKeys, off.FailureKeys) {
		t.Errorf("verdicts differ across dedup modes:\non:  %v\noff: %v", on.FailureKeys, off.FailureKeys)
	}
	if on.DedupedSchedules == 0 && on.CacheHits == 0 {
		t.Error("dedup sweep reused no verdicts; fast path inert")
	}
	if on.ImagesBuilt >= off.ImagesBuilt {
		t.Errorf("dedup built %d images, no-dedup %d; expected fewer", on.ImagesBuilt, off.ImagesBuilt)
	}
	if off.DedupedSchedules != 0 || off.CacheHits != 0 || off.CacheMisses != 0 {
		t.Errorf("no-dedup sweep touched the verdict cache: %d deduped, %d/%d hits/misses",
			off.DedupedSchedules, off.CacheHits, off.CacheMisses)
	}
}

// TestWriteCrashSweepJSON regenerates BENCH_crashsim.json when the
// BENCH_CRASHSIM_OUT environment variable names the output path; `make
// bench` drives it. Skipped otherwise — it runs a timed benchmark.
func TestWriteCrashSweepJSON(t *testing.T) {
	path := os.Getenv("BENCH_CRASHSIM_OUT")
	if path == "" {
		t.Skip("set BENCH_CRASHSIM_OUT to write the crash-sweep report")
	}
	rep, err := WriteCrashSweepJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("crash sweep: %d targets, %d schedules, %d failures, %.1fx ns speedup, %.1fx bytes reduction",
		rep.Config.Targets, rep.Current.Schedules, rep.Current.Failures, rep.SpeedupNs, rep.BytesReduction)
	if !rep.VerdictsIdentical {
		t.Error("dedup sweep verdicts differ from the no-dedup ablation")
	}
	if rep.SpeedupNs < 5 {
		t.Errorf("wall-clock speedup %.2fx, want >= 5x vs pre-COW baseline", rep.SpeedupNs)
	}
	if rep.BytesReduction < 10 {
		t.Errorf("allocated-bytes reduction %.2fx, want >= 10x vs pre-COW baseline", rep.BytesReduction)
	}
}
