package bench

import (
	"fmt"
	"strings"
)

// Chart renders the Fig. 4 result as a horizontal bar chart, one group of
// three bars per workload — the textual analogue of the paper's figure.
func (r *Fig4Result) Chart() string {
	var b strings.Builder
	b.WriteString("Fig. 4 — throughput (ops per simulated second)\n\n")
	// Scale to the global maximum.
	max := 0.0
	for _, row := range r.Rows {
		for _, s := range row.Series {
			if s.Mean > max {
				max = s.Mean
			}
		}
	}
	if max == 0 {
		return "no data"
	}
	const width = 50
	glyphs := map[string]rune{"RedisH-intra": '░', "Redis-pm": '▒', "RedisH-full": '█'}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s\n", row.Workload)
		for _, s := range row.Series {
			n := int(s.Mean / max * width)
			if n < 1 && s.Mean > 0 {
				n = 1
			}
			bar := strings.Repeat(string(glyphs[s.Build]), n)
			fmt.Fprintf(&b, "  %-13s %-*s %9.0f ±%.0f\n", s.Build, width, bar, s.Mean, s.CI95)
		}
	}
	b.WriteString("\nlegend: ░ RedisH-intra   ▒ Redis-pm   █ RedisH-full\n")
	return b.String()
}
