package bench

import (
	"os"
	"testing"
)

// TestOptSweepFindsProvenSavings pins the corpus-level outcome the PR
// acceptance criteria quote: at least five targets (redis-flushfree
// among them) lose a flush or fence, every crashsim-able target carries
// a verdict-identity proof, and the accepted edits reduce simulated
// cost.
func TestOptSweepFindsProvenSavings(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus sweep")
	}
	rep, err := MeasureOptSweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.TargetsEdited < 5 {
		t.Errorf("only %d targets accepted edits, want >= 5", rep.Totals.TargetsEdited)
	}
	if rep.Totals.CrashsimProven < 15 {
		t.Errorf("only %d crashsim-proven targets, want >= 15", rep.Totals.CrashsimProven)
	}
	if rep.Totals.SavedNs <= 0 {
		t.Errorf("sweep saved %.1fns, want > 0", rep.Totals.SavedNs)
	}
	var flushfree *OptSweepTarget
	for i := range rep.Targets {
		if rep.Targets[i].Name == "redis-flushfree" {
			flushfree = &rep.Targets[i]
		}
	}
	if flushfree == nil {
		t.Fatal("redis-flushfree missing from the sweep")
	}
	if !flushfree.Repaired {
		t.Error("redis-flushfree should be repaired before optimizing (its flushes are stubbed)")
	}
	if got := flushfree.Deleted + flushfree.Merged + flushfree.Sunk; got < 1 {
		t.Errorf("showcase redis-flushfree accepted %d edits, want >= 1", got)
	}
	if flushfree.SavedNs <= 0 {
		t.Errorf("showcase redis-flushfree saved %.1fns, want > 0", flushfree.SavedNs)
	}
}

// TestWriteOptSweepJSON regenerates BENCH_optimize.json when the
// BENCH_OPTIMIZE_OUT environment variable names the output path; `make
// bench-optimize` drives it. Skipped otherwise.
func TestWriteOptSweepJSON(t *testing.T) {
	path := os.Getenv("BENCH_OPTIMIZE_OUT")
	if path == "" {
		t.Skip("set BENCH_OPTIMIZE_OUT to write the optimize-sweep report")
	}
	rep, err := WriteOptSweepJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d/%d targets edited, %.1fns saved (%.2f%%)",
		path, rep.Totals.TargetsEdited, rep.Totals.Targets, rep.Totals.SavedNs, rep.Totals.SavedPct)
}
