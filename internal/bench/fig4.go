package bench

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"hippocrates/internal/core"
	"hippocrates/internal/corpus"
	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/ycsb"
)

// RedisBuilds holds the three §6.3 Redis builds.
type RedisBuilds struct {
	// Baseline is Redis-pmem: developer-written persistence.
	Baseline *ir.Module
	// Full is RedisH-full: all flushes inserted by Hippocrates with the
	// hoisting heuristic enabled.
	Full *ir.Module
	// Intra is RedisH-intra: hoisting disabled, intraprocedural fixes only.
	Intra *ir.Module

	// FullFixes / IntraFixes count the applied fixes (paper: 50).
	FullFixes  int
	IntraFixes int
	// FullInterproc counts RedisH-full's interprocedural fixes (paper:
	// 12/50), with HoistDepths the depth histogram (paper: 10 one level
	// up, 2 two levels up).
	FullInterproc int
	HoistDepths   map[int]int
}

// BuildRedisVariants prepares the three builds exactly as §6.3 does:
// start from flush-free Redis (flushes removed, fences kept), trace it,
// and let Hippocrates insert every persistence mechanism — once with the
// heuristic, once restricted to intraprocedural fixes.
func BuildRedisVariants() (*RedisBuilds, error) {
	out := &RedisBuilds{HoistDepths: map[int]int{}}
	base := corpus.ByName("redis-pmem")
	ff := corpus.ByName("redis-flushfree")

	var err error
	if out.Baseline, err = base.Compile(); err != nil {
		return nil, err
	}

	full := ff.MustCompile()
	resFull, err := core.RunAndRepair(full, ff.Entry, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("RedisH-full: %w", err)
	}
	if !resFull.Fixed() {
		return nil, fmt.Errorf("RedisH-full still buggy:\n%s", resFull.After.Summary())
	}
	out.Full = full
	out.FullFixes = len(resFull.Fix.Fixes)
	out.FullInterproc = resFull.Fix.InterprocFixes()
	for _, fx := range resFull.Fix.Fixes {
		if fx.Kind.Interprocedural() {
			out.HoistDepths[fx.HoistDepth]++
		}
	}

	intra := ff.MustCompile()
	resIntra, err := core.RunAndRepair(intra, ff.Entry, core.Options{DisableHoisting: true})
	if err != nil {
		return nil, fmt.Errorf("RedisH-intra: %w", err)
	}
	if !resIntra.Fixed() {
		return nil, fmt.Errorf("RedisH-intra still buggy:\n%s", resIntra.After.Summary())
	}
	out.Intra = intra
	out.IntraFixes = len(resIntra.Fix.Fixes)
	return out, nil
}

// Fig4Config parameterizes the YCSB runs. The paper uses 10k records, 10k
// operations and 20 trials; smaller settings keep CI runs fast with the
// same shape.
type Fig4Config struct {
	Records int64
	Ops     int
	Trials  int
	Seed    int64
}

// DefaultFig4Config mirrors the paper's setup.
func DefaultFig4Config() Fig4Config {
	return Fig4Config{Records: 10000, Ops: 10000, Trials: 20, Seed: 1}
}

// QuickFig4Config is a reduced configuration with the same shape.
func QuickFig4Config() Fig4Config {
	return Fig4Config{Records: 600, Ops: 600, Trials: 5, Seed: 1}
}

// Series is the measured throughput of one build on one workload.
type Series struct {
	Build string
	// Mean is the mean throughput in operations per simulated second.
	Mean float64
	// CI95 is the 95% confidence half-interval across trials.
	CI95 float64
}

// Fig4Row is one workload's result triple.
type Fig4Row struct {
	Workload string
	Series   []Series // RedisH-intra, Redis-pm, RedisH-full (paper order)
}

// Get returns the named build's series.
func (r *Fig4Row) Get(build string) *Series {
	for i := range r.Series {
		if r.Series[i].Build == build {
			return &r.Series[i]
		}
	}
	return nil
}

// Fig4Result is the full Fig. 4 dataset.
type Fig4Result struct {
	Config Fig4Config
	Rows   []Fig4Row // Load, A, B, C, D, E, F
	Builds *RedisBuilds
}

// BuildNames in the paper's legend order.
var BuildNames = []string{"RedisH-intra", "Redis-pm", "RedisH-full"}

// RunFig4 executes the case study: for each build and workload, load the
// store and drive the YCSB operation mix, measuring simulated throughput.
func RunFig4(cfg Fig4Config) (*Fig4Result, error) {
	builds, err := BuildRedisVariants()
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{Config: cfg, Builds: builds}
	modules := map[string]*ir.Module{
		"RedisH-intra": builds.Intra,
		"Redis-pm":     builds.Baseline,
		"RedisH-full":  builds.Full,
	}
	rows := make([]Fig4Row, 0, 7)
	rows = append(rows, Fig4Row{Workload: "Load"})
	for _, wl := range ycsb.AllStandard() {
		rows = append(rows, Fig4Row{Workload: wl.Name})
	}
	// Each build measures on its own machines; run them concurrently
	// (results are deterministic per build: fixed generator seeds).
	perBuild := make(map[string]map[string][]float64, len(BuildNames))
	errs := make(map[string]error, len(BuildNames))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, name := range BuildNames {
		wg.Add(1)
		go func(name string, mod *ir.Module) {
			defer wg.Done()
			out, err := runYCSB(mod, cfg)
			mu.Lock()
			perBuild[name], errs[name] = out, err
			mu.Unlock()
		}(name, modules[name])
	}
	wg.Wait()
	for _, name := range BuildNames {
		if err := errs[name]; err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		for i := range rows {
			mean, ci := meanCI(perBuild[name][rows[i].Workload])
			rows[i].Series = append(rows[i].Series, Series{Build: name, Mean: mean, CI95: ci})
		}
	}
	res.Rows = rows
	return res, nil
}

// runYCSB measures one build across Load and the six workloads, returning
// per-trial throughputs keyed by workload name.
func runYCSB(mod *ir.Module, cfg Fig4Config) (map[string][]float64, error) {
	out := map[string][]float64{}
	for _, wl := range ycsb.AllStandard() {
		mach, err := interp.New(mod, interp.Options{StepLimit: 1 << 62})
		if err != nil {
			return nil, err
		}
		// Load phase (timed; reported as the "Load" series, measured on
		// every workload's fresh store and aggregated across them).
		start := mach.SimTime()
		for _, op := range ycsb.LoadOps(cfg.Records) {
			if _, err := mach.Run("cmd_set", uint64(op.Key), uint64(op.Value)); err != nil {
				return nil, err
			}
		}
		loadSecs := (mach.SimTime() - start) / 1e9
		out["Load"] = append(out["Load"], float64(cfg.Records)/loadSecs)

		gen := ycsb.NewGenerator(wl, cfg.Records, cfg.Seed)
		for trial := 0; trial < cfg.Trials; trial++ {
			t0 := mach.SimTime()
			for i := 0; i < cfg.Ops; i++ {
				if err := dispatch(mach, gen.Next()); err != nil {
					return nil, err
				}
			}
			secs := (mach.SimTime() - t0) / 1e9
			out[wl.Name] = append(out[wl.Name], float64(cfg.Ops)/secs)
		}
		// Every measured build must be durability-clean: each command is
		// a durability point (the implicit per-run checkpoint).
		if n := len(mach.Violations); n > 0 {
			return nil, fmt.Errorf("workload %s: %d durability violations in a measured build", wl.Name, n)
		}
	}
	return out, nil
}

func dispatch(mach *interp.Machine, op ycsb.Op) error {
	var err error
	switch op.Kind {
	case ycsb.OpRead:
		_, err = mach.Run("cmd_get", uint64(op.Key))
	case ycsb.OpUpdate, ycsb.OpInsert:
		_, err = mach.Run("cmd_set", uint64(op.Key), uint64(op.Value))
	case ycsb.OpScan:
		_, err = mach.Run("cmd_scan", uint64(op.Key), uint64(op.ScanLen))
	case ycsb.OpRMW:
		_, err = mach.Run("cmd_rmw", uint64(op.Key))
	}
	return err
}

func meanCI(samples []float64) (float64, float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, s := range samples {
		sum += s
	}
	mean := sum / float64(len(samples))
	if len(samples) < 2 {
		return mean, 0
	}
	varsum := 0.0
	for _, s := range samples {
		varsum += (s - mean) * (s - mean)
	}
	sd := math.Sqrt(varsum / float64(len(samples)-1))
	// 1.96 standard errors ~ 95% CI.
	return mean, 1.96 * sd / math.Sqrt(float64(len(samples)))
}

// SpeedupRange returns the min and max RedisH-full / RedisH-intra
// throughput ratios over the workloads (paper: 2.4–11.7×).
func (r *Fig4Result) SpeedupRange() (lo, hi float64) {
	lo, hi = math.Inf(1), 0
	for _, row := range r.Rows {
		full := row.Get("RedisH-full")
		intra := row.Get("RedisH-intra")
		if full == nil || intra == nil || intra.Mean == 0 {
			continue
		}
		ratio := full.Mean / intra.Mean
		if ratio < lo {
			lo = ratio
		}
		if ratio > hi {
			hi = ratio
		}
	}
	return lo, hi
}

// LoadGain returns RedisH-full's throughput gain over Redis-pm on the
// Load workload (paper: +7%).
func (r *Fig4Result) LoadGain() float64 {
	for _, row := range r.Rows {
		if row.Workload == "Load" {
			pm := row.Get("Redis-pm")
			full := row.Get("RedisH-full")
			if pm != nil && full != nil && pm.Mean > 0 {
				return full.Mean/pm.Mean - 1
			}
		}
	}
	return 0
}

// Render prints the Fig. 4 series.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 — YCSB throughput (ops per simulated second), records=%d ops=%d trials=%d\n",
		r.Config.Records, r.Config.Ops, r.Config.Trials)
	fmt.Fprintf(&b, "%-9s", "workload")
	for _, n := range BuildNames {
		fmt.Fprintf(&b, " %22s", n)
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9s", row.Workload)
		for _, s := range row.Series {
			fmt.Fprintf(&b, " %14.0f ±%6.0f", s.Mean, s.CI95)
		}
		b.WriteString("\n")
	}
	lo, hi := r.SpeedupRange()
	fmt.Fprintf(&b, "RedisH-full vs RedisH-intra speedup: %.1fx–%.1fx (paper: 2.4x–11.7x)\n", lo, hi)
	fmt.Fprintf(&b, "RedisH-full vs Redis-pm on Load: %+.1f%% (paper: +7%%)\n", 100*r.LoadGain())
	fmt.Fprintf(&b, "fixes applied: %d (%d interprocedural; hoist depths %v) — paper: 50 fixes, 12 interprocedural\n",
		r.Builds.FullFixes, r.Builds.FullInterproc, r.Builds.HoistDepths)
	return b.String()
}
