package bench

import (
	"strings"
	"testing"

	"hippocrates/internal/core"
	"hippocrates/internal/corpus"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/study"
	"hippocrates/internal/trace"
)

func TestRunEffectiveness(t *testing.T) {
	res, err := RunEffectiveness()
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 23 {
		t.Errorf("total fixed = %d, want 23", res.Total)
	}
	for _, row := range res.Rows {
		if !row.CleanAfter || !row.WorkloadsOK {
			t.Errorf("%s: clean=%v workloads=%v", row.Target, row.CleanAfter, row.WorkloadsOK)
		}
	}
	if !strings.Contains(res.Render(), "total bugs fixed: 23") {
		t.Error("render missing total")
	}
}

func TestRunFig3(t *testing.T) {
	res, err := RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	if res.Identical != 8 || res.Equivalent != 3 {
		t.Errorf("identical/equivalent = %d/%d, want 8/3", res.Identical, res.Equivalent)
	}
	if len(res.PerIssue) != 11 {
		t.Errorf("per-issue outcomes = %d, want 11", len(res.PerIssue))
	}
	out := res.Render()
	for _, issue := range []string{"447", "452", "585", "945"} {
		if !strings.Contains(out, issue) {
			t.Errorf("render missing issue %s:\n%s", issue, out)
		}
	}
}

func TestBuildRedisVariants(t *testing.T) {
	builds, err := BuildRedisVariants()
	if err != nil {
		t.Fatal(err)
	}
	if builds.FullFixes == 0 || builds.IntraFixes == 0 {
		t.Error("no fixes recorded")
	}
	if builds.FullInterproc == 0 {
		t.Error("RedisH-full applied no interprocedural fixes")
	}
	t.Logf("RedisH-full: %d fixes, %d interprocedural, depths %v; RedisH-intra: %d fixes",
		builds.FullFixes, builds.FullInterproc, builds.HoistDepths, builds.IntraFixes)
}

func TestRunFig4QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := Fig4Config{Records: 200, Ops: 200, Trials: 3, Seed: 1}
	res, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 (Load + A-F)", len(res.Rows))
	}
	t.Logf("\n%s", res.Render())
	lo, hi := res.SpeedupRange()
	if lo < 1.5 {
		t.Errorf("RedisH-full vs RedisH-intra min speedup = %.2f, want the paper's shape (>1.5x)", lo)
	}
	if hi > 25 {
		t.Errorf("max speedup = %.2f, implausibly large", hi)
	}
	// RedisH-full must be within a reasonable band of the hand-tuned
	// baseline on every workload (the paper found parity or better).
	for _, row := range res.Rows {
		full := row.Get("RedisH-full").Mean
		pm := row.Get("Redis-pm").Mean
		if full < 0.75*pm {
			t.Errorf("%s: RedisH-full %.0f is far below Redis-pm %.0f", row.Workload, full, pm)
		}
	}
}

func TestRunFig5(t *testing.T) {
	res, err := RunFig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 targets", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.KLOC <= 0 {
			t.Errorf("%s: KLOC = %v", row.Target, row.KLOC)
		}
		if row.Fixes == 0 && row.Target != "Redis-pmem" {
			t.Errorf("%s: no fixes measured", row.Target)
		}
		if row.Time <= 0 {
			t.Errorf("%s: no time measured", row.Target)
		}
	}
	t.Logf("\n%s", res.Render())
}

func TestRunSizeImpact(t *testing.T) {
	res, err := RunSizeImpact()
	if err != nil {
		t.Fatal(err)
	}
	if res.IRLinesAdded <= 0 {
		t.Error("no IR added")
	}
	if res.PctIncrease > 30 {
		t.Errorf("size increase %.1f%% is out of hand", res.PctIncrease)
	}
	t.Logf("\n%s", res.Render())
}

func TestFig1ViaStudy(t *testing.T) {
	st := study.Aggregate()
	if st.AvgCommits != 13 || st.AvgDays != 28 || st.MaxDays != 66 {
		t.Errorf("Fig. 1 aggregates = %d/%d/%d", st.AvgCommits, st.AvgDays, st.MaxDays)
	}
}

func TestFig4Chart(t *testing.T) {
	res := &Fig4Result{
		Config: QuickFig4Config(),
		Rows: []Fig4Row{
			{Workload: "Load", Series: []Series{
				{Build: "RedisH-intra", Mean: 50000},
				{Build: "Redis-pm", Mean: 125000, CI95: 300},
				{Build: "RedisH-full", Mean: 126000, CI95: 280},
			}},
		},
	}
	out := res.Chart()
	for _, want := range []string{"Load", "RedisH-full", "█", "░", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart lacks %q:\n%s", want, out)
		}
	}
	empty := &Fig4Result{}
	if empty.Chart() != "no data" {
		t.Error("empty chart should say so")
	}
}

// TestDetectorEquivalenceAcrossDialects: the detector must produce the
// same reports whether the trace arrives in the native or the PMTest
// dialect (the §5.1 interoperability claim).
func TestDetectorEquivalenceAcrossDialects(t *testing.T) {
	p := corpus.ByName("pclht")
	m := p.MustCompile()
	tr, err := core.TraceModule(m, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	native := pmcheck.Check(tr)

	var buf strings.Builder
	if err := tr.WritePMTest(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ParsePMTestString(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	viaPMTest := pmcheck.Check(back)
	if native.UniqueSites() != viaPMTest.UniqueSites() ||
		len(native.Reports) != len(viaPMTest.Reports) {
		t.Errorf("dialects disagree: native %d/%d, pmtest %d/%d",
			native.UniqueSites(), len(native.Reports),
			viaPMTest.UniqueSites(), len(viaPMTest.Reports))
	}
}
