package bench

import (
	"fmt"
	"sort"
	"strings"

	"hippocrates/internal/core"
	"hippocrates/internal/corpus"
)

// Fig3Row is one row of the Fig. 3 qualitative comparison.
type Fig3Row struct {
	Issues     []int
	HippoFix   string
	DevFix     string
	Comparison string
}

// Fig3Result is the Fig. 3 table plus the underlying per-issue outcomes.
type Fig3Result struct {
	Rows []Fig3Row
	// PerIssue maps issue number to the applied fix kinds.
	PerIssue map[int][]core.FixKind
	// Identical / Equivalent count issues per verdict (paper: 8 and 3).
	Identical  int
	Equivalent int
}

// RunFig3 repairs the eleven reproduced PMDK bugs and compares the applied
// fixes with the recorded developer fixes.
func RunFig3() (*Fig3Result, error) {
	res := &Fig3Result{PerIssue: map[int][]core.FixKind{}}
	type rowKey struct{ hip, dev, cmp string }
	rows := map[rowKey]*Fig3Row{}
	for _, p := range corpus.ByTarget("pmdk") {
		m := p.MustCompile()
		pr, err := core.RunAndRepair(m, p.Entry, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		if !pr.Fixed() {
			return nil, fmt.Errorf("%s: not fixed", p.Name)
		}
		bug := p.Bugs[0]
		for _, fx := range pr.Fix.Fixes {
			res.PerIssue[bug.Issue] = append(res.PerIssue[bug.Issue], fx.Kind)
			if !bug.Species.Matches(fx.Kind) {
				return nil, fmt.Errorf("%s: fix kind %v does not match expected %v", p.Name, fx.Kind, bug.Species)
			}
		}
		switch bug.Comparison {
		case "identical":
			res.Identical++
		case "equivalent":
			res.Equivalent++
		}
		k := rowKey{hip: bug.Species.String(), dev: bug.DevFix, cmp: bug.Comparison}
		row := rows[k]
		if row == nil {
			row = &Fig3Row{HippoFix: bug.Species.String(), DevFix: bug.DevFix, Comparison: bug.Comparison}
			rows[k] = row
		}
		row.Issues = append(row.Issues, bug.Issue)
	}
	for _, row := range rows {
		sort.Ints(row.Issues)
		res.Rows = append(res.Rows, *row)
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].Issues[0] < res.Rows[j].Issues[0] })
	return res, nil
}

// Render prints the Fig. 3 table.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 3 — Hippocrates fixes vs PMDK developer fixes (11 reproduced issues)\n")
	for _, row := range r.Rows {
		nums := make([]string, len(row.Issues))
		for i, n := range row.Issues {
			nums[i] = fmt.Sprint(n)
		}
		verdict := "functionally identical"
		if row.Comparison == "equivalent" {
			verdict = "functionally equivalent; developer fix is more portable"
		}
		fmt.Fprintf(&b, "issues %-28s | Hippocrates: %-35s | developer: %-55s | %s\n",
			strings.Join(nums, ", "), row.HippoFix, row.DevFix, verdict)
	}
	fmt.Fprintf(&b, "verdicts: %d identical, %d equivalent (paper: 8 and 3)\n", r.Identical, r.Equivalent)
	return b.String()
}
