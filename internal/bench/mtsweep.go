package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"hippocrates/internal/core"
	"hippocrates/internal/corpus"
	"hippocrates/internal/crashsim"
	"hippocrates/internal/schedule"
)

// Interleaving-exploration sweep: run the bounded schedule search over
// the concurrent corpus twice — with persistence-aware partial-order
// reduction and bounded-exhaustive — then time the full interleaving-
// aware repair (explore → union repair → re-explore → per-schedule
// crash sweep). `make bench-mt` writes the result to BENCH_mt.json.

// MTMaxSchedules bounds the POR search per target; the exhaustive
// baseline gets MTExhaustiveCap so a pathological frontier cannot stall
// the bench.
const (
	MTMaxSchedules  = 64
	MTExhaustiveCap = 1024
)

// MTTarget is one concurrent corpus program's exploration and repair
// measurements.
type MTTarget struct {
	Name    string `json:"name"`
	Threads int    `json:"threads"`
	// Explored/Pruned describe the POR search; ExhaustiveExplored the
	// bounded-exhaustive baseline over the same program.
	Explored           int   `json:"explored"`
	Pruned             int   `json:"pruned"`
	Truncated          bool  `json:"truncated,omitempty"`
	ExhaustiveExplored int   `json:"exhaustive_explored"`
	ExhaustiveTrunc    bool  `json:"exhaustive_truncated,omitempty"`
	ExploreNs          int64 `json:"explore_ns"`
	ExhaustiveNs       int64 `json:"exhaustive_ns"`
	// PruneFactor is exhaustive/POR explored counts — how much of the
	// interleaving space the reduction proved redundant.
	PruneFactor     float64 `json:"prune_factor"`
	SchedulesPerSec float64 `json:"schedules_per_sec"`
	// UnionBugs counts the class-deduplicated reports across every
	// explored schedule before repair.
	UnionBugs int `json:"union_bugs"`
	// RepairNs times core.RunAndRepairMT end to end, including the
	// post-repair crash sweep of every explored interleaving.
	RepairNs    int64 `json:"repair_ns"`
	CrashPoints int   `json:"crash_points"`
	Fixed       bool  `json:"fixed"`
}

// MTReport is the JSON document `make bench-mt` writes.
type MTReport struct {
	Benchmark string `json:"benchmark"`
	Config    struct {
		MaxSchedules  int `json:"max_schedules"`
		ExhaustiveCap int `json:"exhaustive_cap"`
	} `json:"config"`
	Targets []MTTarget `json:"targets"`
	Totals  struct {
		Explored           int     `json:"explored"`
		Pruned             int     `json:"pruned"`
		ExhaustiveExplored int     `json:"exhaustive_explored"`
		PruneFactor        float64 `json:"prune_factor"`
		SchedulesPerSec    float64 `json:"schedules_per_sec"`
		AllFixed           bool    `json:"all_fixed"`
	} `json:"totals"`
}

// MeasureMTSweep explores and repairs every concurrent corpus program.
func MeasureMTSweep() (*MTReport, error) {
	rep := &MTReport{Benchmark: "MTSweep"}
	rep.Config.MaxSchedules = MTMaxSchedules
	rep.Config.ExhaustiveCap = MTExhaustiveCap
	rep.Totals.AllFixed = true
	var exploreNs int64
	for _, p := range corpus.MTPrograms() {
		tgt := MTTarget{Name: p.Name}

		mod := p.MustCompile()
		start := time.Now()
		ex, err := schedule.Explore(mod, p.Entry, nil, schedule.Options{MaxSchedules: MTMaxSchedules})
		tgt.ExploreNs = time.Since(start).Nanoseconds()
		if err != nil {
			return nil, fmt.Errorf("%s: explore: %w", p.Name, err)
		}
		tgt.Explored = ex.Explored
		tgt.Pruned = ex.Pruned
		tgt.Truncated = ex.Truncated
		for _, r := range ex.Runs {
			if r.Threads > tgt.Threads {
				tgt.Threads = r.Threads
			}
		}
		if tgt.ExploreNs > 0 {
			tgt.SchedulesPerSec = float64(ex.Explored) / (float64(tgt.ExploreNs) / 1e9)
		}

		mod = p.MustCompile()
		start = time.Now()
		bx, err := schedule.Explore(mod, p.Entry, nil, schedule.Options{MaxSchedules: MTExhaustiveCap, NoPOR: true})
		tgt.ExhaustiveNs = time.Since(start).Nanoseconds()
		if err != nil {
			return nil, fmt.Errorf("%s: exhaustive explore: %w", p.Name, err)
		}
		tgt.ExhaustiveExplored = bx.Explored
		tgt.ExhaustiveTrunc = bx.Truncated
		if ex.Explored > 0 {
			tgt.PruneFactor = float64(bx.Explored) / float64(ex.Explored)
		}

		mod = p.MustCompile()
		start = time.Now()
		res, err := core.RunAndRepairMT(mod, p.Entry, core.Options{
			MaxSchedules: MTMaxSchedules,
			CrashCheck:   &crashsim.Options{MaxPoints: 12, MaxImages: 4, Workers: 1},
		})
		tgt.RepairNs = time.Since(start).Nanoseconds()
		if err != nil {
			return nil, fmt.Errorf("%s: repair: %w", p.Name, err)
		}
		tgt.UnionBugs = len(res.Before.Reports)
		tgt.CrashPoints = res.CrashPoints
		tgt.Fixed = res.Fixed()

		rep.Targets = append(rep.Targets, tgt)
		rep.Totals.Explored += tgt.Explored
		rep.Totals.Pruned += tgt.Pruned
		rep.Totals.ExhaustiveExplored += tgt.ExhaustiveExplored
		exploreNs += tgt.ExploreNs
		if !tgt.Fixed {
			rep.Totals.AllFixed = false
		}
	}
	if rep.Totals.Explored > 0 {
		rep.Totals.PruneFactor = float64(rep.Totals.ExhaustiveExplored) / float64(rep.Totals.Explored)
	}
	if exploreNs > 0 {
		rep.Totals.SchedulesPerSec = float64(rep.Totals.Explored) / (float64(exploreNs) / 1e9)
	}
	return rep, nil
}

// WriteMTSweepJSON runs MeasureMTSweep and writes the report to path as
// indented JSON; `make bench-mt` drives it.
func WriteMTSweepJSON(path string) (*MTReport, error) {
	rep, err := MeasureMTSweep()
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return rep, os.WriteFile(path, append(data, '\n'), 0o644)
}
