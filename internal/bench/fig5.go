package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"hippocrates/internal/core"
	"hippocrates/internal/corpus"
	"hippocrates/internal/ir"
	"hippocrates/internal/obs"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/trace"
)

// Fig5Row is one target's offline overhead.
type Fig5Row struct {
	Target string
	// KLOC is thousands of source lines (pmc) across the target's
	// programs, prelude included, mirroring the paper's per-target KLOC.
	KLOC float64
	// Time is the wall-clock Hippocrates runtime (analysis + fix
	// computation + application) over all the target's programs.
	Time time.Duration
	// AliasTime / PlanTime / ApplyTime break Time into its phases
	// (points-to solving, fix planning, fix application), measured by the
	// telemetry recorder the repair runs under.
	AliasTime time.Duration
	PlanTime  time.Duration
	ApplyTime time.Duration
	// AllocBytes is the Go heap allocated while fixing (the paper
	// reports peak RSS; allocation volume is the simulator-side analogue).
	AllocBytes uint64
	// Fixes is the number of applied fixes.
	Fixes int
	// TraceEvents is the consumed trace size in events.
	TraceEvents int
}

// Fig5Result is the offline-overhead table.
type Fig5Result struct {
	Rows []Fig5Row
}

// RunFig5 measures Hippocrates's offline overhead per evaluation target
// (Fig. 5): how long the repair pass takes and how much memory it uses.
// Traces are generated beforehand (trace generation is the bug finder's
// job, not Hippocrates's).
func RunFig5() (*Fig5Result, error) {
	res := &Fig5Result{}
	targets := [][]*corpus.Program{
		corpus.ByTarget("pmdk"),
		{corpus.PCLHTProgram()},
		{corpus.MemcachedProgram()},
		{corpus.ByName("redis-flushfree")},
	}
	names := []string{"PMDK (unit tests)", "P-CLHT (RECIPE)", "memcached-pm", "Redis-pmem"}
	for i, programs := range targets {
		row := Fig5Row{Target: names[i]}
		type prepared struct {
			p   *corpus.Program
			mod moduleWithTrace
		}
		var preps []prepared
		for _, p := range programs {
			row.KLOC += float64(strings.Count(p.Source(), "\n")) / 1000
			m := p.MustCompile()
			tr, err := core.TraceModule(m, p.Entry)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p.Name, err)
			}
			row.TraceEvents += len(tr.Events)
			preps = append(preps, prepared{p: p, mod: moduleWithTrace{m, tr, pmcheck.Check(tr)}})
		}
		var ms1, ms2 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms1)
		// A recorder gives the phase breakdown; its cost is a handful of
		// span operations per program, noise next to the repair itself.
		rec := obs.New()
		root := rec.StartSpan("fig5")
		start := time.Now()
		for _, pr := range preps {
			if pr.mod.check.Clean() {
				continue
			}
			fixRes, err := core.Repair(pr.mod.mod, pr.mod.tr, pr.mod.check, core.Options{Obs: root})
			if err != nil {
				return nil, fmt.Errorf("%s: %w", pr.p.Name, err)
			}
			row.Fixes += len(fixRes.Fixes)
		}
		row.Time = time.Since(start)
		root.End()
		runtime.ReadMemStats(&ms2)
		row.AllocBytes = ms2.TotalAlloc - ms1.TotalAlloc
		for _, pt := range rec.PhaseTotals() {
			switch pt.Name {
			case "alias-analyze":
				row.AliasTime = pt.Total
			case "plan":
				row.PlanTime = pt.Total
			case "apply":
				row.ApplyTime = pt.Total
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

type moduleWithTrace struct {
	mod   *ir.Module
	tr    *trace.Trace
	check *pmcheck.Result
}

// Render prints the Fig. 5 table.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 5 — Hippocrates offline overhead\n")
	fmt.Fprintf(&b, "%-20s %8s %12s %10s %10s %10s %12s %7s %8s\n",
		"target", "KLOC", "time", "alias", "plan", "apply", "alloc", "fixes", "events")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-20s %8.1f %12s %10s %10s %10s %12s %7d %8d\n",
			row.Target, row.KLOC, row.Time.Round(time.Microsecond),
			row.AliasTime.Round(time.Microsecond), row.PlanTime.Round(time.Microsecond),
			row.ApplyTime.Round(time.Microsecond),
			fmtBytes(row.AllocBytes), row.Fixes, row.TraceEvents)
	}
	return b.String()
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
