package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"hippocrates/internal/core"
	"hippocrates/internal/corpus"
	"hippocrates/internal/optimize"
	"hippocrates/internal/pmcheck"
)

// Optimize-sweep configuration, mirroring `make optimize-smoke`
// (internal/optimize/smoke_test.go) so BENCH_optimize.json records the
// simulated-cost deltas of exactly the proven edit set the tier-1 gate
// re-validates.
const (
	OptSweepMaxPoints = 16
	OptSweepMaxImages = 4
	OptSweepStepLimit = 50_000_000
)

// OptSweepTarget is one corpus program's optimize outcome: the build the
// pass started from (Hippocrates-repaired when the original had
// durability reports, as-given otherwise) and the simulated-cost delta
// of the accepted edits.
type OptSweepTarget struct {
	Name     string `json:"name"`
	Repaired bool   `json:"repaired_first"`
	// Candidate accounting.
	Candidates int `json:"candidates"`
	Deleted    int `json:"deleted"`
	Merged     int `json:"merged"`
	Sunk       int `json:"sunk"`
	Rejected   int `json:"rejected"`
	// Simulated workload time under pmem.CostModel before the first and
	// after the last accepted edit.
	SimNsBefore float64 `json:"sim_ns_before"`
	SimNsAfter  float64 `json:"sim_ns_after"`
	SavedNs     float64 `json:"saved_ns"`
	SavedPct    float64 `json:"saved_pct"`
	// Proof tier: crashsim verdict identity over CrashPoints aligned
	// points (recovery entries present), or run/report identity only.
	CrashsimProven bool `json:"crashsim_proven"`
	CrashPoints    int  `json:"crash_points"`
}

// OptSweepReport is the JSON document `make bench-optimize` writes to
// BENCH_optimize.json.
type OptSweepReport struct {
	Benchmark string `json:"benchmark"`
	Config    struct {
		MaxPoints int   `json:"max_points"`
		MaxImages int   `json:"max_images"`
		StepLimit int64 `json:"step_limit"`
	} `json:"config"`
	Targets []OptSweepTarget `json:"targets"`
	Totals  struct {
		Targets        int     `json:"targets"`
		TargetsEdited  int     `json:"targets_edited"`
		Candidates     int     `json:"candidates"`
		Applied        int     `json:"applied"`
		Rejected       int     `json:"rejected"`
		SimNsBefore    float64 `json:"sim_ns_before"`
		SimNsAfter     float64 `json:"sim_ns_after"`
		SavedNs        float64 `json:"saved_ns"`
		SavedPct       float64 `json:"saved_pct"`
		CrashsimProven int     `json:"crashsim_proven_targets"`
	} `json:"totals"`
}

// MeasureOptSweep runs the optimize pass over the whole corpus —
// repairing any build with durability reports first, exactly as the
// smoke test does — and aggregates the simulated-cost deltas.
func MeasureOptSweep() (*OptSweepReport, error) {
	rep := &OptSweepReport{Benchmark: "OptimizeSweep"}
	rep.Config.MaxPoints = OptSweepMaxPoints
	rep.Config.MaxImages = OptSweepMaxImages
	rep.Config.StepLimit = OptSweepStepLimit
	for _, p := range corpus.All() {
		mod := p.MustCompile()
		tr, err := core.TraceModuleOpts(nil, mod, p.Entry, core.Options{StepLimit: OptSweepStepLimit})
		if err != nil {
			return nil, fmt.Errorf("%s: trace: %w", p.Name, err)
		}
		repaired := false
		if !pmcheck.Check(tr).Clean() {
			pr, err := core.RunAndRepair(mod, p.Entry, core.Options{StepLimit: OptSweepStepLimit})
			if err != nil {
				return nil, fmt.Errorf("%s: repair: %w", p.Name, err)
			}
			if !pr.Fixed() {
				return nil, fmt.Errorf("%s: repair incomplete", p.Name)
			}
			repaired = true
		}
		res, err := optimize.Optimize(mod, optimize.Options{
			Entry:     p.Entry,
			MaxPoints: OptSweepMaxPoints,
			MaxImages: OptSweepMaxImages,
			StepLimit: OptSweepStepLimit,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: optimize: %w", p.Name, err)
		}
		tg := OptSweepTarget{
			Name:           p.Name,
			Repaired:       repaired,
			Candidates:     res.Candidates,
			Deleted:        res.Deleted,
			Merged:         res.Merged,
			Sunk:           res.Sunk,
			Rejected:       res.Rejected,
			SimNsBefore:    res.SimNsBefore,
			SimNsAfter:     res.SimNsAfter,
			SavedNs:        res.SavedNs(),
			CrashsimProven: res.CrashsimProven,
			CrashPoints:    res.CrashPoints,
		}
		if res.SimNsBefore > 0 {
			tg.SavedPct = 100 * res.SavedNs() / res.SimNsBefore
		}
		rep.Targets = append(rep.Targets, tg)

		rep.Totals.Targets++
		if res.Applied() > 0 {
			rep.Totals.TargetsEdited++
		}
		rep.Totals.Candidates += res.Candidates
		rep.Totals.Applied += res.Applied()
		rep.Totals.Rejected += res.Rejected
		rep.Totals.SimNsBefore += res.SimNsBefore
		rep.Totals.SimNsAfter += res.SimNsAfter
		if res.CrashsimProven {
			rep.Totals.CrashsimProven++
		}
	}
	rep.Totals.SavedNs = rep.Totals.SimNsBefore - rep.Totals.SimNsAfter
	if rep.Totals.SimNsBefore > 0 {
		rep.Totals.SavedPct = 100 * rep.Totals.SavedNs / rep.Totals.SimNsBefore
	}
	return rep, nil
}

// WriteOptSweepJSON runs MeasureOptSweep and writes the report to path
// as indented JSON; `make bench-optimize` drives it.
func WriteOptSweepJSON(path string) (*OptSweepReport, error) {
	rep, err := MeasureOptSweep()
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return rep, os.WriteFile(path, append(data, '\n'), 0o644)
}
