package bench

import (
	"os"
	"testing"

	"hippocrates/internal/progen"
)

// TestIncrSweepSpeedup pins the incremental-analysis outcome: over the
// deterministic layered edit sequence, every warm re-analysis is
// byte-identical to a cold one (the do-no-harm bit), summary-neutral
// edits invalidate exactly the edited function, and warm runs are
// decisively faster. The speedup floors here are deliberately below the
// ~10x a quiet machine measures (see BENCH_incremental.json) so the test
// gates regressions, not scheduler noise.
func TestIncrSweepSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timed edit sweep")
	}
	rep, err := MeasureIncrSweep(progen.DefaultLayeredConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Config.Funcs < 50 {
		t.Errorf("layered module has %d functions, want >= 50", rep.Config.Funcs)
	}
	if !rep.Totals.AllIdentical {
		t.Error("some warm result differed from its cold run; incremental analysis must be byte-identical")
	}
	for _, e := range rep.Edits {
		if e.SummaryNeutral && e.SumMisses != 1 {
			t.Errorf("%s: %d summary misses, want exactly 1 (only the edited function)", e.Edit, e.SumMisses)
		}
		if !e.SummaryNeutral && e.SumMisses < 3 {
			t.Errorf("%s: %d summary misses, want >= 3 (edit target plus transitive callers)", e.Edit, e.SumMisses)
		}
		if e.SumHits == 0 {
			t.Errorf("%s: no summary hits on a warm run", e.Edit)
		}
	}
	if rep.Totals.Speedup < 3 {
		t.Errorf("total warm speedup %.1fx, want >= 3x", rep.Totals.Speedup)
	}
	if rep.Totals.NeutralSpeedup < 4 {
		t.Errorf("summary-neutral warm speedup %.1fx, want >= 4x", rep.Totals.NeutralSpeedup)
	}
	t.Logf("speedup: total %.1fx, neutral %.1fx, min %.1fx over %d edits",
		rep.Totals.Speedup, rep.Totals.NeutralSpeedup, rep.Totals.MinSpeedup, rep.Totals.Edits)
}

// TestWriteIncrSweepJSON regenerates BENCH_incremental.json when the
// BENCH_INCREMENTAL_OUT environment variable names the output path;
// `make bench-incremental` drives it. Skipped otherwise.
func TestWriteIncrSweepJSON(t *testing.T) {
	path := os.Getenv("BENCH_INCREMENTAL_OUT")
	if path == "" {
		t.Skip("set BENCH_INCREMENTAL_OUT to write the incremental-sweep report")
	}
	rep, err := WriteIncrSweepJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %.1fx total, %.1fx neutral over %d edits (identical=%v)",
		path, rep.Totals.Speedup, rep.Totals.NeutralSpeedup, rep.Totals.Edits, rep.Totals.AllIdentical)
}
