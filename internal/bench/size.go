package bench

import (
	"fmt"
	"strings"

	"hippocrates/internal/core"
	"hippocrates/internal/corpus"
)

// SizeResult is the §6.4 code-size impact of repairing flush-free Redis.
type SizeResult struct {
	InstrsBefore int
	InstrsAfter  int
	// IRLinesAdded is the number of IR instructions Hippocrates inserted
	// (each prints as one line of textual IR; paper: 105 lines, +0.013%).
	IRLinesAdded int
	PctIncrease  float64
	Clones       int
}

// RunSizeImpact measures §6.4 on the Redis case study.
func RunSizeImpact() (*SizeResult, error) {
	p := corpus.ByName("redis-flushfree")
	m := p.MustCompile()
	res, err := core.RunAndRepair(m, p.Entry, core.Options{})
	if err != nil {
		return nil, err
	}
	if res.Fix == nil {
		return nil, fmt.Errorf("flush-free redis had no bugs to fix")
	}
	out := &SizeResult{
		InstrsBefore: res.Fix.InstrsBefore,
		InstrsAfter:  res.Fix.InstrsAfter,
		Clones:       res.Fix.ClonesCreated,
	}
	out.IRLinesAdded = out.InstrsAfter - out.InstrsBefore
	out.PctIncrease = 100 * float64(out.IRLinesAdded) / float64(out.InstrsBefore)
	return out, nil
}

// Render prints the §6.4 numbers.
func (r *SizeResult) Render() string {
	var b strings.Builder
	b.WriteString("§6.4 code-size impact (flush-free Redis repaired by Hippocrates)\n")
	fmt.Fprintf(&b, "IR instructions: %d -> %d (+%d lines of IR, +%.3f%%), %d persistent subprograms\n",
		r.InstrsBefore, r.InstrsAfter, r.IRLinesAdded, r.PctIncrease, r.Clones)
	b.WriteString("paper: +105 lines of LLVM IR (+0.013%), binary +0.05%\n")
	return b.String()
}
