package bench

import (
	"os"
	"testing"
)

// TestMTSweepOutcome pins the interleaving-sweep results that do not
// depend on timing: the partial-order reduction must prune real work on
// at least one target while never changing a verdict (the equivalence
// test in internal/schedule pins that part), every concurrent corpus
// program must expose its bugs in the union verdict, and the
// interleaving-aware repair must fix all of them.
func TestMTSweepOutcome(t *testing.T) {
	if testing.Short() {
		t.Skip("timed exploration sweep")
	}
	rep, err := MeasureMTSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Targets) < 3 {
		t.Fatalf("swept %d concurrent targets, want >= 3", len(rep.Targets))
	}
	if !rep.Totals.AllFixed {
		t.Error("some concurrent target was not fixed by the interleaving-aware repair")
	}
	anyPruned := false
	for _, tgt := range rep.Targets {
		if tgt.Threads < 2 {
			t.Errorf("%s: reached %d thread(s), want >= 2", tgt.Name, tgt.Threads)
		}
		if tgt.UnionBugs == 0 {
			t.Errorf("%s: union verdict found no bugs in a seeded-buggy program", tgt.Name)
		}
		if tgt.Pruned > 0 {
			anyPruned = true
		}
		// POR explores a subset of the exhaustive space (equal only when
		// nothing commutes); with both searches un-truncated the counts
		// must agree with the pruning accounting.
		if !tgt.Truncated && !tgt.ExhaustiveTrunc && tgt.ExhaustiveExplored < tgt.Explored {
			t.Errorf("%s: exhaustive search explored %d < POR's %d", tgt.Name, tgt.ExhaustiveExplored, tgt.Explored)
		}
	}
	if !anyPruned {
		t.Error("partial-order reduction pruned nothing across the whole concurrent corpus")
	}
	for _, tgt := range rep.Targets {
		t.Logf("%s: %d thread(s), POR %d explored / %d pruned (%.1fx vs exhaustive %d), %d union bug(s), %d crash point(s), fixed=%v",
			tgt.Name, tgt.Threads, tgt.Explored, tgt.Pruned, tgt.PruneFactor, tgt.ExhaustiveExplored,
			tgt.UnionBugs, tgt.CrashPoints, tgt.Fixed)
	}
}

// TestWriteMTSweepJSON regenerates BENCH_mt.json when the BENCH_MT_OUT
// environment variable names the output path; `make bench-mt` drives
// it. Skipped otherwise.
func TestWriteMTSweepJSON(t *testing.T) {
	path := os.Getenv("BENCH_MT_OUT")
	if path == "" {
		t.Skip("set BENCH_MT_OUT to write the interleaving-sweep report")
	}
	rep, err := WriteMTSweepJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d target(s), %d explored (+%d pruned, %.1fx prune factor), all fixed=%v",
		path, len(rep.Targets), rep.Totals.Explored, rep.Totals.Pruned,
		rep.Totals.PruneFactor, rep.Totals.AllFixed)
}
