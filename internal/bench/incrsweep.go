package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"time"

	"hippocrates/internal/ir"
	"hippocrates/internal/progen"
	"hippocrates/internal/static"
)

// Incremental-analysis sweep: replay progen's deterministic edit
// sequence over a layered module (DefaultLayeredConfig: 51 functions)
// and compare, per edit, a cold whole-module analysis against a warm
// incremental one backed by the summary store primed by the runs before
// it. `make bench-incremental` writes the result to
// BENCH_incremental.json.

// IncrColdRuns is how many times each cold analysis is repeated (best
// time kept) to shave scheduler noise. The warm run is timed once: its
// first execution is the number an editor loop actually experiences,
// and repeating it would measure a fully-hit store instead.
const IncrColdRuns = 3

// IncrEdit is one edit step's cold/warm comparison.
type IncrEdit struct {
	Edit string `json:"edit"`
	Kind string `json:"kind"`
	// SummaryNeutral marks edits that change a function's body but not
	// its summary — the common case an incremental analysis exists for.
	SummaryNeutral bool    `json:"summary_neutral"`
	ColdNs         int64   `json:"cold_ns"`
	WarmNs         int64   `json:"warm_ns"`
	Speedup        float64 `json:"speedup"`
	SumHits        int     `json:"summary_hits"`
	SumMisses      int     `json:"summary_misses"`
	ConsHits       int     `json:"constraint_hits"`
	ConsMisses     int     `json:"constraint_misses"`
	HitRatio       float64 `json:"hit_ratio"`
	// Identical is the do-no-harm bit: warm summary, reports, and lints
	// equal the cold run's.
	Identical bool `json:"identical"`
}

// IncrReport is the JSON document `make bench-incremental` writes.
type IncrReport struct {
	Benchmark string `json:"benchmark"`
	Config    struct {
		Leaves   int `json:"leaves"`
		Mids     int `json:"mids"`
		LeafOps  int `json:"leaf_ops"`
		PMCells  int `json:"pm_cells"`
		Funcs    int `json:"funcs"`
		ColdRuns int `json:"cold_runs"`
	} `json:"config"`
	// PrimeNs is the first full analysis that fills the store — by
	// construction the same work as a cold run plus store writes.
	PrimeNs int64      `json:"prime_ns"`
	Edits   []IncrEdit `json:"edits"`
	Totals  struct {
		Edits          int     `json:"edits"`
		ColdNs         int64   `json:"cold_ns"`
		WarmNs         int64   `json:"warm_ns"`
		Speedup        float64 `json:"speedup"`
		MinSpeedup     float64 `json:"min_speedup"`
		NeutralSpeedup float64 `json:"neutral_speedup"`
		AllIdentical   bool    `json:"all_identical"`
	} `json:"totals"`
}

func timeAnalysis(m *ir.Module, store *static.Store, runs int) (*static.Result, int64, error) {
	var best int64
	var res *static.Result
	for i := 0; i < runs; i++ {
		start := time.Now()
		r, err := static.AnalyzeWithStore(m, "main", store)
		elapsed := time.Since(start).Nanoseconds()
		if err != nil {
			return nil, 0, err
		}
		if res == nil || elapsed < best {
			best = elapsed
		}
		res = r
	}
	return res, best, nil
}

func sameVerdicts(cold, warm *static.Result) bool {
	return cold.Summary() == warm.Summary() &&
		reflect.DeepEqual(cold.Reports, warm.Reports) &&
		reflect.DeepEqual(cold.Lints, warm.Lints) &&
		cold.Funcs == warm.Funcs
}

// MeasureIncrSweep builds the layered module, primes a summary store,
// then walks the edit sequence comparing cold vs warm per step.
func MeasureIncrSweep(cfg progen.LayeredConfig) (*IncrReport, error) {
	m := progen.Layered(cfg)
	rep := &IncrReport{Benchmark: "IncrementalSweep"}
	rep.Config.Leaves = cfg.Leaves
	rep.Config.Mids = cfg.Mids
	rep.Config.LeafOps = cfg.LeafOps
	rep.Config.PMCells = cfg.PMCells
	rep.Config.ColdRuns = IncrColdRuns
	defined := 0
	for _, f := range m.Funcs {
		if !f.IsDecl() {
			defined++
		}
	}
	rep.Config.Funcs = defined

	store := static.NewStore(0)
	start := time.Now()
	if _, err := static.AnalyzeWithStore(m, "main", store); err != nil {
		return nil, fmt.Errorf("prime: %w", err)
	}
	rep.PrimeNs = time.Since(start).Nanoseconds()

	rep.Totals.AllIdentical = true
	rep.Totals.MinSpeedup = 0
	var neutralCold, neutralWarm int64
	for _, e := range progen.Edits(cfg) {
		if err := progen.ApplyEdit(m, e); err != nil {
			return nil, err
		}
		// Warm first: it must answer from the store primed by the runs
		// before this edit, exactly like an editor loop. The cold runs
		// afterwards are storeless and cannot pollute it.
		warm, warmNs, err := timeAnalysis(m, store, 1)
		if err != nil {
			return nil, fmt.Errorf("%s: warm: %w", e, err)
		}
		cold, coldNs, err := timeAnalysis(m, nil, IncrColdRuns)
		if err != nil {
			return nil, fmt.Errorf("%s: cold: %w", e, err)
		}
		ed := IncrEdit{
			Edit:           e.String(),
			Kind:           e.Kind.String(),
			SummaryNeutral: e.Kind != progen.EditAddPersist,
			ColdNs:         coldNs,
			WarmNs:         warmNs,
			SumHits:        warm.Incr.SumHits,
			SumMisses:      warm.Incr.SumMisses,
			ConsHits:       warm.Incr.ConsHits,
			ConsMisses:     warm.Incr.ConsMisses,
			HitRatio:       warm.Incr.HitRatio(),
			Identical:      sameVerdicts(cold, warm),
		}
		if warmNs > 0 {
			ed.Speedup = float64(coldNs) / float64(warmNs)
		}
		rep.Edits = append(rep.Edits, ed)
		rep.Totals.Edits++
		rep.Totals.ColdNs += coldNs
		rep.Totals.WarmNs += warmNs
		if ed.SummaryNeutral {
			neutralCold += coldNs
			neutralWarm += warmNs
		}
		if !ed.Identical {
			rep.Totals.AllIdentical = false
		}
		if rep.Totals.MinSpeedup == 0 || ed.Speedup < rep.Totals.MinSpeedup {
			rep.Totals.MinSpeedup = ed.Speedup
		}
	}
	if rep.Totals.WarmNs > 0 {
		rep.Totals.Speedup = float64(rep.Totals.ColdNs) / float64(rep.Totals.WarmNs)
	}
	if neutralWarm > 0 {
		rep.Totals.NeutralSpeedup = float64(neutralCold) / float64(neutralWarm)
	}
	return rep, nil
}

// WriteIncrSweepJSON runs MeasureIncrSweep at the default scale and
// writes the report to path as indented JSON; `make bench-incremental`
// drives it.
func WriteIncrSweepJSON(path string) (*IncrReport, error) {
	rep, err := MeasureIncrSweep(progen.DefaultLayeredConfig())
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return rep, os.WriteFile(path, append(data, '\n'), 0o644)
}
