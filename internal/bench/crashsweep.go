package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"hippocrates/internal/core"
	"hippocrates/internal/corpus"
	"hippocrates/internal/crashsim"
	"hippocrates/internal/ir"
)

// Crash-sweep configuration, mirroring the corpus acceptance test
// (internal/corpus/crashsim_test.go) so the benchmark measures exactly
// the validation work the tier-1 gate performs.
const (
	CrashSweepMaxPoints = 48
	CrashSweepMaxImages = 8
	CrashSweepStepLimit = 50_000_000
)

// CrashSweepBaseline records the sweep's cost BEFORE the fast path
// (copy-on-write images, incremental prefix replay, verdict dedup)
// landed: the engine then re-executed the workload once per crash point
// and deep-cloned the durable image once per schedule. Measured with
// `go test -bench BenchmarkCrashSweep -benchmem` (3 iterations) at
// commit 244922d; Schedules/Failures pin the work and verdicts the fast
// path must reproduce exactly.
var CrashSweepBaseline = CrashSweepCost{
	NsPerOp:     1_064_171_529,
	BytesPerOp:  463_059_176,
	AllocsPerOp: 5_710_603,
	Schedules:   1034,
	Failures:    88,
}

// CrashSweepCost is one measured (or recorded) cost of the full sweep.
type CrashSweepCost struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	Schedules   int   `json:"schedules"`
	Failures    int   `json:"failures"`
}

// CrashSweepTarget is one corpus program prepared for the sweep: the
// buggy build and its Hippocrates-repaired twin.
type CrashSweepTarget struct {
	Name     string
	Entry    string
	Buggy    *ir.Module
	Repaired *ir.Module
}

// PrepareCrashSweep compiles and repairs every crashsim-able corpus
// target (seeded bugs, recovery entries; the eADR redis ports carry no
// crash-schedule evidence and are excluded). Preparation is kept out of
// the timed region: the benchmark measures validation, not repair.
func PrepareCrashSweep() ([]CrashSweepTarget, error) {
	var out []CrashSweepTarget
	for _, p := range corpus.All() {
		if strings.HasPrefix(p.Name, "redis") || len(p.Bugs) == 0 {
			continue
		}
		repaired := p.MustCompile()
		pr, err := core.RunAndRepair(repaired, p.Entry, core.Options{StepLimit: CrashSweepStepLimit})
		if err != nil {
			return nil, fmt.Errorf("%s: repair: %w", p.Name, err)
		}
		if !pr.Fixed() {
			return nil, fmt.Errorf("%s: repair incomplete", p.Name)
		}
		out = append(out, CrashSweepTarget{
			Name: p.Name, Entry: p.Entry,
			Buggy: p.MustCompile(), Repaired: repaired,
		})
	}
	return out, nil
}

// CrashSweepOutcome aggregates one full sweep (buggy + repaired build of
// every target).
type CrashSweepOutcome struct {
	Schedules        int
	Failures         int
	ImagesBuilt      int
	DedupedSchedules int
	CacheHits        int64
	CacheMisses      int64
	// FailureKeys canonicalizes every failure as
	// "target/build/event/kind/completed/cuts/entry/ret" — the verdict
	// identity the dedup ablation compares byte for byte.
	FailureKeys []string
}

// RunCrashSweep validates every target's buggy and repaired builds under
// the sweep configuration and aggregates the outcome. With noDedup set
// the content-addressed fast path is disabled (the ablation arm).
func RunCrashSweep(targets []CrashSweepTarget, noDedup bool) (*CrashSweepOutcome, error) {
	out := &CrashSweepOutcome{}
	for _, tg := range targets {
		for _, build := range []struct {
			name string
			mod  *ir.Module
		}{{"buggy", tg.Buggy}, {"repaired", tg.Repaired}} {
			rep, err := crashsim.Validate(build.mod, crashsim.Options{
				Entry:     tg.Entry,
				MaxPoints: CrashSweepMaxPoints,
				MaxImages: CrashSweepMaxImages,
				StepLimit: CrashSweepStepLimit,
				NoDedup:   noDedup,
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", tg.Name, build.name, err)
			}
			out.Schedules += rep.Schedules
			out.Failures += len(rep.Failures)
			out.ImagesBuilt += rep.ImagesBuilt
			out.DedupedSchedules += rep.DedupedSchedules
			out.CacheHits += rep.CacheHits
			out.CacheMisses += rep.CacheMisses
			for _, f := range rep.Failures {
				out.FailureKeys = append(out.FailureKeys,
					fmt.Sprintf("%s/%s/%d/%s/%d/%v/%s/%d",
						tg.Name, build.name, f.Event, f.Kind, f.Completed, f.Cuts, f.Entry, f.Ret))
			}
		}
	}
	sort.Strings(out.FailureKeys)
	return out, nil
}

// CrashSweepReport is the JSON document `make bench` writes to
// BENCH_crashsim.json: the pre-fast-path baseline, the current
// measurement, and the derived ratios the PR acceptance criteria quote.
type CrashSweepReport struct {
	Benchmark string `json:"benchmark"`
	Config    struct {
		MaxPoints int   `json:"max_points"`
		MaxImages int   `json:"max_images"`
		StepLimit int64 `json:"step_limit"`
		Targets   int   `json:"targets"`
	} `json:"config"`
	Baseline CrashSweepCost `json:"baseline_pre_cow"`
	Current  CrashSweepCost `json:"current"`
	Dedup    struct {
		ImagesBuilt      int   `json:"images_built"`
		DedupedSchedules int   `json:"deduped_schedules"`
		CacheHits        int64 `json:"cache_hits"`
		CacheMisses      int64 `json:"cache_misses"`
	} `json:"dedup"`
	SpeedupNs         float64 `json:"speedup_ns"`
	BytesReduction    float64 `json:"bytes_reduction"`
	VerdictsIdentical bool    `json:"verdicts_identical_to_no_dedup"`
}

// MeasureCrashSweep benchmarks the sweep with the fast path on, checks
// verdict identity against the no-dedup ablation, and returns the
// filled report. It is the engine behind `make bench`'s
// BENCH_crashsim.json artifact.
func MeasureCrashSweep() (*CrashSweepReport, error) {
	targets, err := PrepareCrashSweep()
	if err != nil {
		return nil, err
	}
	var last *CrashSweepOutcome
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := RunCrashSweep(targets, false)
			if err != nil {
				b.Fatal(err)
			}
			last = out
		}
	})
	if last == nil {
		return nil, fmt.Errorf("benchmark made no runs")
	}
	ablation, err := RunCrashSweep(targets, true)
	if err != nil {
		return nil, err
	}

	rep := &CrashSweepReport{Benchmark: "BenchmarkCrashSweep"}
	rep.Config.MaxPoints = CrashSweepMaxPoints
	rep.Config.MaxImages = CrashSweepMaxImages
	rep.Config.StepLimit = CrashSweepStepLimit
	rep.Config.Targets = len(targets)
	rep.Baseline = CrashSweepBaseline
	rep.Current = CrashSweepCost{
		NsPerOp:     res.NsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		Schedules:   last.Schedules,
		Failures:    last.Failures,
	}
	rep.Dedup.ImagesBuilt = last.ImagesBuilt
	rep.Dedup.DedupedSchedules = last.DedupedSchedules
	rep.Dedup.CacheHits = last.CacheHits
	rep.Dedup.CacheMisses = last.CacheMisses
	rep.SpeedupNs = float64(rep.Baseline.NsPerOp) / float64(rep.Current.NsPerOp)
	rep.BytesReduction = float64(rep.Baseline.BytesPerOp) / float64(rep.Current.BytesPerOp)
	rep.VerdictsIdentical = equalStrings(last.FailureKeys, ablation.FailureKeys) &&
		last.Schedules == ablation.Schedules
	return rep, nil
}

// WriteCrashSweepJSON runs MeasureCrashSweep and writes the report to
// path as indented JSON.
func WriteCrashSweepJSON(path string) (*CrashSweepReport, error) {
	rep, err := MeasureCrashSweep()
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return rep, os.WriteFile(path, append(data, '\n'), 0o644)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
