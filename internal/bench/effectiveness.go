// Package bench is the experiment harness: it regenerates every table and
// figure in the paper's evaluation (§6) on the simulated substrate —
// Fig. 1 (bug study), Fig. 3 (fix accuracy), the §6.1 effectiveness
// result, Fig. 4 (Redis YCSB performance), Fig. 5 (offline overhead) and
// the §6.4 code-size impact. Each experiment returns a structured result
// plus a Render method that prints the paper's rows.
package bench

import (
	"fmt"
	"strings"

	"hippocrates/internal/core"
	"hippocrates/internal/corpus"
	"hippocrates/internal/interp"
)

// EffectivenessRow is one target's §6.1 outcome.
type EffectivenessRow struct {
	Target      string
	Programs    int
	BugsFound   int // unique buggy store sites before repair
	BugsFixed   int // sites that vanished after repair
	FixesTotal  int
	Interproc   int
	CleanAfter  bool
	WorkloadsOK bool
}

// EffectivenessResult is the §6.1 experiment.
type EffectivenessResult struct {
	Rows  []EffectivenessRow
	Total int
}

// RunEffectiveness repairs every buggy corpus target and validates with
// the bug finder, as §6.1 does.
func RunEffectiveness() (*EffectivenessResult, error) {
	res := &EffectivenessResult{}
	for _, target := range corpus.PaperTargets {
		row := EffectivenessRow{Target: target, CleanAfter: true, WorkloadsOK: true}
		for _, p := range corpus.ByTarget(target) {
			row.Programs++
			m := p.MustCompile()
			pr, err := core.RunAndRepair(m, p.Entry, core.Options{})
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p.Name, err)
			}
			found := pr.Before.UniqueSites()
			row.BugsFound += found
			if pr.Fixed() {
				row.BugsFixed += found
			} else {
				row.CleanAfter = false
			}
			if pr.Fix != nil {
				row.FixesTotal += len(pr.Fix.Fixes)
				row.Interproc += pr.Fix.InterprocFixes()
			}
			mach, err := interp.New(m, interp.Options{})
			if err != nil {
				return nil, err
			}
			if ret, err := mach.Run(p.Entry); err != nil || ret != p.WantRet {
				row.WorkloadsOK = false
			}
		}
		res.Total += row.BugsFixed
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the §6.1 summary.
func (r *EffectivenessResult) Render() string {
	var b strings.Builder
	b.WriteString("§6.1 Effectiveness — all reproduced bugs repaired and re-validated\n")
	fmt.Fprintf(&b, "%-12s %9s %6s %6s %7s %10s %7s %10s\n",
		"target", "programs", "bugs", "fixed", "fixes", "interproc", "clean", "workloads")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %9d %6d %6d %7d %10d %7v %10v\n",
			row.Target, row.Programs, row.BugsFound, row.BugsFixed,
			row.FixesTotal, row.Interproc, row.CleanAfter, row.WorkloadsOK)
	}
	fmt.Fprintf(&b, "total bugs fixed: %d (paper: 23)\n", r.Total)
	return b.String()
}
