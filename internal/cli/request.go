package cli

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"hippocrates/internal/core"
	"hippocrates/internal/crashsim"
	"hippocrates/internal/ir"
	"hippocrates/internal/static"
	"hippocrates/internal/trace"
)

// The pipeline modes a Request can ask for. They correspond one-to-one
// to the three commands: repair is hippocrates, check is pmcheck, crash
// is pmvm -crash.
const (
	// ModeRepair runs the full trace→detect→fix→revalidate pipeline
	// (static detection instead with Static set).
	ModeRepair = "repair"
	// ModeCheck detects durability bugs without repairing.
	ModeCheck = "check"
	// ModeCrash crash-injects the program as given and runs its recovery
	// entries on every feasible post-crash image.
	ModeCrash = "crash"
)

// Request is one pipeline invocation, shared verbatim between the
// command-line tools and the hippocratesd HTTP API: the commands fill it
// from flags, the daemon decodes it from the request body, and both hand
// it to Run — so the two front ends cannot drift. The JSON field names
// are the API contract; fields tagged json:"-" exist for in-process
// callers only.
type Request struct {
	// Program names the submitted program; it becomes the file name in
	// IR locations and selects the syntax: a ".pmir" suffix parses
	// Source as textual IR, anything else compiles it as pmc source.
	// Empty defaults to "request.pmc".
	Program string `json:"program,omitempty"`
	// Source is the program text itself.
	Source string `json:"source"`
	// Mode selects the pipeline: repair (default), check, or crash.
	Mode string `json:"mode,omitempty"`
	// Entry is the workload entrypoint (default "main"); Args its
	// integer arguments.
	Entry string   `json:"entry,omitempty"`
	Args  []uint64 `json:"args,omitempty"`
	// Static switches repair/check detection from dynamic tracing to the
	// static persistency analysis (no execution).
	Static bool `json:"static,omitempty"`
	// Marks is the hoisting heuristic's pointer-marking strategy:
	// "full-aa" (default) or "trace-aa".
	Marks string `json:"marks,omitempty"`
	// IntraOnly disables hoisting (intraprocedural fixes only).
	IntraOnly bool `json:"intra_only,omitempty"`
	// Flush is the inserted flush flavour: "clwb" (default),
	// "clflushopt", or "clflush".
	Flush string `json:"flush,omitempty"`
	// CrashCheck enables post-repair crash-schedule validation in repair
	// mode (implied by crash mode).
	CrashCheck bool `json:"crashcheck,omitempty"`
	// Optimize runs the repair-to-optimize pass (internal/optimize) on
	// the final module: in repair mode after a successful repair, in
	// check mode on the program as given. Every edit is proven harmless
	// by run/report identity plus — when the module declares recovery
	// entries — crashsim verdict identity; CrashPoints / CrashImages
	// bound that proof's budgets.
	Optimize bool `json:"optimize,omitempty"`
	// Invariant / Recovery name the recovery entries for crash
	// validation ("" = the crashsim defaults, "-" = disabled).
	Invariant string `json:"invariant,omitempty"`
	Recovery  string `json:"recovery,omitempty"`
	// CrashPoints / CrashImages are the crash-point and per-point
	// schedule budgets (0 = crashsim defaults).
	CrashPoints int `json:"crash_points,omitempty"`
	CrashImages int `json:"crash_images,omitempty"`
	// NoDedup disables content-addressed verdict dedup (debug hatch).
	NoDedup bool `json:"no_dedup,omitempty"`
	// Threads switches repair/check/crash to the interleaving-aware
	// pipeline: the workload's thread schedules are explored (bounded,
	// with persistence-aware partial-order reduction), the detector runs
	// under every explored schedule, and — in repair and crash modes
	// with crash validation — every explored interleaving is
	// crash-swept. Requires dynamic execution (no static, no trace
	// replay, no optimize).
	Threads bool `json:"threads,omitempty"`
	// MaxSchedules bounds the interleaving search (0 = the
	// schedule-package default). Only meaningful with Threads.
	MaxSchedules int `json:"max_schedules,omitempty"`
	// StepLimit bounds every interpreter run (0 = default 100M).
	StepLimit int64 `json:"steplimit,omitempty"`
	// TimeoutMS is the wall-clock budget for the whole job in
	// milliseconds (0 = none; the daemon clamps it to its own ceiling).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// In-process knobs, invisible to the JSON API.

	// DebugScores receives heuristic candidate scores (-show-scores).
	DebugScores io.Writer `json:"-"`
	// CrashLog receives crashsim pruning notices and failure lines.
	CrashLog io.Writer `json:"-"`
	// CrashCache, when non-nil, shares memoized recovery verdicts with
	// other runs of the same program (the daemon's artifact cache).
	CrashCache *crashsim.VerdictCache `json:"-"`
	// CrashWorkers sizes the crashsim worker pool (0 = crashsim default).
	CrashWorkers int `json:"-"`
	// SummaryStore, when non-nil, backs the static analyses of this run
	// with cached function summaries and alias constraints shared with
	// other runs (the daemon's summary store). Results are byte-identical
	// with or without it.
	SummaryStore *static.Store `json:"-"`
	// ReplayTrace, when non-nil in repair mode, skips the tracing phase
	// and detects against this pre-recorded trace (hippocrates -trace).
	ReplayTrace *trace.Trace `json:"-"`
}

// Validate normalizes defaults and rejects contradictory requests.
// Treat an error as a usage error (HTTP 400 / exit 2).
func (q *Request) Validate() error {
	if strings.TrimSpace(q.Source) == "" {
		return fmt.Errorf("empty source")
	}
	if q.Program == "" {
		q.Program = "request.pmc"
	}
	if q.Mode == "" {
		q.Mode = ModeRepair
	}
	if q.Entry == "" {
		q.Entry = "main"
	}
	if q.Marks == "" {
		q.Marks = "full-aa"
	}
	if q.Flush == "" {
		q.Flush = "clwb"
	}
	switch q.Mode {
	case ModeRepair, ModeCheck, ModeCrash:
	default:
		return fmt.Errorf("unknown mode %q (want repair, check, or crash)", q.Mode)
	}
	switch q.Marks {
	case "full-aa", "trace-aa":
	default:
		return fmt.Errorf("unknown marks %q (want full-aa or trace-aa)", q.Marks)
	}
	switch q.Flush {
	case "clwb", "clflushopt", "clflush":
	default:
		return fmt.Errorf("unknown flush %q (want clwb, clflushopt, or clflush)", q.Flush)
	}
	if q.Mode == ModeCrash {
		q.CrashCheck = true
	}
	if q.Static {
		if q.Mode == ModeCrash {
			return fmt.Errorf("static detection cannot drive crash mode (crash validation executes the program)")
		}
		if q.CrashCheck {
			return fmt.Errorf("crashcheck needs dynamic execution; it cannot be combined with static detection")
		}
		if q.ReplayTrace != nil {
			return fmt.Errorf("static detection does not consume a trace")
		}
		if q.Optimize {
			return fmt.Errorf("optimize measures executions; it cannot be combined with static detection")
		}
	}
	if q.Optimize {
		if q.Mode == ModeCrash {
			return fmt.Errorf("optimize applies in repair or check mode, not crash mode")
		}
		if q.ReplayTrace != nil {
			return fmt.Errorf("optimize re-executes the program; it cannot consume a trace")
		}
	}
	if !q.CrashCheck {
		if q.Invariant != "" {
			return fmt.Errorf("invariant only applies with crashcheck")
		}
		if q.Recovery != "" {
			return fmt.Errorf("recovery only applies with crashcheck")
		}
		if !q.Optimize {
			if q.CrashPoints != 0 {
				return fmt.Errorf("crash_points only applies with crashcheck or optimize")
			}
			if q.CrashImages != 0 {
				return fmt.Errorf("crash_images only applies with crashcheck or optimize")
			}
		}
		if q.NoDedup {
			return fmt.Errorf("no_dedup only applies with crashcheck")
		}
	}
	if q.CrashCheck && q.ReplayTrace != nil {
		return fmt.Errorf("crashcheck re-executes the program; it cannot consume a trace")
	}
	if q.Threads {
		if q.Static {
			return fmt.Errorf("threads needs dynamic execution; it cannot be combined with static detection")
		}
		if q.Optimize {
			return fmt.Errorf("optimize is single-schedule; it cannot be combined with threads")
		}
		if q.ReplayTrace != nil {
			return fmt.Errorf("threads explores interleavings; it cannot consume a trace")
		}
	} else if q.MaxSchedules != 0 {
		return fmt.Errorf("max_schedules only applies with threads")
	}
	if q.MaxSchedules < 0 {
		return fmt.Errorf("max_schedules must be >= 0, got %d", q.MaxSchedules)
	}
	if q.CrashPoints < 0 {
		return fmt.Errorf("crash_points must be >= 0, got %d", q.CrashPoints)
	}
	if q.CrashImages < 0 {
		return fmt.Errorf("crash_images must be >= 0, got %d", q.CrashImages)
	}
	if q.StepLimit < 0 {
		return fmt.Errorf("steplimit must be >= 0, got %d", q.StepLimit)
	}
	if q.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0, got %d", q.TimeoutMS)
	}
	return nil
}

// Key is the request's content-address: the SHA-256 of its canonical
// JSON encoding (defaults applied). Two requests with equal keys demand
// identical work and — the pipeline being deterministic — yield
// byte-identical responses, which is what lets the daemon serve the
// second one from its response cache.
func (q *Request) Key() string {
	c := *q
	c.DebugScores = nil
	c.CrashLog = nil
	c.CrashCache = nil
	c.CrashWorkers = 0
	c.SummaryStore = nil
	c.ReplayTrace = nil
	_ = c.Validate() // normalize defaults; an invalid request still hashes
	data, _ := json.Marshal(&c)
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// SourceKey is the content-address of the program alone (name + text):
// the artifact-cache key under which compiled modules and crash-verdict
// caches are shared across requests that differ only in options.
func (q *Request) SourceKey() string {
	name := q.Program
	if name == "" {
		name = "request.pmc"
	}
	h := sha256.New()
	io.WriteString(h, name)
	h.Write([]byte{0})
	io.WriteString(h, q.Source)
	return hex.EncodeToString(h.Sum(nil))
}

// IsIR reports whether Source is textual IR rather than pmc.
func (q *Request) IsIR() bool {
	return strings.HasSuffix(strings.ToLower(q.Program), ".pmir")
}

// coreOptions maps the request onto the fixer/pipeline options.
func (q *Request) coreOptions() core.Options {
	opts := core.Options{
		DisableHoisting: q.IntraOnly,
		StepLimit:       q.StepLimit,
		DebugScores:     q.DebugScores,
		SummaryStore:    q.SummaryStore,
		MaxSchedules:    q.MaxSchedules,
	}
	switch q.Flush {
	case "clflushopt":
		opts.FlushKind = ir.CLFLUSHOPT
	case "clflush":
		opts.FlushKind = ir.CLFLUSH
	default:
		opts.FlushKind = ir.CLWB
	}
	if q.Marks == "trace-aa" {
		opts.Marks = core.TraceAA
	}
	if q.CrashCheck {
		opts.CrashCheck = q.crashOptions()
	}
	return opts
}

// crashOptions maps the request onto the crash-validation options.
func (q *Request) crashOptions() *crashsim.Options {
	return &crashsim.Options{
		Entry:     q.Entry,
		Args:      q.Args,
		Invariant: q.Invariant,
		Recovery:  q.Recovery,
		MaxPoints: q.CrashPoints,
		MaxImages: q.CrashImages,
		NoDedup:   q.NoDedup,
		Cache:     q.CrashCache,
		Workers:   q.CrashWorkers,
		StepLimit: q.StepLimit,
		Log:       q.CrashLog,
	}
}
