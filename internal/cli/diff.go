package cli

import (
	"fmt"
	"strings"
)

// DiffLines renders a minimal unified-style diff between two texts using
// Myers's O((N+M)D) algorithm. The hippocrates CLI uses it to show
// exactly which instructions a repair inserted.
func DiffLines(before, after string) string {
	a := strings.Split(before, "\n")
	b := strings.Split(after, "\n")
	ops := myers(a, b)
	var out strings.Builder
	// Render with 2 lines of context around changes.
	const ctx = 2
	type line struct {
		tag  byte // ' ', '-', '+'
		text string
	}
	var lines []line
	for _, op := range ops {
		switch op.kind {
		case opEq:
			lines = append(lines, line{' ', a[op.aIdx]})
		case opDel:
			lines = append(lines, line{'-', a[op.aIdx]})
		case opIns:
			lines = append(lines, line{'+', b[op.bIdx]})
		}
	}
	// Mark which lines to keep (changes plus context).
	keep := make([]bool, len(lines))
	for i, l := range lines {
		if l.tag == ' ' {
			continue
		}
		for j := max(0, i-ctx); j < len(lines) && j <= i+ctx; j++ {
			keep[j] = true
		}
	}
	last := -2
	for i, l := range lines {
		if !keep[i] {
			continue
		}
		if i != last+1 {
			out.WriteString("@@\n")
		}
		last = i
		fmt.Fprintf(&out, "%c %s\n", l.tag, l.text)
	}
	if out.Len() == 0 {
		return "(no differences)\n"
	}
	return out.String()
}

type editKind int

const (
	opEq editKind = iota
	opDel
	opIns
)

type edit struct {
	kind       editKind
	aIdx, bIdx int
}

// myers computes a shortest edit script between a and b.
func myers(a, b []string) []edit {
	n, m := len(a), len(b)
	maxD := n + m
	if maxD == 0 {
		return nil
	}
	// v maps diagonal k (offset by maxD) to the furthest x.
	v := make([]int, 2*maxD+1)
	// trace snapshots v per step for backtracking.
	var traceV [][]int
	var solved bool
	var dSolved int
	for d := 0; d <= maxD && !solved; d++ {
		vc := make([]int, len(v))
		copy(vc, v)
		traceV = append(traceV, vc)
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[maxD+k-1] < v[maxD+k+1]) {
				x = v[maxD+k+1] // down: insertion
			} else {
				x = v[maxD+k-1] + 1 // right: deletion
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[maxD+k] = x
			if x >= n && y >= m {
				solved = true
				dSolved = d
				break
			}
		}
	}
	// Backtrack.
	var rev []edit
	x, y := n, m
	for d := dSolved; d > 0; d-- {
		vprev := traceV[d]
		k := x - y
		var prevK int
		if k == -d || (k != d && vprev[maxD+k-1] < vprev[maxD+k+1]) {
			prevK = k + 1
		} else {
			prevK = k - 1
		}
		prevX := vprev[maxD+prevK]
		prevY := prevX - prevK
		for x > prevX && y > prevY {
			x--
			y--
			rev = append(rev, edit{opEq, x, y})
		}
		if x == prevX {
			y--
			rev = append(rev, edit{opIns, x, y})
		} else {
			x--
			rev = append(rev, edit{opDel, x, y})
		}
	}
	for x > 0 && y > 0 {
		x--
		y--
		rev = append(rev, edit{opEq, x, y})
	}
	for y > 0 {
		y--
		rev = append(rev, edit{opIns, 0, y})
	}
	for x > 0 {
		x--
		rev = append(rev, edit{opDel, x, 0})
	}
	// Reverse.
	out := make([]edit, len(rev))
	for i, e := range rev {
		out[len(rev)-1-i] = e
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
