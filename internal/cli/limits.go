package cli

import (
	"flag"
	"fmt"
)

// LimitFlags is the shared resource-limit flag every executing command
// registers: an instruction budget for the interpreter runs the command
// makes. Exceeding the budget surfaces as a typed *interp.LimitError
// instead of a hang.
type LimitFlags struct {
	// StepLimit is the per-run instruction budget (0 keeps the
	// interpreter's 100M default).
	StepLimit int64
}

// Register installs the flag on the default FlagSet.
func (l *LimitFlags) Register() {
	flag.Int64Var(&l.StepLimit, "steplimit", 0,
		"instruction budget per interpreter run (0 = default 100M)")
}

// Validate rejects unusable values; call it after flag.Parse and treat a
// non-nil error as a usage error (exit 2).
func (l *LimitFlags) Validate() error {
	if l.StepLimit < 0 {
		return fmt.Errorf("-steplimit must be >= 0, got %d", l.StepLimit)
	}
	return nil
}
