package cli

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"hippocrates/internal/obs"
)

// ObsFlags is the observability flag trio every command shares:
//
//	-metrics FILE   counters, histograms, opcode top-10, phase timings
//	-spans FILE     the span tree as a self-contained Chrome trace_event
//	                file (load in chrome://tracing or ui.perfetto.dev)
//	-audit          print the repair audit trail on stdout
type ObsFlags struct {
	MetricsPath string
	SpansPath   string
	Audit       bool
}

// Register installs -metrics, -spans, and -audit on the default flag set.
func (c *ObsFlags) Register() {
	flag.StringVar(&c.MetricsPath, "metrics", "", "write counters, histograms, and phase timings as JSON to `file`")
	flag.StringVar(&c.SpansPath, "spans", "", "write the pipeline span tree as Chrome trace_event JSON to `file`")
	flag.BoolVar(&c.Audit, "audit", false, "print the repair audit trail (each insertion mapped to its report and heuristic decision)")
}

// Enabled reports whether any observability output was requested.
func (c *ObsFlags) Enabled() bool {
	return c.MetricsPath != "" || c.SpansPath != "" || c.Audit
}

// NewRecorder returns a recorder when any observability flag is set and
// nil (the no-op recorder) otherwise. Allocation tracking is enabled only
// when metrics were requested — ReadMemStats is too expensive to pay for
// span output alone.
func (c *ObsFlags) NewRecorder() *obs.Recorder {
	if !c.Enabled() {
		return nil
	}
	return c.configure(obs.New())
}

func (c *ObsFlags) configure(r *obs.Recorder) *obs.Recorder {
	if c.MetricsPath != "" {
		r.SetTrackAllocs(true)
	}
	return r
}

// Finish writes the requested artifact files and prints the audit trail
// to w. Call it once, after all spans have ended.
func (c *ObsFlags) Finish(r *obs.Recorder, w io.Writer) error {
	if r == nil {
		return nil
	}
	if c.MetricsPath != "" {
		if err := r.WriteMetricsFile(c.MetricsPath); err != nil {
			return err
		}
	}
	if c.SpansPath != "" {
		if err := r.WriteChromeTraceFile(c.SpansPath); err != nil {
			return err
		}
	}
	if c.Audit {
		fmt.Fprint(w, r.AuditText())
	}
	return nil
}

// PhaseSummary renders the recorder's per-phase wall times as one line,
// e.g. "lex 12µs, parse 48µs, trace 1.2ms". Root spans (the whole-run
// umbrella) are skipped; phases appear in first-start order.
func PhaseSummary(r *obs.Recorder) string {
	if r == nil {
		return ""
	}
	roots := map[string]bool{}
	for _, s := range r.Spans() {
		if s.Parent < 0 {
			roots[s.Name] = true
		}
	}
	var parts []string
	for _, pt := range r.PhaseTotals() {
		if roots[pt.Name] {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %s", pt.Name, roundDur(pt.Total)))
	}
	return strings.Join(parts, ", ")
}

// roundDur trims a duration to a readable precision for the summary line.
func roundDur(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(time.Microsecond)
	}
}
