package cli_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"hippocrates/internal/cli"
	"hippocrates/internal/obs"
)

// The golden files pin the wire encodings the daemon's response cache and
// clients depend on: the Response document as a whole, and inside it the
// repair-provenance audit trail and the crash-verdict report. A change to
// any of these shapes must be deliberate — regenerate with
//
//	UPDATE_GOLDEN=1 go test ./internal/cli/ -run TestGolden
//
// and review the diff like an API change (schema/response.schema.json in
// internal/server usually moves in the same commit).

// goldenPublish has one unflushed store published by a flushed flag; its
// repair is a single inserted flush, so the audit trail, fix list, and
// crash report all stay small enough to eyeball in the golden file.
const goldenPublish = `
pm int payload;
pm int flag;

int invariant_check() {
	if (payload != 0 && payload != 42) { return 1; }
	if (flag != 0 && flag != 1) { return 2; }
	return 0;
}

int crash_check(int completed) {
	if (completed >= 1) {
		if (payload != 42) { return 1; }
		if (flag != 1) { return 2; }
	}
	return 0;
}

int main() {
	payload = 42; // missing flush
	flag = 1;
	clwb(&flag);
	sfence();
	pm_checkpoint();
	return 0;
}
`

func runGolden(t *testing.T, req *cli.Request) []byte {
	t.Helper()
	rec := obs.New()
	root := rec.StartSpan("pipeline")
	resp, err := cli.Run(req, root)
	root.End()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := resp.EncodeJSON()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

// checkGolden compares got against the named golden file, rewriting it
// when UPDATE_GOLDEN is set.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from the golden encoding (UPDATE_GOLDEN=1 to accept):\n%s",
			name, firstDiff(got, want))
	}
}

// firstDiff renders the first divergent region of two encodings.
func firstDiff(got, want []byte) string {
	i := 0
	for i < len(got) && i < len(want) && got[i] == want[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	clip := func(b []byte) string {
		hi := i + 80
		if hi > len(b) {
			hi = len(b)
		}
		return string(b[lo:hi])
	}
	return fmt.Sprintf("first divergence at byte %d\n got: …%s…\nwant: …%s…", i, clip(got), clip(want))
}

// TestGoldenRepairCrashResponse pins the full repair response: fixes,
// audit trail, repaired IR, and the crash-verdict documents (final +
// per-round). CrashWorkers=1 and a private verdict cache make every field
// — including the stats accounting — reproducible.
func TestGoldenRepairCrashResponse(t *testing.T) {
	req := &cli.Request{
		Program:      "publish.pmc",
		Source:       goldenPublish,
		Mode:         cli.ModeRepair,
		CrashCheck:   true,
		CrashPoints:  16,
		CrashImages:  4,
		StepLimit:    10_000_000,
		CrashWorkers: 1,
	}
	checkGolden(t, "repair_crash_publish.golden.json", runGolden(t, req))
}

// TestGoldenStaticRepairResponse pins the static path: same program, no
// execution, audit trail from the static planner.
func TestGoldenStaticRepairResponse(t *testing.T) {
	req := &cli.Request{
		Program: "publish.pmc",
		Source:  goldenPublish,
		Mode:    cli.ModeRepair,
		Static:  true,
	}
	checkGolden(t, "repair_static_publish.golden.json", runGolden(t, req))
}

// goldenMT is the cross-thread unordered-publish showcase: the worker
// persists nothing, main's own clwb+sfence of the shared line masks the
// bug under the default round-robin interleaving, and only exploration
// exposes the schedule where the worker's store is still pending when
// main durably publishes the shard's address.
const goldenMT = `
struct shard {
	int stats;
	int val;
	byte pad[48];
};

struct root {
	shard s;
	byte *head;
};

void worker() {
	root *r = (root*) pm_root(sizeof(root));
	r->s.val = 42; // BUG: published by main with no flush or fence here
}

int main() {
	root *r = (root*) pm_root(sizeof(root));
	int t = spawn(worker);
	r->s.stats = r->s.stats + 1;
	clwb((byte*) &r->s.stats);
	sfence();
	join(t);
	r->head = (byte*) &r->s;
	clwb((byte*) &r->head);
	sfence();
	pm_checkpoint();
	return r->s.val;
}

int invariant_check() {
	root *r = (root*) pm_root(sizeof(root));
	if ((int) r->head != 0) {
		shard *s = (shard*) r->head;
		if (s->val != 42) { return 1; }
	}
	return 0;
}

int crash_check(int completed) {
	root *r = (root*) pm_root(sizeof(root));
	if (completed >= 1) {
		if ((int) r->head == 0) { return 2; }
	}
	return invariant_check();
}
`

// TestGoldenRepairThreadsResponse pins the interleaving-aware repair
// response: the schedules document (explored/pruned accounting, the
// buggy schedule's replayable id) and the per-interleaving crash
// sweeps. CrashWorkers=1 keeps every stats field reproducible.
func TestGoldenRepairThreadsResponse(t *testing.T) {
	req := &cli.Request{
		Program:      "mtpublish.pmc",
		Source:       goldenMT,
		Mode:         cli.ModeRepair,
		Threads:      true,
		MaxSchedules: 16,
		CrashCheck:   true,
		CrashPoints:  16,
		CrashImages:  4,
		StepLimit:    10_000_000,
		CrashWorkers: 1,
	}
	checkGolden(t, "repair_threads_mtpublish.golden.json", runGolden(t, req))
}

// TestGoldenCrashVerdictResponse pins crash mode on the unrepaired
// program: the failure documents (event, kind, cuts, entry, ret) are the
// crash-verdict wire format.
func TestGoldenCrashVerdictResponse(t *testing.T) {
	req := &cli.Request{
		Program:      "publish.pmc",
		Source:       goldenPublish,
		Mode:         cli.ModeCrash,
		CrashPoints:  16,
		CrashImages:  4,
		StepLimit:    10_000_000,
		CrashWorkers: 1,
	}
	checkGolden(t, "crash_publish.golden.json", runGolden(t, req))
}

// goldenOverPersist is clean under the bug finder but flushes its one
// store twice, so an optimize request yields exactly one crashsim-proven
// delete-flush edit — the smallest response that exercises the lints,
// optimize, and optimized_ir wire fields all at once.
const goldenOverPersist = `
pm int slot;

int invariant_check() {
	if (slot < 0 || slot > 3) { return 1; }
	return 0;
}

int crash_check(int completed) {
	int done = completed - 1;
	if (done < 0) { done = 0; }
	if (done > 3) { done = 3; }
	if (slot != done) { return 1; }
	return 0;
}

int main() {
	slot = 0;
	clwb(&slot);
	sfence();
	pm_checkpoint();
	int i = 1;
	while (i <= 3) {
		slot = i;
		clwb(&slot);
		clwb(&slot);
		sfence();
		pm_checkpoint();
		i = i + 1;
	}
	return 0;
}
`

// TestGoldenOptimizeResponse pins the optimize wire format: the candidate
// edit documents (kind, origin, site, accepted, reason, saved_ns), the
// optimize summary counters, the residual lints array, and the optimized
// IR. CrashWorkers=1 keeps the crashsim proof deterministic.
func TestGoldenOptimizeResponse(t *testing.T) {
	req := &cli.Request{
		Program:      "overpersist.pmc",
		Source:       goldenOverPersist,
		Mode:         cli.ModeCheck,
		Optimize:     true,
		CrashPoints:  16,
		CrashImages:  4,
		StepLimit:    10_000_000,
		CrashWorkers: 1,
	}
	checkGolden(t, "optimize_overpersist.golden.json", runGolden(t, req))
}

// TestGoldenStableAcrossRuns re-runs the pinned repair request and
// demands byte equality with itself — determinism independent of the
// checked-in file, so a golden regeneration can't silently bless a
// nondeterministic encoding.
func TestGoldenStableAcrossRuns(t *testing.T) {
	mk := func() *cli.Request {
		return &cli.Request{
			Program:      "publish.pmc",
			Source:       goldenPublish,
			Mode:         cli.ModeRepair,
			CrashCheck:   true,
			CrashPoints:  16,
			CrashImages:  4,
			StepLimit:    10_000_000,
			CrashWorkers: 1,
		}
	}
	a := runGolden(t, mk())
	b := runGolden(t, mk())
	if !bytes.Equal(a, b) {
		t.Errorf("identical requests produced different encodings:\n%s", firstDiff(a, b))
	}
	if mk().Key() != mk().Key() {
		t.Error("request key is not stable")
	}
}
