// Package cli carries the small amount of plumbing the command-line tools
// share: loading programs from pmc source or textual IR, and writing
// artifacts back to disk.
package cli

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hippocrates/internal/ir"
	"hippocrates/internal/lang"
	"hippocrates/internal/obs"
	"hippocrates/internal/trace"
)

// LoadModule reads a program from disk: a .pmc file is compiled, a .pmir
// file is parsed as textual IR.
func LoadModule(path string) (*ir.Module, error) {
	return LoadModuleObs(path, nil)
}

// LoadModuleObs is LoadModule with front-end telemetry: a .pmc compile
// records lex/parse/lower child spans under sp, a .pmir file records a
// single parse-ir span. A nil span records nothing.
func LoadModuleObs(path string, sp *obs.Span) (*ir.Module, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".pmc":
		return lang.CompileObs(filepath.Base(path), string(src), sp)
	case ".pmir":
		psp := sp.Start("parse-ir")
		defer psp.End()
		m, err := ir.ParseModule(string(src))
		if m != nil {
			psp.Add("ir.instrs", int64(m.NumInstrs()))
		}
		return m, err
	default:
		return nil, fmt.Errorf("cli: %s: unknown extension (want .pmc or .pmir)", path)
	}
}

// WriteModule saves a module in textual IR form.
func WriteModule(m *ir.Module, path string) error {
	return os.WriteFile(path, []byte(ir.Print(m)), 0o644)
}

// LoadTrace reads a serialized PM-operation trace, auto-detecting the
// dialect from the header — the native pmemcheck-style form ("pmtrace ...")
// or the PMTest form ("PMTest v1 ...") — and transparently decompressing
// ".gz" files (real pmemcheck traces run to hundreds of megabytes, §5.1).
func LoadTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("cli: %s: %w", path, err)
		}
		defer zr.Close()
		r = zr
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	s := string(data)
	if strings.HasPrefix(s, "PMTest ") {
		return trace.ParsePMTestString(s)
	}
	return trace.ParseString(s)
}

// WriteTrace saves a trace in its textual form, gzip-compressed when the
// path ends in ".gz".
func WriteTrace(t *trace.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gz") {
		zw := gzip.NewWriter(f)
		if err := t.Write(zw); err != nil {
			zw.Close()
			return err
		}
		return zw.Close()
	}
	return t.Write(f)
}
