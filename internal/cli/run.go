package cli

import (
	"encoding/json"
	"fmt"
	"time"

	"hippocrates/internal/core"
	"hippocrates/internal/crashsim"
	"hippocrates/internal/ir"
	"hippocrates/internal/lang"
	"hippocrates/internal/obs"
	"hippocrates/internal/optimize"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/schedule"
	"hippocrates/internal/static"
	"hippocrates/internal/trace"
)

// FixDoc is one applied fix in API form.
type FixDoc struct {
	Kind        string   `json:"kind"`
	ReportSite  string   `json:"report_site"`
	ReportClass string   `json:"report_class"`
	AppliedAt   string   `json:"applied_at"`
	HoistDepth  int      `json:"hoist_depth,omitempty"`
	Score       int      `json:"score,omitempty"`
	Clones      []string `json:"clones,omitempty"`
}

// LintDoc is one static over-persistence diagnostic in API form.
type LintDoc struct {
	// Kind is the lint class: redundant-flush, redundant-fence, or
	// flush-after-ntstore.
	Kind string `json:"kind"`
	// Site locates the instruction as loc:@func:block.
	Site string `json:"site"`
}

// lintDocs renders static lints for the wire, preserving the analyzer's
// deterministic order.
func lintDocs(lints []*static.Lint) []LintDoc {
	out := make([]LintDoc, 0, len(lints))
	for _, l := range lints {
		out = append(out, LintDoc{
			Kind: l.Kind.String(),
			Site: fmt.Sprintf("%s:@%s:%s", l.Site.Loc, l.Site.Func, l.Block),
		})
	}
	return out
}

// Response is the outcome of one Run, shared between the commands and
// the hippocratesd API. The exported, json-tagged fields are the wire
// contract: every one is a deterministic function of the Request (no
// wall times, no absolute addresses beyond the interpreter's own
// deterministic layout), struct fields marshal in declaration order, and
// slices are ordered by the pipeline's deterministic phases — so equal
// requests marshal to byte-identical JSON, pinned by the golden-file
// tests in this package. Fields tagged json:"-" carry the live artifacts
// in-process callers (the commands' printing paths) still need.
type Response struct {
	Mode    string `json:"mode"`
	Program string `json:"program"`
	Entry   string `json:"entry"`
	Static  bool   `json:"static,omitempty"`

	// Detection outcome. BugsBefore/SitesBefore describe the program as
	// submitted; Reports carries the detector's per-bug rendering.
	// BugsAfter is meaningful in repair mode (post-repair re-check).
	BugsBefore  int      `json:"bugs_before"`
	SitesBefore int      `json:"sites_before"`
	BugsAfter   int      `json:"bugs_after"`
	Reports     []string `json:"reports"`

	// Fixed is the mode's headline verdict: repair — the repaired module
	// is clean (and crash-validated, when requested); check — the
	// program was already clean; crash — every schedule recovered.
	Fixed bool `json:"fixed"`

	// Repair outcome (repair mode with bugs found).
	Fixes        []FixDoc `json:"fixes,omitempty"`
	InstrsBefore int      `json:"instrs_before,omitempty"`
	InstrsAfter  int      `json:"instrs_after,omitempty"`
	Clones       int      `json:"clones,omitempty"`
	Reduced      int      `json:"reduced,omitempty"`
	Marks        string   `json:"marks,omitempty"`
	// RepairedIR is the repaired module in textual IR form.
	RepairedIR string `json:"repaired_ir,omitempty"`
	// Audit is the repair-provenance trail: every insertion (or
	// deliberate non-insertion) mapped to its report and heuristic
	// decision.
	Audit []*obs.AuditEntry `json:"audit"`

	// Lints are the static analyzer's over-persistence diagnostics
	// (redundant flush/fence, flush-after-ntstore) for the run's final
	// module, whenever static analysis ran: static check and repair
	// modes, and any mode with Optimize set (where they are the
	// residue the pass could not prove removable). Always present;
	// empty when no static analysis was involved.
	Lints []LintDoc `json:"lints"`

	// Optimize is the repair-to-optimize outcome (Request.Optimize):
	// every candidate edit with its origin, decision, proof, and
	// measured savings. OptimizedIR is the module after accepted edits.
	Optimize    *optimize.Result `json:"optimize,omitempty"`
	OptimizedIR string           `json:"optimized_ir,omitempty"`

	// Crash validation outcome: the final report, plus the per-round
	// reports of incremental revalidation (round i ran right after fix
	// i+1 landed; intermediate rounds legitimately fail).
	Crash       *crashsim.ReportDoc   `json:"crash,omitempty"`
	CrashRounds []*crashsim.ReportDoc `json:"crash_rounds,omitempty"`

	// Schedules summarizes the interleaving exploration of a Threads
	// run; CrashBySchedule carries the per-interleaving crash sweeps
	// (repair mode post-repair, crash mode on the program as given).
	Schedules       *ScheduleDoc       `json:"schedules,omitempty"`
	CrashBySchedule []ScheduleCrashDoc `json:"crash_by_schedule,omitempty"`

	// Live artifacts for in-process callers; never serialized.

	// Module is the (possibly repaired) module.
	Module *ir.Module `json:"-"`
	// Pipeline / StaticResult is the raw pipeline outcome of repair mode
	// (exactly one is set, by Static).
	Pipeline     *core.PipelineResult       `json:"-"`
	StaticResult *core.StaticPipelineResult `json:"-"`
	// Trace / Check / StaticCheck are check mode's raw outcomes.
	Trace       *trace.Trace    `json:"-"`
	Check       *pmcheck.Result `json:"-"`
	StaticCheck *static.Result  `json:"-"`
	// CrashReport is crash mode's raw report.
	CrashReport *crashsim.Report `json:"-"`
	// MT is the raw interleaving-aware repair outcome (Threads repair
	// mode); Exploration the raw search of check/crash Threads modes.
	MT          *core.MTResult   `json:"-"`
	Exploration *schedule.Result `json:"-"`
}

// EncodeJSON renders the response's wire form: indented, deterministic,
// newline-terminated.
func (r *Response) EncodeJSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Run validates the request, compiles its source, and executes the
// requested pipeline, recording phase spans (and the audit trail) under
// root. It is the single entrypoint behind hippocrates, pmcheck,
// pmvm -crash, and the hippocratesd job runner.
func Run(q *Request, root *obs.Span) (*Response, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	mod, err := CompileRequest(q, root)
	if err != nil {
		return nil, err
	}
	return RunModule(q, mod, root)
}

// CompileRequest builds the request's module: pmc source is compiled,
// ".pmir" programs are parsed as textual IR. Front-end telemetry lands
// under root.
func CompileRequest(q *Request, root *obs.Span) (*ir.Module, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.IsIR() {
		psp := root.Start("parse-ir")
		defer psp.End()
		m, err := ir.ParseModule(q.Source)
		if m != nil {
			psp.Add("ir.instrs", int64(m.NumInstrs()))
		}
		return m, err
	}
	return lang.CompileObs(q.Program, q.Source, root)
}

// RunModule is Run for a pre-compiled module (the daemon's artifact
// cache hands each job a private clone of a memoized compile). The
// module is mutated in place by repair mode.
func RunModule(q *Request, mod *ir.Module, root *obs.Span) (*Response, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	root.SetAttr("program", q.Program)
	root.SetAttr("mode", q.Mode)
	root.SetAttr("entry", q.Entry)
	resp := &Response{
		Mode: q.Mode, Program: q.Program, Entry: q.Entry, Static: q.Static,
		Reports: []string{}, Audit: []*obs.AuditEntry{}, Lints: []LintDoc{},
		Module: mod,
	}
	opts := q.coreOptions()
	opts.Obs = root
	if q.TimeoutMS > 0 {
		opts.Deadline = time.Now().Add(time.Duration(q.TimeoutMS) * time.Millisecond)
	}

	var err error
	switch q.Mode {
	case ModeRepair:
		switch {
		case q.Static:
			err = runStaticRepair(q, mod, opts, resp)
		case q.Threads:
			err = runRepairMT(q, mod, opts, resp)
		default:
			err = runRepair(q, mod, opts, resp)
		}
	case ModeCheck:
		switch {
		case q.Static:
			err = runStaticCheck(q, mod, root, resp)
		case q.Threads:
			err = runCheckMT(q, mod, opts, resp)
		default:
			err = runCheck(q, mod, root, opts, resp)
		}
	case ModeCrash:
		if q.Threads {
			err = runCrashMT(q, mod, opts, resp)
		} else {
			err = runCrash(q, mod, opts, resp)
		}
	}
	if err != nil {
		return nil, err
	}
	// Repair-to-optimize rides after the mode's own pipeline: on the
	// repaired module when repair succeeded, on the program as given in
	// check mode (the proof preserves the detectors' verdicts either
	// way, so a buggy program stays exactly as buggy).
	if q.Optimize && (q.Mode == ModeCheck || resp.Fixed) {
		if err := runOptimize(q, mod, root, resp); err != nil {
			return nil, err
		}
	}
	resp.Audit = append(resp.Audit, root.Recorder().AuditTrail()...)
	return resp, nil
}

func runOptimize(q *Request, mod *ir.Module, root *obs.Span, resp *Response) error {
	res, err := optimize.Optimize(mod, optimize.Options{
		Entry:     q.Entry,
		Args:      q.Args,
		MaxPoints: q.CrashPoints,
		MaxImages: q.CrashImages,
		Workers:   q.CrashWorkers,
		StepLimit: q.StepLimit,
		Cache:     q.CrashCache,
		Obs:       root,
		Log:       q.CrashLog,
	})
	if err != nil {
		return err
	}
	resp.Optimize = res
	resp.Lints = lintDocs(res.FinalLints)
	if res.Applied() > 0 {
		resp.OptimizedIR = ir.Print(mod)
	}
	return nil
}

func runRepair(q *Request, mod *ir.Module, opts core.Options, resp *Response) error {
	var res *core.PipelineResult
	var err error
	if q.ReplayTrace != nil {
		res, err = repairFromTrace(q, mod, opts)
	} else {
		res, err = core.RunAndRepair(mod, q.Entry, opts, q.Args...)
	}
	if err != nil {
		return err
	}
	resp.Pipeline = res
	resp.BugsBefore = len(res.Before.Reports)
	resp.SitesBefore = res.Before.UniqueSites()
	resp.BugsAfter = len(res.After.Reports)
	for _, r := range res.Before.Reports {
		resp.Reports = append(resp.Reports, r.String())
	}
	resp.Fixed = res.Fixed()
	if res.Fix != nil {
		fillFixResult(resp, res.Fix)
		resp.RepairedIR = ir.Print(mod)
	}
	resp.Crash = res.Crash.Doc()
	for _, round := range res.CrashRounds {
		resp.CrashRounds = append(resp.CrashRounds, round.Doc())
	}
	return nil
}

// repairFromTrace is the -trace replay variant of the repair pipeline:
// detect against the pre-recorded trace, repair, re-trace to revalidate.
func repairFromTrace(q *Request, mod *ir.Module, opts core.Options) (*core.PipelineResult, error) {
	root := opts.Obs
	check := pmcheck.CheckObs(root, q.ReplayTrace)
	res := &core.PipelineResult{Trace: q.ReplayTrace, Before: check}
	if check.Clean() {
		res.After = check
		return res, nil
	}
	fixRes, err := core.Repair(mod, q.ReplayTrace, check, opts)
	if err != nil {
		return nil, err
	}
	res.Fix = fixRes
	rsp := root.Start("revalidate")
	defer rsp.End()
	tr2, err := core.TraceModuleOpts(rsp, mod, q.Entry, opts, q.Args...)
	if err != nil {
		return nil, err
	}
	res.After = pmcheck.CheckObs(rsp, tr2)
	return res, nil
}

func runStaticRepair(q *Request, mod *ir.Module, opts core.Options, resp *Response) error {
	res, err := core.StaticRepair(mod, q.Entry, opts)
	if err != nil {
		return err
	}
	resp.StaticResult = res
	resp.BugsBefore = len(res.Before.Reports)
	resp.SitesBefore = res.Before.UniqueSites()
	resp.BugsAfter = len(res.After.Reports)
	for _, r := range res.Before.Reports {
		resp.Reports = append(resp.Reports, r.String())
	}
	resp.Fixed = res.After.Clean()
	resp.Lints = lintDocs(res.After.Lints)
	if res.Fix != nil {
		fillFixResult(resp, res.Fix)
		resp.RepairedIR = ir.Print(mod)
	}
	return nil
}

func runCheck(q *Request, mod *ir.Module, root *obs.Span, opts core.Options, resp *Response) error {
	tr, err := core.TraceModuleOpts(root, mod, q.Entry, opts, q.Args...)
	if err != nil {
		return err
	}
	res := pmcheck.CheckObs(root, tr)
	resp.Trace = tr
	resp.Check = res
	resp.BugsBefore = len(res.Reports)
	resp.SitesBefore = res.UniqueSites()
	for _, r := range res.Reports {
		resp.Reports = append(resp.Reports, r.String())
	}
	resp.Fixed = res.Clean()
	return nil
}

func runStaticCheck(q *Request, mod *ir.Module, root *obs.Span, resp *Response) error {
	res, err := static.AnalyzeObsStore(mod, q.Entry, q.SummaryStore, root)
	if err != nil {
		return err
	}
	resp.StaticCheck = res
	resp.Lints = lintDocs(res.Lints)
	resp.BugsBefore = len(res.Reports)
	resp.SitesBefore = res.UniqueSites()
	for _, r := range res.Reports {
		resp.Reports = append(resp.Reports, r.String())
	}
	resp.Fixed = res.Clean()
	return nil
}

func runCrash(q *Request, mod *ir.Module, opts core.Options, resp *Response) error {
	copts := *opts.CrashCheck
	copts.Obs = opts.Obs
	copts.Deadline = opts.Deadline
	rep, err := crashsim.Validate(mod, copts)
	if err != nil {
		return err
	}
	resp.CrashReport = rep
	resp.Crash = rep.Doc()
	resp.Fixed = rep.Passed()
	return nil
}

// fillFixResult publishes a fixer result into the response.
func fillFixResult(resp *Response, fix *core.Result) {
	resp.InstrsBefore = fix.InstrsBefore
	resp.InstrsAfter = fix.InstrsAfter
	resp.Clones = fix.ClonesCreated
	resp.Reduced = fix.ReducedFixes
	resp.Marks = fix.MarksName
	for _, f := range fix.Fixes {
		resp.Fixes = append(resp.Fixes, FixDoc{
			Kind:        f.Kind.String(),
			ReportSite:  f.Report.Store.Site().String(),
			ReportClass: f.Report.Class().String(),
			AppliedAt:   f.AppliedAt.String(),
			HoistDepth:  f.HoistDepth,
			Score:       f.Score,
			Clones:      f.Clones,
		})
	}
}

// FixSummaryLines renders the -show-fixes listing.
func (r *Response) FixSummaryLines() []string {
	var out []string
	var fixes []*core.Fix
	switch {
	case r.Pipeline != nil && r.Pipeline.Fix != nil:
		fixes = r.Pipeline.Fix.Fixes
	case r.StaticResult != nil && r.StaticResult.Fix != nil:
		fixes = r.StaticResult.Fix.Fixes
	}
	for i, fx := range fixes {
		out = append(out, fmt.Sprintf("  [%d] %s", i+1, fx))
	}
	return out
}
