package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hippocrates/internal/ir"
	"hippocrates/internal/trace"
)

const sampleSrc = `
pm int cell;
int main() {
	cell = 7;
	clwb(&cell);
	sfence();
	return cell;
}
`

func TestLoadModulePMC(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.pmc")
	if err := os.WriteFile(path, []byte(sampleSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModule(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Func("main") == nil {
		t.Error("compiled module lost @main")
	}
}

func TestModuleRoundTripThroughDisk(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.pmc")
	if err := os.WriteFile(src, []byte(sampleSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModule(src)
	if err != nil {
		t.Fatal(err)
	}
	irPath := filepath.Join(dir, "prog.pmir")
	if err := WriteModule(m, irPath); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModule(irPath)
	if err != nil {
		t.Fatal(err)
	}
	if ir.Print(back) != ir.Print(m) {
		t.Error("module changed across the disk round trip")
	}
}

func TestTraceRoundTripThroughDisk(t *testing.T) {
	dir := t.TempDir()
	tr := &trace.Trace{Program: "x"}
	tr.Append(&trace.Event{Kind: trace.KindFence, FenceK: ir.SFENCE,
		Stack: []trace.Frame{{Func: "main", InstrID: 3}}})
	path := filepath.Join(dir, "t.pmtrace")
	if err := WriteTrace(tr, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != tr.String() {
		t.Error("trace changed across the disk round trip")
	}
}

func TestLoadModuleErrors(t *testing.T) {
	if _, err := LoadModule("/does/not/exist.pmc"); err == nil {
		t.Error("missing file must error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "prog.txt")
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModule(bad); err == nil {
		t.Error("unknown extension must error")
	}
	broken := filepath.Join(dir, "broken.pmc")
	if err := os.WriteFile(broken, []byte("int main( {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModule(broken); err == nil {
		t.Error("broken source must error")
	}
}

func TestGzipTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tr := &trace.Trace{Program: "z"}
	tr.Append(&trace.Event{Kind: trace.KindStore, Addr: 0x100000000000, Size: 8,
		Stack: []trace.Frame{{Func: "f", InstrID: 1}}})
	tr.Append(&trace.Event{Kind: trace.KindCheckpoint,
		Stack: []trace.Frame{{Func: "f", InstrID: 2}}})
	path := filepath.Join(dir, "t.pmtrace.gz")
	if err := WriteTrace(tr, path); err != nil {
		t.Fatal(err)
	}
	// The file is actually compressed (gzip magic bytes).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Error("trace file is not gzip-compressed")
	}
	back, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != tr.String() {
		t.Error("gzip round trip changed the trace")
	}
}

func TestLoadTracePMTestDialect(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.pmtest")
	src := "PMTest v1 demo\nSTORE 0x100000000000 8 @ f:1\nCHECK @ f:2\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 2 || tr.Events[0].Kind != trace.KindStore {
		t.Errorf("pmtest dialect misparsed: %+v", tr.Events)
	}
}

func TestDiffLines(t *testing.T) {
	before := "a\nb\nc\nd\ne\nf\ng"
	after := "a\nb\nc\nX\nd\ne\ng"
	out := DiffLines(before, after)
	if !strings.Contains(out, "+ X") {
		t.Errorf("diff lacks insertion:\n%s", out)
	}
	if !strings.Contains(out, "- f") {
		t.Errorf("diff lacks deletion:\n%s", out)
	}
	if strings.Contains(out, "- a") || strings.Contains(out, "+ a") {
		t.Errorf("unchanged line marked changed:\n%s", out)
	}
	if DiffLines("same\ntext", "same\ntext") != "(no differences)\n" {
		t.Error("identical inputs must report no differences")
	}
	// Pure insertion at the end.
	out = DiffLines("x", "x\ny\nz")
	if !strings.Contains(out, "+ y") || !strings.Contains(out, "+ z") {
		t.Errorf("append diff wrong:\n%s", out)
	}
	// Everything deleted.
	out = DiffLines("p\nq", "")
	if !strings.Contains(out, "- p") || !strings.Contains(out, "- q") {
		t.Errorf("delete diff wrong:\n%s", out)
	}
}

func TestDiffLinesRandomized(t *testing.T) {
	// Property: applying the edit script tags reconstructs both sides.
	mk := func(seed int64) (string, string) {
		r := seed
		next := func(n int64) int64 {
			r = r*6364136223846793005 + 1442695040888963407
			v := r % n
			if v < 0 {
				v = -v
			}
			return v
		}
		var a, b []string
		for i := int64(0); i < 20+next(30); i++ {
			a = append(a, string(rune('a'+next(6))))
		}
		b = append(b, a...)
		for i := 0; i < 6; i++ {
			pos := next(int64(len(b)))
			switch next(2) {
			case 0:
				b = append(b[:pos], append([]string{string(rune('A' + next(6)))}, b[pos:]...)...)
			default:
				b = append(b[:pos], b[pos+1:]...)
			}
			if len(b) == 0 {
				b = []string{"x"}
			}
		}
		return strings.Join(a, "\n"), strings.Join(b, "\n")
	}
	for seed := int64(0); seed < 50; seed++ {
		before, after := mk(seed)
		ops := myers(strings.Split(before, "\n"), strings.Split(after, "\n"))
		var ra, rb []string
		aLines, bLines := strings.Split(before, "\n"), strings.Split(after, "\n")
		for _, op := range ops {
			switch op.kind {
			case opEq:
				ra = append(ra, aLines[op.aIdx])
				rb = append(rb, bLines[op.bIdx])
				if aLines[op.aIdx] != bLines[op.bIdx] {
					t.Fatalf("seed %d: eq op on unequal lines", seed)
				}
			case opDel:
				ra = append(ra, aLines[op.aIdx])
			case opIns:
				rb = append(rb, bLines[op.bIdx])
			}
		}
		if strings.Join(ra, "\n") != before || strings.Join(rb, "\n") != after {
			t.Fatalf("seed %d: edit script does not reconstruct inputs", seed)
		}
	}
}
