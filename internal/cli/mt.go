package cli

import (
	"hippocrates/internal/core"
	"hippocrates/internal/crashsim"
	"hippocrates/internal/ir"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/schedule"
)

// ScheduleDoc summarizes the interleaving exploration of a Threads run
// in API form. Everything outside Stats is a deterministic function of
// the request: the search is sequential and the partial-order reduction
// canonical, so the explored set, the buggy schedule id, and the
// truncation flag reproduce byte-for-byte. Stats mirrors the crash
// report's quarantine convention — accounting lives in its own
// sub-object that identity comparisons (the server soak test) zero out.
type ScheduleDoc struct {
	// Threads is the maximum thread count any explored run reached.
	Threads int `json:"threads"`
	// BuggySchedule is the replayable id of the first interleaving the
	// detector rejected before repair ("" when the program was clean
	// under every explored schedule).
	BuggySchedule string `json:"buggy_schedule,omitempty"`
	// Truncated reports that MaxSchedules cut the search off with
	// unexplored interleavings remaining.
	Truncated bool `json:"truncated,omitempty"`
	// Stats is the exploration accounting.
	Stats ScheduleStatsDoc `json:"stats"`
}

// ScheduleStatsDoc is the exploration's accounting sub-object.
type ScheduleStatsDoc struct {
	// SchedulesExplored / SchedulesPruned count executed interleavings
	// and alternatives skipped by partial-order reduction (of the final
	// exploration: post-repair in repair mode).
	SchedulesExplored int `json:"schedules_explored"`
	SchedulesPruned   int `json:"schedules_pruned"`
	// CrashPoints is the total crash-point count swept across all
	// schedules (0 when no crash validation ran).
	CrashPoints int `json:"crash_points,omitempty"`
}

// ScheduleCrashDoc is one interleaving's crash sweep in API form.
type ScheduleCrashDoc struct {
	// Schedule is the interleaving's replayable id.
	Schedule string `json:"schedule"`
	// Report is the crash-validation report for the workload run under
	// that interleaving.
	Report *crashsim.ReportDoc `json:"report"`
}

// scheduleDoc renders an exploration summary; buggy is the pre-repair
// search whose first rejected interleaving names the showcase schedule.
func scheduleDoc(final, buggy *schedule.Result, crashPoints int) *ScheduleDoc {
	d := &ScheduleDoc{
		Truncated: final.Truncated,
		Stats: ScheduleStatsDoc{
			SchedulesExplored: final.Explored,
			SchedulesPruned:   final.Pruned,
			CrashPoints:       crashPoints,
		},
	}
	for _, r := range final.Runs {
		if r.Threads > d.Threads {
			d.Threads = r.Threads
		}
	}
	if bad := buggy.FirstBuggy(); bad != nil {
		d.BuggySchedule = bad.ID
	}
	return d
}

// runRepairMT is repair mode under Threads: explore, repair the union
// verdict, re-explore, and crash-sweep every explored interleaving.
func runRepairMT(q *Request, mod *ir.Module, opts core.Options, resp *Response) error {
	res, err := core.RunAndRepairMT(mod, q.Entry, opts, q.Args...)
	if err != nil {
		return err
	}
	resp.MT = res
	resp.BugsBefore = len(res.Before.Reports)
	resp.SitesBefore = res.Before.UniqueSites()
	resp.BugsAfter = len(res.After.Reports)
	for _, r := range res.Before.Reports {
		resp.Reports = append(resp.Reports, r.String())
	}
	resp.Fixed = res.Fixed()
	if res.Fix != nil {
		fillFixResult(resp, res.Fix)
		resp.RepairedIR = ir.Print(mod)
	}
	resp.Schedules = scheduleDoc(res.FinalExploration(), res.Exploration, res.CrashPoints)
	for _, c := range res.Crash {
		resp.CrashBySchedule = append(resp.CrashBySchedule, ScheduleCrashDoc{
			Schedule: c.ID, Report: c.Report.Doc(),
		})
	}
	return nil
}

// runCheckMT is check mode under Threads: explore and report the union
// verdict without mutating the module.
func runCheckMT(q *Request, mod *ir.Module, opts core.Options, resp *Response) error {
	ex, err := core.ExploreModule(mod, q.Entry, opts, q.Args...)
	if err != nil {
		return err
	}
	resp.Exploration = ex
	// The union verdict counts reports the way the MT repair pipeline
	// would see them: class-deduplicated across every explored schedule.
	var all []*pmcheck.Report
	for _, run := range ex.Runs {
		all = append(all, run.Check.Reports...)
	}
	union := pmcheck.DedupeByClass(all)
	sites := map[pmcheck.SiteKey]bool{}
	for _, r := range union {
		resp.Reports = append(resp.Reports, r.String())
		sites[r.Key()] = true
	}
	resp.BugsBefore = len(union)
	resp.SitesBefore = len(sites)
	resp.Fixed = ex.AllClean()
	resp.Schedules = scheduleDoc(ex, ex, 0)
	return nil
}

// runCrashMT is crash mode under Threads: crash-sweep the program as
// given under every explored interleaving.
func runCrashMT(q *Request, mod *ir.Module, opts core.Options, resp *Response) error {
	ex, err := core.ExploreModule(mod, q.Entry, opts, q.Args...)
	if err != nil {
		return err
	}
	resp.Exploration = ex
	copts := *opts.CrashCheck
	copts.Obs = opts.Obs
	copts.Deadline = opts.Deadline
	if copts.Entry == "" {
		copts.Entry = q.Entry
	}
	passed := true
	points := 0
	for _, run := range ex.Runs {
		round := copts
		round.Schedule = run.Choices
		rep, err := crashsim.Validate(mod, round)
		if err != nil {
			return err
		}
		resp.CrashBySchedule = append(resp.CrashBySchedule, ScheduleCrashDoc{
			Schedule: run.ID, Report: rep.Doc(),
		})
		points += rep.Points
		if !rep.Passed() {
			passed = false
		}
	}
	resp.Fixed = passed
	resp.Schedules = scheduleDoc(ex, ex, points)
	return nil
}
