package optimize

import (
	"strings"
	"testing"

	"hippocrates/internal/ir"
	"hippocrates/internal/lang"
	"hippocrates/internal/obs"
)

func mustModule(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := lang.Compile("t.pmc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func countOps(mod *ir.Module, op ir.Op) int {
	n := 0
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == op {
					n++
				}
			}
		}
	}
	return n
}

// TestOptimizeDeletesRedundant drives the full pass on a crashsim-able
// program with a doubled flush and a doubled fence: both duplicates must
// go, the survivors must stay, and the measured simulated time must
// drop.
func TestOptimizeDeletesRedundant(t *testing.T) {
	mod := mustModule(t, `
struct cell { int magic; int val; };

int main() {
	cell *c = (cell*) pm_root(sizeof(cell));
	c->magic = 1;
	c->val = 0;
	clwb((byte*) c);
	sfence();
	pm_checkpoint();
	c->val = 7;
	clwb((byte*) &c->val);
	clwb((byte*) &c->val);
	sfence();
	sfence();
	pm_checkpoint();
	return c->val;
}

int invariant_check() {
	cell *c = (cell*) pm_root(sizeof(cell));
	if (c->magic == 0) { return 0; }
	if (c->val != 0 && c->val != 7) { return 1; }
	return 0;
}

int crash_check(int completed) {
	cell *c = (cell*) pm_root(sizeof(cell));
	if (c->magic == 0) { return 0; }
	if (completed == 1 && c->val != 0) { return 1; }
	if (completed >= 2 && c->val != 7) { return 2; }
	return 0;
}
`)
	flushes, fences := countOps(mod, ir.OpFlush), countOps(mod, ir.OpFence)
	res, err := Optimize(mod, Options{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Deleted != 2 || res.Merged != 0 {
		t.Errorf("deleted = %d, merged = %d, want 2 deletions (flush and fence)\n%s",
			res.Deleted, res.Merged, res.Summary())
	}
	if res.Rejected != 0 {
		for _, e := range res.Edits {
			t.Logf("edit: %s", e)
		}
		t.Errorf("rejected = %d, want 0", res.Rejected)
	}
	if !res.CrashsimProven || res.CrashPoints == 0 {
		t.Errorf("CrashsimProven = %v, CrashPoints = %d; module declares recovery entries",
			res.CrashsimProven, res.CrashPoints)
	}
	if got := countOps(mod, ir.OpFlush); got != flushes-1 {
		t.Errorf("flushes: %d -> %d, want %d", flushes, got, flushes-1)
	}
	if got := countOps(mod, ir.OpFence); got != fences-1 {
		t.Errorf("fences: %d -> %d, want %d", fences, got, fences-1)
	}
	if res.SimNsAfter >= res.SimNsBefore {
		t.Errorf("sim time %v -> %v, want a reduction", res.SimNsBefore, res.SimNsAfter)
	}

	// The pass must be idempotent: nothing left to find.
	res2, err := Optimize(mod, Options{})
	if err != nil {
		t.Fatalf("second Optimize: %v", err)
	}
	if res2.Applied() != 0 {
		t.Errorf("second pass applied %d edit(s), want 0\n%s", res2.Applied(), res2.Summary())
	}
}

// TestOptimizeCoalescesSameLine checks the coalesce shape on a program
// without recovery entries (the run/report-identity-only proof tier):
// two flushes of one cache line with no fence between collapse into the
// later one.
func TestOptimizeCoalescesSameLine(t *testing.T) {
	mod := mustModule(t, `
struct rec { int a; int b; };

int main() {
	rec *r = (rec*) pm_root(sizeof(rec));
	r->a = 1;
	clwb((byte*) &r->a);
	r->b = 2;
	clwb((byte*) &r->b);
	sfence();
	pm_checkpoint();
	return r->a + r->b;
}
`)
	res, err := Optimize(mod, Options{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Merged != 1 {
		for _, e := range res.Edits {
			t.Logf("edit: %s", e)
		}
		t.Fatalf("merged = %d, want 1\n%s", res.Merged, res.Summary())
	}
	if res.CrashsimProven {
		t.Errorf("CrashsimProven = true for a module without recovery entries")
	}
	if got := countOps(mod, ir.OpFlush); got != 1 {
		t.Errorf("flushes after coalesce = %d, want 1", got)
	}
	var merged *Edit
	for _, e := range res.Edits {
		if e.Kind == EditCoalesceFlush && e.Accepted {
			merged = e
		}
	}
	if merged == nil || merged.Into == "" {
		t.Fatalf("accepted coalesce edit missing its surviving partner site: %+v", merged)
	}
}

// TestOptimizeRejectsReclassifyingFence is the do-no-harm case: the
// fence after an unflushed store drains nothing (so dynamic evidence
// nominates it), but deleting it would reclassify the store's bug from
// missing-flush to missing-flush&fence. The proof must reject the edit
// and restore the fence.
func TestOptimizeRejectsReclassifyingFence(t *testing.T) {
	mod := mustModule(t, `
struct cell { int val; };

int main() {
	cell *c = (cell*) pm_root(sizeof(cell));
	c->val = 5;
	sfence();
	pm_checkpoint();
	return 0;
}
`)
	res, err := Optimize(mod, Options{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Applied() != 0 {
		t.Errorf("applied %d edit(s), want 0\n%s", res.Applied(), res.Summary())
	}
	if res.Rejected == 0 {
		t.Fatalf("rejected = 0, want the fence deletion refused\n%s", res.Summary())
	}
	var rej *Edit
	for _, e := range res.Edits {
		if e.Kind == EditDeleteFence && !e.Accepted {
			rej = e
		}
	}
	if rej == nil {
		t.Fatalf("no rejected delete-fence edit among %d edits", len(res.Edits))
	}
	if !strings.Contains(rej.Reason, "report") {
		t.Errorf("rejection reason %q does not mention detector reports", rej.Reason)
	}
	if got := countOps(mod, ir.OpFence); got != 1 {
		t.Errorf("fence count after rejection = %d, want 1 (undo must restore it)", got)
	}
	if res.SimNsAfter != res.SimNsBefore {
		t.Errorf("sim time changed %v -> %v with no accepted edits", res.SimNsBefore, res.SimNsAfter)
	}
}

// TestOptimizeSinksJoinFence checks the cross-block sink shape: a
// branch arm fences before rejoining, and the join block fences again
// for the other arm. The arm's fence drains something on its own
// iterations (so dynamic evidence cannot nominate it for deletion), but
// its drain defers to the join fence.
func TestOptimizeSinksJoinFence(t *testing.T) {
	mod := mustModule(t, `
struct duo { int a; int b; };

int main() {
	duo *d = (duo*) pm_root(sizeof(duo));
	int i = 0;
	while (i < 4) {
		d->a = i;
		clwb((byte*) &d->a);
		if (i - (i / 2) * 2 == 1) {
			d->b = i;
			clwb((byte*) &d->b);
			sfence();
		}
		sfence();
		pm_checkpoint();
		i = i + 1;
	}
	return d->a;
}
`)
	res, err := Optimize(mod, Options{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Sunk != 1 {
		for _, e := range res.Edits {
			t.Logf("edit: %s", e)
		}
		t.Fatalf("sunk = %d, want 1\n%s", res.Sunk, res.Summary())
	}
	if got := countOps(mod, ir.OpFence); got != 1 {
		t.Errorf("fences after sink = %d, want 1", got)
	}
}

// TestOptimizeObsCountersAndAudit checks the provenance plumbing: the
// pass publishes per-kind edit counters and records one audit entry per
// candidate, applied or rejected, carrying its origin and proof.
func TestOptimizeObsCountersAndAudit(t *testing.T) {
	mod := mustModule(t, `
struct cell { int a; };

int main() {
	cell *c = (cell*) pm_root(sizeof(cell));
	c->a = 3;
	clwb((byte*) &c->a);
	clwb((byte*) &c->a);
	sfence();
	pm_checkpoint();
	return c->a;
}
`)
	rec := obs.New()
	sp := rec.StartSpan("test")
	res, err := Optimize(mod, Options{Obs: sp})
	sp.End()
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Deleted != 1 {
		t.Fatalf("deleted = %d, want 1\n%s", res.Deleted, res.Summary())
	}
	if got := rec.Counter("optimize.edits.deleted"); got != 1 {
		t.Errorf("optimize.edits.deleted = %d, want 1", got)
	}
	for _, name := range []string{"optimize.edits.merged", "optimize.edits.sunk", "optimize.edits.rejected"} {
		if got := rec.Counter(name); got != 0 {
			t.Errorf("%s = %d, want 0", name, got)
		}
	}
	if got := rec.Counter("optimize.candidates"); got != int64(res.Candidates) {
		t.Errorf("optimize.candidates = %d, want %d", got, res.Candidates)
	}
	var entries int
	for _, e := range rec.AuditTrail() {
		switch e.Action {
		case "delete-flush", "delete-fence", "coalesce-flush", "sink-fence":
			entries++
			if e.Decision != "applied" && e.Decision != "rejected" {
				t.Errorf("audit entry decision = %q", e.Decision)
			}
			if e.Mechanism == "" || e.Site == "" {
				t.Errorf("audit entry missing provenance: %+v", e)
			}
		}
	}
	if entries != len(res.Edits) {
		t.Errorf("audit entries = %d, want one per edit (%d)", entries, len(res.Edits))
	}
}

// TestOptimizeSinksFence checks the sink shape: a fence immediately
// followed by another fence defers its drain to the second one.
func TestOptimizeSinksFence(t *testing.T) {
	mod := mustModule(t, `
struct cell { int a; int b; };

int main() {
	cell *c = (cell*) pm_root(sizeof(cell));
	c->a = 3;
	clwb((byte*) &c->a);
	sfence();
	sfence();
	pm_checkpoint();
	return c->a;
}
`)
	res, err := Optimize(mod, Options{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Applied() != 1 {
		for _, e := range res.Edits {
			t.Logf("edit: %s", e)
		}
		t.Fatalf("applied = %d, want exactly 1 fence gone\n%s", res.Applied(), res.Summary())
	}
	if got := countOps(mod, ir.OpFence); got != 1 {
		t.Errorf("fences = %d, want 1", got)
	}
}
