package optimize

import (
	"fmt"

	"hippocrates/internal/crashsim"
	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/obs"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/pmem"
	"hippocrates/internal/static"
	"hippocrates/internal/trace"
)

// progSig is everything one instrumented execution plus both detectors
// observe about a build — the identity an edit must preserve.
type progSig struct {
	ret   uint64
	simNs float64
	// events is the PM event kind sequence; ckpts the durability-state
	// signature at every durability point (including the implicit final
	// one), so the durable image and the pending store sequences at
	// every point a crash contract anchors to must be preserved.
	events []interp.PMEventKind
	ckpts  []uint64
	// dyn is the dynamic detector report multiset, keyed by (func,
	// source location, needed mechanisms) — deliberately not by
	// instruction ID, which renumbering shifts across edits. stat is
	// the static report set aggregated per site to its report count and
	// unioned mechanism class (static.Result.NeedsBySite shape): the
	// static lattice deliberately over-approximates, so the per-context
	// needs bits behind one site can shift when a dynamically-dead
	// fence disappears, but the sites the analyzer reports and each
	// site's classification must not.
	dyn  map[string]int
	stat map[string]int

	lints []*static.Lint
	tr    *trace.Trace
}

// measure executes mod's workload once under full instrumentation and
// runs both detectors on the result.
func measure(mod *ir.Module, entry string, opts Options) (*progSig, error) {
	tr := &trace.Trace{Program: mod.Name}
	sig := &progSig{tr: tr}
	var m *interp.Machine
	m, err := interp.New(mod, interp.Options{
		Trace:     tr,
		StepLimit: opts.StepLimit,
		OnPMEvent: func(k int, kind interp.PMEventKind) error {
			if kind == interp.EvCheckpoint {
				sig.ckpts = append(sig.ckpts, stateSig(m.CaptureCrashState()))
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	ret, err := m.Run(entry, opts.Args...)
	if err != nil {
		return nil, err
	}
	sig.ret = ret
	sig.simNs = m.SimTime()
	sig.events = append([]interp.PMEventKind(nil), m.PMEventLog()...)

	dyn := pmcheck.Check(tr)
	sig.dyn = make(map[string]int, len(dyn.Reports))
	for _, r := range dyn.Reports {
		s := r.Store.Site()
		sig.dyn[reportKey(s.Func, s.Loc, r.NeedFlush, r.NeedFence)]++
	}

	sres, err := static.Analyze(mod, entry)
	if err != nil {
		return nil, fmt.Errorf("static analysis: %w", err)
	}
	sig.lints = sres.Lints
	type siteAgg struct {
		count                int
		needFlush, needFence bool
	}
	agg := make(map[string]*siteAgg, len(sres.Reports))
	for _, r := range sres.Reports {
		k := fmt.Sprintf("%s|%s", r.Func, r.Loc)
		a := agg[k]
		if a == nil {
			a = &siteAgg{}
			agg[k] = a
		}
		a.count++
		a.needFlush = a.needFlush || r.NeedFlush
		a.needFence = a.needFence || r.NeedFence
	}
	sig.stat = make(map[string]int, len(agg))
	for k, a := range agg {
		sig.stat[fmt.Sprintf("%s|%t|%t", k, a.needFlush, a.needFence)] = a.count
	}
	return sig, nil
}

func reportKey(fn string, loc ir.Loc, needFlush, needFence bool) string {
	return fmt.Sprintf("%s|%s|%t|%t", fn, loc, needFlush, needFence)
}

// compare checks the always-on identity tier: same workload result, same
// durable state at every durability point, same detector verdicts. It
// returns ok plus a rejection reason.
func (s *progSig) compare(after *progSig) (bool, string) {
	if after.ret != s.ret {
		return false, fmt.Sprintf("workload return changed: %d -> %d", s.ret, after.ret)
	}
	if len(after.ckpts) != len(s.ckpts) {
		return false, fmt.Sprintf("durability point count changed: %d -> %d", len(s.ckpts), len(after.ckpts))
	}
	for i := range s.ckpts {
		if after.ckpts[i] != s.ckpts[i] {
			return false, fmt.Sprintf("durable state at durability point %d changed", i+1)
		}
	}
	if !sameMultiset(s.dyn, after.dyn) {
		return false, "dynamic detector reports changed"
	}
	if !sameMultiset(s.stat, after.stat) {
		return false, "static detector report sites or classes changed"
	}
	return true, ""
}

func sameMultiset(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// stateSig hashes a durability state: the content hash of the committed
// durable image, then every pending line's address and its pending store
// sequence (address and bytes, in tracker order). The flush progress of
// a pending store is deliberately excluded: it does not change the set
// of feasible post-crash images under the per-line prefix model, and
// including it would spuriously reject coalesce edits that only shift
// which flush parks a line.
func stateSig(cs *pmem.CrashState) uint64 {
	h := cs.BaseHash()
	for _, ln := range cs.Lines {
		h = mix(h, ln.Line)
		for _, st := range ln.Stores {
			h = mix(h, st.Addr)
			h = mix(h, uint64(len(st.Data)))
			for _, b := range st.Data {
				h = mix(h, uint64(b))
			}
		}
	}
	return h
}

// mix folds v into h (FNV-1a over the value's bytes).
func mix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// alignKey names a crash point in a build-independent coordinate space:
// the Ord-th event of kind Kind. The optimizer's edits delete only
// flush and fence events, so store, NT-store, and checkpoint ordinals
// correspond one-to-one between the original and every edited build —
// crashing both at the same key crashes them at the same program
// moment. Flush and fence events are never chosen as crash points: a
// flush cannot change the feasible image set (pending content is
// per-line prefix-cut regardless of flush progress), and a fence only
// commits stores whose full-cut image is already feasible at the
// preceding store point, so store/checkpoint alignment subsumes them.
type alignKey struct {
	Kind interp.PMEventKind
	Ord  int
}

// alignKeys selects the aligned crash points from a baseline event
// stream under the same eligibility rules as crashsim's stratified
// selection: every checkpoint (only the last when a parameterless
// crash_check is the sole entry), plus — when an invariant entry exists
// to judge mid-stream crashes — an even spread of store events up to
// the budget.
func alignKeys(events []interp.PMEventKind, maxPoints int, hasInvariant bool, rec *ir.Func) []alignKey {
	if maxPoints <= 0 {
		maxPoints = crashsim.DefaultMaxPoints
	}
	ords := make(map[interp.PMEventKind]int)
	var ckpts, stores []alignKey
	for _, k := range events {
		ords[k]++
		switch k {
		case interp.EvCheckpoint:
			ckpts = append(ckpts, alignKey{k, ords[k]})
		case interp.EvStore, interp.EvNTStore:
			stores = append(stores, alignKey{k, ords[k]})
		}
	}
	if !hasInvariant {
		if rec != nil && len(rec.Params) == 0 && len(ckpts) > 1 {
			ckpts = ckpts[len(ckpts)-1:]
		}
		return ckpts
	}
	keys := ckpts
	if room := maxPoints - len(keys); room > 0 && len(stores) > 0 {
		if room >= len(stores) {
			keys = append(keys, stores...)
		} else {
			for i := 0; i < room; i++ {
				keys = append(keys, stores[i*len(stores)/room])
			}
		}
	}
	return keys
}

// keysToPoints maps aligned keys onto a build's 1-based PM event
// indices. A missing key means the builds' event streams diverged in a
// way edits cannot cause, and fails the proof.
func keysToPoints(events []interp.PMEventKind, keys []alignKey) ([]int, error) {
	index := make(map[alignKey]int, len(events))
	ords := make(map[interp.PMEventKind]int)
	for i, k := range events {
		ords[k]++
		index[alignKey{k, ords[k]}] = i + 1
	}
	pts := make([]int, 0, len(keys))
	for _, k := range keys {
		p, ok := index[k]
		if !ok {
			return nil, fmt.Errorf("no %v event with ordinal %d in this build", k.Kind, k.Ord)
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// failureSig canonicalizes a crashsim failure set into a multiset keyed
// by the aligned coordinate of the crash point plus everything about
// how recovery rejected it — the object two builds must agree on
// exactly.
func failureSig(rep *crashsim.Report, events []interp.PMEventKind) map[string]int {
	sig := make(map[string]int, len(rep.Failures))
	for _, f := range rep.Failures {
		ord := 0
		for i := 0; i < f.Event && i < len(events); i++ {
			if events[i] == f.Kind {
				ord++
			}
		}
		how := fmt.Sprintf("ret=%d", f.Ret)
		if f.Err != nil {
			how = firstLine(f.Err.Error())
		}
		sig[fmt.Sprintf("%v#%d|done=%d|cuts=%v|@%s|%s", f.Kind, ord, f.Completed, f.Cuts, f.Entry, how)]++
	}
	return sig
}

// crashCompare runs the edited build through crashsim at the aligned
// points and demands verdict identity with the current build. It
// returns the edited build's failure signature and an empty reason on
// success. A candidate that edits recovery-reachable code is validated
// against a private cache — its memoized verdicts would be stale.
func crashCompare(mod *ir.Module, after *progSig, keys []alignKey, cur map[string]int,
	c *candidate, recSet map[*ir.Func]bool, cache *crashsim.VerdictCache, opts Options, entry string) (map[string]int, string) {
	pts, err := keysToPoints(after.events, keys)
	if err != nil {
		return nil, "crash-point alignment failed: " + err.Error()
	}
	vcache := cache
	if recSet[c.fn] {
		vcache = crashsim.NewVerdictCache()
	}
	rep, err := crashsim.Validate(mod, csOptions(opts, entry, pts, vcache, nil))
	if err != nil {
		return nil, "crashsim failed after edit: " + firstLine(err.Error())
	}
	sig := failureSig(rep, after.events)
	if !sameMultiset(cur, sig) {
		return nil, fmt.Sprintf("crashsim verdicts changed: %d failing schedule(s) before, %d after", total(cur), total(sig))
	}
	return sig, ""
}

func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func csOptions(opts Options, entry string, pts []int, cache *crashsim.VerdictCache, sp *obs.Span) crashsim.Options {
	return crashsim.Options{
		Entry:     entry,
		Args:      opts.Args,
		Points:    pts,
		MaxImages: opts.MaxImages,
		Workers:   opts.Workers,
		Seed:      opts.Seed,
		StepLimit: opts.StepLimit,
		Cache:     cache,
		Obs:       sp,
	}
}
