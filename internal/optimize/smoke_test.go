package optimize_test

import (
	"sort"
	"strings"
	"testing"

	"hippocrates/internal/core"
	"hippocrates/internal/corpus"
	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/optimize"
	"hippocrates/internal/pmcheck"
)

// Smoke caps mirror the corpus crashsim acceptance test so the
// verdict-identity proof covers the same schedules the tier-1 gate
// replays (bounded per target to keep `make optimize-smoke` quick).
const (
	smokeMaxPoints = 16
	smokeMaxImages = 4
	smokeStepLimit = 50_000_000
)

// smokeShowcase are the targets the pass must actually improve: the four
// overpersist shapes (one per candidate source/edit kind) and the
// flush-free redis port, whose eADR premise leaves every sfence with no
// pending line to drain.
var smokeShowcase = map[string]bool{
	"overpersist-double-flush": true,
	"overpersist-flush-merge":  true,
	"overpersist-double-fence": true,
	"overpersist-sink-fence":   true,
	"redis-flushfree":          true,
}

// runAndCheck executes the workload and replays the trace through the
// bug finder, returning the workload's return value and the sorted
// report multiset.
func runAndCheck(t *testing.T, mod *ir.Module, entry string) (uint64, []string) {
	t.Helper()
	mach, err := interp.New(mod, interp.Options{StepLimit: smokeStepLimit})
	if err != nil {
		t.Fatal(err)
	}
	ret, err := mach.Run(entry)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	tr, err := core.TraceModuleOpts(nil, mod, entry, core.Options{StepLimit: smokeStepLimit})
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	res := pmcheck.Check(tr)
	keys := make([]string, 0, len(res.Reports))
	for _, r := range res.Reports {
		keys = append(keys, r.String())
	}
	sort.Strings(keys)
	return ret, keys
}

// TestOptimizeSmoke runs the optimize pass over the whole corpus — buggy
// targets are Hippocrates-repaired first, clean targets are optimized as
// given — and re-proves every "do no harm" obligation externally: the
// workload return value and the detector's report multiset must be
// unchanged by the accepted edits, the crashsim-able targets (those with
// recovery entries) must carry a verdict-identity proof, and the five
// showcase targets must each lose at least one flush or fence.
// `make optimize-smoke` drives exactly this test.
func TestOptimizeSmoke(t *testing.T) {
	var crashsimable, edited int
	for _, p := range corpus.All() {
		mod := p.MustCompile()
		// Repair first whenever the build has durability reports — the
		// seeded-bug targets, but also redis-flushfree, whose stubbed
		// flushes leave every store unpersisted until Hippocrates inserts
		// them (§6.3). Clean builds are optimized as given.
		if _, reports := runAndCheck(t, mod, p.Entry); len(reports) > 0 {
			pr, err := core.RunAndRepair(mod, p.Entry, core.Options{StepLimit: smokeStepLimit})
			if err != nil {
				t.Fatalf("%s: repair: %v", p.Name, err)
			}
			if !pr.Fixed() {
				t.Fatalf("%s: repair incomplete", p.Name)
			}
		}
		wantRet, wantReports := runAndCheck(t, mod, p.Entry)
		if wantRet != p.WantRet {
			t.Fatalf("%s: pre-optimize build returned %d, want %d", p.Name, wantRet, p.WantRet)
		}

		res, err := optimize.Optimize(mod, optimize.Options{
			Entry:     p.Entry,
			MaxPoints: smokeMaxPoints,
			MaxImages: smokeMaxImages,
			StepLimit: smokeStepLimit,
		})
		if err != nil {
			t.Fatalf("%s: optimize: %v", p.Name, err)
		}

		// Accounting invariants: every candidate is either applied or
		// rejected, and every one left an edit document.
		if res.Candidates != len(res.Edits) {
			t.Errorf("%s: %d candidates but %d edit documents", p.Name, res.Candidates, len(res.Edits))
		}
		if res.Applied()+res.Rejected != res.Candidates {
			t.Errorf("%s: applied %d + rejected %d != candidates %d",
				p.Name, res.Applied(), res.Rejected, res.Candidates)
		}
		if res.CrashsimProven {
			crashsimable++
			if res.Applied() > 0 && res.CrashPoints == 0 {
				t.Errorf("%s: accepted edits claim a crashsim proof over 0 points", p.Name)
			}
		}
		if res.Applied() > 0 {
			edited++
			if res.SimNsAfter >= res.SimNsBefore {
				t.Errorf("%s: %d accepted edit(s) but simulated time %.1f -> %.1f",
					p.Name, res.Applied(), res.SimNsBefore, res.SimNsAfter)
			}
		}
		if smokeShowcase[p.Name] && res.Applied() == 0 {
			t.Errorf("%s: showcase target accepted no edits (%d candidates, %d rejected)",
				p.Name, res.Candidates, res.Rejected)
		}

		// External "do no harm" proof, independent of the pass's own
		// bookkeeping: same return value, same report multiset.
		gotRet, gotReports := runAndCheck(t, mod, p.Entry)
		if gotRet != wantRet {
			t.Errorf("%s: optimized build returned %d, want %d", p.Name, gotRet, wantRet)
		}
		if strings.Join(gotReports, "\n") != strings.Join(wantReports, "\n") {
			t.Errorf("%s: optimized build changed the report multiset:\nbefore: %v\nafter:  %v",
				p.Name, wantReports, gotReports)
		}
		t.Logf("%-28s candidates=%d applied=%d rejected=%d saved=%.1fns crashsim=%v",
			p.Name, res.Candidates, res.Applied(), res.Rejected, res.SavedNs(), res.CrashsimProven)
	}
	if crashsimable < 15 {
		t.Errorf("only %d crashsim-able targets carried a verdict-identity proof, want >= 15", crashsimable)
	}
	if edited < 5 {
		t.Errorf("only %d targets accepted edits, want >= 5 (showcase floor)", edited)
	}
}
