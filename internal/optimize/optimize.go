// Package optimize is the repair-to-optimize pass (§7's "performance
// diagnostics", promoted to a transformation): it consumes the static
// analyzer's redundancy lints and the workload trace's dynamic
// redundancy evidence, proposes flush/fence-eliminating edits — delete
// a provably redundant flush or fence, coalesce two flushes of one
// cache line, sink a fence into the next fence that covers it — and
// accepts each edit only after proving the edited program
// indistinguishable from the original under every observation the
// repair pipeline itself is judged by:
//
//   - the workload's return value,
//   - the durable PM state at every durability point (content hash of
//     the committed image plus the pending store sequences),
//   - the dynamic (pmcheck) and static detector report multisets —
//     an optimization must not create, destroy, or reclassify a bug,
//   - and, when the module declares recovery entries, crashsim verdict
//     identity: both builds are crash-injected at corresponding PM
//     events (aligned by per-kind ordinal, so deleting flush/fence
//     events cannot shift the comparison) and must fail the exact same
//     schedules the exact same way.
//
// The pass is greedy: candidates are applied one at a time, re-measured,
// and kept only when the whole proof holds; a rejected edit is undone
// and recorded in the audit trail with the reason — "first, do no harm"
// applies to performance surgery exactly as it does to bug fixing.
package optimize

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"hippocrates/internal/crashsim"
	"hippocrates/internal/ir"
	"hippocrates/internal/obs"
	"hippocrates/internal/static"
)

// Options configures one optimization pass.
type Options struct {
	// Entry is the workload entrypoint (default "main"); Args its
	// integer arguments.
	Entry string
	Args  []uint64
	// MaxPoints bounds the aligned crash points per verdict-identity
	// check (0 = crashsim.DefaultMaxPoints); MaxImages, Workers and
	// Seed are passed through to crashsim.
	MaxPoints int
	MaxImages int
	Workers   int
	Seed      int64
	// StepLimit bounds every interpreter run the pass makes.
	StepLimit int64
	// Cache, when non-nil, carries crashsim recovery verdicts across
	// candidate validations (and across a preceding repair run). It is
	// bypassed for any candidate that edits recovery-reachable code and
	// reset when such an edit is accepted.
	Cache *crashsim.VerdictCache
	// Obs receives an "optimize" child span, the optimize.* counters,
	// and one audit entry per candidate edit (applied or rejected).
	Obs *obs.Span
	// Log, when non-nil, receives a line per candidate decision.
	Log io.Writer
}

// EditKind classifies a candidate edit.
type EditKind int

const (
	// EditDeleteFlush removes a flush that never transitions a store.
	EditDeleteFlush EditKind = iota
	// EditDeleteFence removes a fence that never drains a store.
	EditDeleteFence
	// EditCoalesceFlush removes the earlier of two flushes of the same
	// cache line with no fence or call between them; the survivor
	// flushes both flushes' stores.
	EditCoalesceFlush
	// EditSinkFence removes a fence that is followed by another fence
	// with no store, flush, or call between them; the later fence
	// drains everything the earlier one would have.
	EditSinkFence
)

// MarshalJSON renders the kind as its string name — the wire contract
// (cli Response, server schema) names edit kinds, not enum ordinals.
func (k EditKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

func (k EditKind) String() string {
	switch k {
	case EditDeleteFlush:
		return "delete-flush"
	case EditDeleteFence:
		return "delete-fence"
	case EditCoalesceFlush:
		return "coalesce-flush"
	case EditSinkFence:
		return "sink-fence"
	}
	return fmt.Sprintf("EditKind(%d)", int(k))
}

// Edit is one candidate edit and its outcome.
type Edit struct {
	Kind EditKind `json:"kind"`
	// Func / Site / Loc locate the deleted instruction: Site is
	// file:func:block:index at decision time, Loc the source location.
	Func string `json:"func"`
	Site string `json:"site"`
	Loc  string `json:"loc,omitempty"`
	// Origin says where the candidate came from: "static-lint",
	// "trace-evidence", or "scan".
	Origin string `json:"origin"`
	// Into is the surviving partner site for coalesce/sink edits.
	Into string `json:"into,omitempty"`
	// Accepted reports whether the edit survived the harmlessness
	// proof; Reason is the proof summary or the rejection cause.
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason"`
	// SavedNs is the measured simulated-time reduction of an accepted
	// edit (relative to the build with all earlier accepted edits).
	SavedNs float64 `json:"saved_ns,omitempty"`
}

func (e *Edit) String() string {
	verdict := "rejected"
	if e.Accepted {
		verdict = fmt.Sprintf("applied, -%.1fns", e.SavedNs)
	}
	s := fmt.Sprintf("%s at %s [%s]: %s (%s)", e.Kind, e.Site, e.Origin, verdict, e.Reason)
	if e.Into != "" {
		s += " into " + e.Into
	}
	return s
}

// Result is the outcome of one optimization pass.
type Result struct {
	Entry string `json:"entry"`
	// Candidates counts proposed edits; Deleted / Merged / Sunk count
	// accepted edits by shape (Deleted covers both flush and fence
	// deletion); Rejected counts edits the proof refused.
	Candidates int `json:"candidates"`
	Deleted    int `json:"deleted"`
	Merged     int `json:"merged"`
	Sunk       int `json:"sunk"`
	Rejected   int `json:"rejected"`
	// SimNsBefore / SimNsAfter are the workload's simulated time under
	// pmem.CostModel before the first and after the last accepted edit.
	SimNsBefore float64 `json:"sim_ns_before"`
	SimNsAfter  float64 `json:"sim_ns_after"`
	// CrashsimProven reports whether the module declares recovery
	// entries, so every accepted edit carried a crashsim
	// verdict-identity proof over CrashPoints aligned crash points (in
	// addition to the run/report identity proof that always applies).
	CrashsimProven bool `json:"crashsim_proven"`
	CrashPoints    int  `json:"crash_points,omitempty"`
	// Edits lists every candidate in decision order.
	Edits []*Edit `json:"edits,omitempty"`

	// FinalLints are the static analyzer's remaining over-persistence
	// lints on the final (post-edit) build — what the pass could not
	// prove removable. In-process artifact; the CLI renders it.
	FinalLints []*static.Lint `json:"-"`
}

// Applied counts accepted edits.
func (r *Result) Applied() int { return r.Deleted + r.Merged + r.Sunk }

// SavedNs is the total measured simulated-time reduction.
func (r *Result) SavedNs() float64 { return r.SimNsBefore - r.SimNsAfter }

// Summary renders the result for CLI output.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "optimize: %d candidate(s): %d deleted, %d coalesced, %d sunk, %d rejected\n",
		r.Candidates, r.Deleted, r.Merged, r.Sunk, r.Rejected)
	if r.Applied() > 0 {
		pct := 0.0
		if r.SimNsBefore > 0 {
			pct = 100 * r.SavedNs() / r.SimNsBefore
		}
		fmt.Fprintf(&b, "optimize: simulated time %.1fns -> %.1fns (-%.1f%%)\n",
			r.SimNsBefore, r.SimNsAfter, pct)
	}
	if r.Candidates > 0 {
		if r.CrashsimProven {
			fmt.Fprintf(&b, "optimize: harmlessness proven by run/report identity and crashsim verdict identity at %d aligned crash point(s)\n", r.CrashPoints)
		} else {
			b.WriteString("optimize: harmlessness proven by run/report identity (module declares no recovery entries, crashsim skipped)\n")
		}
	}
	return b.String()
}

// Optimize proposes and proves flush/fence-eliminating edits on mod,
// mutating it in place (rejected edits are undone). The module must
// execute its workload cleanly; the usual flow optimizes either a
// repaired module or one the detectors already pass.
func Optimize(mod *ir.Module, opts Options) (*Result, error) {
	entry := opts.Entry
	if entry == "" {
		entry = "main"
	}
	sp := opts.Obs.Start("optimize")
	defer sp.End()
	sp.SetAttr("entry", entry)

	res := &Result{Entry: entry}

	base, err := measure(mod, entry, opts)
	if err != nil {
		return nil, fmt.Errorf("optimize: baseline run: %w", err)
	}
	res.SimNsBefore = base.simNs
	res.SimNsAfter = base.simNs

	// CrashsimProven is a property of the module, not of the candidate
	// set: it says whether any accepted edit carries (or would carry) a
	// crashsim verdict-identity proof, so it is set before the
	// zero-candidate early return.
	inv, rec := definedFn(mod, "invariant_check"), definedFn(mod, "crash_check")
	res.CrashsimProven = inv != nil || rec != nil

	cands := gather(mod, base.lints, base.tr)
	res.Candidates = len(cands)
	res.FinalLints = base.lints
	sp.Add("optimize.candidates", int64(len(cands)))
	if len(cands) == 0 {
		publishEditCounters(sp, res)
		return res, nil
	}

	// Crashsim baseline: one verdict set at aligned points, refreshed on
	// every accepted edit so each candidate is compared against the
	// current build.
	cache := opts.Cache
	if cache == nil {
		cache = crashsim.NewVerdictCache()
	}
	recSet := recoverySet(mod)
	var keys []alignKey
	var curCrash map[string]int
	if res.CrashsimProven {
		keys = alignKeys(base.events, opts.MaxPoints, inv != nil, rec)
		res.CrashPoints = len(keys)
		pts, err := keysToPoints(base.events, keys)
		if err != nil {
			return nil, fmt.Errorf("optimize: baseline crash points: %w", err)
		}
		rep, err := crashsim.Validate(mod, csOptions(opts, entry, pts, cache, sp))
		if err != nil {
			return nil, fmt.Errorf("optimize: baseline crashsim: %w", err)
		}
		curCrash = failureSig(rep, base.events)
	}

	cur := base
	for _, c := range cands {
		site := siteOf(c.in)
		into := ""
		if c.partner != nil {
			into = siteOf(c.partner)
		}
		ed := &Edit{
			Kind:   c.kind,
			Func:   c.fn.Name,
			Site:   site,
			Loc:    locString(c.in),
			Origin: c.origin,
			Into:   into,
		}
		res.Edits = append(res.Edits, ed)

		blk := c.in.Block()
		idx := blk.RemoveInstr(c.in)

		after, err := measure(mod, entry, opts)
		ok, reason := true, ""
		if err != nil {
			ok, reason = false, "workload failed after edit: "+firstLine(err.Error())
		} else {
			ok, reason = cur.compare(after)
		}
		var afterCrash map[string]int
		if ok && res.CrashsimProven {
			afterCrash, reason = crashCompare(mod, after, keys, curCrash, c, recSet, cache, opts, entry)
			ok = reason == ""
		}

		if ok {
			ed.Accepted = true
			ed.SavedNs = cur.simNs - after.simNs
			ed.Reason = proofSummary(res.CrashsimProven, len(keys))
			cur = after
			if res.CrashsimProven {
				curCrash = afterCrash
				if recSet[c.fn] {
					// The accepted edit changed recovery code: every
					// memoized verdict is stale.
					cache.Reset()
				}
			}
			res.SimNsAfter = after.simNs
			switch c.kind {
			case EditCoalesceFlush:
				res.Merged++
			case EditSinkFence:
				res.Sunk++
			default:
				res.Deleted++
			}
		} else {
			blk.InsertAt(idx, c.in)
			ed.Accepted = false
			ed.Reason = reason
			res.Rejected++
		}
		audit(sp, ed)
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "optimize: %s\n", ed)
		}
	}

	res.FinalLints = cur.lints
	publishEditCounters(sp, res)
	return res, nil
}

func publishEditCounters(sp *obs.Span, res *Result) {
	sp.Add("optimize.edits.deleted", int64(res.Deleted))
	sp.Add("optimize.edits.merged", int64(res.Merged))
	sp.Add("optimize.edits.sunk", int64(res.Sunk))
	sp.Add("optimize.edits.rejected", int64(res.Rejected))
}

func proofSummary(crashProven bool, points int) string {
	if crashProven {
		return fmt.Sprintf("run/report identity and verdict identity at %d crash point(s)", points)
	}
	return "run/report identity (no recovery entries, crashsim skipped)"
}

// audit records one candidate decision in the obs audit trail, mirroring
// the fixer's entries so a single trail narrates both repair and
// optimization provenance.
func audit(sp *obs.Span, ed *Edit) {
	decision := "rejected"
	if ed.Accepted {
		decision = "applied"
	}
	sp.Audit(obs.AuditEntry{
		Action:    ed.Kind.String(),
		Site:      ed.Site,
		Mechanism: ed.Origin,
		Decision:  decision,
		Why:       ed.Reason,
		Score:     int(ed.SavedNs),
	})
}

// definedFn returns the named function when the module defines a body
// for it, else nil.
func definedFn(mod *ir.Module, name string) *ir.Func {
	if f := mod.Func(name); f != nil && !f.IsDecl() {
		return f
	}
	return nil
}

// recoverySet is the set of functions reachable from the recovery
// entries over the static call graph — the code whose verdicts the
// crashsim cache memoizes.
func recoverySet(mod *ir.Module) map[*ir.Func]bool {
	seen := make(map[*ir.Func]bool)
	var walk func(f *ir.Func)
	walk = func(f *ir.Func) {
		if f == nil || seen[f] {
			return
		}
		seen[f] = true
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && in.Callee != nil {
					walk(in.Callee)
				}
			}
		}
	}
	walk(definedFn(mod, "invariant_check"))
	walk(definedFn(mod, "crash_check"))
	return seen
}

// siteOf renders an instruction's position as file:func:block:index,
// the same shape the fixer's audit entries use.
func siteOf(in *ir.Instr) string {
	blk := in.Block()
	if blk == nil {
		return "<detached>"
	}
	idx := -1
	for i, x := range blk.Instrs {
		if x == in {
			idx = i
			break
		}
	}
	file := in.Loc.File
	if file == "" {
		file = "<generated>"
	}
	return fmt.Sprintf("%s:@%s:%s:%d", file, blk.Func().Name, blk.Name, idx)
}

func locString(in *ir.Instr) string {
	if in.Loc.IsZero() {
		return ""
	}
	return in.Loc.String()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
