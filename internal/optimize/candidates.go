package optimize

import (
	"fmt"
	"sort"

	"hippocrates/internal/ir"
	"hippocrates/internal/pmem"
	"hippocrates/internal/static"
	"hippocrates/internal/trace"
)

// candidate is one proposed edit before its harmlessness proof.
type candidate struct {
	kind    EditKind
	in      *ir.Instr // the instruction to delete
	fn      *ir.Func
	partner *ir.Instr // coalesce/sink: the surviving instruction
	origin  string    // "static-lint", "trace-evidence", "scan"
	why     string
}

// gather proposes candidate edits from three sources, in a fixed order:
// static lints (a machine-checked local redundancy argument), dynamic
// trace evidence (a flush site that never transitioned a store, or a
// fence site that never drained one, across the whole workload), and
// structural scans (two flushes of one provably-same cache line, or two
// fences, with no barrier between them). Every source is a heuristic —
// the proof in Optimize is the gate — but each instruction is claimed
// by at most one candidate so edits compose without aliasing.
func gather(mod *ir.Module, lints []*static.Lint, tr *trace.Trace) []*candidate {
	var out []*candidate
	claimed := make(map[*ir.Instr]bool)
	add := func(c *candidate) {
		if c.in == nil || claimed[c.in] {
			return
		}
		if c.partner != nil && claimed[c.partner] {
			return
		}
		claimed[c.in] = true
		out = append(out, c)
	}

	for _, l := range lints {
		fn := mod.Func(l.Site.Func)
		if fn == nil || fn.IsDecl() {
			continue
		}
		in := fn.InstrByID(l.Site.InstrID)
		if in == nil {
			continue
		}
		switch {
		case l.Kind == static.LintRedundantFence && in.Op == ir.OpFence:
			add(&candidate{kind: EditDeleteFence, in: in, fn: fn, origin: "static-lint",
				why: "static analysis proves no flushed store can be pending here on any path"})
		case in.Op == ir.OpFlush:
			// LintRedundantFlush and LintFlushAfterNT both delete the flush.
			add(&candidate{kind: EditDeleteFlush, in: in, fn: fn, origin: "static-lint",
				why: "static analysis proves the line is already flushed on every path"})
		}
	}

	for _, ev := range traceEvidence(mod, tr) {
		kind, why := EditDeleteFlush, fmt.Sprintf("flush transitioned no store in any of %d execution(s)", ev.count)
		if ev.in.Op == ir.OpFence {
			kind, why = EditDeleteFence, fmt.Sprintf("fence drained no store in any of %d execution(s)", ev.count)
		}
		add(&candidate{kind: kind, in: ev.in, fn: ev.fn, origin: "trace-evidence", why: why})
	}

	for _, fn := range mod.Funcs {
		if fn.IsDecl() {
			continue
		}
		for _, b := range fn.Blocks {
			scanCoalesce(fn, b, add)
			scanSink(fn, b, add)
		}
	}
	return out
}

// scanCoalesce finds pairs of weakly-ordered flushes of the same
// provably-resolved cache line with no fence, call, or intervening
// barrier between them: the earlier flush's stores are still pending at
// the later flush (nothing can have drained without a fence), so the
// later flush covers both and the earlier one can go.
func scanCoalesce(fn *ir.Func, b *ir.Block, add func(*candidate)) {
	type lineKey struct {
		root ir.Value
		line int64
	}
	last := make(map[lineKey]*ir.Instr)
	for _, in := range b.Instrs {
		switch in.Op {
		case ir.OpFlush:
			if in.FlushK.Ordered() {
				// CLFLUSH commits immediately; deleting one changes
				// commit timing, so it never participates.
				continue
			}
			root, line, ok := static.ResolveLine(in.Args[0])
			if !ok {
				continue
			}
			k := lineKey{root, line}
			if prev := last[k]; prev != nil {
				add(&candidate{kind: EditCoalesceFlush, in: prev, fn: fn, partner: in, origin: "scan",
					why: "same cache line re-flushed in the same block with no fence or call between"})
			}
			last[k] = in
		case ir.OpFence, ir.OpCall:
			// A fence drains; a call may fence or flush. Both end every
			// open pair.
			last = make(map[lineKey]*ir.Instr)
		}
	}
}

// scanSink finds a fence whose drain can defer to a later covering
// fence: either the next fence in the same block with no store, flush,
// or call between them, or — when the fence is still open at the end of
// a block that jumps unconditionally — a fence at the head of the
// successor (the join-point shape: a branch arm fences early, the join
// fences again for the other arms). Nothing observes durability in the
// window, so the drain moves to the later fence.
func scanSink(fn *ir.Func, b *ir.Block, add func(*candidate)) {
	var open *ir.Instr
	for _, in := range b.Instrs {
		switch in.Op {
		case ir.OpFence:
			if open != nil {
				add(&candidate{kind: EditSinkFence, in: open, fn: fn, partner: in, origin: "scan",
					why: "next fence covers it: no store, flush, or call between them"})
			}
			open = in
		case ir.OpStore, ir.OpNTStore, ir.OpFlush, ir.OpCall:
			open = nil
		case ir.OpJmp:
			if open == nil || len(in.Succs) != 1 {
				break
			}
			if f2 := leadingFence(in.Succs[0]); f2 != nil && f2 != open {
				add(&candidate{kind: EditSinkFence, in: open, fn: fn, partner: f2, origin: "scan",
					why: "join-point fence covers it: no store, flush, or call on the fall-through edge"})
			}
		}
	}
}

// leadingFence returns the first fence of b when no store, flush, or
// call precedes it, else nil.
func leadingFence(b *ir.Block) *ir.Instr {
	for _, in := range b.Instrs {
		switch in.Op {
		case ir.OpFence:
			return in
		case ir.OpStore, ir.OpNTStore, ir.OpFlush, ir.OpCall:
			return nil
		}
	}
	return nil
}

// siteEvidence aggregates a flush or fence site's dynamic behaviour
// over the whole trace.
type siteEvidence struct {
	in    *ir.Instr
	fn    *ir.Func
	count int
}

// traceEvidence replays the trace through the pmem.Tracker state
// machine (per-line pending store lists; weak flushes park dirty
// stores, ordered flushes commit the line, fences drain parked stores,
// exact overwrites collapse) and returns the flush sites that never
// transitioned a store and the fence sites that never drained one —
// dynamically dead persistency operations under this workload. Only
// bare flush/fence IR instructions in defined functions qualify;
// events produced by builtins (flush_range) resolve to call sites and
// are skipped.
func traceEvidence(mod *ir.Module, tr *trace.Trace) []*siteEvidence {
	type pstore struct {
		addr    uint64
		size    int
		flushed bool
	}
	type siteKey struct {
		fn string
		id int
	}
	type stats struct {
		count int
		moved bool
	}
	lines := make(map[uint64][]pstore)
	sites := make(map[siteKey]*stats)
	record := func(e *trace.Event, moved bool) {
		k := siteKey{e.Site().Func, e.Site().InstrID}
		s := sites[k]
		if s == nil {
			s = &stats{}
			sites[k] = s
		}
		s.count++
		s.moved = s.moved || moved
	}
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.KindStore, trace.KindNTStore:
			line := pmem.LineOf(e.Addr)
			list := lines[line]
			for i := range list {
				if list[i].addr == e.Addr && list[i].size == e.Size {
					list = append(list[:i], list[i+1:]...)
					break
				}
			}
			lines[line] = append(list, pstore{e.Addr, e.Size, e.Kind == trace.KindNTStore})
		case trace.KindFlush:
			line := pmem.LineOf(e.Addr)
			moved := 0
			if e.FlushK.Ordered() {
				moved = len(lines[line])
				delete(lines, line)
			} else {
				list := lines[line]
				for i := range list {
					if !list[i].flushed {
						list[i].flushed = true
						moved++
					}
				}
			}
			record(e, moved > 0)
		case trace.KindFence:
			drained := 0
			for line, list := range lines {
				keep := list[:0]
				for _, st := range list {
					if st.flushed {
						drained++
					} else {
						keep = append(keep, st)
					}
				}
				if len(keep) == 0 {
					delete(lines, line)
				} else {
					lines[line] = keep
				}
			}
			record(e, drained > 0)
		}
	}

	var keys []siteKey
	for k, s := range sites {
		if !s.moved {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].fn != keys[j].fn {
			return keys[i].fn < keys[j].fn
		}
		return keys[i].id < keys[j].id
	})
	var out []*siteEvidence
	for _, k := range keys {
		fn := mod.Func(k.fn)
		if fn == nil || fn.IsDecl() {
			continue
		}
		in := fn.InstrByID(k.id)
		if in == nil || (in.Op != ir.OpFlush && in.Op != ir.OpFence) {
			continue
		}
		out = append(out, &siteEvidence{in: in, fn: fn, count: sites[k].count})
	}
	return out
}
