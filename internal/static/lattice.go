package static

import (
	"sort"
	"strconv"
	"strings"

	"hippocrates/internal/ir"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/trace"
)

// stateBits is the abstract persistency state of one tracked store fact,
// mirroring internal/pmem's per-store state machine. Because the analysis
// joins over CFG paths, a fact holds a SET of possible machine states; a
// bit is set when some execution reaching the program point may leave an
// instance of the store in that state. Durable is the absence of all bits:
// a fact with no bits left is dropped from the dataflow state.
type stateBits uint8

const (
	// stDirty: stored, not flushed, and no fence has executed since the
	// store. At a durability point this is the paper's missing-flush&fence.
	stDirty stateBits = 1 << iota
	// stDirtyFenced: stored, not flushed, but some fence executed after
	// the store (pmem classifies this missing-flush: a fence already
	// exists, only the flush must be inserted before it).
	stDirtyFenced
	// stFlushed: weakly flushed (CLWB/CLFLUSHOPT) or written non-temporally,
	// awaiting the fence that makes it durable (missing-fence).
	stFlushed
)

func (s stateBits) String() string {
	var parts []string
	if s&stDirty != 0 {
		parts = append(parts, "dirty")
	}
	if s&stDirtyFenced != 0 {
		parts = append(parts, "dirty-fenced")
	}
	if s&stFlushed != 0 {
		parts = append(parts, "flushed")
	}
	if len(parts) == 0 {
		return "durable"
	}
	return strings.Join(parts, "|")
}

// needs maps a state set to the mechanisms a fix must provide, matching
// pmem.Tracker.OnCheckpoint's classification of each micro-state.
func (s stateBits) needs() pmcheck.Needs {
	var n pmcheck.Needs
	if s&stDirty != 0 {
		n.Flush, n.Fence = true, true
	}
	if s&stDirtyFenced != 0 {
		n.Flush = true
	}
	if s&stFlushed != 0 {
		n.Fence = true
	}
	return n
}

// afterFence is the state set after a fence certainly executes: flushed
// instances drain to durable, dirty instances become dirty-fenced.
func (s stateBits) afterFence() stateBits {
	if s&(stDirty|stDirtyFenced) != 0 {
		return stDirtyFenced
	}
	return 0
}

// maxStackDepth caps relative call-chain length so recursive programs
// reach a summary fixpoint; frames beyond the cap are not appended (the
// outermost context is dropped, which only coarsens report deduplication).
const maxStackDepth = 16

// fact is one tracked may-PM store site, keyed by its (relative) call
// chain within the function being analyzed. Facts created in callees enter
// callers through exit facts with the call frame appended, so at the entry
// function the stack is absolute and matches the dynamic trace's shape
// (innermost frame first).
type fact struct {
	id    int
	stack []trace.Frame
	key   string

	// op is the producing instruction kind: OpStore, OpNTStore, or OpCall
	// for builtin memcpy/memset (the dynamic tracer also attributes those
	// to the call instruction).
	op   ir.Op
	size int64 // stored bytes; 0 when unknown (non-constant memcpy length)
	nt   bool

	// ptr is the address operand, used for the same-SSA-value must-flush
	// rule (valid only against flushes in the defining function).
	ptr ir.Value
	// def is the producing instruction when the fact was created in the
	// function under analysis; nil for facts adopted from callee exits,
	// where the same-block must-flush rule can never apply.
	def *ir.Instr

	// objs are the alias objects the address may point into; anyObj marks
	// an address that may point anywhere (extern or untracked), which every
	// flush must be assumed to cover.
	objs   map[int]bool
	anyObj bool

	// Resolved static line range (root allocation + cache-line interval)
	// when the address is a constant offset from a line-aligned PM root.
	lineOK         bool
	root           ir.Value
	lineLo, lineHi int64

	// flushSites collects the flush instructions that may have flushed this
	// fact — the insertion points for fence-only fixes. For non-temporal
	// stores the site is the store itself.
	flushSites map[pmcheck.SiteKey]trace.Frame
}

func (f *fact) addFlushSite(fr trace.Frame) {
	k := pmcheck.SiteKey{Func: fr.Func, InstrID: fr.InstrID}
	if _, ok := f.flushSites[k]; !ok {
		f.flushSites[k] = fr
	}
}

func (f *fact) sortedFlushSites() []trace.Frame {
	out := make([]trace.Frame, 0, len(f.flushSites))
	for _, fr := range f.flushSites {
		out = append(out, fr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Func != out[j].Func {
			return out[i].Func < out[j].Func
		}
		return out[i].InstrID < out[j].InstrID
	})
	return out
}

// factState maps live facts to their possible-state sets. Facts with zero
// bits are removed (durable).
type factState map[*fact]stateBits

func (st factState) clone() factState {
	out := make(factState, len(st))
	for f, b := range st {
		out[f] = b
	}
	return out
}

// joinInto unions src into dst and reports whether dst changed.
func joinInto(dst, src factState) bool {
	changed := false
	for f, b := range src {
		if dst[f]&b != b {
			dst[f] |= b
			changed = true
		}
	}
	return changed
}

// stackKey renders a relative call chain as an interning key, in the same
// func@id form pmcheck uses for dynamic stacks.
func stackKey(stack []trace.Frame) string {
	var b strings.Builder
	for _, f := range stack {
		b.WriteString(f.Func)
		b.WriteByte('@')
		b.WriteString(strconv.Itoa(f.InstrID))
		b.WriteByte(';')
	}
	return b.String()
}

// appendFrame extends a relative chain with the caller frame, respecting
// the recursion depth cap.
func appendFrame(stack []trace.Frame, fr trace.Frame) []trace.Frame {
	if len(stack) >= maxStackDepth {
		return stack
	}
	out := make([]trace.Frame, 0, len(stack)+1)
	out = append(out, stack...)
	return append(out, fr)
}
