package static_test

import (
	"testing"

	"hippocrates/internal/core"
	"hippocrates/internal/corpus"
	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/lang"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/progen"
	"hippocrates/internal/schedule"
	"hippocrates/internal/static"
)

// requireSuperset asserts the tentpole soundness contract: every store
// site the dynamic detector reports appears in the static reports with
// mechanism needs that cover the dynamic ones. It returns the number of
// extra (false-positive) static sites, which the caller logs as the FP
// gap.
func requireSuperset(t *testing.T, sres *static.Result, dyn *pmcheck.Result) int {
	t.Helper()
	sneeds := sres.NeedsBySite()
	for site, dn := range dyn.NeedsBySite() {
		sn, ok := sneeds[site]
		if !ok {
			t.Errorf("dynamic site %s@%d (%s) missing from static reports", site.Func, site.InstrID, dn)
			continue
		}
		if !sn.Covers(dn) {
			t.Errorf("site %s@%d: static needs %s do not cover dynamic %s", site.Func, site.InstrID, sn, dn)
		}
	}
	return sres.UniqueSites() - dyn.UniqueSites()
}

// TestCorpusAgreement runs the static analysis against every corpus
// program — the paper's buggy targets, their fixed baselines, the redis
// variants, and the nvtree/pmlog extensions — and asserts superset
// soundness site by site, logging the false-positive gap.
func TestCorpusAgreement(t *testing.T) {
	for _, p := range corpus.All() {
		t.Run(p.Name, func(t *testing.T) {
			m := p.MustCompile()
			tr, err := core.TraceModule(m, p.Entry)
			if err != nil {
				t.Fatal(err)
			}
			dyn := pmcheck.Check(tr)
			sres, err := static.Analyze(m, p.Entry)
			if err != nil {
				t.Fatal(err)
			}
			gap := requireSuperset(t, sres, dyn)
			t.Logf("static %d site(s), dynamic %d site(s), FP gap %d",
				sres.UniqueSites(), dyn.UniqueSites(), gap)
		})
	}
}

// TestCorpusStaticRepairBothClean is the repair half of the agreement
// harness: driving the fixer from static reports must leave BOTH
// detectors clean on every corpus program, and must not change the
// program's result (do no harm).
func TestCorpusStaticRepairBothClean(t *testing.T) {
	for _, p := range corpus.All() {
		t.Run(p.Name, func(t *testing.T) {
			m := p.MustCompile()
			res, err := core.StaticRepair(m, p.Entry, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.After.Clean() {
				t.Errorf("static re-analysis not clean after static-driven repair:\n%s", res.After.Summary())
			}
			tr, err := core.TraceModule(m, p.Entry)
			if err != nil {
				t.Fatalf("repaired module failed to run: %v", err)
			}
			if dyn := pmcheck.Check(tr); !dyn.Clean() {
				t.Errorf("dynamic detector not clean after static-driven repair:\n%s", dyn.Summary())
			}
			mach, err := interp.New(m, interp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ret, err := mach.Run(p.Entry)
			if err != nil {
				t.Fatal(err)
			}
			if ret != p.WantRet {
				t.Errorf("repaired %s returned %d, want %d (repair did harm)", p.Entry, ret, p.WantRet)
			}
		})
	}
}

// TestInterprocLintCallerContextGating covers the interprocedural lint
// contract: a callee's redundant-flush lint survives only when every
// caller context proves the redundancy argument (no dirty fact can be
// live across the call). The positive case confirms agreement with the
// dynamic side by deleting the linted flush and re-running both the
// workload and the dynamic detector; the negative case asserts the
// conservative suppression.
func TestInterprocLintCallerContextGating(t *testing.T) {
	const helper = `
pm int cell[16];
void persist_twice() {
	cell[0] = 7;
	clwb(&cell[0]);
	clwb(&cell[0]);
	sfence();
}
`
	compile := func(src string) *ir.Module {
		t.Helper()
		m, err := lang.Compile("t.pmc", src)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	calleeLints := func(m *ir.Module) []*static.Lint {
		t.Helper()
		res, err := static.Analyze(m, "main")
		if err != nil {
			t.Fatal(err)
		}
		var out []*static.Lint
		for _, l := range res.Lints {
			if l.Kind == static.LintRedundantFlush && l.Site.Func == "persist_twice" {
				out = append(out, l)
			}
		}
		return out
	}

	// Clean caller context: main calls the helper with nothing pending,
	// so the helper's second clwb is redundant on every call chain.
	clean := compile(helper + `
int main() {
	persist_twice();
	pm_checkpoint();
	return cell[0];
}
`)
	lints := calleeLints(clean)
	if len(lints) != 1 {
		t.Fatalf("callee redundant-flush lints under a clean context = %d, want 1", len(lints))
	}

	// Dynamic agreement: deleting the linted flush must change nothing
	// the dynamic detector or the workload can observe.
	fn := clean.Func("persist_twice")
	in := fn.InstrByID(lints[0].Site.InstrID)
	if in == nil || in.Op != ir.OpFlush {
		t.Fatalf("lint site %v does not resolve to a flush", lints[0].Site)
	}
	in.Block().RemoveInstr(in)
	tr, err := core.TraceModule(clean, "main")
	if err != nil {
		t.Fatalf("module broken after deleting the linted flush: %v", err)
	}
	if dyn := pmcheck.Check(tr); !dyn.Clean() {
		t.Errorf("dynamic detector disagrees with the lint:\n%s", dyn.Summary())
	}
	mach, err := interp.New(clean, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ret, err := mach.Run("main"); err != nil || ret != 7 {
		t.Errorf("workload after deletion: ret=%d err=%v, want 7", ret, err)
	}

	// Dirty caller context: main has an unflushed store live across the
	// call, so the helper's flushes may cover it and the local
	// redundancy argument no longer holds — the lint must be dropped.
	dirty := compile(helper + `
int main() {
	cell[1] = 1;
	persist_twice();
	pm_checkpoint();
	return cell[0];
}
`)
	if lints := calleeLints(dirty); len(lints) != 0 {
		t.Errorf("callee redundant-flush lints under a dirty context = %d, want 0 (suppressed)", len(lints))
	}
}

// progenSeeds is the number of random programs the generator-based
// agreement sweep covers.
const progenSeeds = 250

// TestProgenAgreement sweeps generated programs: static must stay a
// superset of dynamic on each, and the static-driven repair must leave
// both detectors clean without changing the program's checksum.
func TestProgenAgreement(t *testing.T) {
	totalGap, maxGap := 0, 0
	for seed := int64(0); seed < progenSeeds; seed++ {
		m := progen.Generate(seed, progen.DefaultConfig())
		tr, err := core.TraceModule(m, "main")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dyn := pmcheck.Check(tr)
		sres, err := static.Analyze(m, "main")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sneeds := sres.NeedsBySite()
		for site, dn := range dyn.NeedsBySite() {
			sn, ok := sneeds[site]
			if !ok {
				t.Errorf("seed %d: dynamic site %s@%d (%s) missing from static reports", seed, site.Func, site.InstrID, dn)
				continue
			}
			if !sn.Covers(dn) {
				t.Errorf("seed %d: site %s@%d: static needs %s do not cover dynamic %s", seed, site.Func, site.InstrID, sn, dn)
			}
		}
		gap := sres.UniqueSites() - dyn.UniqueSites()
		totalGap += gap
		if gap > maxGap {
			maxGap = gap
		}

		// Do-no-harm on the static-driven repair: same checksum, both
		// detectors clean.
		mach, err := interp.New(m, interp.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := mach.Run("main")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := core.StaticRepair(m, "main", core.Options{})
		if err != nil {
			t.Fatalf("seed %d: static repair: %v", seed, err)
		}
		if !res.After.Clean() {
			t.Errorf("seed %d: static re-analysis not clean:\n%s", seed, res.After.Summary())
		}
		rtr, err := core.TraceModule(m, "main")
		if err != nil {
			t.Fatalf("seed %d: repaired module failed to run: %v", seed, err)
		}
		if rdyn := pmcheck.Check(rtr); !rdyn.Clean() {
			t.Errorf("seed %d: dynamic detector not clean after static repair:\n%s", seed, rdyn.Summary())
		}
		mach2, err := interp.New(m, interp.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := mach2.Run("main")
		if err != nil {
			t.Fatalf("seed %d: repaired run: %v", seed, err)
		}
		if got != want {
			t.Errorf("seed %d: checksum changed %d -> %d (repair did harm)", seed, want, got)
		}
		if err := ir.Verify(m); err != nil {
			t.Errorf("seed %d: repaired module fails verification: %v", seed, err)
		}
	}
	t.Logf("%d seeds: total FP gap %d site(s), max per-program %d", progenSeeds, totalGap, maxGap)
}

// threadedSeeds is the number of generated concurrent programs in the
// threaded agreement sweep.
const threadedSeeds = 100

// TestProgenThreadedAgreement sweeps generated multi-threaded programs:
// the static spawn fallback deliberately over-approximates, but at every
// store site the dynamic detector reports under ANY explored interleaving
// the static needs must still cover the dynamic ones. The dynamic side is
// the union over a bounded schedule exploration, so the superset claim is
// against schedule-dependent verdicts, not just the round-robin run.
func TestProgenThreadedAgreement(t *testing.T) {
	totalGap, maxGap := 0, 0
	for seed := int64(0); seed < threadedSeeds; seed++ {
		m := progen.Generate(seed, progen.ThreadedConfig(seed))
		ex, err := schedule.Explore(m, "main", nil, schedule.Options{MaxSchedules: 8})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dynSites := map[pmcheck.SiteKey]pmcheck.Needs{}
		for _, r := range ex.Runs {
			if r.Err != nil {
				t.Fatalf("seed %d: schedule %s faulted: %v", seed, r.ID, r.Err)
			}
			for site, dn := range r.Check.NeedsBySite() {
				n := dynSites[site]
				n.Flush = n.Flush || dn.Flush
				n.Fence = n.Fence || dn.Fence
				dynSites[site] = n
			}
		}
		sres, err := static.Analyze(m, "main")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sneeds := sres.NeedsBySite()
		for site, dn := range dynSites {
			sn, ok := sneeds[site]
			if !ok {
				t.Errorf("seed %d: dynamic site %s@%d (%s) missing from static reports", seed, site.Func, site.InstrID, dn)
				continue
			}
			if !sn.Covers(dn) {
				t.Errorf("seed %d: site %s@%d: static needs %s do not cover dynamic %s", seed, site.Func, site.InstrID, sn, dn)
			}
		}
		if len(sres.Lints) != 0 {
			t.Errorf("seed %d: %d lint(s) in a spawn module, want none", seed, len(sres.Lints))
		}
		gap := sres.UniqueSites() - len(dynSites)
		totalGap += gap
		if gap > maxGap {
			maxGap = gap
		}
	}
	t.Logf("%d threaded seeds: total FP gap %d site(s), max per-program %d", threadedSeeds, totalGap, maxGap)
}
