// The summary store: canonical, module-independent snapshots of function
// summaries, keyed by content hash. A summary is canonicalized eagerly at
// put time (deep conversion into portable structs, never sharing mutable
// maps with the live analysis), and instantiated back into fresh live
// structs on every hit — so cached state can never leak mutations between
// runs, and concurrent jobs can replay the same entry safely.
//
// Portability rests on three canonical namings:
//   - call chains and sites are trace.Frames (function name + instruction
//     ID + source location), already module-independent;
//   - alias objects are named by alias.(*Analysis).ObjectRef — globals by
//     name, allocation sites by (function, instruction ID) — and resolved
//     back per run with ObjectIDByRef;
//   - IR values (a fact's resolved line root) are named by pVal: a global
//     by name or an instruction by (function, ID).
//
// Any name that fails to resolve against the current module turns the hit
// into a miss; with keys derived from body fingerprints this cannot
// happen, but the failure mode is a recompute, never a wrong answer.
package static

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"sync"

	"hippocrates/internal/alias"
	"hippocrates/internal/ir"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/trace"
)

// SummaryStore caches canonicalized function summaries across analysis
// runs. Keys chain the function's body fingerprint, its alias-slice
// digest, and every direct callee's summary hash (see analyzer.keyOf).
// Implementations must be safe for concurrent use; stored summaries are
// immutable.
type SummaryStore interface {
	GetSummary(key string) (*FuncSummary, bool)
	PutSummary(key string, ps *FuncSummary)
}

// pVal names an ir.Value across modules: a global by name, an instruction
// by (function, ID). The zero pVal names nil.
type pVal struct {
	Global string
	Func   string
	ID     int
}

// PFlushEffect is the portable flushEffect.
type PFlushEffect struct {
	Objs []string // canonical object refs, sorted
	All  bool
	Site trace.Frame
	// objsKey joins Objs for the analyzer's resolved-set intern cache,
	// precomputed so warm instantiation allocates nothing per lookup.
	objsKey string
}

// PFact is the portable form of one exit fact plus its state bits. The
// live fact's ptr/def fields are dropped: both are only consulted for
// facts created in the function under analysis, never for facts adopted
// through a call, and instantiated summaries are only ever read through
// calls.
type PFact struct {
	Stack          []trace.Frame
	Op             ir.Op
	Size           int64
	NT             bool
	Objs           []string // canonical object refs, sorted
	AnyObj         bool
	LineOK         bool
	Root           pVal
	LineLo, LineHi int64
	FlushSites     []trace.Frame // sorted by (func, instr)
	Bits           stateBits
	// key is Stack's stackKey and objsKey joins Objs for the resolved-set
	// intern cache, both precomputed at canonicalize time so warm
	// instantiation does not rebuild them. Derived, excluded from the hash.
	key     string
	objsKey string
}

// PReport is the portable report.
type PReport struct {
	Stack      []trace.Frame
	Op         ir.Op
	Size       int64
	NT         bool
	NeedFlush  bool
	NeedFence  bool
	Ckpts      [][]trace.Frame // sorted by stackKey
	FlushSites []trace.Frame   // sorted by (func, instr)
	// key and ckptKeys precompute Stack's and each Ckpts chain's stackKey.
	key      string
	ckptKeys []string
}

// PLint is the portable lint, including the caller-context conditions the
// top-down pass filters on.
type PLint struct {
	Kind             LintKind
	Site             trace.Frame
	Block            string
	NeedNoDirtyCtx   bool
	NeedNoFlushedCtx bool
}

// PCallCtx is the portable per-callee caller context.
type PCallCtx struct {
	Callee  string
	Dirty   bool
	Flushed bool
}

// FuncSummary is the canonical, immutable snapshot of one function
// summary. Hash is the content hash of the whole encoding — callers chain
// it into their own cache keys.
type FuncSummary struct {
	Fn        string
	FenceMay  bool
	FenceMust bool
	Flushes   []PFlushEffect  // in emit order (deterministic)
	Ckpts     [][]trace.Frame // sorted by stackKey
	Exit      []PFact         // sorted by stack key
	Reports   []PReport       // sorted by stack key
	Lints     []PLint         // in emit order (deterministic)
	Calls     []PCallCtx      // sorted by callee name
	Hash      string
	// ckptKeys precomputes each Ckpts chain's stackKey (same order).
	ckptKeys []string
}

// refsOf renders an object-ID set in canonical sorted form.
func refsOf(an *alias.Analysis, objs map[int]bool) []string {
	if len(objs) == 0 {
		return nil
	}
	out := make([]string, 0, len(objs))
	for id := range objs {
		out = append(out, an.ObjectRef(id))
	}
	sort.Strings(out)
	return out
}

// objsKeyOf joins a sorted canonical ref list into the intern-cache key
// used by objsFromRefs; canonicalize precomputes it per snapshot entry.
func objsKeyOf(refs []string) string {
	n := 0
	for _, r := range refs {
		n += len(r) + 1
	}
	kb := make([]byte, 0, n)
	for _, r := range refs {
		kb = append(kb, r...)
		kb = append(kb, 0x1f)
	}
	return string(kb)
}

// objsFromRefs resolves a canonical sorted ref list to this run's object
// IDs. Resolved sets are interned on the analyzer under the precomputed
// key (refs lists are sorted, so equal sets have equal keys); callers
// treat the returned map as read-only, which every fact and flush effect
// already does.
func objsFromRefs(az *analyzer, refs []string, key string) (map[int]bool, bool) {
	if len(refs) == 0 {
		return map[int]bool{}, true
	}
	if m, ok := az.objsCache[key]; ok {
		return m, true
	}
	m := make(map[int]bool, len(refs))
	for _, r := range refs {
		id, ok := az.an.ObjectIDByRef(r)
		if !ok {
			return nil, false
		}
		m[id] = true
	}
	if az.objsCache == nil {
		az.objsCache = make(map[string]map[int]bool)
	}
	az.objsCache[key] = m
	return m, true
}

func pvalOf(v ir.Value) (pVal, bool) {
	switch x := v.(type) {
	case nil:
		return pVal{}, true
	case *ir.Global:
		return pVal{Global: x.Name}, true
	case *ir.Instr:
		return pVal{Func: x.Block().Func().Name, ID: x.ID}, true
	}
	return pVal{}, false
}

func resolveVal(az *analyzer, p pVal) (ir.Value, bool) {
	switch {
	case p.Global != "":
		if g := az.mod.Global(p.Global); g != nil {
			return g, true
		}
		return nil, false
	case p.Func != "":
		fn := az.mod.Func(p.Func)
		if fn == nil || fn.IsDecl() {
			return nil, false
		}
		if in := az.instrByID(fn, p.ID); in != nil {
			return in, true
		}
		return nil, false
	}
	return nil, true
}

// instrByID is InstrByID behind a per-function dense index, built once
// per run: warm instantiation resolves one fact root per exit fact and a
// linear scan each dominated it.
func (az *analyzer) instrByID(fn *ir.Func, id int) *ir.Instr {
	idx, ok := az.instrIdx[fn]
	if !ok {
		maxID := -1
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.ID > maxID {
					maxID = in.ID
				}
			}
		}
		idx = make([]*ir.Instr, maxID+1)
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.ID >= 0 {
					idx[in.ID] = in
				}
			}
		}
		if az.instrIdx == nil {
			az.instrIdx = make(map[*ir.Func][]*ir.Instr)
		}
		az.instrIdx[fn] = idx
	}
	if id < 0 || id >= len(idx) {
		return nil
	}
	return idx[id]
}

func sortFrames(frames []trace.Frame) {
	sort.Slice(frames, func(i, j int) bool {
		if frames[i].Func != frames[j].Func {
			return frames[i].Func < frames[j].Func
		}
		return frames[i].InstrID < frames[j].InstrID
	})
}

func siteList(m map[pmcheck.SiteKey]trace.Frame) []trace.Frame {
	out := make([]trace.Frame, 0, len(m))
	for _, fr := range m {
		out = append(out, fr)
	}
	sortFrames(out)
	return out
}

func siteMap(frames []trace.Frame) map[pmcheck.SiteKey]trace.Frame {
	m := make(map[pmcheck.SiteKey]trace.Frame, len(frames))
	for _, fr := range frames {
		m[pmcheck.SiteKey{Func: fr.Func, InstrID: fr.InstrID}] = fr
	}
	return m
}

func chainList(m map[string][]trace.Frame) ([][]trace.Frame, []string) {
	if len(m) == 0 {
		return nil, nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]trace.Frame, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out, keys
}

// canonicalize deep-converts a finished live summary into its portable
// snapshot and computes the content hash. Map-shaped fields are sorted so
// the encoding (and so the hash) is deterministic. Returns nil when some
// value cannot be named canonically; callers then fall back to a
// per-run-unique hash, disabling caching above this function.
func canonicalize(s *summary, az *analyzer) *FuncSummary {
	ps := &FuncSummary{
		Fn:        s.fn.Name,
		FenceMay:  s.fenceMay,
		FenceMust: s.fenceMust,
	}
	for _, fe := range s.flushes {
		refs := refsOf(az.an, fe.objs)
		ps.Flushes = append(ps.Flushes, PFlushEffect{
			Objs:    refs,
			All:     fe.all,
			Site:    fe.site,
			objsKey: objsKeyOf(refs),
		})
	}
	ps.Ckpts, ps.ckptKeys = chainList(s.ckpts)

	exitKeys := make([]string, 0, len(s.exit))
	byKey := make(map[string]*fact, len(s.exit))
	for f := range s.exit {
		exitKeys = append(exitKeys, f.key)
		byKey[f.key] = f
	}
	sort.Strings(exitKeys)
	for _, k := range exitKeys {
		f := byKey[k]
		root, ok := pvalOf(f.root)
		if !ok {
			return nil
		}
		refs := refsOf(az.an, f.objs)
		ps.Exit = append(ps.Exit, PFact{
			Stack:      f.stack,
			Op:         f.op,
			Size:       f.size,
			NT:         f.nt,
			Objs:       refs,
			AnyObj:     f.anyObj,
			LineOK:     f.lineOK,
			Root:       root,
			LineLo:     f.lineLo,
			LineHi:     f.lineHi,
			FlushSites: siteList(f.flushSites),
			Bits:       s.exit[f],
			key:        k,
			objsKey:    objsKeyOf(refs),
		})
	}

	repKeys := make([]string, 0, len(s.reports))
	for k := range s.reports {
		repKeys = append(repKeys, k)
	}
	sort.Strings(repKeys)
	for _, k := range repKeys {
		r := s.reports[k]
		chains, chainKeys := chainList(r.ckpts)
		ps.Reports = append(ps.Reports, PReport{
			Stack:      r.stack,
			Op:         r.op,
			Size:       r.size,
			NT:         r.nt,
			NeedFlush:  r.needFlush,
			NeedFence:  r.needFence,
			Ckpts:      chains,
			FlushSites: siteList(r.flushSites),
			key:        k,
			ckptKeys:   chainKeys,
		})
	}

	for _, l := range s.lints {
		ps.Lints = append(ps.Lints, PLint{
			Kind:             l.Kind,
			Site:             l.Site,
			Block:            l.Block,
			NeedNoDirtyCtx:   l.needNoDirtyCtx,
			NeedNoFlushedCtx: l.needNoFlushedCtx,
		})
	}

	callNames := make([]string, 0, len(s.calls))
	ctxByName := make(map[string]callCtx, len(s.calls))
	for callee, c := range s.calls {
		callNames = append(callNames, callee.Name)
		ctxByName[callee.Name] = c
	}
	sort.Strings(callNames)
	for _, n := range callNames {
		c := ctxByName[n]
		ps.Calls = append(ps.Calls, PCallCtx{Callee: n, Dirty: c.dirty, Flushed: c.flushed})
	}

	ps.Hash = ps.contentHash()
	return ps
}

// instantiate rebuilds a live summary from a snapshot, resolving every
// canonical name against the current module and alias analysis. All
// returned structs (facts, reports, lints, maps) are freshly allocated;
// frame slices are shared read-only with the snapshot (nothing in the
// analysis mutates a chain in place — extension always copies). Returns
// nil when any name fails to resolve.
func instantiate(ps *FuncSummary, fn *ir.Func, az *analyzer) *summary {
	s := newSummary(fn)
	s.fenceMay = ps.FenceMay
	s.fenceMust = ps.FenceMust
	s.flushes = make([]flushEffect, 0, len(ps.Flushes))
	for i := range ps.Flushes {
		pfe := &ps.Flushes[i]
		objs, ok := objsFromRefs(az, pfe.Objs, pfe.objsKey)
		if !ok {
			return nil
		}
		s.flushes = append(s.flushes, flushEffect{objs: objs, all: pfe.All, site: pfe.Site})
	}
	for i, chain := range ps.Ckpts {
		s.ckpts[ps.ckptKeys[i]] = chain
	}
	facts := make([]fact, len(ps.Exit))
	for i := range ps.Exit {
		pf := &ps.Exit[i]
		objs, ok := objsFromRefs(az, pf.Objs, pf.objsKey)
		if !ok {
			return nil
		}
		root, ok := resolveVal(az, pf.Root)
		if !ok {
			return nil
		}
		facts[i] = fact{
			id:         i,
			stack:      pf.Stack,
			key:        pf.key,
			op:         pf.Op,
			size:       pf.Size,
			nt:         pf.NT,
			objs:       objs,
			anyObj:     pf.AnyObj,
			lineOK:     pf.LineOK,
			root:       root,
			lineLo:     pf.LineLo,
			lineHi:     pf.LineHi,
			flushSites: siteMap(pf.FlushSites),
		}
		s.exit[&facts[i]] = pf.Bits
	}
	for i := range ps.Reports {
		pr := &ps.Reports[i]
		r := &report{
			stack:      pr.Stack,
			op:         pr.Op,
			size:       pr.Size,
			nt:         pr.NT,
			needFlush:  pr.NeedFlush,
			needFence:  pr.NeedFence,
			ckpts:      make(map[string][]trace.Frame, len(pr.Ckpts)),
			flushSites: siteMap(pr.FlushSites),
		}
		for j, chain := range pr.Ckpts {
			r.ckpts[pr.ckptKeys[j]] = chain
		}
		s.reports[pr.key] = r
	}
	for i := range ps.Lints {
		pl := &ps.Lints[i]
		s.lints = append(s.lints, &Lint{
			Kind: pl.Kind, Site: pl.Site, Block: pl.Block,
			needNoDirtyCtx: pl.NeedNoDirtyCtx, needNoFlushedCtx: pl.NeedNoFlushedCtx,
		})
	}
	for _, pc := range ps.Calls {
		callee := az.mod.Func(pc.Callee)
		if callee == nil || callee.IsDecl() {
			return nil
		}
		s.calls[callee] = callCtx{dirty: pc.Dirty, flushed: pc.Flushed}
	}
	return s
}

// sumEncoder accumulates the canonical byte encoding for hashing; every
// field is length- or tag-delimited.
type sumEncoder struct {
	buf []byte
}

func (e *sumEncoder) str(s string) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *sumEncoder) u64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *sumEncoder) i64(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *sumEncoder) boolean(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

func (e *sumEncoder) frame(fr trace.Frame) {
	e.str(fr.Func)
	e.u64(uint64(fr.InstrID))
	e.str(fr.Loc.File)
	e.u64(uint64(fr.Loc.Line))
}

func (e *sumEncoder) frames(frs []trace.Frame) {
	e.u64(uint64(len(frs)))
	for _, fr := range frs {
		e.frame(fr)
	}
}

func (e *sumEncoder) strs(ss []string) {
	e.u64(uint64(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

// contentHash hashes the full canonical encoding. Slice orders are either
// sorted at canonicalize time or deterministic emit orders, so equal
// summaries always encode — and hash — identically.
func (ps *FuncSummary) contentHash() string {
	e := &sumEncoder{buf: make([]byte, 0, 1024)}
	e.str(ps.Fn)
	e.boolean(ps.FenceMay)
	e.boolean(ps.FenceMust)
	e.u64(uint64(len(ps.Flushes)))
	for i := range ps.Flushes {
		fe := &ps.Flushes[i]
		e.strs(fe.Objs)
		e.boolean(fe.All)
		e.frame(fe.Site)
	}
	e.u64(uint64(len(ps.Ckpts)))
	for _, chain := range ps.Ckpts {
		e.frames(chain)
	}
	e.u64(uint64(len(ps.Exit)))
	for i := range ps.Exit {
		pf := &ps.Exit[i]
		e.frames(pf.Stack)
		e.u64(uint64(pf.Op))
		e.i64(pf.Size)
		e.boolean(pf.NT)
		e.strs(pf.Objs)
		e.boolean(pf.AnyObj)
		e.boolean(pf.LineOK)
		e.str(pf.Root.Global)
		e.str(pf.Root.Func)
		e.u64(uint64(pf.Root.ID))
		e.i64(pf.LineLo)
		e.i64(pf.LineHi)
		e.frames(pf.FlushSites)
		e.u64(uint64(pf.Bits))
	}
	e.u64(uint64(len(ps.Reports)))
	for i := range ps.Reports {
		pr := &ps.Reports[i]
		e.frames(pr.Stack)
		e.u64(uint64(pr.Op))
		e.i64(pr.Size)
		e.boolean(pr.NT)
		e.boolean(pr.NeedFlush)
		e.boolean(pr.NeedFence)
		e.u64(uint64(len(pr.Ckpts)))
		for _, chain := range pr.Ckpts {
			e.frames(chain)
		}
		e.frames(pr.FlushSites)
	}
	e.u64(uint64(len(ps.Lints)))
	for i := range ps.Lints {
		pl := &ps.Lints[i]
		e.u64(uint64(pl.Kind))
		e.frame(pl.Site)
		e.str(pl.Block)
		e.boolean(pl.NeedNoDirtyCtx)
		e.boolean(pl.NeedNoFlushedCtx)
	}
	e.u64(uint64(len(ps.Calls)))
	for _, pc := range ps.Calls {
		e.str(pc.Callee)
		e.boolean(pc.Dirty)
		e.boolean(pc.Flushed)
	}
	sum := sha256.Sum256(e.buf)
	return hex.EncodeToString(sum[:])
}

// Store is the bounded, concurrency-safe summary store a daemon shares
// across jobs, bundling the alias constraint store so one handle caches
// both layers. Eviction is FIFO: keys are content hashes, so recency
// matters less than bounding memory.
type Store struct {
	mu     sync.Mutex
	max    int
	m      map[string]*FuncSummary
	order  []string
	hits   int64
	misses int64

	cons *alias.Store
}

// NewStore returns a Store bounded to max summaries (<=0 selects 8192);
// the embedded alias constraint store gets the same bound.
func NewStore(max int) *Store {
	if max <= 0 {
		max = 8192
	}
	return &Store{max: max, m: make(map[string]*FuncSummary), cons: alias.NewStore(max)}
}

// Alias returns the embedded alias constraint store.
func (s *Store) Alias() *alias.Store { return s.cons }

// GetSummary implements SummaryStore.
func (s *Store) GetSummary(key string) (*FuncSummary, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps, ok := s.m[key]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return ps, ok
}

// PutSummary implements SummaryStore.
func (s *Store) PutSummary(key string, ps *FuncSummary) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; ok {
		return
	}
	s.m[key] = ps
	s.order = append(s.order, key)
	for len(s.order) > s.max {
		delete(s.m, s.order[0])
		s.order = s.order[1:]
	}
}

// StoreStats is a point-in-time snapshot of both cache layers.
type StoreStats struct {
	SummaryHits, SummaryMisses int64
	ConsHits, ConsMisses       int64
	Summaries, Constraints     int
}

// Stats snapshots the cumulative counters and sizes.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	hits, misses, n := s.hits, s.misses, len(s.m)
	s.mu.Unlock()
	ch, cm := s.cons.Stats()
	return StoreStats{
		SummaryHits: hits, SummaryMisses: misses,
		ConsHits: ch, ConsMisses: cm,
		Summaries: n, Constraints: s.cons.Len(),
	}
}

// IncrStats reports one analysis run's store traffic: how many function
// summaries and constraint lists were replayed versus recomputed.
type IncrStats struct {
	SumHits, SumMisses   int
	ConsHits, ConsMisses int
}

// HitRatio returns the summary-level hit ratio in [0,1].
func (st IncrStats) HitRatio() float64 {
	if st.SumHits+st.SumMisses == 0 {
		return 0
	}
	return float64(st.SumHits) / float64(st.SumHits+st.SumMisses)
}
