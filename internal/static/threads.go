package static

import (
	"hippocrates/internal/ir"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/trace"
)

// Spawn-aware soundness rule. The sequential dataflow is unsound the
// moment a module spawns a thread: another thread's fence never drains
// this thread's flushes, a flush another thread observes as covering can
// race the store it covers, and an interleaving the explorer picks can
// leave any store pending at a durability point another thread reaches.
// Rather than model interleavings statically, the analysis falls back to
// the trivially sound over-approximation the agreement contract permits:
// every may-PM store site reachable from the entry (through calls and
// spawns) is reported needing both flush and fence. The dynamic detector
// refines this per schedule; the static side only promises a per-site
// superset.
//
// Lints are dropped entirely in spawn modules for the same reason: a
// "redundant" flush or fence may be load-bearing under an interleaving
// the sequential flow never considers, and the optimizer consumes lints
// to delete instructions.

// spawnReachable reports whether any function the analysis summarized
// contains a spawn.
func (az *analyzer) spawnReachable() bool {
	for fn := range az.sums {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpSpawn {
					return true
				}
			}
		}
	}
	return false
}

// threadBlanketReports builds the over-approximating report set for a
// spawn module: one missing-flush&fence report per may-PM store site
// reachable from the entry, each carrying one representative call chain.
// Sites already reported with both needs by the sequential flow are
// skipped — the flow's report has the richer checkpoint provenance.
func (az *analyzer) threadBlanketReports(have map[pmcheck.SiteKey]pmcheck.Needs) []*Report {
	// One representative chain (entry-rooted, innermost first) per
	// function, following call and spawn edges breadth-first so the chain
	// is a shortest one.
	chains := map[*ir.Func][]trace.Frame{az.entry: nil}
	work := []*ir.Func{az.entry}
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if (in.Op != ir.OpCall && in.Op != ir.OpSpawn) || in.Callee == nil || in.Callee.IsDecl() {
					continue
				}
				if _, seen := chains[in.Callee]; seen {
					continue
				}
				site := trace.Frame{Func: fn.Name, InstrID: in.ID, Loc: in.Loc}
				chains[in.Callee] = append([]trace.Frame{site}, chains[fn]...)
				work = append(work, in.Callee)
			}
		}
	}

	var out []*Report
	for fn, chain := range chains {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				var (
					ptr  ir.Value
					size int64
					nt   bool
				)
				switch in.Op {
				case ir.OpStore, ir.OpNTStore:
					ptr, size, nt = in.StorePtr(), in.StoreTy.Size(), in.Op == ir.OpNTStore
				case ir.OpAtomicStore, ir.OpAtomicRMW, ir.OpAtomicCAS:
					ptr, size = in.Args[len(in.Args)-1], 8
				case ir.OpCall:
					if n := in.Callee.Name; n != "memcpy" && n != "memset" {
						continue
					}
					ptr = in.Args[0]
					if c, ok := in.Args[2].(*ir.Const); ok {
						size = c.Val
					}
				default:
					continue
				}
				if !az.mayPM(ptr) {
					continue
				}
				key := pmcheck.SiteKey{Func: fn.Name, InstrID: in.ID}
				if n := have[key]; n.Flush && n.Fence {
					continue
				}
				stack := append([]trace.Frame{{Func: fn.Name, InstrID: in.ID, Loc: in.Loc}}, chain...)
				out = append(out, &Report{
					Func:      fn.Name,
					InstrID:   in.ID,
					Loc:       in.Loc,
					Op:        in.Op,
					Size:      size,
					NT:        nt,
					NeedFlush: true,
					NeedFence: true,
					Stack:     stack,
				})
			}
		}
	}
	return out
}
