package static

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"

	"hippocrates/internal/alias"
	"hippocrates/internal/ir"
	"hippocrates/internal/pmem"
)

// analyzer drives the whole-module analysis: alias facts, fence flags, and
// bottom-up summaries in reverse-topological SCC order.
type analyzer struct {
	mod   *ir.Module
	an    *alias.Analysis
	entry *ir.Func

	// store, when non-nil, caches canonicalized function summaries across
	// runs; sumHash holds each function's summary content hash for this
	// run (cache keys of callers chain it in, which is what makes
	// invalidation transitive without any explicit tracking).
	store     SummaryStore
	sumHash   map[*ir.Func]string
	sumHits   int
	sumMisses int
	nonce     int
	// objsCache interns resolved object-ID sets by their canonical refs
	// key. Facts never mutate their objs maps after creation, and one
	// points-to set recurs across most facts of a function, so warm runs
	// share one map per distinct set instead of allocating thousands.
	objsCache map[string]map[int]bool
	// instrIdx is instrByID's per-function dense ID index.
	instrIdx map[*ir.Func][]*ir.Instr

	sums      map[*ir.Func]*summary
	fenceMay  map[*ir.Func]bool
	fenceMust map[*ir.Func]bool

	escapeCache map[*ir.Instr]bool
}

// sccIterCap bounds fixpoint rounds inside one recursive SCC; summaries
// grow monotonically over a finite lattice, so this is a safety valve, not
// a precision knob.
const sccIterCap = 32

func (az *analyzer) summaryOf(fn *ir.Func) *summary {
	if s := az.sums[fn]; s != nil {
		return s
	}
	// Not yet computed (first round of a recursive SCC): the empty summary
	// is the bottom of the ascending chain.
	return newSummary(fn)
}

// run computes summaries for every function reachable from the entry, in
// reverse-topological SCC order. Non-recursive functions take the
// single-pass path (with optional summary-store lookup); recursive SCCs
// keep the iterative fixpoint and bypass the cache — their summaries
// depend on their own ascending chain, not just on body + callee hashes.
func (az *analyzer) run() {
	nodes, succs := callGraph(az.entry)
	for _, scc := range sccOrder(nodes, succs) {
		if len(scc) == 1 && !callsSelf(scc[0], succs) {
			az.runSingle(scc[0], succs)
			continue
		}
		az.fenceFlags(scc)
		az.summaries(scc)
		for _, fn := range scc {
			az.finishHash(fn)
		}
	}
}

func callsSelf(fn *ir.Func, succs map[*ir.Func][]*ir.Func) bool {
	for _, c := range succs[fn] {
		if c == fn {
			return true
		}
	}
	return false
}

// keyOf builds fn's summary cache key: the body fingerprint, the digest of
// fn's slice of the solved points-to relation (summaries are not pure
// functions of the body — parameter points-to sets flow in from callers),
// and each direct callee's summary content hash. Callees are keyed by
// hash, not fingerprint, so a callee edit that leaves its summary
// byte-identical stops invalidation right there.
func (az *analyzer) keyOf(fn *ir.Func, succs map[*ir.Func][]*ir.Func) string {
	h := sha256.New()
	h.Write([]byte(az.an.Fingerprint(fn)))
	h.Write([]byte{'|'})
	h.Write([]byte(az.an.FuncDigest(fn)))
	for _, c := range succs[fn] {
		h.Write([]byte{'|'})
		h.Write([]byte(c.Name))
		h.Write([]byte{'='})
		h.Write([]byte(az.sumHash[c]))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// runSingle analyzes one non-recursive function. With callee flags and
// summaries final, one funcAnalysis pass is the fixpoint, and the summary
// is a deterministic function of the cache key — so a store hit replays
// it without touching the body.
func (az *analyzer) runSingle(fn *ir.Func, succs map[*ir.Func][]*ir.Func) {
	var key string
	if az.store != nil {
		key = az.keyOf(fn, succs)
		if ps, ok := az.store.GetSummary(key); ok {
			if s := instantiate(ps, fn, az); s != nil {
				az.sumHits++
				az.sums[fn] = s
				az.fenceMay[fn] = ps.FenceMay
				az.fenceMust[fn] = ps.FenceMust
				az.sumHash[fn] = ps.Hash
				return
			}
		}
		az.sumMisses++
	}
	az.fenceMay[fn] = az.scanFenceMay(fn)
	az.fenceMust[fn] = az.fenceMustOf(fn)
	fa := newFuncAnalysis(az, fn)
	fa.run()
	az.sums[fn] = fa.sum
	if ps := canonicalize(fa.sum, az); ps != nil {
		az.sumHash[fn] = ps.Hash
		if az.store != nil {
			az.store.PutSummary(key, ps)
		}
	} else {
		az.sumHash[fn] = az.freshHash(fn)
	}
}

// finishHash assigns a recursive function's summary hash after its SCC
// fixpoint, so non-recursive callers above it can still cache. The
// summary itself is not stored.
func (az *analyzer) finishHash(fn *ir.Func) {
	if ps := canonicalize(az.sums[fn], az); ps != nil {
		az.sumHash[fn] = ps.Hash
		return
	}
	az.sumHash[fn] = az.freshHash(fn)
}

// freshHash is a per-run-unique stand-in for a summary that could not be
// canonicalized: every caller keyed on it misses, which is always sound.
func (az *analyzer) freshHash(fn *ir.Func) string {
	az.nonce++
	return "!" + fn.Name + "#" + strconv.Itoa(az.nonce)
}

// fenceFlags solves the may/must-fence booleans for one SCC. Must starts
// false (pessimistic: a fence we cannot prove does not remove states) and
// only rises, so the loop terminates at the least fixpoint.
func (az *analyzer) fenceFlags(scc []*ir.Func) {
	for iter := 0; iter < sccIterCap; iter++ {
		changed := false
		for _, fn := range scc {
			may := az.scanFenceMay(fn)
			must := az.fenceMustOf(fn)
			if may != az.fenceMay[fn] || must != az.fenceMust[fn] {
				changed = true
			}
			az.fenceMay[fn] = may
			az.fenceMust[fn] = must
		}
		if !changed {
			return
		}
	}
}

func (az *analyzer) scanFenceMay(fn *ir.Func) bool {
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpFence:
				return true
			case ir.OpCall:
				if !in.Callee.IsDecl() && az.fenceMay[in.Callee] {
					return true
				}
			}
		}
	}
	return false
}

// fenceMustOf runs a forward must-dataflow: does every path from entry to
// a return pass a fence (or a call whose callee must fence)? A call to
// abort_msg kills its path (the interpreter halts there), making the rest
// vacuously fenced.
func (az *analyzer) fenceMustOf(fn *ir.Func) bool {
	reach := reachableBlocks(fn)
	in := make(map[*ir.Block]bool, len(reach))
	for _, b := range reach {
		in[b] = true // top of the must-lattice
	}
	entry := fn.Entry()
	in[entry] = false

	out := func(b *ir.Block) bool {
		v := in[b]
		for _, i := range b.Instrs {
			switch i.Op {
			case ir.OpFence:
				v = true
			case ir.OpCall:
				c := i.Callee
				if c.IsDecl() {
					if c.Name == "abort_msg" {
						v = true
					}
				} else if az.fenceMust[c] {
					v = true
				}
			}
		}
		return v
	}

	work := []*ir.Block{entry}
	queued := map[*ir.Block]bool{entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		v := out(b)
		for _, s := range b.Terminator().Succs {
			if in[s] && !v {
				in[s] = false
				if !queued[s] {
					queued[s] = true
					work = append(work, s)
				}
			}
		}
	}

	must := true
	sawRet := false
	for _, b := range reach {
		if b.Terminator().Op == ir.OpRet {
			sawRet = true
			must = must && out(b)
		}
	}
	if !sawRet {
		return true // never returns: vacuously fenced at (nonexistent) exit
	}
	return must
}

// summaries iterates full summaries for one SCC to a fixpoint. With fence
// flags frozen, every summary component (flush effects, checkpoint chains,
// exit facts, reports) grows monotonically, so signatures converge.
func (az *analyzer) summaries(scc []*ir.Func) {
	for iter := 0; iter < sccIterCap; iter++ {
		changed := false
		for _, fn := range scc {
			fa := newFuncAnalysis(az, fn)
			fa.run()
			old := ""
			if prev := az.sums[fn]; prev != nil {
				old = prev.signature()
			}
			az.sums[fn] = fa.sum
			if fa.sum.signature() != old {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

func reachableBlocks(fn *ir.Func) []*ir.Block {
	entry := fn.Entry()
	if entry == nil {
		return nil
	}
	seen := map[*ir.Block]bool{entry: true}
	order := []*ir.Block{entry}
	for i := 0; i < len(order); i++ {
		term := order[i].Terminator()
		if term == nil {
			continue
		}
		for _, s := range term.Succs {
			if !seen[s] {
				seen[s] = true
				order = append(order, s)
			}
		}
	}
	// Keep the function's declaration order for deterministic output.
	var out []*ir.Block
	for _, b := range fn.Blocks {
		if seen[b] {
			out = append(out, b)
		}
	}
	return out
}

// resolveRange resolves ptr to (root allocation, inclusive cache-line
// range) when the offset is a compile-time constant from a line-aligned PM
// root, mirroring the fixer's staticLine walk (including seeing through
// loads of non-escaping alloca slots).
func (az *analyzer) resolveRange(ptr ir.Value, size int64) (ir.Value, int64, int64, bool) {
	if size <= 0 {
		size = 1
	}
	offset := int64(0)
	v := ptr
	for depth := 0; depth < 32; depth++ {
		switch x := v.(type) {
		case *ir.Global:
			if !x.PM {
				return nil, 0, 0, false
			}
			return x, offset / pmem.LineSize, (offset + size - 1) / pmem.LineSize, true
		case *ir.Instr:
			switch x.Op {
			case ir.OpPtrAdd:
				c, ok := x.Args[1].(*ir.Const)
				if !ok {
					return nil, 0, 0, false
				}
				offset += c.Val*x.Scale + x.Disp
				v = x.Args[0]
			case ir.OpCall:
				if n := x.Callee.Name; n != "pm_alloc" && n != "pm_root" {
					return nil, 0, 0, false
				}
				return x, offset / pmem.LineSize, (offset + size - 1) / pmem.LineSize, true
			case ir.OpLoad:
				slot, ok := x.Args[0].(*ir.Instr)
				if !ok || slot.Op != ir.OpAlloca || az.slotEscapes(slot) {
					return nil, 0, 0, false
				}
				def := reachingSlotStore(slot, x)
				if def == nil {
					return nil, 0, 0, false
				}
				v = def.StoreVal()
			default:
				return nil, 0, 0, false
			}
		default:
			return nil, 0, 0, false
		}
	}
	return nil, 0, 0, false
}

// ResolveLine resolves ptr to its (root allocation, cache-line index)
// when ptr is a compile-time-constant offset from a line-aligned PM root
// — a standalone entry point into the resolveRange walk for passes
// outside the analyzer fixpoint. internal/optimize uses it to prove two
// flushes target the same cache line before coalescing them; two
// pointers resolve to the same line exactly when both roots and both
// indices are equal.
func ResolveLine(ptr ir.Value) (root ir.Value, line int64, ok bool) {
	az := &analyzer{escapeCache: make(map[*ir.Instr]bool)}
	r, lo, _, ok := az.resolveRange(ptr, 1)
	if !ok {
		return nil, 0, false
	}
	return r, lo, true
}

// slotEscapes reports whether an alloca's address is used anywhere other
// than as the direct target of loads and stores.
func (az *analyzer) slotEscapes(slot *ir.Instr) bool {
	if esc, ok := az.escapeCache[slot]; ok {
		return esc
	}
	esc := false
	fn := slot.Block().Func()
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a != slot {
					continue
				}
				switch {
				case in.Op == ir.OpLoad && i == 0:
				case (in.Op == ir.OpStore || in.Op == ir.OpNTStore) && i == 1:
				default:
					esc = true
				}
			}
		}
	}
	az.escapeCache[slot] = esc
	return esc
}

// reachingSlotStore finds the same-block store a load of a non-escaping
// slot observes (nil when the definition is outside the block).
func reachingSlotStore(slot, load *ir.Instr) *ir.Instr {
	blk := load.Block()
	idx := -1
	for i, in := range blk.Instrs {
		if in == load {
			idx = i
			break
		}
	}
	for i := idx - 1; i >= 0; i-- {
		in := blk.Instrs[i]
		if (in.Op == ir.OpStore || in.Op == ir.OpNTStore) && in.StorePtr() == slot {
			return in
		}
	}
	return nil
}
