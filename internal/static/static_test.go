package static_test

import (
	"testing"

	"hippocrates/internal/lang"
	"hippocrates/internal/obs"
	"hippocrates/internal/pmem"
	"hippocrates/internal/static"
)

func analyzeSrc(t *testing.T, src string) *static.Result {
	t.Helper()
	m, err := lang.Compile("t.pmc", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := static.Analyze(m, "main")
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMissingFlushAndFence(t *testing.T) {
	res := analyzeSrc(t, `
pm int cell[16];
int main() {
	cell[0] = 7;
	pm_checkpoint();
	return cell[0];
}
`)
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d, want 1\n%s", len(res.Reports), res.Summary())
	}
	r := res.Reports[0]
	if r.Class() != pmem.MissingFlushFence {
		t.Errorf("class = %s, want %s", r.Class(), pmem.MissingFlushFence)
	}
	if r.Func != "main" {
		t.Errorf("report function = %s, want main", r.Func)
	}
	// The store is caught at the explicit checkpoint and again at the end
	// of the program (empty chain).
	if len(r.Checkpoints) != 2 {
		t.Errorf("checkpoint chains = %d, want 2 (pm_checkpoint + end of program)", len(r.Checkpoints))
	}
}

func TestMissingFenceRecordsFlushSite(t *testing.T) {
	res := analyzeSrc(t, `
pm int cell[16];
int main() {
	cell[0] = 7;
	clwb(&cell[0]);
	pm_checkpoint();
	return cell[0];
}
`)
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d, want 1\n%s", len(res.Reports), res.Summary())
	}
	r := res.Reports[0]
	if r.Class() != pmem.MissingFence {
		t.Errorf("class = %s, want %s", r.Class(), pmem.MissingFence)
	}
	if len(r.FlushSites) != 1 || r.FlushSites[0].Func != "main" {
		t.Errorf("flush sites = %v, want the main-local clwb", r.FlushSites)
	}
}

func TestFenceWithoutFlushIsMissingFlush(t *testing.T) {
	res := analyzeSrc(t, `
pm int cell[16];
int main() {
	cell[0] = 7;
	sfence();
	pm_checkpoint();
	return cell[0];
}
`)
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d, want 1\n%s", len(res.Reports), res.Summary())
	}
	if got := res.Reports[0].Class(); got != pmem.MissingFlush {
		t.Errorf("class = %s, want %s", got, pmem.MissingFlush)
	}
}

func TestFlushedAndFencedIsClean(t *testing.T) {
	res := analyzeSrc(t, `
pm int cell[16];
int main() {
	cell[0] = 7;
	clwb(&cell[0]);
	sfence();
	pm_checkpoint();
	return cell[0];
}
`)
	if !res.Clean() {
		t.Errorf("expected clean, got:\n%s", res.Summary())
	}
}

func TestOrderedFlushCommitsImmediately(t *testing.T) {
	res := analyzeSrc(t, `
pm int cell[16];
int main() {
	cell[0] = 7;
	clflush(&cell[0]);
	pm_checkpoint();
	return cell[0];
}
`)
	if !res.Clean() {
		t.Errorf("expected clean (CLFLUSH is strongly ordered), got:\n%s", res.Summary())
	}
}

func TestNTStoreNeedsOnlyFence(t *testing.T) {
	res := analyzeSrc(t, `
pm int cell[16];
int main() {
	ntstore(&cell[0], 7);
	pm_checkpoint();
	return cell[0];
}
`)
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d, want 1\n%s", len(res.Reports), res.Summary())
	}
	r := res.Reports[0]
	if r.Class() != pmem.MissingFence {
		t.Errorf("class = %s, want %s", r.Class(), pmem.MissingFence)
	}
	if !r.NT {
		t.Error("report not marked non-temporal")
	}
	// For an NT store, the "flush site" is the store itself.
	if len(r.FlushSites) != 1 || r.FlushSites[0].InstrID != r.InstrID {
		t.Errorf("flush sites = %v, want the NT store site itself", r.FlushSites)
	}
}

func TestBranchJoinUnionsNeeds(t *testing.T) {
	// One path flushes, the other does not: the state set at the
	// checkpoint is {dirty, flushed}, whose needs are flush+fence.
	res := analyzeSrc(t, `
pm int cell[16];
int main(int c) {
	cell[0] = 7;
	if (c != 0) {
		clwb(&cell[0]);
	}
	pm_checkpoint();
	return 0;
}
`)
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d, want 1\n%s", len(res.Reports), res.Summary())
	}
	r := res.Reports[0]
	if !r.NeedFlush || !r.NeedFence {
		t.Errorf("needs = %s, want flush+fence (union over both paths)", r.Needs())
	}
}

func TestInterproceduralStackAndMustFence(t *testing.T) {
	// The store happens two frames below main; the callee chain must show
	// up in the report stack. drain()'s must-fence demotes the dirty state
	// to dirty-fenced, so the bug is missing-flush only.
	res := analyzeSrc(t, `
pm int cell[16];
void set(int v) {
	cell[0] = v;
}
void drain() {
	sfence();
}
int main() {
	set(9);
	drain();
	pm_checkpoint();
	return 0;
}
`)
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d, want 1\n%s", len(res.Reports), res.Summary())
	}
	r := res.Reports[0]
	if r.Func != "set" {
		t.Errorf("report function = %s, want set", r.Func)
	}
	if len(r.Stack) != 2 || r.Stack[1].Func != "main" {
		t.Errorf("stack = %v, want [set, main]", r.Stack)
	}
	if got := r.Class(); got != pmem.MissingFlush {
		t.Errorf("class = %s, want %s (callee fence on every path)", got, pmem.MissingFlush)
	}
}

func TestCalleeMayFlushKeepsCallerSound(t *testing.T) {
	// The helper flushes the line but only on one path, and never fences:
	// the caller's fact must still be reported needing flush+fence.
	res := analyzeSrc(t, `
pm int cell[16];
void maybe_flush(int c) {
	if (c != 0) {
		clwb(&cell[0]);
	}
}
int main(int c) {
	cell[0] = 3;
	maybe_flush(c);
	pm_checkpoint();
	return 0;
}
`)
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d, want 1\n%s", len(res.Reports), res.Summary())
	}
	r := res.Reports[0]
	if !r.NeedFlush || !r.NeedFence {
		t.Errorf("needs = %s, want flush+fence", r.Needs())
	}
}

func TestLoopLocalFlushViaSameValueRule(t *testing.T) {
	// The address is recomputed every iteration, so no constant line range
	// exists; the same-SSA-value same-block rule must still recognize the
	// flush, leaving only the final fence to make everything durable.
	res := analyzeSrc(t, `
pm int cell[64];
int main() {
	for (int i = 0; i < 8; i++) {
		cell[i * 3] = i;
		clwb(&cell[i * 3]);
	}
	sfence();
	pm_checkpoint();
	return 0;
}
`)
	if !res.Clean() {
		t.Errorf("expected clean, got:\n%s", res.Summary())
	}
}

func TestDisjointLineRefinement(t *testing.T) {
	// a and b are distinct cache lines of distinct globals: the flush of a
	// provably does not cover b, so b must be reported — and a must not.
	res := analyzeSrc(t, `
pm int a[16];
pm int b[16];
int main() {
	a[0] = 1;
	b[0] = 2;
	clwb(&a[0]);
	sfence();
	pm_checkpoint();
	return 0;
}
`)
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d, want 1 (only the b store)\n%s", len(res.Reports), res.Summary())
	}
	if got := res.Reports[0].Class(); got != pmem.MissingFlush {
		t.Errorf("class = %s, want %s (a fence already follows)", got, pmem.MissingFlush)
	}
}

func TestAbortKillsPath(t *testing.T) {
	// The interpreter halts at abort_msg, so the unflushed store on the
	// abort path never reaches a durability point.
	res := analyzeSrc(t, `
pm int cell[16];
int main(int c) {
	if (c != 0) {
		cell[0] = 1;
		abort_msg("bad");
	}
	pm_checkpoint();
	return 0;
}
`)
	if !res.Clean() {
		t.Errorf("expected clean, got:\n%s", res.Summary())
	}
}

func TestRedundantFlushLint(t *testing.T) {
	res := analyzeSrc(t, `
pm int cell[16];
int main() {
	cell[0] = 7;
	clwb(&cell[0]);
	clwb(&cell[0]);
	sfence();
	pm_checkpoint();
	return 0;
}
`)
	if !res.Clean() {
		t.Fatalf("expected clean, got:\n%s", res.Summary())
	}
	found := 0
	for _, l := range res.Lints {
		if l.Kind == static.LintRedundantFlush {
			found++
		}
	}
	if found != 1 {
		t.Errorf("redundant-flush lints = %d, want 1 (the second clwb)\n%s", found, res.Summary())
	}
}

func TestRedundantFenceLint(t *testing.T) {
	res := analyzeSrc(t, `
pm int cell[16];
int main() {
	cell[0] = 7;
	clwb(&cell[0]);
	sfence();
	sfence();
	pm_checkpoint();
	return 0;
}
`)
	if !res.Clean() {
		t.Fatalf("expected clean, got:\n%s", res.Summary())
	}
	found := 0
	for _, l := range res.Lints {
		if l.Kind == static.LintRedundantFence {
			found++
		}
	}
	if found != 1 {
		t.Errorf("redundant-fence lints = %d, want 1 (the second sfence)\n%s", found, res.Summary())
	}
}

func TestFlushAfterNTStoreLint(t *testing.T) {
	res := analyzeSrc(t, `
pm int cell[16];
int main() {
	ntstore(&cell[0], 7);
	clwb(&cell[0]);
	sfence();
	pm_checkpoint();
	return 0;
}
`)
	if !res.Clean() {
		t.Fatalf("expected clean, got:\n%s", res.Summary())
	}
	found := 0
	for _, l := range res.Lints {
		if l.Kind == static.LintFlushAfterNT {
			found++
		}
	}
	if found != 1 {
		t.Errorf("flush-after-ntstore lints = %d, want 1\n%s", found, res.Summary())
	}
}

// TestLintCountersPerKind checks that AnalyzeObs splits the aggregate
// static.lints counter by lint kind.
func TestLintCountersPerKind(t *testing.T) {
	m, err := lang.Compile("t.pmc", `
pm int cell[16];
int main() {
	cell[0] = 7;
	clwb(&cell[0]);
	clwb(&cell[0]);
	sfence();
	sfence();
	ntstore(&cell[1], 9);
	clwb(&cell[1]);
	sfence();
	pm_checkpoint();
	return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	sp := rec.StartSpan("test")
	res, err := static.AnalyzeObs(m, "main", sp)
	sp.End()
	if err != nil {
		t.Fatal(err)
	}
	// The flush after the NT store draws both the flush-after-ntstore
	// lint and a redundant-flush lint (it parks nothing either way).
	want := map[string]int64{
		"static.lints.redundant_flush": 2,
		"static.lints.redundant_fence": 1,
		"static.lints.flush_after_nt":  1,
	}
	for name, n := range want {
		if got := rec.Counter(name); got != n {
			t.Errorf("%s = %d, want %d\n%s", name, got, n, res.Summary())
		}
	}
	if got := rec.Counter("static.lints"); got != int64(len(res.Lints)) {
		t.Errorf("static.lints = %d, want %d (the aggregate stays)", got, len(res.Lints))
	}
}

func TestEntryNotFound(t *testing.T) {
	m, err := lang.Compile("t.pmc", `int main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := static.Analyze(m, "nope"); err == nil {
		t.Error("expected an error for a missing entry function")
	}
}
