package static_test

import (
	"reflect"
	"testing"

	"hippocrates/internal/core"
	"hippocrates/internal/corpus"
	"hippocrates/internal/lang"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/static"
)

// requireSameResult asserts the do-no-harm bar of the summary store: a
// warm analysis must match a cold one byte for byte — reports, lints,
// and the rendered summary.
func requireSameResult(t *testing.T, cold, warm *static.Result) {
	t.Helper()
	if cold.Summary() != warm.Summary() {
		t.Errorf("warm summary differs from cold:\n--- cold ---\n%s--- warm ---\n%s",
			cold.Summary(), warm.Summary())
	}
	if !reflect.DeepEqual(cold.Reports, warm.Reports) {
		t.Error("warm reports differ structurally from cold")
	}
	if !reflect.DeepEqual(cold.Lints, warm.Lints) {
		t.Error("warm lints differ structurally from cold")
	}
	if cold.Funcs != warm.Funcs {
		t.Errorf("warm Funcs = %d, cold = %d", warm.Funcs, cold.Funcs)
	}
}

func analyzeWithStore(t *testing.T, src string, store *static.Store) *static.Result {
	t.Helper()
	m, err := lang.Compile("t.pmc", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := static.AnalyzeWithStore(m, "main", store)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// A three-deep call chain over a leaf PM store. The layouts of incrBase
// and its edited variants keep every function on identical source lines,
// so only the edited function's fingerprint moves.
const incrBase = `
pm int cell[64];
int vol;
void leaf(int *p, int v) {
	*p = v;
}
void mid(int *p, int v) {
	leaf(p, v);
}
void top(int *p, int v) {
	mid(p, v);
}
int main() {
	top(&cell[0], 7);
	pm_checkpoint();
	return cell[0];
}
`

// TestIncrementalWarmIdentical: analyzing the identical source twice
// against one store must hit for every function and produce
// byte-identical results.
func TestIncrementalWarmIdentical(t *testing.T) {
	cold := analyzeSrc(t, incrBase)
	store := static.NewStore(0)
	first := analyzeWithStore(t, incrBase, store)
	if first.Incr.SumHits != 0 || first.Incr.SumMisses != 4 {
		t.Fatalf("priming run: incr = %+v, want 0 hits / 4 misses", first.Incr)
	}
	warm := analyzeWithStore(t, incrBase, store)
	if warm.Incr.SumHits != 4 || warm.Incr.SumMisses != 0 {
		t.Fatalf("warm run: incr = %+v, want 4 hits / 0 misses", warm.Incr)
	}
	if warm.Incr.ConsHits != 4 || warm.Incr.ConsMisses != 0 {
		t.Fatalf("warm run constraints: incr = %+v, want 4 hits / 0 misses", warm.Incr)
	}
	requireSameResult(t, cold, first)
	requireSameResult(t, cold, warm)
}

// TestTransitiveInvalidation: an edit that changes the leaf's summary
// (adding a flush changes its exit facts) must re-analyze every
// transitive caller — the callee summary hash chained into each caller's
// key invalidates the whole spine without any explicit tracking.
func TestTransitiveInvalidation(t *testing.T) {
	const leafFlushes = `
pm int cell[64];
int vol;
void leaf(int *p, int v) {
	*p = v; clwb(p);
}
void mid(int *p, int v) {
	leaf(p, v);
}
void top(int *p, int v) {
	mid(p, v);
}
int main() {
	top(&cell[0], 7);
	pm_checkpoint();
	return cell[0];
}
`
	store := static.NewStore(0)
	analyzeWithStore(t, incrBase, store)
	warm := analyzeWithStore(t, leafFlushes, store)
	if warm.Incr.SumHits != 0 || warm.Incr.SumMisses != 4 {
		t.Fatalf("leaf summary change: incr = %+v, want 0 hits / 4 misses", warm.Incr)
	}
	cold := analyzeSrc(t, leafFlushes)
	requireSameResult(t, cold, warm)
}

// TestSummaryNeutralEditStopsPropagation: an edit that changes the
// leaf's body but NOT its summary (a dead volatile store after the PM
// store) must miss only for the leaf; every caller re-keys against the
// unchanged summary hash and hits.
func TestSummaryNeutralEditStopsPropagation(t *testing.T) {
	const leafNeutral = `
pm int cell[64];
int vol;
void leaf(int *p, int v) {
	*p = v; vol = v;
}
void mid(int *p, int v) {
	leaf(p, v);
}
void top(int *p, int v) {
	mid(p, v);
}
int main() {
	top(&cell[0], 7);
	pm_checkpoint();
	return cell[0];
}
`
	store := static.NewStore(0)
	analyzeWithStore(t, incrBase, store)
	warm := analyzeWithStore(t, leafNeutral, store)
	if warm.Incr.SumHits != 3 || warm.Incr.SumMisses != 1 {
		t.Fatalf("summary-neutral edit: incr = %+v, want 3 hits / 1 miss", warm.Incr)
	}
	cold := analyzeSrc(t, leafNeutral)
	requireSameResult(t, cold, warm)
}

// TestIncrementalCorpusByteIdentical replays the full corpus against one
// shared store, twice, asserting warm output byte-identical to cold for
// every program — the store must neither leak state across programs nor
// drift on repeats. The first program is additionally checked against
// the dynamic detector from the warm result, so the agreement verdict
// itself is exercised on the cached path.
func TestIncrementalCorpusByteIdentical(t *testing.T) {
	store := static.NewStore(0)
	for round := 0; round < 2; round++ {
		for i, p := range corpus.All() {
			m := p.MustCompile()
			cold, err := static.Analyze(m, p.Entry)
			if err != nil {
				t.Fatalf("%s: cold: %v", p.Name, err)
			}
			wm := p.MustCompile()
			warm, err := static.AnalyzeWithStore(wm, p.Entry, store)
			if err != nil {
				t.Fatalf("%s: warm: %v", p.Name, err)
			}
			requireSameResult(t, cold, warm)
			if round == 1 && warm.Incr.SumMisses != 0 {
				t.Errorf("%s: second round should replay everything, incr = %+v", p.Name, warm.Incr)
			}
			if round == 1 && i == 0 {
				tr, err := core.TraceModule(m, p.Entry)
				if err != nil {
					t.Fatal(err)
				}
				requireSuperset(t, warm, pmcheck.Check(tr))
			}
		}
	}
	st := store.Stats()
	if st.SummaryHits == 0 {
		t.Error("corpus replay produced no summary hits")
	}
	t.Logf("store after corpus x2: %+v", st)
}
