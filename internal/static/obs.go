package static

import (
	"hippocrates/internal/ir"
	"hippocrates/internal/obs"
)

// AnalyzeObs runs Analyze under a "static-analyze" child span of sp,
// publishing the analysis statistics as static.* counters. With a nil
// span it is exactly Analyze.
func AnalyzeObs(mod *ir.Module, entry string, sp *obs.Span) (*Result, error) {
	return AnalyzeObsStore(mod, entry, nil, sp)
}

// AnalyzeObsStore is AnalyzeObs backed by a summary store; the run's
// summary and constraint hit/miss counts are published as static.sum_* /
// static.cons_* counters.
func AnalyzeObsStore(mod *ir.Module, entry string, store *Store, sp *obs.Span) (*Result, error) {
	asp := sp.Start("static-analyze")
	defer asp.End()
	res, err := AnalyzeWithStore(mod, entry, store)
	if res != nil {
		asp.SetAttr("entry", res.Entry)
		asp.Add("static.funcs", int64(res.Funcs))
		asp.Add("static.reports", int64(len(res.Reports)))
		asp.Add("static.lints", int64(len(res.Lints)))
		var byKind [3]int64
		for _, l := range res.Lints {
			if int(l.Kind) < len(byKind) {
				byKind[l.Kind]++
			}
		}
		asp.Add("static.lints.redundant_flush", byKind[LintRedundantFlush])
		asp.Add("static.lints.redundant_fence", byKind[LintRedundantFence])
		asp.Add("static.lints.flush_after_nt", byKind[LintFlushAfterNT])
		if store != nil {
			asp.Add("static.sum_hits", int64(res.Incr.SumHits))
			asp.Add("static.sum_misses", int64(res.Incr.SumMisses))
			asp.Add("static.cons_hits", int64(res.Incr.ConsHits))
			asp.Add("static.cons_misses", int64(res.Incr.ConsMisses))
		}
	}
	return res, err
}
