// Package static is the static persistency-state analysis: it finds the
// durability bugs pmcheck finds dynamically, but without running the
// program. A flow-sensitive dataflow pass tracks, per may-PM store site, a
// set of possible persistency states (dirty → flushed → durable, the same
// state machine internal/pmem replays), joined over all CFG paths and
// seeded with PM-ness from the Full-AA points-to results. Bottom-up
// function summaries over the direct-call-only (hence exact) call graph
// make it interprocedural: a summary records whether a callee may/must
// fence, which lines it may flush, its reachable durability points, and
// the stores still undurable at return.
//
// Soundness contract (the agreement harness enforces it): at every store
// site the dynamic detector reports, the static analysis reports the same
// site with at-least-covering mechanism needs. The analysis errs only
// toward over-reporting: state-removing (strong) updates are applied only
// when provable — a flush covers a fact "must"-wise only via the
// same-block same-address rule or a constant line range off a PM global,
// and a callee removes states only under a must-fence on every path.
package static

import (
	"fmt"
	"sort"
	"strings"

	"hippocrates/internal/alias"
	"hippocrates/internal/ir"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/pmem"
	"hippocrates/internal/trace"
)

// LintKind classifies a performance diagnostic.
type LintKind int

// The lint kinds (§7 of the paper: reported, never auto-fixed).
const (
	// LintRedundantFlush is a flush that can never move a line toward
	// durability on any path reaching it (every covered fact is already
	// flushed or durable).
	LintRedundantFlush LintKind = iota
	// LintRedundantFence is a fence with nothing to drain: no tracked
	// store can be in the awaiting-fence state at the fence.
	LintRedundantFence
	// LintFlushAfterNT is an explicit flush of a line whose only pending
	// content is a non-temporal store, which already bypassed the cache.
	LintFlushAfterNT
)

func (k LintKind) String() string {
	switch k {
	case LintRedundantFlush:
		return "redundant-flush"
	case LintRedundantFence:
		return "redundant-fence"
	case LintFlushAfterNT:
		return "flush-after-ntstore"
	}
	return fmt.Sprintf("lint(%d)", int(k))
}

// Lint is one performance diagnostic at a static site. Lints are emitted
// in every analyzed function, not just the entry: a callee lint survives
// only when no caller context can revive the instruction (the top-down
// context pass proves the relevant persistency states absent at every
// call chain from the entry).
type Lint struct {
	Kind  LintKind
	Site  trace.Frame
	Block string

	// needNoDirtyCtx / needNoFlushedCtx are the caller-context conditions
	// under which the local redundancy argument holds; the context pass
	// drops the lint when a caller may present the named state.
	needNoDirtyCtx   bool
	needNoFlushedCtx bool
}

func (l *Lint) String() string {
	return fmt.Sprintf("%s at %s", l.Kind, l.Site)
}

// Report is one statically detected durability bug: a store site, the call
// chain it was reached through, and the mechanisms a fix must provide. The
// site shape matches pmcheck.Report so the fixer can consume static
// reports unchanged (see Result.PMCheckReports).
type Report struct {
	// Func / Block / InstrID / Loc locate the store instruction.
	Func    string
	Block   string
	InstrID int
	Loc     ir.Loc

	// Op is OpStore, OpNTStore, or OpCall (builtin memcpy/memset).
	Op   ir.Op
	Size int64
	NT   bool

	NeedFlush bool
	NeedFence bool

	// Stack is the call chain (innermost first) from the store up to the
	// entry function, like a dynamic trace stack.
	Stack []trace.Frame
	// Checkpoints are the durability-point call chains that may observe
	// the store undurable; an empty chain is the end of the program.
	Checkpoints [][]trace.Frame
	// FlushSites are flushes that may have flushed the store on
	// missing-fence paths — where a fence-only fix belongs.
	FlushSites []trace.Frame
}

// Class returns the paper's bug classification.
func (r *Report) Class() pmem.BugClass {
	switch {
	case r.NeedFlush && r.NeedFence:
		return pmem.MissingFlushFence
	case r.NeedFlush:
		return pmem.MissingFlush
	default:
		return pmem.MissingFence
	}
}

// Site returns the store's innermost frame.
func (r *Report) Site() trace.Frame {
	return trace.Frame{Func: r.Func, InstrID: r.InstrID, Loc: r.Loc}
}

// Key returns the site key shared with the dynamic detector.
func (r *Report) Key() pmcheck.SiteKey {
	return pmcheck.SiteKey{Func: r.Func, InstrID: r.InstrID}
}

// Needs returns the mechanism needs of the report.
func (r *Report) Needs() pmcheck.Needs {
	return pmcheck.Needs{Flush: r.NeedFlush, Fence: r.NeedFence}
}

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s at %s", r.Class(), r.Site())
	if r.Block != "" {
		fmt.Fprintf(&b, " (block %%%s)", r.Block)
	}
	for _, f := range r.Stack[1:] {
		fmt.Fprintf(&b, "\n\tcalled from %s", f)
	}
	return b.String()
}

// Result is the static analysis output for one module entry.
type Result struct {
	Entry   string
	Reports []*Report
	Lints   []*Lint
	// Funcs counts the defined functions reachable from (and including)
	// the entry — the functions the analysis summarized.
	Funcs int
	// Incr reports this run's summary/constraint store traffic (zero
	// when the run had no store).
	Incr IncrStats
}

// Clean reports whether no durability bugs were found.
func (res *Result) Clean() bool { return len(res.Reports) == 0 }

// UniqueSites counts distinct static store sites, the paper's bug count.
func (res *Result) UniqueSites() int {
	seen := map[pmcheck.SiteKey]bool{}
	for _, r := range res.Reports {
		seen[r.Key()] = true
	}
	return len(seen)
}

// NeedsBySite folds the reports into per-site mechanism needs — one side
// of the static/dynamic agreement comparison.
func (res *Result) NeedsBySite() map[pmcheck.SiteKey]pmcheck.Needs {
	out := make(map[pmcheck.SiteKey]pmcheck.Needs, len(res.Reports))
	for _, r := range res.Reports {
		n := out[r.Key()]
		n.Flush = n.Flush || r.NeedFlush
		n.Fence = n.Fence || r.NeedFence
		out[r.Key()] = n
	}
	return out
}

// PMCheckReports converts the static reports into pmcheck.Report values
// backed by synthetic trace events, so internal/core's fixer can plan and
// apply repairs from a static run exactly as from a dynamic one. Addresses
// are absent (static reports have none); the fixer never reads them.
func (res *Result) PMCheckReports() []*pmcheck.Report {
	seq := 0
	out := make([]*pmcheck.Report, 0, len(res.Reports))
	for _, r := range res.Reports {
		kind := trace.KindStore
		if r.NT {
			kind = trace.KindNTStore
		}
		se := &trace.Event{Seq: seq, Kind: kind, Size: int(r.Size), Stack: r.Stack}
		seq++
		var ckpts []*trace.Event
		for _, chain := range r.Checkpoints {
			ckpts = append(ckpts, &trace.Event{Seq: seq, Kind: trace.KindCheckpoint, Stack: chain})
			seq++
		}
		out = append(out, &pmcheck.Report{
			Store:       se,
			NeedFlush:   r.NeedFlush,
			NeedFence:   r.NeedFence,
			Checkpoints: ckpts,
			Stacks:      [][]trace.Frame{r.Stack},
			FlushSites:  append([]trace.Frame(nil), r.FlushSites...),
			Occurrences: 1,
		})
	}
	return out
}

// Summary renders a human-readable digest.
func (res *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "static: analyzed %d function(s) from entry %s\n", res.Funcs, res.Entry)
	if res.Clean() {
		b.WriteString("static: no durability bugs found\n")
	} else {
		fmt.Fprintf(&b, "static: %d durability bug(s) at %d site(s):\n", len(res.Reports), res.UniqueSites())
		for i, r := range res.Reports {
			fmt.Fprintf(&b, "[%d] %s\n", i+1, r)
		}
	}
	for _, l := range res.Lints {
		fmt.Fprintf(&b, "static: lint: %s\n", l)
	}
	return b.String()
}

// Analyze runs the static persistency analysis on the module, rooted at
// the named entry function.
func Analyze(mod *ir.Module, entry string) (*Result, error) {
	return AnalyzeWithStore(mod, entry, nil)
}

// AnalyzeWithStore is Analyze backed by a summary store: function
// summaries (and the alias layer's per-function constraint lists) are
// replayed from the store when the cache key — body fingerprint, alias
// digest, callee summary hashes — matches, and recomputed and stored
// otherwise. The result is byte-identical to a storeless run: cold and
// warm paths share every piece of analysis code, a hit merely skips
// re-deriving what the key proves unchanged. A nil store analyzes from
// scratch.
func AnalyzeWithStore(mod *ir.Module, entry string, store *Store) (*Result, error) {
	entryFn := mod.Func(entry)
	if entryFn == nil {
		return nil, fmt.Errorf("static: entry function %q not found", entry)
	}
	if entryFn.IsDecl() {
		return nil, fmt.Errorf("static: entry function %q has no body", entry)
	}
	var an *alias.Analysis
	az := &analyzer{
		mod:         mod,
		entry:       entryFn,
		sumHash:     make(map[*ir.Func]string),
		sums:        make(map[*ir.Func]*summary),
		fenceMay:    make(map[*ir.Func]bool),
		fenceMust:   make(map[*ir.Func]bool),
		escapeCache: make(map[*ir.Instr]bool),
	}
	if store != nil {
		an = alias.AnalyzeWithStore(mod, store.Alias())
		az.store = store
	} else {
		an = alias.Analyze(mod)
	}
	az.an = an
	az.run()

	entrySum := az.sums[entryFn]
	// The end of the program is an implicit durability point: every fact
	// still live at the entry's returns is reported with an empty
	// checkpoint chain (the dynamic trace's final checkpoint(nil)).
	for f, bits := range entrySum.exit {
		entrySum.mergeReport(f, bits, nil)
	}

	cs := an.ConsStatsOf()
	res := &Result{Entry: entry, Funcs: len(az.sums), Incr: IncrStats{
		SumHits: az.sumHits, SumMisses: az.sumMisses,
		ConsHits: cs.Hits, ConsMisses: cs.Misses,
	}}
	for _, r := range entrySum.reports {
		res.Reports = append(res.Reports, exportReport(mod, r))
	}
	threaded := az.spawnReachable()
	if threaded {
		// Spawn-aware fallback: the sequential flow cannot bound what an
		// interleaving leaves pending, so every reachable may-PM store
		// site is reported needing flush+fence (see threads.go).
		res.Reports = append(res.Reports, az.threadBlanketReports(res.NeedsBySite())...)
	}
	sort.Slice(res.Reports, func(i, j int) bool {
		a, b := res.Reports[i], res.Reports[j]
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.InstrID != b.InstrID {
			return a.InstrID < b.InstrID
		}
		return stackKey(a.Stack) < stackKey(b.Stack)
	})

	// Top-down lint-context pass: propagate, entry-down over the call
	// graph, whether some chain of calls may reach a function while a
	// caller fact is dirty or flushed. ctx(f) joins, over every call site
	// g→f, the caller's local context at the call with the caller's own
	// incoming context (a caller fact live across g is conservatively
	// assumed live at every call g makes). Bits only rise, so the fixpoint
	// is the least one regardless of iteration order.
	ctx := make(map[*ir.Func]callCtx, len(az.sums))
	for changed := true; changed; {
		changed = false
		for fn, s := range az.sums {
			base := ctx[fn]
			for callee, c := range s.calls {
				nc := ctx[callee].or(c).or(base)
				if nc != ctx[callee] {
					ctx[callee] = nc
					changed = true
				}
			}
		}
	}
	for _, s := range az.sums {
		if threaded {
			// No lints in spawn modules: a flush or fence the sequential
			// flow calls redundant may be load-bearing under another
			// interleaving, and the optimizer deletes what lints name.
			break
		}
		c := ctx[s.fn]
		for _, l := range s.lints {
			if l.needNoDirtyCtx && c.dirty {
				continue
			}
			if l.needNoFlushedCtx && c.flushed {
				continue
			}
			res.Lints = append(res.Lints, l)
		}
	}
	sort.Slice(res.Lints, func(i, j int) bool {
		a, b := res.Lints[i], res.Lints[j]
		if a.Site.Func != b.Site.Func {
			return a.Site.Func < b.Site.Func
		}
		if a.Site.InstrID != b.Site.InstrID {
			return a.Site.InstrID < b.Site.InstrID
		}
		return a.Kind < b.Kind
	})
	return res, nil
}

// exportReport converts an internal report (absolute stack, rooted at the
// entry) into the public shape.
func exportReport(mod *ir.Module, r *report) *Report {
	site := r.stack[0]
	out := &Report{
		Func:      site.Func,
		InstrID:   site.InstrID,
		Loc:       site.Loc,
		Op:        r.op,
		Size:      r.size,
		NT:        r.nt,
		NeedFlush: r.needFlush,
		NeedFence: r.needFence,
		Stack:     r.stack,
	}
	if fn := mod.Func(site.Func); fn != nil && !fn.IsDecl() {
		if in := fn.InstrByID(site.InstrID); in != nil && in.Block() != nil {
			out.Block = in.Block().Name
		}
	}
	ckeys := make([]string, 0, len(r.ckpts))
	for k := range r.ckpts {
		ckeys = append(ckeys, k)
	}
	sort.Strings(ckeys)
	for _, k := range ckeys {
		out.Checkpoints = append(out.Checkpoints, r.ckpts[k])
	}
	sites := make([]trace.Frame, 0, len(r.flushSites))
	for _, fr := range r.flushSites {
		sites = append(sites, fr)
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].Func != sites[j].Func {
			return sites[i].Func < sites[j].Func
		}
		return sites[i].InstrID < sites[j].InstrID
	})
	out.FlushSites = sites
	return out
}
