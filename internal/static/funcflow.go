// The flow-sensitive per-function pass: funcAnalysis walks one body to a
// block-level fixpoint and emits the function's summary (reports, lints,
// flush effects, checkpoint chains, exit facts). Split out of analyze.go
// so the driver — which decides per function whether to run this pass at
// all or replay a cached summary from a SummaryStore — reads on its own.
package static

import (
	"hippocrates/internal/alias"
	"hippocrates/internal/ir"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/trace"
)

// funcAnalysis is the flow-sensitive pass over one function body.
type funcAnalysis struct {
	az *analyzer
	fn *ir.Func

	sum   *summary
	facts map[string]*fact
	next  int
	in    map[*ir.Block]factState
	pos   map[*ir.Instr]int
}

func newFuncAnalysis(az *analyzer, fn *ir.Func) *funcAnalysis {
	fa := &funcAnalysis{
		az:    az,
		fn:    fn,
		sum:   newSummary(fn),
		facts: make(map[string]*fact),
		in:    make(map[*ir.Block]factState),
		pos:   make(map[*ir.Instr]int),
	}
	fa.sum.fenceMay = az.fenceMay[fn]
	fa.sum.fenceMust = az.fenceMust[fn]
	for _, b := range fn.Blocks {
		for i, in := range b.Instrs {
			fa.pos[in] = i
		}
	}
	return fa
}

func (fa *funcAnalysis) frameOf(in *ir.Instr) trace.Frame {
	return trace.Frame{Func: fa.fn.Name, InstrID: in.ID, Loc: in.Loc}
}

// run solves the block-level fixpoint, then walks the stabilized states
// once more to emit reports, lints, summary effects, and exit facts.
func (fa *funcAnalysis) run() {
	entry := fa.fn.Entry()
	if entry == nil {
		return
	}
	fa.in[entry] = factState{}
	work := []*ir.Block{entry}
	queued := map[*ir.Block]bool{entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		st := fa.in[b].clone()
		dead := false
		for _, in := range b.Instrs {
			if dead = fa.transfer(st, in, false); dead {
				break
			}
		}
		if dead {
			continue
		}
		term := b.Terminator()
		if term == nil {
			continue
		}
		for _, s := range term.Succs {
			first := fa.in[s] == nil
			if first {
				fa.in[s] = factState{}
			}
			if (joinInto(fa.in[s], st) || first) && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}

	for _, b := range fa.fn.Blocks {
		if fa.in[b] == nil {
			continue // unreachable
		}
		st := fa.in[b].clone()
		for _, in := range b.Instrs {
			if in.Op == ir.OpRet {
				for f, bits := range st {
					fa.sum.exit[f] |= bits
				}
			}
			if fa.transfer(st, in, true) {
				break
			}
		}
	}
}

// transfer applies one instruction to the state, mutating st in place. In
// the emit pass it also records reports, lints, and summary effects. It
// returns true when the path dies (abort).
func (fa *funcAnalysis) transfer(st factState, in *ir.Instr, emit bool) bool {
	switch in.Op {
	case ir.OpStore, ir.OpNTStore:
		ptr := in.StorePtr()
		if !fa.mayPM(ptr) {
			return false
		}
		f := fa.internStoreFact(in, ptr, in.StoreTy.Size())
		if in.Op == ir.OpNTStore {
			st[f] |= stFlushed
			f.addFlushSite(fa.frameOf(in))
		} else {
			st[f] |= stDirty
		}

	case ir.OpAtomicStore, ir.OpAtomicRMW, ir.OpAtomicCAS:
		// An atomic write to PM is a store for durability purposes: the
		// cache line is dirty until flushed and fenced like any other
		// (atomicity orders visibility, not persistence). The pointer is
		// the last operand for all three forms. Atomic loads write nothing.
		ptr := in.Args[len(in.Args)-1]
		if fa.mayPM(ptr) {
			f := fa.internStoreFact(in, ptr, 8)
			st[f] |= stDirty
		}

	case ir.OpSpawn, ir.OpJoin:
		// The spawnee's effects happen on another thread: its fences never
		// drain this thread's flushes, so its summary must not be applied
		// here. Its own stores are covered by the spawn-aware blanket rule
		// (see AnalyzeWithStore). Join transfers no persistency state
		// either — it orders execution, not durability.

	case ir.OpFlush:
		fa.applyFlush(st, in, in.Args[0], nil, in.FlushK.Ordered(), emit)

	case ir.OpFence:
		if emit {
			drains := false
			for _, bits := range st {
				if bits&stFlushed != 0 {
					drains = true
					break
				}
			}
			if !drains {
				// Locally nothing awaits this fence. A caller context with a
				// flushed fact would be drained here, and one with a dirty
				// fact changes classification (dirty → dirty-fenced), so the
				// lint survives only when every caller context excludes both.
				fa.lint(LintRedundantFence, in, true, true)
			}
		}
		for f, bits := range st {
			if nb := bits.afterFence(); nb == 0 {
				delete(st, f)
			} else {
				st[f] = nb
			}
		}

	case ir.OpCall:
		return fa.transferCall(st, in, emit)
	}
	return false
}

func (fa *funcAnalysis) transferCall(st factState, in *ir.Instr, emit bool) bool {
	callee := in.Callee
	if callee.IsDecl() {
		switch callee.Name {
		case "memcpy", "memset":
			dst := in.Args[0]
			if fa.mayPM(dst) {
				size := int64(0)
				if c, ok := in.Args[2].(*ir.Const); ok {
					size = c.Val
				}
				f := fa.internStoreFact(in, dst, size)
				st[f] |= stDirty
			}
		case "flush_range":
			fa.applyFlush(st, in, in.Args[0], in.Args[1], false, emit)
		case "pm_checkpoint":
			fr := fa.frameOf(in)
			if emit {
				chain := []trace.Frame{fr}
				fa.sum.addCkpt(chain)
				for f, bits := range st {
					fa.sum.mergeReport(f, bits, chain)
				}
			}
		case "abort_msg":
			return true // the interpreter halts here; the path dies
		}
		// pm_alloc/pm_root/malloc/free/print_*: no persistency effect.
		return false
	}

	sum := fa.az.summaryOf(callee)
	fenceMay := fa.az.fenceMay[callee]
	fenceMust := fa.az.fenceMust[callee]
	fr := fa.frameOf(in)

	if emit {
		// Record the caller-visible persistency context at this call for
		// the top-down lint-context pass.
		var c callCtx
		for _, bits := range st {
			c.dirty = c.dirty || bits&(stDirty|stDirtyFenced) != 0
			c.flushed = c.flushed || bits&stFlushed != 0
		}
		fa.sum.mergeCallCtx(callee, c)
	}

	// Push the caller's live facts through the callee's summary.
	for f, bits := range st {
		mayCov := false
		for i := range sum.flushes {
			if sum.flushes[i].covers(f) {
				mayCov = true
				f.addFlushSite(sum.flushes[i].site)
			}
		}
		// Reach-closure over the callee's possible effects: a may-flush
		// can move dirty instances to flushed, a may-fence can move dirty
		// to dirty-fenced. Iterating covers flush-then-fence-then-flush
		// interleavings.
		c := bits
		for {
			old := c
			if mayCov && c&(stDirty|stDirtyFenced) != 0 {
				c |= stFlushed
			}
			if (fenceMay || fenceMust) && c&stDirty != 0 {
				c |= stDirtyFenced
			}
			if c == old {
				break
			}
		}
		if emit {
			// The callee's durability points observe the fact in any of
			// the closure states.
			for _, chain := range sum.ckpts {
				fa.sum.mergeReport(f, c, appendFrame(chain, fr))
			}
		}
		post := c
		if fenceMust {
			// A certain fence leaves no instance dirty-unfenced, and
			// drains flushed instances unless the callee may re-flush a
			// still-dirty instance after its last fence.
			post &^= stDirty
			if !(mayCov && c&(stDirty|stDirtyFenced) != 0) {
				post &^= stFlushed
			}
		}
		if post == 0 {
			delete(st, f)
		} else {
			st[f] = post
		}
	}

	if emit {
		// Adopt the callee's own violations, durability points, and flush
		// effects, re-rooted at this call site.
		for _, r := range sum.reports {
			fa.adoptReport(r, fr)
		}
		for _, chain := range sum.ckpts {
			fa.sum.addCkpt(appendFrame(chain, fr))
		}
		for _, fe := range sum.flushes {
			fa.sum.addFlushEffect(fe)
		}
	}

	// The callee's still-undurable stores become caller facts.
	for ef, ebits := range sum.exit {
		nf := fa.internInstantiated(ef, fr)
		st[nf] |= ebits
	}
	return false
}

// adoptReport re-roots a callee-relative report at the given call frame
// and merges it into this function's summary.
func (fa *funcAnalysis) adoptReport(r *report, fr trace.Frame) {
	stack := appendFrame(r.stack, fr)
	k := stackKey(stack)
	mine := fa.sum.reports[k]
	if mine == nil {
		mine = &report{
			stack:      stack,
			op:         r.op,
			size:       r.size,
			nt:         r.nt,
			ckpts:      make(map[string][]trace.Frame),
			flushSites: make(map[pmcheck.SiteKey]trace.Frame),
		}
		fa.sum.reports[k] = mine
	}
	mine.needFlush = mine.needFlush || r.needFlush
	mine.needFence = mine.needFence || r.needFence
	for _, chain := range r.ckpts {
		ext := appendFrame(chain, fr)
		ck := stackKey(ext)
		if _, ok := mine.ckpts[ck]; !ok {
			mine.ckpts[ck] = ext
		}
	}
	for sk, site := range r.flushSites {
		if _, ok := mine.flushSites[sk]; !ok {
			mine.flushSites[sk] = site
		}
	}
}

// coverage classifications for one flush against one fact.
type coverKind int

const (
	covNone coverKind = iota
	covMay
	covMust
)

// coverage decides how a flush instruction relates to a fact's cache
// line(s). Must-coverage (which performs a strong state update) is only
// claimed when every dynamic instance of the fact is provably flushed:
//
//   - same SSA address value, flush later in the same (branch-free) block
//     as the defining store — within one block execution the address is
//     fixed, so each instance is flushed in its own iteration;
//   - both addresses resolve to constant line ranges off the same PM
//     global — a global's lines are the same in every execution.
//
// pm_alloc/pm_root-rooted resolutions must NOT upgrade to must: the same
// allocation site can produce several runtime objects (loops, recursion),
// and a flush of one activation's line does not flush another's.
func (fa *funcAnalysis) coverage(flushIn *ir.Instr, ptr ir.Value, length ir.Value, f *fact) coverKind {
	// Same-value rule.
	if f.def != nil && f.def.Block() == flushIn.Block() && fa.pos[f.def] < fa.pos[flushIn] &&
		fa.sameAddr(ptr, f.ptr, 0) {
		if length == nil {
			// Single-line flush: covers iff the fact fits one line. Plain
			// stores always do (the machine model forbids split stores);
			// memcpy facts only when resolved to a single line.
			if f.op != ir.OpCall || (f.lineOK && f.lineLo == f.lineHi) {
				return covMust
			}
		} else if fa.lengthCovers(length, f) {
			return covMust
		}
	}

	fRoot, fLo, fHi, fOK := fa.resolveFlushRange(ptr, length)
	if fOK && f.lineOK {
		if fRoot != f.root || fHi < f.lineLo || fLo > f.lineHi {
			return covNone // provably disjoint lines
		}
		if fLo <= f.lineLo && f.lineHi <= fHi {
			// A global's lines are the same in every execution.
			if _, isGlobal := fRoot.(*ir.Global); isGlobal {
				return covMust
			}
			// Allocation-rooted: sound only within one block execution of
			// the defining store (same root value ⇒ same activation ⇒ same
			// lines), and only if the allocation cannot re-execute between
			// the store and the flush. This recognizes the fixer's
			// line-grouped flush, which covers several same-line stores
			// through different derived pointers.
			if f.def != nil && f.def.Block() == flushIn.Block() && fa.pos[f.def] < fa.pos[flushIn] {
				if rootIn, ok := fRoot.(*ir.Instr); ok &&
					(rootIn.Block() != f.def.Block() || fa.pos[rootIn] < fa.pos[f.def]) {
					return covMust
				}
			}
		}
		return covMay
	}

	fe := flushEffect{all: false}
	fe.objs, fe.all = fa.objsOf(ptr)
	if fe.covers(f) {
		return covMay
	}
	return covNone
}

// sameAddrDepthCap bounds the structural comparison below.
const sameAddrDepthCap = 16

// sameAddr reports whether two address values are provably equal whenever
// both have been computed during the same execution of their (shared)
// defining block. Identical SSA values trivially qualify; beyond that, two
// distinct instructions qualify when they are structurally identical pure
// computations in the same block whose leaves are the same constants,
// globals, parameters, or loads of a non-escaping stack slot with no slot
// store between them. The frontend recomputes addresses per expression
// (`a[i] = v; clwb(&a[i]);` yields two ptradd chains), so pointer identity
// alone would miss the canonical store-then-flush idiom.
func (fa *funcAnalysis) sameAddr(a, b ir.Value, depth int) bool {
	if a == b {
		return true
	}
	if depth >= sameAddrDepthCap {
		return false
	}
	av, ok := a.(*ir.Instr)
	if !ok {
		ac, aok := a.(*ir.Const)
		bc, bok := b.(*ir.Const)
		return aok && bok && ac.Val == bc.Val
	}
	bv, ok := b.(*ir.Instr)
	if !ok || av.Op != bv.Op || av.Block() != bv.Block() || len(av.Args) != len(bv.Args) {
		return false
	}
	switch {
	case av.Op == ir.OpLoad:
		slot, ok := av.Args[0].(*ir.Instr)
		if !ok || slot.Op != ir.OpAlloca || bv.Args[0] != slot || fa.az.slotEscapes(slot) {
			return false
		}
		// The same nearest in-block slot store (or none for both) means no
		// store separates the two loads within one block execution.
		return reachingSlotStore(slot, av) == reachingSlotStore(slot, bv)
	case av.Op == ir.OpPtrAdd:
		if av.Scale != bv.Scale || av.Disp != bv.Disp {
			return false
		}
	case av.Op.IsBinary() || av.Op.IsCmp() || av.Op.IsCast():
	default:
		return false // calls, allocas, etc. are not pure recomputations
	}
	for i := range av.Args {
		if !fa.sameAddr(av.Args[i], bv.Args[i], depth+1) {
			return false
		}
	}
	return true
}

// lengthCovers reports whether a flush_range length certainly covers the
// whole fact starting at the same address.
func (fa *funcAnalysis) lengthCovers(length ir.Value, f *fact) bool {
	if f.op == ir.OpCall {
		// memcpy/memset fact: the range call must span the same byte count.
		if lc, ok := length.(*ir.Const); ok && f.size > 0 && lc.Val >= f.size {
			return true
		}
		// Same SSA length value as the copy's own length operand.
		if f.def != nil && len(f.def.Args) == 3 && f.def.Args[2] == length {
			return true
		}
		return false
	}
	lc, ok := length.(*ir.Const)
	return ok && f.size > 0 && lc.Val >= f.size
}

// resolveFlushRange resolves the line range a flush covers: one line for a
// plain flush, the constant-length range for flush_range (an unknown
// length under-approximates to the first line, which is sound: missing a
// may-flush only keeps a fact dirtier, and dirty needs subsume flushed
// needs).
func (fa *funcAnalysis) resolveFlushRange(ptr ir.Value, length ir.Value) (ir.Value, int64, int64, bool) {
	size := int64(1)
	if length != nil {
		if c, ok := length.(*ir.Const); ok && c.Val > 0 {
			size = c.Val
		}
	}
	return fa.az.resolveRange(ptr, size)
}

// applyFlush is the transfer function of OpFlush and builtin flush_range.
func (fa *funcAnalysis) applyFlush(st factState, in *ir.Instr, ptr ir.Value, length ir.Value, ordered bool, emit bool) {
	fr := fa.frameOf(in)
	coveredAny := false
	coveredDirty := false
	for f, bits := range st {
		cov := fa.coverage(in, ptr, length, f)
		if cov == covNone {
			continue
		}
		coveredAny = true
		if bits&(stDirty|stDirtyFenced) != 0 {
			coveredDirty = true
		}
		switch {
		case cov == covMust && ordered:
			// CLFLUSH commits immediately: the fact is durable.
			delete(st, f)
		case cov == covMust:
			if emit && f.nt && bits == stFlushed {
				fa.lint(LintFlushAfterNT, in, true, false)
			}
			st[f] = stFlushed
			f.addFlushSite(fr)
		case ordered:
			// May-commit only removes possibilities; keep the state.
		default:
			if bits&(stDirty|stDirtyFenced) != 0 {
				st[f] |= stFlushed
				f.addFlushSite(fr)
			}
		}
	}
	if emit {
		if !ordered {
			objs, anyObj := fa.objsOf(ptr)
			fa.sum.addFlushEffect(flushEffect{objs: objs, all: anyObj, site: fr})
		}
		// Redundant-flush lint: only for flushes whose target the analysis
		// fully tracks. In a callee the flush may still cover a caller's
		// dirty fact (a may-flush effect), so the lint survives only when
		// every caller context excludes dirty facts; in the entry function
		// there is no caller context and the local argument is complete.
		_, anyObj := fa.objsOf(ptr)
		if !anyObj && fa.az.an.MayPointToPM(ptr) {
			if (ordered && !coveredAny) || (!ordered && !coveredDirty) {
				fa.lint(LintRedundantFlush, in, true, false)
			}
		}
	}
}

func (fa *funcAnalysis) lint(kind LintKind, in *ir.Instr, needNoDirty, needNoFlushed bool) {
	fr := fa.frameOf(in)
	for _, l := range fa.sum.lints {
		if l.Kind == kind && l.Site.Func == fr.Func && l.Site.InstrID == fr.InstrID {
			return
		}
	}
	blk := ""
	if b := in.Block(); b != nil {
		blk = b.Name
	}
	fa.sum.lints = append(fa.sum.lints, &Lint{
		Kind: kind, Site: fr, Block: blk,
		needNoDirtyCtx: needNoDirty, needNoFlushedCtx: needNoFlushed,
	})
}

// internStoreFact creates (or returns) the fact for a store-like
// instruction in this function.
func (fa *funcAnalysis) internStoreFact(in *ir.Instr, ptr ir.Value, size int64) *fact {
	stack := []trace.Frame{fa.frameOf(in)}
	key := stackKey(stack)
	if f, ok := fa.facts[key]; ok {
		return f
	}
	f := &fact{
		id:         fa.next,
		stack:      stack,
		key:        key,
		op:         in.Op,
		size:       size,
		nt:         in.Op == ir.OpNTStore,
		ptr:        ptr,
		def:        in,
		flushSites: make(map[pmcheck.SiteKey]trace.Frame),
	}
	fa.next++
	f.objs, f.anyObj = fa.objsOf(ptr)
	if size > 0 {
		f.root, f.lineLo, f.lineHi, f.lineOK = fa.az.resolveRange(ptr, size)
	}
	fa.facts[key] = f
	return f
}

// internInstantiated adopts a callee exit fact as a caller fact with the
// call frame appended to its chain.
func (fa *funcAnalysis) internInstantiated(ef *fact, fr trace.Frame) *fact {
	stack := appendFrame(ef.stack, fr)
	key := stackKey(stack)
	f, ok := fa.facts[key]
	if !ok {
		f = &fact{
			id:         fa.next,
			stack:      stack,
			key:        key,
			op:         ef.op,
			size:       ef.size,
			nt:         ef.nt,
			ptr:        ef.ptr,
			def:        nil, // callee instruction: same-block rule never applies here
			objs:       ef.objs,
			anyObj:     ef.anyObj,
			lineOK:     ef.lineOK,
			root:       ef.root,
			lineLo:     ef.lineLo,
			lineHi:     ef.lineHi,
			flushSites: make(map[pmcheck.SiteKey]trace.Frame),
		}
		fa.next++
		fa.facts[key] = f
	}
	for k, site := range ef.flushSites {
		if _, have := f.flushSites[k]; !have {
			f.flushSites[k] = site
		}
	}
	return f
}

// mayPM reports whether a store through v must be tracked: it may point to
// a PM object, or the analysis cannot bound where it points.
func (fa *funcAnalysis) mayPM(v ir.Value) bool {
	return fa.az.mayPM(v)
}

func (az *analyzer) mayPM(v ir.Value) bool {
	ids, known := az.an.PointsToSet(v)
	if !known {
		return true
	}
	for _, id := range ids {
		o := az.an.ObjectByID(id)
		if o != nil && (o.PM || o.Kind == alias.ObjExtern) {
			return true
		}
	}
	return false
}

// objsOf returns the alias objects v may point into; anyObj is set when v
// is untracked or may reach the opaque extern object (then every flush
// must be assumed to cover it, and it must be assumed to cover any line).
func (fa *funcAnalysis) objsOf(v ir.Value) (map[int]bool, bool) {
	ids, known := fa.az.an.PointsToSet(v)
	if !known {
		return nil, true
	}
	m := make(map[int]bool, len(ids))
	anyObj := false
	for _, id := range ids {
		if o := fa.az.an.ObjectByID(id); o != nil && o.Kind == alias.ObjExtern {
			anyObj = true
		}
		m[id] = true
	}
	return m, anyObj
}
