package static

import (
	"fmt"
	"sort"
	"strings"

	"hippocrates/internal/ir"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/trace"
)

// summary is the bottom-up interprocedural abstraction of one function:
// everything a caller must know to push its own facts through a call and
// to adopt the callee's still-undurable stores.
type summary struct {
	fn *ir.Func

	// fenceMay: some path through the function may execute a fence.
	// fenceMust: every path from entry to return executes a fence (directly
	// or through a callee whose fenceMust holds). A must-fence removes the
	// dirty-unfenced possibility from every caller fact; a may-fence only
	// widens the possible-state set.
	fenceMay  bool
	fenceMust bool

	// flushes are the weakly-ordered flush effects visible to callers (own
	// flushes, flush_range calls, and inherited callee effects). Strongly
	// ordered CLFLUSHes are omitted: through a call they are only a may-
	// commit, which cannot add a state a caller must track.
	flushes []flushEffect

	// ckpts are the relative call chains (innermost first, ending at this
	// function's frame-producing call) to every reachable durability point.
	ckpts map[string][]trace.Frame

	// exit are the function's own (and adopted callee) facts still possibly
	// undurable at return, with their state sets merged over all returns.
	exit map[*fact]stateBits

	// reports are durability violations rooted at this function's facts,
	// with relative stacks; they become absolute when instantiated up the
	// call graph to the entry.
	reports map[string]*report

	// lints are function-local performance diagnostics. They are emitted
	// for every function and filtered against caller contexts (calls,
	// below) after the bottom-up pass.
	lints []*Lint

	// calls records, per defined callee, the join over this function's
	// call sites of the caller-visible persistency context: whether some
	// live fact may be dirty (or dirty-fenced) or flushed at the call.
	// The top-down context pass in Analyze propagates these entry-down to
	// decide which callee lints no caller context can revive.
	calls map[*ir.Func]callCtx
}

// callCtx is the caller-side persistency context observed at a call: may
// any live fact be dirty/dirty-fenced, may any be flushed (awaiting a
// fence)? Bits only rise; over-approximating true suppresses lints, which
// is the sound direction.
type callCtx struct {
	dirty   bool
	flushed bool
}

func (c callCtx) or(o callCtx) callCtx {
	return callCtx{dirty: c.dirty || o.dirty, flushed: c.flushed || o.flushed}
}

// flushEffect is one may-flush a caller observes through a call.
type flushEffect struct {
	objs map[int]bool
	all  bool
	site trace.Frame
}

// covers reports whether the effect may cover the fact's cache line(s).
func (fe *flushEffect) covers(f *fact) bool {
	if fe.all || f.anyObj {
		return true
	}
	for o := range fe.objs {
		if f.objs[o] {
			return true
		}
	}
	return false
}

// report accumulates the violations of one fact (one store site reached
// through one call chain), with mechanism flags unioned across durability
// points exactly as the dynamic detector unions bug classes per (site,
// stack).
type report struct {
	stack      []trace.Frame
	op         ir.Op
	size       int64
	nt         bool
	needFlush  bool
	needFence  bool
	ckpts      map[string][]trace.Frame
	flushSites map[pmcheck.SiteKey]trace.Frame
}

func newSummary(fn *ir.Func) *summary {
	return &summary{
		fn:      fn,
		ckpts:   make(map[string][]trace.Frame),
		exit:    make(map[*fact]stateBits),
		reports: make(map[string]*report),
		calls:   make(map[*ir.Func]callCtx),
	}
}

func (s *summary) mergeCallCtx(callee *ir.Func, c callCtx) {
	s.calls[callee] = s.calls[callee].or(c)
}

func (s *summary) addCkpt(chain []trace.Frame) {
	k := stackKey(chain)
	if _, ok := s.ckpts[k]; !ok {
		s.ckpts[k] = chain
	}
}

func (s *summary) addFlushEffect(fe flushEffect) {
	k := pmcheck.SiteKey{Func: fe.site.Func, InstrID: fe.site.InstrID}
	for _, have := range s.flushes {
		if (pmcheck.SiteKey{Func: have.site.Func, InstrID: have.site.InstrID}) == k {
			return
		}
	}
	s.flushes = append(s.flushes, fe)
}

// mergeReport folds one observation (fact f in states bits at the given
// relative checkpoint chain) into the summary's report map.
func (s *summary) mergeReport(f *fact, bits stateBits, ckpt []trace.Frame) {
	if bits == 0 {
		return
	}
	k := stackKey(f.stack)
	r := s.reports[k]
	if r == nil {
		r = &report{
			stack:      f.stack,
			op:         f.op,
			size:       f.size,
			nt:         f.nt,
			ckpts:      make(map[string][]trace.Frame),
			flushSites: make(map[pmcheck.SiteKey]trace.Frame),
		}
		s.reports[k] = r
	}
	n := bits.needs()
	r.needFlush = r.needFlush || n.Flush
	r.needFence = r.needFence || n.Fence
	ck := stackKey(ckpt)
	if _, ok := r.ckpts[ck]; !ok {
		r.ckpts[ck] = ckpt
	}
	for k, fr := range f.flushSites {
		if _, ok := r.flushSites[k]; !ok {
			r.flushSites[k] = fr
		}
	}
}

// signature fingerprints the summary for SCC fixpoint detection: it covers
// every field that can influence callers.
func (s *summary) signature() string {
	var b strings.Builder
	fmt.Fprintf(&b, "may=%v must=%v;", s.fenceMay, s.fenceMust)
	sites := make([]string, 0, len(s.flushes))
	for _, fe := range s.flushes {
		sites = append(sites, fmt.Sprintf("%s@%d/%v/%d", fe.site.Func, fe.site.InstrID, fe.all, len(fe.objs)))
	}
	sort.Strings(sites)
	b.WriteString(strings.Join(sites, ","))
	b.WriteByte(';')
	keys := make([]string, 0, len(s.ckpts))
	for k := range s.ckpts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString(strings.Join(keys, ","))
	b.WriteByte(';')
	exits := make([]string, 0, len(s.exit))
	for f, bits := range s.exit {
		exits = append(exits, fmt.Sprintf("%s=%d/%d", f.key, bits, len(f.flushSites)))
	}
	sort.Strings(exits)
	b.WriteString(strings.Join(exits, ","))
	b.WriteByte(';')
	reps := make([]string, 0, len(s.reports))
	for k, r := range s.reports {
		reps = append(reps, fmt.Sprintf("%s=%v/%v/%d/%d", k, r.needFlush, r.needFence, len(r.ckpts), len(r.flushSites)))
	}
	sort.Strings(reps)
	b.WriteString(strings.Join(reps, ","))
	return b.String()
}

// callGraph builds the defined-function call graph restricted to functions
// reachable from entry. Calls are direct (the IR has no indirect calls), so
// the graph is exact. Spawn edges are included: a spawned function is
// reachable and needs a summary, even though the caller's flow never
// applies it (the spawnee runs on another thread — see transfer).
func callGraph(entry *ir.Func) (nodes []*ir.Func, succs map[*ir.Func][]*ir.Func) {
	succs = make(map[*ir.Func][]*ir.Func)
	seen := map[*ir.Func]bool{entry: true}
	work := []*ir.Func{entry}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		nodes = append(nodes, fn)
		var out []*ir.Func
		dedup := map[*ir.Func]bool{}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if (in.Op != ir.OpCall && in.Op != ir.OpSpawn) || in.Callee.IsDecl() || dedup[in.Callee] {
					continue
				}
				dedup[in.Callee] = true
				out = append(out, in.Callee)
				if !seen[in.Callee] {
					seen[in.Callee] = true
					work = append(work, in.Callee)
				}
			}
		}
		succs[fn] = out
	}
	return nodes, succs
}

// sccOrder returns the strongly connected components of the call graph in
// reverse topological order (callees before callers), via Tarjan's
// algorithm (iterative to keep deep call chains off the Go stack).
func sccOrder(nodes []*ir.Func, succs map[*ir.Func][]*ir.Func) [][]*ir.Func {
	index := make(map[*ir.Func]int)
	low := make(map[*ir.Func]int)
	onStack := make(map[*ir.Func]bool)
	var stack []*ir.Func
	var sccs [][]*ir.Func
	next := 0

	type frame struct {
		fn *ir.Func
		i  int
	}
	for _, root := range nodes {
		if _, ok := index[root]; ok {
			continue
		}
		work := []frame{{fn: root}}
		for len(work) > 0 {
			fr := &work[len(work)-1]
			fn := fr.fn
			if fr.i == 0 {
				index[fn] = next
				low[fn] = next
				next++
				stack = append(stack, fn)
				onStack[fn] = true
			}
			advanced := false
			for fr.i < len(succs[fn]) {
				w := succs[fn][fr.i]
				fr.i++
				if _, ok := index[w]; !ok {
					work = append(work, frame{fn: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[fn] {
					low[fn] = index[w]
				}
			}
			if advanced {
				continue
			}
			// fn is done.
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].fn
				if low[fn] < low[parent] {
					low[parent] = low[fn]
				}
			}
			if low[fn] == index[fn] {
				var scc []*ir.Func
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == fn {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}
