package progen

import (
	"testing"

	"hippocrates/internal/core"
	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/pmem"
)

func TestGenerateIsDeterministic(t *testing.T) {
	a := ir.Print(Generate(7, DefaultConfig()))
	b := ir.Print(Generate(7, DefaultConfig()))
	if a != b {
		t.Error("same seed produced different programs")
	}
	c := ir.Print(Generate(8, DefaultConfig()))
	if a == c {
		t.Error("different seeds produced identical programs")
	}
}

func TestGeneratedProgramsRun(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		m := Generate(seed, DefaultConfig())
		mach, err := interp.New(m, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mach.Run("main"); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestRepairDoesNoHarmOnRandomPrograms is the operational "do no harm"
// property over the whole bug-species space: for many random programs,
// the repaired program (1) passes the bug finder, (2) returns the same
// checksum, (3) leaves identical PM contents, (4) never has fewer durable
// stores, and (5) its worst-case crash image equals its PM contents.
func TestRepairDoesNoHarmOnRandomPrograms(t *testing.T) {
	const seeds = 250
	buggySeeds := 0
	for seed := int64(0); seed < seeds; seed++ {
		cfg := DefaultConfig()
		orig := Generate(seed, cfg)
		machO, err := interp.New(orig, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		retO, err := machO.Run("main")
		if err != nil {
			t.Fatalf("seed %d original: %v", seed, err)
		}

		fixed := Generate(seed, cfg)
		res, err := core.RunAndRepair(fixed, "main", core.Options{})
		if err != nil {
			t.Fatalf("seed %d repair: %v", seed, err)
		}
		if !res.Before.Clean() {
			buggySeeds++
		}
		if !res.Fixed() {
			t.Errorf("seed %d: repair incomplete:\n%s", seed, res.After.Summary())
			continue
		}
		machF, err := interp.New(fixed, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		retF, err := machF.Run("main")
		if err != nil {
			t.Fatalf("seed %d repaired: %v", seed, err)
		}
		if retF != retO {
			t.Errorf("seed %d: checksum changed %d -> %d (harm!)", seed, retO, retF)
		}
		if d := pmem.DiffPM(machO.Mem, machF.Mem); d != 0 {
			t.Errorf("seed %d: PM contents differ by %d byte(s) after repair", seed, d)
		}
		if machF.Track.DurableStores < machO.Track.DurableStores {
			t.Errorf("seed %d: durable stores shrank %d -> %d", seed,
				machO.Track.DurableStores, machF.Track.DurableStores)
		}
		if machF.Track.NumPending() != 0 {
			t.Errorf("seed %d: repaired program left %d stores pending", seed, machF.Track.NumPending())
		}
		if d := pmem.DiffPM(machF.CrashImage(nil), machF.Mem); d != 0 {
			t.Errorf("seed %d: repaired crash image loses %d byte(s)", seed, d)
		}
	}
	if buggySeeds < seeds/2 {
		t.Errorf("only %d/%d random programs were buggy; the generator lost its teeth", buggySeeds, seeds)
	}
}

// TestRandomProgramsRoundTripThroughText: random modules survive
// Print -> Parse -> Print, before and after repair (the property the fixer
// relies on for CloneModule and the CLI for .pmir files).
func TestRandomProgramsRoundTripThroughText(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		m := Generate(seed, DefaultConfig())
		if _, err := core.RunAndRepair(m, "main", core.Options{}); err != nil {
			t.Fatal(err)
		}
		text := ir.Print(m)
		back, err := ir.ParseModule(text)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		if ir.Print(back) != text {
			t.Errorf("seed %d: repaired module does not round-trip", seed)
		}
		// The reparsed module still runs and is still clean.
		mach, err := interp.New(back, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mach.Run("main"); err != nil {
			t.Fatalf("seed %d: reparsed module: %v", seed, err)
		}
		if mach.Track.NumPending() != 0 {
			t.Errorf("seed %d: reparsed repaired module has pending stores", seed)
		}
	}
}

// TestRepairIdempotentOnRandomPrograms: repairing an already-repaired
// program changes nothing.
func TestRepairIdempotentOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		m := Generate(seed, DefaultConfig())
		if _, err := core.RunAndRepair(m, "main", core.Options{}); err != nil {
			t.Fatal(err)
		}
		before := ir.Print(m)
		res, err := core.RunAndRepair(m, "main", core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Fix != nil && len(res.Fix.Fixes) > 0 {
			t.Errorf("seed %d: second repair applied %d fixes", seed, len(res.Fix.Fixes))
		}
		if ir.Print(m) != before {
			t.Errorf("seed %d: second repair mutated the module", seed)
		}
	}
}

// TestIntraOnlyRepairAlsoClean: the hoisting heuristic is an optimization;
// with it disabled every random program must still repair completely
// (§3.3: all durability bugs are fixable intraprocedurally).
func TestIntraOnlyRepairAlsoClean(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		m := Generate(seed, DefaultConfig())
		res, err := core.RunAndRepair(m, "main", core.Options{DisableHoisting: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Fixed() {
			t.Errorf("seed %d: intra-only repair incomplete", seed)
		}
		if res.Fix != nil && res.Fix.InterprocFixes() != 0 {
			t.Errorf("seed %d: hoisting disabled but interprocedural fixes applied", seed)
		}
	}
}
