// Package progen generates random-but-well-formed persistent-memory
// programs for property testing the detector and the fixer. Programs mix
// direct PM stores, helper functions shared between PM and volatile
// callers, flushes of the right and wrong flavours, fences, and durability
// points — the whole space of durability-bug species — while staying
// deterministic per seed, loop-free and verifier-clean.
package progen

import (
	"fmt"
	"math/rand"

	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
)

// Config bounds the generated program.
type Config struct {
	// Helpers is the number of store helpers (each takes a pointer and a
	// value and stores through the pointer, sometimes flushing).
	Helpers int
	// Ops is the number of top-level operations in main.
	Ops int
	// PMCells is the number of persistent 8-slot arrays.
	PMCells int
	// Threads is the number of worker functions main spawns (0 = a
	// sequential program). Workers mix plain PM stores, flushes, fences,
	// helper calls and atomics, and main joins every handle before the
	// checksum, so a generated module exercises the whole concurrent
	// surface: spawn/join lowering, per-thread detection, and the static
	// spawn fallback.
	Threads int
}

// DefaultConfig returns moderate bounds.
func DefaultConfig() Config {
	return Config{Helpers: 3, Ops: 24, PMCells: 2}
}

// ThreadedConfig returns DefaultConfig with 2-3 spawned workers (seeded
// by the same rng stream as the body, so the count varies per seed but
// deterministically). Threaded modules keep main's op count smaller:
// the interleaving surface, not main's length, is what the mode tests.
func ThreadedConfig(seed int64) Config {
	c := DefaultConfig()
	c.Ops = 12
	c.Threads = 2 + int(seed%2)
	return c
}

// Generate builds a random program from the seed. The module's @main takes
// no arguments and returns an i64 checksum over the persistent cells, so
// "do no harm" is observable: a repaired program must return the same
// checksum and leave the same PM bytes.
func Generate(seed int64, cfg Config) *ir.Module {
	rng := rand.New(rand.NewSource(seed))
	m := ir.NewModule(fmt.Sprintf("progen-%d", seed))
	for _, d := range interp.StdDecls() {
		m.AddFunc(d)
	}
	// Persistent cells: 8 i64 slots each, one cache line per cell.
	for i := 0; i < cfg.PMCells; i++ {
		m.AddGlobal(&ir.Global{Name: fmt.Sprintf("cell%d", i), Elem: ir.Array(ir.I64, 8), PM: true})
	}
	m.AddGlobal(&ir.Global{Name: "vol", Elem: ir.Array(ir.I64, 8)})

	// Helpers: store through a pointer parameter; some flush afterwards,
	// some do not (the seeded bug species).
	type helper struct {
		fn      *ir.Func
		flushes bool
		fences  bool
	}
	helpers := make([]helper, 0, cfg.Helpers)
	for i := 0; i < cfg.Helpers; i++ {
		h := helper{flushes: rng.Intn(3) == 0, fences: rng.Intn(4) == 0}
		fn := ir.NewFunc(fmt.Sprintf("store%d", i), ir.Void,
			&ir.Param{Name: "p", Ty: ir.Ptr}, &ir.Param{Name: "v", Ty: ir.I64})
		m.AddFunc(fn)
		b := ir.NewBuilder(fn)
		b.SetLoc(ir.Loc{File: "progen.pmc", Line: 100 + i})
		slot := b.PtrAdd(fn.Params[0], ir.ConstInt(int64(rng.Intn(8))), 8, 0)
		b.Store(ir.I64, fn.Params[1], slot)
		if h.flushes {
			b.Flush(ir.CLWB, slot)
		}
		if h.fences {
			b.Fence(ir.SFENCE)
		}
		b.Ret(nil)
		fn.Renumber()
		h.fn = fn
		helpers = append(helpers, h)
	}

	// Workers: spawned bodies over the same PM cells. Each takes the cell
	// it works on and a value, like a helper, but runs on its own thread —
	// its flushes are drained only by its own fences.
	workers := make([]*ir.Func, 0, cfg.Threads)
	for i := 0; i < cfg.Threads; i++ {
		fn := ir.NewFunc(fmt.Sprintf("worker%d", i), ir.Void,
			&ir.Param{Name: "p", Ty: ir.Ptr}, &ir.Param{Name: "v", Ty: ir.I64})
		m.AddFunc(fn)
		wb := ir.NewBuilder(fn)
		wb.SetLoc(ir.Loc{File: "progen.pmc", Line: 200 + 10*i})
		nops := 2 + rng.Intn(3)
		for k := 0; k < nops; k++ {
			wb.SetLoc(ir.Loc{File: "progen.pmc", Line: 200 + 10*i + k})
			slot := wb.PtrAdd(fn.Params[0], ir.ConstInt(int64(rng.Intn(8))), 8, 0)
			switch rng.Intn(6) {
			case 0, 1: // plain store, maybe persisted
				wb.Store(ir.I64, fn.Params[1], slot)
				if rng.Intn(2) == 0 {
					wb.Flush(ir.CLWB, slot)
					if rng.Intn(2) == 0 {
						wb.Fence(ir.SFENCE)
					}
				}
			case 2: // atomic update, maybe persisted
				if rng.Intn(2) == 0 {
					wb.AtomicRMW(ir.RMWAdd, ir.ConstInt(1), slot)
				} else {
					wb.AtomicStore(ir.OrderRelease, fn.Params[1], slot)
				}
				if rng.Intn(2) == 0 {
					wb.Flush(ir.CLWB, slot)
					wb.Fence(ir.SFENCE)
				}
			case 3: // helper call (shared between threads and main)
				h := helpers[rng.Intn(len(helpers))]
				wb.Call(h.fn, fn.Params[0], fn.Params[1])
			case 4: // flush + fence of the slot (may cover earlier stores)
				wb.Flush(ir.CLWB, slot)
				wb.Fence(ir.SFENCE)
			case 5: // atomic read feeding a store
				v := wb.AtomicLoad(ir.OrderAcquire, slot)
				dst := wb.PtrAdd(fn.Params[0], ir.ConstInt(int64(rng.Intn(8))), 8, 0)
				wb.Store(ir.I64, v, dst)
			}
		}
		wb.Ret(nil)
		fn.Renumber()
		workers = append(workers, fn)
	}

	main := ir.NewFunc("main", ir.I64)
	m.AddFunc(main)
	b := ir.NewBuilder(main)
	b.SetLoc(ir.Loc{File: "progen.pmc", Line: 1})
	cellPtr := func() ir.Value {
		return m.Global(fmt.Sprintf("cell%d", rng.Intn(cfg.PMCells)))
	}
	// Spawn points are scattered through main's op stream; every handle is
	// joined before the checksum so the workers' stores are ordered before
	// the loads that sum them.
	var handles []ir.Value
	spawnNext := func() {
		w := workers[len(handles)]
		handles = append(handles, b.Spawn(w, cellPtr(), ir.ConstInt(rng.Int63n(1000))))
	}
	for op := 0; op < cfg.Ops; op++ {
		b.SetLoc(ir.Loc{File: "progen.pmc", Line: op + 1})
		// Interleave spawns with the ops: roughly one every few ops, with
		// any stragglers spawned after the loop.
		if len(handles) < len(workers) && rng.Intn(4) == 0 {
			spawnNext()
			continue
		}
		switch rng.Intn(13) {
		case 0, 1, 2: // direct PM store, maybe persisted
			slot := b.PtrAdd(cellPtr(), ir.ConstInt(int64(rng.Intn(8))), 8, 0)
			b.Store(ir.I64, ir.ConstInt(rng.Int63n(1000)), slot)
			if rng.Intn(2) == 0 {
				b.Flush(ir.CLWB, slot)
				if rng.Intn(2) == 0 {
					b.Fence(ir.SFENCE)
				}
			}
		case 3, 4, 5: // helper on PM
			h := helpers[rng.Intn(len(helpers))]
			b.Call(h.fn, cellPtr(), ir.ConstInt(rng.Int63n(1000)))
		case 6: // helper on volatile memory (keeps the heuristic honest)
			h := helpers[rng.Intn(len(helpers))]
			b.Call(h.fn, m.Global("vol"), ir.ConstInt(rng.Int63n(1000)))
		case 7: // stray flush (possibly redundant)
			b.Flush(ir.CLWB, cellPtr())
		case 8: // stray fence
			b.Fence(ir.SFENCE)
		case 9: // durability point
			b.Call(m.Func("pm_checkpoint"))
		case 10: // data-dependent store (exercises branchy fix placement)
			slot := b.PtrAdd(cellPtr(), ir.ConstInt(int64(rng.Intn(8))), 8, 0)
			v := b.Load(ir.I64, slot)
			cond := b.Cmp(ir.OpLt, v, ir.ConstInt(500))
			then := b.NewBlock("then")
			merge := b.NewBlock("merge")
			b.Br(cond, then, merge)
			b.SetBlock(then)
			b.Store(ir.I64, ir.ConstInt(rng.Int63n(1000)), slot)
			if rng.Intn(2) == 0 {
				b.Flush(ir.CLWB, slot)
			}
			b.Jmp(merge)
			b.SetBlock(merge)
		case 11: // bounded loop of helper calls (hot-path shape)
			h := helpers[rng.Intn(len(helpers))]
			target := ir.Value(m.Global("vol"))
			if rng.Intn(2) == 0 {
				target = cellPtr()
			}
			iters := int64(2 + rng.Intn(4))
			iSlot := b.Alloca(ir.I64)
			b.Store(ir.I64, ir.ConstInt(0), iSlot)
			cond := b.NewBlock("loop.cond")
			body := b.NewBlock("loop.body")
			exit := b.NewBlock("loop.exit")
			b.Jmp(cond)
			b.SetBlock(cond)
			iv := b.Load(ir.I64, iSlot)
			c := b.Cmp(ir.OpLt, iv, ir.ConstInt(iters))
			b.Br(c, body, exit)
			b.SetBlock(body)
			b.Call(h.fn, target, iv)
			b.Store(ir.I64, b.Bin(ir.OpAdd, ir.I64, iv, ir.ConstInt(1)), iSlot)
			b.Jmp(cond)
			b.SetBlock(exit)
		case 12: // branch-guarded durability point (limits hoisting)
			slot := b.PtrAdd(cellPtr(), ir.ConstInt(int64(rng.Intn(8))), 8, 0)
			v := b.Load(ir.I64, slot)
			cond := b.Cmp(ir.OpGe, v, ir.ConstInt(0))
			then := b.NewBlock("ckpt")
			merge := b.NewBlock("after")
			b.Br(cond, then, merge)
			b.SetBlock(then)
			b.Call(m.Func("pm_checkpoint"))
			b.Jmp(merge)
			b.SetBlock(merge)
		}
	}
	for len(handles) < len(workers) {
		spawnNext()
	}
	for _, h := range handles {
		b.Join(h)
	}
	// Checksum every PM slot so repairs are observable.
	sum := ir.Value(ir.ConstInt(0))
	for i := 0; i < cfg.PMCells; i++ {
		base := m.Global(fmt.Sprintf("cell%d", i))
		for s := 0; s < 8; s++ {
			slot := b.PtrAdd(base, ir.ConstInt(int64(s)), 8, 0)
			v := b.Load(ir.I64, slot)
			mixed := b.Bin(ir.OpMul, ir.I64, sum, ir.ConstInt(31))
			sum = b.Bin(ir.OpAdd, ir.I64, mixed, v)
		}
	}
	b.Ret(sum)
	main.Renumber()

	if err := ir.Verify(m); err != nil {
		panic(fmt.Sprintf("progen: seed %d produced an invalid module: %v", seed, err))
	}
	return m
}
