package progen

import (
	"reflect"
	"testing"

	"hippocrates/internal/ir"
	"hippocrates/internal/static"
)

// editCfg is a reduced layered module so the edit-sequence smoke test
// stays fast under -race: 12 leaves + 4 mids + main = 17 functions.
var editCfg = LayeredConfig{Leaves: 12, Mids: 4, LeafOps: 8, PMCells: 2}

// TestLayeredDeterministic: two builds from the same config must agree
// function-by-function on content hashes — the property that lets a
// benchmark compare a fresh cold module against an edited warm one.
func TestLayeredDeterministic(t *testing.T) {
	a, b := Layered(editCfg), Layered(editCfg)
	for _, fa := range a.Funcs {
		if fa.IsDecl() {
			continue
		}
		fb := b.Func(fa.Name)
		if fb == nil {
			t.Fatalf("second build lacks @%s", fa.Name)
		}
		if ir.FuncFingerprint(fa) != ir.FuncFingerprint(fb) {
			t.Errorf("@%s fingerprints differ across identical builds", fa.Name)
		}
	}
	if got := len(a.Funcs); got < 17 {
		t.Errorf("layered module has %d funcs, want >= 17", got)
	}
}

// TestEditSequenceWarmIdentical replays the deterministic edit sequence
// against one shared summary store: after every edit the warm analysis
// must equal a storeless cold analysis of the same module, and the miss
// counts must match each edit kind's invalidation footprint.
func TestEditSequenceWarmIdentical(t *testing.T) {
	m := Layered(editCfg)
	store := static.NewStore(0)
	if _, err := static.AnalyzeWithStore(m, "main", store); err != nil {
		t.Fatal(err)
	}
	for _, e := range Edits(editCfg) {
		if err := ApplyEdit(m, e); err != nil {
			t.Fatal(err)
		}
		cold, err := static.Analyze(m, "main")
		if err != nil {
			t.Fatalf("%s: cold: %v", e, err)
		}
		warm, err := static.AnalyzeWithStore(m, "main", store)
		if err != nil {
			t.Fatalf("%s: warm: %v", e, err)
		}
		if cold.Summary() != warm.Summary() {
			t.Errorf("%s: warm summary differs from cold:\n--- cold ---\n%s--- warm ---\n%s",
				e, cold.Summary(), warm.Summary())
		}
		if !reflect.DeepEqual(cold.Reports, warm.Reports) {
			t.Errorf("%s: warm reports differ structurally from cold", e)
		}
		if !reflect.DeepEqual(cold.Lints, warm.Lints) {
			t.Errorf("%s: warm lints differ structurally from cold", e)
		}
		switch e.Kind {
		case EditValue, EditDeadLocal:
			// Summary-neutral: only the edited function recomputes.
			if warm.Incr.SumMisses != 1 {
				t.Errorf("%s: %d summary misses, want exactly 1 (incr=%+v)", e, warm.Incr.SumMisses, warm.Incr)
			}
		case EditAddPersist:
			// The summary changed: the edited leaf, at least one mid, and
			// main must all recompute.
			if warm.Incr.SumMisses < 3 {
				t.Errorf("%s: %d summary misses, want >= 3 (incr=%+v)", e, warm.Incr.SumMisses, warm.Incr)
			}
		}
		if warm.Incr.SumHits == 0 {
			t.Errorf("%s: warm run replayed nothing (incr=%+v)", e, warm.Incr)
		}
	}
}

// TestApplyEditMovesFingerprint: every edit kind must change its
// target's content hash (otherwise the cache could serve a stale body).
func TestApplyEditMovesFingerprint(t *testing.T) {
	for _, e := range Edits(editCfg) {
		m := Layered(editCfg)
		before := ir.FuncFingerprint(m.Func(e.Target))
		if err := ApplyEdit(m, e); err != nil {
			t.Fatal(err)
		}
		if after := ir.FuncFingerprint(m.Func(e.Target)); after == before {
			t.Errorf("%s left @%s's fingerprint unchanged", e, e.Target)
		}
	}
}
