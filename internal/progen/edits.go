package progen

import (
	"fmt"

	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
)

// This file generates *edit sequences*: a deterministic layered module
// plus a stream of small, realistic source edits applied to it in place.
// It is the workload the incremental summary store is benchmarked and
// smoke-tested against — an editor loop where one function changes and
// everything else should replay from cache.

// LayeredConfig bounds the layered module: Leaves store helpers with
// substantial straight-line bodies, Mids fan out over the leaves, and
// main drives every mid. Zero fields take the defaults.
type LayeredConfig struct {
	// Leaves is the number of leaf store helpers (default 40).
	Leaves int
	// Mids is the number of mid-tier functions calling leaves (default 10).
	Mids int
	// LeafOps is the number of persisted stores per leaf body (default 24);
	// it scales how much analysis work one leaf is worth.
	LeafOps int
	// PMCells is the number of persistent 8-slot arrays (default 4).
	PMCells int
}

// DefaultLayeredConfig returns the bench/smoke scale: 40 leaves + 10 mids
// + main = 51 functions.
func DefaultLayeredConfig() LayeredConfig {
	return LayeredConfig{Leaves: 40, Mids: 10, LeafOps: 24, PMCells: 4}
}

func (cfg *LayeredConfig) normalize() {
	d := DefaultLayeredConfig()
	if cfg.Leaves <= 0 {
		cfg.Leaves = d.Leaves
	}
	if cfg.Mids <= 0 {
		cfg.Mids = d.Mids
	}
	if cfg.LeafOps <= 0 {
		cfg.LeafOps = d.LeafOps
	}
	if cfg.PMCells <= 0 {
		cfg.PMCells = d.PMCells
	}
}

func leafName(i int) string { return fmt.Sprintf("leaf%d", i) }
func midName(i int) string  { return fmt.Sprintf("mid%d", i) }

// Layered builds the deterministic layered module. Unlike Generate it
// takes no seed: the same config always yields the same module, so a
// cold analysis and a warm re-analysis of an edited copy are comparable.
// Leaves persist correctly (store+flush, one trailing fence); main holds
// one deliberate unflushed store so the analysis always has a report to
// reproduce byte-identically.
func Layered(cfg LayeredConfig) *ir.Module {
	cfg.normalize()
	m := ir.NewModule("progen-layered")
	for _, d := range interp.StdDecls() {
		m.AddFunc(d)
	}
	for i := 0; i < cfg.PMCells; i++ {
		m.AddGlobal(&ir.Global{Name: fmt.Sprintf("cell%d", i), Elem: ir.Array(ir.I64, 8), PM: true})
	}
	m.AddGlobal(&ir.Global{Name: "vol", Elem: ir.Array(ir.I64, 8)})

	leaves := make([]*ir.Func, cfg.Leaves)
	for i := range leaves {
		fn := ir.NewFunc(leafName(i), ir.Void,
			&ir.Param{Name: "p", Ty: ir.Ptr}, &ir.Param{Name: "v", Ty: ir.I64})
		m.AddFunc(fn)
		b := ir.NewBuilder(fn)
		persist := func(k, delta int) {
			slot := b.PtrAdd(fn.Params[0], ir.ConstInt(int64((k+delta)%8)), 8, 0)
			val := b.Bin(ir.OpAdd, ir.I64, fn.Params[1], ir.ConstInt(int64(i*cfg.LeafOps+k+delta)))
			b.Store(ir.I64, val, slot)
			b.Flush(ir.CLWB, slot)
		}
		for k := 0; k < cfg.LeafOps; k++ {
			b.SetLoc(ir.Loc{File: "layered.pmc", Line: 1000 + i*100 + k})
			if k%3 != 0 {
				// A diamond: real leaf bodies branch, and merge points are
				// what make the flow analysis worth caching.
				cond := b.Cmp(ir.OpLt, fn.Params[1], ir.ConstInt(int64(k)))
				then := b.NewBlock("then")
				els := b.NewBlock("else")
				merge := b.NewBlock("merge")
				b.Br(cond, then, els)
				b.SetBlock(then)
				persist(k, 0)
				b.Jmp(merge)
				b.SetBlock(els)
				persist(k, 1)
				b.Jmp(merge)
				b.SetBlock(merge)
			} else {
				persist(k, 0)
			}
		}
		b.Fence(ir.SFENCE)
		b.Ret(nil)
		fn.Renumber()
		leaves[i] = fn
	}

	fan := cfg.Leaves / cfg.Mids
	if fan < 1 {
		fan = 1
	}
	mids := make([]*ir.Func, cfg.Mids)
	for j := range mids {
		fn := ir.NewFunc(midName(j), ir.Void,
			&ir.Param{Name: "p", Ty: ir.Ptr}, &ir.Param{Name: "v", Ty: ir.I64})
		m.AddFunc(fn)
		b := ir.NewBuilder(fn)
		b.SetLoc(ir.Loc{File: "layered.pmc", Line: 100 + j})
		for t := 0; t < fan; t++ {
			callee := leaves[(j*fan+t)%cfg.Leaves]
			v := b.Bin(ir.OpAdd, ir.I64, fn.Params[1], ir.ConstInt(int64(t)))
			b.Call(callee, fn.Params[0], v)
		}
		// Every mid also shares leaf 0, so one leaf edit that changes its
		// summary invalidates more than one caller.
		b.Call(leaves[0], fn.Params[0], fn.Params[1])
		b.Ret(nil)
		fn.Renumber()
		mids[j] = fn
	}

	main := ir.NewFunc("main", ir.I64)
	m.AddFunc(main)
	b := ir.NewBuilder(main)
	for j, mid := range mids {
		b.SetLoc(ir.Loc{File: "layered.pmc", Line: j + 1})
		b.Call(mid, m.Global(fmt.Sprintf("cell%d", j%cfg.PMCells)), ir.ConstInt(int64(j)))
	}
	// One deliberate durability bug so reports are non-empty.
	b.SetLoc(ir.Loc{File: "layered.pmc", Line: 90})
	bare := b.PtrAdd(m.Global("cell0"), ir.ConstInt(7), 8, 0)
	b.Store(ir.I64, ir.ConstInt(41), bare)
	b.Call(m.Func("pm_checkpoint"))
	sum := ir.Value(ir.ConstInt(0))
	for i := 0; i < cfg.PMCells; i++ {
		base := m.Global(fmt.Sprintf("cell%d", i))
		for s := 0; s < 8; s++ {
			slot := b.PtrAdd(base, ir.ConstInt(int64(s)), 8, 0)
			v := b.Load(ir.I64, slot)
			mixed := b.Bin(ir.OpMul, ir.I64, sum, ir.ConstInt(31))
			sum = b.Bin(ir.OpAdd, ir.I64, mixed, v)
		}
	}
	b.Ret(sum)
	main.Renumber()

	if err := ir.Verify(m); err != nil {
		panic(fmt.Sprintf("progen: layered config %+v produced an invalid module: %v", cfg, err))
	}
	return m
}

// EditKind classifies one simulated source edit.
type EditKind int

const (
	// EditValue changes a stored constant inside the target function.
	// Its content hash changes — the function itself re-analyzes — but
	// its persistency summary does not, so every caller replays from
	// cache (the summary-neutral fast path).
	EditValue EditKind = iota
	// EditDeadLocal appends a store to volatile memory before the return:
	// a bigger body change that is still summary-neutral.
	EditDeadLocal
	// EditAddPersist appends an unflushed store through the pointer
	// parameter: the function's summary changes, so its transitive
	// callers' cache keys change too and the whole chain re-analyzes.
	EditAddPersist
)

func (k EditKind) String() string {
	switch k {
	case EditValue:
		return "value"
	case EditDeadLocal:
		return "dead-local"
	case EditAddPersist:
		return "add-persist"
	}
	return fmt.Sprintf("EditKind(%d)", int(k))
}

// EditStep is one edit: a kind applied to a named function.
type EditStep struct {
	Kind   EditKind
	Target string
}

func (e EditStep) String() string { return e.Kind.String() + "@" + e.Target }

// Edits returns the deterministic edit sequence for a Layered(cfg)
// module: summary-neutral edits on scattered leaves with one
// summary-changing edit in the middle, the mix an editing session
// produces.
func Edits(cfg LayeredConfig) []EditStep {
	cfg.normalize()
	pick := func(i int) string { return leafName(i % cfg.Leaves) }
	return []EditStep{
		{EditValue, pick(1)},
		{EditDeadLocal, pick(cfg.Leaves / 2)},
		{EditValue, pick(cfg.Leaves - 1)},
		{EditAddPersist, pick(cfg.Leaves / 3)},
		{EditValue, pick(2)},
		{EditDeadLocal, pick(2*cfg.Leaves/3 + 1)},
	}
}

// ApplyEdit mutates m in place according to step, keeping the module
// verifier-clean. The target function is renumbered; nothing else moves.
func ApplyEdit(m *ir.Module, step EditStep) error {
	fn := m.Func(step.Target)
	if fn == nil || fn.IsDecl() {
		return fmt.Errorf("progen: edit target @%s not found or has no body", step.Target)
	}
	switch step.Kind {
	case EditValue:
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if !in.Op.IsBinary() {
					continue
				}
				for i, arg := range in.Args {
					if c, ok := arg.(*ir.Const); ok && c.Ty == ir.I64 {
						in.Args[i] = ir.ConstInt(c.Val + 1)
						fn.Renumber()
						return verifyEdited(m, step)
					}
				}
			}
		}
		return fmt.Errorf("progen: %s: @%s has no i64 constant operand to edit", step, step.Target)
	case EditDeadLocal, EditAddPersist:
		last := fn.Blocks[len(fn.Blocks)-1]
		ret := last.Terminator()
		if ret == nil {
			return fmt.Errorf("progen: %s: @%s last block lacks a terminator", step, step.Target)
		}
		var base ir.Value
		if step.Kind == EditDeadLocal {
			g := m.Global("vol")
			if g == nil {
				return fmt.Errorf("progen: %s: module has no @vol global", step)
			}
			base = g
		} else {
			if len(fn.Params) == 0 || fn.Params[0].Ty != ir.Ptr {
				return fmt.Errorf("progen: %s: @%s has no pointer parameter", step, step.Target)
			}
			base = fn.Params[0]
		}
		var val ir.Value = ir.ConstInt(7)
		if len(fn.Params) > 1 && fn.Params[1].Ty == ir.I64 {
			val = fn.Params[1]
		}
		slot := &ir.Instr{Op: ir.OpPtrAdd, Ty: ir.Ptr, Name: fmt.Sprintf("edit%d", fn.NumInstrs()), Loc: ret.Loc,
			Args: []ir.Value{base, ir.ConstInt(5)}, Scale: 8}
		st := &ir.Instr{Op: ir.OpStore, Ty: ir.Void, StoreTy: ir.I64, Loc: ret.Loc,
			Args: []ir.Value{val, slot}}
		last.InsertBefore(ret, slot)
		last.InsertBefore(ret, st)
		fn.Renumber()
		return verifyEdited(m, step)
	}
	return fmt.Errorf("progen: unknown edit kind %d", int(step.Kind))
}

func verifyEdited(m *ir.Module, step EditStep) error {
	if err := ir.Verify(m); err != nil {
		return fmt.Errorf("progen: %s broke the module: %w", step, err)
	}
	return nil
}
