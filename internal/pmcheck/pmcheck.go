// Package pmcheck is the durability-bug detector: the repository's
// equivalent of Intel's pmemcheck. It replays a PM operation trace through
// the pmem durability state machine and reports, per static store site,
// whether the store can reach a durability point (a pm_checkpoint or the
// end of the program) without being flushed and fenced. Reports carry
// everything the fixer needs: the offending store's call stack, the bug
// class, and the durability points that observed the violation.
package pmcheck

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hippocrates/internal/pmem"
	"hippocrates/internal/trace"
)

// Report is one durability bug, aggregated over all dynamic occurrences of
// the same static store site.
type Report struct {
	// Store is a representative store event (the first dynamic instance
	// that violated).
	Store *trace.Event
	// NeedFlush / NeedFence record which mechanisms were missing across
	// the observed violations (a site can be missing-flush at one
	// durability point and missing-flush&fence at another; the union is
	// what the fix must provide).
	NeedFlush bool
	NeedFence bool
	// Checkpoints are the durability-point events at which the site was
	// caught non-durable, deduplicated by site.
	Checkpoints []*trace.Event
	// Stacks are the distinct call stacks (innermost first) through which
	// the site was reached, deduplicated; the hoisting heuristic only
	// considers call sites common to all of them.
	Stacks [][]trace.Frame
	// FlushSites are the sites of flush instructions that flushed the
	// store when a missing-fence violation was observed — the fence fix
	// is inserted after them (for non-temporal stores the "flush site" is
	// the store itself).
	FlushSites []trace.Frame
	// Occurrences counts dynamic violations.
	Occurrences int
	// CrossThread marks a report produced by cross-thread publish
	// detection: the store (issued by thread Tid) was still pending when
	// thread PubTid made a pointer to its cache line durable. The fix is
	// the same as for any unordered store — flush and fence in the
	// issuing thread before the publish — so NeedFlush/NeedFence are
	// both set.
	CrossThread bool
	// Tid is the thread that issued the store; PubTid the thread that
	// durably published a pointer to it (CrossThread reports only).
	Tid    int
	PubTid int
}

// Class returns the paper's bug classification for the report.
func (r *Report) Class() pmem.BugClass {
	switch {
	case r.NeedFlush && r.NeedFence:
		return pmem.MissingFlushFence
	case r.NeedFlush:
		return pmem.MissingFlush
	default:
		return pmem.MissingFence
	}
}

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s at %s", r.Class(), r.Store.Site())
	fmt.Fprintf(&b, " (%d occurrence(s), addr 0x%x size %d)", r.Occurrences, r.Store.Addr, r.Store.Size)
	if r.CrossThread {
		fmt.Fprintf(&b, "\n\tunordered publish: store by thread %d was pending when thread %d durably published its address", r.Tid, r.PubTid)
	}
	for _, f := range r.Store.Stack[1:] {
		fmt.Fprintf(&b, "\n\tcalled from %s", f)
	}
	return b.String()
}

// SiteKey identifies a static program location (for deduplication).
type SiteKey struct {
	Func    string
	InstrID int
}

// Key returns the report's site key.
func (r *Report) Key() SiteKey {
	s := r.Store.Site()
	return SiteKey{Func: s.Func, InstrID: s.InstrID}
}

// Result is the detector output for one trace.
type Result struct {
	Reports []*Report
	// RedundantFlushes / RedundantFences are performance diagnostics
	// (§7): reported, never fixed.
	RedundantFlushes []*trace.Event
	RedundantFences  []*trace.Event
	// Stats.
	Stores      int
	Flushes     int
	Fences      int
	Checkpoints int
	// Threads is the number of distinct threads observed in the trace
	// (1 for single-threaded programs).
	Threads int
	// CrossThreadPublishes counts dynamic unordered cross-thread
	// publish observations (before per-site aggregation).
	CrossThreadPublishes int
	// LinesTouched counts the distinct cache lines written by the
	// trace's stores — the working-set figure the telemetry layer
	// reports. Computed during the offline replay, never by the
	// interpreter.
	LinesTouched int
}

// Clean reports whether no durability bugs were found.
func (res *Result) Clean() bool { return len(res.Reports) == 0 }

// UniqueSites counts the distinct static store sites among the reports —
// how pmemcheck (and the paper) counts bugs. A site reached through
// several call chains yields several reports (each may need its own
// fix placement) but remains one bug.
func (res *Result) UniqueSites() int {
	seen := map[SiteKey]bool{}
	for _, r := range res.Reports {
		seen[r.Key()] = true
	}
	return len(seen)
}

// Summary renders a human-readable digest.
func (res *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pmcheck: %d store(s), %d flush(es), %d fence(s), %d durability point(s)\n",
		res.Stores, res.Flushes, res.Fences, res.Checkpoints)
	if res.Clean() {
		b.WriteString("pmcheck: no durability bugs found\n")
	} else {
		fmt.Fprintf(&b, "pmcheck: %d durability bug(s):\n", len(res.Reports))
		for i, r := range res.Reports {
			fmt.Fprintf(&b, "[%d] %s\n", i+1, r)
		}
	}
	if n := res.CrossThreadPublishes; n > 0 {
		fmt.Fprintf(&b, "pmcheck: %d cross-thread unordered publish(es) observed\n", n)
	}
	if n := len(res.RedundantFlushes); n > 0 {
		fmt.Fprintf(&b, "pmcheck: %d redundant flush(es) (performance diagnostic)\n", n)
	}
	if n := len(res.RedundantFences); n > 0 {
		fmt.Fprintf(&b, "pmcheck: %d redundant fence(s) (performance diagnostic)\n", n)
	}
	return b.String()
}

// Check replays the trace and aggregates durability violations by store
// site. Reports are ordered by the first violating store's sequence.
func Check(t *trace.Trace) *Result {
	// Reports deduplicate by (store site, call stack): the same static
	// store reached through two different call chains is two bugs — each
	// chain needs its own (possibly hoisted) fix, and the persistent
	// subprogram transformation naturally shares clones between them.
	type reportKey struct {
		site  SiteKey
		stack string
	}
	res := &Result{}
	tracker := pmem.NewTracker()
	lines := make(map[uint64]bool)
	touch := func(addr uint64, size int) {
		last := addr
		if size > 0 {
			last = addr + uint64(size) - 1
		}
		for l := pmem.LineOf(addr); l <= pmem.LineOf(last); l += pmem.LineSize {
			lines[l] = true
		}
	}
	bySeq := make(map[int]*trace.Event)
	reports := make(map[reportKey]*Report)
	ckptSeen := make(map[reportKey]map[SiteKey]bool)
	flushSeen := make(map[reportKey]map[SiteKey]bool)
	// Stack keys are built once per event: a pending store is re-examined
	// at every later durability point.
	stackKeys := make(map[*trace.Event]string)
	keyOf := func(e *trace.Event) string {
		if k, ok := stackKeys[e]; ok {
			return k
		}
		k := stackKey(e.Stack)
		stackKeys[e] = k
		return k
	}

	maxTid := 0
	seeTid := func(tid int) {
		if tid > maxTid {
			maxTid = tid
		}
	}
	// storeData reconstructs a store's payload for replay: bytes are zero
	// except when the event carries a value (8-byte stores of PM addresses
	// record Val so publish detection can follow the pointer).
	storeData := func(e *trace.Event) []byte {
		data := make([]byte, e.Size)
		if e.Val != 0 && e.Size == 8 {
			v := e.Val
			for i := 0; i < 8; i++ {
				data[i] = byte(v)
				v >>= 8
			}
		}
		return data
	}

	for _, e := range t.Events {
		switch e.Kind {
		case trace.KindStore:
			res.Stores++
			bySeq[e.Seq] = e
			touch(e.Addr, e.Size)
			seeTid(e.Tid)
			tracker.OnStoreT(e.Seq, e.Tid, e.Addr, storeData(e))
		case trace.KindNTStore:
			res.Stores++
			bySeq[e.Seq] = e
			touch(e.Addr, e.Size)
			seeTid(e.Tid)
			tracker.OnNTStoreT(e.Seq, e.Tid, e.Addr, storeData(e))
		case trace.KindFlush:
			res.Flushes++
			bySeq[e.Seq] = e
			seeTid(e.Tid)
			before := len(tracker.RedundantFlushes)
			tracker.OnFlushT(e.Seq, e.Tid, e.FlushK.Ordered(), e.Addr)
			if len(tracker.RedundantFlushes) > before {
				res.RedundantFlushes = append(res.RedundantFlushes, e)
			}
		case trace.KindFence:
			res.Fences++
			seeTid(e.Tid)
			before := tracker.RedundantFences
			tracker.OnFenceT(e.Seq, e.Tid)
			if tracker.RedundantFences > before {
				res.RedundantFences = append(res.RedundantFences, e)
			}
		case trace.KindCheckpoint:
			res.Checkpoints++
			for _, v := range tracker.OnCheckpoint(e.Seq) {
				se := bySeq[v.Store.Seq]
				if se == nil {
					continue
				}
				site := reportKey{
					site:  SiteKey{Func: se.Site().Func, InstrID: se.Site().InstrID},
					stack: keyOf(se),
				}
				rep := reports[site]
				if rep == nil {
					rep = &Report{Store: se, Stacks: [][]trace.Frame{se.Stack}}
					reports[site] = rep
					ckptSeen[site] = make(map[SiteKey]bool)
					flushSeen[site] = make(map[SiteKey]bool)
				}
				rep.Occurrences++
				switch v.Class {
				case pmem.MissingFlush:
					rep.NeedFlush = true
				case pmem.MissingFence:
					rep.NeedFence = true
				case pmem.MissingFlushFence:
					rep.NeedFlush = true
					rep.NeedFence = true
				}
				if v.Class == pmem.MissingFence && v.Store.FlushSeq >= 0 {
					if fe := bySeq[v.Store.FlushSeq]; fe != nil {
						fs := fe.Site()
						fk := SiteKey{Func: fs.Func, InstrID: fs.InstrID}
						if !flushSeen[site][fk] {
							flushSeen[site][fk] = true
							rep.FlushSites = append(rep.FlushSites, fs)
						}
					}
				}
				ck := SiteKey{Func: e.Site().Func, InstrID: e.Site().InstrID}
				if !ckptSeen[site][ck] {
					ckptSeen[site][ck] = true
					rep.Checkpoints = append(rep.Checkpoints, e)
				}
			}
		}
	}
	// Cross-thread unordered publishes: the tracker flagged stores that
	// were still pending when another thread durably published a pointer
	// to their cache line. Each folds into the referent store's site
	// report — the fix (flush + fence in the issuing thread) is the same
	// mechanism as any unordered store, but the provenance explains why
	// program order alone never exposes it.
	res.CrossThreadPublishes = len(tracker.Publishes)
	for _, p := range tracker.Publishes {
		se := bySeq[p.Referent.Seq]
		if se == nil {
			continue
		}
		site := reportKey{
			site:  SiteKey{Func: se.Site().Func, InstrID: se.Site().InstrID},
			stack: keyOf(se),
		}
		rep := reports[site]
		if rep == nil {
			rep = &Report{Store: se, Stacks: [][]trace.Frame{se.Stack}}
			reports[site] = rep
			ckptSeen[site] = make(map[SiteKey]bool)
			flushSeen[site] = make(map[SiteKey]bool)
		}
		rep.Occurrences++
		rep.NeedFlush = true
		rep.NeedFence = true
		rep.CrossThread = true
		rep.Tid = p.Referent.Tid
		rep.PubTid = p.PubTid
	}
	for _, r := range reports {
		res.Reports = append(res.Reports, r)
	}
	sort.Slice(res.Reports, func(i, j int) bool {
		return res.Reports[i].Store.Seq < res.Reports[j].Store.Seq
	})
	res.LinesTouched = len(lines)
	res.Threads = maxTid + 1
	return res
}

// Needs records which durability mechanisms a store site lacks, with the
// bug classes decomposed into their mechanism components (missing-flush&fence
// sets both). Detectors that aggregate differently across call stacks and
// durability points — the dynamic checker unions class flags per (site,
// stack), a static checker per CFG path — still agree on this shape, so it
// is the unit of the static/dynamic agreement harness.
type Needs struct {
	Flush bool
	Fence bool
}

// Covers reports whether n provides at least everything o needs.
func (n Needs) Covers(o Needs) bool {
	return (n.Flush || !o.Flush) && (n.Fence || !o.Fence)
}

func (n Needs) String() string {
	switch {
	case n.Flush && n.Fence:
		return "flush+fence"
	case n.Flush:
		return "flush"
	case n.Fence:
		return "fence"
	}
	return "none"
}

// NeedsBySite folds the reports into per-site mechanism needs.
func (res *Result) NeedsBySite() map[SiteKey]Needs {
	out := make(map[SiteKey]Needs, len(res.Reports))
	for _, r := range res.Reports {
		n := out[r.Key()]
		n.Flush = n.Flush || r.NeedFlush
		n.Fence = n.Fence || r.NeedFence
		out[r.Key()] = n
	}
	return out
}

// DedupeByClass merges duplicate reports of one (store site, bug class)
// observation into one, so a hot loop that drives the same buggy store
// through N dynamic violations reaches the fixer once. The merged report
// keeps the earliest representative store, sums occurrences, and unions
// stacks, checkpoints, and flush sites. Two reports stay separate when
// their bug classes differ (they need different fixes) or when they were
// reached through different call-chain sets: each chain may need its own,
// differently hoisted fix, and collapsing them would artificially cap the
// hoisting heuristic at the chains' common call suffix (defeating §4.2.4
// clone reuse).
func DedupeByClass(reports []*Report) []*Report {
	type key struct {
		site   SiteKey
		flush  bool
		fence  bool
		stacks string
	}
	stacksKeyOf := func(r *Report) string {
		keys := make([]string, 0, len(r.Stacks))
		for _, s := range r.Stacks {
			keys = append(keys, stackKey(s))
		}
		sort.Strings(keys)
		return strings.Join(keys, "|")
	}
	merged := make(map[key]*Report)
	var order []key
	for _, r := range reports {
		k := key{site: r.Key(), flush: r.NeedFlush, fence: r.NeedFence, stacks: stacksKeyOf(r)}
		m := merged[k]
		if m == nil {
			cp := *r
			cp.Stacks = append([][]trace.Frame(nil), r.Stacks...)
			cp.Checkpoints = append([]*trace.Event(nil), r.Checkpoints...)
			cp.FlushSites = append([]trace.Frame(nil), r.FlushSites...)
			merged[k] = &cp
			order = append(order, k)
			continue
		}
		if r.Store.Seq < m.Store.Seq {
			m.Store = r.Store
		}
		m.Occurrences += r.Occurrences
		if r.CrossThread && !m.CrossThread {
			m.CrossThread = true
			m.Tid, m.PubTid = r.Tid, r.PubTid
		}
		seenStack := make(map[string]bool, len(m.Stacks))
		for _, s := range m.Stacks {
			seenStack[stackKey(s)] = true
		}
		for _, s := range r.Stacks {
			if !seenStack[stackKey(s)] {
				seenStack[stackKey(s)] = true
				m.Stacks = append(m.Stacks, s)
			}
		}
		seenCkpt := make(map[SiteKey]bool, len(m.Checkpoints))
		for _, c := range m.Checkpoints {
			seenCkpt[SiteKey{Func: c.Site().Func, InstrID: c.Site().InstrID}] = true
		}
		for _, c := range r.Checkpoints {
			ck := SiteKey{Func: c.Site().Func, InstrID: c.Site().InstrID}
			if !seenCkpt[ck] {
				seenCkpt[ck] = true
				m.Checkpoints = append(m.Checkpoints, c)
			}
		}
		seenFlush := make(map[SiteKey]bool, len(m.FlushSites))
		for _, f := range m.FlushSites {
			seenFlush[SiteKey{Func: f.Func, InstrID: f.InstrID}] = true
		}
		for _, f := range r.FlushSites {
			fk := SiteKey{Func: f.Func, InstrID: f.InstrID}
			if !seenFlush[fk] {
				seenFlush[fk] = true
				m.FlushSites = append(m.FlushSites, f)
			}
		}
	}
	out := make([]*Report, 0, len(order))
	for _, k := range order {
		out = append(out, merged[k])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Store.Seq < out[j].Store.Seq })
	return out
}

// stackKey renders a stack as a deduplication key.
func stackKey(stack []trace.Frame) string {
	var b strings.Builder
	for _, f := range stack {
		b.WriteString(f.Func)
		b.WriteByte('@')
		b.WriteString(strconv.Itoa(f.InstrID))
		b.WriteByte(';')
	}
	return b.String()
}
