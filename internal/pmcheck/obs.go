package pmcheck

import (
	"hippocrates/internal/obs"
	"hippocrates/internal/trace"
)

// CheckObs runs Check under a "detect" child span of sp, publishing the
// replay statistics as pmcheck.* counters and a per-report occurrence
// histogram. With a nil span it is exactly Check.
func CheckObs(sp *obs.Span, t *trace.Trace) *Result {
	dsp := sp.Start("detect")
	defer dsp.End()
	res := Check(t)
	res.RecordObs(dsp)
	return res
}

// RecordObs publishes the detector result into the span's recorder.
func (res *Result) RecordObs(sp *obs.Span) {
	if sp == nil {
		return
	}
	sp.Add("pmcheck.stores", int64(res.Stores))
	sp.Add("pmcheck.flushes", int64(res.Flushes))
	sp.Add("pmcheck.fences", int64(res.Fences))
	sp.Add("pmcheck.checkpoints", int64(res.Checkpoints))
	sp.Add("pmcheck.reports", int64(len(res.Reports)))
	sp.Add("pmcheck.unique_sites", int64(res.UniqueSites()))
	sp.Add("pmcheck.lines_touched", int64(res.LinesTouched))
	sp.Add("pmcheck.redundant_flushes", int64(len(res.RedundantFlushes)))
	sp.Add("pmcheck.redundant_fences", int64(len(res.RedundantFences)))
	for _, r := range res.Reports {
		sp.Observe("report.occurrences", int64(r.Occurrences))
	}
}
