package pmcheck

import (
	"strings"
	"testing"

	"hippocrates/internal/ir"
	"hippocrates/internal/pmem"
	"hippocrates/internal/trace"
)

const pm = pmem.PMBase

func ev(k trace.Kind, fn string, id int) *trace.Event {
	return &trace.Event{Kind: k, Stack: []trace.Frame{{Func: fn, InstrID: id}}}
}

func store(addr uint64, fn string, id int) *trace.Event {
	e := ev(trace.KindStore, fn, id)
	e.Addr, e.Size = addr, 8
	return e
}

func flush(addr uint64, fn string, id int) *trace.Event {
	e := ev(trace.KindFlush, fn, id)
	e.Addr = addr
	e.FlushK = ir.CLWB
	return e
}

func mkTrace(events ...*trace.Event) *trace.Trace {
	t := &trace.Trace{Program: "test"}
	for _, e := range events {
		t.Append(e)
	}
	return t
}

func TestCleanTrace(t *testing.T) {
	res := Check(mkTrace(
		store(pm, "f", 1),
		flush(pm, "f", 2),
		ev(trace.KindFence, "f", 3),
		ev(trace.KindCheckpoint, "f", 4),
	))
	if !res.Clean() {
		t.Fatalf("reports = %+v, want clean", res.Reports)
	}
	if res.Stores != 1 || res.Flushes != 1 || res.Fences != 1 || res.Checkpoints != 1 {
		t.Errorf("stats = %+v", res)
	}
	if !strings.Contains(res.Summary(), "no durability bugs") {
		t.Error("summary should report clean")
	}
}

func TestMissingFlushFence(t *testing.T) {
	res := Check(mkTrace(
		store(pm, "f", 1),
		ev(trace.KindCheckpoint, "f", 2),
	))
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d", len(res.Reports))
	}
	r := res.Reports[0]
	if r.Class() != pmem.MissingFlushFence {
		t.Errorf("class = %v", r.Class())
	}
	if r.Occurrences != 1 || len(r.Checkpoints) != 1 {
		t.Errorf("report = %+v", r)
	}
}

func TestMissingFence(t *testing.T) {
	res := Check(mkTrace(
		store(pm, "f", 1),
		flush(pm, "f", 2),
		ev(trace.KindCheckpoint, "f", 3),
	))
	if len(res.Reports) != 1 || res.Reports[0].Class() != pmem.MissingFence {
		t.Fatalf("reports = %+v", res.Reports)
	}
}

func TestMissingFlushOnly(t *testing.T) {
	// A fence after the store exists, the flush does not.
	res := Check(mkTrace(
		store(pm, "f", 1),
		ev(trace.KindFence, "f", 2),
		ev(trace.KindCheckpoint, "f", 3),
	))
	if len(res.Reports) != 1 || res.Reports[0].Class() != pmem.MissingFlush {
		t.Fatalf("reports = %+v", res.Reports)
	}
}

func TestNTStoreNeedsFence(t *testing.T) {
	e := ev(trace.KindNTStore, "f", 1)
	e.Addr, e.Size = pm, 8
	res := Check(mkTrace(e, ev(trace.KindCheckpoint, "f", 2)))
	if len(res.Reports) != 1 || res.Reports[0].Class() != pmem.MissingFence {
		t.Fatalf("reports = %+v", res.Reports)
	}
}

func TestDedupAcrossDynamicInstances(t *testing.T) {
	// The same static site stores twice (different addresses); a single
	// report with two occurrences.
	res := Check(mkTrace(
		store(pm, "f", 1),
		store(pm+128, "f", 1),
		ev(trace.KindCheckpoint, "f", 9),
	))
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d, want 1 (deduplicated)", len(res.Reports))
	}
	if res.Reports[0].Occurrences != 2 {
		t.Errorf("occurrences = %d, want 2", res.Reports[0].Occurrences)
	}
}

func TestClassUnionAcrossCheckpoints(t *testing.T) {
	// First checkpoint: dirty with no prior fence (flush&fence);
	// a later fence then a new dirty store at the same site: the merged
	// report still needs both mechanisms.
	res := Check(mkTrace(
		store(pm, "f", 1),
		ev(trace.KindCheckpoint, "g", 5),
		ev(trace.KindFence, "f", 2),
		store(pm+64, "f", 1),
		ev(trace.KindCheckpoint, "g", 6),
	))
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d", len(res.Reports))
	}
	r := res.Reports[0]
	if !r.NeedFlush || !r.NeedFence {
		t.Errorf("needs = flush:%v fence:%v, want both", r.NeedFlush, r.NeedFence)
	}
	if len(r.Checkpoints) != 2 {
		t.Errorf("checkpoints = %d, want 2 distinct sites", len(r.Checkpoints))
	}
}

func TestCheckpointDedup(t *testing.T) {
	// The same checkpoint site observed twice records once.
	res := Check(mkTrace(
		store(pm, "f", 1),
		ev(trace.KindCheckpoint, "g", 5),
		ev(trace.KindCheckpoint, "g", 5),
	))
	if len(res.Reports) != 1 || len(res.Reports[0].Checkpoints) != 1 {
		t.Fatalf("reports = %+v", res.Reports)
	}
	if res.Reports[0].Occurrences != 2 {
		t.Errorf("occurrences = %d (one per dynamic checkpoint)", res.Reports[0].Occurrences)
	}
}

func TestRedundantDiagnostics(t *testing.T) {
	res := Check(mkTrace(
		flush(pm, "f", 1),           // nothing to flush
		ev(trace.KindFence, "f", 2), // nothing to drain
		store(pm, "f", 3),
		flush(pm, "f", 4),
		ev(trace.KindFence, "f", 5),
		ev(trace.KindCheckpoint, "f", 6),
	))
	if !res.Clean() {
		t.Fatalf("reports = %+v", res.Reports)
	}
	if len(res.RedundantFlushes) != 1 || len(res.RedundantFences) != 1 {
		t.Errorf("redundant = %d flushes, %d fences, want 1 each",
			len(res.RedundantFlushes), len(res.RedundantFences))
	}
	if !strings.Contains(res.Summary(), "redundant") {
		t.Error("summary should mention redundant operations")
	}
}

func TestReportOrderingAndString(t *testing.T) {
	res := Check(mkTrace(
		store(pm, "b", 1),
		store(pm+64, "a", 2),
		ev(trace.KindCheckpoint, "f", 3),
	))
	if len(res.Reports) != 2 {
		t.Fatalf("reports = %d", len(res.Reports))
	}
	if res.Reports[0].Store.Site().Func != "b" {
		t.Error("reports not in first-occurrence order")
	}
	s := res.Reports[0].String()
	if !strings.Contains(s, "missing-flush&fence") || !strings.Contains(s, "b@1") {
		t.Errorf("report string = %q", s)
	}
}

func TestMultiFrameStackInReport(t *testing.T) {
	e := &trace.Event{Kind: trace.KindStore, Addr: pm, Size: 8, Stack: []trace.Frame{
		{Func: "update", InstrID: 2},
		{Func: "modify", InstrID: 1},
		{Func: "main", InstrID: 7},
	}}
	res := Check(mkTrace(e, ev(trace.KindCheckpoint, "main", 9)))
	if len(res.Reports) != 1 {
		t.Fatal("want one report")
	}
	if res.Reports[0].Key() != (SiteKey{Func: "update", InstrID: 2}) {
		t.Errorf("key = %+v", res.Reports[0].Key())
	}
	if !strings.Contains(res.Reports[0].String(), "called from modify@1") {
		t.Errorf("report lacks stack: %s", res.Reports[0])
	}
}

func TestLateFixStillReportedOnce(t *testing.T) {
	// Store is caught at a checkpoint, then properly persisted, then the
	// program ends: only the first checkpoint produces the violation.
	res := Check(mkTrace(
		store(pm, "f", 1),
		ev(trace.KindCheckpoint, "g", 5),
		flush(pm, "f", 2),
		ev(trace.KindFence, "f", 3),
		ev(trace.KindCheckpoint, "h", 6),
	))
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d", len(res.Reports))
	}
	if res.Reports[0].Occurrences != 1 {
		t.Errorf("occurrences = %d, want 1", res.Reports[0].Occurrences)
	}
}

func TestDedupeByClassMergesDuplicates(t *testing.T) {
	// Two detector passes over the same execution (e.g. a re-run of a hot
	// loop) produce equal reports for the one buggy site. DedupeByClass
	// must fold them into a single report the fixer sees once.
	tr := mkTrace(
		store(pm, "f", 1),
		ev(trace.KindCheckpoint, "f", 9),
	)
	combined := append(Check(tr).Reports, Check(tr).Reports...)
	out := DedupeByClass(combined)
	if len(out) != 1 {
		t.Fatalf("reports after dedupe = %d, want 1", len(out))
	}
	if out[0].Occurrences != 2 {
		t.Errorf("occurrences = %d, want 2 (summed)", out[0].Occurrences)
	}
	if len(out[0].Checkpoints) != 1 {
		t.Errorf("checkpoints = %d, want 1 (unioned by site)", len(out[0].Checkpoints))
	}
	if len(out[0].Stacks) != 1 {
		t.Errorf("stacks = %d, want 1 (unioned by key)", len(out[0].Stacks))
	}
}

func TestDedupeByClassKeepsDistinctClasses(t *testing.T) {
	// The same site missing flush+fence at one durability point and only a
	// fence at another (after a fence-carrying re-run) needs different
	// mechanisms: the reports must stay separate.
	full := Check(mkTrace(
		store(pm, "f", 1),
		ev(trace.KindCheckpoint, "f", 9),
	)).Reports
	fenceOnly := Check(mkTrace(
		store(pm, "f", 1),
		flush(pm, "f", 2),
		ev(trace.KindCheckpoint, "f", 9),
	)).Reports
	out := DedupeByClass(append(full, fenceOnly...))
	if len(out) != 2 {
		t.Fatalf("reports after dedupe = %d, want 2 (distinct bug classes)", len(out))
	}
}

func TestDedupeByClassKeepsDistinctStackSets(t *testing.T) {
	// One buggy site reached through two different call chains: each chain
	// may need its own (differently hoisted) fix, so the reports must not
	// be collapsed even though site and class agree.
	viaA := store(pm, "f", 1)
	viaA.Stack = append(viaA.Stack, trace.Frame{Func: "a", InstrID: 4})
	viaB := store(pm+64, "f", 1)
	viaB.Stack = append(viaB.Stack, trace.Frame{Func: "b", InstrID: 5})
	reports := Check(mkTrace(
		viaA,
		viaB,
		ev(trace.KindCheckpoint, "main", 9),
	)).Reports
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2 (one per chain)", len(reports))
	}
	out := DedupeByClass(reports)
	if len(out) != 2 {
		t.Fatalf("reports after dedupe = %d, want 2 (chains preserved)", len(out))
	}
}

func TestDedupeByClassKeepsEarliestStore(t *testing.T) {
	tr := mkTrace(
		store(pm, "f", 1),
		ev(trace.KindCheckpoint, "f", 9),
		store(pm, "f", 1),
		ev(trace.KindCheckpoint, "f", 9),
	)
	// Force one copy's representative to the later store instance: the
	// merge must still settle on the earliest store event.
	late := Check(tr).Reports
	late[0].Store = tr.Events[2]
	out := DedupeByClass(append(late, Check(tr).Reports...))
	if len(out) != 1 {
		t.Fatalf("reports after dedupe = %d, want 1", len(out))
	}
	if out[0].Store.Seq != 0 {
		t.Errorf("representative store seq = %d, want 0 (earliest)", out[0].Store.Seq)
	}
}
