// Package server is hippocratesd's engine: a concurrent repair-as-a-service
// front end over the same cli.Run pipeline the command-line tools drive.
// Jobs arrive over HTTP (see handlers.go), flow through a bounded,
// source-sharded worker pool, and are answered with the deterministic
// cli.Response JSON — repaired source, repair-provenance audit trail, and
// per-round crash verdicts.
//
// Three layers make it a service rather than a looped CLI:
//
//   - Backpressure: each worker owns a bounded queue; a full queue rejects
//     the submit (HTTP 429 + Retry-After) instead of buffering without
//     bound, and SIGTERM drains what was accepted before exiting.
//   - Content-addressed caching: a response cache keyed by the canonical
//     request hash serves repeated requests byte-identically without
//     running anything, and an artifact cache keyed by the source hash
//     memoizes the lex/parse/lower result (each job repairs a private
//     clone) and shares the crashsim verdict cache across jobs of the same
//     program. Jobs are sharded by source key, so same-source jobs
//     serialize onto one worker and hit those caches warm.
//   - Isolation: every job runs under its own obs.Recorder (span trees and
//     audit trails never interleave; retrievable per job ID), inside
//     core.RunAndRepair's panic isolation, against a clamped wall-clock
//     deadline — a poisoned job fails alone, the daemon keeps serving.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hippocrates/internal/cli"
	"hippocrates/internal/ir"
	"hippocrates/internal/obs"
	"hippocrates/internal/static"
)

// Config sizes the service. The zero value gets sensible defaults from New.
type Config struct {
	// Workers is the worker-pool size (default GOMAXPROCS, max 8). Each
	// worker owns one queue shard; jobs are assigned by source hash.
	Workers int
	// QueueDepth bounds each worker's queue (default 32). A submit to a
	// full shard fails with ErrQueueFull — the HTTP layer's 429.
	QueueDepth int
	// Retention bounds how many finished jobs stay retrievable by ID
	// (default 256; oldest evicted first).
	Retention int
	// ResponseCacheSize / ArtifactCacheSize bound the two content caches
	// (defaults 512 and 64 entries).
	ResponseCacheSize int
	ArtifactCacheSize int
	// DefaultTimeout applies to jobs that specify no timeout_ms;
	// MaxTimeout clamps jobs that ask for more (defaults 60s / 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// StepLimit overrides the per-run instruction budget of jobs that
	// specify none (0 keeps the interpreter's 100M default).
	StepLimit int64
	// TrackAllocs enables per-span allocation deltas on every job
	// recorder (runtime.ReadMemStats per span — measurable overhead), so
	// /metrics can serve per-phase alloc gauges. Off by default.
	TrackAllocs bool
	// FlightSlow / FlightFailed / FlightRejected bound the flight
	// recorder: the N slowest jobs kept with full span trees and audit
	// trails, the most recent failed jobs, and the most recent 429/503
	// rejections (defaults 16 / 32 / 64).
	FlightSlow     int
	FlightFailed   int
	FlightRejected int
	// BackendID names this daemon instance in a fleet: /healthz reports
	// it and every submit outcome carries it as X-Hippocrates-Backend, so
	// a router (cmd/hippocratesfleet) and the chaos harness can attribute
	// responses to nodes. Empty means standalone (no header, no field).
	BackendID string
	// Log receives one line per job (nil = silent).
	Log io.Writer
}

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull means the job's shard queue is at capacity (429).
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining means the daemon is shutting down (503).
	ErrDraining = errors.New("server: draining, not accepting jobs")
)

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Job is one submitted request and its lifecycle. TraceID is assigned at
// submit time (inbound header or generated) and immutable afterwards; it
// reappears in the response header, the span tree, the log line, and —
// for slow/failed jobs — the flight recorder.
type Job struct {
	ID      string
	TraceID string

	mu       sync.Mutex
	state    string
	err      error
	respJSON []byte
	cacheHit bool
	rec      *obs.Recorder
	done     chan struct{}
	req      *cli.Request
	created  time.Time
}

// State returns the job's current lifecycle state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job's failure (nil unless StateFailed).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ResponseJSON returns the serialized response (nil until StateDone).
func (j *Job) ResponseJSON() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.respJSON
}

// CacheHit reports whether the job was answered from the response cache.
func (j *Job) CacheHit() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cacheHit
}

// Done returns a channel closed when the job finishes (either state).
func (j *Job) Done() <-chan struct{} { return j.done }

// SpansJSON returns the job's own span tree (per-job recorder, so
// concurrent jobs never interleave). Nil until the job ran.
func (j *Job) SpansJSON() ([]byte, error) {
	j.mu.Lock()
	rec := j.rec
	j.mu.Unlock()
	if rec == nil {
		return nil, fmt.Errorf("job %s has no spans yet", j.ID)
	}
	return rec.SpansJSON()
}

// Server is the repair service.
type Server struct {
	cfg    Config
	shards []chan *Job
	wg     sync.WaitGroup

	responses *responseCache
	artifacts *artifactCache

	// summaries is the daemon-wide incremental-analysis store: static jobs
	// share canonicalized function summaries and alias constraints keyed by
	// content hash, so a job whose functions were analyzed before — by any
	// earlier job — replays them instead of recomputing. Results are
	// byte-identical with or without it (the store key covers everything a
	// summary depends on), so sharing across tenants is safe.
	summaries *static.Store

	// rec aggregates counters, gauges, and latency histograms over all
	// finished jobs (per-job span trees stay on the jobs' own recorders —
	// merging them would interleave span IDs).
	rec *obs.Recorder

	// flight retains the slowest and all failed/rejected jobs for
	// post-hoc diagnosis (GET /api/v1/debug/flightrecorder).
	flight *flightRecorder

	// windows holds one rolling per-phase latency histogram (plus the
	// whole-job "job" row and the pre-run "queue_wait" row) so /metrics
	// serves 1m/5m quantiles that decay, unlike rec's since-boot
	// histograms. phaseAlloc accumulates per-phase allocation bytes when
	// cfg.TrackAllocs is on.
	winMu      sync.Mutex
	windows    map[string]*obs.Windowed
	phaseAlloc map[string]uint64

	// drainMu serializes submits against BeginDrain: submitters hold the
	// read side across the draining check and the shard send, so the
	// write side can flip the flag and close the shard channels knowing
	// no send is in flight (sending on a closed channel would panic).
	drainMu sync.RWMutex

	inFlight  atomic.Int64
	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	cached    atomic.Int64
	rejected  atomic.Int64
	draining  atomic.Bool
	start     time.Time

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // completion-retention ring, oldest first
	seq   int64
}

// New starts a server's worker pool. Call Shutdown to drain it.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
		if cfg.Workers > 8 {
			cfg.Workers = 8
		}
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}
	if cfg.Retention <= 0 {
		cfg.Retention = 256
	}
	if cfg.ResponseCacheSize <= 0 {
		cfg.ResponseCacheSize = 512
	}
	if cfg.ArtifactCacheSize <= 0 {
		cfg.ArtifactCacheSize = 64
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 60 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 5 * time.Minute
	}
	s := &Server{
		cfg:        cfg,
		responses:  newResponseCache(cfg.ResponseCacheSize),
		artifacts:  newArtifactCache(cfg.ArtifactCacheSize),
		summaries:  static.NewStore(0),
		rec:        obs.New(),
		flight:     newFlightRecorder(cfg.FlightSlow, cfg.FlightFailed, cfg.FlightRejected),
		windows:    make(map[string]*obs.Windowed),
		phaseAlloc: make(map[string]uint64),
		jobs:       make(map[string]*Job),
		start:      time.Now(),
	}
	s.shards = make([]chan *Job, cfg.Workers)
	for i := range s.shards {
		s.shards[i] = make(chan *Job, cfg.QueueDepth)
		s.wg.Add(1)
		go s.worker(s.shards[i])
	}
	return s
}

// Submit validates and enqueues a request with a fresh trace ID. It
// returns the job — possibly already done, when the response cache
// recognizes the request — or ErrQueueFull / ErrDraining / a validation
// error.
func (s *Server) Submit(req *cli.Request) (*Job, error) {
	return s.SubmitTraced(req, "")
}

// SubmitTraced is Submit under a caller-supplied trace ID (the HTTP
// layer's inbound X-Trace-Id / traceparent); empty generates one.
func (s *Server) SubmitTraced(req *cli.Request, traceID string) (*Job, error) {
	if traceID == "" {
		traceID = NewTraceID()
	}
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		return nil, ErrDraining
	}
	if err := req.Validate(); err != nil {
		return nil, fmt.Errorf("invalid request: %w", err)
	}
	// Clamp the job's budgets to service policy here, before the response
	// cache is probed: the cache key covers the canonical request, so the
	// clamped form must be what both get and put hash.
	if req.TimeoutMS <= 0 {
		req.TimeoutMS = s.cfg.DefaultTimeout.Milliseconds()
	}
	if maxMS := s.cfg.MaxTimeout.Milliseconds(); req.TimeoutMS > maxMS {
		req.TimeoutMS = maxMS
	}
	if req.StepLimit == 0 {
		req.StepLimit = s.cfg.StepLimit
	}
	job := &Job{
		TraceID: traceID,
		state:   StateQueued,
		done:    make(chan struct{}),
		req:     req,
		created: time.Now(),
	}
	s.mu.Lock()
	s.seq++
	job.ID = fmt.Sprintf("job-%06d", s.seq)
	s.mu.Unlock()
	s.submitted.Add(1)

	// Response-cache fast path: an identical request (canonical hash) was
	// already answered, and the pipeline is deterministic — serve the
	// bytes without queueing.
	if data, ok := s.responses.get(req.Key()); ok {
		job.mu.Lock()
		job.state = StateDone
		job.respJSON = data
		job.cacheHit = true
		job.mu.Unlock()
		close(job.done)
		s.cached.Add(1)
		s.completed.Add(1)
		s.rec.Add("server.jobs.response_cache_hits", 1)
		s.remember(job)
		s.logf("%s trace=%s %s %s: response cache hit", job.ID, job.TraceID, req.Mode, req.Program)
		return job, nil
	}

	shard := s.shards[shardOf(req.SourceKey(), len(s.shards))]
	select {
	case shard <- job:
		s.remember(job)
		return job, nil
	default:
		s.rejected.Add(1)
		s.flight.recordReject(traceID, req.Program, req.Mode, 429)
		return nil, ErrQueueFull
	}
}

// ShardDepths returns each worker shard's queued (not yet running) job
// count, index-aligned with the pool.
func (s *Server) ShardDepths() []int {
	out := make([]int, len(s.shards))
	for i, ch := range s.shards {
		out[i] = len(ch)
	}
	return out
}

// observeWindow records one latency sample into a phase's rolling window
// (5s resolution, 60 slots — a 5-minute ring serving 1m/5m quantiles).
func (s *Server) observeWindow(phase string, ns int64) {
	s.winMu.Lock()
	w := s.windows[phase]
	if w == nil {
		w = obs.NewWindowed(5*time.Second, 60)
		s.windows[phase] = w
	}
	s.winMu.Unlock()
	w.Observe(ns)
}

// windowSnapshots folds every phase's ring into (phase, window) rows for
// the exporters; windows with no samples are skipped.
func (s *Server) windowSnapshots() []PhaseWindowDoc {
	s.winMu.Lock()
	phases := make(map[string]*obs.Windowed, len(s.windows))
	for k, w := range s.windows {
		phases[k] = w
	}
	s.winMu.Unlock()
	var out []PhaseWindowDoc
	for phase, w := range phases {
		for _, win := range []struct {
			name string
			d    time.Duration
		}{{"1m", time.Minute}, {"5m", 5 * time.Minute}} {
			h := w.Snapshot(win.d)
			if h.Count == 0 {
				continue
			}
			out = append(out, PhaseWindowDoc{
				Phase:  phase,
				Window: win.name,
				Count:  h.Count,
				P50NS:  h.Quantile(0.50),
				P95NS:  h.Quantile(0.95),
				P99NS:  h.Quantile(0.99),
				MaxNS:  h.Max,
				SumNS:  h.Sum,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Phase != out[j].Phase {
			return out[i].Phase < out[j].Phase
		}
		return out[i].Window < out[j].Window
	})
	return out
}

// addPhaseAlloc accumulates a phase's allocation bytes (TrackAllocs on).
func (s *Server) addPhaseAlloc(phase string, bytes uint64) {
	s.winMu.Lock()
	s.phaseAlloc[phase] += bytes
	s.winMu.Unlock()
}

// phaseAllocs returns a copy of the per-phase allocation totals.
func (s *Server) phaseAllocs() map[string]uint64 {
	s.winMu.Lock()
	defer s.winMu.Unlock()
	out := make(map[string]uint64, len(s.phaseAlloc))
	for k, v := range s.phaseAlloc {
		out[k] = v
	}
	return out
}

// shardOf maps a source key onto a worker, so jobs for the same program
// serialize onto the same queue and find its artifacts warm.
func shardOf(key string, n int) int {
	h := fnv.New32a()
	io.WriteString(h, key)
	return int(h.Sum32() % uint32(n))
}

// remember indexes the job by ID and evicts beyond the retention bound.
func (s *Server) remember(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	for len(s.order) > s.cfg.Retention {
		oldest := s.jobs[s.order[0]]
		if oldest != nil {
			select {
			case <-oldest.done:
			default:
				// Still pending; keep everything until it finishes.
				return
			}
		}
		delete(s.jobs, s.order[0])
		s.order = s.order[1:]
	}
}

// Job returns a retained job by ID.
func (s *Server) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// worker drains one shard queue.
func (s *Server) worker(ch chan *Job) {
	defer s.wg.Done()
	for job := range ch {
		s.runJob(job)
	}
}

// runJob executes one job end to end: artifact lookup (memoized compile +
// shared verdict cache), a private module clone, the cli pipeline under
// the job's own recorder, response serialization, and cache fills.
func (s *Server) runJob(job *Job) {
	s.inFlight.Add(1)
	started := time.Now()
	job.mu.Lock()
	job.state = StateRunning
	req := job.req
	rec := obs.New()
	if s.cfg.TrackAllocs {
		rec.SetTrackAllocs(true)
	}
	job.rec = rec
	job.mu.Unlock()

	root := rec.StartSpan("job")
	root.SetAttr("job", job.ID)
	root.SetAttr("trace_id", job.TraceID)
	s.observeWindow("queue_wait", started.Sub(job.created).Nanoseconds())

	finish := func(data []byte, err error) {
		root.End()
		s.inFlight.Add(-1)
		job.mu.Lock()
		if err != nil {
			job.state = StateFailed
			job.err = err
		} else {
			job.state = StateDone
			job.respJSON = data
		}
		job.mu.Unlock()
		close(job.done)
		elapsed := time.Since(started)
		if err != nil {
			s.failed.Add(1)
			s.rec.Add("server.jobs.failed", 1)
			s.logf("%s trace=%s %s %s: FAILED in %s: %v", job.ID, job.TraceID, req.Mode, req.Program, elapsed.Round(time.Millisecond), err)
		} else {
			s.completed.Add(1)
			s.logf("%s trace=%s %s %s: done in %s", job.ID, job.TraceID, req.Mode, req.Program, elapsed.Round(time.Millisecond))
		}
		// Fold the job's counters, gauges, and per-phase wall times into
		// the service-wide aggregate. Span trees stay on the job recorder.
		rec.SetGauge("server.job.last_latency_ns", elapsed.Nanoseconds())
		s.rec.Merge(rec)
		s.rec.Observe("server.job.ns", elapsed.Nanoseconds())
		s.observeWindow("job", elapsed.Nanoseconds())
		for _, pt := range rec.PhaseTotals() {
			if pt.Name == "job" {
				continue
			}
			s.rec.Observe("server.phase."+pt.Name+".ns", pt.Total.Nanoseconds())
			s.observeWindow(pt.Name, pt.Total.Nanoseconds())
			if s.cfg.TrackAllocs {
				s.addPhaseAlloc(pt.Name, pt.Alloc)
			}
		}
		// Flight recorder: failed jobs always, others when slow enough.
		// The capture closure runs only when the entry is retained.
		s.flight.offer(job, float64(elapsed.Nanoseconds())/1e6, err, func() (json.RawMessage, []*obs.AuditEntry) {
			spans, sErr := rec.SpansJSON()
			if sErr != nil {
				spans = []byte(`{"spans":[]}`)
			}
			return spans, rec.AuditTrail()
		})
	}

	// Artifact cache: compile once per (program, source), clone per job —
	// repair mutates the module, the cached master stays pristine.
	art, err := s.artifacts.get(req, s.rec)
	if err != nil {
		finish(nil, err)
		return
	}
	mod := ir.CloneModule(art.mod)

	// Share memoized crash verdicts across jobs of this source. Sound
	// because verdict keys are image-content hashes and same-source jobs
	// serialize on one shard; if this job's repair rewrites
	// recovery-reachable code, the pipeline Resets the cache (bumping its
	// generation) and we retire the shared instance — its surviving
	// entries would describe the repaired module's recovery code, not the
	// original's.
	var gen int64
	if req.CrashCheck && !req.NoDedup && req.CrashCache == nil {
		req.CrashCache = art.verdicts()
		gen = req.CrashCache.Generation()
	}

	// Static jobs run against the daemon-wide summary store: functions any
	// earlier job already analyzed replay their cached summaries and alias
	// constraints instead of being re-analyzed. The CrashCache pattern
	// above applies — attach for the run, detach before the job is retained.
	if req.Static {
		req.SummaryStore = s.summaries
	}

	resp, err := cli.RunModule(req, mod, root)
	req.SummaryStore = nil
	if req.CrashCache != nil {
		if req.CrashCache.Generation() != gen {
			art.retireVerdicts(req.CrashCache)
		}
		req.CrashCache = nil
	}
	if err != nil {
		finish(nil, err)
		return
	}
	if inc, ok := staticIncr(resp); ok {
		s.logf("%s trace=%s summary-store: %d hits / %d misses (%.0f%% warm), cons %d/%d",
			job.ID, job.TraceID, inc.SumHits, inc.SumMisses, 100*inc.HitRatio(),
			inc.ConsHits, inc.ConsMisses)
	}
	data, err := resp.EncodeJSON()
	if err != nil {
		finish(nil, err)
		return
	}
	s.responses.put(req.Key(), data)
	finish(data, nil)
}

// BeginDrain flips the daemon into drain mode without waiting: new
// submissions fail with ErrDraining (503 + Retry-After over HTTP),
// /healthz reports "draining", and the shard queues are closed so the
// workers exit once the accepted backlog is done. Idempotent. It is the
// SIGTERM handler's first move and the handoff hook a fleet router
// observes: the instant /healthz flips, the router stops hashing new
// keys here while in-flight jobs run to completion.
func (s *Server) BeginDrain() {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining.Swap(true) {
		return // already draining
	}
	for _, ch := range s.shards {
		close(ch)
	}
}

// Shutdown drains the pool: no new submissions are accepted, queued jobs
// run to completion (bounded by ctx), then the workers exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// QueueDepth returns the total queued (not yet running) jobs.
func (s *Server) QueueDepth() int {
	n := 0
	for _, ch := range s.shards {
		n += len(ch)
	}
	return n
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log == nil {
		return
	}
	fmt.Fprintf(s.cfg.Log, "hippocratesd: "+format+"\n", args...)
}

// staticIncr extracts a static job's summary-store traffic from its
// response: check mode's single analysis, or repair mode's before and
// after passes summed (the two share one Result when no repair ran).
func staticIncr(resp *cli.Response) (static.IncrStats, bool) {
	switch {
	case resp == nil:
		return static.IncrStats{}, false
	case resp.StaticCheck != nil:
		return resp.StaticCheck.Incr, true
	case resp.StaticResult != nil && resp.StaticResult.Before != nil:
		inc := resp.StaticResult.Before.Incr
		if after := resp.StaticResult.After; after != nil && after != resp.StaticResult.Before {
			inc.SumHits += after.Incr.SumHits
			inc.SumMisses += after.Incr.SumMisses
			inc.ConsHits += after.Incr.ConsHits
			inc.ConsMisses += after.Incr.ConsMisses
		}
		return inc, true
	}
	return static.IncrStats{}, false
}
