package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hippocrates/internal/cli"
	"hippocrates/internal/obs"
)

// goldenSnapshot is a fully-populated deterministic snapshot: every
// family the renderer can emit appears, so the golden file pins the whole
// exposition format. A change to the format must be deliberate —
// regenerate with
//
//	UPDATE_GOLDEN=1 go test ./internal/server/ -run TestPromGolden
//
// and review the diff like an API change (dashboards scrape these names).
func goldenSnapshot() *promSnapshot {
	return &promSnapshot{
		Doc: &MetricsDoc{
			UptimeSeconds: 12.5,
			Workers:       2,
			Queue: QueueDoc{
				Depth: 3, Capacity: 64, InFlight: 1, Rejected: 4, Draining: false,
				Shards: []ShardDoc{
					{Shard: 0, Depth: 3, Capacity: 32, Saturation: 0.09375},
					{Shard: 1, Depth: 0, Capacity: 32, Saturation: 0},
				},
			},
			Jobs:   JobsDoc{Submitted: 10, Completed: 8, Failed: 1, Cached: 2},
			Flight: FlightDoc{Slow: 6, Failed: 1, Rejected: 4},
			Cache: CacheDoc{
				ResponseHits: 2, ResponseMisses: 8,
				ArtifactHits: 5, ArtifactMisses: 3,
				VerdictHits: 900, VerdictMisses: 100,
				SummaryHits: 40, SummaryMisses: 10,
				ConstraintHits: 60, ConstraintMisses: 15,
				HitRatio: 0.3888888888888889,
			},
			Phases: []PhaseLatencyDoc{
				{Name: "detect", Count: 8, P50NS: 1000, P99NS: 2000, MaxNS: 2100, SumNS: 9000},
				{Name: "job", Count: 8, P50NS: 50000, P99NS: 90000, MaxNS: 95000, SumNS: 420000},
			},
			Windows: []PhaseWindowDoc{
				{Phase: "job", Window: "1m", Count: 5, P50NS: 48000, P95NS: 80000, P99NS: 90000, MaxNS: 95000, SumNS: 260000},
				{Phase: "job", Window: "5m", Count: 8, P50NS: 50000, P95NS: 85000, P99NS: 90000, MaxNS: 95000, SumNS: 420000},
			},
			Counters: map[string]int64{
				"interp.steps":                    123456,
				"server.jobs.response_cache_hits": 2,
			},
			Gauges: map[string]int64{
				"server.job.last_latency_ns": 52000,
			},
		},
		PhaseAlloc: map[string]uint64{"detect": 4096, "trace": 65536},
		Runtime: &promRuntime{
			HeapAllocBytes:  1 << 20,
			HeapObjects:     5000,
			TotalAllocBytes: 1 << 24,
			GCCycles:        7,
			Goroutines:      12,
		},
	}
}

// TestPromGolden pins the exact exposition bytes for a fixed snapshot.
func TestPromGolden(t *testing.T) {
	got, err := renderProm(goldenSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	// Whatever the golden says, the output must satisfy our own linter.
	if err := obs.LintProm(got); err != nil {
		t.Fatalf("rendered exposition fails the linter: %v\n%s", err, got)
	}
	path := filepath.Join("testdata", "metrics.prom.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("exposition drifted from %s (UPDATE_GOLDEN=1 to accept)\ngot:\n%s", path, got)
	}
}

// TestPromLiveExposition lints a real server's exposition after real
// traffic and checks the families a dashboard would scrape are present.
func TestPromLiveExposition(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)
	for i := 0; i < 2; i++ {
		j, err := s.Submit(publishReq())
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
	}
	prom, err := s.PromText()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.LintProm(prom); err != nil {
		t.Fatalf("live exposition fails the linter: %v\n%s", err, prom)
	}
	for _, want := range []string{
		`hippocratesd_jobs_total{event="completed"} 2`,
		`hippocratesd_queue_depth{shard="0"}`,
		`hippocratesd_queue_depth{shard="1"}`,
		`hippocratesd_cache_events_total{cache="response",result="hit"} 1`,
		`hippocratesd_phase_latency_ns{phase="job",window="1m",quantile="0.5"}`,
		`hippocratesd_phase_runs_total{phase="job"} 1`,
		`hippocratesd_pipeline_events_total{event="server.jobs.response_cache_hits"} 1`,
		`hippocratesd_pipeline_gauge{gauge="server.job.last_latency_ns"}`,
		"hippocratesd_go_goroutines",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("live exposition is missing %q", want)
		}
	}
}

// TestFlightRecorderRetention drives offer/recordReject directly: slow
// ranking, failed ring, rejected ring, and the lazy capture contract.
func TestFlightRecorderRetention(t *testing.T) {
	f := newFlightRecorder(2, 2, 2)
	capture := func() (json.RawMessage, []*obs.AuditEntry) {
		return []byte(`{"spans":[]}`), nil
	}
	mkJob := func(id, trace string) *Job {
		return &Job{ID: id, TraceID: trace, req: publishReq()}
	}

	// Three successes at 10/30/20ms into a 2-slot slow buffer: the 10ms
	// one must be evicted, order slowest-first.
	f.offer(mkJob("job-1", "t1"), 10, nil, capture)
	f.offer(mkJob("job-2", "t2"), 30, nil, capture)
	f.offer(mkJob("job-3", "t3"), 20, nil, capture)
	doc := f.doc()
	if len(doc.Slowest) != 2 || doc.Slowest[0].JobID != "job-2" || doc.Slowest[1].JobID != "job-3" {
		t.Fatalf("slow ranking wrong: %+v", doc.Slowest)
	}
	if doc.Slowest[0].Reason != "slow" || doc.Slowest[0].TraceID != "t2" {
		t.Errorf("retained entry malformed: %+v", doc.Slowest[0])
	}

	// A job too fast to rank must not pay the capture.
	called := false
	f.offer(mkJob("job-4", "t4"), 1, nil, func() (json.RawMessage, []*obs.AuditEntry) {
		called = true
		return []byte(`{"spans":[]}`), nil
	})
	if called {
		t.Error("capture ran for a job that was not retained")
	}

	// Failed jobs always capture, newest last, ring-bounded at 2.
	for _, id := range []string{"job-5", "job-6", "job-7"} {
		f.offer(mkJob(id, "t-"+id), 1, errors.New("boom"), capture)
	}
	doc = f.doc()
	if len(doc.Failed) != 2 || doc.Failed[0].JobID != "job-6" || doc.Failed[1].JobID != "job-7" {
		t.Errorf("failed ring wrong: %+v", doc.Failed)
	}
	if doc.Failed[0].Reason != "failed" || doc.Failed[0].Error != "boom" {
		t.Errorf("failed entry malformed: %+v", doc.Failed[0])
	}

	// Rejections ring-bound at 2, newest last.
	for i, trace := range []string{"r1", "r2", "r3"} {
		status := 429
		if i == 2 {
			status = 503
		}
		f.recordReject(trace, "p.pmc", "repair", status)
	}
	doc = f.doc()
	if len(doc.Rejected) != 2 || doc.Rejected[0].TraceID != "r2" || doc.Rejected[1].Status != 503 {
		t.Errorf("rejected ring wrong: %+v", doc.Rejected)
	}
}

// TestFlightRecorderSchema validates a live recorder document — with
// slow, failed, and rejected entries populated by real jobs — against the
// checked-in schema.
func TestFlightRecorderSchema(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)

	good, err := s.Submit(publishReq())
	if err != nil {
		t.Fatal(err)
	}
	bad, err := s.Submit(&cli.Request{Program: "broken.pmc", Source: "int main( {"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, good)
	waitDone(t, bad)
	s.flight.recordReject("trace-reject", "p.pmc", "repair", 429)

	data, err := json.MarshalIndent(s.flight.doc(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateFlightRecorder(data); err != nil {
		t.Fatalf("flight recorder violates schema: %v\n%s", err, data)
	}
	doc := s.flight.doc()
	if len(doc.Slowest) != 1 || len(doc.Failed) != 1 || len(doc.Rejected) != 1 {
		t.Fatalf("retained %d/%d/%d entries, want 1/1/1",
			len(doc.Slowest), len(doc.Failed), len(doc.Rejected))
	}
	// The retained slow entry must carry the job's real span tree.
	if !bytes.Contains(doc.Slowest[0].Spans, []byte(`"crashsim"`)) {
		t.Errorf("retained spans lack the crashsim phase: %.200s", doc.Slowest[0].Spans)
	}
	if len(doc.Slowest[0].Audit) == 0 {
		t.Error("retained slow entry carries no audit trail")
	}
}
