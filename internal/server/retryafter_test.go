package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"hippocrates/internal/cli"
)

// validRetryAfter reports whether s is an integer inside the jitter
// range every backpressure path must use.
func validRetryAfter(s string) bool {
	n, err := strconv.Atoi(s)
	return err == nil && n >= RetryAfterMin && n <= RetryAfterMax
}

// spinReq is a job that parks a worker until its wall-clock deadline
// kills it — the test's stand-in for slow traffic.
func spinReq() *cli.Request {
	return &cli.Request{
		Program:   "spin.pmc",
		Source:    srcSpin,
		Mode:      cli.ModeCheck,
		StepLimit: 2_000_000_000,
		TimeoutMS: 1500,
	}
}

// TestRetryAfterJitter: 429 rejections must carry a Retry-After inside
// the jitter range, and repeated rejections must not all carry the same
// value — a constant would re-synchronize every backed-off client onto
// the same retry instant and re-stampede a recovering shard.
func TestRetryAfterJitter(t *testing.T) {
	// One worker, one queue slot, and spin jobs that park it: once the
	// shard is saturated every further submit is a deterministic 429.
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, err := s.Submit(spinReq()); err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to dequeue the first spin, then fill the slot
	// behind it: one spin running, one queued — the shard is full.
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never dequeued the first spin")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(spinReq()); err != nil {
		t.Fatal(err)
	}

	body, err := json.Marshal(spinReq())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	got429 := 0
	for i := 0; i < 200 && got429 < 40; i++ {
		// The async path answers immediately whether accepted or full.
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			continue
		}
		got429++
		ra := resp.Header.Get("Retry-After")
		if !validRetryAfter(ra) {
			t.Fatalf("429 Retry-After %q outside [%d,%d]", ra, RetryAfterMin, RetryAfterMax)
		}
		seen[ra] = true
	}
	if got429 < 40 {
		t.Fatalf("saturated shard produced only %d 429s", got429)
	}
	// 40 draws from a 3-value jitter: P(all equal) = 3^-39.
	if len(seen) < 2 {
		t.Errorf("%d rejections all carried the same Retry-After — jitter missing", got429)
	}
}
