package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestTraceFromRequest covers the header-precedence and sanitization
// rules: X-Trace-Id wins, traceparent's trace-id field is accepted,
// garbage is rejected.
func TestTraceFromRequest(t *testing.T) {
	mk := func(hdr map[string]string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/api/v1/repair", nil)
		for k, v := range hdr {
			r.Header.Set(k, v)
		}
		return r
	}
	validTP := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		name string
		hdr  map[string]string
		want string
	}{
		{"none", nil, ""},
		{"x-trace-id", map[string]string{"X-Trace-Id": "abc-123_XY"}, "abc-123_XY"},
		{"x-trace-id wins over traceparent", map[string]string{"X-Trace-Id": "mine", "traceparent": validTP}, "mine"},
		{"traceparent", map[string]string{"traceparent": validTP}, "4bf92f3577b34da6a3ce929d0e0e4736"},
		{"traceparent uppercased", map[string]string{"traceparent": strings.ToUpper(validTP)}, "4bf92f3577b34da6a3ce929d0e0e4736"},
		{"traceparent all-zero rejected", map[string]string{"traceparent": "00-00000000000000000000000000000000-00f067aa0ba902b7-01"}, ""},
		{"traceparent malformed", map[string]string{"traceparent": "00-zzzz-yy-01"}, ""},
		{"x-trace-id with spaces rejected", map[string]string{"X-Trace-Id": "has space"}, ""},
		{"x-trace-id too long rejected", map[string]string{"X-Trace-Id": strings.Repeat("a", 65)}, ""},
	}
	for _, tc := range cases {
		if got := TraceFromRequest(mk(tc.hdr)); got != tc.want {
			t.Errorf("%s: got %q, want %q", tc.name, got, tc.want)
		}
	}
	if id := NewTraceID(); len(id) != 32 || !isHex(id) {
		t.Errorf("NewTraceID() = %q, want 32 hex chars", id)
	}
	if NewTraceID() == NewTraceID() {
		t.Error("two generated trace IDs collided")
	}
}

// TestTracePropagation drives the HTTP mux end to end: the inbound trace
// ID must come back on the submit response, the job document, the span
// tree (as the root span's attribute), and the flight recorder.
func TestTracePropagation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(publishReq())
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/repair", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, "trace-propagation-test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /api/v1/repair: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(TraceHeader); got != "trace-propagation-test" {
		t.Errorf("submit echoed trace %q, want trace-propagation-test", got)
	}
	jobID := resp.Header.Get("X-Hippocrates-Job")

	jobResp, err := http.Get(ts.URL + "/api/v1/jobs/" + jobID)
	if err != nil {
		t.Fatal(err)
	}
	var jd struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.NewDecoder(jobResp.Body).Decode(&jd); err != nil {
		t.Fatal(err)
	}
	jobResp.Body.Close()
	if jd.TraceID != "trace-propagation-test" {
		t.Errorf("job doc trace %q", jd.TraceID)
	}

	spansResp, err := http.Get(ts.URL + "/api/v1/jobs/" + jobID + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	spans, _ := io.ReadAll(spansResp.Body)
	spansResp.Body.Close()
	if !bytes.Contains(spans, []byte(`"trace_id": "trace-propagation-test"`)) {
		t.Errorf("span tree lacks the trace-id attribute: %.300s", spans)
	}

	frResp, err := http.Get(ts.URL + "/api/v1/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	fr, _ := io.ReadAll(frResp.Body)
	frResp.Body.Close()
	if err := ValidateFlightRecorder(fr); err != nil {
		t.Fatalf("flight recorder violates schema: %v", err)
	}
	if !bytes.Contains(fr, []byte(`"trace_id": "trace-propagation-test"`)) {
		t.Errorf("flight recorder lacks the trace ID: %.300s", fr)
	}
}

// TestHealthzShardsAndDrain: /healthz must expose per-shard queue depth
// while healthy and flip to 503 with the same Retry-After the 429 path
// sends once draining.
func TestHealthzShardsAndDrain(t *testing.T) {
	s := New(Config{Workers: 3})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func() (*http.Response, healthzDoc) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var doc healthzDoc
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, doc
	}

	resp, doc := get()
	if resp.StatusCode != http.StatusOK || doc.Status != "ok" || doc.Draining {
		t.Fatalf("healthy daemon: %d %+v", resp.StatusCode, doc)
	}
	if len(doc.Shards) != 3 {
		t.Fatalf("healthz reports %d shards, want 3", len(doc.Shards))
	}
	for i, sh := range doc.Shards {
		if sh.Shard != i || sh.Capacity != 32 || sh.Depth != 0 {
			t.Errorf("shard %d doc wrong: %+v", i, sh)
		}
	}

	shutdown(t, s)
	resp, doc = get()
	if resp.StatusCode != http.StatusServiceUnavailable || doc.Status != "draining" || !doc.Draining {
		t.Errorf("draining daemon: %d %+v", resp.StatusCode, doc)
	}
	if got := resp.Header.Get("Retry-After"); !validRetryAfter(got) {
		t.Errorf("draining Retry-After %q, want an integer in [%d,%d] (the 429 path's jitter range)",
			got, RetryAfterMin, RetryAfterMax)
	}
}
