package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hippocrates/internal/cli"
	"hippocrates/internal/obs"
	"hippocrates/internal/server/loadgen"
)

// TestSoakConcurrentMatchesSequential is the service's determinism proof:
// 32 jobs over the crashsim-able corpus, 16+ in flight at once under
// -race, must produce responses byte-identical to sequential one-shot
// cli.Run invocations of the same requests — all while every
// observability endpoint is scraped continuously. The only tolerated
// difference
// is the crashsim `stats` accounting (cache hits, images built, COW page
// counters), which legitimately depends on which jobs shared a verdict
// cache; normalizeResponse zeroes it on both sides before comparing.
func TestSoakConcurrentMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus soak in -short mode")
	}
	base := loadgen.CorpusRequests()
	if len(base) < 10 {
		t.Fatalf("corpus yielded only %d crashsim-able targets", len(base))
	}
	// Pin the budgets the daemon would otherwise default for us, so the
	// sequential baseline runs under identical options.
	clone := func(i int) *cli.Request {
		c := *base[i%len(base)]
		c.TimeoutMS = 60_000
		return &c
	}

	// Sequential ground truth: one fresh recorder per run, no shared
	// caches, exactly what the CLI one-shot path does.
	want := make([]string, len(base))
	for i := range base {
		rec := obs.New()
		root := rec.StartSpan("job")
		resp, err := cli.Run(clone(i), root)
		root.End()
		if err != nil {
			t.Fatalf("sequential %s: %v", base[i].Program, err)
		}
		data, err := resp.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = normalizeResponse(t, data)
	}

	const jobs = 32
	s := New(Config{Workers: 8, QueueDepth: jobs})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}()

	// Scrape every observability endpoint continuously while the soak
	// runs: under -race this proves a Prometheus scraper polling a loaded
	// daemon never races the job pipeline, and every body served mid-load
	// is well-formed.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeErr := make(chan error, 1)
	reportScrape := func(err error) {
		select {
		case scrapeErr <- err:
		default:
		}
	}
	for _, path := range []string{"/metrics", "/metrics.json", "/healthz", "/api/v1/debug/flightrecorder"} {
		scrapeWG.Add(1)
		go func(path string) {
			defer scrapeWG.Done()
			for {
				select {
				case <-stopScrape:
					return
				default:
				}
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					reportScrape(fmt.Errorf("GET %s: %w", path, err))
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					reportScrape(fmt.Errorf("GET %s: %w", path, err))
					return
				}
				if resp.StatusCode != http.StatusOK {
					reportScrape(fmt.Errorf("GET %s: HTTP %d: %.200s", path, resp.StatusCode, body))
					return
				}
				var check error
				switch path {
				case "/metrics":
					check = obs.LintProm(body)
				case "/metrics.json":
					check = ValidateMetrics(body)
				case "/api/v1/debug/flightrecorder":
					check = ValidateFlightRecorder(body)
				default:
					if !json.Valid(body) {
						check = fmt.Errorf("invalid JSON: %.200s", body)
					}
				}
				if check != nil {
					reportScrape(fmt.Errorf("GET %s mid-soak: %w", path, check))
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(path)
	}

	got := make([]string, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := s.Submit(clone(i))
			if err != nil {
				errs[i] = err
				return
			}
			select {
			case <-j.Done():
			case <-time.After(4 * time.Minute):
				errs[i] = fmt.Errorf("job %s timed out", j.ID)
				return
			}
			if err := j.Err(); err != nil {
				errs[i] = err
				return
			}
			got[i] = normalizeResponse(t, j.ResponseJSON())
		}(i)
	}
	wg.Wait()
	close(stopScrape)
	scrapeWG.Wait()
	select {
	case err := <-scrapeErr:
		t.Errorf("concurrent scrape: %v", err)
	default:
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent %s: %v", base[i%len(base)].Program, err)
		}
	}
	for i := 0; i < jobs; i++ {
		if got[i] != want[i%len(base)] {
			t.Errorf("%s: concurrent response diverged from sequential run\nconcurrent: %.400s\nsequential: %.400s",
				base[i%len(base)].Program, got[i], want[i%len(base)])
		}
	}
}

// normalizeResponse strips the crashsim stats accounting — the one
// deliberately non-deterministic corner of the response — and re-marshals
// with sorted keys, so equal pipelines compare equal regardless of cache
// sharing.
func normalizeResponse(t *testing.T, data []byte) string {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	if crash, ok := doc["crash"].(map[string]any); ok {
		delete(crash, "stats")
	}
	if rounds, ok := doc["crash_rounds"].([]any); ok {
		for _, r := range rounds {
			if round, ok := r.(map[string]any); ok {
				delete(round, "stats")
			}
		}
	}
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestSoakStaticSummaryReuse drives the daemon-wide summary store: 8
// source variants that share four identical helper functions, each
// submitted in both static modes concurrently. The store must replay
// helper summaries across jobs (hits > 0) while every response stays
// byte-identical to a storeless sequential cli.Run of the same request —
// the incremental cache may only save time, never change an answer.
func TestSoakStaticSummaryReuse(t *testing.T) {
	variant := func(v int) string {
		return fmt.Sprintf(`
pm int cell[64];
void put0(int *p, int v) { *p = v; clwb(p); sfence(); }
void put1(int *p, int v) { *p = v + 1; clwb(p); sfence(); }
void put2(int *p, int v) { *p = v + 2; clwb(p); sfence(); }
void put3(int *p, int v) { *p = v + 3; clwb(p); sfence(); }
int main() {
	put0(&cell[0], %d);
	put1(&cell[1], %d);
	put2(&cell[2], %d);
	put3(&cell[3], %d);
	cell[8] = %d;
	pm_checkpoint();
	return cell[8];
}
`, v, v, v, v, v)
	}
	const variants = 8
	var reqs []*cli.Request
	for v := 0; v < variants; v++ {
		for _, mode := range []string{cli.ModeCheck, cli.ModeRepair} {
			reqs = append(reqs, &cli.Request{
				Program:   fmt.Sprintf("soak%d.pmc", v),
				Source:    variant(v),
				Mode:      mode,
				Static:    true,
				TimeoutMS: 60_000,
			})
		}
	}

	// Sequential ground truth: fresh cli.Run per request, no store at all.
	want := make([]string, len(reqs))
	for i, q := range reqs {
		c := *q
		rec := obs.New()
		root := rec.StartSpan("job")
		resp, err := cli.Run(&c, root)
		root.End()
		if err != nil {
			t.Fatalf("sequential %s %s: %v", q.Mode, q.Program, err)
		}
		data, err := resp.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = string(data)
	}

	s := New(Config{Workers: 4, QueueDepth: len(reqs)})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}()

	got := make([]string, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := *reqs[i]
			j, err := s.Submit(&c)
			if err != nil {
				errs[i] = err
				return
			}
			select {
			case <-j.Done():
			case <-time.After(time.Minute):
				errs[i] = fmt.Errorf("job %s timed out", j.ID)
				return
			}
			if err := j.Err(); err != nil {
				errs[i] = err
				return
			}
			got[i] = string(j.ResponseJSON())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent %s %s: %v", reqs[i].Mode, reqs[i].Program, err)
		}
	}
	for i := range reqs {
		if got[i] != want[i] {
			t.Errorf("%s %s: daemon response diverged from storeless cli.Run\ndaemon:     %.400s\nsequential: %.400s",
				reqs[i].Mode, reqs[i].Program, got[i], want[i])
		}
	}

	// The helpers are byte-identical across all 16 jobs: the shared store
	// must have replayed summaries and constraint lists, not just stored
	// them. Exact counts depend on scheduling; reuse itself must not.
	ss := s.summaries.Stats()
	if ss.SummaryHits == 0 || ss.ConsHits == 0 {
		t.Errorf("daemon summary store saw no reuse across same-helper jobs: %+v", ss)
	}
	if ss.Summaries == 0 || ss.Constraints == 0 {
		t.Errorf("daemon summary store retained nothing: %+v", ss)
	}
}
