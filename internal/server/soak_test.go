package server

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"hippocrates/internal/cli"
	"hippocrates/internal/obs"
	"hippocrates/internal/server/loadgen"
)

// TestSoakConcurrentMatchesSequential is the service's determinism proof:
// 32 jobs over the crashsim-able corpus, 16+ in flight at once under
// -race, must produce responses byte-identical to sequential one-shot
// cli.Run invocations of the same requests. The only tolerated difference
// is the crashsim `stats` accounting (cache hits, images built, COW page
// counters), which legitimately depends on which jobs shared a verdict
// cache; normalizeResponse zeroes it on both sides before comparing.
func TestSoakConcurrentMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus soak in -short mode")
	}
	base := loadgen.CorpusRequests()
	if len(base) < 10 {
		t.Fatalf("corpus yielded only %d crashsim-able targets", len(base))
	}
	// Pin the budgets the daemon would otherwise default for us, so the
	// sequential baseline runs under identical options.
	clone := func(i int) *cli.Request {
		c := *base[i%len(base)]
		c.TimeoutMS = 60_000
		return &c
	}

	// Sequential ground truth: one fresh recorder per run, no shared
	// caches, exactly what the CLI one-shot path does.
	want := make([]string, len(base))
	for i := range base {
		rec := obs.New()
		root := rec.StartSpan("job")
		resp, err := cli.Run(clone(i), root)
		root.End()
		if err != nil {
			t.Fatalf("sequential %s: %v", base[i].Program, err)
		}
		data, err := resp.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = normalizeResponse(t, data)
	}

	const jobs = 32
	s := New(Config{Workers: 8, QueueDepth: jobs})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}()

	got := make([]string, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := s.Submit(clone(i))
			if err != nil {
				errs[i] = err
				return
			}
			select {
			case <-j.Done():
			case <-time.After(4 * time.Minute):
				errs[i] = fmt.Errorf("job %s timed out", j.ID)
				return
			}
			if err := j.Err(); err != nil {
				errs[i] = err
				return
			}
			got[i] = normalizeResponse(t, j.ResponseJSON())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent %s: %v", base[i%len(base)].Program, err)
		}
	}
	for i := 0; i < jobs; i++ {
		if got[i] != want[i%len(base)] {
			t.Errorf("%s: concurrent response diverged from sequential run\nconcurrent: %.400s\nsequential: %.400s",
				base[i%len(base)].Program, got[i], want[i%len(base)])
		}
	}
}

// normalizeResponse strips the crashsim stats accounting — the one
// deliberately non-deterministic corner of the response — and re-marshals
// with sorted keys, so equal pipelines compare equal regardless of cache
// sharing.
func normalizeResponse(t *testing.T, data []byte) string {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	if crash, ok := doc["crash"].(map[string]any); ok {
		delete(crash, "stats")
	}
	if rounds, ok := doc["crash_rounds"].([]any); ok {
		for _, r := range rounds {
			if round, ok := r.(map[string]any); ok {
				delete(round, "stats")
			}
		}
	}
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}
