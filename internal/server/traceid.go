package server

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strings"
)

// Trace IDs give every request one identity across the whole service:
// the submit's HTTP response header, the job's span-tree root attribute,
// the per-job log line, and (for slow/failed/rejected requests) the
// flight-recorder entry all carry the same ID, so a single grep follows a
// job from enqueue through the shard worker to its outcome — and, once
// the fleet is sharded, across nodes.

// TraceHeader is the request/response header carrying the trace ID.
const TraceHeader = "X-Trace-Id"

// TraceFromRequest extracts an inbound trace ID: X-Trace-Id wins, then
// the trace-id field of a W3C traceparent header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<flags>"). Returns "" when
// neither is present or parseable; the caller generates one.
func TraceFromRequest(r *http.Request) string {
	if id := sanitizeTraceID(r.Header.Get(TraceHeader)); id != "" {
		return id
	}
	tp := r.Header.Get("traceparent")
	parts := strings.Split(tp, "-")
	if len(parts) >= 3 && len(parts[1]) == 32 && isHex(parts[1]) && parts[1] != strings.Repeat("0", 32) {
		return strings.ToLower(parts[1])
	}
	return ""
}

// NewTraceID returns a fresh 128-bit random trace ID in lowercase hex —
// the same shape a W3C trace-id has, so it round-trips into traceparent.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to a
		// recognizable constant rather than bringing down the daemon.
		return "00000000000000000000000000000001"
	}
	return hex.EncodeToString(b[:])
}

// sanitizeTraceID accepts caller-supplied IDs that are safe to echo into
// headers, log lines, and JSON: 1-64 characters of [0-9a-zA-Z_-].
func sanitizeTraceID(s string) string {
	if s == "" || len(s) > 64 {
		return ""
	}
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '-', r == '_':
		default:
			return ""
		}
	}
	return s
}

func isHex(s string) bool {
	for _, r := range s {
		if !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f' || r >= 'A' && r <= 'F') {
			return false
		}
	}
	return s != ""
}
