package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hippocrates/internal/cli"
	"hippocrates/internal/obs"
)

// TestDrainUnderLoadLosesNothing is the single-node zero-loss proof the
// fleet chaos harness builds on: a daemon drained mid-soak (BeginDrain is
// exactly what the SIGTERM handler runs first) must complete every job it
// accepted with a response byte-identical to a sequential cli.Run of the
// same request, and must answer everything it rejects with 503 +
// jittered Retry-After — nothing hangs, nothing is dropped, nothing is
// corrupted. Runs under -race in the tier-1 suite.
func TestDrainUnderLoadLosesNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("drain soak in -short mode")
	}
	const (
		jobs       = 24
		names      = 4
		clients    = 8
		drainAfter = 6 // responses received before the drain begins
	)

	// Requests: one buggy publish program under four names (spreading the
	// source-key shards), each submission cache-busted by a distinct step
	// limit so every accepted job does real repair + crash validation.
	mkReq := func(i int) *cli.Request {
		return &cli.Request{
			Program:     fmt.Sprintf("publish-%d.pmc", i%names),
			Source:      srcPublish,
			Mode:        cli.ModeRepair,
			CrashCheck:  true,
			CrashPoints: 16,
			CrashImages: 4,
			StepLimit:   int64(10_000_000 + i), // distinct request key, identical response bytes
			TimeoutMS:   60_000,
		}
	}

	// Sequential ground truth per program name (the step-limit cache
	// buster never shows up in the response, pinned below).
	want := make([]string, names)
	for n := 0; n < names; n++ {
		rec := obs.New()
		root := rec.StartSpan("job")
		resp, err := cli.Run(mkReq(n), root)
		root.End()
		if err != nil {
			t.Fatalf("sequential baseline %d: %v", n, err)
		}
		data, err := resp.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		want[n] = normalizeResponse(t, data)
	}

	s := New(Config{Workers: 4, QueueDepth: jobs})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var (
		responded  atomic.Int64
		drainOnce  sync.Once
		drainedAt  atomic.Int64
		mu         sync.Mutex
		accepted   int
		rejected   int
		mismatches []string
		badReject  []string
		other      []string
	)
	shutdownDone := make(chan error, 1)
	triggerDrain := func() {
		drainOnce.Do(func() {
			drainedAt.Store(responded.Load())
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				defer cancel()
				shutdownDone <- s.Shutdown(ctx)
			}()
		})
	}

	jobCh := make(chan int)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobCh {
				body, err := json.Marshal(mkReq(i))
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := http.Post(ts.URL+"/api/v1/repair", "application/json", strings.NewReader(string(body)))
				if err != nil {
					mu.Lock()
					other = append(other, fmt.Sprintf("job %d: transport: %v", i, err))
					mu.Unlock()
					continue
				}
				data, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					mu.Lock()
					other = append(other, fmt.Sprintf("job %d: read: %v", i, rerr))
					mu.Unlock()
					continue
				}
				if responded.Add(1) >= drainAfter {
					triggerDrain()
				}
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					accepted++
					if got := normalizeResponse(t, data); got != want[i%names] {
						mismatches = append(mismatches, fmt.Sprintf("job %d: accepted response diverged from sequential", i))
					}
				case http.StatusServiceUnavailable:
					rejected++
					if !validRetryAfter(resp.Header.Get("Retry-After")) {
						badReject = append(badReject, fmt.Sprintf("job %d: 503 without a valid Retry-After (%q)",
							i, resp.Header.Get("Retry-After")))
					}
				default:
					other = append(other, fmt.Sprintf("job %d: HTTP %d: %.200s", i, resp.StatusCode, data))
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < jobs; i++ {
		jobCh <- i
	}
	close(jobCh)
	wg.Wait()
	triggerDrain() // belt and braces: drain even if every job raced through

	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("drain did not complete: %v", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("drain hung with accepted jobs outstanding")
	}

	t.Logf("drain soak: %d accepted, %d rejected 503 (drain began after %d responses)",
		accepted, rejected, drainedAt.Load())
	for _, m := range mismatches {
		t.Errorf("HARM: %s", m)
	}
	for _, m := range badReject {
		t.Errorf("bad rejection: %s", m)
	}
	for _, m := range other {
		t.Errorf("unexpected outcome: %s", m)
	}
	if accepted == 0 {
		t.Error("drain began before any job was accepted — the scenario proved nothing")
	}
	if rejected == 0 {
		t.Error("no submission was rejected by the drain — the scenario proved nothing")
	}
	if accepted+rejected != jobs || len(other) != 0 {
		t.Errorf("outcome accounting: %d accepted + %d rejected != %d jobs (%d anomalies)",
			accepted, rejected, jobs, len(other))
	}
}
