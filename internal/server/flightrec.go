package server

import (
	"encoding/json"
	"sync"
	"time"

	"hippocrates/internal/obs"
)

// The flight recorder is the daemon's post-hoc diagnosis buffer: a
// fixed-size in-memory record of the jobs most worth explaining after the
// fact — the N slowest, every failed job, and every backpressure/drain
// rejection — each retained with its full span tree and repair audit
// trail. Production PM failures are typically diagnosed from whatever
// telemetry survived the incident; this is the telemetry that survives.
// Served at GET /api/v1/debug/flightrecorder, schema-validated by
// schema/flightrecorder.schema.json.

// FlightEntry is one retained job: identity, outcome, and the complete
// per-job telemetry (span tree + audit trail) captured at completion.
type FlightEntry struct {
	JobID   string `json:"job_id"`
	TraceID string `json:"trace_id"`
	Program string `json:"program"`
	Mode    string `json:"mode"`
	// Reason is why the entry was retained: "slow" or "failed".
	Reason    string  `json:"reason"`
	Error     string  `json:"error,omitempty"`
	LatencyMS float64 `json:"latency_ms"`
	// UnixMS is the job's completion wall-clock time.
	UnixMS int64 `json:"unix_ms"`
	// Spans is the job's own span-tree document (the same shape
	// GET /api/v1/jobs/{id}/spans serves).
	Spans json.RawMessage `json:"spans"`
	// Audit is the job's repair-provenance trail.
	Audit []*obs.AuditEntry `json:"audit"`
}

// RejectEntry is one rejected submission (429 queue-full or 503 drain).
// There is no job — the queue never accepted one — so only the request's
// identity survives.
type RejectEntry struct {
	TraceID string `json:"trace_id"`
	Program string `json:"program"`
	Mode    string `json:"mode"`
	Status  int    `json:"status"`
	UnixMS  int64  `json:"unix_ms"`
}

// FlightRecorderDoc is the GET /api/v1/debug/flightrecorder body.
type FlightRecorderDoc struct {
	// Slowest holds the N slowest completed jobs, slowest first.
	Slowest []*FlightEntry `json:"slowest"`
	// Failed holds the most recent failed jobs, newest last.
	Failed []*FlightEntry `json:"failed"`
	// Rejected holds the most recent 429/503 rejections, newest last.
	Rejected []*RejectEntry `json:"rejected"`
}

// flightRecorder is the concurrent ring-buffer store behind the doc.
type flightRecorder struct {
	mu          sync.Mutex
	slowMax     int
	failedMax   int
	rejectedMax int
	slow        []*FlightEntry // sorted by LatencyMS descending
	failed      []*FlightEntry // ring, newest last
	rejected    []*RejectEntry // ring, newest last
}

func newFlightRecorder(slowMax, failedMax, rejectedMax int) *flightRecorder {
	if slowMax <= 0 {
		slowMax = 16
	}
	if failedMax <= 0 {
		failedMax = 32
	}
	if rejectedMax <= 0 {
		rejectedMax = 64
	}
	return &flightRecorder{slowMax: slowMax, failedMax: failedMax, rejectedMax: rejectedMax}
}

// offer decides whether a finished job is worth retaining — failed jobs
// always, successful ones when they rank among the slowest — and only
// then calls capture() to materialize the span tree and audit trail, so
// the fast majority of jobs never pay the serialization.
func (f *flightRecorder) offer(job *Job, latencyMS float64, jobErr error, capture func() (json.RawMessage, []*obs.AuditEntry)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if jobErr == nil && len(f.slow) >= f.slowMax && latencyMS <= f.slow[len(f.slow)-1].LatencyMS {
		return
	}
	spans, audit := capture()
	if audit == nil {
		audit = []*obs.AuditEntry{}
	}
	e := &FlightEntry{
		JobID:     job.ID,
		TraceID:   job.TraceID,
		Program:   job.req.Program,
		Mode:      job.req.Mode,
		Reason:    "slow",
		LatencyMS: latencyMS,
		UnixMS:    time.Now().UnixMilli(),
		Spans:     spans,
		Audit:     audit,
	}
	if jobErr != nil {
		e.Reason = "failed"
		e.Error = jobErr.Error()
		f.failed = append(f.failed, e)
		if len(f.failed) > f.failedMax {
			f.failed = f.failed[1:]
		}
		return
	}
	// Insert into the sorted slow list, evicting the fastest retained.
	i := 0
	for i < len(f.slow) && f.slow[i].LatencyMS >= latencyMS {
		i++
	}
	f.slow = append(f.slow, nil)
	copy(f.slow[i+1:], f.slow[i:])
	f.slow[i] = e
	if len(f.slow) > f.slowMax {
		f.slow = f.slow[:f.slowMax]
	}
}

// recordReject retains a rejected submission's identity.
func (f *flightRecorder) recordReject(traceID, program, mode string, status int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rejected = append(f.rejected, &RejectEntry{
		TraceID: traceID,
		Program: program,
		Mode:    mode,
		Status:  status,
		UnixMS:  time.Now().UnixMilli(),
	})
	if len(f.rejected) > f.rejectedMax {
		f.rejected = f.rejected[1:]
	}
}

// doc snapshots the recorder's current contents.
func (f *flightRecorder) doc() *FlightRecorderDoc {
	f.mu.Lock()
	defer f.mu.Unlock()
	doc := &FlightRecorderDoc{
		Slowest:  append([]*FlightEntry{}, f.slow...),
		Failed:   append([]*FlightEntry{}, f.failed...),
		Rejected: append([]*RejectEntry{}, f.rejected...),
	}
	return doc
}

// counts reports the retained entry counts for the metrics gauges.
func (f *flightRecorder) counts() (slow, failed, rejected int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.slow), len(f.failed), len(f.rejected)
}
