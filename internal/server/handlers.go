package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"hippocrates/internal/cli"
)

// MaxRequestBytes bounds the request body (a pmc program plus options).
const MaxRequestBytes = 4 << 20

// Handler returns the daemon's HTTP API:
//
//	POST /api/v1/repair       submit and wait; the cli.Response JSON
//	POST /api/v1/jobs         submit asynchronously; 202 + {"job_id"}
//	GET  /api/v1/jobs/{id}       job status (+ response when done)
//	GET  /api/v1/jobs/{id}/spans the job's own span tree
//	GET  /metrics             aggregate service metrics
//	GET  /healthz             liveness (503 while draining)
//
// Every submit answers with X-Hippocrates-Job (the job ID) and
// X-Hippocrates-Cache (hit/miss against the response cache). A full
// queue is 429 with Retry-After; a draining daemon is 503.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/repair", s.handleRepair)
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /api/v1/jobs/{id}/spans", s.handleJobSpans)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// errorDoc is the JSON body of every non-2xx answer.
type errorDoc struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorDoc{Error: fmt.Sprintf(format, args...)})
}

// decodeAndSubmit parses the request body and enqueues it, mapping
// submission failures onto status codes. A nil job means the response was
// already written.
func (s *Server) decodeAndSubmit(w http.ResponseWriter, r *http.Request) *Job {
	var req cli.Request
	body := http.MaxBytesReader(w, r.Body, MaxRequestBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil
	}
	job, err := s.Submit(&req)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return nil
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return nil
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil
	}
	w.Header().Set("X-Hippocrates-Job", job.ID)
	if job.CacheHit() {
		w.Header().Set("X-Hippocrates-Cache", "hit")
	} else {
		w.Header().Set("X-Hippocrates-Cache", "miss")
	}
	return job
}

// handleRepair is the synchronous path: submit, wait, answer with the
// pipeline's deterministic response document.
func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	job := s.decodeAndSubmit(w, r)
	if job == nil {
		return
	}
	select {
	case <-job.Done():
	case <-r.Context().Done():
		// The client went away; the job keeps running (its result is
		// cached for a retry).
		return
	}
	if err := job.Err(); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "job %s: %v", job.ID, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(job.ResponseJSON())
}

// handleSubmit is the asynchronous path: 202 + the job ID to poll.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	job := s.decodeAndSubmit(w, r)
	if job == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(struct {
		JobID string `json:"job_id"`
		State string `json:"state"`
	}{job.ID, job.State()})
}

// jobDoc is the GET /api/v1/jobs/{id} body.
type jobDoc struct {
	JobID    string          `json:"job_id"`
	State    string          `json:"state"`
	CacheHit bool            `json:"cache_hit"`
	Error    string          `json:"error,omitempty"`
	Response json.RawMessage `json:"response,omitempty"`
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job := s.Job(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	doc := jobDoc{JobID: job.ID, State: job.State(), CacheHit: job.CacheHit()}
	if err := job.Err(); err != nil {
		doc.Error = err.Error()
	}
	doc.Response = job.ResponseJSON()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}

func (s *Server) handleJobSpans(w http.ResponseWriter, r *http.Request) {
	job := s.Job(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	data, err := job.SpansJSON()
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	data, err := s.MetricsJSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}
