package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"strconv"

	"hippocrates/internal/cli"
	"hippocrates/internal/interp"
)

// MaxRequestBytes bounds the request body (a pmc program plus options).
const MaxRequestBytes = 4 << 20

// Handler returns the daemon's HTTP API:
//
//	POST /api/v1/repair       submit and wait; the cli.Response JSON
//	POST /api/v1/jobs         submit asynchronously; 202 + {"job_id"}
//	GET  /api/v1/jobs/{id}       job status (+ response when done)
//	GET  /api/v1/jobs/{id}/spans the job's own span tree
//	GET  /api/v1/debug/flightrecorder  slowest/failed/rejected jobs
//	GET  /metrics             Prometheus text exposition (0.0.4)
//	GET  /metrics.json        the same state as a JSON document
//	GET  /healthz             liveness + drain state + shard depths
//
// Every submit answers with X-Hippocrates-Job (the job ID),
// X-Hippocrates-Cache (hit/miss against the response cache), and
// X-Trace-Id (echoing the inbound X-Trace-Id / W3C traceparent trace-id,
// or a generated one). A full queue is 429 with Retry-After; a draining
// daemon is 503 with Retry-After.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/repair", s.handleRepair)
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /api/v1/jobs/{id}/spans", s.handleJobSpans)
	mux.HandleFunc("GET /api/v1/debug/flightrecorder", s.handleFlightRecorder)
	mux.HandleFunc("GET /metrics", s.handlePromMetrics)
	mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// errorDoc is the JSON body of every non-2xx answer. Kind is set for
// typed failures a client can act on programmatically: "deadline" (the
// job exceeded its wall-clock budget — HTTP 504; retrying the identical
// request elsewhere will time out identically, so routers relay it) and
// "steplimit" (the instruction budget — same determinism argument).
type errorDoc struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorDoc{Error: fmt.Sprintf(format, args...)})
}

// RetryAfterMin / RetryAfterMax bound the jittered Retry-After seconds
// every backpressure answer carries (429 full shard, 503 draining, and
// the draining /healthz — all three stay consistent). A constant value
// would re-synchronize every rejected client onto the same instant and
// re-stampede a recovering shard; jitter spreads the retry wave.
const (
	RetryAfterMin = 1
	RetryAfterMax = 3
)

// setRetryAfter stamps the jittered Retry-After header.
func setRetryAfter(h http.Header) {
	h.Set("Retry-After", strconv.Itoa(RetryAfterMin+rand.IntN(RetryAfterMax-RetryAfterMin+1)))
}

// decodeAndSubmit parses the request body and enqueues it under the
// request's trace ID, mapping submission failures onto status codes. A
// nil job means the response was already written. The trace ID is echoed
// on every outcome — accepted or rejected — so clients can correlate 429s
// too.
func (s *Server) decodeAndSubmit(w http.ResponseWriter, r *http.Request) *Job {
	traceID := TraceFromRequest(r)
	if traceID == "" {
		traceID = NewTraceID()
	}
	w.Header().Set(TraceHeader, traceID)
	if s.cfg.BackendID != "" {
		w.Header().Set(BackendHeader, s.cfg.BackendID)
	}
	var req cli.Request
	body := http.MaxBytesReader(w, r.Body, MaxRequestBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil
	}
	job, err := s.SubmitTraced(&req, traceID)
	switch {
	case errors.Is(err, ErrQueueFull):
		setRetryAfter(w.Header())
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return nil
	case errors.Is(err, ErrDraining):
		setRetryAfter(w.Header())
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return nil
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil
	}
	w.Header().Set("X-Hippocrates-Job", job.ID)
	if job.CacheHit() {
		w.Header().Set("X-Hippocrates-Cache", "hit")
	} else {
		w.Header().Set("X-Hippocrates-Cache", "miss")
	}
	return job
}

// handleRepair is the synchronous path: submit, wait, answer with the
// pipeline's deterministic response document. The trace ID stays in the
// X-Trace-Id header, never the body — the body must stay byte-identical
// across retries for the response cache.
func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	job := s.decodeAndSubmit(w, r)
	if job == nil {
		return
	}
	select {
	case <-job.Done():
	case <-r.Context().Done():
		// The client went away; the job keeps running (its result is
		// cached for a retry).
		return
	}
	if err := job.Err(); err != nil {
		writeJobError(w, job.ID, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(job.ResponseJSON())
}

// writeJobError maps a failed job onto its status code: a wall-clock
// deadline expiry is the server-enforced per-job timeout (-job-timeout),
// answered 504 with a typed error doc so clients and routers can tell
// "this job is too slow by policy" from "this job is broken" (422). Both
// limit kinds are deterministic for a given request, so neither is
// retryable — the fleet router relays them as-is.
func writeJobError(w http.ResponseWriter, jobID string, err error) {
	var le *interp.LimitError
	if errors.As(err, &le) {
		doc := errorDoc{Error: fmt.Sprintf("job %s: %v", jobID, err)}
		status := http.StatusUnprocessableEntity
		switch le.Resource {
		case "deadline":
			doc.Kind = "deadline"
			status = http.StatusGatewayTimeout
		case "steps":
			doc.Kind = "steplimit"
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(doc)
		return
	}
	writeError(w, http.StatusUnprocessableEntity, "job %s: %v", jobID, err)
}

// handleSubmit is the asynchronous path: 202 + the job ID to poll.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	job := s.decodeAndSubmit(w, r)
	if job == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(struct {
		JobID   string `json:"job_id"`
		State   string `json:"state"`
		TraceID string `json:"trace_id"`
	}{job.ID, job.State(), job.TraceID})
}

// jobDoc is the GET /api/v1/jobs/{id} body.
type jobDoc struct {
	JobID    string          `json:"job_id"`
	TraceID  string          `json:"trace_id"`
	State    string          `json:"state"`
	CacheHit bool            `json:"cache_hit"`
	Error    string          `json:"error,omitempty"`
	Response json.RawMessage `json:"response,omitempty"`
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job := s.Job(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	doc := jobDoc{JobID: job.ID, TraceID: job.TraceID, State: job.State(), CacheHit: job.CacheHit()}
	if err := job.Err(); err != nil {
		doc.Error = err.Error()
	}
	doc.Response = job.ResponseJSON()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(TraceHeader, job.TraceID)
	json.NewEncoder(w).Encode(doc)
}

func (s *Server) handleJobSpans(w http.ResponseWriter, r *http.Request) {
	job := s.Job(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	data, err := job.SpansJSON()
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(TraceHeader, job.TraceID)
	w.Write(data)
}

func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	data, err := json.MarshalIndent(s.flight.doc(), "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	data, err := s.PromText()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", PromContentType)
	w.Write(data)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	data, err := s.MetricsJSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// BackendHeader carries the daemon's fleet identity (Config.BackendID)
// on every submit outcome and /healthz body, so the router and the chaos
// harness can attribute each response to the node that produced it.
const BackendHeader = "X-Hippocrates-Backend"

// healthzDoc is the GET /healthz body: liveness plus the load signals a
// balancer or autoscaler actually routes on. BackendID identifies the
// node inside a fleet (empty when standalone).
type healthzDoc struct {
	Status    string     `json:"status"`
	BackendID string     `json:"backend_id,omitempty"`
	Draining  bool       `json:"draining"`
	InFlight  int64      `json:"in_flight"`
	Shards    []ShardDoc `json:"shards"`
}

// handleHealthz reports drain state and per-shard queue depth. While
// draining it answers 503 with the same jittered Retry-After the 429
// path uses, so clients back off uniformly (and unsynchronized).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	doc := healthzDoc{
		Status:    "ok",
		BackendID: s.cfg.BackendID,
		Draining:  s.Draining(),
		InFlight:  s.inFlight.Load(),
		Shards:    s.shardDocs(),
	}
	w.Header().Set("Content-Type", "application/json")
	if s.cfg.BackendID != "" {
		w.Header().Set(BackendHeader, s.cfg.BackendID)
	}
	if doc.Draining {
		doc.Status = "draining"
		setRetryAfter(w.Header())
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(doc)
}
