package server

import (
	"embed"

	"hippocrates/internal/obs"
)

// The HTTP API's output contract. `make server-smoke` round-trips a
// corpus program through a live daemon and validates both the response
// body and /metrics against these schemas, so a change to either shape
// must update them in the same commit.
//
//go:embed schema/response.schema.json schema/metrics.schema.json schema/flightrecorder.schema.json
var schemaFS embed.FS

// ResponseSchema returns the checked-in schema for the repair response.
func ResponseSchema() []byte { return mustSchema("schema/response.schema.json") }

// MetricsSchema returns the checked-in schema for /metrics.json.
func MetricsSchema() []byte { return mustSchema("schema/metrics.schema.json") }

// FlightRecorderSchema returns the checked-in schema for
// GET /api/v1/debug/flightrecorder.
func FlightRecorderSchema() []byte { return mustSchema("schema/flightrecorder.schema.json") }

func mustSchema(name string) []byte {
	b, err := schemaFS.ReadFile(name)
	if err != nil {
		panic("server: embedded schema missing: " + err.Error())
	}
	return b
}

// ValidateResponse checks a response document against the schema using
// the obs package's embedded zero-dependency validator.
func ValidateResponse(doc []byte) error { return obs.ValidateJSON(ResponseSchema(), doc) }

// ValidateMetrics checks a /metrics.json document against the schema.
func ValidateMetrics(doc []byte) error { return obs.ValidateJSON(MetricsSchema(), doc) }

// ValidateFlightRecorder checks a flight-recorder document against the
// schema.
func ValidateFlightRecorder(doc []byte) error {
	return obs.ValidateJSON(FlightRecorderSchema(), doc)
}
