// Package loadgen is the hippocratesd load harness: it replays the
// crashsim-able corpus (the 15 non-redis buggy targets, each with full
// repair + crash-schedule validation) against a live daemon at a
// configurable concurrency, twice — a cold round that must do all the
// work, then a warm round that should ride the response cache — and
// reports throughput, client-observed p50/p99 latency, per-round cache
// hit ratios, the warm-over-cold speedup, and a per-round time series of
// throughput and daemon queue depth. `hippocratesd -selftest` runs it
// against an in-process daemon and writes the result to
// BENCH_server.json.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hippocrates/internal/cli"
	"hippocrates/internal/corpus"
)

// The corpus replay's crash-validation budgets: small enough that a full
// round stays in seconds, large enough that every target exercises real
// schedule enumeration and recovery boots.
const (
	CrashPoints = 24
	CrashImages = 4
	StepLimit   = 50_000_000
)

// CorpusRequests builds one repair+crashcheck request per crashsim-able
// corpus target (seeded bugs and recovery entries; the eADR redis ports
// carry no crash-schedule evidence and are excluded — the same set the
// crash-sweep benchmark uses).
func CorpusRequests() []*cli.Request {
	var out []*cli.Request
	for _, p := range corpus.All() {
		if p.Target == "redis" || len(p.Bugs) == 0 {
			continue
		}
		out = append(out, &cli.Request{
			Program:     p.Name + ".pmc",
			Source:      p.Source(),
			Mode:        cli.ModeRepair,
			Entry:       p.Entry,
			CrashCheck:  true,
			CrashPoints: CrashPoints,
			CrashImages: CrashImages,
			StepLimit:   StepLimit,
		})
	}
	return out
}

// Options configures a load run.
type Options struct {
	// BaseURL is the driven endpoint's root — a hippocratesd backend or a
	// hippocratesfleet router, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Concurrency is the number of client workers (default 8).
	Concurrency int
	// Requests overrides the replayed set (default CorpusRequests).
	Requests []*cli.Request
	// Client overrides the HTTP client (default: 5-minute timeout).
	Client *http.Client
	// SampleEvery sets the time-series sampling interval (default 250ms;
	// negative disables sampling).
	SampleEvery time.Duration
	// ProbeURLs overrides where the sampler reads queue state from
	// (default: BaseURL). Driving a fleet, list every backend here: the
	// sample carries the summed depth/in-flight across the fleet.
	ProbeURLs []string
	// Schedule fires fault-injection (or any other) events while a round
	// runs — the chaos harness's kill/drain/latency triggers. Each event
	// fires once, on completion count or wall clock, whichever its fields
	// ask for.
	Schedule []Event
	// Retry503 retries 503 rejections (short flat backoff, like the 429
	// path) instead of failing the job. A fleet client needs it: a 503
	// means "everything is draining or down right now", which chaos
	// scenarios make a transient condition.
	Retry503 bool
	// OnResult, when set, receives every finished job's outcome — the
	// chaos harness's hook for byte-comparing accepted responses against
	// the sequential ground truth.
	OnResult func(req *cli.Request, res *Outcome)
	// Log receives progress lines (nil = silent).
	Log io.Writer
}

// Event is one scheduled action inside a round: Run fires once when
// AfterDone jobs have completed (if > 0) or After wall time has elapsed
// (if > 0) — whichever is set; with both set, whichever happens first.
// Completion-count triggers are the chaos harness's default: they place
// a backend kill "mid-load" regardless of how fast the host is.
type Event struct {
	AfterDone int
	After     time.Duration
	Run       func()
}

// Outcome is one job's client-observed result.
type Outcome struct {
	// Status is the final HTTP status (200 for accepted jobs; a terminal
	// 4xx/5xx when retries were exhausted or not applicable).
	Status int
	// Body is the final response body (the cli.Response JSON on 200).
	Body []byte
	// Backend is the X-Hippocrates-Backend identity that answered, when
	// the daemon was booted with one.
	Backend string
	// Hit reports a response-cache hit (X-Hippocrates-Cache).
	Hit bool
	// RetryAfterOK reports that every 429/503 seen along the way carried
	// a parseable Retry-After header — the "rejections do no harm"
	// side-condition the chaos scenarios assert.
	RetryAfterOK bool
	Latency      time.Duration
	Retries429   int
	Retries503   int
	Err          error
}

// Sample is one time-series observation taken while a round runs: the
// client's own progress plus the daemon's queue state from /metrics.json
// at that instant. The series shows how the run actually unfolded —
// ramp-up, queue saturation under backpressure, the cache-hit cliff on
// the warm round — which the round aggregates average away.
type Sample struct {
	OffsetMS   float64 `json:"offset_ms"`
	Done       int     `json:"done"`
	Throughput float64 `json:"throughput_jobs_per_sec"`
	QueueDepth int     `json:"queue_depth"`
	InFlight   int64   `json:"in_flight"`
}

// RoundStats is one replay round as the client observed it. HitRatio is
// this round's own cache-hit fraction (hits/jobs): the cold round's
// should be ~0 and the warm round's ~1 — the aggregate ratio the daemon
// reports (~0.5 after both rounds) hides exactly that distinction.
type RoundStats struct {
	Jobs       int     `json:"jobs"`
	Failures   int     `json:"failures"`
	Retries429 int     `json:"retries_429"`
	Retries503 int     `json:"retries_503,omitempty"`
	CacheHits  int     `json:"cache_hits"`
	HitRatio   float64 `json:"hit_ratio"`
	WallMS     float64 `json:"wall_ms"`
	Throughput float64 `json:"throughput_jobs_per_sec"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	MaxMS      float64 `json:"max_ms"`
	// Backends counts accepted jobs per answering backend identity — only
	// populated when the daemons were booted with -id (fleet runs).
	Backends map[string]int `json:"backends,omitempty"`
	Samples  []Sample       `json:"samples"`
}

// Report is the BENCH_server.json document.
type Report struct {
	Targets     int `json:"targets"`
	Concurrency int `json:"concurrency"`
	Config      struct {
		CrashPoints int   `json:"crash_points"`
		CrashImages int   `json:"crash_images"`
		StepLimit   int64 `json:"step_limit"`
	} `json:"config"`
	Cold RoundStats `json:"cold"`
	Warm RoundStats `json:"warm"`
	// WarmSpeedup is cold wall time over warm wall time — the headline
	// the response cache must earn.
	WarmSpeedup float64 `json:"warm_speedup"`
	// CacheHitRatio is the daemon's /metrics.json service-level ratio
	// after both rounds — an aggregate over cold+warm; the per-round
	// Cold.HitRatio / Warm.HitRatio are the interpretable numbers.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
}

// Run replays the request set cold then warm and collects the report.
func Run(opts Options) (*Report, error) {
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	if opts.Requests == nil {
		opts.Requests = CorpusRequests()
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 5 * time.Minute}
	}
	rep := &Report{Targets: len(opts.Requests), Concurrency: opts.Concurrency}
	rep.Config.CrashPoints = CrashPoints
	rep.Config.CrashImages = CrashImages
	rep.Config.StepLimit = StepLimit

	for i, name := range []string{"cold", "warm"} {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "loadgen: %s round: %d jobs at concurrency %d\n",
				name, len(opts.Requests), opts.Concurrency)
		}
		rs, err := Round(opts)
		if err != nil {
			return nil, fmt.Errorf("%s round: %w", name, err)
		}
		if i == 0 {
			rep.Cold = *rs
		} else {
			rep.Warm = *rs
		}
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "loadgen: %s round: %.0f ms wall, %.1f jobs/s, p50 %.1f ms, p99 %.1f ms, %d cache hit(s)\n",
				name, rs.WallMS, rs.Throughput, rs.P50MS, rs.P99MS, rs.CacheHits)
		}
	}
	if rep.Warm.WallMS > 0 {
		rep.WarmSpeedup = rep.Cold.WallMS / rep.Warm.WallMS
	}
	ratio, err := fetchHitRatio(opts)
	if err != nil {
		return nil, err
	}
	rep.CacheHitRatio = ratio
	return rep, nil
}

// Round pushes every request through the endpoint once, opts.Concurrency
// at a time, retrying 429 backpressure rejections (and, with Retry503,
// 503 rejections) with a short backoff, firing scheduled events as the
// round progresses. Exported so the chaos harness can drive single
// instrumented rounds instead of the cold/warm pair Run hard-codes.
func Round(opts Options) (*RoundStats, error) {
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	if opts.Requests == nil {
		opts.Requests = CorpusRequests()
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 5 * time.Minute}
	}
	jobs := make(chan *cli.Request)
	results := make(chan *Outcome, len(opts.Requests))
	var done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range jobs {
				o := post(opts, req)
				done.Add(1)
				if opts.OnResult != nil {
					opts.OnResult(req, o)
				}
				results <- o
			}
		}()
	}
	start := time.Now()
	stopSampler := startSampler(opts, start, &done)
	stopSchedule := startSchedule(opts, start, &done)
	for _, req := range opts.Requests {
		jobs <- req
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)
	samples := stopSampler()
	stopSchedule()
	close(results)

	rs := &RoundStats{Jobs: len(opts.Requests), WallMS: float64(wall.Nanoseconds()) / 1e6, Samples: samples}
	var lats []float64
	for o := range results {
		rs.Retries429 += o.Retries429
		rs.Retries503 += o.Retries503
		if o.Err != nil {
			rs.Failures++
			continue
		}
		if o.Hit {
			rs.CacheHits++
		}
		if o.Backend != "" {
			if rs.Backends == nil {
				rs.Backends = map[string]int{}
			}
			rs.Backends[o.Backend]++
		}
		lats = append(lats, float64(o.Latency.Nanoseconds())/1e6)
	}
	if rs.Failures > 0 {
		return rs, fmt.Errorf("%d of %d jobs failed", rs.Failures, rs.Jobs)
	}
	sort.Float64s(lats)
	if len(lats) > 0 {
		rs.P50MS = lats[len(lats)/2]
		rs.P99MS = lats[(len(lats)*99)/100]
		rs.MaxMS = lats[len(lats)-1]
	}
	if rs.Jobs > 0 {
		rs.HitRatio = float64(rs.CacheHits) / float64(rs.Jobs)
	}
	if wall > 0 {
		rs.Throughput = float64(rs.Jobs) / wall.Seconds()
	}
	return rs, nil
}

// startSampler spawns the time-series sampler and returns the function
// that stops it and yields the collected samples. Each tick records
// client progress plus the daemon's queue state; a failed /metrics.json
// probe keeps the client-side fields (the daemon may be saturated —
// that's exactly when the series is interesting).
func startSampler(opts Options, start time.Time, done *atomic.Int64) func() []Sample {
	every := opts.SampleEvery
	if every < 0 {
		return func() []Sample { return nil }
	}
	if every == 0 {
		every = 250 * time.Millisecond
	}
	var (
		samples []Sample
		stop    = make(chan struct{})
		fin     = make(chan struct{})
	)
	go func() {
		defer close(fin)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-tick.C:
				elapsed := now.Sub(start)
				s := Sample{
					OffsetMS: float64(elapsed.Nanoseconds()) / 1e6,
					Done:     int(done.Load()),
				}
				if elapsed > 0 {
					s.Throughput = float64(s.Done) / elapsed.Seconds()
				}
				if depth, inFlight, err := probeQueue(opts); err == nil {
					s.QueueDepth = depth
					s.InFlight = inFlight
				}
				samples = append(samples, s)
			}
		}
	}()
	return func() []Sample {
		close(stop)
		<-fin
		if samples == nil {
			samples = []Sample{}
		}
		return samples
	}
}

// startSchedule arms the round's scheduled events (if any) and returns
// the function that disarms the watcher. Each event fires exactly once,
// from a single goroutine polling completion count and wall clock — Run
// callbacks therefore never race each other.
func startSchedule(opts Options, start time.Time, done *atomic.Int64) func() {
	if len(opts.Schedule) == 0 {
		return func() {}
	}
	fired := make([]bool, len(opts.Schedule))
	stop := make(chan struct{})
	fin := make(chan struct{})
	go func() {
		defer close(fin)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-tick.C:
				n := int(done.Load())
				elapsed := now.Sub(start)
				remaining := false
				for i, ev := range opts.Schedule {
					if fired[i] {
						continue
					}
					if (ev.AfterDone > 0 && n >= ev.AfterDone) || (ev.After > 0 && elapsed >= ev.After) {
						fired[i] = true
						ev.Run()
						continue
					}
					remaining = true
				}
				if !remaining {
					return
				}
			}
		}
	}()
	return func() {
		close(stop)
		<-fin
	}
}

// probeQueue reads current queue depth and in-flight count — summed over
// ProbeURLs when set (a fleet's backends), else from BaseURL. Endpoints
// that refuse the probe (killed backends mid-chaos) contribute zero.
func probeQueue(opts Options) (depth int, inFlight int64, err error) {
	urls := opts.ProbeURLs
	if len(urls) == 0 {
		urls = []string{opts.BaseURL}
	}
	ok := false
	for _, u := range urls {
		d, f, perr := probeOne(opts.Client, u)
		if perr != nil {
			err = perr
			continue
		}
		ok = true
		depth += d
		inFlight += f
	}
	if ok {
		return depth, inFlight, nil
	}
	return 0, 0, err
}

func probeOne(client *http.Client, baseURL string) (depth int, inFlight int64, err error) {
	resp, err := client.Get(baseURL + "/metrics.json")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var doc struct {
		Queue struct {
			Depth    int   `json:"depth"`
			InFlight int64 `json:"in_flight"`
		} `json:"queue"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return 0, 0, err
	}
	return doc.Queue.Depth, doc.Queue.InFlight, nil
}

// post submits one request synchronously, honoring 429 (and, when
// enabled, 503) + Retry-After. Every terminal answer — success or not —
// comes back as an Outcome; Err doubles as the failed/ok discriminator.
func post(opts Options, req *cli.Request) *Outcome {
	o := &Outcome{RetryAfterOK: true}
	body, err := json.Marshal(req)
	if err != nil {
		o.Err = err
		return o
	}
	start := time.Now()
	for {
		resp, err := opts.Client.Post(opts.BaseURL+"/api/v1/repair", "application/json", bytes.NewReader(body))
		if err != nil {
			o.Err = err
			return o
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			o.Err = err
			return o
		}
		o.Status = resp.StatusCode
		o.Body = data
		o.Backend = resp.Header.Get("X-Hippocrates-Backend")
		switch resp.StatusCode {
		case http.StatusOK:
			o.Latency = time.Since(start)
			o.Hit = resp.Header.Get("X-Hippocrates-Cache") == "hit"
			return o
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if _, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil {
				o.RetryAfterOK = false
			}
			if resp.StatusCode == http.StatusServiceUnavailable {
				if !opts.Retry503 {
					o.Err = fmt.Errorf("%s: HTTP 503: %s", req.Program, data)
					return o
				}
				o.Retries503++
			} else {
				o.Retries429++
			}
			if o.Retries429+o.Retries503 > 1000 {
				o.Err = fmt.Errorf("gave up after %d backpressure retries", o.Retries429+o.Retries503)
				return o
			}
			time.Sleep(50 * time.Millisecond)
		default:
			o.Err = fmt.Errorf("%s: HTTP %d: %s", req.Program, resp.StatusCode, data)
			return o
		}
	}
}

// fetchHitRatio reads the daemon's service-level cache hit ratio.
func fetchHitRatio(opts Options) (float64, error) {
	resp, err := opts.Client.Get(opts.BaseURL + "/metrics.json")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var doc struct {
		Cache struct {
			HitRatio float64 `json:"hit_ratio"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return 0, err
	}
	return doc.Cache.HitRatio, nil
}

// WriteJSON runs the load and writes the report to path.
func WriteJSON(path string, opts Options) (*Report, error) {
	rep, err := Run(opts)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return rep, os.WriteFile(path, append(data, '\n'), 0o644)
}
