package server

import (
	"sync"

	"hippocrates/internal/cli"
	"hippocrates/internal/crashsim"
	"hippocrates/internal/ir"
	"hippocrates/internal/obs"
)

// artifact is everything memoizable about one program source: the
// compiled module (cloned per job; the master is never mutated) and the
// crash-verdict cache its jobs share.
type artifact struct {
	mod *ir.Module

	mu sync.Mutex
	vc *crashsim.VerdictCache
}

// verdicts returns the artifact's shared verdict cache, creating it on
// first use.
func (a *artifact) verdicts() *crashsim.VerdictCache {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.vc == nil {
		a.vc = crashsim.NewVerdictCache()
	}
	return a.vc
}

// retireVerdicts drops the shared cache IF it is still the one the caller
// was handed: a job's repair reset it after rewriting recovery-reachable
// code, so the surviving entries describe recovery code future jobs of
// this source won't run.
func (a *artifact) retireVerdicts(old *crashsim.VerdictCache) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.vc == old {
		a.vc = nil
	}
}

// verdictStats sums the hit/miss counters (zero when no crash job ran).
func (a *artifact) verdictStats() (hits, misses int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.vc == nil {
		return 0, 0
	}
	return a.vc.Stats()
}

// artifactCache memoizes compiles keyed by the request's source hash,
// with LRU eviction. Compiles happen under the cache lock: same-source
// jobs land on one shard anyway (see shardOf), so there is no benefit in
// letting two workers duplicate the same front-end run.
type artifactCache struct {
	mu     sync.Mutex
	max    int
	m      map[string]*artifact
	order  []string // LRU, most recent last
	hits   int64
	misses int64
}

func newArtifactCache(max int) *artifactCache {
	return &artifactCache{max: max, m: make(map[string]*artifact)}
}

// get returns the artifact for the request's source, compiling on miss.
// Front-end telemetry of a fresh compile is recorded under rec so the
// aggregate metrics still see lex/parse/lower costs.
func (c *artifactCache) get(req *cli.Request, rec *obs.Recorder) (*artifact, error) {
	key := req.SourceKey()
	c.mu.Lock()
	defer c.mu.Unlock()
	if art, ok := c.m[key]; ok {
		c.hits++
		c.touch(key)
		return art, nil
	}
	c.misses++
	sp := rec.StartSpan("compile")
	sp.SetAttr("program", req.Program)
	mod, err := cli.CompileRequest(req, sp)
	sp.End()
	if err != nil {
		return nil, err
	}
	art := &artifact{mod: mod}
	c.m[key] = art
	c.order = append(c.order, key)
	for len(c.order) > c.max {
		delete(c.m, c.order[0])
		c.order = c.order[1:]
	}
	return art, nil
}

func (c *artifactCache) touch(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), key)
			return
		}
	}
}

// stats returns lookup counters plus the verdict-cache totals of every
// retained artifact.
func (c *artifactCache) stats() (hits, misses, vHits, vMisses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, art := range c.m {
		h, m := art.verdictStats()
		vHits += h
		vMisses += m
	}
	return c.hits, c.misses, vHits, vMisses
}

// responseCache memoizes serialized responses keyed by the canonical
// request hash, with LRU eviction. The pipeline is deterministic, so the
// cached bytes are exactly what a fresh run would produce.
type responseCache struct {
	mu     sync.Mutex
	max    int
	m      map[string][]byte
	order  []string
	hits   int64
	misses int64
}

func newResponseCache(max int) *responseCache {
	return &responseCache{max: max, m: make(map[string][]byte)}
}

func (c *responseCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, ok := c.m[key]
	if ok {
		c.hits++
		for i, k := range c.order {
			if k == key {
				c.order = append(append(c.order[:i:i], c.order[i+1:]...), key)
				break
			}
		}
	} else {
		c.misses++
	}
	return data, ok
}

func (c *responseCache) put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; ok {
		return
	}
	c.m[key] = data
	c.order = append(c.order, key)
	for len(c.order) > c.max {
		delete(c.m, c.order[0])
		c.order = c.order[1:]
	}
}

func (c *responseCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
