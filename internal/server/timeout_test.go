package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hippocrates/internal/cli"
)

// TestJobTimeoutReturns504: the server-side per-job deadline
// (-job-timeout / Config.DefaultTimeout) must kill a runaway job via the
// interpreter's deadline plumbing and surface as a typed 504 error doc —
// not occupy the worker forever, and not masquerade as a generic 422.
func TestJobTimeoutReturns504(t *testing.T) {
	s := New(Config{Workers: 1, DefaultTimeout: 300 * time.Millisecond})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, err := json.Marshal(&cli.Request{
		Program:   "spin.pmc",
		Source:    srcSpin,
		Mode:      cli.ModeCheck,
		StepLimit: 2_000_000_000, // far beyond what 300ms allows: the deadline must fire first
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := http.Post(ts.URL+"/api/v1/repair", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("runaway job: HTTP %d (want 504): %.300s", resp.StatusCode, data)
	}
	var doc struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("504 body is not an error doc: %v: %.300s", err, data)
	}
	if doc.Kind != "deadline" {
		t.Errorf("504 kind %q, want \"deadline\" (%s)", doc.Kind, doc.Error)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("deadline enforcement took %s — the worker was occupied far past the budget", elapsed)
	}

	// The step-limit sibling stays a 422, but typed.
	body2, err := json.Marshal(&cli.Request{
		Program:   "spin.pmc",
		Source:    srcSpin,
		Mode:      cli.ModeCheck,
		StepLimit: 10_000,
		TimeoutMS: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(ts.URL+"/api/v1/repair", "application/json", strings.NewReader(string(body2)))
	if err != nil {
		t.Fatal(err)
	}
	data2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("step-limited job: HTTP %d (want 422): %.300s", resp2.StatusCode, data2)
	}
	var doc2 struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data2, &doc2); err != nil {
		t.Fatal(err)
	}
	if doc2.Kind != "steplimit" {
		t.Errorf("422 kind %q, want \"steplimit\"", doc2.Kind)
	}
}
