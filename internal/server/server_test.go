package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hippocrates/internal/cli"
)

// srcPublish is the canonical unflushed-payload bug with both recovery
// entries, so repair + crash validation exercise the whole service path.
const srcPublish = `
pm int payload;
pm int flag;

int invariant_check() {
	if (payload != 0 && payload != 42) { return 1; }
	if (flag != 0 && flag != 1) { return 2; }
	return 0;
}

int crash_check(int completed) {
	if (completed >= 1) {
		if (payload != 42) { return 1; }
		if (flag != 1) { return 2; }
	}
	return 0;
}

int main() {
	payload = 42; // missing flush
	flag = 1;
	clwb(&flag);
	sfence();
	pm_checkpoint();
	return 0;
}
`

// srcSpin burns its whole step budget in a tight loop — the test's stand-in
// for a long job that keeps a worker busy.
const srcSpin = `
int main() {
	int x = 0;
	while (x >= 0) { x = 1; }
	return x;
}
`

// srcOverPersist is clean under the bug finder but flushes every store
// twice, so an optimize request yields a non-trivial edit set that must be
// proven by crashsim verdict identity (both recovery entries are present).
const srcOverPersist = `
pm int slot;

int invariant_check() {
	if (slot < 0 || slot > 6) { return 1; }
	return 0;
}

int crash_check(int completed) {
	int done = completed - 1;
	if (done < 0) { done = 0; }
	if (done > 6) { done = 6; }
	if (slot != done) { return 1; }
	return 0;
}

int main() {
	slot = 0;
	clwb(&slot);
	sfence();
	pm_checkpoint();
	int i = 1;
	while (i <= 6) {
		slot = i;
		clwb(&slot);
		clwb(&slot);
		sfence();
		pm_checkpoint();
		i = i + 1;
	}
	return 0;
}
`

func publishReq() *cli.Request {
	return &cli.Request{
		Program:     "publish.pmc",
		Source:      srcPublish,
		Mode:        cli.ModeRepair,
		CrashCheck:  true,
		CrashPoints: 16,
		CrashImages: 4,
		StepLimit:   10_000_000,
	}
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s did not finish", j.ID)
	}
}

func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// TestResponseCacheServesByteIdentical: the second identical submit must be
// answered from the response cache, byte-for-byte, without queueing, and
// the response must satisfy the checked-in schema.
func TestResponseCacheServesByteIdentical(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)

	j1, err := s.Submit(publishReq())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	if j1.State() != StateDone {
		t.Fatalf("job 1: state %s, err %v", j1.State(), j1.Err())
	}
	if j1.CacheHit() {
		t.Fatal("job 1 claims a cache hit on an empty cache")
	}
	first := j1.ResponseJSON()
	if err := ValidateResponse(first); err != nil {
		t.Fatalf("response violates schema: %v", err)
	}

	j2, err := s.Submit(publishReq())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if !j2.CacheHit() {
		t.Error("identical resubmit missed the response cache")
	}
	if !bytes.Equal(first, j2.ResponseJSON()) {
		t.Errorf("cached response differs: %d vs %d bytes", len(first), len(j2.ResponseJSON()))
	}

	// The repaired program must actually be repaired.
	var doc struct {
		Fixed      bool `json:"fixed"`
		BugsBefore int  `json:"bugs_before"`
		Crash      *struct {
			Passed bool `json:"passed"`
		} `json:"crash"`
	}
	if err := json.Unmarshal(first, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.BugsBefore == 0 || !doc.Fixed || doc.Crash == nil || !doc.Crash.Passed {
		t.Errorf("unexpected verdict: bugs_before=%d fixed=%v crash=%+v",
			doc.BugsBefore, doc.Fixed, doc.Crash)
	}
}

// TestOptimizeRoundTripValidates: an optimize request on a clean
// over-persisting program must come back schema-valid with a populated
// optimize document — at least one flush deleted, proven by crashsim —
// and the always-present lints array.
func TestOptimizeRoundTripValidates(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)

	j, err := s.Submit(&cli.Request{
		Program:     "overpersist.pmc",
		Source:      srcOverPersist,
		Mode:        cli.ModeCheck,
		Optimize:    true,
		CrashPoints: 16,
		CrashImages: 4,
		StepLimit:   10_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != StateDone {
		t.Fatalf("job: state %s, err %v", j.State(), j.Err())
	}
	body := j.ResponseJSON()
	if err := ValidateResponse(body); err != nil {
		t.Fatalf("optimize response violates schema: %v", err)
	}

	var doc struct {
		BugsBefore int `json:"bugs_before"`
		Lints      []struct {
			Kind string `json:"kind"`
			Site string `json:"site"`
		} `json:"lints"`
		Optimize *struct {
			Candidates     int     `json:"candidates"`
			Deleted        int     `json:"deleted"`
			Rejected       int     `json:"rejected"`
			SimBefore      float64 `json:"sim_ns_before"`
			SimAfter       float64 `json:"sim_ns_after"`
			CrashsimProven bool    `json:"crashsim_proven"`
			CrashPoints    int     `json:"crash_points"`
		} `json:"optimize"`
		OptimizedIR string `json:"optimized_ir"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.BugsBefore != 0 {
		t.Errorf("program should be clean, got %d bugs", doc.BugsBefore)
	}
	if doc.Optimize == nil {
		t.Fatal("response is missing the optimize document")
	}
	if doc.Optimize.Deleted < 1 {
		t.Errorf("expected at least one deleted flush, got %+v", doc.Optimize)
	}
	if !doc.Optimize.CrashsimProven || doc.Optimize.CrashPoints == 0 {
		t.Errorf("edits must be crashsim-proven: %+v", doc.Optimize)
	}
	if doc.Optimize.SimAfter >= doc.Optimize.SimBefore {
		t.Errorf("no simulated-cost reduction: before %.0f, after %.0f",
			doc.Optimize.SimBefore, doc.Optimize.SimAfter)
	}
	if doc.OptimizedIR == "" {
		t.Error("accepted edits but no optimized_ir in the response")
	}
	// The doubled flush is the only lint; once deleted it must be gone.
	if len(doc.Lints) != 0 {
		t.Errorf("expected no residual lints after optimize, got %v", doc.Lints)
	}
}

// srcMTPublish is the cross-thread unordered-publish showcase: clean
// under the default schedule, buggy under an explored interleaving.
const srcMTPublish = `
struct shard {
	int stats;
	int val;
	byte pad[48];
};

struct root {
	shard s;
	byte *head;
};

void worker() {
	root *r = (root*) pm_root(sizeof(root));
	r->s.val = 42;
}

int main() {
	root *r = (root*) pm_root(sizeof(root));
	int t = spawn(worker);
	r->s.stats = r->s.stats + 1;
	clwb((byte*) &r->s.stats);
	sfence();
	join(t);
	r->head = (byte*) &r->s;
	clwb((byte*) &r->head);
	sfence();
	pm_checkpoint();
	return r->s.val;
}

int invariant_check() {
	root *r = (root*) pm_root(sizeof(root));
	if ((int) r->head != 0) {
		shard *s = (shard*) r->head;
		if (s->val != 42) { return 1; }
	}
	return 0;
}

int crash_check(int completed) {
	root *r = (root*) pm_root(sizeof(root));
	if (completed >= 1) {
		if ((int) r->head == 0) { return 2; }
	}
	return invariant_check();
}
`

// TestThreadsRoundTripValidates: an interleaving-aware repair request
// must come back schema-valid with a populated schedules document, a
// replayable buggy-schedule id, per-interleaving crash sweeps that all
// pass, and byte-identical bytes from the response cache on resubmit.
func TestThreadsRoundTripValidates(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)

	mtReq := func() *cli.Request {
		return &cli.Request{
			Program:      "mtpublish.pmc",
			Source:       srcMTPublish,
			Mode:         cli.ModeRepair,
			Threads:      true,
			MaxSchedules: 16,
			CrashCheck:   true,
			CrashPoints:  16,
			CrashImages:  4,
			StepLimit:    10_000_000,
		}
	}
	j, err := s.Submit(mtReq())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != StateDone {
		t.Fatalf("job: state %s, err %v", j.State(), j.Err())
	}
	body := j.ResponseJSON()
	if err := ValidateResponse(body); err != nil {
		t.Fatalf("threads response violates schema: %v", err)
	}

	var doc struct {
		Fixed      bool `json:"fixed"`
		BugsBefore int  `json:"bugs_before"`
		Schedules  *struct {
			Threads       int    `json:"threads"`
			BuggySchedule string `json:"buggy_schedule"`
			Stats         struct {
				Explored    int `json:"schedules_explored"`
				CrashPoints int `json:"crash_points"`
			} `json:"stats"`
		} `json:"schedules"`
		CrashBySchedule []struct {
			Schedule string `json:"schedule"`
			Report   struct {
				Passed bool `json:"passed"`
			} `json:"report"`
		} `json:"crash_by_schedule"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.BugsBefore == 0 || !doc.Fixed {
		t.Errorf("unexpected verdict: bugs_before=%d fixed=%v", doc.BugsBefore, doc.Fixed)
	}
	if doc.Schedules == nil {
		t.Fatal("response is missing the schedules document")
	}
	if doc.Schedules.Threads != 2 || doc.Schedules.BuggySchedule == "" {
		t.Errorf("unexpected schedules doc: %+v", doc.Schedules)
	}
	if doc.Schedules.Stats.Explored == 0 || doc.Schedules.Stats.CrashPoints == 0 {
		t.Errorf("empty exploration accounting: %+v", doc.Schedules.Stats)
	}
	if len(doc.CrashBySchedule) != doc.Schedules.Stats.Explored {
		t.Errorf("crash sweeps cover %d schedules, explored %d",
			len(doc.CrashBySchedule), doc.Schedules.Stats.Explored)
	}
	for _, c := range doc.CrashBySchedule {
		if !c.Report.Passed {
			t.Errorf("schedule %s failed post-repair crash validation", c.Schedule)
		}
	}

	// The exploration's accounting must surface in the service telemetry:
	// the recorder merges each job's span counters, so /metrics and
	// /metrics.json carry the schedule family after one threads job.
	counters := s.Metrics().Counters
	for _, key := range []string{"schedule.explored", "schedule.crash_points"} {
		if counters[key] <= 0 {
			t.Errorf("counter %s = %d after a threads job, want > 0", key, counters[key])
		}
	}
	// mt-publish's ops all conflict, so its legitimate pruned count is
	// zero — assert the counter is recorded, not its value.
	if _, ok := counters["schedule.pruned"]; !ok {
		t.Error("counter schedule.pruned missing after a threads job")
	}
	prom, err := s.PromText()
	if err != nil {
		t.Fatal(err)
	}
	if want := `hippocratesd_pipeline_events_total{event="schedule.explored"}`; !bytes.Contains(prom, []byte(want)) {
		t.Errorf("/metrics exposition is missing %s", want)
	}

	j2, err := s.Submit(mtReq())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if !j2.CacheHit() {
		t.Error("identical threads resubmit missed the response cache")
	}
	if !bytes.Equal(body, j2.ResponseJSON()) {
		t.Error("cached threads response is not byte-identical")
	}
}

// TestBackpressure: with one worker and a one-deep queue, a burst of slow
// jobs must hit ErrQueueFull instead of buffering without bound, and the
// accepted jobs must still run to completion.
func TestBackpressure(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer shutdown(t, s)

	spin := func() *cli.Request {
		return &cli.Request{Program: "spin.pmc", Source: srcSpin, Mode: cli.ModeRepair, StepLimit: 20_000_000}
	}
	var accepted []*Job
	var rejected int
	// Worker busy with job 1, queue holds job 2 → a burst of 6 must see
	// at least one rejection (the exact count depends on dequeue timing).
	for i := 0; i < 6; i++ {
		j, err := s.Submit(spin())
		switch {
		case err == nil:
			accepted = append(accepted, j)
		case errors.Is(err, ErrQueueFull):
			rejected++
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if rejected == 0 {
		t.Error("6-job burst against a 1x1 pool saw no ErrQueueFull")
	}
	if len(accepted) == 0 {
		t.Fatal("every submit was rejected")
	}
	for _, j := range accepted {
		waitDone(t, j)
		// The spin program exhausts its step budget: the job fails, alone.
		if j.State() != StateFailed {
			t.Errorf("%s: state %s, want failed", j.ID, j.State())
		}
	}
	if got := s.Metrics().Queue.Rejected; got != int64(rejected) {
		t.Errorf("metrics report %d rejections, submit saw %d", got, rejected)
	}
}

// TestPoisonedJobFailsAlone: a job that cannot compile and a job that dies
// at runtime each fail in isolation; the daemon keeps serving and the next
// good job succeeds on the same worker.
func TestPoisonedJobFailsAlone(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)

	bad, err := s.Submit(&cli.Request{Program: "broken.pmc", Source: "int main( {"})
	if err != nil {
		t.Fatal(err)
	}
	noEntry, err := s.Submit(&cli.Request{Program: "noentry.pmc", Source: "int helper() { return 0; }", Entry: "main"})
	if err != nil {
		t.Fatal(err)
	}
	good, err := s.Submit(publishReq())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, bad)
	waitDone(t, noEntry)
	waitDone(t, good)

	if bad.State() != StateFailed || bad.Err() == nil {
		t.Errorf("compile-error job: state %s, err %v", bad.State(), bad.Err())
	}
	if noEntry.State() != StateFailed || noEntry.Err() == nil {
		t.Errorf("missing-entry job: state %s, err %v", noEntry.State(), noEntry.Err())
	}
	if good.State() != StateDone {
		t.Errorf("good job after two poisoned ones: state %s, err %v", good.State(), good.Err())
	}
	m := s.Metrics()
	if m.Jobs.Failed != 2 || m.Jobs.Completed != 1 {
		t.Errorf("metrics: failed=%d completed=%d, want 2/1", m.Jobs.Failed, m.Jobs.Completed)
	}
}

// TestDrain: Shutdown finishes accepted jobs and rejects new submissions.
func TestDrain(t *testing.T) {
	s := New(Config{Workers: 2})

	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(publishReq())
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	shutdown(t, s)
	for _, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Errorf("%s still pending after drain", j.ID)
		}
		if j.State() != StateDone {
			t.Errorf("%s: state %s after drain, err %v", j.ID, j.State(), j.Err())
		}
	}
	if _, err := s.Submit(publishReq()); !errors.Is(err, ErrDraining) {
		t.Errorf("submit while draining: err %v, want ErrDraining", err)
	}
}

// TestMetricsSchema: a served /metrics document satisfies the checked-in
// schema and reports the cache traffic the workload implies.
func TestMetricsSchema(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)
	for i := 0; i < 3; i++ {
		j, err := s.Submit(publishReq())
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
	}
	data, err := s.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetrics(data); err != nil {
		t.Fatalf("/metrics violates schema: %v\n%s", err, data)
	}
	m := s.Metrics()
	if m.Cache.HitRatio <= 0 {
		t.Errorf("hit ratio %v after identical resubmits, want > 0", m.Cache.HitRatio)
	}
	if m.Cache.ResponseHits != 2 || m.Cache.ArtifactMisses != 1 {
		t.Errorf("cache traffic: %+v, want 2 response hits, 1 artifact miss", m.Cache)
	}
	found := false
	for _, p := range m.Phases {
		if p.Name == "job" && p.Count >= 1 && p.P50NS > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no usable \"job\" latency histogram in %+v", m.Phases)
	}
}

// TestHTTPRoundTrip drives the actual HTTP mux: synchronous repair with
// cache headers, async submit + poll, span retrieval, health.
func TestHTTPRoundTrip(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(publishReq())
	resp, err := http.Post(ts.URL+"/api/v1/repair", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /api/v1/repair: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Hippocrates-Cache"); got != "miss" {
		t.Errorf("first POST cache header %q, want miss", got)
	}
	jobID := resp.Header.Get("X-Hippocrates-Job")
	if jobID == "" {
		t.Fatal("no X-Hippocrates-Job header")
	}

	// The job's spans are retrievable and carry the pipeline phases.
	spansResp, err := http.Get(ts.URL + "/api/v1/jobs/" + jobID + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer spansResp.Body.Close()
	var spansDoc struct {
		Spans []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(spansResp.Body).Decode(&spansDoc); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, sp := range spansDoc.Spans {
		names[sp.Name] = true
	}
	for _, phase := range []string{"job", "trace", "detect", "plan", "apply", "revalidate", "crashsim"} {
		if !names[phase] {
			t.Errorf("span tree for %s is missing %q", jobID, phase)
		}
	}

	// Async submit of the same request: answered from the cache, done at once.
	asyncResp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer asyncResp.Body.Close()
	if asyncResp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /api/v1/jobs: %d", asyncResp.StatusCode)
	}
	if got := asyncResp.Header.Get("X-Hippocrates-Cache"); got != "hit" {
		t.Errorf("async resubmit cache header %q, want hit", got)
	}
	var acc struct {
		JobID string `json:"job_id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(asyncResp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	jobResp, err := http.Get(ts.URL + "/api/v1/jobs/" + acc.JobID)
	if err != nil {
		t.Fatal(err)
	}
	defer jobResp.Body.Close()
	var jd struct {
		State    string          `json:"state"`
		CacheHit bool            `json:"cache_hit"`
		Response json.RawMessage `json:"response"`
	}
	if err := json.NewDecoder(jobResp.Body).Decode(&jd); err != nil {
		t.Fatal(err)
	}
	if jd.State != StateDone || !jd.CacheHit || len(jd.Response) == 0 {
		t.Errorf("async job doc: state=%s cache_hit=%v response=%d bytes",
			jd.State, jd.CacheHit, len(jd.Response))
	}

	// Unknown fields and unknown jobs are client errors, not crashes.
	badResp, err := http.Post(ts.URL+"/api/v1/repair", "application/json",
		strings.NewReader(`{"source":"int main(){return 0;}","bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", badResp.StatusCode)
	}
	missing, err := http.Get(ts.URL + "/api/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", missing.StatusCode)
	}

	health, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Errorf("/healthz: %d", health.StatusCode)
	}
}
