package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"hippocrates/internal/obs"
)

// PromContentType is the Prometheus text exposition content type GET
// /metrics serves.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// MetricsDoc is the /metrics.json shape; schema/metrics.schema.json is
// the checked-in contract the server smoke test validates against.
// (Scrapers get the same state in Prometheus text form at /metrics.)
type MetricsDoc struct {
	UptimeSeconds float64  `json:"uptime_seconds"`
	Workers       int      `json:"workers"`
	Queue         QueueDoc `json:"queue"`
	Jobs          JobsDoc  `json:"jobs"`
	Cache         CacheDoc `json:"cache"`
	// Flight reports the flight recorder's retained entry counts.
	Flight FlightDoc `json:"flight"`
	// Phases carries a since-boot latency histogram per pipeline phase
	// plus the whole-job "job" row, sorted by name.
	Phases []PhaseLatencyDoc `json:"phases"`
	// Windows carries the rolling per-phase latency quantiles over the
	// trailing 1m/5m windows — the scrape-friendly signals that decay
	// when traffic stops, unlike the since-boot Phases rows.
	Windows []PhaseWindowDoc `json:"windows"`
	// Counters is the merged counter space of every finished job
	// (interp steps, trace events, fixes by mechanism, crashsim work...).
	Counters map[string]int64 `json:"counters"`
	// Gauges is the merged gauge space (levels, last-write-wins).
	Gauges map[string]int64 `json:"gauges"`
}

// QueueDoc describes the worker pool's current load.
type QueueDoc struct {
	Depth    int   `json:"depth"`
	Capacity int   `json:"capacity"`
	InFlight int64 `json:"in_flight"`
	Rejected int64 `json:"rejected"`
	Draining bool  `json:"draining"`
	// Shards is the per-worker queue state, index-aligned with the pool;
	// saturation is depth/capacity, the signal the fleet router shards on.
	Shards []ShardDoc `json:"shards"`
}

// ShardDoc is one worker shard's queue state.
type ShardDoc struct {
	Shard      int     `json:"shard"`
	Depth      int     `json:"depth"`
	Capacity   int     `json:"capacity"`
	Saturation float64 `json:"saturation"`
}

// JobsDoc counts job outcomes since boot.
type JobsDoc struct {
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cached    int64 `json:"cached"`
}

// CacheDoc reports the content-addressed caches. HitRatio is
// response+artifact hits over response+artifact lookups (the service-level
// ratio; verdict- and summary-store traffic is reported separately because
// one job makes per-image or per-function lookups by the hundreds and
// would drown the job-level signal).
type CacheDoc struct {
	ResponseHits   int64 `json:"response_hits"`
	ResponseMisses int64 `json:"response_misses"`
	ArtifactHits   int64 `json:"artifact_hits"`
	ArtifactMisses int64 `json:"artifact_misses"`
	VerdictHits    int64 `json:"verdict_hits"`
	VerdictMisses  int64 `json:"verdict_misses"`
	// Summary*/Constraint* count the incremental-analysis store's traffic:
	// per-function static summaries and alias constraint lists replayed
	// (hit) versus recomputed (miss) across all static jobs since boot.
	SummaryHits      int64   `json:"summary_hits"`
	SummaryMisses    int64   `json:"summary_misses"`
	ConstraintHits   int64   `json:"constraint_hits"`
	ConstraintMisses int64   `json:"constraint_misses"`
	HitRatio         float64 `json:"hit_ratio"`
}

// FlightDoc reports the flight recorder's retained entry counts.
type FlightDoc struct {
	Slow     int `json:"slow"`
	Failed   int `json:"failed"`
	Rejected int `json:"rejected"`
}

// PhaseLatencyDoc is one phase's since-boot latency distribution.
type PhaseLatencyDoc struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	P50NS int64  `json:"p50_ns"`
	P99NS int64  `json:"p99_ns"`
	MaxNS int64  `json:"max_ns"`
	SumNS int64  `json:"sum_ns"`
}

// PhaseWindowDoc is one phase's latency distribution over one trailing
// window ("1m" or "5m").
type PhaseWindowDoc struct {
	Phase  string `json:"phase"`
	Window string `json:"window"`
	Count  int64  `json:"count"`
	P50NS  int64  `json:"p50_ns"`
	P95NS  int64  `json:"p95_ns"`
	P99NS  int64  `json:"p99_ns"`
	MaxNS  int64  `json:"max_ns"`
	SumNS  int64  `json:"sum_ns"`
}

// shardDocs snapshots the per-shard queue state.
func (s *Server) shardDocs() []ShardDoc {
	depths := s.ShardDepths()
	out := make([]ShardDoc, len(depths))
	for i, d := range depths {
		out[i] = ShardDoc{
			Shard:      i,
			Depth:      d,
			Capacity:   s.cfg.QueueDepth,
			Saturation: float64(d) / float64(s.cfg.QueueDepth),
		}
	}
	return out
}

// Metrics snapshots the service's aggregate state.
func (s *Server) Metrics() *MetricsDoc {
	fSlow, fFailed, fRejected := s.flight.counts()
	doc := &MetricsDoc{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       len(s.shards),
		Queue: QueueDoc{
			Depth:    s.QueueDepth(),
			Capacity: len(s.shards) * s.cfg.QueueDepth,
			InFlight: s.inFlight.Load(),
			Rejected: s.rejected.Load(),
			Draining: s.draining.Load(),
			Shards:   s.shardDocs(),
		},
		Jobs: JobsDoc{
			Submitted: s.submitted.Load(),
			Completed: s.completed.Load(),
			Failed:    s.failed.Load(),
			Cached:    s.cached.Load(),
		},
		Flight:   FlightDoc{Slow: fSlow, Failed: fFailed, Rejected: fRejected},
		Phases:   []PhaseLatencyDoc{},
		Windows:  s.windowSnapshots(),
		Counters: s.rec.Counters(),
		Gauges:   s.rec.Gauges(),
	}
	if doc.Windows == nil {
		doc.Windows = []PhaseWindowDoc{}
	}
	rh, rm := s.responses.stats()
	ah, am, vh, vm := s.artifacts.stats()
	ss := s.summaries.Stats()
	doc.Cache = CacheDoc{
		ResponseHits: rh, ResponseMisses: rm,
		ArtifactHits: ah, ArtifactMisses: am,
		VerdictHits: vh, VerdictMisses: vm,
		SummaryHits: ss.SummaryHits, SummaryMisses: ss.SummaryMisses,
		ConstraintHits: ss.ConsHits, ConstraintMisses: ss.ConsMisses,
	}
	if lookups := rh + rm + ah + am; lookups > 0 {
		doc.Cache.HitRatio = float64(rh+ah) / float64(lookups)
	}
	// Histograms() returns a deep copy sorted here by name for a stable
	// document. "server.job.ns" renders as phase "job".
	names := []string{}
	hists := s.rec.Histograms()
	for name := range hists {
		if strings.HasPrefix(name, "server.phase.") || name == "server.job.ns" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		h := hists[name]
		phase := strings.TrimSuffix(strings.TrimPrefix(name, "server.phase."), ".ns")
		if name == "server.job.ns" {
			phase = "job"
		}
		doc.Phases = append(doc.Phases, PhaseLatencyDoc{
			Name:  phase,
			Count: h.Count,
			P50NS: h.Quantile(0.50),
			P99NS: h.Quantile(0.99),
			MaxNS: h.Max,
			SumNS: h.Sum,
		})
	}
	return doc
}

// MetricsJSON renders the snapshot as indented JSON (GET /metrics.json).
func (s *Server) MetricsJSON() ([]byte, error) {
	data, err := json.MarshalIndent(s.Metrics(), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// promRuntime is the Go runtime slice of a Prometheus snapshot.
type promRuntime struct {
	HeapAllocBytes  uint64
	HeapObjects     uint64
	TotalAllocBytes uint64
	GCCycles        uint32
	Goroutines      int
}

// promSnapshot is everything the Prometheus exposition renders, captured
// as plain values so the renderer is a pure (and golden-testable)
// function of the snapshot.
type promSnapshot struct {
	Doc        *MetricsDoc
	PhaseAlloc map[string]uint64
	Runtime    *promRuntime
}

// PromText renders the service state as a Prometheus text exposition
// (GET /metrics, content type PromContentType).
func (s *Server) PromText() ([]byte, error) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return renderProm(&promSnapshot{
		Doc:        s.Metrics(),
		PhaseAlloc: s.phaseAllocs(),
		Runtime: &promRuntime{
			HeapAllocBytes:  ms.HeapAlloc,
			HeapObjects:     ms.HeapObjects,
			TotalAllocBytes: ms.TotalAlloc,
			GCCycles:        ms.NumGC,
			Goroutines:      runtime.NumGoroutine(),
		},
	})
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// renderProm turns a snapshot into the exposition. Every sample set
// derived from a map is sorted, so equal snapshots render byte-identical
// output — pinned by the golden test in prom_test.go.
func renderProm(snap *promSnapshot) ([]byte, error) {
	d := snap.Doc
	fams := []obs.PromFamily{
		{Name: "hippocratesd_uptime_seconds", Help: "Seconds since the daemon booted.", Type: "gauge",
			Samples: []obs.PromSample{{Value: d.UptimeSeconds}}},
		{Name: "hippocratesd_workers", Help: "Worker pool size (one queue shard per worker).", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(d.Workers)}}},
		{Name: "hippocratesd_draining", Help: "1 while the daemon drains for shutdown, else 0.", Type: "gauge",
			Samples: []obs.PromSample{{Value: boolGauge(d.Queue.Draining)}}},
		{Name: "hippocratesd_jobs_in_flight", Help: "Jobs currently executing.", Type: "gauge",
			Samples: []obs.PromSample{{Value: float64(d.Queue.InFlight)}}},
		{Name: "hippocratesd_jobs_total", Help: "Job lifecycle events since boot, by event.", Type: "counter",
			Samples: []obs.PromSample{
				{Labels: []obs.PromLabel{{Name: "event", Value: "cached"}}, Value: float64(d.Jobs.Cached)},
				{Labels: []obs.PromLabel{{Name: "event", Value: "completed"}}, Value: float64(d.Jobs.Completed)},
				{Labels: []obs.PromLabel{{Name: "event", Value: "failed"}}, Value: float64(d.Jobs.Failed)},
				{Labels: []obs.PromLabel{{Name: "event", Value: "rejected"}}, Value: float64(d.Queue.Rejected)},
				{Labels: []obs.PromLabel{{Name: "event", Value: "submitted"}}, Value: float64(d.Jobs.Submitted)},
			}},
	}

	depth := obs.PromFamily{Name: "hippocratesd_queue_depth", Help: "Queued (not yet running) jobs per worker shard.", Type: "gauge"}
	capacity := obs.PromFamily{Name: "hippocratesd_queue_capacity", Help: "Queue slots per worker shard.", Type: "gauge"}
	saturation := obs.PromFamily{Name: "hippocratesd_queue_saturation", Help: "Per-shard queue fill fraction (depth/capacity).", Type: "gauge"}
	for _, sh := range d.Queue.Shards {
		label := []obs.PromLabel{{Name: "shard", Value: strconv.Itoa(sh.Shard)}}
		depth.Samples = append(depth.Samples, obs.PromSample{Labels: label, Value: float64(sh.Depth)})
		capacity.Samples = append(capacity.Samples, obs.PromSample{Labels: label, Value: float64(sh.Capacity)})
		saturation.Samples = append(saturation.Samples, obs.PromSample{Labels: label, Value: sh.Saturation})
	}
	fams = append(fams, depth, capacity, saturation)

	cache := obs.PromFamily{Name: "hippocratesd_cache_events_total", Help: "Content-addressed cache lookups by cache and result.", Type: "counter",
		Samples: []obs.PromSample{
			{Labels: cacheLabels("artifact", "hit"), Value: float64(d.Cache.ArtifactHits)},
			{Labels: cacheLabels("artifact", "miss"), Value: float64(d.Cache.ArtifactMisses)},
			{Labels: cacheLabels("constraint", "hit"), Value: float64(d.Cache.ConstraintHits)},
			{Labels: cacheLabels("constraint", "miss"), Value: float64(d.Cache.ConstraintMisses)},
			{Labels: cacheLabels("response", "hit"), Value: float64(d.Cache.ResponseHits)},
			{Labels: cacheLabels("response", "miss"), Value: float64(d.Cache.ResponseMisses)},
			{Labels: cacheLabels("summary", "hit"), Value: float64(d.Cache.SummaryHits)},
			{Labels: cacheLabels("summary", "miss"), Value: float64(d.Cache.SummaryMisses)},
			{Labels: cacheLabels("verdict", "hit"), Value: float64(d.Cache.VerdictHits)},
			{Labels: cacheLabels("verdict", "miss"), Value: float64(d.Cache.VerdictMisses)},
		}}
	flight := obs.PromFamily{Name: "hippocratesd_flightrecorder_entries", Help: "Flight-recorder entries retained, by reason.", Type: "gauge",
		Samples: []obs.PromSample{
			{Labels: []obs.PromLabel{{Name: "reason", Value: "failed"}}, Value: float64(d.Flight.Failed)},
			{Labels: []obs.PromLabel{{Name: "reason", Value: "rejected"}}, Value: float64(d.Flight.Rejected)},
			{Labels: []obs.PromLabel{{Name: "reason", Value: "slow"}}, Value: float64(d.Flight.Slow)},
		}}
	fams = append(fams, cache, flight)

	// Rolling windows: quantiles, counts, and sums per (phase, window).
	quant := obs.PromFamily{Name: "hippocratesd_phase_latency_ns", Help: "Phase latency quantiles over the trailing window.", Type: "gauge"}
	wcount := obs.PromFamily{Name: "hippocratesd_phase_latency_window_count", Help: "Phase latency samples inside the trailing window.", Type: "gauge"}
	wsum := obs.PromFamily{Name: "hippocratesd_phase_latency_window_sum_ns", Help: "Summed phase latency inside the trailing window.", Type: "gauge"}
	for _, w := range d.Windows {
		base := []obs.PromLabel{{Name: "phase", Value: w.Phase}, {Name: "window", Value: w.Window}}
		for _, q := range []struct {
			q string
			v int64
		}{{"0.5", w.P50NS}, {"0.95", w.P95NS}, {"0.99", w.P99NS}} {
			quant.Samples = append(quant.Samples, obs.PromSample{
				Labels: append(append([]obs.PromLabel{}, base...), obs.PromLabel{Name: "quantile", Value: q.q}),
				Value:  float64(q.v),
			})
		}
		wcount.Samples = append(wcount.Samples, obs.PromSample{Labels: base, Value: float64(w.Count)})
		wsum.Samples = append(wsum.Samples, obs.PromSample{Labels: base, Value: float64(w.SumNS)})
	}
	fams = append(fams, quant, wcount, wsum)

	// Since-boot per-phase totals.
	pcount := obs.PromFamily{Name: "hippocratesd_phase_runs_total", Help: "Phase executions since boot.", Type: "counter"}
	psum := obs.PromFamily{Name: "hippocratesd_phase_ns_total", Help: "Summed phase wall time since boot.", Type: "counter"}
	for _, p := range d.Phases {
		label := []obs.PromLabel{{Name: "phase", Value: p.Name}}
		pcount.Samples = append(pcount.Samples, obs.PromSample{Labels: label, Value: float64(p.Count)})
		psum.Samples = append(psum.Samples, obs.PromSample{Labels: label, Value: float64(p.SumNS)})
	}
	fams = append(fams, pcount, psum)

	// Per-phase allocation totals (present when TrackAllocs is on).
	if len(snap.PhaseAlloc) > 0 {
		alloc := obs.PromFamily{Name: "hippocratesd_phase_alloc_bytes_total", Help: "Bytes allocated inside each phase's spans since boot (TrackAllocs).", Type: "counter"}
		for _, phase := range sortedKeys(snap.PhaseAlloc) {
			alloc.Samples = append(alloc.Samples, obs.PromSample{
				Labels: []obs.PromLabel{{Name: "phase", Value: phase}},
				Value:  float64(snap.PhaseAlloc[phase]),
			})
		}
		fams = append(fams, alloc)
	}

	// The merged pipeline counter/gauge spaces, one family each with the
	// original dotted name as a label (sanitizing every counter into its
	// own family would make thousands of HELP/TYPE lines).
	events := obs.PromFamily{Name: "hippocratesd_pipeline_events_total", Help: "Merged pipeline counters over all finished jobs, by event name.", Type: "counter"}
	for _, k := range sortedKeysI64(d.Counters) {
		events.Samples = append(events.Samples, obs.PromSample{
			Labels: []obs.PromLabel{{Name: "event", Value: k}},
			Value:  float64(d.Counters[k]),
		})
	}
	fams = append(fams, events)
	if len(d.Gauges) > 0 {
		gauges := obs.PromFamily{Name: "hippocratesd_pipeline_gauge", Help: "Merged pipeline gauges (last-write-wins levels), by gauge name.", Type: "gauge"}
		for _, k := range sortedKeysI64(d.Gauges) {
			gauges.Samples = append(gauges.Samples, obs.PromSample{
				Labels: []obs.PromLabel{{Name: "gauge", Value: k}},
				Value:  float64(d.Gauges[k]),
			})
		}
		fams = append(fams, gauges)
	}

	if rt := snap.Runtime; rt != nil {
		fams = append(fams,
			obs.PromFamily{Name: "hippocratesd_go_goroutines", Help: "Live goroutines.", Type: "gauge",
				Samples: []obs.PromSample{{Value: float64(rt.Goroutines)}}},
			obs.PromFamily{Name: "hippocratesd_go_heap_alloc_bytes", Help: "Bytes of allocated heap objects.", Type: "gauge",
				Samples: []obs.PromSample{{Value: float64(rt.HeapAllocBytes)}}},
			obs.PromFamily{Name: "hippocratesd_go_heap_objects", Help: "Allocated heap objects.", Type: "gauge",
				Samples: []obs.PromSample{{Value: float64(rt.HeapObjects)}}},
			obs.PromFamily{Name: "hippocratesd_go_alloc_bytes_total", Help: "Cumulative bytes allocated since boot.", Type: "counter",
				Samples: []obs.PromSample{{Value: float64(rt.TotalAllocBytes)}}},
			obs.PromFamily{Name: "hippocratesd_go_gc_cycles_total", Help: "Completed GC cycles.", Type: "counter",
				Samples: []obs.PromSample{{Value: float64(rt.GCCycles)}}},
		)
	}

	var buf bytes.Buffer
	if err := obs.WriteProm(&buf, fams); err != nil {
		return nil, fmt.Errorf("render /metrics: %w", err)
	}
	return buf.Bytes(), nil
}

func cacheLabels(cache, result string) []obs.PromLabel {
	return []obs.PromLabel{{Name: "cache", Value: cache}, {Name: "result", Value: result}}
}

func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysI64(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
