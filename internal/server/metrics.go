package server

import (
	"encoding/json"
	"sort"
	"strings"
	"time"
)

// MetricsDoc is the /metrics JSON shape; schema/metrics.schema.json is
// the checked-in contract the server smoke test validates against.
type MetricsDoc struct {
	UptimeSeconds float64  `json:"uptime_seconds"`
	Workers       int      `json:"workers"`
	Queue         QueueDoc `json:"queue"`
	Jobs          JobsDoc  `json:"jobs"`
	Cache         CacheDoc `json:"cache"`
	// Phases carries a latency histogram per pipeline phase plus the
	// whole-job "job" row, sorted by name.
	Phases []PhaseLatencyDoc `json:"phases"`
	// Counters is the merged counter space of every finished job
	// (interp steps, trace events, fixes by mechanism, crashsim work...).
	Counters map[string]int64 `json:"counters"`
}

// QueueDoc describes the worker pool's current load.
type QueueDoc struct {
	Depth    int   `json:"depth"`
	Capacity int   `json:"capacity"`
	InFlight int64 `json:"in_flight"`
	Rejected int64 `json:"rejected"`
	Draining bool  `json:"draining"`
}

// JobsDoc counts job outcomes since boot.
type JobsDoc struct {
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cached    int64 `json:"cached"`
}

// CacheDoc reports the three content-addressed caches. HitRatio is
// response+artifact hits over response+artifact lookups (the service-level
// ratio; verdict-cache traffic is reported separately because one job
// makes thousands of verdict lookups and would drown the signal).
type CacheDoc struct {
	ResponseHits   int64   `json:"response_hits"`
	ResponseMisses int64   `json:"response_misses"`
	ArtifactHits   int64   `json:"artifact_hits"`
	ArtifactMisses int64   `json:"artifact_misses"`
	VerdictHits    int64   `json:"verdict_hits"`
	VerdictMisses  int64   `json:"verdict_misses"`
	HitRatio       float64 `json:"hit_ratio"`
}

// PhaseLatencyDoc is one phase's latency distribution over all jobs.
type PhaseLatencyDoc struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	P50NS int64  `json:"p50_ns"`
	P99NS int64  `json:"p99_ns"`
	MaxNS int64  `json:"max_ns"`
	SumNS int64  `json:"sum_ns"`
}

// Metrics snapshots the service's aggregate state.
func (s *Server) Metrics() *MetricsDoc {
	doc := &MetricsDoc{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       len(s.shards),
		Queue: QueueDoc{
			Depth:    s.QueueDepth(),
			Capacity: len(s.shards) * s.cfg.QueueDepth,
			InFlight: s.inFlight.Load(),
			Rejected: s.rejected.Load(),
			Draining: s.draining.Load(),
		},
		Jobs: JobsDoc{
			Submitted: s.submitted.Load(),
			Completed: s.completed.Load(),
			Failed:    s.failed.Load(),
			Cached:    s.cached.Load(),
		},
		Phases:   []PhaseLatencyDoc{},
		Counters: s.rec.Counters(),
	}
	rh, rm := s.responses.stats()
	ah, am, vh, vm := s.artifacts.stats()
	doc.Cache = CacheDoc{
		ResponseHits: rh, ResponseMisses: rm,
		ArtifactHits: ah, ArtifactMisses: am,
		VerdictHits: vh, VerdictMisses: vm,
	}
	if lookups := rh + rm + ah + am; lookups > 0 {
		doc.Cache.HitRatio = float64(rh+ah) / float64(lookups)
	}
	// Histograms() returns a deep copy sorted here by name for a stable
	// document. "server.job.ns" renders as phase "job".
	names := []string{}
	hists := s.rec.Histograms()
	for name := range hists {
		if strings.HasPrefix(name, "server.phase.") || name == "server.job.ns" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		h := hists[name]
		phase := strings.TrimSuffix(strings.TrimPrefix(name, "server.phase."), ".ns")
		if name == "server.job.ns" {
			phase = "job"
		}
		doc.Phases = append(doc.Phases, PhaseLatencyDoc{
			Name:  phase,
			Count: h.Count,
			P50NS: h.Quantile(0.50),
			P99NS: h.Quantile(0.99),
			MaxNS: h.Max,
			SumNS: h.Sum,
		})
	}
	return doc
}

// MetricsJSON renders the snapshot as indented JSON.
func (s *Server) MetricsJSON() ([]byte, error) {
	data, err := json.MarshalIndent(s.Metrics(), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
