package ir

// CloneFunc deep-copies fn into a new function named newName and registers
// it in fn's module. The clone shares constants, globals and struct types
// with the original (they are immutable at this level) but gets fresh
// parameters, blocks and instructions. Instruction IDs are copied from the
// originals so that trace locations recorded against the original resolve
// to the corresponding instruction in the clone — this is what lets the
// persistent subprogram transformation reuse bug locations inside cloned
// bodies. Call Renumber before re-tracing a module containing clones.
func CloneFunc(fn *Func, newName string) *Func {
	params := make([]*Param, len(fn.Params))
	valueMap := make(map[Value]Value)
	for i, p := range fn.Params {
		np := &Param{Name: p.Name, Ty: p.Ty, Index: p.Index}
		params[i] = np
		valueMap[p] = np
	}
	nf := NewFunc(newName, fn.Ret, params...)
	nf.nextID = fn.nextID

	blockMap := make(map[*Block]*Block, len(fn.Blocks))
	for _, b := range fn.Blocks {
		blockMap[b] = nf.AddBlock(b.Name)
	}
	// First pass: clone instructions so results exist for operand mapping.
	// Bodies are in dominance order for straight-line refs, but operand
	// resolution is done in a second pass to be robust to any def/use
	// layout.
	instrMap := make(map[*Instr]*Instr)
	for _, b := range fn.Blocks {
		nb := blockMap[b]
		for _, in := range b.Instrs {
			ni := &Instr{
				Op:      in.Op,
				Name:    in.Name,
				Ty:      in.Ty,
				AllocTy: in.AllocTy,
				StoreTy: in.StoreTy,
				Scale:   in.Scale,
				Disp:    in.Disp,
				Callee:  in.Callee,
				FlushK:  in.FlushK,
				FenceK:  in.FenceK,
				Order:   in.Order,
				RMWK:    in.RMWK,
				Loc:     in.Loc,
				ID:      in.ID,
			}
			nb.Append(ni)
			instrMap[in] = ni
			if in.HasResult() {
				valueMap[in] = ni
			}
		}
	}
	// Second pass: rewrite operands and successors.
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			ni := instrMap[in]
			if len(in.Args) > 0 {
				ni.Args = make([]Value, len(in.Args))
				for i, a := range in.Args {
					if mapped, ok := valueMap[a]; ok {
						ni.Args[i] = mapped
					} else {
						ni.Args[i] = a // constant or global
					}
				}
			}
			if len(in.Succs) > 0 {
				ni.Succs = make([]*Block, len(in.Succs))
				for i, s := range in.Succs {
					ni.Succs[i] = blockMap[s]
				}
			}
		}
	}
	if fn.Mod != nil {
		fn.Mod.AddFunc(nf)
	}
	return nf
}

// CloneModule deep-copies an entire module by round-tripping through the
// textual form. The parser renumbers every function in block order, which
// matches Renumber's numbering on the source module, so instruction IDs —
// and therefore trace locations — remain valid against the clone. The
// fixer clones before mutating so callers keep the original for
// before/after comparison.
func CloneModule(m *Module) *Module {
	nm, err := ParseModule(Print(m))
	if err != nil {
		panic("ir: CloneModule round-trip failed: " + err.Error())
	}
	return nm
}
