package ir

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// FuncFingerprint content-hashes one function body in a canonical,
// module-order-independent form: the signature, every block and
// instruction (IDs, operands, opcode attributes, and source locations —
// locations matter because analysis reports carry them), the sizes the
// analyses read off types, plus the declarations of every referenced
// global (name, layout size, PM-ness, init image) and the signature of
// every referenced callee. Two functions fingerprint equal exactly when
// every analysis that looks only at this body — and at the named
// interfaces of what it references — must produce identical canonical
// results. Callee *bodies* are deliberately excluded: incremental
// analyses chain them in separately (a callee's summary hash feeds the
// caller's cache key), which is what makes invalidation transitive
// by construction.
//
// The result is memoized on the function: structural mutations through
// Block helpers and Renumber invalidate it, so repeated analyses of an
// unchanged body hash once. Like Renumber, memoization is not safe for
// concurrent calls on the same function; analyses run single-threaded
// over a module and concurrent jobs parse their own copies.
func FuncFingerprint(f *Func) string {
	if f.fp != "" {
		return f.fp
	}
	h := newFpHasher()
	h.str(f.Name)
	for _, p := range f.Params {
		h.str(p.Name)
		h.typ(p.Ty)
	}
	h.str("->")
	h.typ(f.Ret)

	// Referenced globals and callees, deduplicated in first-use order
	// (body order, so the set and its order are body-determined).
	var globals []*Global
	var callees []*Func
	seenG := map[*Global]bool{}
	seenF := map[*Func]bool{}
	noteVal := func(v Value) {
		if g, ok := v.(*Global); ok && !seenG[g] {
			seenG[g] = true
			globals = append(globals, g)
		}
	}

	for _, b := range f.Blocks {
		h.str("^" + b.Name)
		for _, in := range b.Instrs {
			h.u64(uint64(in.ID))
			h.u64(uint64(in.Op))
			h.str(in.Name)
			h.typ(in.Ty)
			for _, a := range in.Args {
				h.operand(a)
				noteVal(a)
			}
			if in.AllocTy != nil {
				h.typ(in.AllocTy)
			}
			if in.StoreTy != nil {
				h.typ(in.StoreTy)
			}
			h.i64(in.Scale)
			h.i64(in.Disp)
			h.u64(uint64(in.FlushK))
			h.u64(uint64(in.FenceK))
			h.u64(uint64(in.Order))
			h.u64(uint64(in.RMWK))
			if in.Callee != nil {
				h.str("@" + in.Callee.Name)
				if !seenF[in.Callee] {
					seenF[in.Callee] = true
					callees = append(callees, in.Callee)
				}
			}
			for _, s := range in.Succs {
				h.str("^" + s.Name)
			}
			h.str(in.Loc.File)
			h.u64(uint64(in.Loc.Line))
		}
	}

	h.str("globals")
	for _, g := range globals {
		h.str(g.Name)
		h.typ(g.Elem)
		if g.PM {
			h.str("pm")
		}
		h.buf = append(h.buf, g.Init...)
		h.u64(uint64(len(g.Init)))
	}
	h.str("callees")
	for _, c := range callees {
		h.str(c.Sig())
		if c.IsDecl() {
			h.str("decl")
		}
	}
	sum := sha256.Sum256(h.buf)
	f.fp = hex.EncodeToString(sum[:])
	return f.fp
}

// fpHasher accumulates the canonical byte encoding. Every field is
// length- or tag-delimited so adjacent fields cannot be confused.
type fpHasher struct {
	buf []byte
}

func newFpHasher() *fpHasher {
	return &fpHasher{buf: make([]byte, 0, 4096)}
}

func (h *fpHasher) str(s string) {
	h.buf = binary.AppendUvarint(h.buf, uint64(len(s)))
	h.buf = append(h.buf, s...)
}

func (h *fpHasher) u64(v uint64) {
	h.buf = binary.AppendUvarint(h.buf, v)
}

func (h *fpHasher) i64(v int64) {
	h.buf = binary.AppendVarint(h.buf, v)
}

func (h *fpHasher) typ(t Type) {
	if t == nil {
		h.str("<nil>")
		return
	}
	// The type string plus its computed size: struct types print by name,
	// so the size pins the layout the analyses actually consume.
	h.str(t.String())
	h.i64(t.Size())
}

// operand encodes one operand positionally: constants by type and value,
// globals by name, parameters by index, instruction results by ID.
func (h *fpHasher) operand(v Value) {
	switch x := v.(type) {
	case *Const:
		h.buf = append(h.buf, 'c')
		h.typ(x.Ty)
		h.i64(x.Val)
	case *Global:
		h.buf = append(h.buf, 'g')
		h.str(x.Name)
	case *Param:
		h.buf = append(h.buf, 'p')
		h.u64(uint64(x.Index))
	case *Instr:
		h.buf = append(h.buf, 'r')
		h.u64(uint64(x.ID))
	default:
		h.buf = append(h.buf, '?')
		h.str(v.OperandString())
	}
}
