package ir

import (
	"fmt"
	"strconv"
)

// Value is anything that can appear as an instruction operand: constants,
// globals, function parameters, and instruction results.
type Value interface {
	// Type returns the value's scalar type.
	Type() Type
	// OperandString returns the operand spelling, e.g. "42", "%x", "@g".
	OperandString() string
}

// Const is an integer (or null-pointer) constant.
type Const struct {
	Ty  Type
	Val int64
}

// ConstInt returns an i64 constant.
func ConstInt(v int64) *Const { return &Const{Ty: I64, Val: v} }

// ConstI8 returns an i8 constant.
func ConstI8(v int64) *Const { return &Const{Ty: I8, Val: v & 0xff} }

// ConstBool returns an i1 constant.
func ConstBool(v bool) *Const {
	if v {
		return &Const{Ty: I1, Val: 1}
	}
	return &Const{Ty: I1, Val: 0}
}

// Null returns the null pointer constant.
func Null() *Const { return &Const{Ty: Ptr, Val: 0} }

// Type implements Value.
func (c *Const) Type() Type { return c.Ty }

// OperandString implements Value.
func (c *Const) OperandString() string {
	if IsPtr(c.Ty) {
		if c.Val == 0 {
			return "null"
		}
		return fmt.Sprintf("ptraddr:%d", c.Val)
	}
	return strconv.FormatInt(c.Val, 10)
}

// Global is a module-level variable. Its value is the address of the
// underlying object, so its type as an operand is always ptr. PM globals
// live in the persistent-memory address range of the simulated machine.
type Global struct {
	Name string
	// Elem is the layout of the allocated object.
	Elem Type
	// PM marks the global as residing in persistent memory.
	PM bool
	// Init is the optional initial byte image; when shorter than
	// Elem.Size() the remainder is zero.
	Init []byte
}

// Type implements Value.
func (g *Global) Type() Type { return Ptr }

// OperandString implements Value.
func (g *Global) OperandString() string { return "@" + g.Name }

// Param is a function parameter.
type Param struct {
	Name  string
	Ty    Type
	Index int
}

// Type implements Value.
func (p *Param) Type() Type { return p.Ty }

// OperandString implements Value.
func (p *Param) OperandString() string { return "%" + p.Name }
