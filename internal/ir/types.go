// Package ir defines the intermediate representation that the whole
// repository is built around: a typed, register-based IR in the shape of
// unoptimized compiler output (explicit allocas, loads and stores, direct
// calls, branches) extended with the persistent-memory primitives the
// Hippocrates paper reasons about — cache-line flushes (CLWB, CLFLUSHOPT,
// CLFLUSH), memory fences (SFENCE, MFENCE) and non-temporal stores.
//
// The package provides construction (Builder), verification (Verify),
// a stable textual form (Print/ParseModule round-trip), and function
// cloning (CloneFunc) used by the persistent subprogram transformation.
package ir

import (
	"fmt"
	"strings"
)

// Type is the type of an IR value or of an allocated object. SSA values
// only ever have scalar types (void, i1, i8, i64, ptr); aggregate types
// (arrays and structs) describe memory layouts for allocas and globals.
type Type interface {
	// Size returns the object size in bytes.
	Size() int64
	// Align returns the required alignment in bytes (at least 1).
	Align() int64
	// String returns the textual spelling used by the printer and parser.
	String() string
}

// BasicKind enumerates the scalar types.
type BasicKind int

// The scalar type kinds.
const (
	KindVoid BasicKind = iota
	KindI1
	KindI8
	KindI64
	KindPtr
)

// BasicType is one of the scalar types. Pointers are opaque (untyped), as
// in modern LLVM; loads, stores and allocas carry the pointee type
// themselves.
type BasicType struct {
	K BasicKind
}

// The singleton scalar types.
var (
	Void = &BasicType{KindVoid}
	I1   = &BasicType{KindI1}
	I8   = &BasicType{KindI8}
	I64  = &BasicType{KindI64}
	Ptr  = &BasicType{KindPtr}
)

// Size implements Type.
func (t *BasicType) Size() int64 {
	switch t.K {
	case KindVoid:
		return 0
	case KindI1, KindI8:
		return 1
	case KindI64, KindPtr:
		return 8
	}
	panic(fmt.Sprintf("ir: unknown basic kind %d", t.K))
}

// Align implements Type.
func (t *BasicType) Align() int64 {
	if s := t.Size(); s > 0 {
		return s
	}
	return 1
}

func (t *BasicType) String() string {
	switch t.K {
	case KindVoid:
		return "void"
	case KindI1:
		return "i1"
	case KindI8:
		return "i8"
	case KindI64:
		return "i64"
	case KindPtr:
		return "ptr"
	}
	panic(fmt.Sprintf("ir: unknown basic kind %d", t.K))
}

// IsInt reports whether t is one of the integer types (i1, i8, i64).
func IsInt(t Type) bool {
	b, ok := t.(*BasicType)
	return ok && (b.K == KindI1 || b.K == KindI8 || b.K == KindI64)
}

// IsPtr reports whether t is the pointer type.
func IsPtr(t Type) bool {
	b, ok := t.(*BasicType)
	return ok && b.K == KindPtr
}

// IsScalar reports whether t is a legal SSA value type other than void.
func IsScalar(t Type) bool {
	b, ok := t.(*BasicType)
	return ok && b.K != KindVoid
}

// ArrayType is a fixed-length sequence of elements, used as an allocation
// layout for allocas and globals.
type ArrayType struct {
	Elem Type
	Len  int64
}

// Array returns the array type [n x elem].
func Array(elem Type, n int64) *ArrayType { return &ArrayType{Elem: elem, Len: n} }

// Size implements Type.
func (t *ArrayType) Size() int64 { return t.Elem.Size() * t.Len }

// Align implements Type.
func (t *ArrayType) Align() int64 { return t.Elem.Align() }

func (t *ArrayType) String() string {
	return fmt.Sprintf("[%d x %s]", t.Len, t.Elem)
}

// Field is one member of a struct type, with its computed byte offset.
type Field struct {
	Name   string
	Type   Type
	Offset int64
}

// StructType is a named aggregate with C-style layout: each field aligned
// to its natural alignment, total size rounded up to the struct alignment.
type StructType struct {
	Name   string
	Fields []Field

	size  int64
	align int64
}

// NewStruct builds a struct type, computing field offsets and total size.
// Field offsets in the supplied slice are overwritten.
func NewStruct(name string, fields []Field) *StructType {
	st := &StructType{Name: name, Fields: fields}
	var off, maxAlign int64
	maxAlign = 1
	for i := range st.Fields {
		a := st.Fields[i].Type.Align()
		if a > maxAlign {
			maxAlign = a
		}
		off = roundUp(off, a)
		st.Fields[i].Offset = off
		off += st.Fields[i].Type.Size()
	}
	st.align = maxAlign
	st.size = roundUp(off, maxAlign)
	return st
}

func roundUp(n, a int64) int64 {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// Size implements Type.
func (t *StructType) Size() int64 { return t.size }

// Align implements Type.
func (t *StructType) Align() int64 { return t.align }

func (t *StructType) String() string { return "%" + t.Name }

// FieldByName returns the field with the given name, or nil.
func (t *StructType) FieldByName(name string) *Field {
	for i := range t.Fields {
		if t.Fields[i].Name == name {
			return &t.Fields[i]
		}
	}
	return nil
}

// TypeEqual reports structural equality of two types. Struct types compare
// by name (they are interned per module).
func TypeEqual(a, b Type) bool {
	switch x := a.(type) {
	case *BasicType:
		y, ok := b.(*BasicType)
		return ok && x.K == y.K
	case *ArrayType:
		y, ok := b.(*ArrayType)
		return ok && x.Len == y.Len && TypeEqual(x.Elem, y.Elem)
	case *StructType:
		y, ok := b.(*StructType)
		return ok && x.Name == y.Name
	}
	return false
}

// typeDefString renders a struct definition line: "struct %Name { ... }".
func typeDefString(t *StructType) string {
	var b strings.Builder
	fmt.Fprintf(&b, "struct %%%s {", t.Name)
	for i, f := range t.Fields {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, " %s: %s", f.Name, f.Type)
	}
	b.WriteString(" }")
	return b.String()
}
