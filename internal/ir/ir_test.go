package ir

import (
	"strings"
	"testing"
)

func TestBasicTypeSizes(t *testing.T) {
	cases := []struct {
		ty    Type
		size  int64
		align int64
	}{
		{Void, 0, 1},
		{I1, 1, 1},
		{I8, 1, 1},
		{I64, 8, 8},
		{Ptr, 8, 8},
		{Array(I64, 10), 80, 8},
		{Array(I8, 3), 3, 1},
		{Array(Array(I8, 4), 2), 8, 1},
	}
	for _, c := range cases {
		if got := c.ty.Size(); got != c.size {
			t.Errorf("%s: size = %d, want %d", c.ty, got, c.size)
		}
		if got := c.ty.Align(); got != c.align {
			t.Errorf("%s: align = %d, want %d", c.ty, got, c.align)
		}
	}
}

func TestStructLayout(t *testing.T) {
	st := NewStruct("Node", []Field{
		{Name: "tag", Type: I8},
		{Name: "key", Type: I64},
		{Name: "c", Type: I8},
		{Name: "next", Type: Ptr},
	})
	wantOffsets := []int64{0, 8, 16, 24}
	for i, f := range st.Fields {
		if f.Offset != wantOffsets[i] {
			t.Errorf("field %s offset = %d, want %d", f.Name, f.Offset, wantOffsets[i])
		}
	}
	if st.Size() != 32 {
		t.Errorf("size = %d, want 32", st.Size())
	}
	if st.Align() != 8 {
		t.Errorf("align = %d, want 8", st.Align())
	}
	if f := st.FieldByName("key"); f == nil || f.Offset != 8 {
		t.Errorf("FieldByName(key) = %+v", f)
	}
	if f := st.FieldByName("missing"); f != nil {
		t.Errorf("FieldByName(missing) = %+v, want nil", f)
	}
}

func TestStructLayoutPacked(t *testing.T) {
	st := NewStruct("Bytes", []Field{
		{Name: "a", Type: I8},
		{Name: "b", Type: I8},
		{Name: "c", Type: I8},
	})
	if st.Size() != 3 || st.Align() != 1 {
		t.Errorf("size/align = %d/%d, want 3/1", st.Size(), st.Align())
	}
}

// buildSample constructs a module exercising every opcode.
func buildSample(t testing.TB) *Module {
	m := NewModule("sample")
	node := m.AddStruct(NewStruct("Node", []Field{
		{Name: "key", Type: I64},
		{Name: "next", Type: Ptr},
	}))
	m.AddGlobal(&Global{Name: "pool", Elem: Array(I8, 256), PM: true})
	m.AddGlobal(&Global{Name: "msg", Elem: Array(I8, 6), Init: []byte("hello\x00")})

	decl := NewFunc("pm_alloc", Ptr, &Param{Name: "n", Ty: I64})
	m.AddFunc(decl)

	callee := NewFunc("store_key", Void, &Param{Name: "p", Ty: Ptr}, &Param{Name: "k", Ty: I64})
	m.AddFunc(callee)
	{
		b := NewBuilder(callee)
		b.SetLoc(Loc{File: "sample.pmc", Line: 3})
		addr := b.FieldAddr(callee.Params[0], node.FieldByName("key"))
		b.Store(I64, callee.Params[1], addr)
		b.Flush(CLWB, addr)
		b.Fence(SFENCE)
		b.Ret(nil)
	}

	f := NewFunc("main", I64)
	m.AddFunc(f)
	b := NewBuilder(f)
	b.SetLoc(Loc{File: "sample.pmc", Line: 10})
	slot := b.Alloca(I64)
	b.Store(I64, ConstInt(7), slot)
	v := b.Load(I64, slot)
	nptr := b.Call(m.Func("pm_alloc"), ConstInt(node.Size()))
	b.Call(callee, nptr, v)
	sum := b.Bin(OpAdd, I64, v, ConstInt(35))
	cond := b.Cmp(OpLt, sum, ConstInt(100))
	then := b.NewBlock("then")
	els := b.NewBlock("else")
	exit := b.NewBlock("exit")
	b.Br(cond, then, els)
	b.SetBlock(then)
	small := b.Cast(OpTrunc, I8, sum)
	wide := b.Cast(OpZExt, I64, small)
	b.NTStore(I64, wide, nptr)
	b.Fence(SFENCE)
	b.Jmp(exit)
	b.SetBlock(els)
	asInt := b.Cast(OpPtrToInt, I64, nptr)
	back := b.Cast(OpIntToPtr, Ptr, asInt)
	b.Flush(CLFLUSH, back)
	b.Jmp(exit)
	b.SetBlock(exit)
	b.Ret(sum)
	f.Renumber()
	callee.Renumber()

	if err := Verify(m); err != nil {
		t.Fatalf("sample module does not verify: %v", err)
	}
	return m
}

func TestPrintParseRoundTrip(t *testing.T) {
	m := buildSample(t)
	text1 := Print(m)
	m2, err := ParseModule(text1)
	if err != nil {
		t.Fatalf("parse printed module: %v\n%s", err, text1)
	}
	if err := Verify(m2); err != nil {
		t.Fatalf("reparsed module does not verify: %v", err)
	}
	text2 := Print(m2)
	if text1 != text2 {
		t.Errorf("round-trip mismatch:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}

func TestParsePreservesSemantics(t *testing.T) {
	m := buildSample(t)
	m2 := CloneModule(m)
	if got, want := len(m2.Funcs), len(m.Funcs); got != want {
		t.Fatalf("clone has %d funcs, want %d", got, want)
	}
	f := m2.Func("main")
	if f == nil {
		t.Fatal("clone lost @main")
	}
	if f.NumInstrs() != m.Func("main").NumInstrs() {
		t.Errorf("clone @main has %d instrs, want %d", f.NumInstrs(), m.Func("main").NumInstrs())
	}
	g := m2.Global("msg")
	if g == nil || string(g.Init) != "hello\x00" {
		t.Errorf("clone lost global initializer: %+v", g)
	}
	if !m2.Global("pool").PM {
		t.Error("clone lost pm attribute")
	}
	// Instruction IDs must survive the round-trip (trace compatibility).
	for _, name := range []string{"main", "store_key"} {
		fOrig, fClone := m.Func(name), m2.Func(name)
		for _, b := range fOrig.Blocks {
			for _, in := range b.Instrs {
				ci := fClone.InstrByID(in.ID)
				if ci == nil || ci.Op != in.Op {
					t.Errorf("@%s: instruction ID %d not preserved", name, in.ID)
				}
			}
		}
	}
}

func TestParseLocations(t *testing.T) {
	m := buildSample(t)
	m2 := CloneModule(m)
	in := m2.Func("store_key").Entry().Instrs[1]
	if in.Loc.File != "sample.pmc" || in.Loc.Line != 3 {
		t.Errorf("loc = %v, want sample.pmc:3", in.Loc)
	}
}

func TestCloneFunc(t *testing.T) {
	m := buildSample(t)
	orig := m.Func("store_key")
	clone := CloneFunc(orig, "store_key__pm")
	if m.Func("store_key__pm") != clone {
		t.Fatal("clone not registered in module")
	}
	if clone.NumInstrs() != orig.NumInstrs() {
		t.Fatalf("clone has %d instrs, want %d", clone.NumInstrs(), orig.NumInstrs())
	}
	// The clone must not share instruction or parameter identity.
	if clone.Params[0] == orig.Params[0] {
		t.Error("clone shares parameter identity with original")
	}
	if clone.Entry().Instrs[0] == orig.Entry().Instrs[0] {
		t.Error("clone shares instruction identity with original")
	}
	// Operands in the clone must refer to cloned values.
	cloneStore := clone.Entry().Instrs[1]
	if cloneStore.Op != OpStore {
		t.Fatalf("unexpected clone layout: %s", FormatInstr(cloneStore))
	}
	if cloneStore.StorePtr() != clone.Entry().Instrs[0] {
		t.Error("clone store pointer does not reference cloned ptradd")
	}
	if cloneStore.StoreVal() != clone.Params[1] {
		t.Error("clone store value does not reference cloned parameter")
	}
	// Mutating the clone must leave the original untouched.
	n := orig.NumInstrs()
	b := clone.Entry()
	b.InsertAfter(cloneStore, &Instr{Op: OpFence, Ty: Void, FenceK: SFENCE})
	if orig.NumInstrs() != n {
		t.Error("mutating clone changed the original")
	}
	if err := Verify(m); err != nil {
		t.Errorf("module with clone does not verify: %v", err)
	}
}

func TestInsertAfterBefore(t *testing.T) {
	f := NewFunc("f", Void)
	b := NewBuilder(f)
	a1 := b.Alloca(I64)
	st := b.Store(I64, ConstInt(1), a1)
	b.Ret(nil)

	blk := f.Entry()
	fl := &Instr{Op: OpFlush, Ty: Void, FlushK: CLWB, Args: []Value{a1}}
	blk.InsertAfter(st, fl)
	fe := &Instr{Op: OpFence, Ty: Void, FenceK: SFENCE}
	blk.InsertAfter(fl, fe)
	wantOps := []Op{OpAlloca, OpStore, OpFlush, OpFence, OpRet}
	for i, in := range blk.Instrs {
		if in.Op != wantOps[i] {
			t.Fatalf("instr %d = %s, want %s", i, in.Op, wantOps[i])
		}
	}
	pre := &Instr{Op: OpFence, Ty: Void, FenceK: MFENCE}
	blk.InsertBefore(blk.Instrs[0], pre)
	if blk.Instrs[0] != pre {
		t.Error("InsertBefore at head failed")
	}
}

func TestVerifyCatchesErrors(t *testing.T) {
	mk := func(mut func(m *Module)) error {
		m := buildSample(t)
		mut(m)
		return Verify(m)
	}
	cases := []struct {
		name string
		mut  func(m *Module)
		want string
	}{
		{
			name: "missing terminator",
			mut: func(m *Module) {
				blk := m.Func("main").Entry()
				blk.Instrs = blk.Instrs[:3]
			},
			want: "terminator",
		},
		{
			name: "store type mismatch",
			mut: func(m *Module) {
				f := m.Func("store_key")
				for _, b := range f.Blocks {
					for _, in := range b.Instrs {
						if in.Op == OpStore {
							in.StoreTy = I8
						}
					}
				}
			},
			want: "store type",
		},
		{
			name: "cross function operand",
			mut: func(m *Module) {
				foreign := m.Func("store_key").Params[0]
				f := m.Func("main")
				for _, b := range f.Blocks {
					for _, in := range b.Instrs {
						if in.Op == OpFlush {
							in.Args[0] = foreign
						}
					}
				}
			},
			want: "defined outside",
		},
		{
			name: "call arity",
			mut: func(m *Module) {
				f := m.Func("main")
				for _, b := range f.Blocks {
					for _, in := range b.Instrs {
						if in.Op == OpCall && in.Callee.Name == "store_key" {
							in.Args = in.Args[:1]
						}
					}
				}
			},
			want: "args",
		},
		{
			name: "branch condition type",
			mut: func(m *Module) {
				f := m.Func("main")
				for _, b := range f.Blocks {
					if term := b.Terminator(); term != nil && term.Op == OpBr {
						term.Args[0] = ConstInt(1)
					}
				}
			},
			want: "i1",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := mk(c.mut)
			if err == nil {
				t.Fatal("Verify accepted a broken module")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no header", "func @f() -> void {\nentry:\n  ret void\n}"},
		{"undefined value", "module m\nfunc @f() -> void {\nentry:\n  flush clwb, ptr %nope\n  ret void\n}"},
		{"unknown callee", "module m\nfunc @f() -> void {\nentry:\n  call @missing()\n  ret void\n}"},
		{"unknown block", "module m\nfunc @f() -> void {\nentry:\n  jmp ^missing\n}"},
		{"bad mnemonic", "module m\nfunc @f() -> void {\nentry:\n  frobnicate i64 1, 2\n  ret void\n}"},
		{"duplicate result", "module m\nfunc @f() -> void {\nentry:\n  %a = alloca i64\n  %a = alloca i64\n  ret void\n}"},
		{"bad struct", "module m\nstruct %S broken"},
		{"unknown type", "module m\nfunc @f() -> q17 {\nentry:\n  ret void\n}"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseModule(c.src); err == nil {
				t.Errorf("ParseModule accepted malformed input")
			}
		})
	}
}

func TestRenumberAndInstrByID(t *testing.T) {
	m := buildSample(t)
	f := m.Func("main")
	f.Renumber()
	seen := map[int]bool{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if seen[in.ID] {
				t.Fatalf("duplicate ID %d", in.ID)
			}
			seen[in.ID] = true
			if got := f.InstrByID(in.ID); got != in {
				t.Fatalf("InstrByID(%d) = %v, want %v", in.ID, got, in)
			}
		}
	}
	if f.InstrByID(99999) != nil {
		t.Error("InstrByID of unknown ID should be nil")
	}
}

func TestModuleLookups(t *testing.T) {
	m := buildSample(t)
	if m.Func("nope") != nil || m.Global("nope") != nil || m.Struct("nope") != nil {
		t.Error("lookup of missing names should return nil")
	}
	if m.NumInstrs() == 0 {
		t.Error("NumInstrs = 0")
	}
	names := m.SortedFuncNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("SortedFuncNames not sorted: %v", names)
		}
	}
	m.RemoveFunc("main")
	if m.Func("main") != nil {
		t.Error("RemoveFunc did not remove @main")
	}
	m.RemoveFunc("main") // no-op must not panic
}

func TestConstHelpers(t *testing.T) {
	if ConstBool(true).Val != 1 || ConstBool(false).Val != 0 {
		t.Error("ConstBool broken")
	}
	if ConstI8(0x1ff).Val != 0xff {
		t.Error("ConstI8 must truncate")
	}
	if Null().OperandString() != "null" {
		t.Error("Null spelling")
	}
	if ConstInt(-5).OperandString() != "-5" {
		t.Error("negative constant spelling")
	}
}

func TestFlushFenceKinds(t *testing.T) {
	if CLFLUSH.Ordered() != true || CLWB.Ordered() != false || CLFLUSHOPT.Ordered() != false {
		t.Error("flush ordering attributes wrong")
	}
	if CLWB.String() != "clwb" || SFENCE.String() != "sfence" || MFENCE.String() != "mfence" {
		t.Error("kind spellings wrong")
	}
}

func TestDominators(t *testing.T) {
	// entry -> {then, else} -> merge -> loop { body -> merge2... }
	f := NewFunc("f", Void, &Param{Name: "c", Ty: I1})
	b := NewBuilder(f)
	entry := b.Block()
	then := b.NewBlock("then")
	els := b.NewBlock("else")
	merge := b.NewBlock("merge")
	v := b.Alloca(I64)
	b.Br(f.Params[0], then, els)
	b.SetBlock(then)
	b.Store(I64, ConstInt(1), v)
	b.Jmp(merge)
	b.SetBlock(els)
	b.Store(I64, ConstInt(2), v)
	b.Jmp(merge)
	b.SetBlock(merge)
	b.Ret(nil)
	f.Renumber()
	d := ComputeDominators(f)
	if !d.Dominates(entry, merge) || !d.Dominates(entry, then) {
		t.Error("entry must dominate everything")
	}
	if d.Dominates(then, merge) || d.Dominates(els, merge) {
		t.Error("branch arms must not dominate the merge")
	}
	if !d.Dominates(merge, merge) {
		t.Error("blocks dominate themselves")
	}
}

func TestVerifyCatchesDominanceViolation(t *testing.T) {
	// A value defined only on one branch arm but used at the merge.
	m := NewModule("dom")
	f := NewFunc("f", I64, &Param{Name: "c", Ty: I1})
	m.AddFunc(f)
	b := NewBuilder(f)
	then := b.NewBlock("then")
	els := b.NewBlock("else")
	merge := b.NewBlock("merge")
	b.Br(f.Params[0], then, els)
	b.SetBlock(then)
	onlyHere := b.Bin(OpAdd, I64, ConstInt(1), ConstInt(2))
	b.Jmp(merge)
	b.SetBlock(els)
	b.Jmp(merge)
	b.SetBlock(merge)
	b.Ret(onlyHere) // not dominated by its definition
	f.Renumber()
	err := Verify(m)
	if err == nil || !strings.Contains(err.Error(), "dominate") {
		t.Errorf("Verify = %v, want dominance violation", err)
	}
}

func TestVerifyCatchesUseBeforeDefSameBlock(t *testing.T) {
	m := NewModule("ubd")
	f := NewFunc("f", I64)
	m.AddFunc(f)
	b := NewBuilder(f)
	x := b.Bin(OpAdd, I64, ConstInt(1), ConstInt(2))
	y := b.Bin(OpAdd, I64, x, ConstInt(3))
	b.Ret(y)
	f.Renumber()
	// Swap x and y: y now uses x before x is defined.
	blk := f.Entry()
	blk.Instrs[0], blk.Instrs[1] = blk.Instrs[1], blk.Instrs[0]
	err := Verify(m)
	if err == nil || !strings.Contains(err.Error(), "precedes definition") {
		t.Errorf("Verify = %v, want use-before-def", err)
	}
}
