package ir

import (
	"fmt"
	"sort"
)

// Module is a whole program: struct type definitions, globals and
// functions. Lookups are by name; iteration order is insertion order so
// printing is deterministic.
type Module struct {
	Name    string
	Structs []*StructType
	Globals []*Global
	Funcs   []*Func

	structsByName map[string]*StructType
	globalsByName map[string]*Global
	funcsByName   map[string]*Func
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:          name,
		structsByName: make(map[string]*StructType),
		globalsByName: make(map[string]*Global),
		funcsByName:   make(map[string]*Func),
	}
}

// AddStruct registers a struct type definition. It panics on duplicates:
// struct names are interned per module.
func (m *Module) AddStruct(st *StructType) *StructType {
	if _, dup := m.structsByName[st.Name]; dup {
		panic("ir: duplicate struct %" + st.Name)
	}
	m.Structs = append(m.Structs, st)
	m.structsByName[st.Name] = st
	return st
}

// Struct returns the struct type with the given name, or nil.
func (m *Module) Struct(name string) *StructType { return m.structsByName[name] }

// AddGlobal registers a global variable.
func (m *Module) AddGlobal(g *Global) *Global {
	if _, dup := m.globalsByName[g.Name]; dup {
		panic("ir: duplicate global @" + g.Name)
	}
	m.Globals = append(m.Globals, g)
	m.globalsByName[g.Name] = g
	return g
}

// Global returns the global with the given name, or nil.
func (m *Module) Global(name string) *Global { return m.globalsByName[name] }

// AddFunc registers a function (definition or declaration).
func (m *Module) AddFunc(f *Func) *Func {
	if _, dup := m.funcsByName[f.Name]; dup {
		panic("ir: duplicate function @" + f.Name)
	}
	f.Mod = m
	m.Funcs = append(m.Funcs, f)
	m.funcsByName[f.Name] = f
	return f
}

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Func { return m.funcsByName[name] }

// RemoveFunc detaches a function from the module (used by tests and by
// transformation rollback). It is a no-op if the function is absent.
func (m *Module) RemoveFunc(name string) {
	f, ok := m.funcsByName[name]
	if !ok {
		return
	}
	delete(m.funcsByName, name)
	for i, g := range m.Funcs {
		if g == f {
			m.Funcs = append(m.Funcs[:i], m.Funcs[i+1:]...)
			break
		}
	}
}

// NumInstrs returns the total instruction count over all function bodies;
// the benchmark harness uses it to report code-size impact (§6.4).
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

// SortedFuncNames returns the defined function names in sorted order.
func (m *Module) SortedFuncNames() []string {
	var names []string
	for _, f := range m.Funcs {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	return names
}

// Func is a function definition or declaration. Declarations (external
// builtins like @pm_alloc) have no blocks and are executed by handlers
// registered with the interpreter.
type Func struct {
	Name   string
	Params []*Param
	Ret    Type
	Blocks []*Block
	Mod    *Module

	// nextID feeds Renumber and keeps instruction IDs unique within the
	// function even across insertions.
	nextID int
	// numSlots is the dense value-slot count assigned by Renumber:
	// parameters first, then result-producing instructions. The
	// interpreter sizes its register file from it.
	numSlots int
	// dirty is set by structural mutations and cleared by Renumber, so
	// executors can skip (write-free) renumbering of clean functions and
	// share clean modules across goroutines.
	dirty bool
	// fp memoizes FuncFingerprint for the current body. Structural
	// mutations and Renumber clear it; in-place operand edits must be
	// followed by Renumber before re-fingerprinting (the same contract
	// Renumber's own doc already imposes on passes that change bodies).
	fp string
}

// NewFunc creates a detached function. Use Module.AddFunc to register it.
func NewFunc(name string, ret Type, params ...*Param) *Func {
	for i, p := range params {
		p.Index = i
	}
	return &Func{Name: name, Params: params, Ret: ret, dirty: true}
}

// IsDecl reports whether the function is a body-less declaration.
func (f *Func) IsDecl() bool { return len(f.Blocks) == 0 }

// Entry returns the entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		panic("ir: entry of declaration @" + f.Name)
	}
	return f.Blocks[0]
}

// AddBlock appends a new basic block with the given name.
func (f *Func) AddBlock(name string) *Block {
	b := &Block{Name: name, fn: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Block returns the block with the given name, or nil.
func (f *Func) Block(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Param returns the parameter with the given name, or nil.
func (f *Func) Param(name string) *Param {
	for _, p := range f.Params {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Renumber assigns sequential IDs to every instruction in block order,
// and dense value slots (parameters first, then result-producing
// instructions) that the interpreter uses as register-file indices.
// Traces and bug reports address instructions as (function name, ID), so
// any pass that inserts instructions must renumber before re-tracing —
// but NOT between trace generation and fix application, because fixes
// resolve trace IDs against the numbering the trace was made with.
func (f *Func) Renumber() {
	id := 0
	slot := len(f.Params)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			in.ID = id
			id++
			if in.HasResult() {
				in.Slot = slot
				slot++
			} else {
				in.Slot = -1
			}
		}
	}
	f.nextID = id
	f.numSlots = slot
	f.dirty = false
	f.fp = ""
}

// NumSlots returns the register-file size assigned by Renumber.
func (f *Func) NumSlots() int { return f.numSlots }

// NeedsRenumber reports whether the function mutated since Renumber.
func (f *Func) NeedsRenumber() bool { return f.dirty }

// mutated records a structural body change: the function needs
// renumbering and any memoized fingerprint is stale.
func (f *Func) mutated() {
	f.dirty = true
	f.fp = ""
}

// InstrByID returns the instruction with the given ID, or nil. IDs are
// only meaningful after Renumber.
func (f *Func) InstrByID(id int) *Instr {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.ID == id {
				return in
			}
		}
	}
	return nil
}

// NumInstrs returns the instruction count of the body.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Sig renders the signature, e.g. "@f(%p: ptr, %n: i64) -> i64".
func (f *Func) Sig() string {
	s := "@" + f.Name + "("
	for i, p := range f.Params {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%%%s: %s", p.Name, p.Ty)
	}
	s += ") -> " + f.Ret.String()
	return s
}

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator.
type Block struct {
	Name   string
	Instrs []*Instr

	fn *Func
}

// Func returns the containing function.
func (b *Block) Func() *Func { return b.fn }

// Append adds an instruction at the end of the block.
func (b *Block) Append(in *Instr) *Instr {
	in.blk = b
	b.fn.mutated()
	b.Instrs = append(b.Instrs, in)
	return in
}

// InsertAfter inserts newIn immediately after pos, which must be in b.
func (b *Block) InsertAfter(pos, newIn *Instr) {
	idx := b.indexOf(pos)
	newIn.blk = b
	b.fn.mutated()
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[idx+2:], b.Instrs[idx+1:])
	b.Instrs[idx+1] = newIn
}

// InsertBefore inserts newIn immediately before pos, which must be in b.
func (b *Block) InsertBefore(pos, newIn *Instr) {
	idx := b.indexOf(pos)
	newIn.blk = b
	b.fn.mutated()
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[idx+1:], b.Instrs[idx:])
	b.Instrs[idx] = newIn
}

// RemoveInstr detaches in from b, which must contain it, and returns the
// index it occupied so InsertAt can restore it (the optimizer's apply/undo
// protocol). The instruction keeps its fields; only the block linkage is
// severed. Callers must not remove an instruction whose result other
// instructions still use.
func (b *Block) RemoveInstr(in *Instr) int {
	idx := b.indexOf(in)
	b.fn.mutated()
	copy(b.Instrs[idx:], b.Instrs[idx+1:])
	b.Instrs[len(b.Instrs)-1] = nil
	b.Instrs = b.Instrs[:len(b.Instrs)-1]
	in.blk = nil
	return idx
}

// InsertAt inserts in at index idx (0 ≤ idx ≤ len), the inverse of
// RemoveInstr.
func (b *Block) InsertAt(idx int, in *Instr) {
	if idx < 0 || idx > len(b.Instrs) {
		panic(fmt.Sprintf("ir: InsertAt index %d out of range in block ^%s", idx, b.Name))
	}
	in.blk = b
	b.fn.mutated()
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[idx+1:], b.Instrs[idx:])
	b.Instrs[idx] = in
}

func (b *Block) indexOf(in *Instr) int {
	for i, x := range b.Instrs {
		if x == in {
			return i
		}
	}
	panic(fmt.Sprintf("ir: instruction %%%s not in block ^%s", in.Name, b.Name))
}

// Terminator returns the final instruction if it is a terminator, else nil.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if last.Op.IsTerminator() {
		return last
	}
	return nil
}
