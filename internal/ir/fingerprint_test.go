package ir_test

import (
	"testing"

	"hippocrates/internal/ir"
	"hippocrates/internal/lang"
)

func compileFp(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := lang.Compile("fp.pmc", src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func fpOf(t *testing.T, m *ir.Module, name string) string {
	t.Helper()
	f := m.Func(name)
	if f == nil || f.IsDecl() {
		t.Fatalf("function %q not found or has no body", name)
	}
	return ir.FuncFingerprint(f)
}

const fpBase = `
pm int cell[16];
void put(int *p, int v) {
	*p = v;
	clwb(p);
	sfence();
}
int main() {
	put(&cell[0], 7);
	pm_checkpoint();
	return cell[0];
}
`

// Identical bodies must fingerprint equal even when they live in
// different module instances (the store is shared across jobs that
// compile the same source independently).
func TestFingerprintEqualAcrossModules(t *testing.T) {
	m1 := compileFp(t, fpBase)
	m2 := compileFp(t, fpBase)
	for _, fn := range []string{"put", "main"} {
		if a, b := fpOf(t, m1, fn), fpOf(t, m2, fn); a != b {
			t.Errorf("%s: fingerprints differ across identical modules:\n%s\n%s", fn, a, b)
		}
	}
}

// The fingerprint must not depend on where the function sits in the
// module: reordering unrelated definitions leaves it unchanged.
func TestFingerprintIndependentOfModuleOrder(t *testing.T) {
	// `put` sits on the same source lines in both modules, but an extra
	// definition ahead of it shifts its position in the function list.
	const fpBaseLine2 = `pm int cell[16];
void put(int *p, int v) {
	*p = v;
	clwb(p);
	sfence();
}
int main() {
	put(&cell[0], 7);
	pm_checkpoint();
	return cell[0];
}
`
	reordered := "int unrelated(int x) { return x + 1; }\n" + fpBaseLine2
	base := "\n" + fpBaseLine2
	m1 := compileFp(t, base)
	m2 := compileFp(t, reordered)
	if a, b := fpOf(t, m1, "put"), fpOf(t, m2, "put"); a != b {
		t.Errorf("put: fingerprint depends on module-level ordering:\n%s\n%s", a, b)
	}
}

// Any body change — opcode, operand, block structure, location — must
// change the fingerprint.
func TestFingerprintSensitivity(t *testing.T) {
	base := fpOf(t, compileFp(t, fpBase), "put")
	variants := map[string]string{
		"opcode (clwb -> clflushopt)": `
pm int cell[16];
void put(int *p, int v) {
	*p = v;
	clflushopt(p);
	sfence();
}
int main() { put(&cell[0], 7); pm_checkpoint(); return cell[0]; }
`,
		"operand (store v+1)": `
pm int cell[16];
void put(int *p, int v) {
	*p = v + 1;
	clwb(p);
	sfence();
}
int main() { put(&cell[0], 7); pm_checkpoint(); return cell[0]; }
`,
		"dropped instruction (no fence)": `
pm int cell[16];
void put(int *p, int v) {
	*p = v;
	clwb(p);
}
int main() { put(&cell[0], 7); pm_checkpoint(); return cell[0]; }
`,
		"block structure (branch)": `
pm int cell[16];
void put(int *p, int v) {
	if (v > 0) { *p = v; }
	clwb(p);
	sfence();
}
int main() { put(&cell[0], 7); pm_checkpoint(); return cell[0]; }
`,
	}
	for name, src := range variants {
		if got := fpOf(t, compileFp(t, src), "put"); got == base {
			t.Errorf("%s: fingerprint did not change", name)
		}
	}
}

// A location-only change (same opcodes, shifted source lines) must still
// change the fingerprint: analysis reports carry locations, so cached
// results from the old body would replay stale line numbers.
func TestFingerprintCoversLocations(t *testing.T) {
	shifted := "\n" + fpBase // every Loc.Line moves down by one
	a := fpOf(t, compileFp(t, fpBase), "put")
	b := fpOf(t, compileFp(t, shifted), "put")
	if a == b {
		t.Error("fingerprint ignores source locations")
	}
}

// The declarations of referenced globals are part of the contract: the
// same body over a volatile cell must not collide with the PM version
// (PM-ness decides whether stores are tracked at all).
func TestFingerprintCoversReferencedGlobalDecls(t *testing.T) {
	volatileCell := `
int cell[16];
void put(int *p, int v) {
	*p = v;
	clwb(p);
	sfence();
}
int main() {
	put(&cell[0], 7);
	pm_checkpoint();
	return cell[0];
}
`
	a := fpOf(t, compileFp(t, fpBase), "main")
	b := fpOf(t, compileFp(t, volatileCell), "main")
	if a == b {
		t.Error("fingerprint ignores the PM-ness of referenced globals")
	}
}

// Callee signatures are covered (pointer-ness of parameters shapes alias
// constraints), but callee bodies are not: a body-only callee change must
// leave the caller's fingerprint alone — that is the callee summary
// hash's job in the incremental cache key.
func TestFingerprintExcludesCalleeBodies(t *testing.T) {
	calleeBodyChanged := `
pm int cell[16];
void put(int *p, int v) {
	*p = v;
	sfence();
	sfence();
}
int main() {
	put(&cell[0], 7);
	pm_checkpoint();
	return cell[0];
}
`
	a := fpOf(t, compileFp(t, fpBase), "main")
	b := fpOf(t, compileFp(t, calleeBodyChanged), "main")
	if a != b {
		t.Error("caller fingerprint changed on a callee body-only edit")
	}
}
