package ir

import "fmt"

// Op enumerates the instruction opcodes.
type Op int

// The instruction opcodes.
const (
	OpInvalid Op = iota

	// Memory.
	OpAlloca  // %p = alloca T            (stack slot, volatile)
	OpLoad    // %v = load T, ptr %p
	OpStore   // store T %v, ptr %p
	OpNTStore // ntstore T %v, ptr %p     (non-temporal: bypasses cache, weakly ordered)
	OpPtrAdd  // %q = ptradd ptr %p, %i * scale + disp

	// Integer arithmetic and logic (i8/i64).
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpSRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpAShr

	// Comparisons (result i1).
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// Conversions.
	OpZExt     // widen integer (i1/i8 -> i64)
	OpTrunc    // narrow integer (i64 -> i8/i1)
	OpPtrToInt // ptr -> i64
	OpIntToPtr // i64 -> ptr

	// Control flow.
	OpCall // %v = call @f(args...)   (direct calls only)
	OpBr   // br i1 %c, ^then, ^else
	OpJmp  // jmp ^dest
	OpRet  // ret [T %v]

	// Persistence primitives.
	OpFlush // flush clwb|clflushopt|clflush, ptr %p
	OpFence // fence sfence|mfence

	// Concurrency. Threads are spawned per call (the result is a thread
	// handle), joined exactly once, and communicate through atomics on
	// i64-sized cells. Atomic stores to PM are tracked like regular PM
	// stores — atomicity orders visibility between threads, it does not
	// persist anything (that still takes flush + fence).
	OpSpawn       // %t = spawn @f(args...)
	OpJoin        // %r = join i64 %t
	OpAtomicLoad  // %v = atomicload acquire|seqcst i64, ptr %p
	OpAtomicStore // atomicstore release|seqcst i64 %v, ptr %p
	OpAtomicRMW   // %old = atomicrmw add|xchg seqcst i64 %v, ptr %p
	OpAtomicCAS   // %old = atomiccas seqcst i64 %expect, i64 %new, ptr %p

	numOps
)

// NumOps is the number of opcodes (including OpInvalid) — the size of a
// dense per-opcode counter array.
const NumOps = int(numOps)

var opNames = [...]string{
	OpInvalid:  "invalid",
	OpAlloca:   "alloca",
	OpLoad:     "load",
	OpStore:    "store",
	OpNTStore:  "ntstore",
	OpPtrAdd:   "ptradd",
	OpAdd:      "add",
	OpSub:      "sub",
	OpMul:      "mul",
	OpSDiv:     "sdiv",
	OpSRem:     "srem",
	OpAnd:      "and",
	OpOr:       "or",
	OpXor:      "xor",
	OpShl:      "shl",
	OpAShr:     "ashr",
	OpEq:       "eq",
	OpNe:       "ne",
	OpLt:       "lt",
	OpLe:       "le",
	OpGt:       "gt",
	OpGe:       "ge",
	OpZExt:     "zext",
	OpTrunc:    "trunc",
	OpPtrToInt: "ptrtoint",
	OpIntToPtr: "inttoptr",
	OpCall:     "call",
	OpBr:       "br",
	OpJmp:      "jmp",
	OpRet:      "ret",
	OpFlush:    "flush",
	OpFence:    "fence",

	OpSpawn:       "spawn",
	OpJoin:        "join",
	OpAtomicLoad:  "atomicload",
	OpAtomicStore: "atomicstore",
	OpAtomicRMW:   "atomicrmw",
	OpAtomicCAS:   "atomiccas",
}

func (op Op) String() string {
	if op <= OpInvalid || op >= numOps {
		return fmt.Sprintf("op(%d)", int(op))
	}
	return opNames[op]
}

// IsBinary reports whether op is a two-operand arithmetic/logic operation.
func (op Op) IsBinary() bool { return op >= OpAdd && op <= OpAShr }

// IsCmp reports whether op is a comparison.
func (op Op) IsCmp() bool { return op >= OpEq && op <= OpGe }

// IsCast reports whether op is a conversion.
func (op Op) IsCast() bool { return op >= OpZExt && op <= OpIntToPtr }

// IsTerminator reports whether op ends a basic block.
func (op Op) IsTerminator() bool { return op == OpBr || op == OpJmp || op == OpRet }

// IsAtomic reports whether op is an atomic memory operation.
func (op Op) IsAtomic() bool { return op >= OpAtomicLoad && op <= OpAtomicCAS }

// FlushKind selects the cache-flush instruction flavour. CLFLUSH is
// strongly ordered with respect to other memory operations; CLFLUSHOPT and
// CLWB are weakly ordered and require a subsequent fence for durability
// ordering. CLWB retains the line in cache (preferred for performance).
type FlushKind int

// The flush flavours.
const (
	CLWB FlushKind = iota
	CLFLUSHOPT
	CLFLUSH
)

func (k FlushKind) String() string {
	switch k {
	case CLWB:
		return "clwb"
	case CLFLUSHOPT:
		return "clflushopt"
	case CLFLUSH:
		return "clflush"
	}
	return fmt.Sprintf("flushkind(%d)", int(k))
}

// Ordered reports whether the flush flavour is strongly ordered (CLFLUSH)
// and hence does not require a trailing fence for durability ordering.
func (k FlushKind) Ordered() bool { return k == CLFLUSH }

// FenceKind selects the fence instruction flavour. SFENCE orders stores
// and weakly-ordered flushes; MFENCE additionally orders loads.
type FenceKind int

// The fence flavours.
const (
	SFENCE FenceKind = iota
	MFENCE
)

func (k FenceKind) String() string {
	switch k {
	case SFENCE:
		return "sfence"
	case MFENCE:
		return "mfence"
	}
	return fmt.Sprintf("fencekind(%d)", int(k))
}

// MemOrder is the memory ordering of an atomic operation. The simulator
// runs threads one at a time (sequential consistency by construction),
// so the orders do not change execution today; they are carried so the
// IR states intent and so a weaker scheduler can honor them later.
type MemOrder int

// The memory orders.
const (
	OrderSeqCst MemOrder = iota
	OrderAcquire
	OrderRelease
)

func (o MemOrder) String() string {
	switch o {
	case OrderSeqCst:
		return "seqcst"
	case OrderAcquire:
		return "acquire"
	case OrderRelease:
		return "release"
	}
	return fmt.Sprintf("memorder(%d)", int(o))
}

// RMWKind selects the read-modify-write operation of an OpAtomicRMW.
type RMWKind int

// The RMW flavours.
const (
	RMWAdd RMWKind = iota
	RMWXchg
)

func (k RMWKind) String() string {
	switch k {
	case RMWAdd:
		return "add"
	case RMWXchg:
		return "xchg"
	}
	return fmt.Sprintf("rmwkind(%d)", int(k))
}

// Loc is a source location in the front-end language, carried through
// lowering so that traces and fixes can be reported in source terms.
type Loc struct {
	File string
	Line int
}

// IsZero reports whether the location is unset.
func (l Loc) IsZero() bool { return l.File == "" && l.Line == 0 }

func (l Loc) String() string {
	if l.IsZero() {
		return "<unknown>"
	}
	return fmt.Sprintf("%s:%d", l.File, l.Line)
}

// Instr is a single IR instruction. A uniform representation (opcode plus
// operand slice) keeps cloning, printing, parsing and interpretation
// simple; opcode-specific fields are only meaningful for their opcode.
type Instr struct {
	Op   Op
	Name string // result name without '%'; empty for void results
	Ty   Type   // result type; for load, the loaded type; void if none

	Args []Value // operands

	// Opcode-specific attributes.
	AllocTy     Type      // OpAlloca: layout of the allocated object
	StoreTy     Type      // OpStore/OpNTStore: type of the stored value
	Scale, Disp int64     // OpPtrAdd: %q = base + index*Scale + Disp
	Callee      *Func     // OpCall / OpSpawn
	Succs       []*Block  // OpBr (then, else) / OpJmp (dest)
	FlushK      FlushKind // OpFlush
	FenceK      FenceKind // OpFence
	Order       MemOrder  // atomic ops: memory ordering
	RMWK        RMWKind   // OpAtomicRMW

	// Loc is the source location the instruction was lowered from.
	Loc Loc

	// ID is a stable per-function instruction number assigned by
	// (*Func).Renumber; traces refer to instructions by (function, ID).
	ID int
	// Slot is the dense register-file index of the result, assigned by
	// Renumber (-1 for void results).
	Slot int

	blk *Block
}

// Type implements Value. Void-result instructions must not be used as
// operands; the verifier enforces this.
func (in *Instr) Type() Type { return in.Ty }

// OperandString implements Value.
func (in *Instr) OperandString() string { return "%" + in.Name }

// Block returns the containing basic block (nil if detached).
func (in *Instr) Block() *Block { return in.blk }

// HasResult reports whether the instruction produces a value.
func (in *Instr) HasResult() bool {
	return in.Ty != nil && in.Ty != Void
}

// StorePtr returns the address operand of a store-like instruction
// (store, ntstore, atomicstore).
func (in *Instr) StorePtr() Value {
	if in.Op != OpStore && in.Op != OpNTStore && in.Op != OpAtomicStore {
		panic("ir: StorePtr on " + in.Op.String())
	}
	return in.Args[1]
}

// StoreVal returns the value operand of a store-like instruction
// (store, ntstore, atomicstore).
func (in *Instr) StoreVal() Value {
	if in.Op != OpStore && in.Op != OpNTStore && in.Op != OpAtomicStore {
		panic("ir: StoreVal on " + in.Op.String())
	}
	return in.Args[0]
}
