package ir

import (
	"fmt"
	"strings"
)

// Print renders the module in its textual form. The output parses back via
// ParseModule (round-trip property-tested).
func Print(m *Module) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s\n", m.Name)
	for _, st := range m.Structs {
		b.WriteString("\n")
		b.WriteString(typeDefString(st))
		b.WriteString("\n")
	}
	if len(m.Globals) > 0 {
		b.WriteString("\n")
	}
	for _, g := range m.Globals {
		if g.PM {
			b.WriteString("pm ")
		}
		fmt.Fprintf(&b, "global @%s: %s", g.Name, g.Elem)
		if len(g.Init) > 0 {
			fmt.Fprintf(&b, " = x\"%x\"", g.Init)
		}
		b.WriteString("\n")
	}
	for _, f := range m.Funcs {
		b.WriteString("\n")
		if f.IsDecl() {
			fmt.Fprintf(&b, "declare %s\n", f.Sig())
			continue
		}
		fmt.Fprintf(&b, "func %s {\n", f.Sig())
		for _, blk := range f.Blocks {
			fmt.Fprintf(&b, "%s:\n", blk.Name)
			for _, in := range blk.Instrs {
				b.WriteString("  ")
				b.WriteString(FormatInstr(in))
				b.WriteString("\n")
			}
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// FormatInstr renders one instruction (without indentation or newline).
func FormatInstr(in *Instr) string {
	var b strings.Builder
	if in.HasResult() {
		fmt.Fprintf(&b, "%%%s = ", in.Name)
	}
	switch in.Op {
	case OpAlloca:
		fmt.Fprintf(&b, "alloca %s", in.AllocTy)
	case OpLoad:
		fmt.Fprintf(&b, "load %s, %s", in.Ty, operand(in.Args[0]))
	case OpStore:
		fmt.Fprintf(&b, "store %s %s, %s", in.StoreTy, in.Args[0].OperandString(), operand(in.Args[1]))
	case OpNTStore:
		fmt.Fprintf(&b, "ntstore %s %s, %s", in.StoreTy, in.Args[0].OperandString(), operand(in.Args[1]))
	case OpPtrAdd:
		fmt.Fprintf(&b, "ptradd %s, %s, %d, %d", operand(in.Args[0]), operand(in.Args[1]), in.Scale, in.Disp)
	case OpCall:
		fmt.Fprintf(&b, "call @%s(", in.Callee.Name)
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(operand(a))
		}
		b.WriteString(")")
	case OpBr:
		fmt.Fprintf(&b, "br %s, ^%s, ^%s", operand(in.Args[0]), in.Succs[0].Name, in.Succs[1].Name)
	case OpJmp:
		fmt.Fprintf(&b, "jmp ^%s", in.Succs[0].Name)
	case OpRet:
		if len(in.Args) == 0 {
			b.WriteString("ret void")
		} else {
			fmt.Fprintf(&b, "ret %s", operand(in.Args[0]))
		}
	case OpFlush:
		fmt.Fprintf(&b, "flush %s, %s", in.FlushK, operand(in.Args[0]))
	case OpFence:
		fmt.Fprintf(&b, "fence %s", in.FenceK)
	case OpSpawn:
		fmt.Fprintf(&b, "spawn @%s(", in.Callee.Name)
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(operand(a))
		}
		b.WriteString(")")
	case OpJoin:
		fmt.Fprintf(&b, "join %s", operand(in.Args[0]))
	case OpAtomicLoad:
		fmt.Fprintf(&b, "atomicload %s %s, %s", in.Order, in.Ty, operand(in.Args[0]))
	case OpAtomicStore:
		fmt.Fprintf(&b, "atomicstore %s %s %s, %s", in.Order, in.StoreTy, in.Args[0].OperandString(), operand(in.Args[1]))
	case OpAtomicRMW:
		fmt.Fprintf(&b, "atomicrmw %s %s %s, %s", in.RMWK, in.Order, operand(in.Args[0]), operand(in.Args[1]))
	case OpAtomicCAS:
		fmt.Fprintf(&b, "atomiccas %s %s, %s, %s", in.Order, operand(in.Args[0]), operand(in.Args[1]), operand(in.Args[2]))
	default:
		switch {
		case in.Op.IsBinary(), in.Op.IsCmp():
			// Comparisons print the operand type (the result is i1).
			ty := in.Ty
			if in.Op.IsCmp() {
				ty = in.Args[0].Type()
			}
			fmt.Fprintf(&b, "%s %s %s, %s", in.Op, ty, in.Args[0].OperandString(), in.Args[1].OperandString())
		case in.Op.IsCast():
			fmt.Fprintf(&b, "%s %s to %s", in.Op, operand(in.Args[0]), in.Ty)
		default:
			fmt.Fprintf(&b, "<%s?>", in.Op)
		}
	}
	if !in.Loc.IsZero() {
		fmt.Fprintf(&b, " !%s:%d", in.Loc.File, in.Loc.Line)
	}
	return b.String()
}

// operand renders a typed operand, e.g. "i64 %x", "ptr @g", "i64 42".
func operand(v Value) string {
	return v.Type().String() + " " + v.OperandString()
}
