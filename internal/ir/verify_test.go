package ir

import (
	"strings"
	"testing"
)

// findInstr returns the first instruction with the given opcode in fn.
func findInstr(t *testing.T, m *Module, fn string, op Op) *Instr {
	t.Helper()
	f := m.Func(fn)
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				return in
			}
		}
	}
	t.Fatalf("no %s in %s", op, fn)
	return nil
}

// TestVerifyPersistencyHardening checks that the verifier rejects malformed
// persistence primitives: flushes and NT stores must address through a
// pointer, fences take no operands, kind tags must be in range, and none of
// them may produce a result. Each case mutates one well-formed instruction.
func TestVerifyPersistencyHardening(t *testing.T) {
	cases := []struct {
		name string
		mut  func(m *Module)
		want string
	}{
		{
			name: "flush of non-pointer",
			mut: func(m *Module) {
				findInstr(t, m, "store_key", OpFlush).Args[0] = ConstInt(64)
			},
			want: "must be ptr",
		},
		{
			name: "flush arity",
			mut: func(m *Module) {
				in := findInstr(t, m, "store_key", OpFlush)
				in.Args = append(in.Args, ConstInt(1))
			},
			want: "operands",
		},
		{
			name: "flush kind out of range",
			mut: func(m *Module) {
				findInstr(t, m, "store_key", OpFlush).FlushK = FlushKind(99)
			},
			want: "flush kind",
		},
		{
			name: "flush with result",
			mut: func(m *Module) {
				in := findInstr(t, m, "store_key", OpFlush)
				in.Ty = I64
				in.Name = "bogus"
			},
			want: "result",
		},
		{
			name: "fence with operand",
			mut: func(m *Module) {
				in := findInstr(t, m, "store_key", OpFence)
				in.Args = []Value{ConstInt(0)}
			},
			want: "operands",
		},
		{
			name: "fence kind out of range",
			mut: func(m *Module) {
				findInstr(t, m, "store_key", OpFence).FenceK = FenceKind(-1)
			},
			want: "fence kind",
		},
		{
			name: "fence with result",
			mut: func(m *Module) {
				in := findInstr(t, m, "store_key", OpFence)
				in.Ty = I1
				in.Name = "bogus"
			},
			want: "result",
		},
		{
			name: "ntstore through non-pointer",
			mut: func(m *Module) {
				findInstr(t, m, "main", OpNTStore).Args[1] = ConstInt(0)
			},
			want: "must be ptr",
		},
		{
			name: "ntstore with result",
			mut: func(m *Module) {
				in := findInstr(t, m, "main", OpNTStore)
				in.Ty = I64
				in.Name = "bogus"
			},
			want: "result",
		},
		{
			name: "store through non-pointer",
			mut: func(m *Module) {
				findInstr(t, m, "store_key", OpStore).Args[1] = ConstInt(8)
			},
			want: "must be ptr",
		},
		{
			name: "store with result",
			mut: func(m *Module) {
				in := findInstr(t, m, "store_key", OpStore)
				in.Ty = I64
				in.Name = "bogus"
			},
			want: "result",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := buildSample(t)
			c.mut(m)
			err := Verify(m)
			if err == nil {
				t.Fatal("Verify accepted a malformed persistence primitive")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
