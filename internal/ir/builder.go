package ir

import "fmt"

// Builder appends instructions to a current block, generating fresh result
// names. It is the construction API used by the front end's lowering pass
// and by tests.
type Builder struct {
	fn  *Func
	blk *Block
	// loc is attached to every emitted instruction until changed.
	loc Loc
	// tmp feeds fresh value names (%t0, %t1, ...).
	tmp int
	// blkN feeds fresh block names.
	blkN int
}

// NewBuilder returns a builder positioned at the end of the function's
// entry block, creating one if the function has no blocks yet.
func NewBuilder(fn *Func) *Builder {
	b := &Builder{fn: fn}
	if len(fn.Blocks) == 0 {
		b.blk = fn.AddBlock("entry")
	} else {
		b.blk = fn.Blocks[len(fn.Blocks)-1]
	}
	return b
}

// Func returns the function under construction.
func (b *Builder) Func() *Func { return b.fn }

// Block returns the current insertion block.
func (b *Builder) Block() *Block { return b.blk }

// SetBlock moves the insertion point to the end of blk.
func (b *Builder) SetBlock(blk *Block) { b.blk = blk }

// SetLoc sets the source location attached to subsequent instructions.
func (b *Builder) SetLoc(loc Loc) { b.loc = loc }

// NewBlock creates a fresh block with a unique name derived from hint.
func (b *Builder) NewBlock(hint string) *Block {
	name := fmt.Sprintf("%s%d", hint, b.blkN)
	b.blkN++
	return b.fn.AddBlock(name)
}

// Terminated reports whether the current block already ends in a
// terminator (in which case further appends would be unreachable).
func (b *Builder) Terminated() bool { return b.blk.Terminator() != nil }

func (b *Builder) fresh() string {
	n := fmt.Sprintf("t%d", b.tmp)
	b.tmp++
	return n
}

func (b *Builder) emit(in *Instr) *Instr {
	in.Loc = b.loc
	if in.HasResult() && in.Name == "" {
		in.Name = b.fresh()
	}
	b.blk.Append(in)
	return in
}

// Alloca allocates a stack slot with the given layout and returns its address.
func (b *Builder) Alloca(layout Type) *Instr {
	return b.emit(&Instr{Op: OpAlloca, Ty: Ptr, AllocTy: layout})
}

// Load loads a scalar of type ty from ptr.
func (b *Builder) Load(ty Type, ptr Value) *Instr {
	return b.emit(&Instr{Op: OpLoad, Ty: ty, Args: []Value{ptr}})
}

// Store stores val (of type ty) to ptr.
func (b *Builder) Store(ty Type, val, ptr Value) *Instr {
	return b.emit(&Instr{Op: OpStore, Ty: Void, StoreTy: ty, Args: []Value{val, ptr}})
}

// NTStore is a non-temporal store of val (of type ty) to ptr.
func (b *Builder) NTStore(ty Type, val, ptr Value) *Instr {
	return b.emit(&Instr{Op: OpNTStore, Ty: Void, StoreTy: ty, Args: []Value{val, ptr}})
}

// PtrAdd computes base + index*scale + disp.
func (b *Builder) PtrAdd(base, index Value, scale, disp int64) *Instr {
	return b.emit(&Instr{Op: OpPtrAdd, Ty: Ptr, Args: []Value{base, index}, Scale: scale, Disp: disp})
}

// FieldAddr computes the address of a struct field: base + field offset.
func (b *Builder) FieldAddr(base Value, f *Field) *Instr {
	return b.PtrAdd(base, ConstInt(0), 0, f.Offset)
}

// Bin emits a binary arithmetic/logic operation; both operands have type ty.
func (b *Builder) Bin(op Op, ty Type, x, y Value) *Instr {
	if !op.IsBinary() {
		panic("ir: Bin with non-binary op " + op.String())
	}
	return b.emit(&Instr{Op: op, Ty: ty, Args: []Value{x, y}})
}

// Cmp emits a comparison; the result has type i1.
func (b *Builder) Cmp(op Op, x, y Value) *Instr {
	if !op.IsCmp() {
		panic("ir: Cmp with non-comparison op " + op.String())
	}
	return b.emit(&Instr{Op: op, Ty: I1, Args: []Value{x, y}})
}

// Cast emits a conversion to type to.
func (b *Builder) Cast(op Op, to Type, x Value) *Instr {
	if !op.IsCast() {
		panic("ir: Cast with non-cast op " + op.String())
	}
	return b.emit(&Instr{Op: op, Ty: to, Args: []Value{x}})
}

// Call emits a direct call.
func (b *Builder) Call(callee *Func, args ...Value) *Instr {
	return b.emit(&Instr{Op: OpCall, Ty: callee.Ret, Callee: callee, Args: args})
}

// Br emits a conditional branch.
func (b *Builder) Br(cond Value, then, els *Block) *Instr {
	return b.emit(&Instr{Op: OpBr, Ty: Void, Args: []Value{cond}, Succs: []*Block{then, els}})
}

// Jmp emits an unconditional branch.
func (b *Builder) Jmp(dest *Block) *Instr {
	return b.emit(&Instr{Op: OpJmp, Ty: Void, Succs: []*Block{dest}})
}

// Ret emits a return; val is nil for void functions.
func (b *Builder) Ret(val Value) *Instr {
	in := &Instr{Op: OpRet, Ty: Void}
	if val != nil {
		in.Args = []Value{val}
	}
	return b.emit(in)
}

// Flush emits a cache-line flush of the line containing ptr.
func (b *Builder) Flush(kind FlushKind, ptr Value) *Instr {
	return b.emit(&Instr{Op: OpFlush, Ty: Void, FlushK: kind, Args: []Value{ptr}})
}

// Fence emits a memory fence.
func (b *Builder) Fence(kind FenceKind) *Instr {
	return b.emit(&Instr{Op: OpFence, Ty: Void, FenceK: kind})
}

// Spawn emits a thread spawn of callee; the result is the thread handle.
func (b *Builder) Spawn(callee *Func, args ...Value) *Instr {
	return b.emit(&Instr{Op: OpSpawn, Ty: I64, Callee: callee, Args: args})
}

// Join emits a join on a thread handle; the result is the thread's
// return value (0 for void thread functions).
func (b *Builder) Join(handle Value) *Instr {
	return b.emit(&Instr{Op: OpJoin, Ty: I64, Args: []Value{handle}})
}

// AtomicLoad emits an atomic i64 load from ptr.
func (b *Builder) AtomicLoad(order MemOrder, ptr Value) *Instr {
	return b.emit(&Instr{Op: OpAtomicLoad, Ty: I64, Order: order, Args: []Value{ptr}})
}

// AtomicStore emits an atomic i64 store of val to ptr.
func (b *Builder) AtomicStore(order MemOrder, val, ptr Value) *Instr {
	return b.emit(&Instr{Op: OpAtomicStore, Ty: Void, StoreTy: I64, Order: order, Args: []Value{val, ptr}})
}

// AtomicRMW emits an atomic read-modify-write on ptr; the result is the
// previous value.
func (b *Builder) AtomicRMW(kind RMWKind, val, ptr Value) *Instr {
	return b.emit(&Instr{Op: OpAtomicRMW, Ty: I64, Order: OrderSeqCst, RMWK: kind, Args: []Value{val, ptr}})
}

// AtomicCAS emits an atomic compare-and-swap on ptr; the result is the
// previous value (the swap happened iff it equals expect).
func (b *Builder) AtomicCAS(expect, nv, ptr Value) *Instr {
	return b.emit(&Instr{Op: OpAtomicCAS, Ty: I64, Order: OrderSeqCst, Args: []Value{expect, nv, ptr}})
}
