package ir

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParseModuleNeverPanics feeds the parser thousands of mutated
// variants of a valid module: every input must either parse or return an
// error — never panic. (The parser is fed artifact files from disk by the
// CLI tools, so robustness matters.)
func TestParseModuleNeverPanics(t *testing.T) {
	base := Print(buildSample(t))
	rng := rand.New(rand.NewSource(42))
	mutate := func(s string) string {
		b := []byte(s)
		if len(b) == 0 {
			return s
		}
		switch rng.Intn(4) {
		case 0: // flip a byte
			b[rng.Intn(len(b))] = byte(rng.Intn(128))
		case 1: // delete a span
			i := rng.Intn(len(b))
			j := i + rng.Intn(len(b)-i)
			b = append(b[:i], b[j:]...)
		case 2: // duplicate a span
			i := rng.Intn(len(b))
			j := i + rng.Intn(min(40, len(b)-i))
			b = append(b[:j], append([]byte(string(b[i:j])), b[j:]...)...)
		case 3: // swap two lines
			lines := strings.Split(string(b), "\n")
			if len(lines) > 2 {
				i, j := rng.Intn(len(lines)), rng.Intn(len(lines))
				lines[i], lines[j] = lines[j], lines[i]
			}
			return strings.Join(lines, "\n")
		}
		return string(b)
	}
	for i := 0; i < 3000; i++ {
		src := base
		for k := 0; k <= rng.Intn(3); k++ {
			src = mutate(src)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on mutated input: %v\n----\n%s", r, src)
				}
			}()
			if m, err := ParseModule(src); err == nil {
				// A successfully parsed mutant must still verify or at
				// least print without panicking.
				_ = Print(m)
			}
		}()
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
