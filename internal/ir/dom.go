package ir

// Dominators computes the dominator sets of a function's blocks with the
// classic iterative dataflow algorithm: dom(entry) = {entry}; for every
// other block, dom(b) = {b} ∪ ⋂ dom(preds). The verifier uses it to check
// that definitions dominate uses (the property the interpreter relies on
// when it reads register slots without initialization).
type Dominators struct {
	fn    *Func
	index map[*Block]int
	// dom[i] is the set of block indices dominating block i, as a bitset.
	dom []bitset
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) fill() {
	for i := range b {
		b[i] = ^uint64(0)
	}
}

// intersectWith intersects b with o in place and reports whether b changed.
func (b bitset) intersectWith(o bitset) bool {
	changed := false
	for i := range b {
		nv := b[i] & o[i]
		if nv != b[i] {
			b[i] = nv
			changed = true
		}
	}
	return changed
}

// ComputeDominators analyzes fn's CFG.
func ComputeDominators(fn *Func) *Dominators {
	n := len(fn.Blocks)
	d := &Dominators{fn: fn, index: make(map[*Block]int, n), dom: make([]bitset, n)}
	for i, b := range fn.Blocks {
		d.index[b] = i
	}
	preds := make([][]int, n)
	for i, b := range fn.Blocks {
		if term := b.Terminator(); term != nil {
			for _, s := range term.Succs {
				j := d.index[s]
				preds[j] = append(preds[j], i)
			}
		}
	}
	for i := range d.dom {
		d.dom[i] = newBitset(n)
		if i == 0 {
			d.dom[i].set(0)
		} else {
			d.dom[i].fill()
		}
	}
	changed := true
	for changed {
		changed = false
		for i := 1; i < n; i++ {
			nv := newBitset(n)
			nv.fill()
			if len(preds[i]) == 0 {
				// Unreachable from the entry: keep "dominated by all"
				// (vacuously true; such blocks never execute).
				continue
			}
			for _, p := range preds[i] {
				nv.intersectWith(d.dom[p])
			}
			nv.set(i)
			// Sets only shrink, so intersecting with the recomputed set
			// both updates and detects change.
			if d.dom[i].intersectWith(nv) {
				changed = true
			}
		}
	}
	return d
}

// Dominates reports whether block a dominates block b.
func (d *Dominators) Dominates(a, b *Block) bool {
	ia, ok := d.index[a]
	if !ok {
		return false
	}
	ib, ok := d.index[b]
	if !ok {
		return false
	}
	return d.dom[ib].has(ia)
}

// verifyDominance checks that every instruction-result operand is defined
// in a position that dominates its use.
func verifyDominance(f *Func) error {
	doms := ComputeDominators(f)
	// Position of each instruction within its block for same-block checks.
	pos := make(map[*Instr]int)
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			pos[in] = i
		}
	}
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			for _, a := range in.Args {
				def, ok := a.(*Instr)
				if !ok {
					continue
				}
				db := def.Block()
				switch {
				case db == b:
					if pos[def] >= i {
						return &domError{f, in, def, "use precedes definition in the same block"}
					}
				case !doms.Dominates(db, b):
					return &domError{f, in, def, "definition does not dominate use"}
				}
			}
		}
	}
	return nil
}

type domError struct {
	f        *Func
	use, def *Instr
	msg      string
}

func (e *domError) Error() string {
	return "@" + e.f.Name + ": " + FormatInstr(e.use) + " uses %" + e.def.Name + ": " + e.msg
}
