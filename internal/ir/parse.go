package ir

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// ParseModule parses the textual IR form produced by Print. It exists so
// corpus programs and fixed modules can be stored, diffed and reloaded as
// text, mirroring how the paper's artifact works with LLVM bitcode files.
func ParseModule(src string) (*Module, error) {
	p := &irParser{lines: strings.Split(src, "\n")}
	m, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("ir: line %d: %w", p.ln, err)
	}
	return m, nil
}

// MustParseModule is ParseModule for known-good sources (tests, corpus).
func MustParseModule(src string) *Module {
	m, err := ParseModule(src)
	if err != nil {
		panic(err)
	}
	return m
}

type irParser struct {
	lines []string
	ln    int // 1-based index of the line being parsed
	mod   *Module
}

func (p *irParser) next() (string, bool) {
	for p.ln < len(p.lines) {
		line := strings.TrimSpace(p.lines[p.ln])
		p.ln++
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		if i := strings.Index(line, " ;"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		return line, true
	}
	return "", false
}

func (p *irParser) parse() (*Module, error) {
	line, ok := p.next()
	if !ok || !strings.HasPrefix(line, "module ") {
		return nil, fmt.Errorf("expected 'module <name>' header")
	}
	p.mod = NewModule(strings.TrimSpace(strings.TrimPrefix(line, "module ")))

	// First pass: collect everything line-wise, creating function headers
	// so bodies can call forward. Bodies are remembered and parsed second.
	type pendingBody struct {
		fn    *Func
		start int // line index of first body line
		end   int // line index just past the body
	}
	var bodies []pendingBody
	for {
		line, ok := p.next()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(line, "struct %"):
			if err := p.parseStruct(line); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "global @"), strings.HasPrefix(line, "pm global @"):
			if err := p.parseGlobal(line); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "declare @"):
			fn, err := p.parseSig(strings.TrimPrefix(line, "declare "))
			if err != nil {
				return nil, err
			}
			if p.mod.Func(fn.Name) != nil {
				return nil, fmt.Errorf("duplicate function @%s", fn.Name)
			}
			p.mod.AddFunc(fn)
		case strings.HasPrefix(line, "func @"):
			header := strings.TrimSuffix(strings.TrimPrefix(line, "func "), "{")
			fn, err := p.parseSig(strings.TrimSpace(header))
			if err != nil {
				return nil, err
			}
			if p.mod.Func(fn.Name) != nil {
				return nil, fmt.Errorf("duplicate function @%s", fn.Name)
			}
			p.mod.AddFunc(fn)
			start := p.ln
			depth := 1
			for depth > 0 {
				l, ok := p.next()
				if !ok {
					return nil, fmt.Errorf("unterminated body of @%s", fn.Name)
				}
				if l == "}" {
					depth--
				}
			}
			bodies = append(bodies, pendingBody{fn: fn, start: start, end: p.ln - 1})
		default:
			return nil, fmt.Errorf("unexpected top-level line %q", line)
		}
	}
	for _, pb := range bodies {
		if err := p.parseBody(pb.fn, pb.start, pb.end); err != nil {
			return nil, err
		}
		pb.fn.Renumber()
	}
	return p.mod, nil
}

// parseStruct handles: struct %Name { f1: ty, f2: ty }
func (p *irParser) parseStruct(line string) error {
	rest := strings.TrimPrefix(line, "struct %")
	open := strings.Index(rest, "{")
	close := strings.LastIndex(rest, "}")
	if open < 0 || close < open {
		return fmt.Errorf("malformed struct definition %q", line)
	}
	name := strings.TrimSpace(rest[:open])
	if p.mod.Struct(name) != nil {
		return fmt.Errorf("duplicate struct %%%s", name)
	}
	var fields []Field
	inner := strings.TrimSpace(rest[open+1 : close])
	if inner != "" {
		for _, part := range strings.Split(inner, ",") {
			nv := strings.SplitN(part, ":", 2)
			if len(nv) != 2 {
				return fmt.Errorf("malformed struct field %q", part)
			}
			ty, err := p.parseType(strings.TrimSpace(nv[1]))
			if err != nil {
				return err
			}
			fields = append(fields, Field{Name: strings.TrimSpace(nv[0]), Type: ty})
		}
	}
	p.mod.AddStruct(NewStruct(name, fields))
	return nil
}

// parseGlobal handles: [pm] global @name: type [= x"hex"]
func (p *irParser) parseGlobal(line string) error {
	g := &Global{}
	rest := line
	if strings.HasPrefix(rest, "pm ") {
		g.PM = true
		rest = strings.TrimPrefix(rest, "pm ")
	}
	rest = strings.TrimPrefix(rest, "global @")
	colon := strings.Index(rest, ":")
	if colon < 0 {
		return fmt.Errorf("malformed global %q", line)
	}
	g.Name = strings.TrimSpace(rest[:colon])
	rest = strings.TrimSpace(rest[colon+1:])
	if eq := strings.Index(rest, "="); eq >= 0 {
		init := strings.TrimSpace(rest[eq+1:])
		rest = strings.TrimSpace(rest[:eq])
		if !strings.HasPrefix(init, `x"`) || !strings.HasSuffix(init, `"`) {
			return fmt.Errorf("malformed global initializer %q", init)
		}
		raw, err := hex.DecodeString(init[2 : len(init)-1])
		if err != nil {
			return fmt.Errorf("bad hex initializer: %w", err)
		}
		g.Init = raw
	}
	ty, err := p.parseType(rest)
	if err != nil {
		return err
	}
	g.Elem = ty
	if p.mod.Global(g.Name) != nil {
		return fmt.Errorf("duplicate global @%s", g.Name)
	}
	p.mod.AddGlobal(g)
	return nil
}

// parseSig handles: @name(%p: ty, ...) -> ty
func (p *irParser) parseSig(s string) (*Func, error) {
	s = strings.TrimPrefix(s, "@")
	open := strings.Index(s, "(")
	close := strings.LastIndex(s, ")")
	arrow := strings.LastIndex(s, "->")
	if open < 0 || close < open || arrow < close {
		return nil, fmt.Errorf("malformed signature %q", s)
	}
	name := strings.TrimSpace(s[:open])
	ret, err := p.parseType(strings.TrimSpace(s[arrow+2:]))
	if err != nil {
		return nil, err
	}
	var params []*Param
	inner := strings.TrimSpace(s[open+1 : close])
	if inner != "" {
		for _, part := range strings.Split(inner, ",") {
			nv := strings.SplitN(part, ":", 2)
			if len(nv) != 2 {
				return nil, fmt.Errorf("malformed parameter %q", part)
			}
			pname := strings.TrimSpace(nv[0])
			if !strings.HasPrefix(pname, "%") {
				return nil, fmt.Errorf("parameter name %q must start with %%", pname)
			}
			ty, err := p.parseType(strings.TrimSpace(nv[1]))
			if err != nil {
				return nil, err
			}
			params = append(params, &Param{Name: pname[1:], Ty: ty})
		}
	}
	return NewFunc(name, ret, params...), nil
}

func (p *irParser) parseType(s string) (Type, error) {
	switch s {
	case "void":
		return Void, nil
	case "i1":
		return I1, nil
	case "i8":
		return I8, nil
	case "i64":
		return I64, nil
	case "ptr":
		return Ptr, nil
	}
	if strings.HasPrefix(s, "%") {
		st := p.mod.Struct(s[1:])
		if st == nil {
			return nil, fmt.Errorf("unknown struct type %s", s)
		}
		return st, nil
	}
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		inner := s[1 : len(s)-1]
		x := strings.SplitN(inner, " x ", 2)
		if len(x) != 2 {
			return nil, fmt.Errorf("malformed array type %q", s)
		}
		n, err := strconv.ParseInt(strings.TrimSpace(x[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("malformed array length in %q", s)
		}
		elem, err := p.parseType(strings.TrimSpace(x[1]))
		if err != nil {
			return nil, err
		}
		return Array(elem, n), nil
	}
	return nil, fmt.Errorf("unknown type %q", s)
}

// bodyParser state for one function.
type bodyEnv struct {
	fn   *Func
	vals map[string]Value
	// blockRefs are (^name, instr, succ-slot) fixups resolved at the end.
	fixups []blockFixup
}

type blockFixup struct {
	in   *Instr
	slot int
	name string
}

func (p *irParser) parseBody(fn *Func, start, end int) error {
	env := &bodyEnv{fn: fn, vals: make(map[string]Value)}
	for _, prm := range fn.Params {
		env.vals[prm.Name] = prm
	}
	var cur *Block
	for p.ln = start; p.ln < end; {
		line, _ := p.next()
		if line == "" {
			break
		}
		if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
			name := strings.TrimSuffix(line, ":")
			cur = fn.AddBlock(name)
			continue
		}
		if cur == nil {
			return fmt.Errorf("instruction before first block label in @%s", fn.Name)
		}
		in, err := p.parseInstr(env, line)
		if err != nil {
			return fmt.Errorf("in @%s: %w", fn.Name, err)
		}
		cur.Append(in)
		if in.HasResult() {
			if _, dup := env.vals[in.Name]; dup {
				return fmt.Errorf("in @%s: duplicate value %%%s", fn.Name, in.Name)
			}
			env.vals[in.Name] = in
		}
	}
	p.ln = end + 1
	for _, fx := range env.fixups {
		blk := fn.Block(fx.name)
		if blk == nil {
			return fmt.Errorf("in @%s: unknown block ^%s", fn.Name, fx.name)
		}
		fx.in.Succs[fx.slot] = blk
	}
	return nil
}

// parseInstr parses one instruction line.
func (p *irParser) parseInstr(env *bodyEnv, line string) (*Instr, error) {
	// Split off the !file:line location suffix.
	loc := Loc{}
	if i := strings.LastIndex(line, " !"); i >= 0 {
		locStr := line[i+2:]
		line = strings.TrimSpace(line[:i])
		if j := strings.LastIndex(locStr, ":"); j >= 0 {
			n, err := strconv.Atoi(locStr[j+1:])
			if err != nil {
				return nil, fmt.Errorf("malformed location %q", locStr)
			}
			loc = Loc{File: locStr[:j], Line: n}
		}
	}
	// Split off the result name.
	name := ""
	if strings.HasPrefix(line, "%") {
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, fmt.Errorf("malformed instruction %q", line)
		}
		name = strings.TrimSpace(line[1:eq])
		line = strings.TrimSpace(line[eq+1:])
	}
	sp := strings.IndexByte(line, ' ')
	mnemonic := line
	rest := ""
	if sp >= 0 {
		mnemonic = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}
	in := &Instr{Name: name, Loc: loc, Ty: Void}
	switch mnemonic {
	case "alloca":
		ty, err := p.parseType(rest)
		if err != nil {
			return nil, err
		}
		in.Op, in.Ty, in.AllocTy = OpAlloca, Ptr, ty
	case "load":
		parts := splitArgs(rest)
		if len(parts) != 2 {
			return nil, fmt.Errorf("malformed load %q", rest)
		}
		ty, err := p.parseType(parts[0])
		if err != nil {
			return nil, err
		}
		ptr, err := p.parseOperand(env, parts[1])
		if err != nil {
			return nil, err
		}
		in.Op, in.Ty, in.Args = OpLoad, ty, []Value{ptr}
	case "store", "ntstore":
		parts := splitArgs(rest)
		if len(parts) != 2 {
			return nil, fmt.Errorf("malformed store %q", rest)
		}
		val, err := p.parseOperand(env, parts[0])
		if err != nil {
			return nil, err
		}
		ptr, err := p.parseOperand(env, parts[1])
		if err != nil {
			return nil, err
		}
		in.Op, in.StoreTy, in.Args = OpStore, val.Type(), []Value{val, ptr}
		if mnemonic == "ntstore" {
			in.Op = OpNTStore
		}
	case "ptradd":
		parts := splitArgs(rest)
		if len(parts) != 4 {
			return nil, fmt.Errorf("malformed ptradd %q", rest)
		}
		base, err := p.parseOperand(env, parts[0])
		if err != nil {
			return nil, err
		}
		idx, err := p.parseOperand(env, parts[1])
		if err != nil {
			return nil, err
		}
		scale, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return nil, err
		}
		disp, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil {
			return nil, err
		}
		in.Op, in.Ty, in.Args, in.Scale, in.Disp = OpPtrAdd, Ptr, []Value{base, idx}, scale, disp
	case "call":
		open := strings.Index(rest, "(")
		close := strings.LastIndex(rest, ")")
		if !strings.HasPrefix(rest, "@") || open < 0 || close < open {
			return nil, fmt.Errorf("malformed call %q", rest)
		}
		callee := p.mod.Func(rest[1:open])
		if callee == nil {
			return nil, fmt.Errorf("unknown callee %s", rest[:open])
		}
		var args []Value
		if inner := strings.TrimSpace(rest[open+1 : close]); inner != "" {
			for _, part := range splitArgs(inner) {
				a, err := p.parseOperand(env, part)
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
		}
		in.Op, in.Ty, in.Callee, in.Args = OpCall, callee.Ret, callee, args
	case "br":
		parts := splitArgs(rest)
		if len(parts) != 3 {
			return nil, fmt.Errorf("malformed br %q", rest)
		}
		cond, err := p.parseOperand(env, parts[0])
		if err != nil {
			return nil, err
		}
		in.Op, in.Args, in.Succs = OpBr, []Value{cond}, make([]*Block, 2)
		for i, bn := range parts[1:] {
			if !strings.HasPrefix(bn, "^") {
				return nil, fmt.Errorf("malformed branch target %q", bn)
			}
			env.fixups = append(env.fixups, blockFixup{in: in, slot: i, name: bn[1:]})
		}
	case "jmp":
		if !strings.HasPrefix(rest, "^") {
			return nil, fmt.Errorf("malformed jmp %q", rest)
		}
		in.Op, in.Succs = OpJmp, make([]*Block, 1)
		env.fixups = append(env.fixups, blockFixup{in: in, slot: 0, name: rest[1:]})
	case "ret":
		in.Op = OpRet
		if rest != "void" {
			v, err := p.parseOperand(env, rest)
			if err != nil {
				return nil, err
			}
			in.Args = []Value{v}
		}
	case "flush":
		parts := splitArgs(rest)
		if len(parts) != 2 {
			return nil, fmt.Errorf("malformed flush %q", rest)
		}
		switch parts[0] {
		case "clwb":
			in.FlushK = CLWB
		case "clflushopt":
			in.FlushK = CLFLUSHOPT
		case "clflush":
			in.FlushK = CLFLUSH
		default:
			return nil, fmt.Errorf("unknown flush kind %q", parts[0])
		}
		ptr, err := p.parseOperand(env, parts[1])
		if err != nil {
			return nil, err
		}
		in.Op, in.Args = OpFlush, []Value{ptr}
	case "fence":
		switch rest {
		case "sfence":
			in.FenceK = SFENCE
		case "mfence":
			in.FenceK = MFENCE
		default:
			return nil, fmt.Errorf("unknown fence kind %q", rest)
		}
		in.Op = OpFence
	case "spawn":
		open := strings.Index(rest, "(")
		close := strings.LastIndex(rest, ")")
		if !strings.HasPrefix(rest, "@") || open < 0 || close < open {
			return nil, fmt.Errorf("malformed spawn %q", rest)
		}
		callee := p.mod.Func(rest[1:open])
		if callee == nil {
			return nil, fmt.Errorf("unknown spawn callee %s", rest[:open])
		}
		var args []Value
		if inner := strings.TrimSpace(rest[open+1 : close]); inner != "" {
			for _, part := range splitArgs(inner) {
				a, err := p.parseOperand(env, part)
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
		}
		in.Op, in.Ty, in.Callee, in.Args = OpSpawn, I64, callee, args
	case "join":
		t, err := p.parseOperand(env, rest)
		if err != nil {
			return nil, err
		}
		in.Op, in.Ty, in.Args = OpJoin, I64, []Value{t}
	case "atomicload":
		parts := splitArgs(rest)
		if len(parts) != 2 {
			return nil, fmt.Errorf("malformed atomicload %q", rest)
		}
		ordTy := strings.Fields(parts[0])
		if len(ordTy) != 2 {
			return nil, fmt.Errorf("malformed atomicload %q", rest)
		}
		ord, err := parseOrder(ordTy[0])
		if err != nil {
			return nil, err
		}
		ty, err := p.parseType(ordTy[1])
		if err != nil {
			return nil, err
		}
		ptr, err := p.parseOperand(env, parts[1])
		if err != nil {
			return nil, err
		}
		in.Op, in.Order, in.Ty, in.Args = OpAtomicLoad, ord, ty, []Value{ptr}
	case "atomicstore":
		sp2 := strings.IndexByte(rest, ' ')
		if sp2 < 0 {
			return nil, fmt.Errorf("malformed atomicstore %q", rest)
		}
		ord, err := parseOrder(rest[:sp2])
		if err != nil {
			return nil, err
		}
		parts := splitArgs(strings.TrimSpace(rest[sp2+1:]))
		if len(parts) != 2 {
			return nil, fmt.Errorf("malformed atomicstore %q", rest)
		}
		val, err := p.parseOperand(env, parts[0])
		if err != nil {
			return nil, err
		}
		ptr, err := p.parseOperand(env, parts[1])
		if err != nil {
			return nil, err
		}
		in.Op, in.Order, in.StoreTy, in.Args = OpAtomicStore, ord, val.Type(), []Value{val, ptr}
	case "atomicrmw":
		fields := strings.Fields(rest)
		if len(fields) < 3 {
			return nil, fmt.Errorf("malformed atomicrmw %q", rest)
		}
		var rmw RMWKind
		switch fields[0] {
		case "add":
			rmw = RMWAdd
		case "xchg":
			rmw = RMWXchg
		default:
			return nil, fmt.Errorf("unknown rmw kind %q", fields[0])
		}
		ord, err := parseOrder(fields[1])
		if err != nil {
			return nil, err
		}
		parts := splitArgs(strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(rest, fields[0]), " "+fields[1])))
		if len(parts) != 2 {
			return nil, fmt.Errorf("malformed atomicrmw operands %q", rest)
		}
		val, err := p.parseOperand(env, parts[0])
		if err != nil {
			return nil, err
		}
		ptr, err := p.parseOperand(env, parts[1])
		if err != nil {
			return nil, err
		}
		in.Op, in.RMWK, in.Order, in.Ty, in.Args = OpAtomicRMW, rmw, ord, I64, []Value{val, ptr}
	case "atomiccas":
		sp2 := strings.IndexByte(rest, ' ')
		if sp2 < 0 {
			return nil, fmt.Errorf("malformed atomiccas %q", rest)
		}
		ord, err := parseOrder(rest[:sp2])
		if err != nil {
			return nil, err
		}
		parts := splitArgs(strings.TrimSpace(rest[sp2+1:]))
		if len(parts) != 3 {
			return nil, fmt.Errorf("malformed atomiccas %q", rest)
		}
		expect, err := p.parseOperand(env, parts[0])
		if err != nil {
			return nil, err
		}
		nv, err := p.parseOperand(env, parts[1])
		if err != nil {
			return nil, err
		}
		ptr, err := p.parseOperand(env, parts[2])
		if err != nil {
			return nil, err
		}
		in.Op, in.Order, in.Ty, in.Args = OpAtomicCAS, ord, I64, []Value{expect, nv, ptr}
	case "zext", "trunc", "ptrtoint", "inttoptr":
		toIdx := strings.LastIndex(rest, " to ")
		if toIdx < 0 {
			return nil, fmt.Errorf("malformed cast %q", rest)
		}
		v, err := p.parseOperand(env, strings.TrimSpace(rest[:toIdx]))
		if err != nil {
			return nil, err
		}
		to, err := p.parseType(strings.TrimSpace(rest[toIdx+4:]))
		if err != nil {
			return nil, err
		}
		in.Ty, in.Args = to, []Value{v}
		switch mnemonic {
		case "zext":
			in.Op = OpZExt
		case "trunc":
			in.Op = OpTrunc
		case "ptrtoint":
			in.Op = OpPtrToInt
		case "inttoptr":
			in.Op = OpIntToPtr
		}
	default:
		op := opByName(mnemonic)
		if op == OpInvalid {
			return nil, fmt.Errorf("unknown mnemonic %q", mnemonic)
		}
		// Binary op or comparison: "<op> <ty> %a, %b".
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("malformed %s %q", mnemonic, rest)
		}
		ty, err := p.parseType(rest[:sp])
		if err != nil {
			return nil, err
		}
		parts := splitArgs(rest[sp+1:])
		if len(parts) != 2 {
			return nil, fmt.Errorf("malformed %s operands %q", mnemonic, rest)
		}
		a, err := p.parseBare(env, parts[0], ty)
		if err != nil {
			return nil, err
		}
		b, err := p.parseBare(env, parts[1], ty)
		if err != nil {
			return nil, err
		}
		in.Op, in.Args = op, []Value{a, b}
		if op.IsCmp() {
			in.Ty = I1
		} else {
			in.Ty = ty
		}
	}
	return in, nil
}

func parseOrder(s string) (MemOrder, error) {
	switch s {
	case "seqcst":
		return OrderSeqCst, nil
	case "acquire":
		return OrderAcquire, nil
	case "release":
		return OrderRelease, nil
	}
	return 0, fmt.Errorf("unknown memory order %q", s)
}

func opByName(s string) Op {
	for op := OpAdd; op <= OpGe; op++ {
		if opNames[op] == s {
			return op
		}
	}
	return OpInvalid
}

// splitArgs splits on top-level commas (the grammar has no nested commas
// outside call argument lists, which are handled separately).
func splitArgs(s string) []string {
	var out []string
	depth := 0
	last := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[last:i]))
				last = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[last:]))
	return out
}

// parseOperand parses a typed operand: "<ty> <val>" or the literal "null".
func (p *irParser) parseOperand(env *bodyEnv, s string) (Value, error) {
	s = strings.TrimSpace(s)
	if s == "null" || s == "ptr null" {
		return Null(), nil
	}
	sp := strings.IndexByte(s, ' ')
	if sp < 0 {
		return nil, fmt.Errorf("malformed operand %q", s)
	}
	ty, err := p.parseType(s[:sp])
	if err != nil {
		return nil, err
	}
	return p.parseBare(env, strings.TrimSpace(s[sp+1:]), ty)
}

// parseBare parses an operand whose type is already known.
func (p *irParser) parseBare(env *bodyEnv, s string, ty Type) (Value, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "null":
		return Null(), nil
	case strings.HasPrefix(s, "%"):
		v, ok := env.vals[s[1:]]
		if !ok {
			return nil, fmt.Errorf("undefined value %s", s)
		}
		return v, nil
	case strings.HasPrefix(s, "@"):
		if g := p.mod.Global(s[1:]); g != nil {
			return g, nil
		}
		return nil, fmt.Errorf("unknown global %s", s)
	default:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("malformed constant %q", s)
		}
		return &Const{Ty: ty, Val: n}, nil
	}
}
