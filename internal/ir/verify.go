package ir

import (
	"errors"
	"fmt"
)

// Verify checks module well-formedness: every block terminated exactly at
// its end, operand types consistent, operands defined in the same function,
// call signatures matched, and branch targets within the function. The fix
// pass runs it after every transformation ("do no harm" starts with not
// corrupting the IR).
func Verify(m *Module) error {
	var errs []error
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		if err := verifyFunc(f); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func verifyFunc(f *Func) error {
	ctx := func(b *Block, in *Instr, format string, args ...any) error {
		return fmt.Errorf("@%s/^%s: %s: %s", f.Name, b.Name, FormatInstr(in), fmt.Sprintf(format, args...))
	}
	// Collect all values defined in this function for scoping checks.
	defined := map[Value]bool{}
	for _, p := range f.Params {
		defined[p] = true
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.HasResult() {
				defined[in] = true
			}
		}
	}
	seenNames := map[string]bool{}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("@%s/^%s: empty block", f.Name, b.Name)
		}
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				if isLast {
					return ctx(b, in, "block does not end in a terminator")
				}
				return ctx(b, in, "terminator in the middle of a block")
			}
			if in.HasResult() {
				if in.Name == "" {
					return ctx(b, in, "unnamed result")
				}
				if seenNames[in.Name] {
					return ctx(b, in, "duplicate result name %%%s", in.Name)
				}
				seenNames[in.Name] = true
			}
			for _, a := range in.Args {
				switch v := a.(type) {
				case *Const, *Global:
					// Always fine.
				case *Param, *Instr:
					if !defined[v] {
						return ctx(b, in, "operand %s defined outside @%s", a.OperandString(), f.Name)
					}
				default:
					return ctx(b, in, "unknown operand kind %T", a)
				}
				if !IsScalar(a.Type()) {
					return ctx(b, in, "operand %s has non-scalar type %s", a.OperandString(), a.Type())
				}
			}
			if err := verifyInstr(f, in); err != nil {
				return ctx(b, in, "%s", err)
			}
		}
	}
	return verifyDominance(f)
}

func verifyInstr(f *Func, in *Instr) error {
	want := func(n int) error {
		if len(in.Args) != n {
			return fmt.Errorf("want %d operands, have %d", n, len(in.Args))
		}
		return nil
	}
	ptrArg := func(i int) error {
		if !IsPtr(in.Args[i].Type()) {
			return fmt.Errorf("operand %d must be ptr, is %s", i, in.Args[i].Type())
		}
		return nil
	}
	noResult := func() error {
		if in.HasResult() {
			return fmt.Errorf("%s must not produce a result", in.Op)
		}
		return nil
	}
	switch in.Op {
	case OpAlloca:
		if in.AllocTy == nil || in.AllocTy.Size() <= 0 {
			return fmt.Errorf("alloca of zero-size type")
		}
		return want(0)
	case OpLoad:
		if err := want(1); err != nil {
			return err
		}
		if !IsScalar(in.Ty) {
			return fmt.Errorf("load of non-scalar type %s", in.Ty)
		}
		return ptrArg(0)
	case OpStore, OpNTStore:
		if err := want(2); err != nil {
			return err
		}
		if err := noResult(); err != nil {
			return err
		}
		if !TypeEqual(in.Args[0].Type(), in.StoreTy) {
			return fmt.Errorf("stored value type %s != store type %s", in.Args[0].Type(), in.StoreTy)
		}
		return ptrArg(1)
	case OpPtrAdd:
		if err := want(2); err != nil {
			return err
		}
		if err := ptrArg(0); err != nil {
			return err
		}
		if !TypeEqual(in.Args[1].Type(), I64) {
			return fmt.Errorf("ptradd index must be i64")
		}
		return nil
	case OpCall:
		if in.Callee == nil {
			return fmt.Errorf("call without callee")
		}
		if f.Mod != nil && f.Mod.Func(in.Callee.Name) != in.Callee {
			return fmt.Errorf("callee @%s not in module", in.Callee.Name)
		}
		if len(in.Args) != len(in.Callee.Params) {
			return fmt.Errorf("call to %s with %d args", in.Callee.Sig(), len(in.Args))
		}
		for i, a := range in.Args {
			if !TypeEqual(a.Type(), in.Callee.Params[i].Ty) {
				return fmt.Errorf("arg %d: have %s, want %s", i, a.Type(), in.Callee.Params[i].Ty)
			}
		}
		if !TypeEqual(in.Ty, in.Callee.Ret) {
			return fmt.Errorf("call result type %s != return type %s", in.Ty, in.Callee.Ret)
		}
		return nil
	case OpBr:
		if err := want(1); err != nil {
			return err
		}
		if !TypeEqual(in.Args[0].Type(), I1) {
			return fmt.Errorf("branch condition must be i1")
		}
		return checkSuccs(f, in, 2)
	case OpJmp:
		if err := want(0); err != nil {
			return err
		}
		return checkSuccs(f, in, 1)
	case OpRet:
		if TypeEqual(f.Ret, Void) {
			if len(in.Args) != 0 {
				return fmt.Errorf("ret with value in void function")
			}
			return nil
		}
		if err := want(1); err != nil {
			return err
		}
		if !TypeEqual(in.Args[0].Type(), f.Ret) {
			return fmt.Errorf("ret %s from function returning %s", in.Args[0].Type(), f.Ret)
		}
		return nil
	case OpFlush:
		if err := want(1); err != nil {
			return err
		}
		if err := noResult(); err != nil {
			return err
		}
		if in.FlushK < CLWB || in.FlushK > CLFLUSH {
			return fmt.Errorf("invalid flush kind %s", in.FlushK)
		}
		return ptrArg(0)
	case OpFence:
		if err := want(0); err != nil {
			return err
		}
		if err := noResult(); err != nil {
			return err
		}
		if in.FenceK != SFENCE && in.FenceK != MFENCE {
			return fmt.Errorf("invalid fence kind %s", in.FenceK)
		}
		return nil
	case OpSpawn:
		if in.Callee == nil {
			return fmt.Errorf("spawn without callee")
		}
		if f.Mod != nil && f.Mod.Func(in.Callee.Name) != in.Callee {
			return fmt.Errorf("spawn callee @%s not in module", in.Callee.Name)
		}
		if in.Callee.IsDecl() {
			return fmt.Errorf("spawn of declared-only @%s", in.Callee.Name)
		}
		if len(in.Args) != len(in.Callee.Params) {
			return fmt.Errorf("spawn of %s with %d args", in.Callee.Sig(), len(in.Args))
		}
		for i, a := range in.Args {
			if !TypeEqual(a.Type(), in.Callee.Params[i].Ty) {
				return fmt.Errorf("spawn arg %d: have %s, want %s", i, a.Type(), in.Callee.Params[i].Ty)
			}
		}
		if !TypeEqual(in.Ty, I64) {
			return fmt.Errorf("spawn result must be i64 (thread handle)")
		}
		return nil
	case OpJoin:
		if err := want(1); err != nil {
			return err
		}
		if !TypeEqual(in.Args[0].Type(), I64) {
			return fmt.Errorf("join handle must be i64")
		}
		if !TypeEqual(in.Ty, I64) {
			return fmt.Errorf("join result must be i64")
		}
		return nil
	case OpAtomicLoad:
		if err := want(1); err != nil {
			return err
		}
		if !TypeEqual(in.Ty, I64) {
			return fmt.Errorf("atomicload result must be i64")
		}
		if in.Order != OrderAcquire && in.Order != OrderSeqCst {
			return fmt.Errorf("atomicload order must be acquire or seqcst, is %s", in.Order)
		}
		return ptrArg(0)
	case OpAtomicStore:
		if err := want(2); err != nil {
			return err
		}
		if err := noResult(); err != nil {
			return err
		}
		if !TypeEqual(in.Args[0].Type(), I64) || !TypeEqual(in.StoreTy, I64) {
			return fmt.Errorf("atomicstore value must be i64")
		}
		if in.Order != OrderRelease && in.Order != OrderSeqCst {
			return fmt.Errorf("atomicstore order must be release or seqcst, is %s", in.Order)
		}
		return ptrArg(1)
	case OpAtomicRMW:
		if err := want(2); err != nil {
			return err
		}
		if !TypeEqual(in.Args[0].Type(), I64) || !TypeEqual(in.Ty, I64) {
			return fmt.Errorf("atomicrmw operates on i64")
		}
		if in.Order != OrderSeqCst {
			return fmt.Errorf("atomicrmw order must be seqcst, is %s", in.Order)
		}
		if in.RMWK != RMWAdd && in.RMWK != RMWXchg {
			return fmt.Errorf("invalid rmw kind %s", in.RMWK)
		}
		return ptrArg(1)
	case OpAtomicCAS:
		if err := want(3); err != nil {
			return err
		}
		if !TypeEqual(in.Args[0].Type(), I64) || !TypeEqual(in.Args[1].Type(), I64) || !TypeEqual(in.Ty, I64) {
			return fmt.Errorf("atomiccas operates on i64")
		}
		if in.Order != OrderSeqCst {
			return fmt.Errorf("atomiccas order must be seqcst, is %s", in.Order)
		}
		return ptrArg(2)
	default:
		switch {
		case in.Op.IsBinary():
			if err := want(2); err != nil {
				return err
			}
			if !IsInt(in.Ty) {
				return fmt.Errorf("binary op on non-integer type %s", in.Ty)
			}
			for i := range in.Args {
				if !TypeEqual(in.Args[i].Type(), in.Ty) {
					return fmt.Errorf("operand %d type %s != result type %s", i, in.Args[i].Type(), in.Ty)
				}
			}
			return nil
		case in.Op.IsCmp():
			if err := want(2); err != nil {
				return err
			}
			if !TypeEqual(in.Ty, I1) {
				return fmt.Errorf("comparison result must be i1")
			}
			if !TypeEqual(in.Args[0].Type(), in.Args[1].Type()) {
				return fmt.Errorf("comparison of mismatched types %s and %s", in.Args[0].Type(), in.Args[1].Type())
			}
			return nil
		case in.Op.IsCast():
			if err := want(1); err != nil {
				return err
			}
			from, to := in.Args[0].Type(), in.Ty
			switch in.Op {
			case OpZExt, OpTrunc:
				if !IsInt(from) || !IsInt(to) {
					return fmt.Errorf("integer cast between %s and %s", from, to)
				}
			case OpPtrToInt:
				if !IsPtr(from) || !TypeEqual(to, I64) {
					return fmt.Errorf("ptrtoint between %s and %s", from, to)
				}
			case OpIntToPtr:
				if !TypeEqual(from, I64) || !IsPtr(to) {
					return fmt.Errorf("inttoptr between %s and %s", from, to)
				}
			}
			return nil
		}
		return fmt.Errorf("unknown opcode %s", in.Op)
	}
}

func checkSuccs(f *Func, in *Instr, n int) error {
	if len(in.Succs) != n {
		return fmt.Errorf("want %d successors, have %d", n, len(in.Succs))
	}
	for _, s := range in.Succs {
		if s == nil {
			return fmt.Errorf("nil successor")
		}
		if s.fn != f {
			return fmt.Errorf("successor ^%s in another function", s.Name)
		}
	}
	return nil
}
