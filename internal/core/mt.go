package core

import (
	"fmt"

	"hippocrates/internal/crashsim"
	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/obs"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/schedule"
)

// ScheduleCrash pairs one explored interleaving with its post-repair
// crash-validation report.
type ScheduleCrash struct {
	// ID is the interleaving's replayable schedule id.
	ID string
	// Report is the crash sweep of the workload run under that
	// interleaving.
	Report *crashsim.Report
}

// MTResult is the outcome of the interleaving-aware workflow: explore →
// detect under every explored schedule → repair the union → re-explore →
// crash-validate every schedule.
type MTResult struct {
	// Exploration is the interleaving search over the original module;
	// ReExploration the search over the repaired one (nil when the
	// module was already clean under every explored schedule).
	Exploration   *schedule.Result
	ReExploration *schedule.Result
	// Before / After are the union detector verdicts: the counters
	// describe the default-schedule run, while Reports is the
	// class-deduplicated union across every explored interleaving — a
	// bug visible under any schedule is repaired, not just one the
	// default order happens to expose.
	Before *pmcheck.Result
	After  *pmcheck.Result
	// Fix describes the applied fixes (nil when Before was clean).
	Fix *Result
	// Crash holds one post-repair crash-validation report per explored
	// interleaving, in exploration order, when Options.CrashCheck is
	// set. All sweeps share one verdict cache: images that different
	// interleavings produce identically are judged once.
	Crash []ScheduleCrash
	// CrashPoints is the total number of crash points swept across all
	// schedules.
	CrashPoints int
}

// Fixed reports whether the module is clean after repair under every
// explored interleaving: no detector reports remain in the union, and —
// when crash validation ran — every crash schedule of every explored
// interleaving recovered cleanly.
func (r *MTResult) Fixed() bool {
	if !r.After.Clean() {
		return false
	}
	for _, c := range r.Crash {
		if !c.Report.Passed() {
			return false
		}
	}
	return true
}

// FinalExploration returns the exploration describing the module as it
// stands: the re-exploration when a repair ran, the original otherwise.
func (r *MTResult) FinalExploration() *schedule.Result {
	if r.ReExploration != nil {
		return r.ReExploration
	}
	return r.Exploration
}

// RunAndRepairMT is RunAndRepair for concurrent workloads. Instead of
// one trace it explores thread interleavings (bounded, with
// persistence-aware partial-order reduction — see internal/schedule),
// runs the detector under every explored schedule, repairs the union of
// all reports, and accepts the repair only if re-exploration finds every
// schedule clean and — with Options.CrashCheck set — the crash sweep of
// every explored interleaving passes. A runtime fault under any
// interleaving (deadlock, assertion, double join) is not a durability
// bug flush insertion can heal, so it surfaces as an error, before or
// after repair.
func RunAndRepairMT(mod *ir.Module, entry string, opts Options, args ...uint64) (out *MTResult, err error) {
	defer guard("pipeline", &err)
	sp := opts.Obs
	copts := crashOpts(opts, entry, args)

	ex, err := exploreModule(mod, entry, opts, "explore", args)
	if err != nil {
		return nil, err
	}
	out = &MTResult{Exploration: ex, Before: unionCheck(ex)}
	if out.Before.Clean() {
		out.After = out.Before
		return crashValidateMT(mod, copts, sp, out)
	}

	// Repair the union. The default-schedule trace stands in for the
	// single-threaded pipeline's trace (with the default full-AA marks it
	// is consulted only to resolve report sites, which are
	// schedule-independent instruction ids).
	out.Fix, err = Repair(mod, ex.Runs[0].Trace, out.Before, opts)
	if err != nil {
		return nil, err
	}

	re, err := exploreModule(mod, entry, opts, "re-explore", args)
	if err != nil {
		return nil, fmt.Errorf("re-exploring repaired module: %w", err)
	}
	out.ReExploration = re
	out.After = unionCheck(re)
	if sp != nil {
		sp.Add("revalidate.remaining_reports", int64(len(out.After.Reports)))
	}
	return crashValidateMT(mod, copts, sp, out)
}

// ExploreModule is the exploration phase alone: the bounded
// interleaving search plus the per-schedule detector, with the
// pipeline's limits and telemetry applied. Check and crash modes use it
// when they need verdicts without repairing. A runtime fault under any
// interleaving is an error, as in RunAndRepairMT.
func ExploreModule(mod *ir.Module, entry string, opts Options, args ...uint64) (*schedule.Result, error) {
	return exploreModule(mod, entry, opts, "explore", args)
}

// exploreModule runs one bounded interleaving search under a child span.
func exploreModule(mod *ir.Module, entry string, opts Options, span string, args []uint64) (*schedule.Result, error) {
	esp := opts.Obs.Start(span)
	defer esp.End()
	esp.SetAttr("entry", entry)
	ex, err := schedule.Explore(mod, entry, args, schedule.Options{
		MaxSchedules: opts.MaxSchedules,
		Interp:       interp.Options{StepLimit: opts.StepLimit, Deadline: opts.Deadline},
		Obs:          esp,
	})
	if err != nil {
		return nil, err
	}
	for _, r := range ex.Runs {
		if r.Err != nil {
			return nil, fmt.Errorf("schedule %s: @%s faulted: %w", r.ID, entry, r.Err)
		}
	}
	return ex, nil
}

// unionCheck folds the per-schedule detector results into one: counters
// from the default-schedule run, reports class-deduplicated across every
// explored interleaving, thread/publish tallies maximized.
func unionCheck(ex *schedule.Result) *pmcheck.Result {
	u := *ex.Runs[0].Check
	var all []*pmcheck.Report
	threads, publishes := 0, 0
	for _, r := range ex.Runs {
		all = append(all, r.Check.Reports...)
		if r.Check.Threads > threads {
			threads = r.Check.Threads
		}
		if r.Check.CrossThreadPublishes > publishes {
			publishes = r.Check.CrossThreadPublishes
		}
	}
	u.Reports = pmcheck.DedupeByClass(all)
	u.Threads = threads
	u.CrossThreadPublishes = publishes
	return &u
}

// crashValidateMT sweeps crash validation over every explored
// interleaving of the final module, sharing one verdict cache so images
// common to several interleavings are judged once.
func crashValidateMT(mod *ir.Module, copts *crashsim.Options, sp *obs.Span, out *MTResult) (*MTResult, error) {
	if copts == nil {
		return out, nil
	}
	for _, run := range out.FinalExploration().Runs {
		round := *copts
		round.Schedule = run.Choices
		rep, err := crashsim.Validate(mod, round)
		if err != nil {
			return nil, fmt.Errorf("crash validation under schedule %s: %w", run.ID, err)
		}
		out.Crash = append(out.Crash, ScheduleCrash{ID: run.ID, Report: rep})
		out.CrashPoints += rep.Points
	}
	if sp != nil {
		sp.Add("schedule.crash_points", int64(out.CrashPoints))
	}
	return out, nil
}
