// Package core implements Hippocrates, the paper's contribution: an
// automated fixer for persistent-memory durability bugs that is guaranteed
// to "do no harm". It consumes a module, the PM bug-finder trace, and the
// detector's reports, and rewrites the module with the three safe fix
// species of §4.2:
//
//  1. intraprocedural fence insertion,
//  2. intraprocedural flush insertion,
//  3. the persistent subprogram transformation (interprocedural fixes),
//     placed by the alias-analysis hoisting heuristic of §4.3.
//
// Fix computation follows the paper's three phases: naive intraprocedural
// fixes, fix reduction, and heuristic hoisting.
package core

import (
	"fmt"
	"io"
	"sort"
	"time"

	"hippocrates/internal/alias"
	"hippocrates/internal/crashsim"
	"hippocrates/internal/ir"
	"hippocrates/internal/obs"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/static"
	"hippocrates/internal/trace"
)

// MarksMode selects how pointers are classified PM / not-PM for the
// hoisting heuristic (§6.1 evaluates both; they must agree).
type MarksMode int

// The marking strategies.
const (
	// FullAA derives marks from whole-program points-to facts.
	FullAA MarksMode = iota
	// TraceAA derives marks from the bug-finder trace alone.
	TraceAA
)

func (m MarksMode) String() string {
	if m == TraceAA {
		return "trace-aa"
	}
	return "full-aa"
}

// Options configures the fixer. The zero value is the paper's default
// configuration (Full-AA marks, hoisting enabled, CLWB flushes).
type Options struct {
	Marks MarksMode
	// DisableHoisting restricts the fixer to intraprocedural fixes; this
	// is the RedisH-intra configuration of §6.3.
	DisableHoisting bool
	// DisableReduction turns off phase-2 fix reduction (same-line flush
	// merging and adjacent-duplicate elision) — the ablation knob for
	// measuring what the reduction phase buys.
	DisableReduction bool
	// FlushKind selects the inserted flush flavour (default CLWB).
	FlushKind ir.FlushKind
	// DebugScores, when non-nil, receives a line per heuristic candidate
	// (fix location and score) for diagnosis.
	DebugScores io.Writer
	// Obs, when non-nil, is the parent span the pipeline records its
	// phase spans, counters, and repair audit trail under. The nil
	// default disables all telemetry at the cost of one pointer check
	// per phase boundary.
	Obs *obs.Span
	// StepLimit bounds every interpreter run the pipeline makes (trace,
	// revalidate, crash validation); 0 keeps the interpreter's default.
	// Exceeding it surfaces as a typed *interp.LimitError.
	StepLimit int64
	// Deadline is the wall-clock bound for those runs (zero = none).
	Deadline time.Time
	// CrashCheck, when non-nil, enables the post-repair crash-schedule
	// validation stage: the repaired module is crash-injected at PM
	// event boundaries and its recovery entries must accept every
	// enumerated post-crash image (see internal/crashsim). Entry, args,
	// limits, and the obs span default to the pipeline's own.
	CrashCheck *crashsim.Options
	// MaxSchedules bounds the interleaving search of the concurrent
	// pipeline (RunAndRepairMT); 0 keeps schedule.DefaultMaxSchedules.
	// Ignored by the single-threaded pipeline.
	MaxSchedules int
	// SummaryStore, when non-nil, backs every static analysis the
	// pipeline runs with cached function summaries and alias
	// constraints, so repeated jobs over the same source family — and
	// StaticRepair's own before/after double analysis — replay instead
	// of recompute. Results are byte-identical either way.
	SummaryStore *static.Store
}

// FixKind classifies an applied fix.
type FixKind int

// The fix kinds.
const (
	FixIntraFlush FixKind = iota
	FixIntraFence
	FixIntraFlushFence
	FixInterproc
)

func (k FixKind) String() string {
	switch k {
	case FixIntraFlush:
		return "intraprocedural-flush"
	case FixIntraFence:
		return "intraprocedural-fence"
	case FixIntraFlushFence:
		return "intraprocedural-flush+fence"
	case FixInterproc:
		return "interprocedural"
	}
	return fmt.Sprintf("fixkind(%d)", int(k))
}

// Interprocedural reports whether the fix used the persistent subprogram
// transformation.
func (k FixKind) Interprocedural() bool { return k == FixInterproc }

// Fix describes one applied bug fix.
type Fix struct {
	Kind   FixKind
	Report *pmcheck.Report
	// AppliedAt is the store site (intraprocedural) or the transformed
	// call site (interprocedural).
	AppliedAt trace.Frame
	// HoistDepth is 0 for intraprocedural fixes, otherwise the number of
	// call-stack levels above the PM modification.
	HoistDepth int
	// Score is the heuristic score of the chosen location.
	Score int
	// Clones lists the persistent subprograms created or reused.
	Clones []string
}

func (f *Fix) String() string {
	s := fmt.Sprintf("%s fix for [%s at %s]", f.Kind, f.Report.Class(), f.Report.Store.Site())
	if f.Kind.Interprocedural() {
		s += fmt.Sprintf(" hoisted %d level(s) to %s", f.HoistDepth, f.AppliedAt)
	}
	return s
}

// Result summarizes a fixing run.
type Result struct {
	Fixes []*Fix
	// Module is the repaired module (the input module, mutated and
	// renumbered).
	Module *ir.Module
	// InstrsBefore / InstrsAfter measure code-size impact (§6.4).
	InstrsBefore int
	InstrsAfter  int
	// ClonesCreated counts persistent subprograms created (reuse does not
	// recount, §4.2.4).
	ClonesCreated int
	// ReducedFixes counts insertions elided by fix reduction (phase 2).
	ReducedFixes int
	// MarksName records the marking strategy used.
	MarksName string
}

// InterprocFixes returns how many fixes were interprocedural.
func (r *Result) InterprocFixes() int {
	n := 0
	for _, f := range r.Fixes {
		if f.Kind.Interprocedural() {
			n++
		}
	}
	return n
}

// Fixer is the Hippocrates engine bound to one module and trace.
type Fixer struct {
	opts  Options
	mod   *ir.Module
	an    *alias.Analysis
	marks *alias.Marks
	index map[string]map[int]*ir.Instr

	clones      map[*ir.Func]*ir.Func
	needsWork   map[*ir.Func]int // 0 unknown, 1 visiting, 2 yes, 3 no
	transSites  map[*ir.Instr]*ir.Func
	escapeCache map[*ir.Instr]bool

	// sp is the telemetry parent span (nil when disabled); cur is the
	// provenance of the plan currently being applied, consumed by the
	// low-level insertion helpers when they write audit entries.
	sp  *obs.Span
	cur *auditCtx

	result *Result
}

// auditCtx is the provenance attached to every audit entry an applying
// plan generates: the originating report and the planner's decision.
type auditCtx struct {
	report   *pmcheck.Report
	decision string
	why      string
	score    int
	depth    int
}

// audit writes one audit-trail entry for an action at instruction in,
// stamped with the current plan's provenance.
func (fx *Fixer) audit(action, mechanism string, in *ir.Instr) {
	if fx.sp == nil {
		return
	}
	fx.auditSite(action, mechanism, siteOf(in))
}

// auditSite is audit with an explicit site string (for actions — like
// cloning a whole function — that have no single instruction).
func (fx *Fixer) auditSite(action, mechanism, site string) {
	if fx.sp == nil {
		return
	}
	e := obs.AuditEntry{Action: action, Mechanism: mechanism, Site: site}
	if c := fx.cur; c != nil {
		e.ReportSite = c.report.Store.Site().String()
		e.ReportClass = c.report.Class().String()
		e.Decision = c.decision
		e.Why = c.why
		e.Score = c.score
		e.HoistDepth = c.depth
	}
	fx.sp.Audit(e)
}

// siteOf renders an instruction's exact location as
// file:func:block:index, where index is the instruction's position in
// its basic block at the time of the call.
func siteOf(in *ir.Instr) string {
	blk := in.Block()
	if blk == nil {
		return "<detached>"
	}
	idx := -1
	for i, x := range blk.Instrs {
		if x == in {
			idx = i
			break
		}
	}
	file := in.Loc.File
	if file == "" {
		file = "<generated>"
	}
	return fmt.Sprintf("%s:@%s:%s:%d", file, blk.Func().Name, blk.Name, idx)
}

// NewFixer analyzes the module and prepares a fixing session. The module
// must be the exact module (same instruction numbering) the trace was
// recorded against; it is mutated in place by Apply.
func NewFixer(mod *ir.Module, tr *trace.Trace, opts Options) *Fixer {
	asp := opts.Obs.Start("alias-analyze")
	var an *alias.Analysis
	if opts.SummaryStore != nil {
		an = alias.AnalyzeWithStore(mod, opts.SummaryStore.Alias())
	} else {
		an = alias.Analyze(mod)
	}
	var marks *alias.Marks
	if opts.Marks == TraceAA {
		marks = alias.TraceMarks(an, mod, tr)
	} else {
		marks = alias.FullMarks(an)
	}
	asp.SetAttr("marks", marks.Name)
	asp.End()
	fx := &Fixer{
		opts:        opts,
		sp:          opts.Obs,
		mod:         mod,
		an:          an,
		marks:       marks,
		index:       make(map[string]map[int]*ir.Instr),
		clones:      make(map[*ir.Func]*ir.Func),
		needsWork:   make(map[*ir.Func]int),
		transSites:  make(map[*ir.Instr]*ir.Func),
		escapeCache: make(map[*ir.Instr]bool),
		result:      &Result{Module: mod, MarksName: marks.Name, InstrsBefore: mod.NumInstrs()},
	}
	for _, f := range mod.Funcs {
		byID := make(map[int]*ir.Instr, f.NumInstrs())
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				byID[in.ID] = in
			}
		}
		fx.index[f.Name] = byID
	}
	return fx
}

// resolve maps a trace frame to its instruction.
func (fx *Fixer) resolve(f trace.Frame) *ir.Instr {
	byID, ok := fx.index[f.Func]
	if !ok {
		return nil
	}
	return byID[f.InstrID]
}

// Repair is the whole-tool entry point: compute and apply fixes for every
// report, verify the module, and renumber. The input module is mutated.
// Internal panics (from the transform or the planner) are recovered into
// a *PanicError, never propagated.
func Repair(mod *ir.Module, tr *trace.Trace, res *pmcheck.Result, opts Options) (out *Result, err error) {
	defer guard("repair", &err)
	fx := NewFixer(mod, tr, opts)
	if err := fx.Apply(res.Reports); err != nil {
		return nil, err
	}
	return fx.Result(), nil
}

// Result returns the accumulated result.
func (fx *Fixer) Result() *Result { return fx.result }

// Apply computes fixes for the reports (phases 1–3) and applies them.
// Reports sharing a store site and bug class are merged first: a hot loop
// that drives one buggy store through many dynamic violations (or several
// call chains needing the same mechanisms) reaches the planner once, with
// the stack union preserved for the hoisting heuristic.
//
// Apply is the all-at-once composition of computePlans / applyPlan /
// finish; the incremental crash-revalidation path in the pipeline drives
// the three pieces itself so it can re-validate between fixes.
func (fx *Fixer) Apply(reports []*pmcheck.Report) error {
	plans, err := fx.computePlans(reports)
	if err != nil {
		return err
	}
	asp := fx.sp.Start("apply")
	defer asp.End()
	for _, p := range plans {
		if err := fx.applyPlan(p); err != nil {
			return err
		}
	}
	return fx.finish(asp)
}

// computePlans runs the planning phases (dedupe, per-report planning,
// deterministic ordering, fix reduction) under a "plan" span and returns
// the plans in application order.
func (fx *Fixer) computePlans(reports []*pmcheck.Report) ([]*plan, error) {
	psp := fx.sp.Start("plan")
	psp.Add("fix.reports.pre_dedupe", int64(len(reports)))
	reports = pmcheck.DedupeByClass(reports)
	psp.Add("fix.reports.post_dedupe", int64(len(reports)))
	plans := make([]*plan, 0, len(reports))
	for _, rep := range reports {
		p, err := fx.plan(rep)
		if err != nil {
			psp.End()
			return nil, err
		}
		plans = append(plans, p)
	}
	// Deterministic application order: by store site.
	sort.SliceStable(plans, func(i, j int) bool {
		a, b := plans[i].report.Key(), plans[j].report.Key()
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.InstrID < b.InstrID
	})
	if !fx.opts.DisableReduction {
		fx.reduceFlushGroups(plans)
	}
	for _, p := range plans {
		if p.hoist != nil {
			psp.Add("fix.plans.hoisted", 1)
		} else {
			psp.Add("fix.plans.intraprocedural", 1)
		}
	}
	psp.End()
	return plans, nil
}

// applyPlan applies one computed plan to the module. Plans hold
// *ir.Instr pointers (not IDs), so interleaving applications with
// renumbering — as incremental revalidation does — is safe.
func (fx *Fixer) applyPlan(p *plan) error { return fx.apply(p) }

// finish renumbers the mutated functions, verifies the repaired module,
// and publishes the fix counters under the apply span.
func (fx *Fixer) finish(asp *obs.Span) error {
	for _, f := range fx.mod.Funcs {
		f.Renumber()
	}
	fx.result.InstrsAfter = fx.mod.NumInstrs()
	if err := ir.Verify(fx.mod); err != nil {
		return fmt.Errorf("hippocrates: fixed module does not verify: %w", err)
	}
	asp.Add("fix.count", int64(len(fx.result.Fixes)))
	for _, f := range fx.result.Fixes {
		asp.Add("fix.by_mechanism."+f.Kind.String(), 1)
	}
	asp.Add("fix.reduced", int64(fx.result.ReducedFixes))
	asp.Add("fix.clones", int64(fx.result.ClonesCreated))
	asp.Add("fix.instrs.added", int64(fx.result.InstrsAfter-fx.result.InstrsBefore))
	asp.Add("alias.queries", fx.an.Queries())
	for _, f := range fx.result.Fixes {
		fx.sp.Observe("fix.hoist_depth", int64(f.HoistDepth))
	}
	return nil
}

// plan is the computed fix for one report before application.
type plan struct {
	report *pmcheck.Report
	// storeIn is the offending instruction (store, ntstore, or a call to
	// builtin memcpy/memset).
	storeIn *ir.Instr
	// hoist selects the interprocedural transformation; nil means
	// intraprocedural.
	hoist *candidate
	score int
	// why is the heuristic's reasoning for the chosen placement, carried
	// into the audit trail.
	why string
	// fenceAfter are the instructions after which a fence must be
	// inserted for fence-only needs.
	fenceAfter []*ir.Instr
	// groupLeader, when set to another plan, says this plan's flush was
	// reduced into the leader's (same static cache line, same block —
	// phase 2 fix reduction). groupFence on a leader requests the shared
	// trailing fence.
	groupLeader *plan
	groupFence  bool
}

func (fx *Fixer) plan(rep *pmcheck.Report) (*plan, error) {
	site := rep.Store.Site()
	in := fx.resolve(site)
	if in == nil {
		return nil, fmt.Errorf("hippocrates: cannot locate %s in module (was the module renumbered after tracing?)", site)
	}
	switch in.Op {
	case ir.OpStore, ir.OpNTStore:
	case ir.OpCall:
		if n := in.Callee.Name; n != "memcpy" && n != "memset" {
			return nil, fmt.Errorf("hippocrates: store event points at call to @%s", n)
		}
	default:
		return nil, fmt.Errorf("hippocrates: store event points at %s", ir.FormatInstr(in))
	}
	p := &plan{report: rep, storeIn: in}

	if rep.NeedFlush {
		best := fx.chooseCandidate(rep)
		p.score = best.score
		p.why = best.why
		if best.depth > 0 {
			p.hoist = &best
		}
	}
	if rep.NeedFence && p.hoist == nil && !rep.NeedFlush {
		p.why = "fence-only bug: fence inserted after the flush site(s) that covered the store"
	}
	if rep.NeedFence && p.hoist == nil {
		// Fence goes after every flush that covered the store (for
		// flush-needing bugs, after the flush we are about to insert —
		// handled at apply time; for fence-only bugs, after the existing
		// flush sites).
		if !rep.NeedFlush {
			for _, fs := range rep.FlushSites {
				fin := fx.resolve(fs)
				if fin == nil {
					return nil, fmt.Errorf("hippocrates: cannot locate flush site %s", fs)
				}
				p.fenceAfter = append(p.fenceAfter, fin)
			}
			if len(p.fenceAfter) == 0 {
				// Defensive: fence directly after the store.
				p.fenceAfter = append(p.fenceAfter, in)
			}
		}
	}
	return p, nil
}
