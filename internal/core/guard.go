package core

import (
	"fmt"
	"runtime"
)

// PanicError is a panic recovered at a pipeline boundary: the interpreter
// or the transform hit an internal invariant (unknown operand kind,
// un-insertable fix site, ...) on input it was never meant to see. The
// pipeline converts these into errors so no caller — the CLI, the
// shadow repair in pmcheck, the crash-validation engine — ever crashes
// the process over a bad program.
type PanicError struct {
	// Phase names the pipeline entry point that panicked.
	Phase string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at the panic site.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("hippocrates: internal panic in %s: %v", e.Phase, e.Value)
}

// guard converts a panic into a *PanicError in the caller's named return
// slot. Use as: defer guard("repair", &err).
func guard(phase string, errp *error) {
	if r := recover(); r != nil {
		if pe, ok := r.(*PanicError); ok {
			// Already guarded deeper in the pipeline; keep the inner phase.
			*errp = pe
			return
		}
		buf := make([]byte, 32<<10)
		buf = buf[:runtime.Stack(buf, false)]
		*errp = &PanicError{Phase: phase, Value: r, Stack: buf}
	}
}
