package core

import (
	"testing"

	"hippocrates/internal/crashsim"
	"hippocrates/internal/lang"
	"hippocrates/internal/schedule"
)

// mtShowcase is the cross-thread unordered-publish showcase: the worker
// persists nothing it writes, and main's own clwb+sfence of the shared
// line masks the bug under the default round-robin interleaving. An
// interleaving that runs main's flush before the worker's store leaves
// the store pending when main durably publishes the shard's address —
// a crash then recovers a published shard with a torn payload.
const mtShowcase = `
struct shard {
	int stats;
	int val;
	byte pad[48];
};

struct root {
	shard s;
	byte *head;
};

void worker() {
	root *r = (root*) pm_root(sizeof(root));
	r->s.val = 42; // BUG: published by main with no flush or fence here
}

int main() {
	root *r = (root*) pm_root(sizeof(root));
	int t = spawn(worker);
	r->s.stats = r->s.stats + 1;
	clwb((byte*) &r->s.stats);
	sfence();
	join(t);
	r->head = (byte*) &r->s;
	clwb((byte*) &r->head);
	sfence();
	pm_checkpoint();
	return r->s.val;
}

int invariant_check() {
	root *r = (root*) pm_root(sizeof(root));
	if ((int) r->head != 0) {
		shard *s = (shard*) r->head;
		if (s->val != 42) { return 1; }
	}
	return 0;
}

int crash_check(int completed) {
	root *r = (root*) pm_root(sizeof(root));
	if (completed >= 1) {
		if ((int) r->head == 0) { return 2; }
	}
	return invariant_check();
}
`

func TestRunAndRepairMTHealsUnorderedPublish(t *testing.T) {
	mod, err := lang.Compile("mtshowcase.pmc", mtShowcase)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := RunAndRepairMT(mod, "main", Options{CrashCheck: &crashsim.Options{}})
	if err != nil {
		t.Fatalf("RunAndRepairMT: %v", err)
	}
	if res.Before.Clean() {
		t.Fatal("exploration found no bug in the buggy module")
	}
	crossThread := false
	for _, rep := range res.Before.Reports {
		if rep.CrossThread {
			crossThread = true
		}
	}
	if !crossThread {
		t.Error("union verdict lacks a cross-thread publish report")
	}
	if res.Fix == nil || len(res.Fix.Fixes) == 0 {
		t.Fatal("no fixes were applied")
	}
	if !res.Fixed() {
		t.Fatalf("repair did not converge: after=%d reports, %d crash sweeps",
			len(res.After.Reports), len(res.Crash))
	}
	if got, want := len(res.Crash), res.ReExploration.Explored; got != want {
		t.Errorf("crash sweeps cover %d schedules, want %d", got, want)
	}
	for _, c := range res.Crash {
		if !c.Report.Passed() {
			t.Errorf("schedule %s failed crash validation:\n%s", c.ID, c.Report.Summary())
		}
	}
}

func TestBuggyShowcaseFailsCrashUnderSomeSchedule(t *testing.T) {
	mod, err := lang.Compile("mtshowcase.pmc", mtShowcase)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ex, err := schedule.Explore(mod, "main", nil, schedule.Options{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if ex.Runs[0].Buggy() {
		t.Fatal("default schedule should mask the bug")
	}
	bad := ex.FirstBuggy()
	if bad == nil {
		t.Fatal("no explored schedule exposed the bug")
	}
	rep, err := crashsim.Validate(mod, crashsim.Options{Schedule: bad.Choices})
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if rep.Passed() {
		t.Errorf("buggy module under schedule %s should fail a crash image:\n%s",
			bad.ID, rep.Summary())
	}
}
