package core

import (
	"testing"

	"hippocrates/internal/lang"
	"hippocrates/internal/static"
)

// TestStaticRepairRevalidationReusesSummaries: the post-repair
// re-analysis must replay summaries for every function the repair plan
// did not touch, instead of recomputing the module from scratch.
func TestStaticRepairRevalidationReusesSummaries(t *testing.T) {
	const src = `
pm int cell[64];
void put(int *p, int v) {
	*p = v;
	clwb(p);
	sfence();
}
int main() {
	put(&cell[0], 1);
	cell[8] = 9;
	pm_checkpoint();
	return cell[8];
}
`
	m, err := lang.Compile("t.pmc", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := StaticRepair(m, "main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fix == nil || len(res.Fix.Fixes) == 0 {
		t.Fatal("expected the bare store in main to be repaired")
	}
	if !res.After.Clean() {
		t.Fatalf("revalidation not clean:\n%s", res.After.Summary())
	}
	// put was not touched by the repair: its summary (and both functions'
	// alias constraints when bodies are unchanged) must come from the
	// store primed by the Before pass.
	if res.After.Incr.SumHits == 0 {
		t.Errorf("revalidation replayed nothing: incr = %+v", res.After.Incr)
	}
	if res.Before.Incr.SumMisses == 0 {
		t.Errorf("before pass should prime the store: incr = %+v", res.Before.Incr)
	}
}

// TestStaticRepairSharesCallerStore: a caller-provided store must carry
// summaries across whole StaticRepair invocations — the second repair of
// identical source starts fully warm.
func TestStaticRepairSharesCallerStore(t *testing.T) {
	const src = `
pm int cell[64];
int main() {
	cell[0] = 7;
	pm_checkpoint();
	return cell[0];
}
`
	store := static.NewStore(0)
	m1, err := lang.Compile("t.pmc", src)
	if err != nil {
		t.Fatal(err)
	}
	first, err := StaticRepair(m1, "main", Options{SummaryStore: store})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := lang.Compile("t.pmc", src)
	if err != nil {
		t.Fatal(err)
	}
	second, err := StaticRepair(m2, "main", Options{SummaryStore: store})
	if err != nil {
		t.Fatal(err)
	}
	if second.Before.Incr.SumHits == 0 || second.Before.Incr.SumMisses != 0 {
		t.Errorf("second repair should start fully warm: incr = %+v", second.Before.Incr)
	}
	// Do no harm: identical input, identical verdicts either way.
	if first.Before.Summary() != second.Before.Summary() ||
		first.After.Summary() != second.After.Summary() {
		t.Error("warm repair verdicts differ from cold")
	}
	if len(first.Fix.Fixes) != len(second.Fix.Fixes) {
		t.Errorf("fix counts differ: cold %d, warm %d", len(first.Fix.Fixes), len(second.Fix.Fixes))
	}
}
