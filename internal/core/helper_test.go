package core

import (
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/trace"
)

func checkTrace(tr *trace.Trace) *pmcheck.Result { return pmcheck.Check(tr) }
