package core

import (
	"strings"
	"testing"

	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/lang"
)

// compileRepair compiles pmc source and runs the full repair pipeline.
func compileRepair(t *testing.T, src string, opts Options) (*ir.Module, *PipelineResult) {
	t.Helper()
	m, err := lang.Compile("reduce.pmc", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAndRepair(m, "main", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fixed() {
		t.Fatalf("not fixed:\n%s", res.After.Summary())
	}
	return m, res
}

func countOps(m *ir.Module, fn string, op ir.Op) int {
	n := 0
	f := m.Func(fn)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

// TestReductionThroughAllocaChains: four same-line field stores in
// unoptimized (alloca/load) form must be fixed with a single flush — the
// phase-2 reduction seeing through the -O0 load chains.
func TestReductionThroughAllocaChains(t *testing.T) {
	const src = `
struct hdr { int a; int b; int c; int d; };
int main() {
	hdr *h = (hdr*) pm_alloc(sizeof(hdr));
	h->a = 1;
	h->b = 2;
	h->c = 3;
	h->d = 4;
	pm_checkpoint();
	return h->a + h->d;
}`
	m, res := compileRepair(t, src, Options{})
	if got := countOps(m, "main", ir.OpFlush); got != 1 {
		t.Errorf("flushes in main = %d, want 1 (grouped)", got)
	}
	if res.Fix.ReducedFixes < 3 {
		t.Errorf("reduced fixes = %d, want >= 3", res.Fix.ReducedFixes)
	}
}

// TestReductionSplitsAtCalls: a call between same-line stores may reach a
// durability point, so the group must not span it.
func TestReductionSplitsAtCalls(t *testing.T) {
	const src = `
struct hdr { int a; int b; };
void maybe_crash() {
	pm_checkpoint();
}
int main() {
	hdr *h = (hdr*) pm_alloc(sizeof(hdr));
	h->a = 1;
	maybe_crash();
	h->b = 2;
	pm_checkpoint();
	return h->a + h->b;
}`
	m, _ := compileRepair(t, src, Options{})
	// One flush per store: merging across maybe_crash() would leave h->a
	// volatile at the checkpoint inside it.
	if got := countOps(m, "main", ir.OpFlush); got != 2 {
		t.Errorf("flushes in main = %d, want 2 (split at the call)", got)
	}
}

// TestReductionRespectsDistinctLines: stores to different cache lines
// never share a flush.
func TestReductionRespectsDistinctLines(t *testing.T) {
	const src = `
struct wide { int a; byte pad[56]; int b; };
int main() {
	wide *w = (wide*) pm_alloc(sizeof(wide));
	w->a = 1;
	w->b = 2;
	pm_checkpoint();
	return w->a + w->b;
}`
	m, _ := compileRepair(t, src, Options{})
	if got := countOps(m, "main", ir.OpFlush); got != 2 {
		t.Errorf("flushes in main = %d, want 2 (different lines)", got)
	}
}

// TestEscapingSlotBlocksReduction: when a local's address escapes, the
// load-chain walk must give up and each store keeps its own flush.
func TestEscapingSlotBlocksReduction(t *testing.T) {
	const src = `
struct hdr { int a; int b; };
void reseat(byte **slot) {
	*slot = *slot; // the helper may retarget the pointer
}
int main() {
	hdr *h = (hdr*) pm_alloc(sizeof(hdr));
	reseat((byte**) &h);
	h->a = 1;
	h->b = 2;
	pm_checkpoint();
	return h->a + h->b;
}`
	m, _ := compileRepair(t, src, Options{})
	if got := countOps(m, "main", ir.OpFlush); got != 2 {
		t.Errorf("flushes in main = %d, want 2 (escaping slot blocks grouping)", got)
	}
}

// TestCloneParamStoresStayPerStore: inside a persistent subprogram whose
// stores go through a parameter pointer, grouping must NOT fire — a
// parameter has unknown alignment, so "same line" is unprovable and each
// store keeps its own flush (soundness over thrift).
func TestCloneParamStoresStayPerStore(t *testing.T) {
	const src = `
struct rec { int a; int b; int c; };
void fill(rec *r, int v) {
	r->a = v;
	r->b = v + 1;
	r->c = v + 2;
}
int main() {
	rec *vol = (rec*) malloc(sizeof(rec));
	for (int i = 0; i < 8; i++) { fill(vol, i); }
	rec *p = (rec*) pm_alloc(sizeof(rec));
	fill(p, 7);
	sfence();
	pm_checkpoint();
	return p->a + p->c + vol->b;
}`
	m, res := compileRepair(t, src, Options{})
	clone := m.Func("fill__pm")
	if clone == nil {
		t.Fatalf("expected a persistent subprogram; fixes: %v", res.Fix.Fixes)
	}
	if got := countOps(m, "fill__pm", ir.OpFlush); got != 3 {
		t.Errorf("flushes in fill__pm = %d, want 3 (param alignment unknown)", got)
	}
	if got := countOps(m, "fill", ir.OpFlush); got != 0 {
		t.Errorf("original fill gained %d flushes", got)
	}
}

// TestCloneGroupingWithLocalAllocation: when the transformed subprogram
// allocates the object itself, its line-aligned root is visible and the
// clone-side grouping merges the header flushes.
func TestCloneGroupingWithLocalAllocation(t *testing.T) {
	const src = `
struct rec { int a; int b; int c; };
byte *sink;
void make(int *out, int v) {
	rec *r = (rec*) pm_alloc(sizeof(rec));
	r->a = v;
	r->b = v + 1;
	r->c = v + 2;
	sink = (byte*) r;
	*out = r->a;
}
int main() {
	int *vol = (int*) malloc(64);
	for (int i = 0; i < 8; i++) { make(vol, i); }
	int *res = (int*) pm_alloc(64);
	make(res, 7);
	sfence();
	pm_checkpoint();
	return *res + vol[0];
}`
	m, res := compileRepair(t, src, Options{})
	clone := m.Func("make__pm")
	if clone == nil {
		// The heuristic may keep the fixes intraprocedural in make; the
		// plan-level grouping applies the same way there.
		if got := countOps(m, "make", ir.OpFlush); got > 2 {
			t.Errorf("flushes in make = %d, want the rec header grouped", got)
		}
		_ = res
		return
	}
	// The three rec-header stores share one flush; *out keeps its own.
	if got := countOps(m, "make__pm", ir.OpFlush); got > 2 {
		t.Errorf("flushes in make__pm = %d, want the rec header grouped (<= 2)", got)
	}
}

// TestModifiesPMThroughRecursion: the transitive PM-writer analysis must
// terminate and stay correct across recursive helpers.
func TestModifiesPMThroughRecursion(t *testing.T) {
	const src = `
void spin(int *p, int n) {
	if (n <= 0) { return; }
	*p = n;
	spin(p, n - 1);
}
int main() {
	int *vol = (int*) malloc(64);
	spin(vol, 5);
	int *pmp = (int*) pm_alloc(64);
	spin(pmp, 5);
	sfence();
	pm_checkpoint();
	return *pmp + *vol;
}`
	m, _ := compileRepair(t, src, Options{})
	// Whatever placement won, the repaired module must be clean and the
	// recursive clone (if created) must reference itself, not explode.
	if clone := m.Func("spin__pm"); clone != nil {
		selfCall := false
		for _, b := range clone.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && in.Callee == clone {
					selfCall = true
				}
			}
		}
		if !selfCall {
			t.Error("recursive clone does not call itself")
		}
	}
	mach, err := interp.New(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// spin repeatedly overwrites the same slot: the final value is 1 in
	// both arrays.
	if ret, err := mach.Run("main"); err != nil || ret != 2 {
		t.Fatalf("repaired run: ret=%d err=%v", ret, err)
	}
}

// TestFixerErrorOnStaleTrace: feeding a trace recorded against different
// instruction numbering must fail loudly, not mis-fix.
func TestFixerErrorOnStaleTrace(t *testing.T) {
	m, err := lang.Compile("stale.pmc", `
pm int cell;
int main() {
	cell = 5;
	pm_checkpoint();
	return cell;
}`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TraceModule(m, "main")
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the trace: point the store frame at a bogus function.
	for _, e := range tr.Events {
		for i := range e.Stack {
			e.Stack[i].Func = "nonexistent"
		}
	}
	res := checkTrace(tr)
	if res.Clean() {
		t.Skip("no reports to resolve")
	}
	if _, err := Repair(m, tr, res, Options{}); err == nil {
		t.Error("stale trace accepted silently")
	} else if !strings.Contains(err.Error(), "cannot locate") {
		t.Errorf("err = %v, want a locate failure", err)
	}
}

// TestDisableReductionAblation: without phase-2 reduction every buggy
// store keeps its own flush, and the program is still repaired correctly —
// reduction is purely a thrift optimization.
func TestDisableReductionAblation(t *testing.T) {
	const src = `
struct hdr { int a; int b; int c; int d; };
int main() {
	hdr *h = (hdr*) pm_alloc(sizeof(hdr));
	h->a = 1;
	h->b = 2;
	h->c = 3;
	h->d = 4;
	pm_checkpoint();
	return h->a + h->d;
}`
	mOff, resOff := compileRepair(t, src, Options{DisableReduction: true})
	if got := countOps(mOff, "main", ir.OpFlush); got != 4 {
		t.Errorf("flushes without reduction = %d, want 4", got)
	}
	if resOff.Fix.ReducedFixes != 0 {
		t.Errorf("reduced fixes = %d with reduction disabled", resOff.Fix.ReducedFixes)
	}
	mOn, _ := compileRepair(t, src, Options{})
	if got := countOps(mOn, "main", ir.OpFlush); got != 1 {
		t.Errorf("flushes with reduction = %d, want 1", got)
	}
}
