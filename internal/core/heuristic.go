package core

import (
	"fmt"

	"hippocrates/internal/ir"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/trace"
)

// candidate is one possible fix location for a missing-flush bug: the
// store itself (depth 0, intraprocedural) or a call site d levels up the
// stack, meaning the persistent subprogram transformation is applied to
// the callee at stack[d-1] and the call at stack[d] is retargeted (§4.3).
type candidate struct {
	depth  int
	frame  trace.Frame
	callIn *ir.Instr // resolved call instruction (depth >= 1)
	score  int
	// why records, in prose, how the heuristic arrived at this placement;
	// it flows into the repair audit trail.
	why string
}

// chooseCandidate runs the hoisting heuristic for one report and returns
// the best fix location: the candidate with the highest PM-alias score,
// ties broken toward the innermost (simplest) location. With hoisting
// disabled it always returns the intraprocedural candidate.
func (fx *Fixer) chooseCandidate(rep *pmcheck.Report) candidate {
	stack := rep.Store.Stack
	intra := candidate{depth: 0, frame: rep.Store.Site(), score: fx.scoreValues(fx.storePointers(rep))}
	fx.debugScore(rep, intra)
	if fx.opts.DisableHoisting {
		intra.why = "hoisting disabled; intraprocedural fix forced"
		return intra
	}
	if len(stack) < 2 {
		intra.why = "store in the entry activation; no call sites to hoist to"
		return intra
	}

	// A call site at depth d transforms the callee whose activation is
	// stack[d-1]; that activation must not be live at any durability
	// point that observed the bug (otherwise the clone's trailing fence
	// would execute only after I). liveLimit is the maximum depth whose
	// callee frame is certainly dead at every checkpoint.
	maxShared := 0
	for _, ck := range rep.Checkpoints {
		if k := sharedActivations(stack, ck.Stack); k > maxShared {
			maxShared = k
		}
	}
	maxDepth := len(stack) - maxShared
	if d := commonStackDepth(rep.Stacks, stack); d < maxDepth {
		maxDepth = d
	}

	best := intra
	stop := ""
	for d := 1; d <= maxDepth && d < len(stack); d++ {
		frame := stack[d]
		callIn := fx.resolve(frame)
		if callIn == nil || callIn.Op != ir.OpCall || callIn.Callee.Name != stack[d-1].Func {
			// The stack does not resolve to a call chain in this module
			// (e.g. renamed functions); stop hoisting here.
			stop = fmt.Sprintf("call chain unresolvable at depth %d", d)
			break
		}
		var ptrArgs []ir.Value
		for _, a := range callIn.Args {
			if ir.IsPtr(a.Type()) {
				ptrArgs = append(ptrArgs, a)
			}
		}
		if len(ptrArgs) == 0 {
			// §4.3: argument-less call sites and all their parents score
			// −∞ — the callee reaches PM through globals or allocates it
			// directly, so hoisting buys nothing.
			stop = fmt.Sprintf("call site at depth %d passes no pointers (scores -inf upward)", d)
			break
		}
		c := candidate{depth: d, frame: frame, callIn: callIn, score: fx.scoreValues(ptrArgs)}
		fx.debugScore(rep, c)
		if c.score > best.score {
			best = c
		}
	}
	if best.depth == 0 {
		best.why = fmt.Sprintf("no call site outscored the store (intra score %d)", intra.score)
		if stop != "" {
			best.why += "; " + stop
		} else if maxDepth < len(stack)-1 {
			best.why += fmt.Sprintf("; hoisting capped at depth %d by checkpoint liveness / stack divergence", maxDepth)
		}
	} else {
		best.why = fmt.Sprintf("call site at depth %d scored %d > store-site %d", best.depth, best.score, intra.score)
	}
	return best
}

// debugScore reports one candidate to the DebugScores writer.
func (fx *Fixer) debugScore(rep *pmcheck.Report, c candidate) {
	if fx.opts.DebugScores == nil {
		return
	}
	fmt.Fprintf(fx.opts.DebugScores, "%s candidate for [%s]: depth=%d at %s score=%d\n",
		fx.marks.Name, rep.Store.Site(), c.depth, c.frame, c.score)
}

// storePointers returns the pointer value(s) whose aliasing decides the
// intraprocedural score: the store's address operand, or the destination
// of a builtin memcpy/memset.
func (fx *Fixer) storePointers(rep *pmcheck.Report) []ir.Value {
	in := fx.resolve(rep.Store.Site())
	switch in.Op {
	case ir.OpStore, ir.OpNTStore:
		return []ir.Value{in.StorePtr()}
	case ir.OpCall:
		return []ir.Value{in.Args[0]}
	}
	return nil
}

// scoreValues sums, over the given pointers, the number of PM-marked
// aliases minus the number of non-PM-marked aliases (§4.3).
func (fx *Fixer) scoreValues(ptrs []ir.Value) int {
	score := 0
	for _, v := range ptrs {
		for _, p := range fx.an.Pointers() {
			if !fx.an.MayAlias(p, v) {
				continue
			}
			if fx.marks.PM(p) {
				score++
			}
			if fx.marks.NonPM(p) {
				score--
			}
		}
	}
	return score
}

// sharedActivations estimates how many outermost frames of the store's
// stack are the same activation as in the checkpoint's stack: the frames
// with identical (function, call-site) pairs, plus one more if the next
// frames are in the same function (that activation simply moved on from
// the call to the durability point). An empty checkpoint stack (the
// implicit end-of-program durability point) shares nothing.
func sharedActivations(storeStack, ckptStack []trace.Frame) int {
	rs := reversed(storeStack)
	rc := reversed(ckptStack)
	k := 0
	for k < len(rs) && k < len(rc) && rs[k].Func == rc[k].Func && rs[k].InstrID == rc[k].InstrID {
		k++
	}
	if k < len(rs) && k < len(rc) && rs[k].Func == rc[k].Func {
		k++
	}
	return k
}

// commonStackDepth returns the largest depth d such that every observed
// stack agrees with the representative on frames 1..d — the transformation
// clones the exact call chain, so every buggy path must share it.
func commonStackDepth(stacks [][]trace.Frame, rep []trace.Frame) int {
	max := len(rep) - 1
	for _, s := range stacks {
		d := 0
		for d+1 < len(s) && d+1 < len(rep) &&
			s[d+1].Func == rep[d+1].Func && s[d+1].InstrID == rep[d+1].InstrID {
			d++
		}
		if len(s) != len(rep) || d+1 != len(s) {
			// Diverging or different-length stacks: hoisting above the
			// divergence point would leave the other paths unfixed.
			if d < max {
				max = d
			}
		}
	}
	return max
}

func reversed(fs []trace.Frame) []trace.Frame {
	out := make([]trace.Frame, len(fs))
	for i, f := range fs {
		out[len(fs)-1-i] = f
	}
	return out
}
