package core

import (
	"hippocrates/internal/ir"
	"hippocrates/internal/pmem"
)

// reduceFlushGroups implements the paper's phase-2 fix reduction (§4.3):
// fixes that would introduce flushes F1(X) and F2(X) covering the same
// cache line are merged into one. Two planned intraprocedural flushes are
// merged when their stores provably hit the same line (same line-aligned
// root object, same static line index) and sit in the same basic block —
// the merged flush goes after the last store of the group, which still
// satisfies X → F(X) → M → I for every member, and one shared fence
// follows it if any member needs one.
func (fx *Fixer) reduceFlushGroups(plans []*plan) {
	type key struct {
		blk  *ir.Block
		root ir.Value
		line int64
	}
	groups := make(map[key][]*plan)
	for _, p := range plans {
		if p.hoist != nil || !p.report.NeedFlush {
			continue
		}
		if p.storeIn.Op != ir.OpStore && p.storeIn.Op != ir.OpNTStore {
			continue
		}
		root, line, ok := fx.staticLine(p.storeIn.StorePtr(), p.storeIn.StoreTy.Size(), p.storeIn)
		if !ok {
			continue
		}
		k := key{blk: p.storeIn.Block(), root: root, line: line}
		groups[k] = append(groups[k], p)
	}
	for k, group := range groups {
		// Several plans can share one store instruction (the same site
		// reached through different call chains); group at the store
		// level, then apply the outcome to every plan of each store.
		plansOf := make(map[*ir.Instr][]*plan)
		for _, p := range group {
			plansOf[p.storeIn] = append(plansOf[p.storeIn], p)
		}
		if len(plansOf) < 2 {
			continue
		}
		// A call between two members may reach a durability point that
		// must observe the earlier member durable, so a group only spans
		// a call-free run of its block.
		for _, run := range splitRunsAtCalls(k.blk, plansOf) {
			if len(run) < 2 {
				continue
			}
			leaderStore := run[len(run)-1] // last store of the run
			leader := plansOf[leaderStore][0]
			anyFence := false
			for _, st := range run {
				for _, p := range plansOf[st] {
					anyFence = anyFence || p.report.NeedFence
					if st != leaderStore {
						p.groupLeader = leader
					}
				}
			}
			leader.groupFence = anyFence
		}
	}
}

// splitRunsAtCalls walks the block once and collects maximal runs of
// member stores uninterrupted by call instructions.
func splitRunsAtCalls(blk *ir.Block, members map[*ir.Instr][]*plan) [][]*ir.Instr {
	var runs [][]*ir.Instr
	var cur []*ir.Instr
	for _, in := range blk.Instrs {
		if _, ok := members[in]; ok {
			cur = append(cur, in)
			continue
		}
		if in.Op == ir.OpCall && len(cur) > 0 {
			runs = append(runs, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		runs = append(runs, cur)
	}
	return runs
}

// staticLine resolves a store address to (root object, cache-line index)
// when the offset is statically known and the root is a line-aligned PM
// allocation (PM globals and pm_alloc/pm_root results are line-aligned on
// the simulated machine, as PMDK allocations are on real hardware). It
// fails when the store could cross the line.
//
// Unoptimized lowering routes every variable access through an alloca
// slot, so the walk sees through loads of non-escaping slots by finding
// the preceding store to the slot in the same block (use is the
// instruction the address flows into, fixing the scan position).
func (fx *Fixer) staticLine(ptr ir.Value, size int64, use *ir.Instr) (ir.Value, int64, bool) {
	offset := int64(0)
	v := ptr
	_ = use // the use position anchors documentation; loads scan their own block
	for depth := 0; depth < 32; depth++ {
		switch x := v.(type) {
		case *ir.Global:
			if !x.PM {
				return nil, 0, false
			}
			if offset/pmem.LineSize != (offset+size-1)/pmem.LineSize {
				return nil, 0, false // crosses a line boundary
			}
			return x, offset / pmem.LineSize, true
		case *ir.Instr:
			switch x.Op {
			case ir.OpPtrAdd:
				idx, ok := x.Args[1].(*ir.Const)
				if !ok {
					return nil, 0, false
				}
				offset += idx.Val*x.Scale + x.Disp
				v = x.Args[0]
			case ir.OpCall:
				if n := x.Callee.Name; n != "pm_alloc" && n != "pm_root" {
					return nil, 0, false
				}
				if offset/pmem.LineSize != (offset+size-1)/pmem.LineSize {
					return nil, 0, false
				}
				return x, offset / pmem.LineSize, true
			case ir.OpLoad:
				slot, ok := x.Args[0].(*ir.Instr)
				if !ok || slot.Op != ir.OpAlloca || fx.slotEscapes(slot) {
					return nil, 0, false
				}
				def := reachingSlotStore(slot, x)
				if def == nil {
					return nil, 0, false
				}
				v = def.StoreVal()
			default:
				return nil, 0, false
			}
		default:
			return nil, 0, false
		}
	}
	return nil, 0, false
}

// slotEscapes reports whether an alloca's address is used anywhere other
// than as the direct target of loads and stores — if it escapes, stores
// through other names could redefine it and the backward scan would be
// unsound.
func (fx *Fixer) slotEscapes(slot *ir.Instr) bool {
	if esc, ok := fx.escapeCache[slot]; ok {
		return esc
	}
	esc := false
	fn := slot.Block().Func()
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a != slot {
					continue
				}
				switch {
				case in.Op == ir.OpLoad && i == 0:
				case (in.Op == ir.OpStore || in.Op == ir.OpNTStore) && i == 1:
				default:
					esc = true
				}
			}
		}
	}
	fx.escapeCache[slot] = esc
	return esc
}

// reachingSlotStore finds the store to slot whose value the load observes:
// the nearest store preceding the load in the load's own block. A store
// that precedes the load in the same block is the reaching definition on
// every execution of that block (slots are non-escaping, so no other name
// can redefine them). Returns nil when the definition lies outside the
// block (then the value may differ across paths and the walk gives up).
func reachingSlotStore(slot, load *ir.Instr) *ir.Instr {
	blk := load.Block()
	idx := -1
	for i, in := range blk.Instrs {
		if in == load {
			idx = i
			break
		}
	}
	for i := idx - 1; i >= 0; i-- {
		in := blk.Instrs[i]
		if (in.Op == ir.OpStore || in.Op == ir.OpNTStore) && in.StorePtr() == slot {
			return in
		}
	}
	return nil
}
