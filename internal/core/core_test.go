package core

import (
	"strings"
	"testing"

	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/pmem"
	"hippocrates/internal/trace"
)

func newModule(name string) *ir.Module {
	m := ir.NewModule(name)
	for _, d := range interp.StdDecls() {
		m.AddFunc(d)
	}
	return m
}

// runModule executes and returns (stdout, simulated ns, violations).
func runModule(t *testing.T, m *ir.Module, entry string, args ...uint64) (string, float64, int) {
	t.Helper()
	var out strings.Builder
	mach, err := interp.New(m, interp.Options{Stdout: &out})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run(entry, args...); err != nil {
		t.Fatalf("run @%s: %v", entry, err)
	}
	return out.String(), mach.SimTime(), len(mach.Violations)
}

// buildListing1 is the paper's Listing 1: an intraprocedural
// missing-flush&fence bug (store, then a durability point, in one
// function).
func buildListing1() *ir.Module {
	m := newModule("listing1")
	m.AddGlobal(&ir.Global{Name: "oid", Elem: ir.I64, PM: true})
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	b.SetLoc(ir.Loc{File: "listing1.pmc", Line: 2})
	b.Store(ir.I64, ir.ConstInt(0), m.Global("oid"))
	b.SetLoc(ir.Loc{File: "listing1.pmc", Line: 6})
	b.Call(m.Func("pm_checkpoint"))
	b.Ret(nil)
	f.Renumber()
	return m
}

// buildListing3 is the paper's Listing 3: store + CLWB but no fence.
func buildListing3() *ir.Module {
	m := newModule("listing3")
	m.AddGlobal(&ir.Global{Name: "cell", Elem: ir.I64, PM: true})
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	g := m.Global("cell")
	b.Store(ir.I64, ir.ConstInt(7), g)
	b.Flush(ir.CLWB, g)
	b.Call(m.Func("pm_checkpoint"))
	b.Ret(nil)
	f.Renumber()
	return m
}

// buildListing4 is the paper's Listing 4: store + SFENCE but no flush.
func buildListing4() *ir.Module {
	m := newModule("listing4")
	m.AddGlobal(&ir.Global{Name: "cell", Elem: ir.I64, PM: true})
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	b.Store(ir.I64, ir.ConstInt(7), m.Global("cell"))
	b.Fence(ir.SFENCE)
	b.Call(m.Func("pm_checkpoint"))
	b.Ret(nil)
	f.Renumber()
	return m
}

// buildListing5 is the paper's Listing 5/6 interprocedural scenario:
//
//	update(addr, i, val): addr[i] = val            (no flush)
//	modify(addr):         update(addr, 0, 1)
//	main():               v := malloc; p := pm_alloc
//	                      loop N: modify(v)
//	                      modify(p); sfence; checkpoint
//
// The durability bug is a missing flush (a fence exists); the optimal fix
// hoists to main's modify(p) call site.
func buildListing5(loopN int64) *ir.Module {
	m := newModule("listing5")
	update := ir.NewFunc("update", ir.Void,
		&ir.Param{Name: "addr", Ty: ir.Ptr},
		&ir.Param{Name: "i", Ty: ir.I64},
		&ir.Param{Name: "val", Ty: ir.I64})
	m.AddFunc(update)
	{
		b := ir.NewBuilder(update)
		b.SetLoc(ir.Loc{File: "listing5.pmc", Line: 2})
		slot := b.PtrAdd(update.Params[0], update.Params[1], 8, 0)
		b.Store(ir.I64, update.Params[2], slot)
		b.Ret(nil)
		update.Renumber()
	}
	modify := ir.NewFunc("modify", ir.Void, &ir.Param{Name: "addr", Ty: ir.Ptr})
	m.AddFunc(modify)
	{
		b := ir.NewBuilder(modify)
		b.SetLoc(ir.Loc{File: "listing5.pmc", Line: 5})
		b.Call(update, modify.Params[0], ir.ConstInt(0), ir.ConstInt(1))
		b.Ret(nil)
		modify.Renumber()
	}
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	b.SetLoc(ir.Loc{File: "listing5.pmc", Line: 17})
	v := b.Call(m.Func("malloc"), ir.ConstInt(8))
	p := b.Call(m.Func("pm_alloc"), ir.ConstInt(8))
	i := b.Alloca(ir.I64)
	b.Store(ir.I64, ir.ConstInt(0), i)
	cond := b.NewBlock("cond")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Jmp(cond)
	b.SetBlock(cond)
	iv := b.Load(ir.I64, i)
	c := b.Cmp(ir.OpLt, iv, ir.ConstInt(loopN))
	b.Br(c, body, exit)
	b.SetBlock(body)
	b.SetLoc(ir.Loc{File: "listing5.pmc", Line: 18})
	b.Call(modify, v)
	b.Store(ir.I64, b.Bin(ir.OpAdd, ir.I64, iv, ir.ConstInt(1)), i)
	b.Jmp(cond)
	b.SetBlock(exit)
	b.SetLoc(ir.Loc{File: "listing5.pmc", Line: 19})
	b.Call(modify, p)
	b.SetLoc(ir.Loc{File: "listing5.pmc", Line: 22})
	b.Fence(ir.SFENCE)
	b.Call(m.Func("pm_checkpoint"))
	b.Ret(nil)
	f.Renumber()
	return m
}

func TestFixListing1FlushFence(t *testing.T) {
	m := buildListing1()
	res, err := RunAndRepair(m, "main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Before.Clean() {
		t.Fatal("expected a bug before repair")
	}
	if !res.Fixed() {
		t.Fatalf("not fixed: %s", res.After.Summary())
	}
	if len(res.Fix.Fixes) != 1 || res.Fix.Fixes[0].Kind != FixIntraFlushFence {
		t.Fatalf("fixes = %+v", res.Fix.Fixes)
	}
	// The inserted flush must target the store's own operand and the
	// fence must follow it.
	f := m.Func("main")
	ops := []ir.Op{}
	for _, in := range f.Entry().Instrs {
		ops = append(ops, in.Op)
	}
	text := ir.Print(m)
	if !strings.Contains(text, "flush clwb, ptr @oid") {
		t.Errorf("missing flush of @oid:\n%s", text)
	}
	if !strings.Contains(text, "fence sfence") {
		t.Errorf("missing fence:\n%s", text)
	}
	wantPrefix := []ir.Op{ir.OpStore, ir.OpFlush, ir.OpFence}
	for i, op := range wantPrefix {
		if ops[i] != op {
			t.Fatalf("instruction order = %v, want prefix %v", ops, wantPrefix)
		}
	}
}

func TestFixListing3MissingFence(t *testing.T) {
	m := buildListing3()
	res, err := RunAndRepair(m, "main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fixed() {
		t.Fatalf("not fixed: %s", res.After.Summary())
	}
	if len(res.Fix.Fixes) != 1 || res.Fix.Fixes[0].Kind != FixIntraFence {
		t.Fatalf("fixes = %+v", res.Fix.Fixes[0])
	}
	// The fence must be inserted after the existing flush.
	instrs := m.Func("main").Entry().Instrs
	for i, in := range instrs {
		if in.Op == ir.OpFlush {
			if instrs[i+1].Op != ir.OpFence {
				t.Error("fence not placed after the existing flush")
			}
		}
	}
}

func TestFixListing4MissingFlush(t *testing.T) {
	m := buildListing4()
	res, err := RunAndRepair(m, "main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fixed() {
		t.Fatalf("not fixed: %s", res.After.Summary())
	}
	if len(res.Fix.Fixes) != 1 || res.Fix.Fixes[0].Kind != FixIntraFlush {
		t.Fatalf("fixes = %+v", res.Fix.Fixes[0])
	}
	// Flush inserted directly after the store, before the existing fence.
	instrs := m.Func("main").Entry().Instrs
	if instrs[0].Op != ir.OpStore || instrs[1].Op != ir.OpFlush || instrs[2].Op != ir.OpFence {
		t.Errorf("instruction order wrong: %s", ir.Print(m))
	}
}

func TestFixListing5Interprocedural(t *testing.T) {
	m := buildListing5(10)
	res, err := RunAndRepair(m, "main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fixed() {
		t.Fatalf("not fixed: %s", res.After.Summary())
	}
	if len(res.Fix.Fixes) != 1 {
		t.Fatalf("fixes = %d", len(res.Fix.Fixes))
	}
	fix := res.Fix.Fixes[0]
	if fix.Kind != FixInterproc {
		t.Fatalf("fix kind = %v, want interprocedural", fix.Kind)
	}
	if fix.HoistDepth != 2 {
		t.Errorf("hoist depth = %d, want 2 (call site in main)", fix.HoistDepth)
	}
	// The persistent subprograms must exist and be used only on the PM
	// path; the originals stay flush-free for the volatile loop.
	if m.Func("modify__pm") == nil || m.Func("update__pm") == nil {
		t.Fatalf("persistent subprograms missing:\n%s", ir.Print(m))
	}
	for _, b := range m.Func("update").Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpFlush {
				t.Error("original update gained a flush; volatile path would pay for it")
			}
		}
	}
	foundFlush := false
	for _, b := range m.Func("update__pm").Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpFlush {
				foundFlush = true
			}
		}
	}
	if !foundFlush {
		t.Error("update__pm lacks the inserted flush")
	}
	if res.Fix.ClonesCreated != 2 {
		t.Errorf("clones = %d, want 2 (modify__pm, update__pm)", res.Fix.ClonesCreated)
	}
}

func TestHoistingDisabledGivesIntraproceduralFix(t *testing.T) {
	m := buildListing5(10)
	res, err := RunAndRepair(m, "main", Options{DisableHoisting: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fixed() {
		t.Fatalf("not fixed: %s", res.After.Summary())
	}
	if res.Fix.Fixes[0].Kind != FixIntraFlush {
		t.Fatalf("fix kind = %v, want intraprocedural flush", res.Fix.Fixes[0].Kind)
	}
	if m.Func("modify__pm") != nil {
		t.Error("hoisting disabled but clone created")
	}
}

func TestInterproceduralFixIsFaster(t *testing.T) {
	// The Fig. 4 mechanism: with a hot volatile loop, the hoisted fix
	// must be dramatically cheaper than the intraprocedural one, because
	// the intraprocedural flush executes on every volatile iteration.
	const n = 1000
	mIntra := buildListing5(n)
	if _, err := RunAndRepair(mIntra, "main", Options{DisableHoisting: true}); err != nil {
		t.Fatal(err)
	}
	mFull := buildListing5(n)
	if _, err := RunAndRepair(mFull, "main", Options{}); err != nil {
		t.Fatal(err)
	}
	_, tIntra, _ := runModule(t, mIntra, "main")
	_, tFull, _ := runModule(t, mFull, "main")
	if tFull >= tIntra {
		t.Fatalf("hoisted fix (%.0f ns) not faster than intraprocedural (%.0f ns)", tFull, tIntra)
	}
	if ratio := tIntra / tFull; ratio < 2 {
		t.Errorf("speedup = %.2fx, want >= 2x for a hot volatile loop", ratio)
	}
}

func TestFullAAAndTraceAAProduceSameFixes(t *testing.T) {
	// §6.1: both marking strategies must produce identical fixed binaries.
	for _, build := range []func() *ir.Module{
		buildListing1, buildListing3, buildListing4,
		func() *ir.Module { return buildListing5(10) },
	} {
		mFull := build()
		if _, err := RunAndRepair(mFull, "main", Options{Marks: FullAA}); err != nil {
			t.Fatal(err)
		}
		mTrace := build()
		if _, err := RunAndRepair(mTrace, "main", Options{Marks: TraceAA}); err != nil {
			t.Fatal(err)
		}
		if ir.Print(mFull) != ir.Print(mTrace) {
			t.Errorf("%s: full-aa and trace-aa fixes differ:\n%s\n----\n%s",
				mFull.Name, ir.Print(mFull), ir.Print(mTrace))
		}
	}
}

func TestDoNoHarmOutputsUnchanged(t *testing.T) {
	// Fixed programs must produce the same observable output as the
	// original (fixes only add memory orderings).
	build := func() *ir.Module {
		m := buildListing5(25)
		// Add output so there is something observable: print the PM cell.
		f := m.Func("main")
		exit := f.Blocks[len(f.Blocks)-1]
		// main's %t1 is the pm_alloc result; find it.
		var pmPtr ir.Value
		for _, in := range f.Entry().Instrs {
			if in.Op == ir.OpCall && in.Callee.Name == "pm_alloc" {
				pmPtr = in
			}
		}
		ld := &ir.Instr{Op: ir.OpLoad, Name: "final", Ty: ir.I64, Args: []ir.Value{pmPtr}}
		exit.InsertBefore(exit.Terminator(), ld)
		pr := &ir.Instr{Op: ir.OpCall, Ty: ir.Void, Callee: m.Func("print_int"), Args: []ir.Value{ld}}
		exit.InsertBefore(exit.Terminator(), pr)
		f.Renumber()
		return m
	}
	orig := build()
	outOrig, _, violOrig := runModule(t, orig, "main")
	if violOrig == 0 {
		t.Fatal("original should violate durability")
	}
	fixed := build()
	if _, err := RunAndRepair(fixed, "main", Options{}); err != nil {
		t.Fatal(err)
	}
	outFixed, _, violFixed := runModule(t, fixed, "main")
	if outFixed != outOrig {
		t.Errorf("output changed: %q -> %q", outOrig, outFixed)
	}
	if violFixed != 0 {
		t.Errorf("fixed program still violates: %d", violFixed)
	}
}

func TestCloneReuseAcrossFixes(t *testing.T) {
	// Two distinct buggy stores reached through the same helper: the
	// persistent subprogram is created once and reused (§4.2.4).
	m := newModule("reuse")
	setk := ir.NewFunc("setk", ir.Void, &ir.Param{Name: "p", Ty: ir.Ptr}, &ir.Param{Name: "v", Ty: ir.I64})
	m.AddFunc(setk)
	{
		b := ir.NewBuilder(setk)
		b.Store(ir.I64, setk.Params[1], setk.Params[0])
		b.Ret(nil)
		setk.Renumber()
	}
	mkA := ir.NewFunc("storeA", ir.Void, &ir.Param{Name: "p", Ty: ir.Ptr})
	m.AddFunc(mkA)
	{
		b := ir.NewBuilder(mkA)
		b.Call(setk, mkA.Params[0], ir.ConstInt(1))
		b.Ret(nil)
		mkA.Renumber()
	}
	mkB := ir.NewFunc("storeB", ir.Void, &ir.Param{Name: "p", Ty: ir.Ptr})
	m.AddFunc(mkB)
	{
		b := ir.NewBuilder(mkB)
		slot := b.PtrAdd(mkB.Params[0], ir.ConstInt(1), 8, 0)
		b.Call(setk, slot, ir.ConstInt(2))
		b.Ret(nil)
		mkB.Renumber()
	}
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	p := b.Call(m.Func("pm_alloc"), ir.ConstInt(16))
	// A volatile user of setk so the hoist is worthwhile.
	v := b.Call(m.Func("malloc"), ir.ConstInt(16))
	b.Call(setk, v, ir.ConstInt(9))
	b.Call(mkA, p)
	b.Call(mkB, p)
	b.Fence(ir.SFENCE)
	b.Call(m.Func("pm_checkpoint"))
	b.Ret(nil)
	f.Renumber()

	res, err := RunAndRepair(m, "main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fixed() {
		t.Fatalf("not fixed: %s", res.After.Summary())
	}
	if got := res.Fix.InterprocFixes(); got != 2 {
		t.Fatalf("interprocedural fixes = %d, want 2 (fixes: %v)", got, res.Fix.Fixes)
	}
	// setk__pm must exist exactly once (reused by both clones).
	if m.Func("setk__pm") == nil {
		t.Fatal("setk__pm missing")
	}
	if m.Func("setk__pm2") != nil {
		t.Error("setk cloned twice; reuse broken")
	}
}

func TestMemcpyBulkFix(t *testing.T) {
	// A builtin memcpy into PM produces multi-chunk store events; the fix
	// must flush the whole range (flush_range) and fence.
	m := newModule("bulk")
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	p := b.Call(m.Func("pm_alloc"), ir.ConstInt(256))
	h := b.Call(m.Func("malloc"), ir.ConstInt(256))
	b.Call(m.Func("memset"), h, ir.ConstInt(7), ir.ConstInt(200))
	b.Call(m.Func("memcpy"), p, h, ir.ConstInt(200))
	b.Call(m.Func("pm_checkpoint"))
	b.Ret(nil)
	f.Renumber()
	res, err := RunAndRepair(m, "main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fixed() {
		t.Fatalf("not fixed: %s", res.After.Summary())
	}
	if !strings.Contains(ir.Print(m), "call @flush_range") {
		t.Errorf("expected a flush_range fix:\n%s", ir.Print(m))
	}
}

func TestFixReductionMergesDuplicates(t *testing.T) {
	// Two stores to the same line in sequence, both buggy: the second
	// store's flush makes the first's fence adjacent — reduction must
	// elide at least one duplicate mechanism rather than stacking
	// flush/fence pairs blindly. We assert on the count of inserted
	// instructions: 2 stores need at most 2 flushes + 1 shared fence...
	// but intraprocedural fixes are per-store, so what reduction
	// guarantees here is: no *adjacent duplicate* fences.
	m := newModule("reduce")
	m.AddGlobal(&ir.Global{Name: "a", Elem: ir.Array(ir.I64, 2), PM: true})
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	g := m.Global("a")
	b.Store(ir.I64, ir.ConstInt(1), g)
	p2 := b.PtrAdd(g, ir.ConstInt(1), 8, 0)
	b.Store(ir.I64, ir.ConstInt(2), p2)
	b.Call(m.Func("pm_checkpoint"))
	b.Ret(nil)
	f.Renumber()
	res, err := RunAndRepair(m, "main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fixed() {
		t.Fatalf("not fixed: %s", res.After.Summary())
	}
	// No two adjacent fences anywhere.
	for _, fn := range m.Funcs {
		for _, blk := range fn.Blocks {
			for i := 1; i < len(blk.Instrs); i++ {
				if blk.Instrs[i].Op == ir.OpFence && blk.Instrs[i-1].Op == ir.OpFence {
					t.Errorf("adjacent duplicate fences in @%s:\n%s", fn.Name, ir.Print(m))
				}
			}
		}
	}
	if res.Fix.ReducedFixes == 0 {
		t.Error("expected at least one reduced fix")
	}
}

func TestRepairIsIdempotentOnCleanModule(t *testing.T) {
	m := buildListing1()
	if _, err := RunAndRepair(m, "main", Options{}); err != nil {
		t.Fatal(err)
	}
	before := ir.Print(m)
	res, err := RunAndRepair(m, "main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fix != nil {
		t.Error("clean module should need no fixes")
	}
	if ir.Print(m) != before {
		t.Error("repairing a clean module changed it")
	}
}

func TestInstrsAddedAccounting(t *testing.T) {
	m := buildListing5(10)
	res, err := RunAndRepair(m, "main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	fx := res.Fix
	if fx.InstrsAfter <= fx.InstrsBefore {
		t.Errorf("instr counts: before=%d after=%d", fx.InstrsBefore, fx.InstrsAfter)
	}
	if fx.MarksName != "full-aa" {
		t.Errorf("marks = %q", fx.MarksName)
	}
}

func TestSharedActivations(t *testing.T) {
	fr := func(fn string, id int) trace.Frame { return trace.Frame{Func: fn, InstrID: id} }
	cases := []struct {
		name        string
		store, ckpt []trace.Frame
		want        int
	}{
		{
			name:  "checkpoint in same function as store",
			store: []trace.Frame{fr("foo", 2)},
			ckpt:  []trace.Frame{fr("foo", 7)},
			want:  1,
		},
		{
			name:  "listing5",
			store: []trace.Frame{fr("update", 1), fr("modify", 0), fr("foo", 19)},
			ckpt:  []trace.Frame{fr("foo", 23)},
			want:  1,
		},
		{
			name:  "checkpoint deeper in a sibling",
			store: []trace.Frame{fr("update", 1), fr("modify", 0), fr("foo", 19)},
			ckpt:  []trace.Frame{fr("sync", 3), fr("foo", 23)},
			want:  1,
		},
		{
			name:  "checkpoint inside modify",
			store: []trace.Frame{fr("update", 1), fr("modify", 0), fr("foo", 19)},
			ckpt:  []trace.Frame{fr("modify", 4), fr("foo", 19)},
			want:  2,
		},
		{
			name:  "end of program",
			store: []trace.Frame{fr("update", 1), fr("main", 3)},
			ckpt:  nil,
			want:  0,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := sharedActivations(c.store, c.ckpt); got != c.want {
				t.Errorf("sharedActivations = %d, want %d", got, c.want)
			}
		})
	}
}

func TestCheckpointInsideCalleeLimitsHoist(t *testing.T) {
	// The durability point lives inside modify (after the update call):
	// transforming modify would put its fence after the checkpoint, so
	// the heuristic must not hoist past update.
	m := newModule("limit")
	update := ir.NewFunc("update", ir.Void, &ir.Param{Name: "p", Ty: ir.Ptr})
	m.AddFunc(update)
	{
		b := ir.NewBuilder(update)
		b.Store(ir.I64, ir.ConstInt(1), update.Params[0])
		b.Ret(nil)
		update.Renumber()
	}
	modify := ir.NewFunc("modify", ir.Void, &ir.Param{Name: "p", Ty: ir.Ptr})
	m.AddFunc(modify)
	{
		b := ir.NewBuilder(modify)
		b.Call(update, modify.Params[0])
		b.Fence(ir.SFENCE)
		b.Call(m.Func("pm_checkpoint"))
		b.Ret(nil)
		modify.Renumber()
	}
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	p := b.Call(m.Func("pm_alloc"), ir.ConstInt(8))
	b.Call(modify, p)
	b.Ret(nil)
	f.Renumber()

	res, err := RunAndRepair(m, "main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fixed() {
		t.Fatalf("not fixed: %s", res.After.Summary())
	}
	fix := res.Fix.Fixes[0]
	if fix.Kind.Interprocedural() && fix.HoistDepth > 1 {
		t.Errorf("hoisted past the durability point: %+v", fix)
	}
	if m.Func("modify__pm") != nil {
		t.Error("modify was transformed although the durability point is inside it")
	}
}

func TestArgumentlessCallSiteStopsHoisting(t *testing.T) {
	// §4.3: call sites that pass no (pointer) arguments score −∞, as do
	// their parents — PM is reached via a global.
	m := newModule("noargs")
	m.AddGlobal(&ir.Global{Name: "cell", Elem: ir.I64, PM: true})
	writer := ir.NewFunc("writer", ir.Void)
	m.AddFunc(writer)
	{
		b := ir.NewBuilder(writer)
		b.Store(ir.I64, ir.ConstInt(3), m.Global("cell"))
		b.Ret(nil)
		writer.Renumber()
	}
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	b.Call(writer)
	b.Call(m.Func("pm_checkpoint"))
	b.Ret(nil)
	f.Renumber()
	res, err := RunAndRepair(m, "main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fixed() {
		t.Fatalf("not fixed: %s", res.After.Summary())
	}
	if res.Fix.Fixes[0].Kind.Interprocedural() {
		t.Error("hoisted through an argument-less call site")
	}
}

func TestDurableBytesNeverShrink(t *testing.T) {
	// Property: the fixed program's durable image contains everything
	// the original's did (fixes only add durability).
	build := func() *ir.Module { return buildListing5(5) }
	orig := build()
	machO, err := interp.New(orig, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := machO.Run("main"); err != nil {
		t.Fatal(err)
	}
	fixed := build()
	if _, err := RunAndRepair(fixed, "main", Options{}); err != nil {
		t.Fatal(err)
	}
	machF, err := interp.New(fixed, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := machF.Run("main"); err != nil {
		t.Fatal(err)
	}
	if machF.Track.DurableStores < machO.Track.DurableStores {
		t.Errorf("durable stores shrank: %d -> %d", machO.Track.DurableStores, machF.Track.DurableStores)
	}
	if machF.Track.NumPending() != 0 {
		t.Errorf("fixed program left %d pending stores", machF.Track.NumPending())
	}
}

func TestFixStringsAndKinds(t *testing.T) {
	m := buildListing5(10)
	res, err := RunAndRepair(m, "main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Fix.Fixes[0].String()
	if !strings.Contains(s, "interprocedural") || !strings.Contains(s, "hoisted") {
		t.Errorf("fix string = %q", s)
	}
	for k := FixIntraFlush; k <= FixInterproc; k++ {
		if strings.Contains(k.String(), "fixkind") {
			t.Errorf("missing name for kind %d", int(k))
		}
	}
	_ = pmem.LineSize // keep import stable if assertions change
	_ = pmcheck.SiteKey{}
}

// buildHotLoop stores to one PM location and hits a durability point on
// every iteration: one static bug observed N times dynamically.
func buildHotLoop(n int64) *ir.Module {
	m := newModule("hotloop")
	m.AddGlobal(&ir.Global{Name: "cell", Elem: ir.I64, PM: true})
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	b.SetLoc(ir.Loc{File: "hotloop.pmc", Line: 2})
	i := b.Alloca(ir.I64)
	b.Store(ir.I64, ir.ConstInt(0), i)
	cond := b.NewBlock("cond")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Jmp(cond)
	b.SetBlock(cond)
	iv := b.Load(ir.I64, i)
	b.Br(b.Cmp(ir.OpLt, iv, ir.ConstInt(n)), body, exit)
	b.SetBlock(body)
	b.SetLoc(ir.Loc{File: "hotloop.pmc", Line: 4})
	b.Store(ir.I64, iv, m.Global("cell"))
	b.Call(m.Func("pm_checkpoint"))
	b.Store(ir.I64, b.Bin(ir.OpAdd, ir.I64, iv, ir.ConstInt(1)), i)
	b.Jmp(cond)
	b.SetBlock(exit)
	b.Ret(nil)
	f.Renumber()
	return m
}

// TestHotLoopDuplicateReportsFixedOnce is the dedupe regression: a store in
// a hot loop violates at every iteration, and feeding the fixer several
// detector passes worth of reports (as report-combining drivers do) must
// still produce exactly one fix — not one flush/fence pair per observation.
func TestHotLoopDuplicateReportsFixedOnce(t *testing.T) {
	const iters = 10
	m := buildHotLoop(iters)
	tr, err := TraceModule(m, "main")
	if err != nil {
		t.Fatal(err)
	}
	res := checkTrace(tr)
	// iters violations at the in-loop checkpoint plus one more for the
	// final store at the end-of-program durability point.
	if len(res.Reports) != 1 || res.Reports[0].Occurrences != iters+1 {
		t.Fatalf("reports = %+v, want one with %d occurrences", res.Reports, iters+1)
	}

	// Three detector passes over the same trace: 3x duplicate reports.
	combined := append(append(checkTrace(tr).Reports, checkTrace(tr).Reports...), res.Reports...)
	fx := NewFixer(m, tr, Options{})
	if err := fx.Apply(combined); err != nil {
		t.Fatal(err)
	}
	if got := len(fx.Result().Fixes); got != 1 {
		t.Fatalf("fixes = %d, want 1 (duplicates merged before planning)", got)
	}

	tr2, err := TraceModule(m, "main")
	if err != nil {
		t.Fatal(err)
	}
	after := checkTrace(tr2)
	if !after.Clean() {
		t.Fatalf("not clean after repair:\n%s", after.Summary())
	}
	// One flush and one fence per iteration suffice: duplicate-driven
	// double insertion would show up as redundant-flush diagnostics.
	if n := len(after.RedundantFlushes); n != 0 {
		t.Errorf("redundant flushes after repair = %d, want 0", n)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}
