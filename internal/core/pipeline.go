package core

import (
	"fmt"

	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/obs"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/trace"
)

// PipelineResult is the outcome of the full trace→detect→fix→re-check
// workflow (Fig. 2 of the paper, Steps 1–4 plus validation).
type PipelineResult struct {
	// Trace is the bug-finder trace of the original module.
	Trace *trace.Trace
	// Before / After are the detector results pre- and post-repair.
	Before *pmcheck.Result
	After  *pmcheck.Result
	// Fix describes the applied fixes (nil when Before was already clean).
	Fix *Result
}

// Fixed reports whether the module is clean after repair.
func (p *PipelineResult) Fixed() bool { return p.After.Clean() }

// TraceModule executes mod's entry function on the simulator and returns
// the recorded PM trace. As the paper does for trace generation (§5.1),
// the module is used as-is, unoptimized.
func TraceModule(mod *ir.Module, entry string, args ...uint64) (*trace.Trace, error) {
	return TraceModuleObs(nil, mod, entry, args...)
}

// TraceModuleObs is TraceModule under a "trace" child span of sp: the
// interpreter's run statistics (steps, per-opcode counts) and the trace's
// PM-event breakdown are published into the span's recorder. A nil span
// records nothing.
func TraceModuleObs(sp *obs.Span, mod *ir.Module, entry string, args ...uint64) (*trace.Trace, error) {
	tsp := sp.Start("trace")
	defer tsp.End()
	tsp.SetAttr("entry", entry)
	tr := &trace.Trace{Program: mod.Name}
	mach, err := interp.New(mod, interp.Options{Trace: tr})
	if err != nil {
		return nil, err
	}
	_, err = mach.Run(entry, args...)
	mach.RecordObs(tsp)
	tsp.Add("trace.events", int64(len(tr.Events)))
	for k, n := range tr.KindCounts() {
		tsp.Add("trace.event."+k, int64(n))
	}
	if err != nil {
		return nil, fmt.Errorf("tracing @%s: %w", entry, err)
	}
	return tr, nil
}

// RunAndRepair runs the whole Hippocrates workflow on mod, mutating it in
// place: trace the entry point, detect durability bugs, compute and apply
// fixes, then re-trace and re-check to validate that the bugs are gone
// (the validation step of §6.1). When opts.Obs is set, the phases record
// spans under it: trace, detect, plan, apply, and a revalidate span whose
// children are the second trace and detect.
func RunAndRepair(mod *ir.Module, entry string, opts Options, args ...uint64) (*PipelineResult, error) {
	sp := opts.Obs
	tr, err := TraceModuleObs(sp, mod, entry, args...)
	if err != nil {
		return nil, err
	}
	res := pmcheck.CheckObs(sp, tr)
	out := &PipelineResult{Trace: tr, Before: res}
	if res.Clean() {
		out.After = res
		return out, nil
	}
	fixRes, err := Repair(mod, tr, res, opts)
	if err != nil {
		return nil, err
	}
	out.Fix = fixRes
	rsp := sp.Start("revalidate")
	defer rsp.End()
	tr2, err := TraceModuleObs(rsp, mod, entry, args...)
	if err != nil {
		return nil, fmt.Errorf("re-tracing repaired module: %w", err)
	}
	out.After = pmcheck.CheckObs(rsp, tr2)
	rsp.Add("revalidate.remaining_reports", int64(len(out.After.Reports)))
	return out, nil
}
