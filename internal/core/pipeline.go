package core

import (
	"fmt"

	"hippocrates/internal/crashsim"
	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/obs"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/trace"
)

// PipelineResult is the outcome of the full trace→detect→fix→re-check
// workflow (Fig. 2 of the paper, Steps 1–4 plus validation).
type PipelineResult struct {
	// Trace is the bug-finder trace of the original module.
	Trace *trace.Trace
	// Before / After are the detector results pre- and post-repair.
	Before *pmcheck.Result
	After  *pmcheck.Result
	// Fix describes the applied fixes (nil when Before was already clean).
	Fix *Result
	// Crash is the crash-schedule validation report, when
	// Options.CrashCheck requested the stage (nil otherwise).
	Crash *crashsim.Report
	// CrashRounds holds the intermediate crash-validation reports of the
	// incremental path: with CrashCheck set and more than one fix to
	// apply, round i re-validates the module right after fix i+1 landed,
	// reusing the shared verdict cache (so each round mostly re-judges
	// only the images the new fix changed). Intermediate rounds commonly
	// fail — later fixes have not been applied yet — which is why Fixed
	// consults only the final report in Crash.
	CrashRounds []*crashsim.Report
}

// Fixed reports whether the module is clean after repair: no detector
// reports remain, and — when crash validation ran — every enumerated
// crash schedule recovered cleanly.
func (p *PipelineResult) Fixed() bool {
	return p.After.Clean() && (p.Crash == nil || p.Crash.Passed())
}

// TraceModule executes mod's entry function on the simulator and returns
// the recorded PM trace. As the paper does for trace generation (§5.1),
// the module is used as-is, unoptimized.
func TraceModule(mod *ir.Module, entry string, args ...uint64) (*trace.Trace, error) {
	return TraceModuleObs(nil, mod, entry, args...)
}

// TraceModuleObs is TraceModule under a "trace" child span of sp: the
// interpreter's run statistics (steps, per-opcode counts) and the trace's
// PM-event breakdown are published into the span's recorder. A nil span
// records nothing.
func TraceModuleObs(sp *obs.Span, mod *ir.Module, entry string, args ...uint64) (*trace.Trace, error) {
	return TraceModuleOpts(sp, mod, entry, Options{}, args...)
}

// TraceModuleOpts is TraceModuleObs with the pipeline's resource
// limits applied to the interpreter run. Interpreter panics are
// recovered into a *PanicError.
func TraceModuleOpts(sp *obs.Span, mod *ir.Module, entry string, opts Options, args ...uint64) (out *trace.Trace, err error) {
	defer guard("trace", &err)
	tsp := sp.Start("trace")
	defer tsp.End()
	tsp.SetAttr("entry", entry)
	tr := &trace.Trace{Program: mod.Name}
	mach, err := interp.New(mod, interp.Options{
		Trace: tr, StepLimit: opts.StepLimit, Deadline: opts.Deadline,
	})
	if err != nil {
		return nil, err
	}
	_, err = mach.Run(entry, args...)
	mach.RecordObs(tsp)
	tsp.Add("trace.events", int64(len(tr.Events)))
	for k, n := range tr.KindCounts() {
		if n > 0 {
			tsp.Add("trace.event."+trace.Kind(k).String(), int64(n))
		}
	}
	if err != nil {
		return nil, fmt.Errorf("tracing @%s: %w", entry, err)
	}
	return tr, nil
}

// RunAndRepair runs the whole Hippocrates workflow on mod, mutating it in
// place: trace the entry point, detect durability bugs, compute and apply
// fixes, then re-trace and re-check to validate that the bugs are gone
// (the validation step of §6.1). With Options.CrashCheck set, a fourth
// stage crash-injects the repaired module at every sampled PM event
// boundary and runs its recovery entries on each feasible post-crash
// image (the report lands in PipelineResult.Crash; schedule failures are
// data, not an error). When opts.Obs is set, the phases record spans
// under it: trace, detect, plan, apply, a revalidate span whose children
// are the second trace and detect, and crashsim. Panics from any phase
// are recovered into a *PanicError: the pipeline returns errors, it
// never takes the process down.
func RunAndRepair(mod *ir.Module, entry string, opts Options, args ...uint64) (out *PipelineResult, err error) {
	defer guard("pipeline", &err)
	sp := opts.Obs
	copts := crashOpts(opts, entry, args)
	tr, err := TraceModuleOpts(sp, mod, entry, opts, args...)
	if err != nil {
		return nil, err
	}
	res := pmcheck.CheckObs(sp, tr)
	out = &PipelineResult{Trace: tr, Before: res}
	if res.Clean() {
		out.After = res
		return crashValidate(mod, copts, out)
	}
	if copts != nil {
		err = repairIncremental(mod, tr, res, opts, copts, out)
	} else {
		out.Fix, err = Repair(mod, tr, res, opts)
	}
	if err != nil {
		return nil, err
	}
	rsp := sp.Start("revalidate")
	tr2, err := TraceModuleOpts(rsp, mod, entry, opts, args...)
	if err != nil {
		rsp.End()
		return nil, fmt.Errorf("re-tracing repaired module: %w", err)
	}
	out.After = pmcheck.CheckObs(rsp, tr2)
	rsp.Add("revalidate.remaining_reports", int64(len(out.After.Reports)))
	rsp.End()
	return crashValidate(mod, copts, out)
}

// crashOpts resolves Options.CrashCheck against the pipeline's own
// entry, args, limits, and obs span (nil when the stage is off), and
// gives the run a verdict cache so the incremental rounds and the final
// validation share memoized recovery outcomes.
func crashOpts(opts Options, entry string, args []uint64) *crashsim.Options {
	if opts.CrashCheck == nil {
		return nil
	}
	copts := *opts.CrashCheck
	if copts.Entry == "" {
		copts.Entry = entry
	}
	if copts.Args == nil {
		copts.Args = args
	}
	if copts.Obs == nil {
		copts.Obs = opts.Obs
	}
	if copts.StepLimit == 0 {
		copts.StepLimit = opts.StepLimit
	}
	if copts.Deadline.IsZero() {
		copts.Deadline = opts.Deadline
	}
	if copts.Cache == nil && !copts.NoDedup {
		copts.Cache = crashsim.NewVerdictCache()
	}
	return &copts
}

// repairIncremental is Repair interleaved with crash validation: after
// each applied fix but the last, the partially repaired module is
// crash-validated with the shared verdict cache, so the caller gets a
// per-fix account of how the schedule failures shrink. (The last fix's
// validation is the pipeline's final crashValidate stage.) The cache is
// reset whenever a fix mutates code reachable from a recovery entry —
// memoized verdicts describe recovery code that no longer exists then —
// and survives otherwise: image hashes are content-addressed, so the
// workload-side changes each fix makes simply hash to new keys.
func repairIncremental(mod *ir.Module, tr *trace.Trace, res *pmcheck.Result, opts Options,
	copts *crashsim.Options, out *PipelineResult) (err error) {
	defer guard("repair", &err)
	fx := NewFixer(mod, tr, opts)
	plans, err := fx.computePlans(res.Reports)
	if err != nil {
		return err
	}
	asp := fx.sp.Start("apply")
	defer asp.End()
	reach := recoveryReachable(mod, copts)
	for i, p := range plans {
		if err := fx.applyPlan(p); err != nil {
			return err
		}
		if copts.Cache != nil && planTouchesRecovery(p, reach) {
			copts.Cache.Reset()
			// The fix may have made new code (clones) recovery-reachable.
			reach = recoveryReachable(mod, copts)
		}
		if i == len(plans)-1 {
			break
		}
		round := *copts
		round.Log = nil // a partially repaired module legitimately fails
		rep, rerr := crashsim.Validate(mod, round)
		if rerr != nil {
			return fmt.Errorf("crash validation after fix %d: %w", i+1, rerr)
		}
		out.CrashRounds = append(out.CrashRounds, rep)
	}
	if err := fx.finish(asp); err != nil {
		return err
	}
	out.Fix = fx.Result()
	return nil
}

// recoveryReachable returns the names of the functions reachable (via
// static calls) from the configured recovery entries — the code whose
// mutation invalidates cached verdicts.
func recoveryReachable(mod *ir.Module, copts *crashsim.Options) map[string]bool {
	inv, rec := copts.Invariant, copts.Recovery
	if inv == "" {
		inv = "invariant_check" // Validate's own defaults
	}
	if rec == "" {
		rec = "crash_check"
	}
	entries := make([]string, 0, 2)
	for _, name := range []string{inv, rec} {
		if name != "-" {
			entries = append(entries, name)
		}
	}
	reach := make(map[string]bool)
	var walk func(name string)
	walk = func(name string) {
		if reach[name] {
			return
		}
		fn := mod.Func(name)
		if fn == nil || fn.IsDecl() {
			return
		}
		reach[name] = true
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if (in.Op == ir.OpCall || in.Op == ir.OpSpawn) && in.Callee != nil {
					walk(in.Callee.Name)
				}
			}
		}
	}
	for _, e := range entries {
		walk(e)
	}
	return reach
}

// planTouchesRecovery reports whether applying p mutated any function in
// reach (the recovery-reachable set computed before the application).
func planTouchesRecovery(p *plan, reach map[string]bool) bool {
	touched := func(in *ir.Instr) bool {
		if in == nil {
			return false
		}
		blk := in.Block()
		return blk != nil && reach[blk.Func().Name]
	}
	if touched(p.storeIn) {
		return true
	}
	for _, fin := range p.fenceAfter {
		if touched(fin) {
			return true
		}
	}
	if p.hoist != nil && touched(p.hoist.callIn) {
		return true
	}
	if p.groupLeader != nil && touched(p.groupLeader.storeIn) {
		return true
	}
	return false
}

// crashValidate runs the optional crash-schedule validation stage on the
// (possibly just repaired) module and attaches the report.
func crashValidate(mod *ir.Module, copts *crashsim.Options, out *PipelineResult) (*PipelineResult, error) {
	if copts == nil {
		return out, nil
	}
	rep, err := crashsim.Validate(mod, *copts)
	if err != nil {
		return nil, fmt.Errorf("crash validation: %w", err)
	}
	out.Crash = rep
	return out, nil
}
