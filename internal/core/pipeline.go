package core

import (
	"fmt"

	"hippocrates/internal/crashsim"
	"hippocrates/internal/interp"
	"hippocrates/internal/ir"
	"hippocrates/internal/obs"
	"hippocrates/internal/pmcheck"
	"hippocrates/internal/trace"
)

// PipelineResult is the outcome of the full trace→detect→fix→re-check
// workflow (Fig. 2 of the paper, Steps 1–4 plus validation).
type PipelineResult struct {
	// Trace is the bug-finder trace of the original module.
	Trace *trace.Trace
	// Before / After are the detector results pre- and post-repair.
	Before *pmcheck.Result
	After  *pmcheck.Result
	// Fix describes the applied fixes (nil when Before was already clean).
	Fix *Result
	// Crash is the crash-schedule validation report, when
	// Options.CrashCheck requested the stage (nil otherwise).
	Crash *crashsim.Report
}

// Fixed reports whether the module is clean after repair: no detector
// reports remain, and — when crash validation ran — every enumerated
// crash schedule recovered cleanly.
func (p *PipelineResult) Fixed() bool {
	return p.After.Clean() && (p.Crash == nil || p.Crash.Passed())
}

// TraceModule executes mod's entry function on the simulator and returns
// the recorded PM trace. As the paper does for trace generation (§5.1),
// the module is used as-is, unoptimized.
func TraceModule(mod *ir.Module, entry string, args ...uint64) (*trace.Trace, error) {
	return TraceModuleObs(nil, mod, entry, args...)
}

// TraceModuleObs is TraceModule under a "trace" child span of sp: the
// interpreter's run statistics (steps, per-opcode counts) and the trace's
// PM-event breakdown are published into the span's recorder. A nil span
// records nothing.
func TraceModuleObs(sp *obs.Span, mod *ir.Module, entry string, args ...uint64) (*trace.Trace, error) {
	return TraceModuleOpts(sp, mod, entry, Options{}, args...)
}

// TraceModuleOpts is TraceModuleObs with the pipeline's resource
// limits applied to the interpreter run. Interpreter panics are
// recovered into a *PanicError.
func TraceModuleOpts(sp *obs.Span, mod *ir.Module, entry string, opts Options, args ...uint64) (out *trace.Trace, err error) {
	defer guard("trace", &err)
	tsp := sp.Start("trace")
	defer tsp.End()
	tsp.SetAttr("entry", entry)
	tr := &trace.Trace{Program: mod.Name}
	mach, err := interp.New(mod, interp.Options{
		Trace: tr, StepLimit: opts.StepLimit, Deadline: opts.Deadline,
	})
	if err != nil {
		return nil, err
	}
	_, err = mach.Run(entry, args...)
	mach.RecordObs(tsp)
	tsp.Add("trace.events", int64(len(tr.Events)))
	for k, n := range tr.KindCounts() {
		tsp.Add("trace.event."+k, int64(n))
	}
	if err != nil {
		return nil, fmt.Errorf("tracing @%s: %w", entry, err)
	}
	return tr, nil
}

// RunAndRepair runs the whole Hippocrates workflow on mod, mutating it in
// place: trace the entry point, detect durability bugs, compute and apply
// fixes, then re-trace and re-check to validate that the bugs are gone
// (the validation step of §6.1). With Options.CrashCheck set, a fourth
// stage crash-injects the repaired module at every sampled PM event
// boundary and runs its recovery entries on each feasible post-crash
// image (the report lands in PipelineResult.Crash; schedule failures are
// data, not an error). When opts.Obs is set, the phases record spans
// under it: trace, detect, plan, apply, a revalidate span whose children
// are the second trace and detect, and crashsim. Panics from any phase
// are recovered into a *PanicError: the pipeline returns errors, it
// never takes the process down.
func RunAndRepair(mod *ir.Module, entry string, opts Options, args ...uint64) (out *PipelineResult, err error) {
	defer guard("pipeline", &err)
	sp := opts.Obs
	tr, err := TraceModuleOpts(sp, mod, entry, opts, args...)
	if err != nil {
		return nil, err
	}
	res := pmcheck.CheckObs(sp, tr)
	out = &PipelineResult{Trace: tr, Before: res}
	if res.Clean() {
		out.After = res
		return crashValidate(mod, entry, opts, out, args...)
	}
	fixRes, err := Repair(mod, tr, res, opts)
	if err != nil {
		return nil, err
	}
	out.Fix = fixRes
	rsp := sp.Start("revalidate")
	tr2, err := TraceModuleOpts(rsp, mod, entry, opts, args...)
	if err != nil {
		rsp.End()
		return nil, fmt.Errorf("re-tracing repaired module: %w", err)
	}
	out.After = pmcheck.CheckObs(rsp, tr2)
	rsp.Add("revalidate.remaining_reports", int64(len(out.After.Reports)))
	rsp.End()
	return crashValidate(mod, entry, opts, out, args...)
}

// crashValidate runs the optional crash-schedule validation stage on the
// (possibly just repaired) module and attaches the report.
func crashValidate(mod *ir.Module, entry string, opts Options, out *PipelineResult, args ...uint64) (*PipelineResult, error) {
	if opts.CrashCheck == nil {
		return out, nil
	}
	copts := *opts.CrashCheck
	if copts.Entry == "" {
		copts.Entry = entry
	}
	if copts.Args == nil {
		copts.Args = args
	}
	if copts.Obs == nil {
		copts.Obs = opts.Obs
	}
	if copts.StepLimit == 0 {
		copts.StepLimit = opts.StepLimit
	}
	if copts.Deadline.IsZero() {
		copts.Deadline = opts.Deadline
	}
	rep, err := crashsim.Validate(mod, copts)
	if err != nil {
		return nil, fmt.Errorf("crash validation: %w", err)
	}
	out.Crash = rep
	return out, nil
}
