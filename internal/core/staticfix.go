package core

import (
	"fmt"

	"hippocrates/internal/ir"
	"hippocrates/internal/static"
	"hippocrates/internal/trace"
)

// StaticPipelineResult is the outcome of a static-analysis-driven repair.
type StaticPipelineResult struct {
	// Before is the static analysis of the module as given.
	Before *static.Result
	// Fix describes the applied fixes (nil when Before was already clean).
	Fix *Result
	// After re-analyzes the repaired module; a sound fix leaves it clean.
	After *static.Result
}

// StaticRepair runs the repair pipeline with the static persistency
// analysis as the bug source instead of a dynamic trace: analyze the entry,
// convert the reports into the detector's shape, plan and apply fixes, then
// re-analyze to validate. The fixer runs on whole-program alias facts
// (Full-AA): with no trace there is nothing for Trace-AA to refine, so a
// TraceAA request is overridden.
func StaticRepair(mod *ir.Module, entry string, opts Options) (out *StaticPipelineResult, err error) {
	defer guard("static repair", &err)
	sp := opts.Obs
	// Both analysis passes share a summary store — the caller's long-lived
	// one when provided, an ephemeral one otherwise — so the post-repair
	// re-analysis replays every function the repair plan did not touch
	// instead of recomputing the whole module from scratch.
	store := opts.SummaryStore
	if store == nil {
		store = static.NewStore(0)
	}
	sres, err := static.AnalyzeObsStore(mod, entry, store, sp)
	if err != nil {
		return nil, err
	}
	out = &StaticPipelineResult{Before: sres}
	if sres.Clean() {
		out.After = sres
		return out, nil
	}
	opts.Marks = FullAA
	fx := NewFixer(mod, &trace.Trace{Program: mod.Name}, opts)
	if err := fx.Apply(sres.PMCheckReports()); err != nil {
		return nil, fmt.Errorf("static repair: %w", err)
	}
	out.Fix = fx.Result()
	rsp := sp.Start("revalidate")
	defer rsp.End()
	after, err := static.AnalyzeObsStore(mod, entry, store, rsp)
	if err != nil {
		return nil, fmt.Errorf("static repair re-analysis: %w", err)
	}
	out.After = after
	rsp.Add("revalidate.remaining_reports", int64(len(after.Reports)))
	return out, nil
}
