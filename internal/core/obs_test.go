package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"hippocrates/internal/crashsim"
	"hippocrates/internal/lang"
	"hippocrates/internal/obs"
)

// TestParallelRunAndRepairSpanIsolation runs several full pipelines
// concurrently against one shared recorder and checks that explicit span
// parenting keeps each pipeline's tree intact: every span's ancestry
// terminates at the root its own goroutine opened, never at another
// goroutine's, and each subtree records the same phases. Run under
// `go test -race` (make verify does) this also exercises the recorder's
// locking.
func TestParallelRunAndRepairSpanIsolation(t *testing.T) {
	const workers = 8
	rec := obs.New()
	roots := make([]*obs.Span, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each goroutine repairs its own copy of the same buggy
			// module, so the per-root span subtrees must come out
			// identical.
			m := buildListing1()
			root := rec.StartSpan(fmt.Sprintf("pipeline-%d", i))
			roots[i] = root
			res, err := RunAndRepair(m, "main", Options{Obs: root})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			if !res.Fixed() {
				t.Errorf("worker %d: repair incomplete", i)
			}
			root.End()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	verifySpanIsolation(t, rec, roots,
		[]string{"trace", "detect", "alias-analyze", "plan", "apply", "revalidate"})
}

// TestParallelCrashCheckSpanIsolation is the same property with the crash
// validation stage on: two-plus pipelines share one recorder, each runs
// repair AND crashsim (whose probe/capture workers record schedule
// counters and "crashsim" child spans concurrently), and still no span
// may leak into another pipeline's tree. This is the sharing shape
// hippocratesd relies on for its aggregate recorder, proven under -race
// by make verify.
func TestParallelCrashCheckSpanIsolation(t *testing.T) {
	const workers = 8
	rec := obs.New()
	roots := make([]*obs.Span, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := lang.MustCompile("publish.pmc", `
pm int payload;
pm int flag;

int invariant_check() {
	if (payload != 0 && payload != 42) { return 1; }
	if (flag != 0 && flag != 1) { return 2; }
	return 0;
}

int crash_check(int completed) {
	if (completed >= 1) {
		if (payload != 42) { return 1; }
		if (flag != 1) { return 2; }
	}
	return 0;
}

int main() {
	payload = 42; // missing flush
	flag = 1;
	clwb(&flag);
	sfence();
	pm_checkpoint();
	return 0;
}
`)
			root := rec.StartSpan(fmt.Sprintf("pipeline-%d", i))
			roots[i] = root
			res, err := RunAndRepair(m, "main", Options{
				Obs: root,
				CrashCheck: &crashsim.Options{
					MaxPoints: 12,
					MaxImages: 3,
				},
			})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			if !res.Fixed() {
				t.Errorf("worker %d: repair incomplete", i)
			}
			if res.Crash == nil || !res.Crash.Passed() {
				t.Errorf("worker %d: crash validation failed", i)
			}
			root.End()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	verifySpanIsolation(t, rec, roots,
		[]string{"trace", "detect", "plan", "apply", "revalidate", "crashsim"})
}

// verifySpanIsolation checks that every span recorded under rec sits in
// exactly one worker root's subtree, that the identical workloads yielded
// identical subtrees, and that each subtree carries the expected phases.
func verifySpanIsolation(t *testing.T, rec *obs.Recorder, roots []*obs.Span, phases []string) {
	t.Helper()
	spans := rec.Spans()
	byID := make(map[int]*obs.Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	rootSet := make(map[int]bool, len(roots))
	for _, r := range roots {
		rootSet[r.ID] = true
	}
	// Only the per-worker roots may be parentless.
	for _, s := range spans {
		if s.Parent == -1 && !rootSet[s.ID] {
			t.Errorf("orphan root span %q (id %d)", s.Name, s.ID)
		}
	}
	// Collect each root's subtree by walking ancestry, and check every
	// span landed under exactly one worker root.
	subtree := make(map[int][]string)
	for _, s := range spans {
		top := s
		for top.Parent != -1 {
			top = byID[top.Parent]
		}
		if !rootSet[top.ID] {
			t.Fatalf("span %q (id %d) is not under any worker root", s.Name, s.ID)
		}
		if s.ID != top.ID {
			subtree[top.ID] = append(subtree[top.ID], s.Name)
		}
		if s.Dur <= 0 {
			t.Errorf("span %q (id %d) was never ended", s.Name, s.ID)
		}
	}
	// Identical workloads ⇒ identical subtrees. A cross-goroutine parent
	// would surface here as one subtree gaining phases another lost.
	var want string
	for _, r := range roots {
		names := subtree[r.ID]
		sort.Strings(names)
		got := strings.Join(names, ",")
		if want == "" {
			want = got
			for _, phase := range phases {
				if !strings.Contains(","+got+",", ","+phase+",") {
					t.Errorf("subtree missing phase %q: %s", phase, got)
				}
			}
		} else if got != want {
			t.Errorf("subtree under %q diverged:\n got %s\nwant %s", byID[r.ID].Name, got, want)
		}
	}
}
