package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"hippocrates/internal/interp"
	"hippocrates/internal/lang"
	"hippocrates/internal/progen"
)

// TestGuardConvertsPanics: the pipeline guard turns an arbitrary panic
// into a typed *PanicError carrying the phase, and preserves the inner
// phase when a guarded frame re-panics through an outer guard.
func TestGuardConvertsPanics(t *testing.T) {
	inner := func() (err error) {
		defer guard("trace", &err)
		panic("operand kind 37")
	}
	err := inner()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Phase != "trace" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = phase %q, %d stack bytes", pe.Phase, len(pe.Stack))
	}

	outer := func() (err error) {
		defer guard("repair", &err)
		panic(err2panic(inner()))
	}
	err = outer()
	if !errors.As(err, &pe) || pe.Phase != "trace" {
		t.Errorf("nested panic: phase = %v, want the inner phase", err)
	}
}

func err2panic(err error) *PanicError {
	var pe *PanicError
	if !errors.As(err, &pe) {
		panic(fmt.Sprintf("not a PanicError: %v", err))
	}
	return pe
}

// TestRunAndRepairErrorsNotPanics: a module whose entry is missing, a
// module whose workload faults, and a module that trips the step limit
// must all come back as errors from RunAndRepair — never as a process
// panic — so shadow repair and crash validation can survive any input.
func TestRunAndRepairErrorsNotPanics(t *testing.T) {
	// Missing entry.
	mod := lang.MustCompile("t.pmc", `int main() { return 0; }`)
	if _, err := RunAndRepair(mod, "nope", Options{}); err == nil {
		t.Error("missing entry: want error")
	}

	// Faulting workload (null deref).
	bad := lang.MustCompile("t.pmc", `
int main() {
	int *p = (int*) 0;
	return *p;
}
`)
	if _, err := RunAndRepair(bad, "main", Options{}); err == nil {
		t.Error("faulting workload: want error")
	}

	// Infinite loop under a step limit: typed *interp.LimitError.
	spin := lang.MustCompile("t.pmc", `
int main() {
	int x = 0;
	while (x >= 0) { x = 1; }
	return x;
}
`)
	_, err := RunAndRepair(spin, "main", Options{StepLimit: 10_000})
	var le *interp.LimitError
	if !errors.As(err, &le) {
		t.Errorf("step limit: err = %v (%T), want *interp.LimitError", err, err)
	}

	// Same loop under a wall-clock deadline.
	spin2 := lang.MustCompile("t.pmc", `
int main() {
	int x = 0;
	while (x >= 0) { x = 1; }
	return x;
}
`)
	_, err = RunAndRepair(spin2, "main", Options{Deadline: time.Now().Add(50 * time.Millisecond)})
	if !errors.As(err, &le) {
		t.Errorf("deadline: err = %v (%T), want *interp.LimitError", err, err)
	}
}

// TestProgenSweepNeverPanics is the unkillability sweep: RunAndRepair
// over a batch of generated programs, with step limits on, must always
// return (module, error) control flow — any panic fails the test run
// outright. Seeds cover the full generator feature mix.
func TestProgenSweepNeverPanics(t *testing.T) {
	const seeds = 250
	for seed := int64(0); seed < seeds; seed++ {
		mod := progen.Generate(seed, progen.DefaultConfig())
		res, err := RunAndRepair(mod, "main", Options{StepLimit: 5_000_000})
		if err != nil {
			// Errors are acceptable (that is the contract); panics are not,
			// and the test harness would catch those. But a generated
			// program is well-formed by construction, so surface the first
			// few for inspection.
			t.Errorf("seed %d: %v", seed, err)
			if seed > 3 {
				t.FailNow()
			}
			continue
		}
		if res == nil {
			t.Fatalf("seed %d: nil result without error", seed)
		}
	}
}
