package core

import (
	"fmt"

	"hippocrates/internal/ir"
)

// apply executes one plan: either intraprocedural insertions at the store
// (and fence sites), or the persistent subprogram transformation at the
// chosen call site. Fix reduction (§4.3 phase 2) happens here: an
// insertion that would duplicate an adjacent identical flush or fence is
// elided and counted in Result.ReducedFixes.
func (fx *Fixer) apply(p *plan) error {
	rep := p.report
	if p.hoist != nil {
		return fx.applyInterproc(p)
	}
	decision := "intraprocedural"
	if !rep.NeedFlush {
		decision = "fence-only"
	}
	fx.cur = &auditCtx{report: rep, decision: decision, why: p.why, score: p.score}
	fix := &Fix{Report: rep, AppliedAt: rep.Store.Site(), Score: p.score}
	switch {
	case rep.NeedFlush && rep.NeedFence:
		fix.Kind = FixIntraFlushFence
	case rep.NeedFlush:
		fix.Kind = FixIntraFlush
	default:
		fix.Kind = FixIntraFence
	}
	switch {
	case p.groupLeader != nil && p.groupLeader != p:
		// Phase-2 reduction: the group leader's flush covers this line.
		fx.result.ReducedFixes++
		fix.AppliedAt = p.groupLeader.report.Store.Site()
		fx.cur.decision = "reduced"
		fx.cur.why = "same-cache-line flush merged into the group leader's"
		fx.audit("merge-flush", fx.opts.FlushKind.String(), p.groupLeader.storeIn)
	case rep.NeedFlush:
		flushIn := fx.insertFlushAfter(p.storeIn)
		if rep.NeedFence || p.groupFence {
			fx.insertFenceAfter(flushIn)
		}
	}
	for _, fin := range p.fenceAfter {
		fx.insertFenceAfter(fin)
	}
	fx.result.Fixes = append(fx.result.Fixes, fix)
	return nil
}

// insertFlushAfter inserts the flush that makes in's PM modification
// durable: a single cache-line flush of the store's own address operand,
// or a flush_range call for bulk builtin copies. It returns the
// instruction that provides the flush — the newly inserted one, or the
// identical existing flush the insertion was reduced against (a paired
// fence must go after it either way).
func (fx *Fixer) insertFlushAfter(in *ir.Instr) *ir.Instr {
	blk := in.Block()
	switch in.Op {
	case ir.OpStore, ir.OpNTStore:
		ptr := in.StorePtr()
		if next := instrAfter(blk, in); !fx.opts.DisableReduction &&
			next != nil && next.Op == ir.OpFlush && next.Args[0] == ptr {
			fx.result.ReducedFixes++
			fx.audit("elide-flush", next.FlushK.String(), next)
			return next
		}
		fl := &ir.Instr{Op: ir.OpFlush, Ty: ir.Void, FlushK: fx.opts.FlushKind, Args: []ir.Value{ptr}, Loc: in.Loc}
		blk.InsertAfter(in, fl)
		fx.audit("insert-flush", fl.FlushK.String(), fl)
		return fl
	case ir.OpCall:
		// Builtin memcpy/memset: flush the destination range.
		fr := fx.flushRangeFunc()
		dst, n := in.Args[0], in.Args[2]
		if next := instrAfter(blk, in); !fx.opts.DisableReduction &&
			next != nil && next.Op == ir.OpCall && next.Callee == fr &&
			next.Args[0] == dst && next.Args[1] == n {
			fx.result.ReducedFixes++
			fx.audit("elide-flush", "flush_range", next)
			return next
		}
		call := &ir.Instr{Op: ir.OpCall, Ty: ir.Void, Callee: fr, Args: []ir.Value{dst, n}, Loc: in.Loc}
		blk.InsertAfter(in, call)
		fx.audit("insert-flush-range", "flush_range", call)
		return call
	}
	panic("hippocrates: insertFlushAfter on " + in.Op.String())
}

// insertFenceAfter inserts an SFENCE after in unless one is already there.
func (fx *Fixer) insertFenceAfter(in *ir.Instr) *ir.Instr {
	blk := in.Block()
	if next := instrAfter(blk, in); !fx.opts.DisableReduction &&
		next != nil && next.Op == ir.OpFence {
		fx.result.ReducedFixes++
		fx.audit("elide-fence", next.FenceK.String(), next)
		return nil
	}
	fe := &ir.Instr{Op: ir.OpFence, Ty: ir.Void, FenceK: ir.SFENCE, Loc: in.Loc}
	blk.InsertAfter(in, fe)
	fx.audit("insert-fence", fe.FenceK.String(), fe)
	return fe
}

func instrAfter(blk *ir.Block, in *ir.Instr) *ir.Instr {
	for i, x := range blk.Instrs {
		if x == in {
			if i+1 < len(blk.Instrs) {
				return blk.Instrs[i+1]
			}
			return nil
		}
	}
	return nil
}

// flushRangeFunc returns (declaring on demand) the flush_range builtin.
func (fx *Fixer) flushRangeFunc() *ir.Func {
	if f := fx.mod.Func("flush_range"); f != nil {
		return f
	}
	return fx.mod.AddFunc(ir.NewFunc("flush_range", ir.Void,
		&ir.Param{Name: "p", Ty: ir.Ptr}, &ir.Param{Name: "n", Ty: ir.I64}))
}

// applyInterproc performs the persistent subprogram transformation (§4.2.4)
// at the chosen call site: clone the callee (transitively, reusing clones),
// insert a flush after every may-PM store inside the clones, retarget the
// call, and place a single fence after it.
func (fx *Fixer) applyInterproc(p *plan) error {
	callIn := p.hoist.callIn
	fx.cur = &auditCtx{
		report:   p.report,
		decision: fmt.Sprintf("hoisted %d level(s)", p.hoist.depth),
		why:      p.why,
		score:    p.score,
		depth:    p.hoist.depth,
	}
	var clone *ir.Func
	if existing, done := fx.transSites[callIn]; done {
		clone = existing
		fx.audit("reuse-subprogram", clone.Name, callIn)
	} else {
		var err error
		clone, err = fx.persistentClone(callIn.Callee)
		if err != nil {
			return err
		}
		callIn.Callee = clone
		fx.audit("retarget-call", clone.Name, callIn)
		fx.insertFenceAfter(callIn)
		fx.transSites[callIn] = clone
	}
	fx.result.Fixes = append(fx.result.Fixes, &Fix{
		Kind:       FixInterproc,
		Report:     p.report,
		AppliedAt:  p.hoist.frame,
		HoistDepth: p.hoist.depth,
		Score:      p.score,
		Clones:     []string{clone.Name},
	})
	return nil
}

// persistentClone returns the persistent subprogram for fn, creating it if
// needed. The clone flushes after every store that may modify PM and calls
// persistent versions of every callee that (transitively) modifies PM;
// callees with no PM effect are shared with the original (§4.2.4: reuse
// keeps code bloat negligible).
func (fx *Fixer) persistentClone(fn *ir.Func) (*ir.Func, error) {
	if c, ok := fx.clones[fn]; ok {
		fx.auditSite("reuse-subprogram", c.Name, "@"+fn.Name)
		return c, nil
	}
	if fn.IsDecl() {
		return nil, fmt.Errorf("hippocrates: cannot create persistent subprogram of declaration @%s", fn.Name)
	}
	name := fn.Name + "__pm"
	for i := 2; fx.mod.Func(name) != nil; i++ {
		name = fmt.Sprintf("%s__pm%d", fn.Name, i)
	}
	// Record PM-relevant instruction IDs on the ORIGINAL body (marks and
	// aliasing are defined over original values), then rewrite the clone
	// through the ID correspondence CloneFunc preserves.
	type edit struct {
		id   int
		kind int // 0 flush-after-store, 1 flush_range-after-call, 2 retarget call
		g    *ir.Func
	}
	// Same-line store runs get one flush after their last member (the
	// phase-2 reduction applied inside the subprogram): group provably
	// same-line stores per block.
	type lineKey struct {
		blk  *ir.Block
		root ir.Value
		line int64
		run  int // call-free run index within the block
	}
	lineLeader := map[lineKey]*ir.Instr{}
	storeGroup := map[*ir.Instr]lineKey{}
	grouped := 0
	if !fx.opts.DisableReduction {
		for _, b := range fn.Blocks {
			// Runs reset at every call: a callee may reach a durability
			// point that must already observe earlier same-line stores
			// flushed.
			runIdx := 0
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					runIdx++
					continue
				}
				if (in.Op == ir.OpStore || in.Op == ir.OpNTStore) && fx.marks.PM(in.StorePtr()) {
					root, line, ok := fx.staticLine(in.StorePtr(), in.StoreTy.Size(), in)
					if !ok {
						continue
					}
					k := lineKey{blk: b, root: root, line: line, run: runIdx}
					if lineLeader[k] != nil {
						grouped++
					}
					lineLeader[k] = in // later stores overwrite: leader = last of the run
					storeGroup[in] = k
				}
			}
		}
	}
	fx.result.ReducedFixes += grouped

	var edits []edit
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpStore, ir.OpNTStore:
				if fx.marks.PM(in.StorePtr()) {
					if k, ok := storeGroup[in]; ok && lineLeader[k] != in {
						continue // covered by the group leader's flush
					}
					edits = append(edits, edit{id: in.ID, kind: 0})
				}
			case ir.OpCall:
				callee := in.Callee
				switch {
				case callee.IsDecl():
					if (callee.Name == "memcpy" || callee.Name == "memset") && fx.marks.PM(in.Args[0]) {
						edits = append(edits, edit{id: in.ID, kind: 1})
					}
				case fx.modifiesPM(callee):
					edits = append(edits, edit{id: in.ID, kind: 2, g: callee})
				}
			}
		}
	}
	clone := ir.CloneFunc(fn, name)
	// Seed the memo before recursing so mutual/self recursion resolves to
	// the clone being built.
	fx.clones[fn] = clone
	fx.result.ClonesCreated++
	fx.auditSite("clone-subprogram", clone.Name, "@"+fn.Name)

	for _, e := range edits {
		in := clone.InstrByID(e.id)
		if in == nil {
			return nil, fmt.Errorf("hippocrates: lost instruction %d while cloning @%s", e.id, fn.Name)
		}
		switch e.kind {
		case 0:
			fx.insertFlushAfter(in)
		case 1:
			fx.insertFlushAfter(in)
		case 2:
			gClone, err := fx.persistentClone(e.g)
			if err != nil {
				return nil, err
			}
			in.Callee = gClone
			fx.audit("retarget-call", gClone.Name, in)
		}
	}
	return clone, nil
}

// modifiesPM reports whether fn may store to persistent memory, directly
// or through callees. Cycles in the call graph are treated as "unknown yet"
// and resolve to the caller's other evidence.
func (fx *Fixer) modifiesPM(fn *ir.Func) bool {
	const (
		stUnknown = iota
		stVisiting
		stYes
		stNo
	)
	switch fx.needsWork[fn] {
	case stYes:
		return true
	case stNo:
		return false
	case stVisiting:
		return false // break the cycle; the outer call decides
	}
	fx.needsWork[fn] = stVisiting
	found := false
	sawCycle := false
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpStore, ir.OpNTStore:
				if fx.marks.PM(in.StorePtr()) {
					found = true
				}
			case ir.OpCall:
				callee := in.Callee
				if callee.IsDecl() {
					if (callee.Name == "memcpy" || callee.Name == "memset") && fx.marks.PM(in.Args[0]) {
						found = true
					}
				} else {
					if fx.needsWork[callee] == stVisiting {
						sawCycle = true
					}
					if fx.modifiesPM(callee) {
						found = true
					}
				}
			}
		}
		if found {
			break
		}
	}
	switch {
	case found:
		fx.needsWork[fn] = stYes
	case sawCycle:
		// A negative answer obtained through a cycle is provisional:
		// recompute next time.
		fx.needsWork[fn] = stUnknown
	default:
		fx.needsWork[fn] = stNo
	}
	return found
}
