package ycsb

import (
	"math"
	"testing"
	"testing/quick"
)

func countKinds(ops []Op) map[OpKind]int {
	m := map[OpKind]int{}
	for _, op := range ops {
		m[op.Kind]++
	}
	return m
}

func TestWorkloadProportions(t *testing.T) {
	const n = 20000
	cases := []struct {
		wl   Workload
		want map[OpKind]float64
	}{
		{WorkloadA, map[OpKind]float64{OpRead: 0.5, OpUpdate: 0.5}},
		{WorkloadB, map[OpKind]float64{OpRead: 0.95, OpUpdate: 0.05}},
		{WorkloadC, map[OpKind]float64{OpRead: 1.0}},
		{WorkloadD, map[OpKind]float64{OpRead: 0.95, OpInsert: 0.05}},
		{WorkloadE, map[OpKind]float64{OpScan: 0.95, OpInsert: 0.05}},
		{WorkloadF, map[OpKind]float64{OpRead: 0.5, OpRMW: 0.5}},
	}
	for _, c := range cases {
		t.Run(c.wl.Name, func(t *testing.T) {
			g := NewGenerator(c.wl, 1000, 42)
			counts := countKinds(g.Ops(n))
			total := 0
			for _, v := range counts {
				total += v
			}
			if total != n {
				t.Fatalf("total ops = %d", total)
			}
			for kind, want := range c.want {
				got := float64(counts[kind]) / n
				if math.Abs(got-want) > 0.02 {
					t.Errorf("%v proportion = %.3f, want %.2f", kind, got, want)
				}
			}
			for kind, cnt := range counts {
				if _, ok := c.want[kind]; !ok && cnt > 0 {
					t.Errorf("unexpected ops of kind %v: %d", kind, cnt)
				}
			}
		})
	}
}

func TestKeysInRange(t *testing.T) {
	for _, wl := range AllStandard() {
		g := NewGenerator(wl, 500, 7)
		for i := 0; i < 5000; i++ {
			op := g.Next()
			if op.Key < 0 || op.Key >= g.RecordCount() {
				t.Fatalf("%s: key %d outside [0,%d)", wl.Name, op.Key, g.RecordCount())
			}
			if op.Kind == OpScan && (op.ScanLen < 1 || op.ScanLen > wl.MaxScanLen) {
				t.Fatalf("%s: scan length %d", wl.Name, op.ScanLen)
			}
		}
	}
}

func TestInsertsGrowKeyspace(t *testing.T) {
	g := NewGenerator(WorkloadD, 100, 9)
	before := g.RecordCount()
	inserts := 0
	for i := 0; i < 4000; i++ {
		if g.Next().Kind == OpInsert {
			inserts++
		}
	}
	if got := g.RecordCount(); got != before+int64(inserts) {
		t.Errorf("record count = %d, want %d", got, before+int64(inserts))
	}
	if inserts == 0 {
		t.Error("workload D produced no inserts")
	}
}

func TestZipfianIsSkewed(t *testing.T) {
	g := NewGenerator(WorkloadC, 1000, 3)
	freq := map[int64]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		freq[g.Next().Key]++
	}
	max := 0
	for _, c := range freq {
		if c > max {
			max = c
		}
	}
	// Uniform would give ~30 per key; zipfian-0.99's hottest key draws a
	// few percent of all requests.
	if max < 300 {
		t.Errorf("hottest key frequency = %d, want heavy skew (>300 of %d)", max, n)
	}
	if len(freq) < 100 {
		t.Errorf("only %d distinct keys drawn; zipfian tail missing", len(freq))
	}
}

func TestLatestFavorsNewestKeys(t *testing.T) {
	g := NewGenerator(WorkloadD, 1000, 11)
	newest := 0
	reads := 0
	for i := 0; i < 20000; i++ {
		op := g.Next()
		if op.Kind != OpRead {
			continue
		}
		reads++
		if op.Key >= g.RecordCount()-100 {
			newest++
		}
	}
	frac := float64(newest) / float64(reads)
	if frac < 0.3 {
		t.Errorf("only %.2f of reads hit the newest 10%% of keys; latest distribution broken", frac)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := NewGenerator(WorkloadA, 1000, 99).Ops(500)
	b := NewGenerator(WorkloadA, 1000, 99).Ops(500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs between identically seeded generators", i)
		}
	}
	c := NewGenerator(WorkloadA, 1000, 100).Ops(500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical streams")
	}
}

func TestLoadOps(t *testing.T) {
	ops := LoadOps(100)
	if len(ops) != 100 {
		t.Fatalf("load ops = %d", len(ops))
	}
	for i, op := range ops {
		if op.Kind != OpInsert || op.Key != int64(i) {
			t.Fatalf("load op %d = %+v", i, op)
		}
	}
}

func TestStandardLookup(t *testing.T) {
	for _, name := range []string{"A", "B", "C", "D", "E", "F"} {
		if _, ok := Standard(name); !ok {
			t.Errorf("missing standard workload %s", name)
		}
	}
	if _, ok := Standard("Z"); ok {
		t.Error("unexpected workload Z")
	}
	if len(AllStandard()) != 6 {
		t.Error("AllStandard must return 6 workloads")
	}
}

func TestZipfianRanksQuick(t *testing.T) {
	// Property: ranks are always within [0, n) even as n grows.
	z := newZipfian(10)
	g := NewGenerator(WorkloadC, 10, 5)
	f := func(growBy uint8) bool {
		n := int64(10 + int(growBy))
		r := z.next(g.rng, n)
		return r >= 0 && r < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOpKindStrings(t *testing.T) {
	for k := OpRead; k <= OpRMW; k++ {
		if s := k.String(); s == "" || s[0] == 'o' && s[1] == 'p' && s[2] == '(' {
			t.Errorf("missing name for kind %d", int(k))
		}
	}
}

func TestUniformDistribution(t *testing.T) {
	wl := Workload{Name: "U", ReadProp: 1.0, Distribution: "uniform"}
	g := NewGenerator(wl, 1000, 21)
	freq := map[int64]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		freq[g.Next().Key]++
	}
	max := 0
	for _, c := range freq {
		if c > max {
			max = c
		}
	}
	// Uniform over 1000 keys: expected ~20 per key; the hottest key must
	// stay far below zipfian skew levels.
	if max > 60 {
		t.Errorf("hottest key frequency = %d; uniform chooser is skewed", max)
	}
	if len(freq) < 900 {
		t.Errorf("only %d distinct keys drawn from 1000", len(freq))
	}
}
