// Package ycsb implements the Yahoo! Cloud Serving Benchmark workload
// generator (Cooper et al., SoCC'10) used by the paper's Redis and
// memcached experiments (§6.3): the standard core workloads Load and A–F,
// with scrambled-zipfian, latest and uniform key choosers.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// OpKind is a database operation type.
type OpKind int

// The operation kinds.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpScan
	OpRMW // read-modify-write
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpScan:
		return "scan"
	case OpRMW:
		return "rmw"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  int64
	// ScanLen is the record count for OpScan.
	ScanLen int
	// Value seeds the written payload for OpUpdate/OpInsert.
	Value int64
}

// Workload is a YCSB core workload definition: operation proportions plus
// the request-distribution name ("zipfian", "latest" or "uniform").
type Workload struct {
	Name         string
	ReadProp     float64
	UpdateProp   float64
	InsertProp   float64
	ScanProp     float64
	RMWProp      float64
	Distribution string
	MaxScanLen   int
}

// The standard core workloads (YCSB wiki definitions).
var (
	// WorkloadA: update heavy, 50/50 reads and updates.
	WorkloadA = Workload{Name: "A", ReadProp: 0.5, UpdateProp: 0.5, Distribution: "zipfian"}
	// WorkloadB: read mostly, 95/5.
	WorkloadB = Workload{Name: "B", ReadProp: 0.95, UpdateProp: 0.05, Distribution: "zipfian"}
	// WorkloadC: read only.
	WorkloadC = Workload{Name: "C", ReadProp: 1.0, Distribution: "zipfian"}
	// WorkloadD: read latest, 95 reads / 5 inserts.
	WorkloadD = Workload{Name: "D", ReadProp: 0.95, InsertProp: 0.05, Distribution: "latest"}
	// WorkloadE: short ranges, 95 scans / 5 inserts.
	WorkloadE = Workload{Name: "E", ScanProp: 0.95, InsertProp: 0.05, Distribution: "zipfian", MaxScanLen: 100}
	// WorkloadF: read-modify-write, 50 reads / 50 RMW.
	WorkloadF = Workload{Name: "F", ReadProp: 0.5, RMWProp: 0.5, Distribution: "zipfian"}
)

// Standard returns the named standard workload (A–F).
func Standard(name string) (Workload, bool) {
	for _, w := range []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF} {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// AllStandard returns the workloads A–F in order.
func AllStandard() []Workload {
	return []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF}
}

// Generator produces the operation stream for one workload run.
type Generator struct {
	wl  Workload
	rng *rand.Rand
	// recordCount is the current number of inserted records; keys are
	// 0..recordCount-1 and inserts append.
	recordCount int64
	zipf        *zipfian
}

// NewGenerator builds a generator over an initially loaded record count.
func NewGenerator(wl Workload, recordCount int64, seed int64) *Generator {
	g := &Generator{
		wl:          wl,
		rng:         rand.New(rand.NewSource(seed)),
		recordCount: recordCount,
	}
	if wl.Distribution == "zipfian" || wl.Distribution == "latest" {
		// YCSB sizes the zipfian over the expected final record count so
		// inserts do not disturb the distribution.
		expected := recordCount + int64(float64(recordCount)*wl.InsertProp)
		if expected < 1 {
			expected = 1
		}
		g.zipf = newZipfian(expected)
	}
	return g
}

// RecordCount returns the current record count (grows with inserts).
func (g *Generator) RecordCount() int64 { return g.recordCount }

// LoadOps returns the load-phase operation stream: one insert per record.
func LoadOps(recordCount int64) []Op {
	ops := make([]Op, recordCount)
	for i := int64(0); i < recordCount; i++ {
		ops[i] = Op{Kind: OpInsert, Key: i, Value: i * 31}
	}
	return ops
}

// Next generates the next operation.
func (g *Generator) Next() Op {
	r := g.rng.Float64()
	wl := g.wl
	switch {
	case r < wl.ReadProp:
		return Op{Kind: OpRead, Key: g.chooseKey()}
	case r < wl.ReadProp+wl.UpdateProp:
		return Op{Kind: OpUpdate, Key: g.chooseKey(), Value: g.rng.Int63n(1 << 20)}
	case r < wl.ReadProp+wl.UpdateProp+wl.InsertProp:
		key := g.recordCount
		g.recordCount++
		return Op{Kind: OpInsert, Key: key, Value: g.rng.Int63n(1 << 20)}
	case r < wl.ReadProp+wl.UpdateProp+wl.InsertProp+wl.ScanProp:
		max := wl.MaxScanLen
		if max < 1 {
			max = 1
		}
		return Op{Kind: OpScan, Key: g.chooseKey(), ScanLen: 1 + g.rng.Intn(max)}
	default:
		return Op{Kind: OpRMW, Key: g.chooseKey()}
	}
}

// Ops generates n operations.
func (g *Generator) Ops(n int) []Op {
	out := make([]Op, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// chooseKey picks a key per the workload's request distribution.
func (g *Generator) chooseKey() int64 {
	n := g.recordCount
	if n <= 0 {
		return 0
	}
	switch g.wl.Distribution {
	case "zipfian":
		// Scrambled zipfian: zipf rank hashed over the keyspace so the
		// hot keys are spread out (YCSB's ScrambledZipfianGenerator).
		rank := g.zipf.next(g.rng, n)
		return int64(fnv64(uint64(rank)) % uint64(n))
	case "latest":
		// Hot keys are the most recently inserted (YCSB's
		// SkewedLatestGenerator): rank 0 is the newest record.
		rank := g.zipf.next(g.rng, n)
		return n - 1 - rank
	default: // uniform
		return g.rng.Int63n(n)
	}
}

// zipfian implements the Gray et al. incremental zipfian generator YCSB
// uses, with the standard constant 0.99. It supports a growing item count
// by recomputing zeta incrementally.
type zipfian struct {
	theta float64
	// items is the count zetaN currently covers.
	items int64
	zetaN float64
	// zeta2 is zeta(2, theta), alpha/eta derived per YCSB.
	zeta2 float64
}

const zipfConstant = 0.99

func newZipfian(items int64) *zipfian {
	z := &zipfian{theta: zipfConstant}
	z.zeta2 = zetaStatic(2, zipfConstant)
	z.items = items
	z.zetaN = zetaStatic(items, zipfConstant)
	return z
}

func zetaStatic(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// next draws a rank in [0, n).
func (z *zipfian) next(rng *rand.Rand, n int64) int64 {
	if n > z.items {
		// Extend zeta incrementally for the grown keyspace.
		for i := z.items + 1; i <= n; i++ {
			z.zetaN += 1 / math.Pow(float64(i), z.theta)
		}
		z.items = n
	}
	alpha := 1 / (1 - z.theta)
	eta := (1 - math.Pow(2/float64(z.items), 1-z.theta)) / (1 - z.zeta2/z.zetaN)

	u := rng.Float64()
	uz := u * z.zetaN
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	rank := int64(float64(z.items) * math.Pow(eta*u-eta+1, alpha))
	if rank >= n {
		rank = n - 1
	}
	return rank
}

// fnv64 is the FNV-1a hash YCSB scrambles zipfian ranks with.
func fnv64(v uint64) uint64 {
	const offset = 14695981039346656037
	const prime = 1099511628211
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= prime
	}
	return h
}
