package pmem

import (
	"fmt"
	"sort"
)

// StoreState is the durability state of a tracked PM store, following the
// paper's §4.2 definitions: a store is volatile (dirty) until a flush of
// its cache line is issued, and the flush itself only creates a durability
// ordering once a subsequent fence executes.
type StoreState int

// The durability states.
const (
	// StoreDirty: the update sits in the volatile CPU cache.
	StoreDirty StoreState = iota
	// StoreFlushed: a weakly-ordered flush (CLWB/CLFLUSHOPT) or
	// non-temporal store has been issued but not yet fenced.
	StoreFlushed
	// StoreDurable: flushed and fenced (or CLFLUSHed); survives a crash.
	StoreDurable
)

func (s StoreState) String() string {
	switch s {
	case StoreDirty:
		return "dirty"
	case StoreFlushed:
		return "flushed"
	case StoreDurable:
		return "durable"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// TrackedStore is one store to persistent memory that has not yet become
// durable. Stores never span cache lines in this model (all IR scalars are
// naturally aligned and at most 8 bytes), which the tracker checks.
type TrackedStore struct {
	Addr uint64
	Data []byte
	// Seq is the global event sequence number of the store.
	Seq int
	// State is the current durability state.
	State StoreState
	// FlushSeq is the sequence number of the flush that moved the store
	// to StoreFlushed, or -1.
	FlushSeq int
	// NT marks a non-temporal store (born flushed).
	NT bool
	// Tid is the simulated thread that issued the store (0 = main).
	Tid int
	// FlushTid is the thread that issued the flush that moved the store
	// to StoreFlushed (flushes act on whole cache lines, so another
	// thread's flush can write back this thread's store). SFENCE only
	// drains the issuing core's flushes, so a fence commits a flushed
	// store only when FlushTid matches the fencing thread.
	FlushTid int
}

// Size returns the store width in bytes.
func (s *TrackedStore) Size() int { return len(s.Data) }

// Line returns the base address of the cache line holding the store.
func (s *TrackedStore) Line() uint64 { return LineOf(s.Addr) }

// BugClass classifies a durability violation, matching the paper's
// taxonomy (§2.1).
type BugClass int

// The durability bug classes.
const (
	// MissingFlush: the store was never flushed, but an existing fence
	// follows it, so inserting only a flush (before that fence) fixes it.
	MissingFlush BugClass = iota
	// MissingFence: the store was flushed with a weakly-ordered flush but
	// no fence followed the flush.
	MissingFence
	// MissingFlushFence: neither a flush nor a subsequent fence exists.
	MissingFlushFence
)

func (c BugClass) String() string {
	switch c {
	case MissingFlush:
		return "missing-flush"
	case MissingFence:
		return "missing-fence"
	case MissingFlushFence:
		return "missing-flush&fence"
	}
	return fmt.Sprintf("bugclass(%d)", int(c))
}

// Violation is a durability bug observed at a durability point: the store
// was not durable when the program required it to be.
type Violation struct {
	Store         *TrackedStore
	Class         BugClass
	CheckpointSeq int
}

// RedundantFlush is a performance diagnostic: a flush of a line with no
// dirty stores (§7 — reported, never auto-fixed).
type RedundantFlush struct {
	Addr uint64
	Seq  int
}

// CrossThreadPublish records an unordered cross-thread pointer publish:
// a store holding a PM address became durable while the cache line it
// points at still carried pending stores from a different thread. A
// crash after the publish can leave the pointer durable but the
// referent data lost — the publishing thread never ordered the other
// thread's writes (no flush of the referent line + fence on its own
// core) before making the pointer reachable.
type CrossThreadPublish struct {
	// PubAddr/PubSeq/PubTid identify the publishing store (now durable).
	PubAddr uint64
	PubSeq  int
	PubTid  int
	// Val is the published PM address.
	Val uint64
	// Referent is the cross-thread store on the published line that was
	// still pending at publish time.
	Referent *TrackedStore
}

// Tracker implements the pmemcheck durability state machine over a stream
// of PM events. It maintains the durable shadow image used to generate
// crash images.
type Tracker struct {
	// pending maps a cache-line base to the non-durable stores on it.
	pending map[uint64][]*TrackedStore
	// durable is the shadow image holding only durable bytes.
	durable *Memory

	// lastFence records the sequence of the latest fence per issuing
	// thread (index = tid). Checkpoint classification consults the
	// store's own thread: a fence by another thread never drains this
	// thread's flushes, so it cannot turn missing-flush&fence into
	// missing-flush — a flush-only fix would park the line forever.
	lastFence []int
	nPending  int

	// storeArena / dataArena back TrackedStore records and their payload
	// copies in chunks, so the per-store cost on the interpreter hot path
	// is two bump allocations instead of two heap allocations. Records
	// are handed out once and never recycled; pointers stay valid for
	// the tracker's lifetime.
	storeArena []TrackedStore
	dataArena  []byte
	// commitScratch is reused across fences so OnFenceT's two-phase
	// commit stays allocation-free on the hot path.
	commitScratch []*TrackedStore

	// Diagnostics and statistics.
	RedundantFlushes []RedundantFlush
	RedundantFences  int
	DurableStores    int
	TotalStores      int
	// Publishes collects cross-thread unordered pointer publishes (only
	// possible in multi-threaded runs; see CrossThreadPublish).
	Publishes []CrossThreadPublish
}

// newStore bump-allocates one TrackedStore from the arena.
func (t *Tracker) newStore() *TrackedStore {
	if len(t.storeArena) == 0 {
		t.storeArena = make([]TrackedStore, 256)
	}
	st := &t.storeArena[0]
	t.storeArena = t.storeArena[1:]
	return st
}

// copyData bump-allocates a private copy of a store payload (at most 8
// bytes in this model, but any line-sized chunk fits).
func (t *Tracker) copyData(data []byte) []byte {
	if len(t.dataArena) < len(data) {
		n := 4096
		if len(data) > n {
			n = len(data)
		}
		t.dataArena = make([]byte, n)
	}
	out := t.dataArena[:len(data):len(data)]
	t.dataArena = t.dataArena[len(data):]
	copy(out, data)
	return out
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		pending: make(map[uint64][]*TrackedStore),
		durable: NewMemory(),
	}
}

// OnStore records a store of data at addr in persistent memory issued by
// thread 0. A store that exactly overwrites a pending store replaces it
// (the old update can no longer be observed after a crash).
func (t *Tracker) OnStore(seq int, addr uint64, data []byte) *TrackedStore {
	return t.OnStoreT(seq, 0, addr, data)
}

// OnStoreT is OnStore with an explicit issuing thread.
func (t *Tracker) OnStoreT(seq, tid int, addr uint64, data []byte) *TrackedStore {
	if LineOf(addr) != LineOf(addr+uint64(len(data))-1) {
		panic(fmt.Sprintf("pmem: store at %#x size %d spans cache lines", addr, len(data)))
	}
	t.TotalStores++
	line := LineOf(addr)
	list := t.pending[line]
	for i, old := range list {
		if old.Addr == addr && old.Size() == len(data) {
			// Exact overwrite: drop the stale pending store.
			list = append(list[:i], list[i+1:]...)
			t.nPending--
			break
		}
	}
	st := t.newStore()
	*st = TrackedStore{
		Addr:     addr,
		Data:     t.copyData(data),
		Seq:      seq,
		State:    StoreDirty,
		FlushSeq: -1,
		Tid:      tid,
		FlushTid: -1,
	}
	t.pending[line] = append(list, st)
	t.nPending++
	return st
}

// OnNTStore records a non-temporal store by thread 0: it bypasses the
// cache and is durable after the next fence (born in the flushed state).
func (t *Tracker) OnNTStore(seq int, addr uint64, data []byte) *TrackedStore {
	return t.OnNTStoreT(seq, 0, addr, data)
}

// OnNTStoreT is OnNTStore with an explicit issuing thread.
func (t *Tracker) OnNTStoreT(seq, tid int, addr uint64, data []byte) *TrackedStore {
	st := t.OnStoreT(seq, tid, addr, data)
	st.State = StoreFlushed
	st.FlushSeq = seq
	st.FlushTid = tid
	st.NT = true
	return st
}

// OnFlush records a cache-line flush by thread 0 of the line containing
// addr and returns the number of stores it transitioned. CLFLUSH is
// strongly ordered and commits affected stores immediately; CLWB and
// CLFLUSHOPT move them to StoreFlushed pending a fence.
func (t *Tracker) OnFlush(seq int, ordered bool, addr uint64) int {
	return t.OnFlushT(seq, 0, ordered, addr)
}

// OnFlushT is OnFlush with an explicit issuing thread. Flushes act on
// whole cache lines regardless of who dirtied them (cache coherence),
// so a thread's flush writes back other threads' stores on the line;
// the flusher is recorded so fences drain only their own core's flushes.
func (t *Tracker) OnFlushT(seq, tid int, ordered bool, addr uint64) int {
	line := LineOf(addr)
	moved := 0
	list := t.pending[line]
	if ordered {
		// CLFLUSH retires both dirty and previously flushed stores.
		// Remove the line from pending before committing so publish
		// detection never sees a same-pass store as still pending.
		delete(t.pending, line)
		t.nPending -= len(list)
		for _, st := range list {
			t.commit(st)
			moved++
		}
		if moved == 0 {
			t.RedundantFlushes = append(t.RedundantFlushes, RedundantFlush{Addr: addr, Seq: seq})
		}
		return moved
	}
	for _, st := range list {
		if st.State == StoreDirty {
			st.State = StoreFlushed
			st.FlushSeq = seq
			st.FlushTid = tid
			moved++
		}
	}
	if moved == 0 {
		t.RedundantFlushes = append(t.RedundantFlushes, RedundantFlush{Addr: addr, Seq: seq})
	}
	return moved
}

// OnFence records a store fence by thread 0: every flushed store becomes
// durable. It returns the number of distinct cache lines drained (the
// unit the cost model charges for, since the memory controller retires
// write-backs per line).
func (t *Tracker) OnFence(seq int) int {
	return t.OnFenceT(seq, 0)
}

// OnFenceT is OnFence with an explicit issuing thread: only stores whose
// flush was issued by the fencing thread become durable (SFENCE orders
// the issuing core's own flushes; another thread's CLWB is not drained
// by this thread's fence).
func (t *Tracker) OnFenceT(seq, tid int) int {
	for len(t.lastFence) <= tid {
		t.lastFence = append(t.lastFence, -1)
	}
	t.lastFence[tid] = seq
	drained := 0
	lines := 0
	// Two passes: collect and detach every store this fence commits,
	// then commit them. Publish detection inside commit scans pending,
	// so same-fence commits must not be observable as pending. The
	// scratch buffer and in-place filtering keep the hot path free of
	// per-fence allocations.
	commits := t.commitScratch[:0]
	for line, list := range t.pending {
		keep := list[:0]
		lineDrained := false
		for _, st := range list {
			if st.State == StoreFlushed && st.FlushTid == tid {
				commits = append(commits, st)
				drained++
				lineDrained = true
			} else {
				keep = append(keep, st)
			}
		}
		if lineDrained {
			lines++
		}
		if len(keep) == 0 {
			delete(t.pending, line)
		} else {
			t.pending[line] = keep
		}
	}
	t.nPending -= drained
	// Insertion sort by Seq: commit order must be global store order (so
	// later overwrites win in the durable image), and fences typically
	// drain a handful of stores.
	for i := 1; i < len(commits); i++ {
		for j := i; j > 0 && commits[j-1].Seq > commits[j].Seq; j-- {
			commits[j-1], commits[j] = commits[j], commits[j-1]
		}
	}
	for _, st := range commits {
		t.commit(st)
	}
	t.commitScratch = commits[:0]
	if drained == 0 {
		t.RedundantFences++
	}
	return lines
}

func (t *Tracker) commit(st *TrackedStore) {
	st.State = StoreDurable
	t.durable.Write(st.Addr, st.Data)
	t.DurableStores++
	t.checkPublish(st)
}

// checkPublish flags cross-thread unordered publishes: st just became
// durable; if it is a pointer-sized store of a PM address whose target
// line still has pending stores from other threads, the publish made
// data reachable that a crash can lose.
func (t *Tracker) checkPublish(st *TrackedStore) {
	if len(st.Data) != 8 {
		return
	}
	val := uint64(0)
	for i := 7; i >= 0; i-- {
		val = val<<8 | uint64(st.Data[i])
	}
	if !IsPM(val) {
		return
	}
	for _, ref := range t.pending[LineOf(val)] {
		if ref.Tid != st.Tid {
			t.Publishes = append(t.Publishes, CrossThreadPublish{
				PubAddr: st.Addr, PubSeq: st.Seq, PubTid: st.Tid, Val: val, Referent: ref,
			})
		}
	}
}

// lastFenceOf returns the sequence of tid's latest fence, or -1.
func (t *Tracker) lastFenceOf(tid int) int {
	if tid < len(t.lastFence) {
		return t.lastFence[tid]
	}
	return -1
}

// OnCheckpoint evaluates a durability point: every pending store is a
// violation, classified per the paper's bug taxonomy. Pending stores are
// kept (the program may still persist them later; the detector
// deduplicates reports by program location).
func (t *Tracker) OnCheckpoint(seq int) []Violation {
	out := make([]Violation, 0, t.nPending)
	for _, list := range t.pending {
		for _, st := range list {
			v := Violation{Store: st, CheckpointSeq: seq}
			switch {
			case st.State == StoreFlushed:
				v.Class = MissingFence
			case t.lastFenceOf(st.Tid) > st.Seq:
				v.Class = MissingFlush
			default:
				v.Class = MissingFlushFence
			}
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Store.Seq < out[j].Store.Seq })
	return out
}

// Pending returns the non-durable stores ordered by sequence number.
func (t *Tracker) Pending() []*TrackedStore {
	out := make([]*TrackedStore, 0, t.nPending)
	for _, list := range t.pending {
		out = append(out, list...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// NumPending returns the count of non-durable stores.
func (t *Tracker) NumPending() int { return t.nPending }

// SeedDurable marks pre-existing PM content (e.g. persistent-global
// initializers, or an image surviving a restart) as durable without
// counting it as a program store.
func (t *Tracker) SeedDurable(addr uint64, data []byte) {
	t.durable.Write(addr, data)
}

// DurableImage returns a snapshot of the durable PM contents. The
// snapshot is copy-on-write: both the tracker and the caller may keep
// writing, each privatizing the pages it touches.
func (t *Tracker) DurableImage() *Memory { return t.durable.Snapshot() }

// CrashImage builds a possible post-crash PM image: the durable bytes plus
// any subset of the pending stores chosen by keep (cache lines may be
// evicted at any time, so any subset of non-durable stores may have
// reached PM). Chosen stores are applied in sequence order so later
// overwrites win, matching store order within a line.
func (t *Tracker) CrashImage(keep func(*TrackedStore) bool) *Memory {
	img := t.durable.Clone()
	for _, st := range t.Pending() {
		if keep(st) {
			img.Write(st.Addr, st.Data)
		}
	}
	return img
}

// PendingLine groups the non-durable stores of one cache line, in
// sequence order. It is the unit of the crash-schedule model: a cache
// line writes back to PM atomically and cumulatively, so the feasible
// post-crash contents of one line are exactly the prefixes of its
// pending-store sequence (the line's content at the moment of its last
// eviction), not arbitrary subsets.
type PendingLine struct {
	// Line is the cache-line base address.
	Line uint64
	// Stores are the line's non-durable stores, sequence-ordered.
	Stores []*TrackedStore
}

// PendingLines returns the pending stores grouped by cache line, each
// group sequence-ordered, groups ordered by line address. The result is
// deterministic for a given tracker state, so an index into it is a
// stable coordinate for crash-schedule enumeration.
func (t *Tracker) PendingLines() []PendingLine {
	out := make([]PendingLine, 0, len(t.pending))
	for line, list := range t.pending {
		stores := append([]*TrackedStore(nil), list...)
		sort.Slice(stores, func(i, j int) bool { return stores[i].Seq < stores[j].Seq })
		out = append(out, PendingLine{Line: line, Stores: stores})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Line < out[j].Line })
	return out
}

// CrashImagePrefix builds the post-crash PM image for one crash schedule
// under the per-line prefix model: for the i-th pending line (in
// PendingLines order), the first cuts[i] stores reached PM before the
// crash and the rest were lost. Cut values outside [0, len(Stores)] are
// clamped; missing entries mean 0 (nothing from that line survived).
// Exact overwrites collapse pending stores (see OnStore), so a prefix
// reflects the line's current pending sequence, not every historical
// intermediate value — the same approximation CrashImage makes.
func (t *Tracker) CrashImagePrefix(cuts []int) *Memory {
	img := t.durable.Clone()
	for i, pl := range t.PendingLines() {
		cut := 0
		if i < len(cuts) {
			cut = cuts[i]
		}
		if cut < 0 {
			cut = 0
		}
		if cut > len(pl.Stores) {
			cut = len(pl.Stores)
		}
		for _, st := range pl.Stores[:cut] {
			img.Write(st.Addr, st.Data)
		}
	}
	return img
}
