package pmem

import (
	"reflect"
	"testing"
)

// TestPendingLinesGrouping: interleaved stores to several lines come back
// grouped per line, sequence-ordered within a group, groups ordered by
// line address — the stable coordinate system crash-schedule enumeration
// indexes into.
func TestPendingLinesGrouping(t *testing.T) {
	tr := NewTracker()
	lineA := uint64(PMBase)
	lineB := uint64(PMBase + 128)
	tr.OnStore(1, lineB+8, val(1))
	tr.OnStore(2, lineA, val(2))
	tr.OnStore(3, lineB+16, val(3))
	tr.OnStore(4, lineA+8, val(4))

	pls := tr.PendingLines()
	if len(pls) != 2 {
		t.Fatalf("pending lines = %d, want 2", len(pls))
	}
	if pls[0].Line != lineA || pls[1].Line != lineB {
		t.Fatalf("line order = %#x, %#x; want ascending addresses", pls[0].Line, pls[1].Line)
	}
	if len(pls[0].Stores) != 2 || len(pls[1].Stores) != 2 {
		t.Fatalf("store counts = %d, %d; want 2, 2", len(pls[0].Stores), len(pls[1].Stores))
	}
	if pls[0].Stores[0].Seq != 2 || pls[0].Stores[1].Seq != 4 {
		t.Errorf("line A sequence = %d, %d; want 2, 4", pls[0].Stores[0].Seq, pls[0].Stores[1].Seq)
	}
	if pls[1].Stores[0].Seq != 1 || pls[1].Stores[1].Seq != 3 {
		t.Errorf("line B sequence = %d, %d; want 1, 3", pls[1].Stores[0].Seq, pls[1].Stores[1].Seq)
	}
	// Deterministic: a second call yields the identical grouping.
	again := tr.PendingLines()
	if !reflect.DeepEqual(pls, again) {
		t.Error("PendingLines is not deterministic")
	}
}

// TestPendingLinesAfterPersist: flushed-and-fenced stores leave the
// pending set; flushed-but-unfenced stores stay (they may or may not have
// reached PM, which is exactly what the schedule model explores).
func TestPendingLinesAfterPersist(t *testing.T) {
	tr := NewTracker()
	tr.OnStore(1, PMBase, val(9))
	tr.OnStore(2, PMBase+64, val(8))
	tr.OnFlush(3, false, PMBase)
	if got := len(tr.PendingLines()); got != 2 {
		t.Fatalf("after flush: %d pending lines, want 2 (flush alone is not durability)", got)
	}
	tr.OnFence(4)
	pls := tr.PendingLines()
	if len(pls) != 1 || pls[0].Line != PMBase+64 {
		t.Fatalf("after fence: pending = %+v, want only the unflushed line", pls)
	}
}

// TestCrashImagePrefix: the cuts vector selects a per-line prefix; cut
// values are clamped and missing entries mean nothing survived.
func TestCrashImagePrefix(t *testing.T) {
	tr := NewTracker()
	addr := uint64(PMBase + 256)
	tr.OnStore(1, addr, val(1))
	tr.OnStore(2, addr+8, val(2))
	tr.OnStore(3, addr+16, val(3))

	if got := tr.CrashImagePrefix([]int{0}).Load8(addr); got != 0 {
		t.Errorf("cut 0: byte = %d, want durable zero", got)
	}
	img := tr.CrashImagePrefix([]int{2})
	if img.Load8(addr) != 1 || img.Load8(addr+8) != 2 || img.Load8(addr+16) != 0 {
		t.Errorf("cut 2: bytes = %d,%d,%d; want prefix 1,2,0",
			img.Load8(addr), img.Load8(addr+8), img.Load8(addr+16))
	}
	// Clamping: negative and oversized cuts, and a missing entry.
	if got := tr.CrashImagePrefix([]int{-5}).Load8(addr); got != 0 {
		t.Errorf("negative cut: byte = %d, want 0", got)
	}
	img = tr.CrashImagePrefix([]int{99})
	if img.Load8(addr+16) != 3 {
		t.Errorf("oversized cut: byte = %d, want full prefix", img.Load8(addr+16))
	}
	if got := tr.CrashImagePrefix(nil).Load8(addr); got != 0 {
		t.Errorf("nil cuts: byte = %d, want durable image", got)
	}
}

// TestCrashImagePrefixCollapsesOverwrites: an exact overwrite replaces
// the pending store in place, so prefixes range over the line's current
// sequence, never resurrecting the overwritten value.
func TestCrashImagePrefixCollapsesOverwrites(t *testing.T) {
	tr := NewTracker()
	addr := uint64(PMBase + 512)
	tr.OnStore(1, addr, val(0xAA))
	tr.OnStore(2, addr, val(0xBB))
	pls := tr.PendingLines()
	if len(pls) != 1 || len(pls[0].Stores) != 1 {
		t.Fatalf("pending = %+v, want one collapsed store", pls)
	}
	if got := tr.CrashImagePrefix([]int{1}).Load8(addr); got != 0xBB {
		t.Errorf("prefix 1: byte = %#x, want the overwriting value", got)
	}
}

// TestCrashImagePrefixAgreesWithCrashImage: the prefix model's corner
// schedules coincide with the legacy keep-function image builder — the
// all-zero cut is the keep-nothing image (durable only) and the all-max
// cut is the keep-everything image.
func TestCrashImagePrefixAgreesWithCrashImage(t *testing.T) {
	tr := NewTracker()
	tr.OnStore(1, PMBase, val(1, 2, 3))
	tr.OnStore(2, PMBase+64, val(4))
	tr.OnStore(3, PMBase+70, val(5, 6))
	tr.OnStore(4, PMBase+128, val(7))
	tr.OnFlush(5, false, PMBase+128)
	tr.OnFence(6)

	pls := tr.PendingLines()
	zero := make([]int, len(pls))
	full := make([]int, len(pls))
	for i, pl := range pls {
		full[i] = len(pl.Stores)
	}
	probe := []uint64{PMBase, PMBase + 64, PMBase + 70, PMBase + 128}

	worst := tr.CrashImage(func(*TrackedStore) bool { return false })
	gotWorst := tr.CrashImagePrefix(zero)
	best := tr.CrashImage(func(*TrackedStore) bool { return true })
	gotBest := tr.CrashImagePrefix(full)
	for _, a := range probe {
		if worst.Load8(a) != gotWorst.Load8(a) {
			t.Errorf("all-zero cut differs from CrashImage(nil) at %#x", a)
		}
		if best.Load8(a) != gotBest.Load8(a) {
			t.Errorf("all-max cut differs from keep-all CrashImage at %#x", a)
		}
	}
	if gotBest.Load8(PMBase) != 1 || gotBest.Load8(PMBase+128) != 7 {
		t.Error("all-max image lost stored bytes")
	}
}
