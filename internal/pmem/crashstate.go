package pmem

// CrashState is a frozen capture of a tracker's durability state at one
// PM event boundary: a copy-on-write snapshot of the durable image, the
// pending stores grouped per cache line, and the reserved
// allocator-metadata line. It is everything crash-schedule enumeration
// needs to materialize feasible post-crash images — without re-executing
// the workload to the boundary or deep-cloning the durable bytes.
//
// The capture is cheap (page-map copy plus the pending-line grouping)
// and stays valid as the originating tracker keeps running: tracker
// writes privatize touched pages first, and image construction reads
// only the immutable Addr/Data fields of the captured stores (State and
// FlushSeq keep mutating in the live tracker).
type CrashState struct {
	// Durable is the COW snapshot of the durable image. It is a frozen
	// base for image overlays and must never be written.
	Durable *Memory
	// Lines are the pending stores per cache line in PendingLines order —
	// the coordinate system cut vectors index.
	Lines []PendingLine
	// Meta is the reserved allocator-metadata line (LineSize bytes at
	// PMBase) at the boundary; it is stamped into every image, as the
	// simulated hardware keeps it consistent on its own.
	Meta []byte

	hashed   bool
	baseHash uint64
}

// CaptureCrashState snapshots the tracker's durability state for later
// crash-image construction (Meta is filled in by the interpreter, which
// owns the metadata line).
func (t *Tracker) CaptureCrashState() *CrashState {
	return &CrashState{Durable: t.durable.Snapshot(), Lines: t.PendingLines()}
}

// FNV-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// lineContentHash hashes one cache line's content tagged with its base
// address (FNV-1a over address then bytes). All-zero content hashes to 0
// regardless of address, so untouched lines contribute nothing whether
// or not their page happens to be materialized — a whole image's hash is
// then the XOR of its non-zero lines' hashes, which lets a schedule's
// hash be derived from a base hash by swapping individual lines in and
// out.
func lineContentHash(line uint64, data []byte) uint64 {
	zero := true
	for _, b := range data {
		if b != 0 {
			zero = false
			break
		}
	}
	if zero {
		return 0
	}
	h := uint64(fnvOffset)
	for i := 0; i < 8; i++ {
		h ^= line >> (8 * i) & 0xff
		h *= fnvPrime
	}
	for _, b := range data {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// BaseHash returns the content hash of the all-zero-cut image: the
// durable PM bytes plus the metadata line. It walks the durable image
// once per crash state (memoized); HashCuts derives every schedule's
// hash from it by per-line adjustment.
func (cs *CrashState) BaseHash() uint64 {
	if cs.hashed {
		return cs.baseHash
	}
	h := uint64(0)
	cs.Durable.forEachPage(PMBase, func(addr uint64, pg *[pageSize]byte) {
		for off := 0; off < pageSize; off += LineSize {
			la := addr + uint64(off)
			if la == PMBase {
				continue // metadata line: cs.Meta overrides durable content
			}
			h ^= lineContentHash(la, pg[off:off+LineSize])
		}
	})
	h ^= lineContentHash(PMBase, cs.Meta)
	cs.baseHash = h
	cs.hashed = true
	return h
}

// cutAt clamps a cut vector entry exactly as Tracker.CrashImagePrefix
// does: missing entries are 0, values outside [0, max] clamp.
func cutAt(cuts []int, i, max int) int {
	c := 0
	if i < len(cuts) {
		c = cuts[i]
	}
	if c < 0 {
		c = 0
	}
	if c > max {
		c = max
	}
	return c
}

// HashCuts returns the content hash of the post-crash image selected by
// cuts, derived from BaseHash by replacing each cut line's durable
// content with its store prefix. Byte-identical images hash equal no
// matter which schedule (or which crash state with the same bytes)
// produced them — the content addressing the verdict dedup keys on.
// Pending lines never cover the metadata line (program stores start
// after it), so Meta needs no special casing here.
func (cs *CrashState) HashCuts(cuts []int) uint64 {
	h := cs.BaseHash()
	var old, cur [LineSize]byte
	for i := range cs.Lines {
		pl := &cs.Lines[i]
		cut := cutAt(cuts, i, len(pl.Stores))
		if cut == 0 {
			continue
		}
		cs.Durable.Read(pl.Line, old[:])
		cur = old
		for _, st := range pl.Stores[:cut] {
			copy(cur[st.Addr-pl.Line:], st.Data)
		}
		if cur == old {
			continue // prefix reproduced the durable bytes exactly
		}
		h ^= lineContentHash(pl.Line, old[:]) ^ lineContentHash(pl.Line, cur[:])
	}
	return h
}

// ImageBuilder materializes post-crash images for one crash state. It
// keeps a single working overlay over the frozen durable base and moves
// between schedules by applying per-line deltas (Seek), so visiting
// schedule k+1 after schedule k costs only the stores whose cuts differ
// — not a fresh replay from the durable image, let alone a deep clone
// of it.
type ImageBuilder struct {
	cs   *CrashState
	img  *Memory
	cuts []int
}

// NewBuilder returns a builder positioned at the all-zero schedule
// (nothing unfenced survived).
func (cs *CrashState) NewBuilder() *ImageBuilder {
	img := cs.Durable.Overlay()
	if len(cs.Meta) > 0 {
		img.Write(PMBase, cs.Meta)
	}
	return &ImageBuilder{cs: cs, img: img, cuts: make([]int, len(cs.Lines))}
}

// Seek moves the working image to the given schedule. Lines whose cut
// grew replay only the new stores; lines whose cut shrank are restored
// from the durable base and replay their shorter prefix. Cut values are
// clamped exactly as Tracker.CrashImagePrefix clamps them.
func (b *ImageBuilder) Seek(cuts []int) {
	for i := range b.cs.Lines {
		pl := &b.cs.Lines[i]
		want := cutAt(cuts, i, len(pl.Stores))
		have := b.cuts[i]
		if want == have {
			continue
		}
		if want < have {
			var buf [LineSize]byte
			b.cs.Durable.Read(pl.Line, buf[:])
			b.img.Write(pl.Line, buf[:])
			have = 0
		}
		for _, st := range pl.Stores[have:want] {
			b.img.Write(st.Addr, st.Data)
		}
		b.cuts[i] = want
	}
}

// Cuts returns the builder's current schedule (clamped). Callers must
// not mutate it.
func (b *ImageBuilder) Cuts() []int { return b.cuts }

// Hash returns the content hash of the current schedule's image.
func (b *ImageBuilder) Hash() uint64 { return b.cs.HashCuts(b.cuts) }

// Image returns the current schedule's image as a COW snapshot,
// isolated both from later Seeks and from the recovery run's own writes.
// Each recovery entry wants its own snapshot: entries mutate their
// image.
func (b *ImageBuilder) Image() *Memory { return b.img.Snapshot() }
