package pmem

// CostModel assigns simulated latencies (in nanoseconds) to the operations
// the interpreter executes. The constants follow the published Optane DC
// characterization numbers the paper cites (§1: PM read latency 2–3×
// DRAM; flushes tens of nanoseconds; fences serialize pending flushes).
// Absolute values are not meant to match the authors' testbed — only the
// relative shape matters for Fig. 4: flushing volatile data wastes flush
// latency, and every extra fence stalls until its pending flushes drain.
type CostModel struct {
	// ALUOp is the cost of arithmetic, comparisons, casts and branches.
	ALUOp float64
	// LoadDRAM / StoreDRAM are cache-hit volatile access costs.
	LoadDRAM  float64
	StoreDRAM float64
	// LoadPM / StorePM are PM access costs (store goes to the cache, but
	// PM rows are slower to open on a miss; modeled as a flat premium).
	LoadPM  float64
	StorePM float64
	// Flush is the issue cost of CLWB/CLFLUSHOPT/CLFLUSH regardless of
	// the target region — flushing volatile data costs the same as
	// flushing PM, which is exactly why intraprocedural fixes inside
	// functions like memcpy are expensive (§3.2).
	Flush float64
	// FlushWriteback is the write-back cost charged when a flush commits
	// a line immediately (strongly-ordered CLFLUSH). Weakly-ordered
	// flushes (CLWB/CLFLUSHOPT) park the line in the write-pending queue,
	// where repeated flushes of one line coalesce; their write-back is
	// paid per line at the draining fence (FenceDrainPerLine).
	FlushWriteback float64
	// FenceBase is the issue cost of SFENCE/MFENCE.
	FenceBase float64
	// FenceDrainPerLine is the stall per pending flushed cache line the
	// fence must wait for (the PM writes complete inside the fence).
	FenceDrainPerLine float64
	// Call is the call/return overhead.
	Call float64
}

// DefaultCostModel returns the calibrated model used by the benchmarks.
func DefaultCostModel() *CostModel {
	return &CostModel{
		ALUOp:             0.4,
		LoadDRAM:          1.0,
		StoreDRAM:         1.0,
		LoadPM:            3.0,
		StorePM:           1.5,
		Flush:             24.0,
		FlushWriteback:    90.0,
		FenceBase:         8.0,
		FenceDrainPerLine: 90.0,
		Call:              2.0,
	}
}

// Clock accumulates simulated time.
type Clock struct {
	ns float64
}

// Advance adds ns nanoseconds.
func (c *Clock) Advance(ns float64) { c.ns += ns }

// Nanoseconds returns the elapsed simulated time.
func (c *Clock) Nanoseconds() float64 { return c.ns }

// Reset zeroes the clock.
func (c *Clock) Reset() { c.ns = 0 }
