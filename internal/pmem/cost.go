package pmem

// CostModel assigns simulated latencies (in nanoseconds) to the operations
// the interpreter executes. The constants follow the published Optane DC
// characterization numbers the paper cites (§1: PM read latency 2–3×
// DRAM; flushes tens of nanoseconds; fences serialize pending flushes).
// Absolute values are not meant to match the authors' testbed — only the
// relative shape matters for Fig. 4: flushing volatile data wastes flush
// latency, and every extra fence stalls until its pending flushes drain.
type CostModel struct {
	// ALUOp is the cost of arithmetic, comparisons, casts and branches.
	ALUOp float64
	// LoadDRAM / StoreDRAM are cache-hit volatile access costs.
	LoadDRAM  float64
	StoreDRAM float64
	// LoadPM / StorePM are PM access costs (store goes to the cache, but
	// PM rows are slower to open on a miss; modeled as a flat premium).
	LoadPM  float64
	StorePM float64
	// Flush is the issue cost of CLWB/CLFLUSHOPT/CLFLUSH regardless of
	// the target region — flushing volatile data costs the same as
	// flushing PM, which is exactly why intraprocedural fixes inside
	// functions like memcpy are expensive (§3.2).
	Flush float64
	// FlushWriteback is the write-back cost charged when a flush commits
	// a line immediately (strongly-ordered CLFLUSH). Weakly-ordered
	// flushes (CLWB/CLFLUSHOPT) park the line in the write-pending queue,
	// where repeated flushes of one line coalesce; their write-back is
	// paid per line at the draining fence (FenceDrainPerLine).
	FlushWriteback float64
	// FenceBase is the issue cost of SFENCE/MFENCE.
	FenceBase float64
	// FenceDrainPerLine is the stall per pending flushed cache line the
	// fence must wait for (the PM writes complete inside the fence).
	FenceDrainPerLine float64
	// Call is the call/return overhead.
	Call float64
}

// DefaultCostModel returns the calibrated model used by the benchmarks.
func DefaultCostModel() *CostModel {
	return &CostModel{
		ALUOp:             0.4,
		LoadDRAM:          1.0,
		StoreDRAM:         1.0,
		LoadPM:            3.0,
		StorePM:           1.5,
		Flush:             24.0,
		FlushWriteback:    90.0,
		FenceBase:         8.0,
		FenceDrainPerLine: 90.0,
		Call:              2.0,
	}
}

// CostOp is one PM operation kind in a hand-built event sequence priced
// by SequenceCost.
type CostOp int

// The sequence-cost operation kinds.
const (
	// CostStore is a cached PM store: the line turns dirty.
	CostStore CostOp = iota
	// CostNTStore is a non-temporal PM store: it bypasses the cache and
	// parks the line in the write-pending queue (born flushed).
	CostNTStore
	// CostFlush is a weakly-ordered flush (CLWB/CLFLUSHOPT): a dirty
	// line parks in the write-pending queue; re-flushing a parked or
	// clean line still pays issue latency but moves nothing.
	CostFlush
	// CostCLFlush is a strongly-ordered CLFLUSH: a pending line writes
	// back immediately.
	CostCLFlush
	// CostFence is SFENCE/MFENCE: it stalls for every parked line.
	CostFence
)

// CostEvent is one PM operation at a cache line. Line identifies the
// cache line operated on; its value only matters for equality between
// events.
type CostEvent struct {
	Op   CostOp
	Line uint64
}

// SequenceCost prices a PM event sequence under the model, mirroring the
// interpreter's accounting exactly: stores pay StorePM; flushes pay issue
// latency always and CLFLUSH write-back only when the line had pending
// content; fences pay FenceBase plus FenceDrainPerLine per parked line.
// This is the arithmetic behind the optimizer's per-edit savings
// estimates, kept separate so it can be unit-tested against hand-built
// traces.
func (c *CostModel) SequenceCost(evs []CostEvent) float64 {
	ns := 0.0
	dirty := make(map[uint64]bool)
	parked := make(map[uint64]bool)
	for _, e := range evs {
		switch e.Op {
		case CostStore:
			ns += c.StorePM
			dirty[e.Line] = true
		case CostNTStore:
			ns += c.StorePM
			parked[e.Line] = true
		case CostFlush:
			ns += c.Flush
			if dirty[e.Line] {
				delete(dirty, e.Line)
				parked[e.Line] = true
			}
		case CostCLFlush:
			ns += c.Flush
			if dirty[e.Line] || parked[e.Line] {
				ns += c.FlushWriteback
				delete(dirty, e.Line)
				delete(parked, e.Line)
			}
		case CostFence:
			ns += c.FenceBase + float64(len(parked))*c.FenceDrainPerLine
			for l := range parked {
				delete(parked, l)
			}
		}
	}
	return ns
}

// Clock accumulates simulated time.
type Clock struct {
	ns float64
}

// Advance adds ns nanoseconds.
func (c *Clock) Advance(ns float64) { c.ns += ns }

// Nanoseconds returns the elapsed simulated time.
func (c *Clock) Nanoseconds() float64 { return c.ns }

// Reset zeroes the clock.
func (c *Clock) Reset() { c.ns = 0 }
