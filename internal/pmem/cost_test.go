package pmem

import "testing"

// TestDefaultCostModelInvariants pins the relative shape the benchmarks
// and the optimizer's savings estimates depend on: everything
// non-negative, PM dearer than DRAM, flush issue latency well above a
// store, a draining fence dearer than an empty one, and a non-temporal
// store cheaper than the store+flush it replaces.
func TestDefaultCostModelInvariants(t *testing.T) {
	c := DefaultCostModel()
	fields := map[string]float64{
		"ALUOp": c.ALUOp, "LoadDRAM": c.LoadDRAM, "StoreDRAM": c.StoreDRAM,
		"LoadPM": c.LoadPM, "StorePM": c.StorePM, "Flush": c.Flush,
		"FlushWriteback": c.FlushWriteback, "FenceBase": c.FenceBase,
		"FenceDrainPerLine": c.FenceDrainPerLine, "Call": c.Call,
	}
	for name, v := range fields {
		if v < 0 {
			t.Errorf("%s = %v, want non-negative", name, v)
		}
	}
	if c.LoadPM <= c.LoadDRAM {
		t.Errorf("LoadPM %v <= LoadDRAM %v; PM reads must cost more", c.LoadPM, c.LoadDRAM)
	}
	if c.Flush <= c.StorePM {
		t.Errorf("Flush %v <= StorePM %v; flush issue latency must dominate a store", c.Flush, c.StorePM)
	}
	if c.FenceDrainPerLine <= c.FenceBase {
		t.Errorf("FenceDrainPerLine %v <= FenceBase %v; draining must dominate an empty fence", c.FenceDrainPerLine, c.FenceBase)
	}
	// NT-store vs flush ordering: persisting one line non-temporally
	// (ntstore; fence) must be cheaper than the cached path (store;
	// flush; fence) — the whole point of non-temporal writes.
	nt := c.SequenceCost([]CostEvent{{CostNTStore, 0}, {CostFence, 0}})
	cached := c.SequenceCost([]CostEvent{{CostStore, 0}, {CostFlush, 0}, {CostFence, 0}})
	if nt >= cached {
		t.Errorf("ntstore+fence = %v >= store+flush+fence = %v", nt, cached)
	}
}

// TestSequenceCost prices hand-built traces and checks the exact sums,
// so the optimizer's before/after deltas rest on tested arithmetic.
func TestSequenceCost(t *testing.T) {
	c := DefaultCostModel()
	cases := []struct {
		name string
		evs  []CostEvent
		want float64
	}{
		{"empty", nil, 0},
		{"store only", []CostEvent{{CostStore, 0}}, c.StorePM},
		{
			"persist one line",
			[]CostEvent{{CostStore, 0}, {CostFlush, 0}, {CostFence, 0}},
			c.StorePM + c.Flush + c.FenceBase + c.FenceDrainPerLine,
		},
		{
			// The redundant re-flush of a parked line pays issue latency
			// but adds nothing to the fence drain — exactly the waste the
			// optimizer deletes.
			"redundant double flush",
			[]CostEvent{{CostStore, 0}, {CostFlush, 0}, {CostFlush, 0}, {CostFence, 0}},
			c.StorePM + 2*c.Flush + c.FenceBase + c.FenceDrainPerLine,
		},
		{
			// A fence with nothing parked pays only the issue cost.
			"redundant fence",
			[]CostEvent{{CostStore, 0}, {CostFlush, 0}, {CostFence, 0}, {CostFence, 0}},
			c.StorePM + c.Flush + 2*c.FenceBase + c.FenceDrainPerLine,
		},
		{
			// Two dirty lines drain at one fence: per-line stall.
			"two lines one fence",
			[]CostEvent{
				{CostStore, 0}, {CostStore, 64},
				{CostFlush, 0}, {CostFlush, 64}, {CostFence, 0},
			},
			2*c.StorePM + 2*c.Flush + c.FenceBase + 2*c.FenceDrainPerLine,
		},
		{
			// Same-line flush coalescing in the write-pending queue: two
			// stores to one line, two flushes, still one drain.
			"same line coalesces",
			[]CostEvent{
				{CostStore, 0}, {CostFlush, 0}, {CostStore, 0}, {CostFlush, 0}, {CostFence, 0},
			},
			2*c.StorePM + 2*c.Flush + c.FenceBase + c.FenceDrainPerLine,
		},
		{
			// CLFLUSH commits immediately: write-back at the flush, then
			// the fence finds nothing parked. Re-CLFLUSHing a clean line
			// pays issue latency only.
			"clflush immediate",
			[]CostEvent{
				{CostStore, 0}, {CostCLFlush, 0}, {CostCLFlush, 0}, {CostFence, 0},
			},
			c.StorePM + 2*c.Flush + c.FlushWriteback + c.FenceBase,
		},
		{
			"ntstore parks without flush",
			[]CostEvent{{CostNTStore, 0}, {CostFence, 0}},
			c.StorePM + c.FenceBase + c.FenceDrainPerLine,
		},
	}
	for _, tc := range cases {
		if got := c.SequenceCost(tc.evs); got != tc.want {
			t.Errorf("%s: SequenceCost = %v, want %v", tc.name, got, tc.want)
		}
	}
}
