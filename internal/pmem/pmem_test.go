package pmem

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLineOf(t *testing.T) {
	cases := []struct{ addr, want uint64 }{
		{0, 0},
		{63, 0},
		{64, 64},
		{PMBase + 100, PMBase + 64},
		{PMBase + 128, PMBase + 128},
	}
	for _, c := range cases {
		if got := LineOf(c.addr); got != c.want {
			t.Errorf("LineOf(%#x) = %#x, want %#x", c.addr, got, c.want)
		}
	}
}

func TestRegionOf(t *testing.T) {
	cases := []struct {
		addr uint64
		want Region
	}{
		{0, RegionInvalid},
		{100, RegionInvalid},
		{NullGuardSize, RegionInvalid},
		{GlobalBase, RegionGlobal},
		{GlobalBase + 1000, RegionGlobal},
		{HeapBase, RegionHeap},
		{HeapBase + 1<<20, RegionHeap},
		{StackBase - 8, RegionStack},
		{StackBase - StackMax, RegionStack},
		{StackBase, RegionInvalid},
		{PMBase, RegionPM},
		{PMBase + DefaultPMSize - 1, RegionPM},
	}
	for _, c := range cases {
		if got := RegionOf(c.addr); got != c.want {
			t.Errorf("RegionOf(%#x) = %v, want %v", c.addr, got, c.want)
		}
	}
	if !IsPM(PMBase) || IsPM(HeapBase) {
		t.Error("IsPM misclassifies")
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	if m.Load8(12345) != 0 {
		t.Error("fresh memory must read zero")
	}
	m.Store8(12345, 0xAB)
	if m.Load8(12345) != 0xAB {
		t.Error("byte write lost")
	}
	m.WriteUint(HeapBase, 8, 0xDEADBEEFCAFE)
	if got := m.ReadUint(HeapBase, 8); got != 0xDEADBEEFCAFE {
		t.Errorf("ReadUint = %#x", got)
	}
	// Little-endian layout.
	if m.Load8(HeapBase) != 0xFE {
		t.Error("memory is not little-endian")
	}
	m.WriteUint(HeapBase+16, 1, 0x1FF)
	if got := m.ReadUint(HeapBase+16, 1); got != 0xFF {
		t.Errorf("1-byte ReadUint = %#x, want 0xff", got)
	}
}

func TestMemoryCrossPage(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize*3 - 4) // straddles a page boundary
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	m.Write(addr, src)
	dst := make([]byte, 8)
	m.Read(addr, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("cross-page read mismatch at %d: %v", i, dst)
		}
	}
	if got := m.ReadUint(addr, 8); got != 0x0807060504030201 {
		t.Errorf("cross-page ReadUint = %#x", got)
	}
}

func TestMemoryClone(t *testing.T) {
	m := NewMemory()
	m.WriteUint(PMBase, 8, 42)
	c := m.Clone()
	c.WriteUint(PMBase, 8, 99)
	if m.ReadUint(PMBase, 8) != 42 {
		t.Error("clone aliases original")
	}
	if !EqualRange(m, m.Clone(), PMBase, 4096) {
		t.Error("EqualRange(false negative)")
	}
	if EqualRange(m, c, PMBase, 4096) {
		t.Error("EqualRange(false positive)")
	}
}

func TestMemoryRoundTripQuick(t *testing.T) {
	m := NewMemory()
	f := func(off uint32, v uint64) bool {
		addr := HeapBase + uint64(off)
		m.WriteUint(addr, 8, v)
		return m.ReadUint(addr, 8) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func val(b ...byte) []byte { return b }

func TestTrackerMissingFlushFence(t *testing.T) {
	tr := NewTracker()
	tr.OnStore(1, PMBase, val(1, 2, 3, 4, 5, 6, 7, 8))
	vs := tr.OnCheckpoint(2)
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1", len(vs))
	}
	if vs[0].Class != MissingFlushFence {
		t.Errorf("class = %v, want missing-flush&fence", vs[0].Class)
	}
}

func TestTrackerMissingFence(t *testing.T) {
	tr := NewTracker()
	tr.OnStore(1, PMBase, val(9))
	tr.OnFlush(2, false, PMBase)
	vs := tr.OnCheckpoint(3)
	if len(vs) != 1 || vs[0].Class != MissingFence {
		t.Fatalf("violations = %+v, want one missing-fence", vs)
	}
}

func TestTrackerMissingFlush(t *testing.T) {
	// A fence exists after the store, but the store was never flushed:
	// inserting only a flush (before that fence) would fix it.
	tr := NewTracker()
	tr.OnStore(1, PMBase, val(9))
	tr.OnFence(2)
	vs := tr.OnCheckpoint(3)
	if len(vs) != 1 || vs[0].Class != MissingFlush {
		t.Fatalf("violations = %+v, want one missing-flush", vs)
	}
}

func TestTrackerProperPersist(t *testing.T) {
	tr := NewTracker()
	tr.OnStore(1, PMBase+8, val(1, 2, 3, 4, 5, 6, 7, 8))
	if n := tr.OnFlush(2, false, PMBase+8); n != 1 {
		t.Fatalf("flush moved %d stores, want 1", n)
	}
	if n := tr.OnFence(3); n != 1 {
		t.Fatalf("fence drained %d stores, want 1", n)
	}
	if vs := tr.OnCheckpoint(4); len(vs) != 0 {
		t.Fatalf("violations after persist = %+v", vs)
	}
	img := tr.DurableImage()
	if got := img.ReadUint(PMBase+8, 8); got != 0x0807060504030201 {
		t.Errorf("durable image = %#x", got)
	}
	if tr.DurableStores != 1 {
		t.Errorf("DurableStores = %d", tr.DurableStores)
	}
}

func TestTrackerCLFLUSHIsOrdered(t *testing.T) {
	// CLFLUSH needs no trailing fence.
	tr := NewTracker()
	tr.OnStore(1, PMBase, val(7))
	if n := tr.OnFlush(2, true, PMBase); n != 1 {
		t.Fatalf("clflush moved %d", n)
	}
	if vs := tr.OnCheckpoint(3); len(vs) != 0 {
		t.Fatalf("violations after clflush = %+v", vs)
	}
	if tr.DurableImage().Load8(PMBase) != 7 {
		t.Error("clflush did not commit the store")
	}
}

func TestTrackerNTStore(t *testing.T) {
	tr := NewTracker()
	tr.OnNTStore(1, PMBase, val(5))
	vs := tr.OnCheckpoint(2)
	if len(vs) != 1 || vs[0].Class != MissingFence {
		t.Fatalf("nt-store without fence: %+v, want missing-fence", vs)
	}
	tr.OnFence(3)
	if vs := tr.OnCheckpoint(4); len(vs) != 0 {
		t.Fatalf("nt-store after fence: %+v", vs)
	}
}

func TestTrackerFlushCoversWholeLine(t *testing.T) {
	tr := NewTracker()
	tr.OnStore(1, PMBase, val(1))
	tr.OnStore(2, PMBase+32, val(2))
	tr.OnStore(3, PMBase+64, val(3)) // a different line
	if n := tr.OnFlush(4, false, PMBase+16); n != 2 {
		t.Fatalf("flush moved %d stores, want 2 (whole line)", n)
	}
	tr.OnFence(5)
	vs := tr.OnCheckpoint(6)
	if len(vs) != 1 || vs[0].Store.Addr != PMBase+64 {
		t.Fatalf("violations = %+v, want only the second line's store", vs)
	}
}

func TestTrackerRedundantDiagnostics(t *testing.T) {
	tr := NewTracker()
	tr.OnFlush(1, false, PMBase) // nothing dirty
	if len(tr.RedundantFlushes) != 1 {
		t.Errorf("redundant flushes = %d, want 1", len(tr.RedundantFlushes))
	}
	tr.OnFence(2) // nothing flushed
	if tr.RedundantFences != 1 {
		t.Errorf("redundant fences = %d, want 1", tr.RedundantFences)
	}
	// A useful flush+fence is not redundant.
	tr.OnStore(3, PMBase, val(1))
	tr.OnFlush(4, false, PMBase)
	tr.OnFence(5)
	if len(tr.RedundantFlushes) != 1 || tr.RedundantFences != 1 {
		t.Error("useful flush/fence misreported as redundant")
	}
}

func TestTrackerExactOverwrite(t *testing.T) {
	tr := NewTracker()
	tr.OnStore(1, PMBase, val(1, 1, 1, 1, 1, 1, 1, 1))
	tr.OnStore(2, PMBase, val(2, 2, 2, 2, 2, 2, 2, 2))
	if tr.NumPending() != 1 {
		t.Fatalf("pending = %d, want 1 (exact overwrite replaces)", tr.NumPending())
	}
	tr.OnFlush(3, false, PMBase)
	tr.OnFence(4)
	if got := tr.DurableImage().Load8(PMBase); got != 2 {
		t.Errorf("durable byte = %d, want the newer store", got)
	}
}

func TestTrackerCrashImage(t *testing.T) {
	tr := NewTracker()
	// One durable store, one pending.
	tr.OnStore(1, PMBase, val(0xAA))
	tr.OnFlush(2, false, PMBase)
	tr.OnFence(3)
	tr.OnStore(4, PMBase+128, val(0xBB))

	none := tr.CrashImage(func(*TrackedStore) bool { return false })
	if none.Load8(PMBase) != 0xAA || none.Load8(PMBase+128) != 0 {
		t.Error("crash image without evictions must contain only durable bytes")
	}
	all := tr.CrashImage(func(*TrackedStore) bool { return true })
	if all.Load8(PMBase+128) != 0xBB {
		t.Error("crash image with all evictions must contain pending bytes")
	}
}

func TestTrackerCrashImageOrder(t *testing.T) {
	// Two pending stores to the same location: if both are kept, the
	// later one must win.
	tr := NewTracker()
	tr.OnStore(1, PMBase, val(1, 0, 0, 0, 0, 0, 0, 0))
	tr.OnStore(2, PMBase+1, val(9)) // different addr, same line; no replace
	img := tr.CrashImage(func(*TrackedStore) bool { return true })
	if img.Load8(PMBase) != 1 || img.Load8(PMBase+1) != 9 {
		t.Error("crash image does not apply stores in order")
	}
}

func TestTrackerStoreSpanningLinesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("store spanning cache lines must panic")
		}
	}()
	tr := NewTracker()
	tr.OnStore(1, PMBase+60, val(1, 2, 3, 4, 5, 6, 7, 8))
}

// TestTrackerQuickDurability is the detector-soundness property: after a
// random event sequence, a store is reported non-durable at a checkpoint
// if and only if a crash image that drops all pending stores loses its
// bytes.
func TestTrackerQuickDurability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTracker()
		type write struct {
			addr uint64
			data byte
			seq  int
		}
		var writes []write
		seq := 0
		for i := 0; i < 40; i++ {
			seq++
			switch rng.Intn(4) {
			case 0, 1:
				addr := PMBase + uint64(rng.Intn(8))*64 + uint64(rng.Intn(56))
				// Values must be pairwise distinct: a store that rewrites
				// a byte already durable at its address is still reported
				// non-durable (the detector does not compare values), but
				// losing it in a crash is invisible to this byte witness.
				b := byte(i + 1)
				tr.OnStore(seq, addr, []byte{b})
				writes = append(writes, write{addr, b, seq})
			case 2:
				tr.OnFlush(seq, false, PMBase+uint64(rng.Intn(8))*64)
			case 3:
				tr.OnFence(seq)
			}
		}
		seq++
		vs := tr.OnCheckpoint(seq)
		reported := map[uint64]bool{}
		for _, v := range vs {
			reported[v.Store.Addr] = true
		}
		img := tr.CrashImage(func(*TrackedStore) bool { return false })
		// For each address, find the last write; it must be present in
		// the no-eviction crash image iff it was not reported.
		last := map[uint64]write{}
		for _, w := range writes {
			last[w.addr] = w
		}
		for addr, w := range last {
			present := img.Load8(addr) == w.data
			if present == reported[addr] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(1.5)
	c.Advance(2.5)
	if c.Nanoseconds() != 4.0 {
		t.Errorf("clock = %v", c.Nanoseconds())
	}
	c.Reset()
	if c.Nanoseconds() != 0 {
		t.Error("reset failed")
	}
}

func TestDefaultCostModelShape(t *testing.T) {
	cm := DefaultCostModel()
	if cm.LoadPM <= cm.LoadDRAM {
		t.Error("PM loads must be slower than DRAM loads (Optane characteristic)")
	}
	if cm.Flush <= cm.StoreDRAM {
		t.Error("flushes must dominate plain stores")
	}
	if cm.FenceDrainPerLine <= 0 {
		t.Error("fences must pay per drained line")
	}
}

func TestDiffPM(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	if DiffPM(a, b) != 0 {
		t.Error("empty memories must not differ")
	}
	a.WriteUint(PMBase+128, 8, 0xABCD)
	if got := DiffPM(a, b); got != 2 {
		t.Errorf("diff = %d, want 2 bytes", got)
	}
	b.WriteUint(PMBase+128, 8, 0xABCD)
	if DiffPM(a, b) != 0 {
		t.Error("equal PM contents must not differ")
	}
	// The allocator metadata line is excluded.
	a.WriteUint(PMBase, 8, 999)
	if DiffPM(a, b) != 0 {
		t.Error("metadata line must be ignored")
	}
	// Volatile regions are ignored entirely.
	a.WriteUint(HeapBase, 8, 7)
	if DiffPM(a, b) != 0 {
		t.Error("volatile differences must be ignored")
	}
}

func TestSeedDurable(t *testing.T) {
	tr := NewTracker()
	tr.SeedDurable(PMBase+256, []byte{1, 2, 3})
	img := tr.DurableImage()
	if img.Load8(PMBase+256) != 1 || img.Load8(PMBase+258) != 3 {
		t.Error("seeded bytes missing from the durable image")
	}
	if tr.TotalStores != 0 || tr.DurableStores != 0 {
		t.Error("seeding must not count as program stores")
	}
}

func TestTrackedStoreAccessors(t *testing.T) {
	tr := NewTracker()
	st := tr.OnStore(1, PMBase+70, val(9, 9))
	if st.Size() != 2 {
		t.Errorf("size = %d", st.Size())
	}
	if st.Line() != PMBase+64 {
		t.Errorf("line = %#x", st.Line())
	}
	if st.State.String() != "dirty" {
		t.Errorf("state = %q", st.State)
	}
	tr.OnFlush(2, false, PMBase+70)
	if st.State.String() != "flushed" {
		t.Errorf("state = %q", st.State)
	}
	tr.OnFence(3)
	if st.State.String() != "durable" {
		t.Errorf("state = %q", st.State)
	}
}

func TestStringersAndErrors(t *testing.T) {
	for _, r := range []Region{RegionGlobal, RegionHeap, RegionStack, RegionPM, RegionInvalid} {
		if r.String() == "" {
			t.Errorf("region %d has no name", int(r))
		}
	}
	for _, c := range []BugClass{MissingFlush, MissingFence, MissingFlushFence} {
		if c.String() == "" {
			t.Errorf("class %d has no name", int(c))
		}
	}
	e := &AddrError{Addr: 0x10, Op: "store"}
	if !strings.Contains(e.Error(), "store") || !strings.Contains(e.Error(), "0x10") {
		t.Errorf("AddrError = %q", e)
	}
}

func TestReadWriteUintOddSizes(t *testing.T) {
	m := NewMemory()
	m.WriteUint(HeapBase+3, 4, 0xAABBCCDD)
	if got := m.ReadUint(HeapBase+3, 4); got != 0xAABBCCDD {
		t.Errorf("4-byte round trip = %#x", got)
	}
	m.WriteUint(HeapBase+100, 2, 0x1234)
	if got := m.ReadUint(HeapBase+100, 2); got != 0x1234 {
		t.Errorf("2-byte round trip = %#x", got)
	}
}
