package pmem

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSnapshotIsolation(t *testing.T) {
	m := NewMemory()
	m.Write(PMBase, []byte{1, 2, 3, 4})
	m.Write(PMBase+pageSize, []byte{9})

	snap := m.Snapshot()
	if got := snap.Load8(PMBase + 1); got != 2 {
		t.Fatalf("snapshot Load8 = %d, want 2", got)
	}
	if shared := m.stats.PagesShared.Load(); shared != 2 {
		t.Fatalf("PagesShared = %d, want 2", shared)
	}
	if copied := m.stats.PagesCopied.Load(); copied != 0 {
		t.Fatalf("PagesCopied = %d before any write, want 0", copied)
	}

	// A write on either side privatizes only the touched page.
	m.Store8(PMBase, 100)
	snap.Store8(PMBase+2, 200)
	if got := snap.Load8(PMBase); got != 1 {
		t.Errorf("snapshot saw the parent's post-snapshot write: %d", got)
	}
	if got := m.Load8(PMBase + 2); got != 3 {
		t.Errorf("parent saw the snapshot's write: %d", got)
	}
	if copied := m.stats.PagesCopied.Load(); copied != 2 {
		t.Errorf("PagesCopied = %d after one write per side, want 2", copied)
	}
	// The untouched second page is still physically shared.
	if m.lookup((PMBase+pageSize)/pageSize) != snap.lookup((PMBase+pageSize)/pageSize) {
		t.Error("untouched page was copied")
	}
}

func TestSnapshotTwiceStaysIsolated(t *testing.T) {
	m := NewMemory()
	m.Write(HeapBase, []byte{7})
	a := m.Snapshot()
	b := m.Snapshot()
	a.Store8(HeapBase, 1)
	b.Store8(HeapBase, 2)
	m.Store8(HeapBase, 3)
	if a.Load8(HeapBase) != 1 || b.Load8(HeapBase) != 2 || m.Load8(HeapBase) != 3 {
		t.Fatalf("sibling snapshots bleed: a=%d b=%d m=%d",
			a.Load8(HeapBase), b.Load8(HeapBase), m.Load8(HeapBase))
	}
}

func TestOverlayReadsThroughWritesUp(t *testing.T) {
	base := NewMemory()
	base.Write(PMBase, []byte{10, 20, 30})

	ov := base.Overlay()
	if got := ov.Load8(PMBase + 1); got != 20 {
		t.Fatalf("overlay read-through = %d, want 20", got)
	}
	ov.Store8(PMBase+1, 99)
	if got := base.Load8(PMBase + 1); got != 20 {
		t.Errorf("overlay write reached the frozen base: %d", got)
	}
	if got := ov.Load8(PMBase); got != 10 {
		t.Errorf("copy-up lost neighbouring bytes: %d", got)
	}
	// A write to a page absent from the base materializes fresh (no copy).
	before := base.stats.PagesCopied.Load()
	ov.Store8(PMBase+10*pageSize, 5)
	if base.stats.PagesCopied.Load() != before {
		t.Error("write to a base-absent page counted as a copy")
	}
}

func TestSnapshotOfOverlay(t *testing.T) {
	// The ImageBuilder pattern: snapshot the working overlay, keep
	// mutating the overlay, and the handed-out snapshot must not move.
	base := NewMemory()
	base.Write(PMBase+LineSize, []byte{1, 1, 1, 1})
	ov := base.Overlay()
	ov.Write(PMBase+LineSize, []byte{2, 2})

	img := ov.Snapshot()
	ov.Write(PMBase+LineSize, []byte{3, 3, 3})
	got := make([]byte, 4)
	img.Read(PMBase+LineSize, got)
	if !bytes.Equal(got, []byte{2, 2, 1, 1}) {
		t.Fatalf("snapshot moved under later overlay writes: % x", got)
	}
	// And the snapshot still reads the base through the chain.
	if img.Load8(PMBase+LineSize+3) != 1 {
		t.Error("snapshot lost read-through to the overlay's base")
	}
}

func TestCloneFlattensChain(t *testing.T) {
	base := NewMemory()
	base.Write(PMBase, []byte{1, 2, 3})
	ov := base.Overlay()
	ov.Store8(PMBase+1, 9)

	cl := ov.Clone()
	if cl.base != nil {
		t.Fatal("Clone kept a base chain")
	}
	want := []byte{1, 9, 3}
	got := make([]byte, 3)
	cl.Read(PMBase, got)
	if !bytes.Equal(got, want) {
		t.Fatalf("Clone content = % x, want % x", got, want)
	}
	cl.Store8(PMBase, 50)
	if base.Load8(PMBase) != 1 || ov.Load8(PMBase) != 1 {
		t.Error("Clone write reached the originals")
	}
}

// trackerScript drives a tracker through a deterministic little history
// that leaves several pending lines with multi-store sequences: the
// ground the hash/builder equivalence tests walk.
func trackerScript(t *testing.T) *Tracker {
	t.Helper()
	tr := NewTracker()
	seq := 0
	st := func(addr uint64, data ...byte) {
		tr.OnStore(seq, addr, data)
		seq++
	}
	// Durable prefix: two committed lines.
	st(PMBase+LineSize, 0xAA, 0xBB)
	st(PMBase+2*LineSize+8, 0xCC)
	tr.OnFlush(seq, false, PMBase+LineSize)
	seq++
	tr.OnFlush(seq, false, PMBase+2*LineSize)
	seq++
	tr.OnFence(seq)
	seq++
	// Pending tail: three lines, one of them overwriting durable bytes,
	// one with a multi-store sequence including an intra-line overwrite.
	st(PMBase+LineSize, 0x11, 0x22)      // overwrites durable content
	st(PMBase+3*LineSize, 1)             // fresh line, single store
	st(PMBase+4*LineSize, 5, 6, 7, 8)    // fresh line, sequence of 3
	st(PMBase+4*LineSize+8, 0xde, 0xad)  //
	st(PMBase+4*LineSize, 9, 10, 11, 12) // exact overwrite collapses
	st(PMBase+4*LineSize+16, 0xfe)       //
	if got := len(tr.PendingLines()); got != 3 {
		t.Fatalf("script left %d pending lines, want 3", got)
	}
	return tr
}

// captureOf builds the CrashState for a raw tracker (no interpreter, so
// the metadata line is whatever the durable image holds — i.e. empty).
func captureOf(tr *Tracker) *CrashState {
	cs := tr.CaptureCrashState()
	cs.Meta = make([]byte, LineSize)
	cs.Durable.Read(PMBase, cs.Meta)
	return cs
}

// imagesEqual is full byte equality over PM including the metadata line
// (DiffPM alone skips it).
func imagesEqual(a, b *Memory) bool {
	return DiffPM(a, b) == 0 && EqualRange(a, b, PMBase, LineSize)
}

func TestHashCutsMatchesImageContent(t *testing.T) {
	tr := trackerScript(t)
	cs := captureOf(tr)
	sizes := make([]int, len(cs.Lines))
	for i, pl := range cs.Lines {
		sizes[i] = len(pl.Stores)
	}

	// Enumerate every feasible schedule; byte-identical CrashImagePrefix
	// images must hash equal, distinct images must hash distinct (these
	// are a handful of images — a collision here is a bug, not bad luck).
	type entry struct {
		cuts []int
		img  *Memory
		hash uint64
	}
	var all []entry
	var rec func(cuts []int, i int)
	rec = func(cuts []int, i int) {
		if i == len(sizes) {
			c := append([]int(nil), cuts...)
			all = append(all, entry{cuts: c, img: tr.CrashImagePrefix(c), hash: cs.HashCuts(c)})
			return
		}
		for v := 0; v <= sizes[i]; v++ {
			rec(append(cuts, v), i+1)
		}
	}
	rec(nil, 0)

	for i := range all {
		for j := i + 1; j < len(all); j++ {
			same := imagesEqual(all[i].img, all[j].img)
			hashSame := all[i].hash == all[j].hash
			if same != hashSame {
				t.Fatalf("cuts %v vs %v: bytes-equal=%v but hash-equal=%v",
					all[i].cuts, all[j].cuts, same, hashSame)
			}
		}
	}
}

func TestHashCutsClampsLikeCrashImagePrefix(t *testing.T) {
	tr := trackerScript(t)
	cs := captureOf(tr)
	// Out-of-range and short vectors clamp to the same image, so the same
	// hash.
	base := cs.HashCuts(nil)
	if got := cs.HashCuts([]int{0, 0, 0}); got != base {
		t.Error("explicit zero cuts hash differently from nil")
	}
	if got := cs.HashCuts([]int{-5, 0}); got != base {
		t.Error("negative cuts do not clamp to zero")
	}
	allMax := make([]int, len(cs.Lines))
	for i, pl := range cs.Lines {
		allMax[i] = len(pl.Stores)
	}
	over := []int{99, 99, 99}
	if cs.HashCuts(over) != cs.HashCuts(allMax) {
		t.Error("over-length cuts do not clamp to the line size")
	}
}

func TestImageBuilderMatchesCrashImagePrefix(t *testing.T) {
	tr := trackerScript(t)
	cs := captureOf(tr)
	sizes := make([]int, len(cs.Lines))
	for i, pl := range cs.Lines {
		sizes[i] = len(pl.Stores)
	}
	b := cs.NewBuilder()
	rng := rand.New(rand.NewSource(7))
	// Random walk through schedule space, including clamped vectors:
	// after every Seek the builder's image must byte-match the deep
	// reference construction.
	for step := 0; step < 60; step++ {
		cuts := make([]int, len(sizes))
		for i := range cuts {
			cuts[i] = rng.Intn(sizes[i]+3) - 1 // includes -1 and size+1
		}
		b.Seek(cuts)
		got := b.Image()
		want := tr.CrashImagePrefix(cuts)
		if !imagesEqual(got, want) {
			t.Fatalf("step %d cuts %v: builder image diverges from CrashImagePrefix (%d PM bytes differ)",
				step, cuts, DiffPM(got, want))
		}
		if b.Hash() != cs.HashCuts(cuts) {
			t.Fatalf("step %d: builder hash disagrees with HashCuts", step)
		}
	}
}

func TestBuilderImagesStayPristine(t *testing.T) {
	tr := trackerScript(t)
	cs := captureOf(tr)
	b := cs.NewBuilder()
	one := make([]int, len(cs.Lines))
	for i := range one {
		one[i] = 1
	}
	b.Seek(one)
	img := b.Image()
	ref := tr.CrashImagePrefix(one)
	// Later seeks and recovery-style writes to a second image must not
	// disturb the first handed-out image.
	b.Seek(make([]int, len(cs.Lines)))
	img2 := b.Image()
	img2.Store8(PMBase+3*LineSize, 0x77)
	if !imagesEqual(img, ref) {
		t.Fatal("handed-out image changed under later Seek/writes")
	}
}
