// Package pmem models the persistent-memory hardware that the paper's
// evaluation runs on: a byte-addressable PM range behind a write-back CPU
// cache. The model implements the durability semantics of §2.1/§4.2 of the
// Hippocrates paper — stores to PM are volatile until the affected cache
// line is flushed (CLWB/CLFLUSHOPT/CLFLUSH) and, for the weakly-ordered
// flush flavours, a store fence (SFENCE/MFENCE) retires the flush. The
// package provides the sparse simulated memory, the per-store durability
// tracker (the same state machine pmemcheck implements over Valgrind), the
// crash-image generator used by the "do no harm" property tests, and the
// latency cost model used by the performance experiments (Fig. 4).
package pmem

import "fmt"

// LineSize is the CPU cache-line size in bytes; flushes operate on
// LineSize-aligned lines.
const LineSize = 64

// LineOf returns the base address of the cache line containing addr.
func LineOf(addr uint64) uint64 { return addr &^ (LineSize - 1) }

// The simulated address-space layout. The regions are deliberately far
// apart so out-of-bounds arithmetic faults instead of silently crossing a
// region boundary.
const (
	// NullGuardSize: addresses below this fault, so null-pointer
	// dereferences (and small offsets from null) are caught.
	NullGuardSize = 1 << 16

	// GlobalBase is where volatile globals are placed.
	GlobalBase = 0x0000_1000_0000

	// HeapBase is where malloc carves volatile allocations from.
	HeapBase = 0x0000_4000_0000

	// StackBase is where the (downward-growing) stack starts; the stack
	// region is [StackBase-StackMax, StackBase).
	StackBase = 0x0000_8000_0000

	// StackMax is the maximum stack depth in bytes.
	StackMax = 0x1000_0000

	// PMBase is the start of the persistent-memory range; pm globals and
	// pm_alloc allocations live here.
	PMBase = 0x1000_0000_0000

	// DefaultPMSize is the default capacity of the PM range.
	DefaultPMSize = 1 << 30
)

// Region classifies an address.
type Region int

// The address-space regions.
const (
	RegionInvalid Region = iota
	RegionGlobal
	RegionHeap
	RegionStack
	RegionPM
)

func (r Region) String() string {
	switch r {
	case RegionGlobal:
		return "global"
	case RegionHeap:
		return "heap"
	case RegionStack:
		return "stack"
	case RegionPM:
		return "pm"
	}
	return "invalid"
}

// RegionOf classifies addr by the layout above.
func RegionOf(addr uint64) Region {
	switch {
	case addr < NullGuardSize:
		return RegionInvalid
	case addr >= PMBase:
		return RegionPM
	case addr >= StackBase:
		return RegionInvalid // between the stack top and PM
	case addr >= StackBase-StackMax:
		return RegionStack // stack grows down from StackBase
	case addr >= HeapBase:
		return RegionHeap
	case addr >= GlobalBase:
		return RegionGlobal
	default:
		return RegionInvalid // between the null guard and the globals
	}
}

// IsPM reports whether addr is in the persistent range.
func IsPM(addr uint64) bool { return addr >= PMBase }

// AddrError is returned for invalid memory accesses.
type AddrError struct {
	Addr uint64
	Op   string
}

func (e *AddrError) Error() string {
	return fmt.Sprintf("pmem: invalid %s at address %#x (%s region)", e.Op, e.Addr, RegionOf(e.Addr))
}
