package pmem

import (
	"encoding/binary"
	"sync/atomic"
)

// pageSize is the granularity of the sparse backing store.
const pageSize = 1 << 12

// CowStats aggregates copy-on-write page accounting for one snapshot
// family (every Memory derived from the same root shares one). The
// fields are atomic because image overlays derived from a shared frozen
// base may be written from concurrent crash-validation workers.
type CowStats struct {
	// Snapshots counts Snapshot calls in the family.
	Snapshots atomic.Int64
	// PagesShared counts page references handed out by Snapshot instead
	// of deep-copied.
	PagesShared atomic.Int64
	// PagesCopied counts pages that were privatized by a write (the
	// actual copy work the family ever paid).
	PagesCopied atomic.Int64
}

// Memory is a sparse byte-addressable memory covering the whole simulated
// address space. Pages materialize (zeroed) on first touch; reads of
// untouched pages return zeros without allocating.
//
// Snapshots are copy-on-write: Snapshot shares every current page with
// the new Memory and the first write on either side privatizes the
// touched page. Overlay layers an empty page map over a frozen base, so
// many images can share one durable base; the base must not be written
// while overlays of it are live.
type Memory struct {
	pages map[uint64]*[pageSize]byte
	// shared marks pages co-owned with a snapshot: a write must copy the
	// page before mutating it. Allocated lazily.
	shared map[uint64]bool
	// base is the frozen lower layer for overlays (nil for roots).
	// Reads fall through to it; writes copy the page up.
	base *Memory
	// stats is the family-wide COW accounting.
	stats *CowStats
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte), stats: new(CowStats)}
}

// Stats returns the COW accounting shared by this memory's whole
// snapshot family.
func (m *Memory) Stats() *CowStats { return m.stats }

// lookup finds the page through the base chain without materializing or
// privatizing anything.
func (m *Memory) lookup(pn uint64) *[pageSize]byte {
	for mm := m; mm != nil; mm = mm.base {
		if pg, ok := mm.pages[pn]; ok {
			return pg
		}
	}
	return nil
}

func (m *Memory) page(addr uint64, create bool) (*[pageSize]byte, uint64) {
	pn := addr / pageSize
	off := addr % pageSize
	if pg, ok := m.pages[pn]; ok {
		if create && m.shared[pn] {
			// Copy-on-write: privatize the page co-owned with a snapshot.
			cp := new([pageSize]byte)
			*cp = *pg
			m.pages[pn] = cp
			delete(m.shared, pn)
			m.stats.PagesCopied.Add(1)
			return cp, off
		}
		return pg, off
	}
	if m.base != nil {
		if bp := m.base.lookup(pn); bp != nil {
			if !create {
				return bp, off
			}
			// Copy-up: writes never reach the frozen base.
			cp := new([pageSize]byte)
			*cp = *bp
			m.pages[pn] = cp
			m.stats.PagesCopied.Add(1)
			return cp, off
		}
	}
	if !create {
		return nil, off
	}
	pg := new([pageSize]byte)
	m.pages[pn] = pg
	return pg, off
}

// Snapshot returns a copy-on-write copy of the memory: both sides keep
// reading the shared pages for free and the first write to a page (from
// either side) copies just that page. The receiver and the snapshot must
// be used from a single goroutine each unless neither is written.
func (m *Memory) Snapshot() *Memory {
	nm := &Memory{
		pages: make(map[uint64]*[pageSize]byte, len(m.pages)),
		base:  m.base,
		stats: m.stats,
	}
	if len(m.pages) > 0 {
		nm.shared = make(map[uint64]bool, len(m.pages))
		if m.shared == nil {
			m.shared = make(map[uint64]bool, len(m.pages))
		}
		for pn, pg := range m.pages {
			nm.pages[pn] = pg
			nm.shared[pn] = true
			m.shared[pn] = true
		}
	}
	m.stats.Snapshots.Add(1)
	m.stats.PagesShared.Add(int64(len(m.pages)))
	return nm
}

// Overlay returns an empty memory layered over m: reads fall through to
// m, writes copy the touched page up into the overlay. The base must not
// be written while the overlay is live; a frozen base may back any
// number of concurrent overlays (each overlay is single-goroutine).
func (m *Memory) Overlay() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte), base: m, stats: m.stats}
}

// forEachPage calls fn once per materialized page whose base address is
// >= from, walking the union over the base chain (upper layers win).
// Iteration order is unspecified.
func (m *Memory) forEachPage(from uint64, fn func(pageAddr uint64, pg *[pageSize]byte)) {
	var seen map[uint64]bool
	if m.base != nil {
		seen = make(map[uint64]bool)
	}
	for mm := m; mm != nil; mm = mm.base {
		for pn, pg := range mm.pages {
			if pn*pageSize < from || seen[pn] {
				continue
			}
			if seen != nil {
				seen[pn] = true
			}
			fn(pn*pageSize, pg)
		}
	}
}

// Load8 reads one byte.
func (m *Memory) Load8(addr uint64) byte {
	pg, off := m.page(addr, false)
	if pg == nil {
		return 0
	}
	return pg[off]
}

// Store8 writes one byte.
func (m *Memory) Store8(addr uint64, v byte) {
	pg, off := m.page(addr, true)
	pg[off] = v
}

// Read copies len(dst) bytes starting at addr into dst.
func (m *Memory) Read(addr uint64, dst []byte) {
	for len(dst) > 0 {
		pg, off := m.page(addr, false)
		n := pageSize - int(off)
		if n > len(dst) {
			n = len(dst)
		}
		if pg == nil {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		} else {
			copy(dst[:n], pg[off:int(off)+n])
		}
		dst = dst[n:]
		addr += uint64(n)
	}
}

// Write copies src into memory starting at addr.
func (m *Memory) Write(addr uint64, src []byte) {
	for len(src) > 0 {
		pg, off := m.page(addr, true)
		n := pageSize - int(off)
		if n > len(src) {
			n = len(src)
		}
		copy(pg[off:int(off)+n], src[:n])
		src = src[n:]
		addr += uint64(n)
	}
}

// ReadUint reads a little-endian unsigned integer of the given byte size
// (1 or 8).
func (m *Memory) ReadUint(addr uint64, size int) uint64 {
	switch size {
	case 1:
		return uint64(m.Load8(addr))
	case 8:
		var buf [8]byte
		m.Read(addr, buf[:])
		return binary.LittleEndian.Uint64(buf[:])
	default:
		var buf [8]byte
		m.Read(addr, buf[:size])
		v := uint64(0)
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(buf[i])
		}
		return v
	}
}

// WriteUint writes a little-endian unsigned integer of the given byte size.
func (m *Memory) WriteUint(addr uint64, size int, v uint64) {
	switch size {
	case 1:
		m.Store8(addr, byte(v))
	case 8:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		m.Write(addr, buf[:])
	default:
		var buf [8]byte
		for i := 0; i < size; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		m.Write(addr, buf[:size])
	}
}

// Clone deep-copies the memory, flattening any base chain into a fresh
// root. Snapshot is almost always the better choice; Clone remains the
// reference semantics the COW equivalence tests compare against.
func (m *Memory) Clone() *Memory {
	nm := NewMemory()
	m.forEachPage(0, func(addr uint64, pg *[pageSize]byte) {
		cp := new([pageSize]byte)
		*cp = *pg
		nm.pages[addr/pageSize] = cp
	})
	return nm
}

// DiffPM counts bytes that differ between two memories over the
// persistent range, skipping the reserved allocator-metadata line. It
// walks the union of both memories' materialized PM pages, so sparse
// images compare cheaply.
func DiffPM(a, b *Memory) int {
	pages := map[uint64]bool{}
	a.forEachPage(PMBase, func(addr uint64, _ *[pageSize]byte) { pages[addr/pageSize] = true })
	b.forEachPage(PMBase, func(addr uint64, _ *[pageSize]byte) { pages[addr/pageSize] = true })
	diff := 0
	bufA := make([]byte, pageSize)
	bufB := make([]byte, pageSize)
	for pn := range pages {
		addr := pn * pageSize
		a.Read(addr, bufA)
		b.Read(addr, bufB)
		start := 0
		if addr == PMBase {
			start = LineSize // allocator metadata line
		}
		for i := start; i < pageSize; i++ {
			if bufA[i] != bufB[i] {
				diff++
			}
		}
	}
	return diff
}

// EqualRange reports whether two memories hold identical bytes over
// [addr, addr+n).
func EqualRange(a, b *Memory, addr, n uint64) bool {
	const chunk = 4096
	bufA := make([]byte, chunk)
	bufB := make([]byte, chunk)
	for n > 0 {
		c := uint64(chunk)
		if c > n {
			c = n
		}
		a.Read(addr, bufA[:c])
		b.Read(addr, bufB[:c])
		for i := uint64(0); i < c; i++ {
			if bufA[i] != bufB[i] {
				return false
			}
		}
		addr += c
		n -= c
	}
	return true
}
