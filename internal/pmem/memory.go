package pmem

import "encoding/binary"

// pageSize is the granularity of the sparse backing store.
const pageSize = 1 << 12

// Memory is a sparse byte-addressable memory covering the whole simulated
// address space. Pages materialize (zeroed) on first touch; reads of
// untouched pages return zeros without allocating.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, create bool) (*[pageSize]byte, uint64) {
	pn := addr / pageSize
	pg, ok := m.pages[pn]
	if !ok && create {
		pg = new([pageSize]byte)
		m.pages[pn] = pg
	}
	return pg, addr % pageSize
}

// Load8 reads one byte.
func (m *Memory) Load8(addr uint64) byte {
	pg, off := m.page(addr, false)
	if pg == nil {
		return 0
	}
	return pg[off]
}

// Store8 writes one byte.
func (m *Memory) Store8(addr uint64, v byte) {
	pg, off := m.page(addr, true)
	pg[off] = v
}

// Read copies len(dst) bytes starting at addr into dst.
func (m *Memory) Read(addr uint64, dst []byte) {
	for len(dst) > 0 {
		pg, off := m.page(addr, false)
		n := pageSize - int(off)
		if n > len(dst) {
			n = len(dst)
		}
		if pg == nil {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		} else {
			copy(dst[:n], pg[off:int(off)+n])
		}
		dst = dst[n:]
		addr += uint64(n)
	}
}

// Write copies src into memory starting at addr.
func (m *Memory) Write(addr uint64, src []byte) {
	for len(src) > 0 {
		pg, off := m.page(addr, true)
		n := pageSize - int(off)
		if n > len(src) {
			n = len(src)
		}
		copy(pg[off:int(off)+n], src[:n])
		src = src[n:]
		addr += uint64(n)
	}
}

// ReadUint reads a little-endian unsigned integer of the given byte size
// (1 or 8).
func (m *Memory) ReadUint(addr uint64, size int) uint64 {
	switch size {
	case 1:
		return uint64(m.Load8(addr))
	case 8:
		var buf [8]byte
		m.Read(addr, buf[:])
		return binary.LittleEndian.Uint64(buf[:])
	default:
		var buf [8]byte
		m.Read(addr, buf[:size])
		v := uint64(0)
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(buf[i])
		}
		return v
	}
}

// WriteUint writes a little-endian unsigned integer of the given byte size.
func (m *Memory) WriteUint(addr uint64, size int, v uint64) {
	switch size {
	case 1:
		m.Store8(addr, byte(v))
	case 8:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		m.Write(addr, buf[:])
	default:
		var buf [8]byte
		for i := 0; i < size; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		m.Write(addr, buf[:size])
	}
}

// Clone deep-copies the memory (used to snapshot durable images).
func (m *Memory) Clone() *Memory {
	nm := NewMemory()
	for pn, pg := range m.pages {
		cp := new([pageSize]byte)
		*cp = *pg
		nm.pages[pn] = cp
	}
	return nm
}

// DiffPM counts bytes that differ between two memories over the
// persistent range, skipping the reserved allocator-metadata line. It
// walks the union of both memories' materialized PM pages, so sparse
// images compare cheaply.
func DiffPM(a, b *Memory) int {
	pages := map[uint64]bool{}
	for pn := range a.pages {
		if pn*pageSize >= PMBase {
			pages[pn] = true
		}
	}
	for pn := range b.pages {
		if pn*pageSize >= PMBase {
			pages[pn] = true
		}
	}
	diff := 0
	bufA := make([]byte, pageSize)
	bufB := make([]byte, pageSize)
	for pn := range pages {
		addr := pn * pageSize
		a.Read(addr, bufA)
		b.Read(addr, bufB)
		start := 0
		if addr == PMBase {
			start = LineSize // allocator metadata line
		}
		for i := start; i < pageSize; i++ {
			if bufA[i] != bufB[i] {
				diff++
			}
		}
	}
	return diff
}

// EqualRange reports whether two memories hold identical bytes over
// [addr, addr+n).
func EqualRange(a, b *Memory, addr, n uint64) bool {
	const chunk = 4096
	bufA := make([]byte, chunk)
	bufB := make([]byte, chunk)
	for n > 0 {
		c := uint64(chunk)
		if c > n {
			c = n
		}
		a.Read(addr, bufA[:c])
		b.Read(addr, bufB[:c])
		for i := uint64(0); i < c; i++ {
			if bufA[i] != bufB[i] {
				return false
			}
		}
		addr += c
		n -= c
	}
	return true
}
