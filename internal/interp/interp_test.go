package interp

import (
	"strings"
	"testing"

	"hippocrates/internal/ir"
	"hippocrates/internal/pmem"
	"hippocrates/internal/trace"
)

// newModule builds a module with the standard declarations installed.
func newModule(name string) *ir.Module {
	m := ir.NewModule(name)
	for _, d := range StdDecls() {
		m.AddFunc(d)
	}
	return m
}

func run(t *testing.T, m *ir.Module, entry string, args ...uint64) (*Machine, uint64) {
	t.Helper()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("module does not verify: %v", err)
	}
	mach, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ret, err := mach.Run(entry, args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return mach, ret
}

func TestArithmetic(t *testing.T) {
	m := newModule("arith")
	f := ir.NewFunc("main", ir.I64)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	x := ir.ConstInt(10)
	y := ir.ConstInt(3)
	add := b.Bin(ir.OpAdd, ir.I64, x, y)                 // 13
	sub := b.Bin(ir.OpSub, ir.I64, add, y)               // 10
	mul := b.Bin(ir.OpMul, ir.I64, sub, y)               // 30
	div := b.Bin(ir.OpSDiv, ir.I64, mul, ir.ConstInt(7)) // 4
	rem := b.Bin(ir.OpSRem, ir.I64, mul, ir.ConstInt(7)) // 2
	or := b.Bin(ir.OpOr, ir.I64, div, rem)               // 6
	shl := b.Bin(ir.OpShl, ir.I64, or, ir.ConstInt(2))   // 24
	shr := b.Bin(ir.OpAShr, ir.I64, shl, ir.ConstInt(1)) // 12
	xor := b.Bin(ir.OpXor, ir.I64, shr, ir.ConstInt(5))  // 9
	and := b.Bin(ir.OpAnd, ir.I64, xor, ir.ConstInt(13)) // 9
	b.Ret(and)
	f.Renumber()
	_, got := run(t, m, "main")
	if got != 9 {
		t.Errorf("main() = %d, want 9", got)
	}
}

func TestNegativeDivision(t *testing.T) {
	m := newModule("neg")
	f := ir.NewFunc("main", ir.I64)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	div := b.Bin(ir.OpSDiv, ir.I64, ir.ConstInt(-7), ir.ConstInt(2))
	rem := b.Bin(ir.OpSRem, ir.I64, ir.ConstInt(-7), ir.ConstInt(2))
	sum := b.Bin(ir.OpAdd, ir.I64, div, rem) // -3 + -1 = -4
	b.Ret(sum)
	f.Renumber()
	_, got := run(t, m, "main")
	if int64(got) != -4 {
		t.Errorf("main() = %d, want -4 (Go-style truncated division)", int64(got))
	}
}

func TestDivisionByZeroFaults(t *testing.T) {
	m := newModule("divzero")
	f := ir.NewFunc("main", ir.I64, &ir.Param{Name: "d", Ty: ir.I64})
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	div := b.Bin(ir.OpSDiv, ir.I64, ir.ConstInt(1), f.Params[0])
	b.Ret(div)
	f.Renumber()
	mach, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run("main", 0); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v, want division by zero", err)
	}
}

func TestControlFlowLoop(t *testing.T) {
	// sum 1..n via a loop through memory (alloca + load/store).
	m := newModule("loop")
	f := ir.NewFunc("sum", ir.I64, &ir.Param{Name: "n", Ty: ir.I64})
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	acc := b.Alloca(ir.I64)
	i := b.Alloca(ir.I64)
	b.Store(ir.I64, ir.ConstInt(0), acc)
	b.Store(ir.I64, ir.ConstInt(1), i)
	cond := b.NewBlock("cond")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Jmp(cond)
	b.SetBlock(cond)
	iv := b.Load(ir.I64, i)
	c := b.Cmp(ir.OpLe, iv, f.Params[0])
	b.Br(c, body, exit)
	b.SetBlock(body)
	av := b.Load(ir.I64, acc)
	sum := b.Bin(ir.OpAdd, ir.I64, av, iv)
	b.Store(ir.I64, sum, acc)
	inc := b.Bin(ir.OpAdd, ir.I64, iv, ir.ConstInt(1))
	b.Store(ir.I64, inc, i)
	b.Jmp(cond)
	b.SetBlock(exit)
	res := b.Load(ir.I64, acc)
	b.Ret(res)
	f.Renumber()
	_, got := run(t, m, "sum", 100)
	if got != 5050 {
		t.Errorf("sum(100) = %d, want 5050", got)
	}
}

func TestCallsAndRecursion(t *testing.T) {
	// fib(n) with recursion.
	m := newModule("fib")
	f := ir.NewFunc("fib", ir.I64, &ir.Param{Name: "n", Ty: ir.I64})
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	c := b.Cmp(ir.OpLt, f.Params[0], ir.ConstInt(2))
	base := b.NewBlock("base")
	rec := b.NewBlock("rec")
	b.Br(c, base, rec)
	b.SetBlock(base)
	b.Ret(f.Params[0])
	b.SetBlock(rec)
	n1 := b.Bin(ir.OpSub, ir.I64, f.Params[0], ir.ConstInt(1))
	n2 := b.Bin(ir.OpSub, ir.I64, f.Params[0], ir.ConstInt(2))
	r1 := b.Call(f, n1)
	r2 := b.Call(f, n2)
	b.Ret(b.Bin(ir.OpAdd, ir.I64, r1, r2))
	f.Renumber()
	_, got := run(t, m, "fib", 15)
	if got != 610 {
		t.Errorf("fib(15) = %d, want 610", got)
	}
}

func TestGlobalsAndInit(t *testing.T) {
	m := newModule("globals")
	m.AddGlobal(&ir.Global{Name: "counter", Elem: ir.I64, Init: []byte{5, 0, 0, 0, 0, 0, 0, 0}})
	f := ir.NewFunc("main", ir.I64)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	g := m.Global("counter")
	v := b.Load(ir.I64, g)
	nv := b.Bin(ir.OpAdd, ir.I64, v, ir.ConstInt(1))
	b.Store(ir.I64, nv, g)
	b.Ret(b.Load(ir.I64, g))
	f.Renumber()
	_, got := run(t, m, "main")
	if got != 6 {
		t.Errorf("main() = %d, want 6", got)
	}
}

func TestCasts(t *testing.T) {
	m := newModule("casts")
	f := ir.NewFunc("main", ir.I64)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	tr := b.Cast(ir.OpTrunc, ir.I8, ir.ConstInt(0x1ABC)) // 0xBC
	z := b.Cast(ir.OpZExt, ir.I64, tr)                   // 0xBC = 188
	p := b.Cast(ir.OpIntToPtr, ir.Ptr, ir.ConstInt(pmem.HeapBase))
	back := b.Cast(ir.OpPtrToInt, ir.I64, p)
	diff := b.Bin(ir.OpSub, ir.I64, back, ir.ConstInt(pmem.HeapBase))
	b.Ret(b.Bin(ir.OpAdd, ir.I64, z, diff))
	f.Renumber()
	_, got := run(t, m, "main")
	if got != 188 {
		t.Errorf("main() = %d, want 188", got)
	}
}

// buildPersistStore builds:
//
//	func main() { g[0] = 42; [flush] [fence] }
//
// with a PM global, optionally flushing/fencing.
func buildPersistStore(flush, fence bool) *ir.Module {
	m := newModule("persist")
	m.AddGlobal(&ir.Global{Name: "cell", Elem: ir.I64, PM: true})
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	b.SetLoc(ir.Loc{File: "persist.pmc", Line: 2})
	g := m.Global("cell")
	b.Store(ir.I64, ir.ConstInt(42), g)
	if flush {
		b.SetLoc(ir.Loc{File: "persist.pmc", Line: 3})
		b.Flush(ir.CLWB, g)
	}
	if fence {
		b.SetLoc(ir.Loc{File: "persist.pmc", Line: 4})
		b.Fence(ir.SFENCE)
	}
	b.Ret(nil)
	f.Renumber()
	return m
}

func TestPMStoreTracked(t *testing.T) {
	m := buildPersistStore(true, true)
	mach, _ := run(t, m, "main")
	if len(mach.Violations) != 0 {
		t.Fatalf("violations = %+v, want none", mach.Violations)
	}
	addr := mach.GlobalAddr("cell")
	if got := mach.Track.DurableImage().ReadUint(addr, 8); got != 42 {
		t.Errorf("durable cell = %d, want 42", got)
	}
}

func TestPMStoreMissingFlushFence(t *testing.T) {
	m := buildPersistStore(false, false)
	mach, _ := run(t, m, "main")
	if len(mach.Violations) != 1 || mach.Violations[0].Class != pmem.MissingFlushFence {
		t.Fatalf("violations = %+v, want one missing-flush&fence", mach.Violations)
	}
}

func TestPMStoreMissingFence(t *testing.T) {
	m := buildPersistStore(true, false)
	mach, _ := run(t, m, "main")
	if len(mach.Violations) != 1 || mach.Violations[0].Class != pmem.MissingFence {
		t.Fatalf("violations = %+v, want one missing-fence", mach.Violations)
	}
}

func TestTraceRecording(t *testing.T) {
	m := buildPersistStore(true, true)
	tr := &trace.Trace{Program: "persist"}
	mach, err := New(m, Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run("main"); err != nil {
		t.Fatal(err)
	}
	kinds := []trace.Kind{}
	for _, e := range tr.Events {
		kinds = append(kinds, e.Kind)
	}
	want := []trace.Kind{trace.KindAlloc, trace.KindStore, trace.KindFlush, trace.KindFence, trace.KindCheckpoint}
	if len(kinds) != len(want) {
		t.Fatalf("trace kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("trace kinds = %v, want %v", kinds, want)
		}
	}
	if a := tr.Events[0]; a.Sym != "cell" || a.Size != 8 {
		t.Errorf("alloc event = %+v", a)
	}
	st := tr.Events[1]
	if st.Size != 8 || len(st.Stack) != 1 || st.Stack[0].Func != "main" {
		t.Errorf("store event = %+v", st)
	}
	if st.Stack[0].Loc != (ir.Loc{File: "persist.pmc", Line: 2}) {
		t.Errorf("store loc = %v", st.Stack[0].Loc)
	}
	// The trace serializes and parses back.
	back, err := trace.ParseString(tr.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Error("serialized trace lost events")
	}
}

func TestStackTraceDepth(t *testing.T) {
	// main -> outer -> inner(store) must produce a 3-frame stack.
	m := newModule("stacks")
	m.AddGlobal(&ir.Global{Name: "cell", Elem: ir.I64, PM: true})
	inner := ir.NewFunc("inner", ir.Void)
	m.AddFunc(inner)
	{
		b := ir.NewBuilder(inner)
		b.Store(ir.I64, ir.ConstInt(1), m.Global("cell"))
		b.Ret(nil)
		inner.Renumber()
	}
	outer := ir.NewFunc("outer", ir.Void)
	m.AddFunc(outer)
	{
		b := ir.NewBuilder(outer)
		b.Call(inner)
		b.Ret(nil)
		outer.Renumber()
	}
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	{
		b := ir.NewBuilder(f)
		b.Call(outer)
		b.Ret(nil)
		f.Renumber()
	}
	tr := &trace.Trace{}
	mach, err := New(m, Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run("main"); err != nil {
		t.Fatal(err)
	}
	st := tr.Stores()
	if len(st) != 1 {
		t.Fatalf("stores = %d", len(st))
	}
	stack := st[0].Stack
	if len(stack) != 3 {
		t.Fatalf("stack depth = %d, want 3 (%+v)", len(stack), stack)
	}
	if stack[0].Func != "inner" || stack[1].Func != "outer" || stack[2].Func != "main" {
		t.Errorf("stack = %+v", stack)
	}
	// The outer frames must reference the call instructions.
	if m.Func("outer").InstrByID(stack[1].InstrID).Op != ir.OpCall {
		t.Error("outer frame does not point at the call instruction")
	}
}

func TestBuiltinsAllocAndMemops(t *testing.T) {
	m := newModule("allocs")
	f := ir.NewFunc("main", ir.I64)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	heap := b.Call(m.Func("malloc"), ir.ConstInt(64))
	pm := b.Call(m.Func("pm_alloc"), ir.ConstInt(64))
	b.Store(ir.I64, ir.ConstInt(0x11223344), heap)
	b.Call(m.Func("memcpy"), pm, heap, ir.ConstInt(16))
	b.Call(m.Func("memset"), heap, ir.ConstInt(0xFF), ir.ConstInt(8))
	v1 := b.Load(ir.I64, pm)
	v2 := b.Load(ir.I64, heap)
	// Flush + fence the PM line so no violations occur.
	b.Flush(ir.CLWB, pm)
	pm2 := b.PtrAdd(pm, ir.ConstInt(0), 0, 8)
	b.Flush(ir.CLWB, pm2)
	b.Fence(ir.SFENCE)
	sum := b.Bin(ir.OpAdd, ir.I64, v1, v2)
	b.Ret(sum)
	f.Renumber()
	mach, got := run(t, m, "main")
	var allOnes uint64 = 0xFFFFFFFFFFFFFFFF
	want := uint64(0x11223344) + allOnes
	if got != want {
		t.Errorf("main() = %#x, want %#x", got, want)
	}
	if len(mach.Violations) != 0 {
		t.Errorf("violations = %+v", mach.Violations)
	}
	// PM allocations are cache-line aligned.
	if a := mach.Track.DurableImage(); a == nil {
		t.Error("no durable image")
	}
}

func TestPMAllocAlignment(t *testing.T) {
	m := newModule("align")
	f := ir.NewFunc("main", ir.I64)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	p1 := b.Call(m.Func("pm_alloc"), ir.ConstInt(1))
	p2 := b.Call(m.Func("pm_alloc"), ir.ConstInt(1))
	diff := b.Bin(ir.OpSub, ir.I64, b.Cast(ir.OpPtrToInt, ir.I64, p2), b.Cast(ir.OpPtrToInt, ir.I64, p1))
	b.Ret(diff)
	f.Renumber()
	_, got := run(t, m, "main")
	if got != pmem.LineSize {
		t.Errorf("pm_alloc spacing = %d, want %d (line aligned)", got, pmem.LineSize)
	}
}

func TestCheckpointBuiltin(t *testing.T) {
	// A store that is durable before the checkpoint but a second store
	// that is not: exactly one violation at the checkpoint, one more at
	// program end (same store).
	m := newModule("ckpt")
	m.AddGlobal(&ir.Global{Name: "a", Elem: ir.I64, PM: true})
	m.AddGlobal(&ir.Global{Name: "b", Elem: ir.I64, PM: true})
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	b.Store(ir.I64, ir.ConstInt(1), m.Global("a"))
	b.Flush(ir.CLWB, m.Global("a"))
	b.Fence(ir.SFENCE)
	b.Store(ir.I64, ir.ConstInt(2), m.Global("b"))
	b.Call(m.Func("pm_checkpoint"))
	b.Ret(nil)
	f.Renumber()
	mach, _ := run(t, m, "main")
	if len(mach.Violations) != 2 { // once at checkpoint, once at exit
		t.Fatalf("violations = %+v, want 2 (same store at two durability points)", mach.Violations)
	}
	addrB := mach.GlobalAddr("b")
	for _, v := range mach.Violations {
		if v.Store.Addr != addrB {
			t.Errorf("violation for %#x, want %#x", v.Store.Addr, addrB)
		}
	}
}

func TestPMGlobalInitIsDurable(t *testing.T) {
	m := newModule("pminit")
	m.AddGlobal(&ir.Global{Name: "magic", Elem: ir.I64, PM: true, Init: []byte{0xEF, 0xBE, 0, 0, 0, 0, 0, 0}})
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	b.Ret(nil)
	f.Renumber()
	mach, _ := run(t, m, "main")
	addr := mach.GlobalAddr("magic")
	if got := mach.Track.DurableImage().ReadUint(addr, 8); got != 0xBEEF {
		t.Errorf("durable init = %#x, want 0xBEEF", got)
	}
}

func TestRestartResumesPMState(t *testing.T) {
	// Run once, persist a root object, crash-free; then restart on the
	// durable image and verify pm_root returns the same address with the
	// data intact, and pm_alloc does not hand out overlapping memory.
	build := func() *ir.Module {
		m := newModule("restart")
		f := ir.NewFunc("main", ir.I64)
		m.AddFunc(f)
		b := ir.NewBuilder(f)
		root := b.Call(m.Func("pm_root"), ir.ConstInt(64))
		b.Store(ir.I64, ir.ConstInt(777), root)
		b.Flush(ir.CLWB, root)
		b.Fence(ir.SFENCE)
		b.Ret(b.Cast(ir.OpPtrToInt, ir.I64, root))
		f.Renumber()
		return m
	}
	m1 := build()
	mach1, err := New(m1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rootAddr, err := mach1.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	img := mach1.Track.DurableImage()
	// Copy the allocator metadata line (hardware-consistent, untracked).
	meta := make([]byte, pmem.LineSize)
	mach1.Mem.Read(pmem.PMBase, meta)
	img.Write(pmem.PMBase, meta)

	// Restart: read the root back.
	m2 := newModule("restart2")
	f2 := ir.NewFunc("main", ir.I64)
	m2.AddFunc(f2)
	b2 := ir.NewBuilder(f2)
	root2 := b2.Call(m2.Func("pm_root"), ir.ConstInt(64))
	fresh := b2.Call(m2.Func("pm_alloc"), ir.ConstInt(8))
	diff := b2.Bin(ir.OpSub, ir.I64, b2.Cast(ir.OpPtrToInt, ir.I64, fresh), b2.Cast(ir.OpPtrToInt, ir.I64, root2))
	ok := b2.Cmp(ir.OpGt, diff, ir.ConstInt(0))
	okWide := b2.Cast(ir.OpZExt, ir.I64, ok)
	val := b2.Load(ir.I64, root2)
	sum := b2.Bin(ir.OpAdd, ir.I64, val, okWide)
	b2.Ret(sum)
	f2.Renumber()
	mach2, err := New(m2, Options{Memory: img, ResumePM: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := mach2.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if got != 778 { // 777 from the root + 1 for fresh>root
		t.Errorf("restart main() = %d, want 778", got)
	}
	if mach2.rootAddr != rootAddr {
		t.Errorf("root moved across restart: %#x vs %#x", mach2.rootAddr, rootAddr)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name string
		prep func(m *ir.Module)
		want string
	}{
		{
			name: "null store",
			prep: func(m *ir.Module) {
				f := ir.NewFunc("main", ir.Void)
				m.AddFunc(f)
				b := ir.NewBuilder(f)
				b.Store(ir.I64, ir.ConstInt(1), ir.Null())
				b.Ret(nil)
				f.Renumber()
			},
			want: "invalid store",
		},
		{
			name: "null load",
			prep: func(m *ir.Module) {
				f := ir.NewFunc("main", ir.I64)
				m.AddFunc(f)
				b := ir.NewBuilder(f)
				b.Ret(b.Load(ir.I64, ir.Null()))
				f.Renumber()
			},
			want: "invalid load",
		},
		{
			name: "abort",
			prep: func(m *ir.Module) {
				m.AddGlobal(&ir.Global{Name: "msg", Elem: ir.Array(ir.I8, 5), Init: []byte("boom\x00")})
				f := ir.NewFunc("main", ir.Void)
				m.AddFunc(f)
				b := ir.NewBuilder(f)
				b.Call(m.Func("abort_msg"), m.Global("msg"))
				b.Ret(nil)
				f.Renumber()
			},
			want: "boom",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := newModule("err")
			c.prep(m)
			if err := ir.Verify(m); err != nil {
				t.Fatal(err)
			}
			mach, err := New(m, Options{})
			if err != nil {
				t.Fatal(err)
			}
			_, err = mach.Run("main")
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want mention of %q", err, c.want)
			}
		})
	}
}

func TestStepLimit(t *testing.T) {
	m := newModule("inf")
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	loop := b.NewBlock("loop")
	b.Jmp(loop)
	b.SetBlock(loop)
	b.Jmp(loop)
	f.Renumber()
	mach, err := New(m, Options{StepLimit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run("main"); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("err = %v, want step limit", err)
	}
}

func TestPrintBuiltins(t *testing.T) {
	m := newModule("print")
	m.AddGlobal(&ir.Global{Name: "s", Elem: ir.Array(ir.I8, 3), Init: []byte("hi\x00")})
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	b.Call(m.Func("print_int"), ir.ConstInt(-42))
	b.Call(m.Func("print_str"), m.Global("s"))
	b.Ret(nil)
	f.Renumber()
	var out strings.Builder
	mach, err := New(m, Options{Stdout: &out})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run("main"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "-42\nhi\n" {
		t.Errorf("stdout = %q", out.String())
	}
}

func TestSimTimeAdvances(t *testing.T) {
	m := buildPersistStore(true, true)
	mach, _ := run(t, m, "main")
	if mach.SimTime() <= 0 {
		t.Error("simulated clock did not advance")
	}
	if mach.Steps() == 0 {
		t.Error("step counter did not advance")
	}
	// A fenced flush must cost more than the bare store sequence.
	m2 := buildPersistStore(false, false)
	mach2, _ := run(t, m2, "main")
	if mach.SimTime() <= mach2.SimTime() {
		t.Errorf("flush+fence (%v ns) should cost more than bare store (%v ns)",
			mach.SimTime(), mach2.SimTime())
	}
}

func TestMemcpyChunkingNeverSpansLines(t *testing.T) {
	// memcpy of 200 bytes at an unaligned PM offset must produce chunked
	// store events that the tracker accepts (it panics on line-spanning
	// stores) and that cover every byte.
	m := newModule("chunks")
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	pm := b.Call(m.Func("pm_alloc"), ir.ConstInt(256))
	heap := b.Call(m.Func("malloc"), ir.ConstInt(256))
	b.Call(m.Func("memset"), heap, ir.ConstInt(0xAB), ir.ConstInt(200))
	dst := b.PtrAdd(pm, ir.ConstInt(0), 0, 3) // unaligned
	b.Call(m.Func("memcpy"), dst, heap, ir.ConstInt(200))
	b.Ret(nil)
	f.Renumber()
	tr := &trace.Trace{}
	mach, err := New(m, Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run("main"); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, e := range tr.Stores() {
		total += e.Size
		if pmem.LineOf(e.Addr) != pmem.LineOf(e.Addr+uint64(e.Size)-1) {
			t.Errorf("store event spans lines: %+v", e)
		}
	}
	if total != 200 {
		t.Errorf("chunked stores cover %d bytes, want 200", total)
	}
}

func TestCrashAtCheckpoint(t *testing.T) {
	// Two explicit durability points plus the implicit one at exit.
	m := newModule("crash")
	m.AddGlobal(&ir.Global{Name: "a", Elem: ir.I64, PM: true})
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	g := m.Global("a")
	b.Store(ir.I64, ir.ConstInt(1), g)
	b.Flush(ir.CLWB, g)
	b.Fence(ir.SFENCE)
	b.Call(m.Func("pm_checkpoint"))
	b.Store(ir.I64, ir.ConstInt(2), g)
	b.Call(m.Func("pm_checkpoint"))
	b.Ret(nil)
	f.Renumber()

	// Crash at the first checkpoint: only the first store is durable.
	mach, err := New(m, Options{CrashAtCheckpoint: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = mach.Run("main")
	if err == nil || !strings.Contains(err.Error(), "simulated crash") {
		t.Fatalf("err = %v, want simulated crash", err)
	}
	if mach.Checkpoints() != 1 {
		t.Errorf("checkpoints = %d, want 1", mach.Checkpoints())
	}
	img := mach.CrashImage(nil)
	if got := img.ReadUint(mach.GlobalAddr("a"), 8); got != 1 {
		t.Errorf("crashed image a = %d, want 1", got)
	}

	// Crash at the second: the unflushed second store is lost.
	mach2, err := New(m, Options{CrashAtCheckpoint: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach2.Run("main"); err == nil {
		t.Fatal("expected crash at checkpoint 2")
	}
	if got := mach2.CrashImage(nil).ReadUint(mach2.GlobalAddr("a"), 8); got != 1 {
		t.Errorf("crashed image a = %d, want 1 (second store volatile)", got)
	}
	// Eager eviction may land the second store.
	all := mach2.CrashImage(func(*pmem.TrackedStore) bool { return true })
	if got := all.ReadUint(mach2.GlobalAddr("a"), 8); got != 2 {
		t.Errorf("evicted image a = %d, want 2", got)
	}

	// No crash configured: the run completes, counting all 3 points.
	mach3, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach3.Run("main"); err != nil {
		t.Fatal(err)
	}
	if mach3.Checkpoints() != 3 {
		t.Errorf("checkpoints = %d, want 3 (two explicit + exit)", mach3.Checkpoints())
	}
}

func TestFlushRangeBuiltin(t *testing.T) {
	m := newModule("flushrange")
	f := ir.NewFunc("main", ir.Void)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	pm := b.Call(m.Func("pm_alloc"), ir.ConstInt(256))
	heap := b.Call(m.Func("malloc"), ir.ConstInt(256))
	b.Call(m.Func("memset"), pm, ir.ConstInt(5), ir.ConstInt(200))
	b.Call(m.Func("flush_range"), pm, ir.ConstInt(200))
	// Flushing volatile memory is harmless (and costs only issue time).
	b.Call(m.Func("flush_range"), heap, ir.ConstInt(200))
	b.Fence(ir.SFENCE)
	b.Ret(nil)
	f.Renumber()
	mach, _ := run(t, m, "main")
	if n := len(mach.Violations); n != 0 {
		t.Errorf("violations = %d after flush_range+fence", n)
	}
	if mach.Track.NumPending() != 0 {
		t.Errorf("pending = %d", mach.Track.NumPending())
	}
}

func TestStackReuseAcrossCalls(t *testing.T) {
	// A function that allocates a big frame must not leak stack across
	// thousands of sequential calls (regression: frames without allocas
	// once wedged the watermark).
	m := newModule("stackreuse")
	noalloc := ir.NewFunc("noalloc", ir.Void)
	m.AddFunc(noalloc)
	{
		b := ir.NewBuilder(noalloc)
		b.Ret(nil)
		noalloc.Renumber()
	}
	big := ir.NewFunc("big", ir.I64)
	m.AddFunc(big)
	{
		b := ir.NewBuilder(big)
		b.Call(noalloc)
		buf := b.Alloca(ir.Array(ir.I64, 1024))
		b.Store(ir.I64, ir.ConstInt(9), buf)
		b.Ret(b.Load(ir.I64, buf))
		big.Renumber()
	}
	f := ir.NewFunc("main", ir.I64)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	acc := b.Alloca(ir.I64)
	b.Store(ir.I64, ir.ConstInt(0), acc)
	i := b.Alloca(ir.I64)
	b.Store(ir.I64, ir.ConstInt(0), i)
	cond := b.NewBlock("cond")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Jmp(cond)
	b.SetBlock(cond)
	iv := b.Load(ir.I64, i)
	c := b.Cmp(ir.OpLt, iv, ir.ConstInt(5000))
	b.Br(c, body, exit)
	b.SetBlock(body)
	v := b.Call(big)
	av := b.Load(ir.I64, acc)
	b.Store(ir.I64, b.Bin(ir.OpAdd, ir.I64, av, v), acc)
	b.Store(ir.I64, b.Bin(ir.OpAdd, ir.I64, iv, ir.ConstInt(1)), i)
	b.Jmp(cond)
	b.SetBlock(exit)
	b.Ret(b.Load(ir.I64, acc))
	f.Renumber()
	_, got := run(t, m, "main")
	if got != 9*5000 {
		t.Errorf("main() = %d, want %d", got, 9*5000)
	}
}

func TestMachinesShareModulesReadOnly(t *testing.T) {
	// Several machines may execute the same module concurrently (the
	// Fig. 4 harness runs one per build in parallel); execution must not
	// mutate shared module state. Run with -race to enforce.
	m := buildPersistStore(true, true)
	// One Renumber up front leaves the module clean; concurrent New()
	// calls then perform no writes.
	for _, f := range m.Funcs {
		if !f.IsDecl() {
			f.Renumber()
		}
	}
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			mach, err := New(m, Options{})
			if err != nil {
				done <- err
				return
			}
			_, err = mach.Run("main")
			done <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
