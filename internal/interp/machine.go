// Package interp executes IR modules on the simulated persistent-memory
// machine (internal/pmem). It plays the role that native execution under
// pmemcheck/Valgrind plays in the paper: it runs the program, applies the
// durability state machine to every PM operation, accumulates simulated
// time from the cost model, and (optionally) records the pmemcheck-style
// event trace that the bug detector and the fixer consume.
package interp

import (
	"fmt"
	"io"
	"time"

	"hippocrates/internal/ir"
	"hippocrates/internal/pmem"
	"hippocrates/internal/trace"
)

// Options configures a Machine.
type Options struct {
	// Cost is the latency model; nil selects pmem.DefaultCostModel.
	Cost *pmem.CostModel
	// Trace, when non-nil, receives every PM event.
	Trace *trace.Trace
	// Stdout receives output from the print builtins; nil discards it.
	Stdout io.Writer
	// StepLimit bounds executed instructions (0 means the 100M default).
	// Exceeding it returns a *LimitError.
	StepLimit int64
	// Deadline, when non-zero, is the wall-clock instant after which
	// execution aborts with a *LimitError. The check runs every few
	// thousand instructions, so overshoot is bounded and the hot loop
	// stays branch-cheap.
	Deadline time.Time
	// Memory, when non-nil, is used as the machine's memory instead of a
	// fresh one — pass a crash image here to run recovery code. With
	// ResumePM set, persistent globals are not re-initialized (their
	// bytes are whatever the image holds), matching a restart on real
	// hardware.
	Memory   *pmem.Memory
	ResumePM bool
	// CrashAtCheckpoint, when positive, aborts execution with
	// ErrSimulatedCrash at the Nth durability point (1-based). The
	// machine's tracker then holds the exact durability state at the
	// crash, ready for CrashImage — the Yat-style exhaustive
	// crash-testing hook.
	CrashAtCheckpoint int
	// CrashAtEvent, when positive, aborts execution with
	// ErrSimulatedCrash immediately after the Nth PM event boundary
	// (1-based over stores, NT-stores, flushes, fences, and durability
	// points — the numbering PMEventLog reports). The event's tracker
	// effect has already been applied when the crash fires, so the
	// machine holds the exact durability state an eviction-order
	// enumerator needs (see internal/crashsim).
	CrashAtEvent int
	// OnPMEvent, when non-nil, is called at every PM event boundary
	// after the event's tracker effect has been applied (and before
	// CrashAtEvent is considered): k is the 1-based event index — the
	// CrashAtEvent coordinate — and kind the event's kind. Returning a
	// non-nil error aborts the run with it. The hook may capture
	// durability state (CaptureCrashState) but must not otherwise mutate
	// the machine; it lets one workload execution stand in for a
	// re-execution per crash point.
	OnPMEvent func(k int, kind PMEventKind) error
	// Schedule replays a scheduling-decision prefix for multi-threaded
	// programs: entry i is the choice taken at the i-th decision point
	// (an index into that point's runnable-thread list). Beyond the
	// prefix the scheduler continues round-robin. Nil/empty is pure
	// round-robin. Single-threaded programs never consult it. See
	// ScheduleID/ParseScheduleID for the textual form.
	Schedule []int
	// NoTrack disables durability tracking: the machine runs with a nil
	// Track, records no violations, and cannot capture crash images
	// (CrashImage, CrashImageCuts, CaptureCrashState panic). Memory
	// semantics are unchanged — stores still hit Mem — only the shadow
	// durability state is skipped. Crash-validation recovery boots use
	// this: they only need the entry's verdict, and the tracker's
	// per-store records are the bulk of a boot's allocation.
	NoTrack bool
}

// ErrSimulatedCrash is returned by Run when Options.CrashAtCheckpoint or
// Options.CrashAtEvent fires. The machine remains inspectable.
var ErrSimulatedCrash = fmt.Errorf("interp: simulated crash at durability point")

// LimitError reports that execution exceeded a configured resource
// limit: the instruction budget (Options.StepLimit) or the wall-clock
// deadline (Options.Deadline). It is how adversarial or generated
// programs fail — a typed, recoverable error rather than a hang.
type LimitError struct {
	// Resource is "steps" or "deadline".
	Resource string
	// Steps is the instruction count when the limit fired.
	Steps int64
	// Limit is the configured step budget (Resource == "steps").
	Limit int64
	// Stack is the simulated call stack at the point of interruption.
	Stack []trace.Frame
}

func (e *LimitError) Error() string {
	var s string
	if e.Resource == "deadline" {
		s = fmt.Sprintf("interp: wall-clock deadline exceeded after %d steps", e.Steps)
	} else {
		s = fmt.Sprintf("interp: step limit exceeded (%d)", e.Limit)
	}
	for _, f := range e.Stack {
		s += "\n\tat " + f.String()
	}
	return s
}

// PMEventKind identifies one PM event boundary for crash injection.
type PMEventKind uint8

// The PM event boundary kinds, in the order PMEventLog reports them.
const (
	EvStore PMEventKind = iota
	EvNTStore
	EvFlush
	EvFence
	EvCheckpoint
)

// numPMEventKinds sizes dense per-kind counter arrays.
const numPMEventKinds = int(EvCheckpoint) + 1

func (k PMEventKind) String() string {
	switch k {
	case EvStore:
		return "store"
	case EvNTStore:
		return "nt-store"
	case EvFlush:
		return "flush"
	case EvFence:
		return "fence"
	case EvCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Builtin is the signature of a registered external function.
type Builtin func(m *Machine, args []uint64) (uint64, error)

// Machine executes one module instance.
type Machine struct {
	Mod   *ir.Module
	Mem   *pmem.Memory
	Track *pmem.Tracker
	Clock pmem.Clock

	// Violations collects durability violations observed online at
	// checkpoints (the detector recomputes them offline from the trace).
	Violations []pmem.Violation

	opts     Options
	cost     *pmem.CostModel
	builtins map[string]Builtin

	globalAddr map[string]uint64
	heapNext   uint64
	pmNext     uint64
	rootAddr   uint64
	rootSize   uint64

	frames    []*frame
	framePool []*frame
	// mt is the scheduler state, allocated lazily on first spawn;
	// single-threaded runs keep it nil and skip every scheduling branch.
	mt *mtState
	// stackBase/stackLimit bound the running thread's simulated stack
	// segment (the whole stack until a spawn partitions it).
	stackBase  uint64
	stackLimit uint64
	// threadEv counts PM event boundaries per thread and kind, feeding
	// the per-thread observability counters.
	threadEv    [][numPMEventKinds]int64
	seq         int
	steps       int64
	max         int64
	deadline    time.Time
	hasDeadline bool
	checkpoints int

	// pmEventLog records the kind of every PM event boundary, one byte
	// per event; its length is the CrashAtEvent coordinate space.
	pmEventLog []PMEventKind

	// events and frameArena are chunked arenas for trace recording:
	// Event records and stack-frame slices are carved from block
	// allocations, so a traced run pays amortized chunk allocations
	// instead of two heap allocations per PM event. Untraced runs touch
	// neither (emit elides the Event entirely).
	events    eventArena
	frameBuf  []trace.Frame
	frameUsed int

	// ops counts executed instructions per opcode. A dense array indexed
	// by ir.Op keeps the dispatch-loop cost to one increment; the map view
	// is built on demand by OpcodeCounts.
	ops [ir.NumOps]int64
}

type frame struct {
	fn *ir.Func
	// regs is the dense register file: parameters first, then
	// result-producing instructions, indexed by ir's Renumber slots.
	regs []uint64
	cur  *ir.Instr // instruction being executed (for stack traces)

	// Stack allocation bookkeeping: allocas carve from
	// [stackTop-stackUsed, stackTop); storage is reclaimed on return.
	stackTop  uint64
	stackUsed uint64
}

func (f *frame) stackLow() uint64 { return f.stackTop - f.stackUsed }

// getFrame recycles call frames: register slots need no clearing because
// well-formed IR defines every value before its first use.
func (m *Machine) getFrame(fn *ir.Func) *frame {
	var f *frame
	if n := len(m.framePool); n > 0 {
		f = m.framePool[n-1]
		m.framePool = m.framePool[:n-1]
	} else {
		f = &frame{}
	}
	f.fn = fn
	f.cur = nil
	f.stackTop = 0
	f.stackUsed = 0
	if cap(f.regs) >= fn.NumSlots() {
		f.regs = f.regs[:fn.NumSlots()]
	} else {
		f.regs = make([]uint64, fn.NumSlots())
	}
	return f
}

// RuntimeError is an execution fault with the simulated call stack.
type RuntimeError struct {
	Msg   string
	Stack []trace.Frame
}

func (e *RuntimeError) Error() string {
	s := "interp: " + e.Msg
	for _, f := range e.Stack {
		s += "\n\tat " + f.String()
	}
	return s
}

// New prepares a machine: lays out globals, seeds PM initializers as
// durable content, and registers the standard builtins.
func New(mod *ir.Module, opts Options) (*Machine, error) {
	m := &Machine{
		Mod:        mod,
		opts:       opts,
		cost:       opts.Cost,
		builtins:   make(map[string]Builtin),
		globalAddr: make(map[string]uint64),
		heapNext:   pmem.HeapBase,
		max:        opts.StepLimit,
		deadline:   opts.Deadline,
		stackBase:  pmem.StackBase,
		stackLimit: pmem.StackBase - pmem.StackMax,
	}
	if !opts.NoTrack {
		m.Track = pmem.NewTracker()
	}
	m.hasDeadline = !opts.Deadline.IsZero()
	if m.cost == nil {
		m.cost = pmem.DefaultCostModel()
	}
	if m.max == 0 {
		m.max = 100_000_000
	}
	if opts.Memory != nil {
		m.Mem = opts.Memory
	} else {
		m.Mem = pmem.NewMemory()
	}
	registerStdBuiltins(m)

	// The interpreter addresses values by their dense Renumber slots;
	// normalize any function mutated (or never numbered) since its last
	// Renumber. Clean modules see no writes here, so independent machines
	// may share them across goroutines.
	for _, f := range mod.Funcs {
		if !f.IsDecl() && f.NeedsRenumber() {
			f.Renumber()
		}
	}

	// Lay out globals: volatile ones from GlobalBase, persistent ones
	// from PMBase (after one reserved allocator-metadata line).
	volNext := uint64(pmem.GlobalBase)
	pmNext := uint64(pmem.PMBase) + pmem.LineSize
	for _, g := range mod.Globals {
		size := uint64(g.Elem.Size())
		align := uint64(g.Elem.Align())
		if g.PM && align < pmem.LineSize {
			// PM objects are cache-line aligned (as PMDK allocates),
			// so a single object never shares a line with another.
			align = pmem.LineSize
		}
		var addr uint64
		if g.PM {
			pmNext = alignUp(pmNext, align)
			addr = pmNext
			pmNext += size
		} else {
			volNext = alignUp(volNext, align)
			addr = volNext
			volNext += size
		}
		m.globalAddr[g.Name] = addr
		if g.PM {
			// Announce the persistent region to the trace (bug finders
			// know registered pools; Trace-AA consumes these events).
			m.emit(nil, trace.Event{Kind: trace.KindAlloc, Addr: addr, Size: int(size), Sym: g.Name})
		}
		if g.PM && opts.ResumePM {
			// A restart: PM contents come from the supplied image.
			continue
		}
		if len(g.Init) > 0 {
			m.Mem.Write(addr, g.Init)
		}
		if g.PM && m.Track != nil {
			// Pre-existing PM content is durable by definition.
			m.Track.SeedDurable(addr, initImage(g))
		}
	}
	m.pmNext = alignUp(pmNext, pmem.LineSize)
	if opts.ResumePM {
		// The allocator cursor survives in its reserved metadata line.
		if cur := m.Mem.ReadUint(pmem.PMBase, 8); cur != 0 {
			m.pmNext = cur
		}
	} else {
		m.Mem.WriteUint(pmem.PMBase, 8, m.pmNext)
	}
	return m, nil
}

func initImage(g *ir.Global) []byte {
	img := make([]byte, g.Elem.Size())
	copy(img, g.Init)
	return img
}

func alignUp(n, a uint64) uint64 {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// RegisterBuiltin installs (or overrides) an external function handler.
func (m *Machine) RegisterBuiltin(name string, fn Builtin) { m.builtins[name] = fn }

// GlobalAddr returns the simulated address of a global.
func (m *Machine) GlobalAddr(name string) uint64 {
	a, ok := m.globalAddr[name]
	if !ok {
		panic("interp: unknown global @" + name)
	}
	return a
}

// Run executes the named entry function with integer/pointer arguments and
// returns its result. The end of the entry function is an implicit
// durability point: like pmemcheck, every PM store must be durable when
// the program exits.
func (m *Machine) Run(entry string, args ...uint64) (uint64, error) {
	fn := m.Mod.Func(entry)
	if fn == nil {
		return 0, fmt.Errorf("interp: no entry function @%s", entry)
	}
	if fn.IsDecl() {
		return 0, fmt.Errorf("interp: entry @%s is a declaration", entry)
	}
	if len(args) != len(fn.Params) {
		return 0, fmt.Errorf("interp: entry @%s takes %d arguments, got %d", entry, len(fn.Params), len(args))
	}
	ret, err := m.runMain(fn, args)
	if err == nil && m.mt != nil {
		// pthread semantics without detach: every spawned thread must be
		// joined (or at least have finished) before main returns.
		for _, t := range m.mt.threads[1:] {
			if t.state != thDone {
				err = &RuntimeError{Msg: fmt.Sprintf("main returned with thread %d still running", t.tid)}
				break
			}
		}
	}
	// Tear down any threads still parked (error paths and unjoined
	// threads); a clean run has none and this is a no-op.
	m.killThreads()
	if err != nil {
		return 0, err
	}
	// Implicit final durability point.
	if err := m.checkpoint(nil); err != nil {
		return 0, err
	}
	return ret, nil
}

// runMain executes the entry function on the calling goroutine (thread
// 0) and converts a scheduler teardown unwind into the run's verdict.
func (m *Machine) runMain(fn *ir.Func, args []uint64) (ret uint64, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSentinel); !ok {
				panic(r)
			}
			ret, err = 0, m.mt.err
		}
	}()
	return m.call(fn, args)
}

// CrashImage builds a possible post-crash PM image: the durable bytes,
// plus the pending stores chosen by keep (any subset may have been evicted
// to PM before the crash), plus the allocator's reserved metadata line
// (which the simulated hardware keeps consistent on its own). Pass the
// image to a new Machine with Options{Memory: img, ResumePM: true} to run
// recovery code against it.
func (m *Machine) CrashImage(keep func(*pmem.TrackedStore) bool) *pmem.Memory {
	if keep == nil {
		keep = func(*pmem.TrackedStore) bool { return false }
	}
	img := m.Track.CrashImage(keep)
	return m.stampMeta(img)
}

// CrashImageCuts builds the post-crash PM image for one specific crash
// schedule under the per-line prefix model: cuts[i] is how many of the
// i-th pending line's stores (in Track.PendingLines order) reached PM
// before the crash. Like CrashImage, the allocator's reserved metadata
// line is carried over intact.
func (m *Machine) CrashImageCuts(cuts []int) *pmem.Memory {
	return m.stampMeta(m.Track.CrashImagePrefix(cuts))
}

// CaptureCrashState snapshots the machine's current durability state —
// the copy-on-write durable image, the pending lines, and the allocator
// metadata line — for deferred crash-image construction. Capturing at a
// PM event boundary (from an Options.OnPMEvent hook) yields exactly the
// state a CrashAtEvent run would hold at that boundary, at the cost of a
// page-map copy instead of a whole re-execution.
func (m *Machine) CaptureCrashState() *pmem.CrashState {
	cs := m.Track.CaptureCrashState()
	meta := make([]byte, pmem.LineSize)
	m.Mem.Read(pmem.PMBase, meta)
	cs.Meta = meta
	return cs
}

// stampMeta copies the allocator's reserved metadata line into a crash
// image (the simulated hardware keeps it consistent on its own).
func (m *Machine) stampMeta(img *pmem.Memory) *pmem.Memory {
	meta := make([]byte, pmem.LineSize)
	m.Mem.Read(pmem.PMBase, meta)
	img.Write(pmem.PMBase, meta)
	return img
}

// SimTime returns the simulated nanoseconds elapsed so far.
func (m *Machine) SimTime() float64 { return m.Clock.Nanoseconds() }

// Steps returns the number of executed instructions.
func (m *Machine) Steps() int64 { return m.steps }

func (m *Machine) fault(format string, args ...any) error {
	return &RuntimeError{Msg: fmt.Sprintf(format, args...), Stack: m.stack(nil)}
}

// stack builds the current call stack, innermost first, as a private
// allocation (error paths; hot paths use stackFrames). When in is
// non-nil it is the active instruction of the top frame.
func (m *Machine) stack(in *ir.Instr) []trace.Frame {
	out := make([]trace.Frame, len(m.frames))
	m.fillStack(out, in)
	return out
}

// eventArena hands out trace.Event records carved from chunk
// allocations. Records are used once; earlier pointers stay valid when a
// new chunk starts.
type eventArena struct {
	buf []trace.Event
	n   int
}

func (a *eventArena) next() *trace.Event {
	if a.n == len(a.buf) {
		a.buf = make([]trace.Event, 512)
		a.n = 0
	}
	e := &a.buf[a.n]
	a.n++
	return e
}

// emit advances the global PM event sequence and returns the assigned
// number. When tracing is on, it also records the event with the current
// call stack (in is the active instruction of the top frame; nil for
// machine-setup events). Untraced runs pay only the increment: no Event
// or stack is materialized.
func (m *Machine) emit(in *ir.Instr, e trace.Event) int {
	seq := m.seq
	m.seq++
	tr := m.opts.Trace
	if tr == nil {
		return seq
	}
	ev := m.events.next()
	*ev = e
	ev.Seq = seq
	ev.Tid = m.curTid()
	ev.Stack = m.stackFrames(in)
	tr.Events = append(tr.Events, ev)
	return seq
}

// stackFrames is stack carved from the frame arena: same contents,
// amortized allocation. Slices are capacity-clipped so a consumer's
// append cannot clobber a neighbor.
func (m *Machine) stackFrames(in *ir.Instr) []trace.Frame {
	n := len(m.frames)
	if n == 0 {
		return nil
	}
	if m.frameUsed+n > len(m.frameBuf) {
		sz := 1024
		if n > sz {
			sz = n
		}
		m.frameBuf = make([]trace.Frame, sz)
		m.frameUsed = 0
	}
	out := m.frameBuf[m.frameUsed : m.frameUsed+n : m.frameUsed+n]
	m.frameUsed += n
	m.fillStack(out, in)
	return out
}

// fillStack writes the call stack, innermost first, into out (length
// len(m.frames)). When in is non-nil it is the active instruction of the
// top frame.
func (m *Machine) fillStack(out []trace.Frame, in *ir.Instr) {
	top := len(m.frames) - 1
	for i := top; i >= 0; i-- {
		f := m.frames[i]
		cur := f.cur
		if i == top && in != nil {
			cur = in
		}
		fr := trace.Frame{Func: f.fn.Name}
		if cur != nil {
			fr.InstrID = cur.ID
			fr.Loc = cur.Loc
		}
		out[top-i] = fr
	}
}

func (m *Machine) checkpoint(in *ir.Instr) error {
	if err := m.yieldPM(PendCheckpoint, 0); err != nil {
		return err
	}
	seq := m.emit(in, trace.Event{Kind: trace.KindCheckpoint})
	if m.Track != nil {
		m.Violations = append(m.Violations, m.Track.OnCheckpoint(seq)...)
	}
	m.checkpoints++
	if m.opts.CrashAtCheckpoint > 0 && m.checkpoints == m.opts.CrashAtCheckpoint {
		m.pmEventLog = append(m.pmEventLog, EvCheckpoint)
		return ErrSimulatedCrash
	}
	return m.pmEvent(EvCheckpoint)
}

// Checkpoints returns the number of durability points passed so far.
func (m *Machine) Checkpoints() int { return m.checkpoints }

// pmEvent logs one PM event boundary, fires Options.OnPMEvent, then
// Options.CrashAtEvent. Callers invoke it after applying the event's
// tracker effect, so both the hook and a simulated crash observe the
// post-event durability state.
func (m *Machine) pmEvent(k PMEventKind) error {
	m.pmEventLog = append(m.pmEventLog, k)
	if tid := m.curTid(); tid < len(m.threadEv) {
		m.threadEv[tid][k]++
	} else {
		for len(m.threadEv) <= tid {
			m.threadEv = append(m.threadEv, [numPMEventKinds]int64{})
		}
		m.threadEv[tid][k]++
	}
	if m.opts.OnPMEvent != nil {
		if err := m.opts.OnPMEvent(len(m.pmEventLog), k); err != nil {
			return err
		}
	}
	if m.opts.CrashAtEvent > 0 && len(m.pmEventLog) == m.opts.CrashAtEvent {
		return ErrSimulatedCrash
	}
	return nil
}

// PMEvents returns the number of PM event boundaries passed so far —
// the coordinate space Options.CrashAtEvent indexes (1-based).
func (m *Machine) PMEvents() int { return len(m.pmEventLog) }

// PMEventLog returns the kind of every PM event boundary passed so far,
// in order. Entry i corresponds to CrashAtEvent = i+1. The slice is the
// machine's own log; callers must not mutate it.
func (m *Machine) PMEventLog() []PMEventKind { return m.pmEventLog }

func (m *Machine) call(fn *ir.Func, args []uint64) (uint64, error) {
	if len(m.frames) >= 10_000 {
		return 0, m.fault("stack overflow calling @%s", fn.Name)
	}
	f := m.getFrame(fn)
	if len(m.frames) == 0 {
		f.stackTop = m.stackBase
	} else {
		f.stackTop = m.frames[len(m.frames)-1].stackLow()
	}
	copy(f.regs, args)
	m.frames = append(m.frames, f)
	defer func() {
		m.frames = m.frames[:len(m.frames)-1]
		m.framePool = append(m.framePool, f)
	}()
	m.Clock.Advance(m.cost.Call)

	blk := fn.Entry()
	for {
		var next *ir.Block
		for _, in := range blk.Instrs {
			m.steps++
			m.ops[in.Op]++
			if m.steps > m.max {
				return 0, &LimitError{Resource: "steps", Steps: m.steps, Limit: m.max, Stack: m.stack(in)}
			}
			if m.hasDeadline && m.steps&8191 == 0 && time.Now().After(m.deadline) {
				return 0, &LimitError{Resource: "deadline", Steps: m.steps, Stack: m.stack(in)}
			}
			f.cur = in
			switch in.Op {
			case ir.OpRet:
				if len(in.Args) == 0 {
					return 0, nil
				}
				return m.eval(f, in.Args[0]), nil
			case ir.OpJmp:
				next = in.Succs[0]
			case ir.OpBr:
				m.Clock.Advance(m.cost.ALUOp)
				if m.eval(f, in.Args[0]) != 0 {
					next = in.Succs[0]
				} else {
					next = in.Succs[1]
				}
			default:
				if err := m.exec(f, in); err != nil {
					return 0, err
				}
			}
		}
		if next == nil {
			return 0, m.fault("block ^%s in @%s fell through", blk.Name, fn.Name)
		}
		blk = next
	}
}

// eval computes an operand's runtime value.
func (m *Machine) eval(f *frame, v ir.Value) uint64 {
	switch x := v.(type) {
	case *ir.Instr:
		return f.regs[x.Slot]
	case *ir.Const:
		return uint64(x.Val)
	case *ir.Param:
		return f.regs[x.Index]
	case *ir.Global:
		return m.globalAddr[x.Name]
	default:
		panic(fmt.Sprintf("interp: unknown operand kind %T in @%s", v, f.fn.Name))
	}
}

func truncTo(ty ir.Type, v uint64) uint64 {
	switch ty {
	case ir.I1:
		return v & 1
	case ir.I8:
		return v & 0xff
	default:
		return v
	}
}

// exec runs one non-terminator instruction.
func (m *Machine) exec(f *frame, in *ir.Instr) error {
	switch in.Op {
	case ir.OpAlloca:
		size := alignUp(uint64(in.AllocTy.Size()), 16)
		addr := m.allocStack(size)
		if addr == 0 {
			return m.fault("stack overflow in alloca")
		}
		f.regs[in.Slot] = addr
		m.Clock.Advance(m.cost.ALUOp)

	case ir.OpLoad:
		addr := m.eval(f, in.Args[0])
		if err := m.checkAccess(addr, in.Ty.Size(), "load"); err != nil {
			return err
		}
		f.regs[in.Slot] = truncTo(in.Ty, m.Mem.ReadUint(addr, int(in.Ty.Size())))
		if pmem.IsPM(addr) {
			m.Clock.Advance(m.cost.LoadPM)
		} else {
			m.Clock.Advance(m.cost.LoadDRAM)
		}

	case ir.OpStore, ir.OpNTStore:
		val := m.eval(f, in.Args[0])
		addr := m.eval(f, in.Args[1])
		size := in.StoreTy.Size()
		if err := m.checkAccess(addr, size, "store"); err != nil {
			return err
		}
		if pmem.IsPM(addr) {
			pend := PendStore
			if in.Op == ir.OpNTStore {
				pend = PendNTStore
			}
			if err := m.yieldPM(pend, addr); err != nil {
				return err
			}
			m.Mem.WriteUint(addr, int(size), val)
			// IR scalars are at most 8 bytes, so the payload fits a stack
			// buffer; the tracker makes its own durable copy.
			var buf [8]byte
			data := buf[:size]
			m.Mem.Read(addr, data)
			kind := trace.KindStore
			if in.Op == ir.OpNTStore {
				kind = trace.KindNTStore
			}
			e := trace.Event{Kind: kind, Addr: addr, Size: int(size)}
			if size == 8 && pmem.IsPM(val) {
				// The stored value names a PM location: record it so the
				// offline detector can replay pointer publications.
				e.Val = val
			}
			seq := m.emit(in, e)
			ev := EvStore
			if in.Op == ir.OpNTStore {
				ev = EvNTStore
			}
			if m.Track != nil {
				if in.Op == ir.OpNTStore {
					m.Track.OnNTStoreT(seq, m.curTid(), addr, data)
				} else {
					m.Track.OnStoreT(seq, m.curTid(), addr, data)
				}
			}
			m.Clock.Advance(m.cost.StorePM)
			if err := m.pmEvent(ev); err != nil {
				return err
			}
		} else {
			m.Mem.WriteUint(addr, int(size), val)
			m.Clock.Advance(m.cost.StoreDRAM)
		}

	case ir.OpPtrAdd:
		base := m.eval(f, in.Args[0])
		idx := m.eval(f, in.Args[1])
		f.regs[in.Slot] = base + idx*uint64(in.Scale) + uint64(in.Disp)
		m.Clock.Advance(m.cost.ALUOp)

	case ir.OpCall:
		args := make([]uint64, len(in.Args))
		for i, a := range in.Args {
			args[i] = m.eval(f, a)
		}
		var ret uint64
		var err error
		if in.Callee.IsDecl() {
			b, ok := m.builtins[in.Callee.Name]
			if !ok {
				return m.fault("call to unregistered external @%s", in.Callee.Name)
			}
			ret, err = b(m, args)
		} else {
			ret, err = m.call(in.Callee, args)
		}
		if err != nil {
			return err
		}
		if in.HasResult() {
			f.regs[in.Slot] = ret
		}

	case ir.OpFlush:
		addr := m.eval(f, in.Args[0])
		m.Clock.Advance(m.cost.Flush)
		if pmem.IsPM(addr) {
			if err := m.yieldFlush(addr, in.FlushK.Ordered()); err != nil {
				return err
			}
			seq := m.emit(in, trace.Event{Kind: trace.KindFlush, FlushK: in.FlushK, Addr: addr})
			moved := 0
			if m.Track != nil {
				moved = m.Track.OnFlushT(seq, m.curTid(), in.FlushK.Ordered(), addr)
			}
			if moved > 0 && in.FlushK.Ordered() {
				// CLFLUSH commits immediately; CLWB/CLFLUSHOPT park the
				// line in the write-pending queue and pay at the fence.
				m.Clock.Advance(m.cost.FlushWriteback)
			}
			if err := m.pmEvent(EvFlush); err != nil {
				return err
			}
		}
		// Flushing volatile memory costs flush latency but has no
		// durability effect — this is the waste the hoisting heuristic
		// exists to avoid (§3.2).

	case ir.OpFence:
		if err := m.yieldPM(PendFence, 0); err != nil {
			return err
		}
		seq := m.emit(in, trace.Event{Kind: trace.KindFence, FenceK: in.FenceK})
		drained := 0
		if m.Track != nil {
			drained = m.Track.OnFenceT(seq, m.curTid())
		}
		m.Clock.Advance(m.cost.FenceBase + float64(drained)*m.cost.FenceDrainPerLine)
		if err := m.pmEvent(EvFence); err != nil {
			return err
		}

	case ir.OpSpawn:
		args := make([]uint64, len(in.Args))
		for i, a := range in.Args {
			args[i] = m.eval(f, a)
		}
		m.ensureMT()
		if err := m.yieldPM(PendSpawn, 0); err != nil {
			return err
		}
		tid, err := m.spawnThread(in.Callee, args)
		if err != nil {
			return err
		}
		f.regs[in.Slot] = uint64(tid)
		m.Clock.Advance(m.cost.Call)

	case ir.OpJoin:
		h := m.eval(f, in.Args[0])
		if m.mt == nil {
			return m.fault("join before any spawn")
		}
		tid := int(h)
		if tid <= 0 || tid >= len(m.mt.threads) {
			return m.fault("join on invalid thread handle %d", int64(h))
		}
		t := m.mt.threads[tid]
		if t.joined {
			return m.fault("thread %d joined twice", tid)
		}
		if err := m.yieldJoin(tid); err != nil {
			return err
		}
		if t.joined {
			// Another thread won the race to join between our
			// announcement and our turn.
			return m.fault("thread %d joined twice", tid)
		}
		t.joined = true
		f.regs[in.Slot] = t.result
		m.Clock.Advance(m.cost.Call)

	case ir.OpAtomicLoad:
		addr := m.eval(f, in.Args[0])
		if err := m.checkAccess(addr, 8, "atomic load"); err != nil {
			return err
		}
		if err := m.yieldPM(PendAtomic, addr); err != nil {
			return err
		}
		f.regs[in.Slot] = m.Mem.ReadUint(addr, 8)
		if pmem.IsPM(addr) {
			m.Clock.Advance(m.cost.LoadPM)
		} else {
			m.Clock.Advance(m.cost.LoadDRAM)
		}

	case ir.OpAtomicStore:
		val := m.eval(f, in.Args[0])
		addr := m.eval(f, in.Args[1])
		if err := m.checkAccess(addr, 8, "atomic store"); err != nil {
			return err
		}
		if err := m.yieldPM(PendAtomic, addr); err != nil {
			return err
		}
		if err := m.atomicWrite(in, addr, val); err != nil {
			return err
		}

	case ir.OpAtomicRMW:
		operand := m.eval(f, in.Args[0])
		addr := m.eval(f, in.Args[1])
		if err := m.checkAccess(addr, 8, "atomic rmw"); err != nil {
			return err
		}
		if err := m.yieldPM(PendAtomic, addr); err != nil {
			return err
		}
		old := m.Mem.ReadUint(addr, 8)
		var nv uint64
		switch in.RMWK {
		case ir.RMWAdd:
			nv = old + operand
		case ir.RMWXchg:
			nv = operand
		default:
			return m.fault("bad rmw kind %d", int(in.RMWK))
		}
		if err := m.atomicWrite(in, addr, nv); err != nil {
			return err
		}
		f.regs[in.Slot] = old

	case ir.OpAtomicCAS:
		expect := m.eval(f, in.Args[0])
		nv := m.eval(f, in.Args[1])
		addr := m.eval(f, in.Args[2])
		if err := m.checkAccess(addr, 8, "atomic cas"); err != nil {
			return err
		}
		if err := m.yieldPM(PendAtomic, addr); err != nil {
			return err
		}
		old := m.Mem.ReadUint(addr, 8)
		if old == expect {
			if err := m.atomicWrite(in, addr, nv); err != nil {
				return err
			}
		} else {
			m.Clock.Advance(m.cost.LoadDRAM)
		}
		f.regs[in.Slot] = old

	default:
		switch {
		case in.Op.IsBinary():
			x := m.eval(f, in.Args[0])
			y := m.eval(f, in.Args[1])
			v, err := binOp(in.Op, x, y, in.Ty)
			if err != nil {
				return m.fault("%s", err)
			}
			f.regs[in.Slot] = truncTo(in.Ty, v)
			m.Clock.Advance(m.cost.ALUOp)
		case in.Op.IsCmp():
			x := int64(m.eval(f, in.Args[0]))
			y := int64(m.eval(f, in.Args[1]))
			f.regs[in.Slot] = boolVal(cmpOp(in.Op, x, y))
			m.Clock.Advance(m.cost.ALUOp)
		case in.Op.IsCast():
			v := m.eval(f, in.Args[0])
			f.regs[in.Slot] = truncTo(in.Ty, v)
			m.Clock.Advance(m.cost.ALUOp)
		default:
			return m.fault("cannot execute %s", ir.FormatInstr(in))
		}
	}
	return nil
}

// atomicWrite commits the write half of an atomic store/RMW/CAS.
// Atomicity orders visibility between threads; it persists nothing, so
// an atomic store to PM is a tracked pending store exactly like a
// regular one and still needs its flush and fence.
func (m *Machine) atomicWrite(in *ir.Instr, addr, val uint64) error {
	m.Mem.WriteUint(addr, 8, val)
	if !pmem.IsPM(addr) {
		m.Clock.Advance(m.cost.StoreDRAM)
		return nil
	}
	var buf [8]byte
	data := buf[:]
	m.Mem.Read(addr, data)
	e := trace.Event{Kind: trace.KindStore, Addr: addr, Size: 8}
	if pmem.IsPM(val) {
		e.Val = val
	}
	seq := m.emit(in, e)
	if m.Track != nil {
		m.Track.OnStoreT(seq, m.curTid(), addr, data)
	}
	m.Clock.Advance(m.cost.StorePM)
	return m.pmEvent(EvStore)
}

func (m *Machine) checkAccess(addr uint64, size int64, op string) error {
	if pmem.RegionOf(addr) == pmem.RegionInvalid {
		return m.fault("invalid %s of %d bytes at %#x", op, size, addr)
	}
	return nil
}

func binOp(op ir.Op, x, y uint64, ty ir.Type) (uint64, error) {
	switch op {
	case ir.OpAdd:
		return x + y, nil
	case ir.OpSub:
		return x - y, nil
	case ir.OpMul:
		return x * y, nil
	case ir.OpSDiv:
		if y == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return uint64(int64(x) / int64(y)), nil
	case ir.OpSRem:
		if y == 0 {
			return 0, fmt.Errorf("remainder by zero")
		}
		return uint64(int64(x) % int64(y)), nil
	case ir.OpAnd:
		return x & y, nil
	case ir.OpOr:
		return x | y, nil
	case ir.OpXor:
		return x ^ y, nil
	case ir.OpShl:
		return x << (y & 63), nil
	case ir.OpAShr:
		return uint64(int64(x) >> (y & 63)), nil
	}
	return 0, fmt.Errorf("bad binary op %s", op)
}

func cmpOp(op ir.Op, x, y int64) bool {
	switch op {
	case ir.OpEq:
		return x == y
	case ir.OpNe:
		return x != y
	case ir.OpLt:
		return x < y
	case ir.OpLe:
		return x <= y
	case ir.OpGt:
		return x > y
	case ir.OpGe:
		return x >= y
	}
	panic("interp: bad comparison " + op.String())
}

func boolVal(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// allocStack carves size bytes from the downward-growing stack, returning
// 0 on overflow. Stack storage is reclaimed per call frame; each frame's
// stackTop was fixed at call time from its parent's watermark.
func (m *Machine) allocStack(size uint64) uint64 {
	f := m.frames[len(m.frames)-1]
	top := f.stackTop - f.stackUsed
	addr := (top - size) &^ 15
	if addr < m.stackLimit || addr > top {
		return 0 // exhausted (or wrapped below zero)
	}
	f.stackUsed = f.stackTop - addr
	return addr
}
