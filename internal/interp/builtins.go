package interp

import (
	"fmt"

	"hippocrates/internal/ir"
	"hippocrates/internal/pmem"
	"hippocrates/internal/trace"
)

// The standard externals available to every program. Front-end programs
// declare the ones they use; the lowering pass injects matching
// declarations automatically.
//
//	pm_alloc(n) -> ptr      allocate n bytes of persistent memory
//	                        (cache-line aligned; the allocator cursor
//	                        lives in a reserved PM line and survives
//	                        restarts, like PMDK's internal metadata)
//	pm_root(n) -> ptr       idempotent root object of n bytes: the first
//	                        call allocates, later calls (and restarts)
//	                        return the same address
//	malloc(n) -> ptr        allocate volatile heap memory
//	free(p) -> void         release heap memory (no-op bump allocator)
//	memcpy(d, s, n) -> ptr  byte copy; PM destinations are tracked
//	memset(d, c, n) -> ptr  byte fill; PM destinations are tracked
//	pm_checkpoint() -> void durability point (crash may happen here)
//	pm_assert(c, msg) -> void  recovery invariant: c == 0 aborts with a
//	                        typed *AssertError carrying msg (crash-state
//	                        validation treats it as a failed schedule)
//	print_int(v) -> void    write the integer and '\n' to stdout
//	print_str(p) -> void    write the NUL-terminated string to stdout
//	abort_msg(p) -> void    abort execution with the given message
//
// Builtin memcpy/memset stores into PM appear in the trace with the call
// instruction as their innermost frame (there is no IR body to point
// into); corpus code that wants fixable per-store events uses the
// pmc-level copy loops from the mini-libpmem instead.
func registerStdBuiltins(m *Machine) {
	m.RegisterBuiltin("pm_alloc", biPMAlloc)
	m.RegisterBuiltin("pm_root", biPMRoot)
	m.RegisterBuiltin("malloc", biMalloc)
	m.RegisterBuiltin("free", func(*Machine, []uint64) (uint64, error) { return 0, nil })
	m.RegisterBuiltin("memcpy", biMemcpy)
	m.RegisterBuiltin("memset", biMemset)
	m.RegisterBuiltin("flush_range", biFlushRange)
	m.RegisterBuiltin("pm_checkpoint", biCheckpoint)
	m.RegisterBuiltin("pm_assert", biPMAssert)
	m.RegisterBuiltin("print_int", biPrintInt)
	m.RegisterBuiltin("print_str", biPrintStr)
	m.RegisterBuiltin("abort_msg", biAbort)
}

// StdDecls returns fresh declarations for the standard externals, for
// modules built by hand (the front end injects its own).
func StdDecls() []*ir.Func {
	p := func(n string) *ir.Param { return &ir.Param{Name: n, Ty: ir.Ptr} }
	i := func(n string) *ir.Param { return &ir.Param{Name: n, Ty: ir.I64} }
	return []*ir.Func{
		ir.NewFunc("pm_alloc", ir.Ptr, i("n")),
		ir.NewFunc("pm_root", ir.Ptr, i("n")),
		ir.NewFunc("malloc", ir.Ptr, i("n")),
		ir.NewFunc("free", ir.Void, p("p")),
		ir.NewFunc("memcpy", ir.Ptr, p("dst"), p("src"), i("n")),
		ir.NewFunc("memset", ir.Ptr, p("dst"), i("c"), i("n")),
		ir.NewFunc("flush_range", ir.Void, p("p"), i("n")),
		ir.NewFunc("pm_checkpoint", ir.Void),
		ir.NewFunc("pm_assert", ir.Void, i("cond"), p("msg")),
		ir.NewFunc("print_int", ir.Void, i("v")),
		ir.NewFunc("print_str", ir.Void, p("p")),
		ir.NewFunc("abort_msg", ir.Void, p("p")),
	}
}

func biPMAlloc(m *Machine, args []uint64) (uint64, error) {
	n := args[0]
	if n == 0 {
		n = 1
	}
	addr := alignUp(m.pmNext, pmem.LineSize)
	m.pmNext = addr + n
	// Persist the allocator cursor in the reserved metadata line. The
	// write bypasses the durability tracker: it models allocator-internal
	// metadata that PMDK keeps consistent on its own.
	m.Mem.WriteUint(pmem.PMBase, 8, m.pmNext)
	if addr+n > pmem.PMBase+pmem.DefaultPMSize {
		return 0, m.fault("persistent memory exhausted (%d bytes requested)", n)
	}
	m.emit(m.callInstr(), trace.Event{Kind: trace.KindAlloc, Addr: addr, Size: int(n)})
	return addr, nil
}

func biPMRoot(m *Machine, args []uint64) (uint64, error) {
	n := args[0]
	if m.rootAddr != 0 {
		if n != m.rootSize {
			return 0, m.fault("pm_root size changed: %d then %d", m.rootSize, n)
		}
		return m.rootAddr, nil
	}
	// The root address is persisted in the metadata line (offset 8) so a
	// restarted machine hands back the same object.
	if m.opts.ResumePM {
		if addr := m.Mem.ReadUint(pmem.PMBase+8, 8); addr != 0 {
			m.rootAddr, m.rootSize = addr, n
			return addr, nil
		}
	}
	addr, err := biPMAlloc(m, []uint64{n})
	if err != nil {
		return 0, err
	}
	m.rootAddr, m.rootSize = addr, n
	m.Mem.WriteUint(pmem.PMBase+8, 8, addr)
	return addr, nil
}

func biMalloc(m *Machine, args []uint64) (uint64, error) {
	n := args[0]
	if n == 0 {
		n = 1
	}
	addr := alignUp(m.heapNext, 16)
	m.heapNext = addr + n
	if m.heapNext > pmem.StackBase-pmem.StackMax {
		return 0, m.fault("heap exhausted (%d bytes requested)", n)
	}
	return addr, nil
}

// pmStoreChunks traces and tracks a bulk write of buf at addr, splitting
// it into aligned chunks that never span cache lines. Each chunk is a PM
// event boundary, so crash injection can land inside a builtin copy.
func (m *Machine) pmStoreChunks(addr uint64, buf []byte, callIn *ir.Instr) error {
	// The whole bulk write is one visible operation to the scheduler:
	// announce once, then the chunks run without interleaving (a builtin
	// memcpy is atomic at scheduling granularity).
	if err := m.yieldPM(PendStore, addr); err != nil {
		return err
	}
	off := uint64(0)
	n := uint64(len(buf))
	for off < n {
		chunk := uint64(8 - (addr+off)%8)
		if chunk > n-off {
			chunk = n - off
		}
		a := addr + off
		data := buf[off : off+chunk]
		seq := m.emit(callIn, trace.Event{Kind: trace.KindStore, Addr: a, Size: int(chunk)})
		m.Track.OnStoreT(seq, m.curTid(), a, data)
		m.Clock.Advance(m.cost.StorePM)
		if err := m.pmEvent(EvStore); err != nil {
			return err
		}
		off += chunk
	}
	return nil
}

// callInstr returns the active call instruction of the top frame (the
// builtin's caller).
func (m *Machine) callInstr() *ir.Instr {
	if len(m.frames) == 0 {
		return nil
	}
	return m.frames[len(m.frames)-1].cur
}

func biMemcpy(m *Machine, args []uint64) (uint64, error) {
	dst, src, n := args[0], args[1], args[2]
	if n == 0 {
		return dst, nil
	}
	if pmem.RegionOf(dst) == pmem.RegionInvalid || pmem.RegionOf(src) == pmem.RegionInvalid {
		return 0, m.fault("memcpy with invalid address (dst=%#x src=%#x n=%d)", dst, src, n)
	}
	buf := make([]byte, n)
	m.Mem.Read(src, buf)
	m.Mem.Write(dst, buf)
	if pmem.IsPM(dst) {
		if err := m.pmStoreChunks(dst, buf, m.callInstr()); err != nil {
			return 0, err
		}
	} else {
		m.Clock.Advance(float64(n) / 8 * m.cost.StoreDRAM)
	}
	return dst, nil
}

func biMemset(m *Machine, args []uint64) (uint64, error) {
	dst, c, n := args[0], args[1], args[2]
	if n == 0 {
		return dst, nil
	}
	if pmem.RegionOf(dst) == pmem.RegionInvalid {
		return 0, m.fault("memset with invalid address (dst=%#x n=%d)", dst, n)
	}
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(c)
	}
	m.Mem.Write(dst, buf)
	if pmem.IsPM(dst) {
		if err := m.pmStoreChunks(dst, buf, m.callInstr()); err != nil {
			return 0, err
		}
	} else {
		m.Clock.Advance(float64(n) / 8 * m.cost.StoreDRAM)
	}
	return dst, nil
}

// biFlushRange issues a weakly-ordered CLWB for every cache line in
// [p, p+n); a fence is still required afterwards. The fixer emits calls to
// it when a single store event covers more than one scalar (builtin
// memcpy/memset destinations).
func biFlushRange(m *Machine, args []uint64) (uint64, error) {
	addr, n := args[0], args[1]
	if n == 0 {
		return 0, nil
	}
	callIn := m.callInstr()
	if pmem.IsPM(addr) {
		// One announcement covers the whole range flush.
		if err := m.yieldPM(PendFlush, addr); err != nil {
			return 0, err
		}
	}
	end := addr + n
	for line := pmem.LineOf(addr); line < end; line += pmem.LineSize {
		m.Clock.Advance(m.cost.Flush)
		if !pmem.IsPM(line) {
			continue
		}
		seq := m.emit(callIn, trace.Event{Kind: trace.KindFlush, FlushK: ir.CLWB, Addr: line})
		m.Track.OnFlushT(seq, m.curTid(), false, line) // weakly ordered: pays at the fence
		if err := m.pmEvent(EvFlush); err != nil {
			return 0, err
		}
	}
	return 0, nil
}

func biCheckpoint(m *Machine, _ []uint64) (uint64, error) {
	return 0, m.checkpoint(m.callInstr())
}

// AssertError is the typed failure of the pm_assert builtin: a recovery
// invariant did not hold. Crash-state validation (internal/crashsim)
// treats it as a failed crash schedule, with the message naming the
// violated invariant.
type AssertError struct {
	Msg   string
	Stack []trace.Frame
}

func (e *AssertError) Error() string {
	s := "interp: pm_assert failed: " + e.Msg
	for _, f := range e.Stack {
		s += "\n\tat " + f.String()
	}
	return s
}

func biPMAssert(m *Machine, args []uint64) (uint64, error) {
	if args[0] != 0 {
		return 0, nil
	}
	return 0, &AssertError{Msg: m.cString(args[1]), Stack: m.stack(m.callInstr())}
}

func biPrintInt(m *Machine, args []uint64) (uint64, error) {
	if m.opts.Stdout != nil {
		fmt.Fprintf(m.opts.Stdout, "%d\n", int64(args[0]))
	}
	return 0, nil
}

func (m *Machine) cString(addr uint64) string {
	var buf []byte
	for i := uint64(0); i < 1<<16; i++ {
		b := m.Mem.Load8(addr + i)
		if b == 0 {
			break
		}
		buf = append(buf, b)
	}
	return string(buf)
}

func biPrintStr(m *Machine, args []uint64) (uint64, error) {
	if m.opts.Stdout != nil {
		fmt.Fprintln(m.opts.Stdout, m.cString(args[0]))
	}
	return 0, nil
}

func biAbort(m *Machine, args []uint64) (uint64, error) {
	return 0, m.fault("abort: %s", m.cString(args[0]))
}
