package interp

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"hippocrates/internal/ir"
	"hippocrates/internal/pmem"
)

// Deterministic thread scheduling.
//
// The machine models concurrency the way deterministic model checkers
// do: every spawned thread runs on its own goroutine, but an unbuffered
// channel baton guarantees exactly one thread executes at a time, so
// machine state needs no locks and replay is exact. Before each
// *visible* operation — a PM store/NT-store, a PM flush, a fence, a
// durability point, any atomic access, a spawn, or a join — the running
// thread announces the operation and asks the scheduler who runs next.
// Decisions are therefore taken only at PM-relevant boundaries, which
// is exactly the granularity the interleaving explorer
// (internal/schedule) wants: the volatile compute between visible ops
// commutes and never needs splitting. Once scheduled, a thread runs
// until its next announcement (or until its body returns, at which
// point it retires and hands the baton on).
//
// A schedule is a prefix of decision choices; past the prefix the
// scheduler falls back to round-robin. Replaying the same choices
// reproduces the run bit-for-bit, which is what makes schedule IDs
// replayable crash coordinates.

// maxThreads bounds live threads per machine; the simulated stack is
// statically partitioned into this many segments.
const maxThreads = 16

// threadStackSeg is the simulated stack carved out for each thread.
const threadStackSeg = uint64(pmem.StackMax) / maxThreads

// PendKind classifies the visible operation a thread has announced.
type PendKind uint8

// The announced-operation kinds. PendStart marks a spawned thread that
// has not yet entered its body; the other kinds mirror the PM event and
// synchronization boundaries the scheduler interleaves on.
const (
	PendStart PendKind = iota
	PendStore
	PendNTStore
	PendFlush
	PendFence
	PendCheckpoint
	PendAtomic
	PendSpawn
	PendJoin
)

var pendNames = [...]string{
	"start", "store", "nt-store", "flush", "fence", "checkpoint",
	"atomic", "spawn", "join",
}

func (k PendKind) String() string {
	if int(k) < len(pendNames) {
		return pendNames[k]
	}
	return fmt.Sprintf("pend(%d)", int(k))
}

// PendingOp is a thread's announced next visible operation.
type PendingOp struct {
	Tid  int
	Kind PendKind
	// Addr is the target address for store/nt-store/flush/atomic
	// operations (its cache line decides commutativity in the explorer),
	// the target thread id for join, and 0 otherwise.
	Addr uint64
	// Ordered marks a flush that commits its line immediately (CLFLUSH /
	// ordered flush_range). Ordered flushes change the durable image
	// mid-interleaving, so the explorer must treat them as conflicting
	// with every other operation; weak flushes (CLWB) only mark lines
	// flushed-pending and commute across cache lines.
	Ordered bool
}

// Decision records one scheduling choice: the announced operations of
// every runnable thread at the decision point (in thread-id order) and
// which one ran. Decision points exist only where at least two threads
// are runnable; single-runnable steps are forced and recorded nowhere.
type Decision struct {
	Runnable []PendingOp
	Chosen   int // index into Runnable
}

// ScheduleID renders a choice prefix as a compact replayable string:
// "rr" for the empty prefix (pure round-robin) and e.g. "c:1.0.2" for
// the prefix [1 0 2].
func ScheduleID(choices []int) string {
	if len(choices) == 0 {
		return "rr"
	}
	var b strings.Builder
	b.WriteString("c:")
	for i, c := range choices {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

// ParseScheduleID inverts ScheduleID. The empty string is accepted as
// "rr".
func ParseScheduleID(s string) ([]int, error) {
	if s == "" || s == "rr" {
		return nil, nil
	}
	body, ok := strings.CutPrefix(s, "c:")
	if !ok {
		return nil, fmt.Errorf("interp: bad schedule id %q (want \"rr\" or \"c:N.N...\")", s)
	}
	parts := strings.Split(body, ".")
	out := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("interp: bad schedule id %q: choice %q", s, p)
		}
		out[i] = n
	}
	return out, nil
}

// Thread lifecycle states.
const (
	thRunnable = iota
	thBlocked  // parked on a join whose target is still live
	thDone     // body returned (or thread killed during teardown)
)

// killSentinel is the panic value used to unwind a parked thread when
// the run is torn down; threadBody and runMain recover it.
type killSentinel struct{}

type thread struct {
	tid     int
	state   int
	pending PendingOp
	// frames holds the thread's simulated call stack while it is not
	// running; the baton holder's stack lives in Machine.frames.
	frames []*frame
	joinOn int  // tid this thread waits on while thBlocked
	joined bool // a join on this thread has completed
	result uint64
	err    error
	// resume is the baton: an unbuffered handoff that wakes the thread.
	// The waker installs the thread's frames and stack segment before
	// sending, so the wakee (even one waking only to be killed) unwinds
	// its own stack.
	resume chan struct{}
}

// mtState exists only once a program spawns: single-threaded runs never
// allocate it and take none of the scheduling branches, so their
// execution (and trace) is byte-identical to the pre-concurrency
// machine.
type mtState struct {
	threads    []*thread // index == tid; threads[0] is main
	cur        int       // tid holding the baton
	choices    []int     // replayed decision prefix (Options.Schedule)
	nextChoice int
	decisions  []Decision
	killed     bool
	err        error // first error from any thread; the run's verdict
	// ack serializes the kill sweep: non-nil only while killThreads
	// wakes parked threads one at a time.
	ack chan struct{}
	wg  sync.WaitGroup
}

func (m *Machine) curTid() int {
	if m.mt == nil {
		return 0
	}
	return m.mt.cur
}

// CurrentThread returns the id of the thread holding the baton (0 for
// single-threaded runs).
func (m *Machine) CurrentThread() int { return m.curTid() }

// ThreadCount returns the number of threads the run has created,
// including main. Single-threaded runs report 1.
func (m *Machine) ThreadCount() int {
	if m.mt == nil {
		return 1
	}
	return len(m.mt.threads)
}

// Decisions returns the scheduling decision log of the run: one entry
// per point where at least two threads were runnable, including those
// replayed from Options.Schedule. The interleaving explorer branches on
// this log. Callers must not mutate it.
func (m *Machine) Decisions() []Decision {
	if m.mt == nil {
		return nil
	}
	return m.mt.decisions
}

// ensureMT lazily creates the scheduler state on first spawn and
// confines main to its stack segment.
func (m *Machine) ensureMT() *mtState {
	if m.mt == nil {
		main := &thread{tid: 0, state: thRunnable, joinOn: -1, resume: make(chan struct{})}
		m.mt = &mtState{threads: []*thread{main}, choices: m.opts.Schedule}
		m.setStackSeg(0)
	}
	return m.mt
}

// setStackSeg points the stack allocator at tid's segment. Thread k
// owns [StackBase-(k+1)*seg, StackBase-k*seg).
func (m *Machine) setStackSeg(tid int) {
	m.stackBase = pmem.StackBase - uint64(tid)*threadStackSeg
	m.stackLimit = m.stackBase - threadStackSeg
}

// threadStart carries a spawned thread's entry function and arguments
// to its goroutine.
type threadStart struct {
	fn   *ir.Func
	args []uint64
}

// spawnThread creates a thread executing fn(args) and returns its
// handle (the thread id). The thread is runnable with a PendStart
// announcement; it begins executing only when the scheduler first
// picks it.
func (m *Machine) spawnThread(fn *ir.Func, args []uint64) (int, error) {
	mt := m.ensureMT()
	tid := len(mt.threads)
	if tid >= maxThreads {
		return 0, m.fault("too many threads spawning @%s (max %d)", fn.Name, maxThreads)
	}
	t := &thread{
		tid:     tid,
		state:   thRunnable,
		pending: PendingOp{Tid: tid, Kind: PendStart},
		joinOn:  -1,
		resume:  make(chan struct{}),
	}
	mt.threads = append(mt.threads, t)
	mt.wg.Add(1)
	go m.threadBody(t, &threadStart{fn: fn, args: args})
	return tid, nil
}

// yieldPM announces a pending visible operation and lets the scheduler
// hand the baton to another thread first. Single-threaded runs return
// immediately.
func (m *Machine) yieldPM(kind PendKind, addr uint64) error {
	mt := m.mt
	if mt == nil {
		return nil
	}
	self := mt.threads[mt.cur]
	self.pending = PendingOp{Tid: self.tid, Kind: kind, Addr: addr}
	return m.schedNext()
}

// yieldFlush announces a pending flush, carrying whether it commits its
// line immediately (ordered) — the explorer needs the distinction.
func (m *Machine) yieldFlush(addr uint64, ordered bool) error {
	mt := m.mt
	if mt == nil {
		return nil
	}
	self := mt.threads[mt.cur]
	self.pending = PendingOp{Tid: self.tid, Kind: PendFlush, Addr: addr, Ordered: ordered}
	return m.schedNext()
}

// yieldJoin announces a join on target, blocking self if the target is
// still live. On return the target has retired.
func (m *Machine) yieldJoin(target int) error {
	mt := m.mt
	self := mt.threads[mt.cur]
	self.pending = PendingOp{Tid: self.tid, Kind: PendJoin, Addr: uint64(target)}
	if mt.threads[target].state != thDone {
		self.state = thBlocked
		self.joinOn = target
	}
	if err := m.schedNext(); err != nil {
		return err
	}
	self.joinOn = -1
	return nil
}

// schedNext picks the next thread to run and passes the baton. It is
// the common tail of every announcement.
func (m *Machine) schedNext() error {
	mt := m.mt
	self := mt.threads[mt.cur]
	next, err := m.pick()
	if err != nil {
		return m.abortAll(err)
	}
	if next == self {
		return nil
	}
	m.passBaton(next)
	return nil
}

// pick chooses the next runnable thread: the replayed schedule prefix
// decides while it lasts, then round-robin. A decision is recorded at
// every point with two or more runnable threads.
func (m *Machine) pick() (*thread, error) {
	mt := m.mt
	var run []*thread
	for _, t := range mt.threads {
		if t.state == thRunnable {
			run = append(run, t)
		}
	}
	if len(run) == 0 {
		return nil, m.deadlockErr()
	}
	if len(run) == 1 {
		return run[0], nil
	}
	pend := make([]PendingOp, len(run))
	for i, t := range run {
		pend[i] = t.pending
	}
	var idx int
	if mt.nextChoice < len(mt.choices) {
		idx = mt.choices[mt.nextChoice]
		if idx < 0 || idx >= len(run) {
			return nil, m.fault("schedule choice %d of %d out of range (%d runnable threads)",
				mt.nextChoice, idx, len(run))
		}
	} else {
		idx = rrIndex(run, mt.cur)
	}
	mt.nextChoice++
	mt.decisions = append(mt.decisions, Decision{Runnable: pend, Chosen: idx})
	return run[idx], nil
}

// rrIndex is the default policy: the first runnable thread after the
// current one in cyclic tid order. run is sorted by tid.
func rrIndex(run []*thread, cur int) int {
	for i, t := range run {
		if t.tid > cur {
			return i
		}
	}
	return 0
}

func (m *Machine) deadlockErr() error {
	mt := m.mt
	var parts []string
	for _, t := range mt.threads {
		if t.state == thBlocked {
			parts = append(parts, fmt.Sprintf("thread %d joins %d", t.tid, t.joinOn))
		}
	}
	return m.fault("deadlock: no runnable thread (%s)", strings.Join(parts, ", "))
}

// passBaton hands execution to next and parks the caller until it is
// scheduled again. The caller installs next's frames and stack segment
// before waking it, so every thread — including one woken only to be
// killed — unwinds its own simulated stack.
func (m *Machine) passBaton(next *thread) {
	mt := m.mt
	self := mt.threads[mt.cur]
	self.frames = m.frames
	m.frames = next.frames
	next.frames = nil
	mt.cur = next.tid
	m.setStackSeg(next.tid)
	next.resume <- struct{}{}
	<-self.resume
	if mt.killed {
		panic(killSentinel{})
	}
}

// wakeForAbort hands the baton to a parked thread (always main) so it
// can unwind with mt.err. The caller's goroutine must touch no machine
// state afterwards.
func (m *Machine) wakeForAbort(t *thread) {
	mt := m.mt
	m.frames = t.frames
	t.frames = nil
	mt.cur = t.tid
	m.setStackSeg(t.tid)
	t.resume <- struct{}{}
}

// abortAll records err as the run's verdict and tears the run down. On
// main it simply returns the error (Run's teardown sweeps the rest); on
// a spawned thread it unwinds via the kill sentinel, whose recovery
// hands the baton to main.
func (m *Machine) abortAll(err error) error {
	mt := m.mt
	if mt.err == nil {
		mt.err = err
	}
	mt.killed = true
	if mt.cur == 0 {
		return err
	}
	panic(killSentinel{})
}

// threadBody is the goroutine running one spawned thread. It parks
// until first scheduled, runs the function, then retires.
func (m *Machine) threadBody(t *thread, fn *threadStart) {
	mt := m.mt
	defer mt.wg.Done()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(killSentinel); !ok {
			panic(r)
		}
		t.state = thDone
		t.frames = nil
		if mt.ack != nil {
			mt.ack <- struct{}{} // killThreads sweep: acknowledge and exit
		} else {
			m.wakeForAbort(mt.threads[0]) // we held the baton; main unwinds
		}
	}()
	<-t.resume
	if mt.killed {
		panic(killSentinel{})
	}
	ret, err := m.call(fn.fn, fn.args)
	t.result, t.err = ret, err
	m.threadExit(t)
}

// threadExit retires a thread whose body returned: it wakes joiners,
// hands the baton on, and lets the goroutine end. An error verdict
// aborts the whole run instead.
func (m *Machine) threadExit(t *thread) {
	mt := m.mt
	t.state = thDone
	t.frames = nil
	if t.err != nil {
		if mt.err == nil {
			mt.err = t.err
		}
		mt.killed = true
		m.wakeForAbort(mt.threads[0])
		return
	}
	for _, o := range mt.threads {
		if o.state == thBlocked && o.joinOn == t.tid {
			o.state = thRunnable
		}
	}
	next, err := m.pick()
	if err != nil {
		if mt.err == nil {
			mt.err = err
		}
		mt.killed = true
		m.wakeForAbort(mt.threads[0])
		return
	}
	m.frames = next.frames
	next.frames = nil
	mt.cur = next.tid
	m.setStackSeg(next.tid)
	next.resume <- struct{}{}
}

// killThreads tears down any still-parked threads after the run ends
// (normally or with an error). Each parked thread is woken with its own
// frames installed, unwinds via the kill sentinel, and acknowledges;
// the sweep is strictly serial, so machine state stays single-owner.
func (m *Machine) killThreads() {
	mt := m.mt
	if mt == nil {
		return
	}
	mt.killed = true
	mt.ack = make(chan struct{})
	for _, t := range mt.threads[1:] {
		if t.state == thDone {
			continue
		}
		m.frames = t.frames
		t.frames = nil
		mt.cur = t.tid
		t.resume <- struct{}{}
		<-mt.ack
	}
	mt.ack = nil
	mt.cur = 0
	m.frames = m.frames[:0]
	mt.wg.Wait()
}
