package interp

import (
	"testing"

	"hippocrates/internal/ir"
	"hippocrates/internal/trace"
)

// buildPMLoop returns a module whose main(n) performs n iterations of
// store→flush→fence on one PM line: 3 PM events per iteration, the
// interpreter's hot path.
func buildPMLoop(t testing.TB) *ir.Module {
	t.Helper()
	m := newModule("allocloop")
	m.AddGlobal(&ir.Global{Name: "cell", Elem: ir.I64, PM: true})
	f := ir.NewFunc("main", ir.I64, &ir.Param{Name: "n", Ty: ir.I64})
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	i := b.Alloca(ir.I64)
	b.Store(ir.I64, ir.ConstInt(0), i)
	cond := b.NewBlock("cond")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Jmp(cond)
	b.SetBlock(cond)
	iv := b.Load(ir.I64, i)
	c := b.Cmp(ir.OpLt, iv, f.Params[0])
	b.Br(c, body, exit)
	b.SetBlock(body)
	g := m.Global("cell")
	b.Store(ir.I64, iv, g)
	b.Flush(ir.CLWB, g)
	b.Fence(ir.SFENCE)
	inc := b.Bin(ir.OpAdd, ir.I64, iv, ir.ConstInt(1))
	b.Store(ir.I64, inc, i)
	b.Jmp(cond)
	b.SetBlock(exit)
	b.Ret(ir.ConstInt(0))
	f.Renumber()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m
}

// runAllocs measures heap allocations for one full run (machine
// construction included) of main(iters).
func runAllocs(t *testing.T, m *ir.Module, iters uint64, traced bool) float64 {
	t.Helper()
	return testing.AllocsPerRun(5, func() {
		var tr *trace.Trace
		if traced {
			tr = &trace.Trace{Program: "alloc"}
		}
		mach, err := New(m, Options{Trace: tr})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mach.Run("main", iters); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRunAllocsPerEvent guards the interpreter's per-PM-event allocation
// budget: store payloads, tracker records, trace events, and stack-frame
// slices all come from arenas, so the only per-iteration heap allocation
// left is the pending-line slice the tracker's map keeps (~0.34 per
// event on this workload). The bounds have headroom over the measured
// values but sit well below the one-heap-allocation-per-store mark —
// they fail `make verify` if someone reintroduces per-event allocation,
// without pinning exact counts.
func TestRunAllocsPerEvent(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race runtime")
	}
	m := buildPMLoop(t)
	const iters = 2000
	const events = 3 * iters // store + flush + fence per iteration

	// Fixed per-run overhead (machine construction, globals, final
	// checkpoint): measured at zero iterations.
	fixed := runAllocs(t, m, 0, false)
	fixedTraced := runAllocs(t, m, 0, true)

	untraced := runAllocs(t, m, iters, false)
	perEvent := (untraced - fixed) / events
	t.Logf("untraced: %.0f allocs total, %.4f per PM event (fixed %.0f)", untraced, perEvent, fixed)
	if perEvent > 0.5 {
		t.Errorf("untraced hot path allocates %.4f objects per PM event, want <= 0.5", perEvent)
	}

	traced := runAllocs(t, m, iters, true)
	perEventTraced := (traced - fixedTraced) / events
	t.Logf("traced: %.0f allocs total, %.4f per PM event (fixed %.0f)", traced, perEventTraced, fixedTraced)
	if perEventTraced > 0.75 {
		t.Errorf("traced hot path allocates %.4f objects per PM event, want <= 0.75 (arena-backed trace recording)", perEventTraced)
	}
}
