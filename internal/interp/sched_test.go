package interp

import (
	"reflect"
	"strings"
	"testing"

	"hippocrates/internal/ir"
	"hippocrates/internal/trace"
)

// buildSpawnJoin builds: worker(x) { atomic_add(&vcnt, 1); cell = x;
// clwb(cell); sfence; return x+1 } and main() { t = spawn worker(41);
// r = join t; return r + atomic_load(&vcnt) }.
func buildSpawnJoin(t *testing.T) *ir.Module {
	t.Helper()
	m := newModule("mt")
	m.AddGlobal(&ir.Global{Name: "cell", Elem: ir.I64, PM: true})
	m.AddGlobal(&ir.Global{Name: "vcnt", Elem: ir.I64})

	w := ir.NewFunc("worker", ir.I64, &ir.Param{Name: "x", Ty: ir.I64})
	m.AddFunc(w)
	b := ir.NewBuilder(w)
	b.AtomicRMW(ir.RMWAdd, ir.ConstInt(1), m.Global("vcnt"))
	b.Store(ir.I64, w.Params[0], m.Global("cell"))
	b.Flush(ir.CLWB, m.Global("cell"))
	b.Fence(ir.SFENCE)
	b.Ret(b.Bin(ir.OpAdd, ir.I64, w.Params[0], ir.ConstInt(1)))
	w.Renumber()

	f := ir.NewFunc("main", ir.I64)
	m.AddFunc(f)
	b = ir.NewBuilder(f)
	h := b.Spawn(w, ir.ConstInt(41))
	r := b.Join(h)
	v := b.AtomicLoad(ir.OrderSeqCst, m.Global("vcnt"))
	b.Ret(b.Bin(ir.OpAdd, ir.I64, r, v))
	f.Renumber()
	return m
}

func TestSpawnJoin(t *testing.T) {
	m := buildSpawnJoin(t)
	mach, got := run(t, m, "main")
	if got != 43 {
		t.Errorf("main() = %d, want 43", got)
	}
	if n := mach.ThreadCount(); n != 2 {
		t.Errorf("ThreadCount() = %d, want 2", n)
	}
	if len(mach.Violations) != 0 {
		t.Errorf("unexpected violations: %v", mach.Violations)
	}
	if got := mach.Mem.ReadUint(mach.GlobalAddr("cell"), 8); got != 41 {
		t.Errorf("cell = %d, want 41", got)
	}
}

// buildTwoWriters builds main spawning two workers that store distinct
// values to distinct PM lines (flushed and fenced), then joins both.
// Every interleaving returns 3; the trace event order differs.
func buildTwoWriters(t *testing.T) *ir.Module {
	t.Helper()
	m := newModule("mt2")
	m.AddGlobal(&ir.Global{Name: "a", Elem: ir.I64, PM: true})
	m.AddGlobal(&ir.Global{Name: "b", Elem: ir.I64, PM: true})

	for i, name := range []string{"w1", "w2"} {
		g := []string{"a", "b"}[i]
		w := ir.NewFunc(name, ir.I64)
		m.AddFunc(w)
		wb := ir.NewBuilder(w)
		wb.Store(ir.I64, ir.ConstInt(int64(10+i)), m.Global(g))
		wb.Flush(ir.CLWB, m.Global(g))
		wb.Fence(ir.SFENCE)
		wb.Ret(ir.ConstInt(int64(1 + i)))
		w.Renumber()
	}

	f := ir.NewFunc("main", ir.I64)
	m.AddFunc(f)
	fb := ir.NewBuilder(f)
	h1 := fb.Spawn(m.Func("w1"))
	h2 := fb.Spawn(m.Func("w2"))
	r1 := fb.Join(h1)
	r2 := fb.Join(h2)
	fb.Ret(fb.Bin(ir.OpAdd, ir.I64, r1, r2))
	f.Renumber()
	return m
}

func runSched(t *testing.T, m *ir.Module, sched []int) (*Machine, uint64, string) {
	t.Helper()
	tr := &trace.Trace{}
	mach, err := New(m, Options{Trace: tr, Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	ret, err := mach.Run("main")
	if err != nil {
		t.Fatalf("run(%v): %v", sched, err)
	}
	return mach, ret, tr.String()
}

func TestScheduleReplayIsExact(t *testing.T) {
	m := buildTwoWriters(t)
	mach, ret, base := runSched(t, m, nil)
	if ret != 3 {
		t.Fatalf("main() = %d, want 3", ret)
	}
	ds := mach.Decisions()
	if len(ds) == 0 {
		t.Fatal("expected scheduling decisions with three runnable threads")
	}
	choices := make([]int, len(ds))
	for i, d := range ds {
		choices[i] = d.Chosen
	}

	// Replaying the run's own decision log reproduces it byte-for-byte.
	_, ret2, replay := runSched(t, m, choices)
	if ret2 != 3 || replay != base {
		t.Errorf("replay diverged: ret=%d\n--- base ---\n%s--- replay ---\n%s", ret2, base, replay)
	}

	// Deviating at the first decision point yields a different (but
	// still correct) interleaving.
	alt := append([]int(nil), choices...)
	alt[0] = (ds[0].Chosen + 1) % len(ds[0].Runnable)
	if alt[0] == choices[0] {
		t.Fatalf("could not build deviating schedule from %v", ds[0])
	}
	_, ret3, dev := runSched(t, m, alt[:1])
	if ret3 != 3 {
		t.Errorf("deviating schedule returned %d, want 3", ret3)
	}
	if dev == base {
		t.Errorf("deviating schedule produced an identical trace")
	}
}

func TestUnjoinedThreadFaults(t *testing.T) {
	m := newModule("unjoined")
	w := ir.NewFunc("w", ir.I64)
	m.AddFunc(w)
	wb := ir.NewBuilder(w)
	wb.Ret(ir.ConstInt(0))
	w.Renumber()
	f := ir.NewFunc("main", ir.I64)
	m.AddFunc(f)
	fb := ir.NewBuilder(f)
	fb.Spawn(w)
	fb.Ret(ir.ConstInt(0))
	f.Renumber()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	mach, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = mach.Run("main")
	if err == nil || !strings.Contains(err.Error(), "still running") {
		t.Errorf("want unjoined-thread error, got %v", err)
	}
}

func TestThreadErrorPropagates(t *testing.T) {
	m := newModule("thrfault")
	w := ir.NewFunc("w", ir.I64, &ir.Param{Name: "d", Ty: ir.I64})
	m.AddFunc(w)
	wb := ir.NewBuilder(w)
	wb.Ret(wb.Bin(ir.OpSDiv, ir.I64, ir.ConstInt(1), w.Params[0]))
	w.Renumber()
	f := ir.NewFunc("main", ir.I64)
	m.AddFunc(f)
	fb := ir.NewBuilder(f)
	h := fb.Spawn(w, ir.ConstInt(0))
	fb.Ret(fb.Join(h))
	f.Renumber()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	mach, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = mach.Run("main")
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("want division-by-zero from spawned thread, got %v", err)
	}
}

func TestDoubleJoinFaults(t *testing.T) {
	m := newModule("dj")
	w := ir.NewFunc("w", ir.I64)
	m.AddFunc(w)
	wb := ir.NewBuilder(w)
	wb.Ret(ir.ConstInt(0))
	w.Renumber()
	f := ir.NewFunc("main", ir.I64)
	m.AddFunc(f)
	fb := ir.NewBuilder(f)
	h := fb.Spawn(w)
	fb.Join(h)
	fb.Ret(fb.Join(h))
	f.Renumber()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	mach, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = mach.Run("main")
	if err == nil || !strings.Contains(err.Error(), "joined twice") {
		t.Errorf("want double-join error, got %v", err)
	}
}

func TestAtomicOps(t *testing.T) {
	m := newModule("atomics")
	m.AddGlobal(&ir.Global{Name: "v", Elem: ir.I64})
	f := ir.NewFunc("main", ir.I64)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	g := m.Global("v")
	b.AtomicStore(ir.OrderRelease, ir.ConstInt(5), g)
	old := b.AtomicRMW(ir.RMWAdd, ir.ConstInt(3), g)        // v=8, old=5
	xch := b.AtomicRMW(ir.RMWXchg, ir.ConstInt(20), g)      // v=20, xch=8
	miss := b.AtomicCAS(ir.ConstInt(7), ir.ConstInt(0), g)  // miss: v=20, miss=20
	hit := b.AtomicCAS(ir.ConstInt(20), ir.ConstInt(31), g) // hit: v=31, hit=20
	cur := b.AtomicLoad(ir.OrderAcquire, g)                 // 31
	s1 := b.Bin(ir.OpAdd, ir.I64, old, xch)
	s2 := b.Bin(ir.OpAdd, ir.I64, miss, hit)
	s3 := b.Bin(ir.OpAdd, ir.I64, s1, s2)
	b.Ret(b.Bin(ir.OpAdd, ir.I64, s3, cur)) // 5+8+20+20+31 = 84
	f.Renumber()
	_, got := run(t, m, "main")
	if got != 84 {
		t.Errorf("main() = %d, want 84", got)
	}
}

func TestAtomicPMStoreIsTracked(t *testing.T) {
	m := newModule("atomicpm")
	m.AddGlobal(&ir.Global{Name: "cell", Elem: ir.I64, PM: true})
	f := ir.NewFunc("main", ir.I64)
	m.AddFunc(f)
	b := ir.NewBuilder(f)
	b.AtomicStore(ir.OrderSeqCst, ir.ConstInt(9), m.Global("cell"))
	b.Ret(ir.ConstInt(0))
	f.Renumber()
	mach, _ := run(t, m, "main")
	// Atomicity does not persist: the store must show up as a violation
	// at the implicit final durability point.
	if len(mach.Violations) == 0 {
		t.Fatal("atomic PM store without flush/fence should violate durability")
	}
}

// TestCrossThreadPublish is the unordered-publish shape: a worker
// writes fields without persisting them, main joins and publishes the
// object's address durably. The tracker must attribute the pending
// referent stores to the worker thread.
func TestCrossThreadPublish(t *testing.T) {
	m := newModule("pub")
	m.AddGlobal(&ir.Global{Name: "shard", Elem: ir.I64, PM: true})
	m.AddGlobal(&ir.Global{Name: "head", Elem: ir.Ptr, PM: true})

	w := ir.NewFunc("w", ir.I64)
	m.AddFunc(w)
	wb := ir.NewBuilder(w)
	wb.Store(ir.I64, ir.ConstInt(42), m.Global("shard")) // BUG: never flushed
	wb.Ret(ir.ConstInt(0))
	w.Renumber()

	f := ir.NewFunc("main", ir.I64)
	m.AddFunc(f)
	fb := ir.NewBuilder(f)
	h := fb.Spawn(w)
	fb.Join(h)
	fb.Store(ir.Ptr, m.Global("shard"), m.Global("head"))
	fb.Flush(ir.CLWB, m.Global("head"))
	fb.Fence(ir.SFENCE)
	fb.Ret(ir.ConstInt(0))
	f.Renumber()

	mach, ret := run(t, m, "main")
	if ret != 0 {
		t.Fatalf("main() = %d, want 0", ret)
	}
	pubs := mach.Track.Publishes
	if len(pubs) != 1 {
		t.Fatalf("Publishes = %d records, want 1 (%v)", len(pubs), pubs)
	}
	p := pubs[0]
	if p.PubTid != 0 || p.Referent == nil || p.Referent.Tid != 1 {
		t.Errorf("publish provenance wrong: pubTid=%d referent=%+v", p.PubTid, p.Referent)
	}
}

func TestScheduleIDRoundTrip(t *testing.T) {
	cases := []struct {
		id      string
		choices []int
	}{
		{"rr", nil},
		{"c:0", []int{0}},
		{"c:1.0.2", []int{1, 0, 2}},
	}
	for _, c := range cases {
		if got := ScheduleID(c.choices); got != c.id {
			t.Errorf("ScheduleID(%v) = %q, want %q", c.choices, got, c.id)
		}
		got, err := ParseScheduleID(c.id)
		if err != nil || !reflect.DeepEqual(got, c.choices) {
			t.Errorf("ParseScheduleID(%q) = %v, %v; want %v", c.id, got, err, c.choices)
		}
	}
	for _, bad := range []string{"x", "c:", "c:1..2", "c:-1", "c:a"} {
		if _, err := ParseScheduleID(bad); err == nil {
			t.Errorf("ParseScheduleID(%q) succeeded, want error", bad)
		}
	}
}
