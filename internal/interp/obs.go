package interp

import (
	"fmt"

	"hippocrates/internal/ir"
	"hippocrates/internal/obs"
)

// OpcodeCounts returns how many times each opcode was executed, keyed by
// the opcode's mnemonic. Opcodes that never executed are omitted.
func (m *Machine) OpcodeCounts() map[string]int64 {
	out := make(map[string]int64)
	for op, n := range m.ops {
		if n > 0 {
			out[ir.Op(op).String()] = n
		}
	}
	return out
}

// ThreadEventCounts returns per-thread PM event counters: entry [tid][k]
// is how many boundaries of PMEventKind k thread tid produced. Threads
// that produced no PM events may be absent from the tail.
func (m *Machine) ThreadEventCounts() [][numPMEventKinds]int64 {
	return m.threadEv
}

// RecordObs flushes the machine's run statistics into the span's
// recorder: total steps, checkpoints, and the per-opcode execution
// counters (namespaced under obs.OpcodeCounterPrefix, which feeds the
// top-10 opcode table in the metrics export). The interpreter's dispatch
// loop never touches obs directly — it keeps dense integer counters and
// this one call publishes them after the run.
func (m *Machine) RecordObs(sp *obs.Span) {
	if sp == nil {
		return
	}
	sp.Add("interp.steps", m.steps)
	sp.Add("interp.checkpoints", int64(m.checkpoints))
	if m.mt != nil {
		sp.Add("interp.threads", int64(len(m.mt.threads)))
		sp.Add("interp.sched_decisions", int64(len(m.mt.decisions)))
		for tid, kinds := range m.threadEv {
			for k, n := range kinds {
				if n > 0 {
					sp.Add(fmt.Sprintf("interp.thread.%d.%s", tid, PMEventKind(k)), n)
				}
			}
		}
	}
	for op, n := range m.ops {
		if n > 0 {
			sp.Add(obs.OpcodeCounterPrefix+ir.Op(op).String(), n)
		}
	}
}
