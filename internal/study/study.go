// Package study carries the §3 bug-study dataset: the 26 PMDK durability
// bugs found with pmemcheck and fixed by developers that motivated
// Hippocrates, with per-issue repair effort (commits to a passing build,
// days from open to close). Fig. 1 aggregates this data; the figures in
// the paper are the group averages (17 commits / 33 days / 66 max for the
// documented core-library bugs, 2 / 15 / 38 for the documented API-misuse
// bugs, 13 / 28 / 66 overall), which the per-issue records below
// reproduce exactly.
package study

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies an issue's root cause (the study's two categories).
type Kind int

// The root-cause categories.
const (
	// CoreBug is a bug inside the PMDK libraries or tools.
	CoreBug Kind = iota
	// APIMisuse is a bug caused by misusing PMDK's API (in unit tests).
	APIMisuse
)

func (k Kind) String() string {
	if k == APIMisuse {
		return "API misuse"
	}
	return "Core library/tool bug"
}

// Issue is one studied PMDK bug report.
type Issue struct {
	Number int
	Kind   Kind
	// Commits is the number of commits until a passing build; 0 when the
	// repair effort is undocumented (the paper's "-" rows).
	Commits int
	// Days from issue open to close; 0 when undocumented.
	Days int
	// Documented reports whether effort data exists.
	Documented bool
	// Reproduced marks the 11 issues the evaluation reproduced (§6.1).
	Reproduced bool
	// Summary describes the bug.
	Summary string
}

// Issues returns the 26 studied bugs.
func Issues() []Issue {
	type row struct {
		n, commits, days int
		repro            bool
		summary          string
	}
	// Group 1: core bugs with undocumented effort (Fig. 1 row one).
	undocCore := []row{
		{n: 440, summary: "pool set replica header left unflushed"},
		{n: 441, summary: "transaction undo log tail not persisted"},
		{n: 444, summary: "lane section state store missing a fence"},
	}
	// Group 2: core bugs with documented effort — 14 issues averaging 17
	// commits and 33 days, with a 66-day maximum.
	docCore := []row{
		{n: 442, commits: 31, days: 66, summary: "heap chunk header persisted without ordering"},
		{n: 446, commits: 28, days: 45, summary: "pvector entry published before flush"},
		{n: 447, commits: 25, days: 40, repro: true, summary: "list insert leaves linked node unflushed"},
		{n: 448, commits: 22, days: 38, summary: "pool descriptor checksum unfenced"},
		{n: 449, commits: 20, days: 35, summary: "redo log recovery misses tail flush"},
		{n: 450, commits: 19, days: 33, summary: "bucket vector growth unflushed"},
		{n: 452, commits: 18, days: 32, repro: true, summary: "freed OID slot cleared without flush"},
		{n: 458, commits: 17, days: 30, repro: true, summary: "heap zone magic unflushed after init"},
		{n: 459, commits: 15, days: 28, repro: true, summary: "redo entry value unflushed before tail bump"},
		{n: 460, commits: 13, days: 26, repro: true, summary: "object retype leaves type_num volatile"},
		{n: 461, commits: 12, days: 25, repro: true, summary: "pool compat features unflushed"},
		{n: 463, commits: 10, days: 24, summary: "memcpy'd region published before persist (Listing 2)"},
		{n: 465, commits: 5, days: 22, summary: "lane layout init skips drain"},
		{n: 466, commits: 3, days: 18, summary: "pool extension header unflushed"},
	}
	// Group 3: API misuse with undocumented effort.
	undocMisuse := []row{
		{n: 940, repro: true, summary: "unit test bumps persistent stats without flush"},
		{n: 942, repro: true, summary: "unit test updates records outside a transaction"},
		{n: 943, repro: true, summary: "unit test flips valid flag without flush"},
		{n: 945, repro: true, summary: "unit test fills persistent array without persist"},
	}
	// Group 4: API misuse with documented effort — 5 issues averaging 2
	// commits and 15 days, with a 38-day maximum.
	docMisuse := []row{
		{n: 535, commits: 2, days: 10, summary: "example code misorders persist and publish"},
		{n: 585, commits: 2, days: 38, repro: true, summary: "buffer copy published before persist"},
		{n: 949, commits: 2, days: 9, summary: "test uses pmem_memcpy without drain"},
		{n: 1103, commits: 2, days: 8, summary: "OID cleared without flush and fence (Listing 1)"},
		{n: 1118, commits: 2, days: 10, summary: "test persists wrong address range"},
	}
	var out []Issue
	add := func(rows []row, kind Kind, documented bool) {
		for _, r := range rows {
			out = append(out, Issue{
				Number:     r.n,
				Kind:       kind,
				Commits:    r.commits,
				Days:       r.days,
				Documented: documented,
				Reproduced: r.repro,
				Summary:    r.summary,
			})
		}
	}
	add(undocCore, CoreBug, false)
	add(docCore, CoreBug, true)
	add(undocMisuse, APIMisuse, false)
	add(docMisuse, APIMisuse, true)
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}

// GroupStats aggregates one Fig. 1 row.
type GroupStats struct {
	Label      string
	Issues     []int
	AvgCommits int
	AvgDays    int
	MaxDays    int
	Kind       Kind
	Documented bool
}

// Stats is the Fig. 1 table.
type Stats struct {
	Groups []GroupStats
	// Overall averages across the documented issues (the paper's
	// "Average 13 / 28 / 66" row).
	AvgCommits int
	AvgDays    int
	MaxDays    int
	Total      int
	Reproduced int
}

// Aggregate computes the Fig. 1 aggregates from the issue records.
func Aggregate() Stats {
	issues := Issues()
	groupKey := func(i Issue) int {
		k := 0
		if i.Kind == APIMisuse {
			k = 2
		}
		if i.Documented {
			k++
		}
		return k
	}
	byGroup := map[int][]Issue{}
	for _, i := range issues {
		byGroup[groupKey(i)] = append(byGroup[groupKey(i)], i)
	}
	var st Stats
	st.Total = len(issues)
	sumC, sumD, nDoc := 0, 0, 0
	for k := 0; k < 4; k++ {
		group := byGroup[k]
		if len(group) == 0 {
			continue
		}
		gs := GroupStats{Kind: group[0].Kind, Documented: group[0].Documented}
		gs.Label = group[0].Kind.String()
		c, d := 0, 0
		for _, i := range group {
			gs.Issues = append(gs.Issues, i.Number)
			c += i.Commits
			d += i.Days
			if i.Days > gs.MaxDays {
				gs.MaxDays = i.Days
			}
			if i.Reproduced {
				st.Reproduced++
			}
		}
		if gs.Documented {
			gs.AvgCommits = int(float64(c)/float64(len(group)) + 0.5)
			gs.AvgDays = int(float64(d)/float64(len(group)) + 0.5)
			sumC += c
			sumD += d
			nDoc += len(group)
		}
		if gs.MaxDays > st.MaxDays {
			st.MaxDays = gs.MaxDays
		}
		st.Groups = append(st.Groups, gs)
	}
	if nDoc > 0 {
		st.AvgCommits = int(float64(sumC)/float64(nDoc) + 0.5)
		st.AvgDays = int(float64(sumD)/float64(nDoc) + 0.5)
	}
	return st
}

// RenderIssues prints the per-issue detail table behind Fig. 1.
func RenderIssues() string {
	var b strings.Builder
	b.WriteString("The 26 studied PMDK issues\n")
	fmt.Fprintf(&b, "%-7s %-22s %8s %6s %6s  %s\n", "issue", "kind", "commits", "days", "repro", "summary")
	for _, i := range Issues() {
		c, d := "-", "-"
		if i.Documented {
			c, d = fmt.Sprint(i.Commits), fmt.Sprint(i.Days)
		}
		r := ""
		if i.Reproduced {
			r = "yes"
		}
		fmt.Fprintf(&b, "#%-6d %-22s %8s %6s %6s  %s\n", i.Number, i.Kind, c, d, r, i.Summary)
	}
	return b.String()
}

// Render prints the Fig. 1 table.
func (st Stats) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 1 — the 26 studied PMDK bugs\n")
	fmt.Fprintf(&b, "%-55s %8s %8s %8s  %s\n", "Issue #s", "AvgCmts", "AvgDays", "MaxDays", "Kind")
	for _, g := range st.Groups {
		nums := make([]string, len(g.Issues))
		for i, n := range g.Issues {
			nums[i] = fmt.Sprint(n)
		}
		c, d, mx := "-", "-", "-"
		if g.Documented {
			c, d, mx = fmt.Sprint(g.AvgCommits), fmt.Sprint(g.AvgDays), fmt.Sprint(g.MaxDays)
		}
		fmt.Fprintf(&b, "%-55s %8s %8s %8s  %s\n", strings.Join(nums, ","), c, d, mx, g.Label)
	}
	fmt.Fprintf(&b, "%-55s %8d %8d %8d\n", "Average", st.AvgCommits, st.AvgDays, st.MaxDays)
	return b.String()
}
