package study

import (
	"strings"
	"testing"
)

func TestIssueCount(t *testing.T) {
	issues := Issues()
	if len(issues) != 26 {
		t.Fatalf("issues = %d, want 26", len(issues))
	}
	seen := map[int]bool{}
	core, misuse := 0, 0
	for _, i := range issues {
		if seen[i.Number] {
			t.Errorf("duplicate issue %d", i.Number)
		}
		seen[i.Number] = true
		if i.Kind == CoreBug {
			core++
		} else {
			misuse++
		}
		if i.Summary == "" {
			t.Errorf("issue %d lacks a summary", i.Number)
		}
		if i.Documented && i.Days == 0 {
			t.Errorf("issue %d documented but no effort data", i.Number)
		}
	}
	if core != 17 || misuse != 9 {
		t.Errorf("core/misuse = %d/%d, want 17/9 (§3.1)", core, misuse)
	}
}

func TestReproducedCount(t *testing.T) {
	n := 0
	for _, i := range Issues() {
		if i.Reproduced {
			n++
		}
	}
	if n != 11 {
		t.Errorf("reproduced issues = %d, want 11 (§6.1)", n)
	}
}

func TestFig1Aggregates(t *testing.T) {
	st := Aggregate()
	if st.Total != 26 {
		t.Errorf("total = %d", st.Total)
	}
	// The paper's headline numbers: 13 commits on average, 23–28 days,
	// up to 66 days (abstract says 23 days to close on average; Fig. 1's
	// Average row reads 13 / 28 / 66).
	if st.AvgCommits != 13 {
		t.Errorf("avg commits = %d, want 13", st.AvgCommits)
	}
	if st.AvgDays != 28 {
		t.Errorf("avg days = %d, want 28", st.AvgDays)
	}
	if st.MaxDays != 66 {
		t.Errorf("max days = %d, want 66", st.MaxDays)
	}
	// Group rows: documented core bugs average 17 commits / 33 days;
	// documented API misuse 2 / 15 / 38.
	var foundCore, foundMisuse bool
	for _, g := range st.Groups {
		if !g.Documented {
			continue
		}
		switch g.Kind {
		case CoreBug:
			foundCore = true
			if g.AvgCommits != 17 || g.AvgDays != 33 || g.MaxDays != 66 {
				t.Errorf("core group = %d/%d/%d, want 17/33/66", g.AvgCommits, g.AvgDays, g.MaxDays)
			}
			if len(g.Issues) != 14 {
				t.Errorf("documented core issues = %d, want 14", len(g.Issues))
			}
		case APIMisuse:
			foundMisuse = true
			if g.AvgCommits != 2 || g.AvgDays != 15 || g.MaxDays != 38 {
				t.Errorf("misuse group = %d/%d/%d, want 2/15/38", g.AvgCommits, g.AvgDays, g.MaxDays)
			}
			if len(g.Issues) != 5 {
				t.Errorf("documented misuse issues = %d, want 5", len(g.Issues))
			}
		}
	}
	if !foundCore || !foundMisuse {
		t.Error("missing documented groups")
	}
}

func TestRender(t *testing.T) {
	out := Aggregate().Render()
	for _, want := range []string{"Fig. 1", "Average", "API misuse", "Core library", "66"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table lacks %q:\n%s", want, out)
		}
	}
}

func TestKindString(t *testing.T) {
	if CoreBug.String() == APIMisuse.String() {
		t.Error("kind strings must differ")
	}
}

func TestRenderIssues(t *testing.T) {
	out := RenderIssues()
	for _, want := range []string{"#447", "#1103", "Listing 1", "yes", "API misuse"} {
		if !strings.Contains(out, want) {
			t.Errorf("per-issue table lacks %q", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 26+2 {
		t.Errorf("per-issue table has %d lines, want 28", lines)
	}
}
